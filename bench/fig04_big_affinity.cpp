// Figure 4: when TAS shows big-core affinity (64-cache-line critical
// sections), it achieves higher throughput than MCS but its latency still
// collapses.
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig04_big_affinity,
             "Figure 4: TAS big-core-affinity — throughput up, latency "
             "collapse") {
  ctx.banner("Figure 4",
             "TAS big-core-affinity: throughput up, latency collapse");
  ctx.note("CS = 64 shared cache lines (vs 4 in Figure 1)");

  auto gen = collapse_workload(64, 1500);
  Table table({"threads", "mcs_tput", "tas_tput", "mcs_p99_us", "tas_p99_us"});

  double mcs8 = 0, tas8 = 0;
  std::uint64_t mcs8_p99 = 0, tas8_p99 = 0;
  for (std::uint32_t n = 1; n <= 8; ++n) {
    SimResult mcs = run_sim(
        ctx.scaled(collapse_config(n, LockKind::kMcs, TasAffinity::kSymmetric)),
        gen);
    SimResult tas = run_sim(
        ctx.scaled(collapse_config(n, LockKind::kTas, TasAffinity::kBigCores)),
        gen);
    table.add_row({std::to_string(n), Table::fmt_ops(mcs.cs_throughput()),
                   Table::fmt_ops(tas.cs_throughput()),
                   Table::fmt_ns_as_us(mcs.latency.p99_overall()),
                   Table::fmt_ns_as_us(tas.latency.p99_overall())});
    if (n == 8) {
      mcs8 = mcs.cs_throughput();
      tas8 = tas.cs_throughput();
      mcs8_p99 = mcs.latency.p99_overall();
      tas8_p99 = tas.latency.p99_overall();
    }
  }
  ctx.emit(table, "big_affinity");

  ctx.shape_check(tas8 > mcs8 * 1.1,
                  "big-affinity TAS beats MCS throughput (paper: +32%)");
  ctx.shape_check(tas8_p99 > mcs8_p99 * 2,
                  "TAS latency still collapses relative to MCS");
}
