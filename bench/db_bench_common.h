// Shared driver for the five database figures (Figures 9a-9i, 10a-10f).
// Each figure has the same three panels:
//   (a) lock comparison at the paper's chosen SLOs,
//   (b) variant-SLO sweep,
//   (c) latency CDF at the paper's CDF SLO.
#pragma once

#include <cmath>
#include <string>

#include "bench_common.h"
#include "sim/db_model.h"
#include "sim/sim_runner.h"

namespace asl::bench {

using sim::DbKind;
using sim::DbWorkload;
using sim::LockKind;
using sim::Policy;
using sim::Time;

inline void run_db_figure(ScenarioContext& ctx, DbKind kind,
                          const char* figure) {
  using namespace asl::sim;
  DbWorkload w = make_db_workload(kind);

  ctx.banner(figure, std::string(w.name) + " — lock comparison");
  Table table = comparison_table();

  auto run_plain = [&](const char* name, LockKind lock) {
    SimResult r = run_sim(ctx.scaled(db_config(w, lock)), w.gen);
    add_comparison_row(table, name, r, r.epoch_throughput());
    return r;
  };
  auto run_asl = [&](const std::string& name, Time slo, bool use_slo) {
    SimResult r = run_sim(ctx.scaled(db_asl_config(w, slo, use_slo)), w.gen);
    add_comparison_row(table, name, r, r.epoch_throughput());
    return r;
  };

  SimResult pthread = run_plain("pthread", LockKind::kPthread);
  SimResult tas = run_plain("tas", LockKind::kTas);
  run_plain("ticket", LockKind::kTicket);
  SimConfig shfl_cfg = ctx.scaled(db_config(w, LockKind::kShflPb));
  shfl_cfg.pb_proportion = 10;
  SimResult shfl = run_sim(shfl_cfg, w.gen);
  add_comparison_row(table, "shfl-pb10", shfl, shfl.epoch_throughput());
  SimResult mcs = run_plain("mcs", LockKind::kMcs);
  SimResult asl0 = run_asl("libasl-0", 0, true);
  const std::string name_a =
      "libasl-" + std::to_string(w.paper_slo_a / kMicro) + "us";
  const std::string name_b =
      "libasl-" + std::to_string(w.paper_slo_b / kMicro) + "us";
  SimResult asla = run_asl(name_a, w.paper_slo_a, true);
  SimResult aslb = run_asl(name_b, w.paper_slo_b, true);
  SimResult aslmax = run_asl("libasl-max", 0, false);
  ctx.emit(table, "db_lock_comparison");

  ctx.shape_check(std::abs(asl0.epoch_throughput() / mcs.epoch_throughput() -
                           1.0) < 0.2,
                  "LibASL-0 falls back to FIFO");
  ctx.shape_check(aslmax.epoch_throughput() >= mcs.epoch_throughput() * 1.1,
                  "LibASL-MAX beats MCS");
  ctx.shape_check(aslmax.epoch_throughput() >= tas.epoch_throughput() * 0.95,
                  "LibASL-MAX at least matches TAS throughput");
  ctx.shape_check(aslmax.epoch_throughput() >= pthread.epoch_throughput(),
                  "LibASL-MAX beats pthread");
  ctx.shape_check(aslb.latency.p99_little() <= w.paper_slo_b * 13 / 10,
                  "LibASL keeps the configured SLO");
  ctx.shape_check(asla.epoch_throughput() <= aslb.epoch_throughput() * 1.05,
                  "larger SLO buys at least as much throughput");

  ctx.banner(figure, std::string(w.name) + " — variant SLOs");
  Table sweep({"slo_us", "big_p99_us", "little_p99_us", "tput_ops"});
  const Time lo = w.sweep_max / 10;
  bool tracked = true;
  double tput_first = 0, tput_last = 0;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    const Time slo = lo * i + (w.sweep_max - lo * 8) * i / 8;
    SimResult r = run_sim(ctx.scaled(db_asl_config(w, slo, true)), w.gen);
    sweep.add_row({std::to_string(slo / kMicro),
                   Table::fmt_ns_as_us(r.latency.p99_big()),
                   Table::fmt_ns_as_us(r.latency.p99_little()),
                   Table::fmt_ops(r.epoch_throughput())});
    if (i == 1) tput_first = r.epoch_throughput();
    if (i == 8) tput_last = r.epoch_throughput();
    if (i >= 3) tracked = tracked && r.latency.p99_little() <= slo * 14 / 10;
  }
  ctx.emit(sweep, "db_slo_sweep");
  ctx.shape_check(tput_last >= tput_first, "throughput grows with the SLO");
  ctx.shape_check(tracked, "little-core P99 tracks the SLO across the sweep");

  ctx.banner(figure, std::string(w.name) + " — latency CDF (SLO " +
                         std::to_string(w.cdf_slo / kMicro) + "us)");
  SimResult cdf_run = run_sim(ctx.scaled(db_asl_config(w, w.cdf_slo, true)),
                              w.gen);
  Table cdf({"latency_us", "overall_cum", "little_cum"});
  auto overall = cdf_run.latency.overall().cdf();
  auto little = cdf_run.latency.little().cdf();
  // Sample ~16 rows of the overall CDF, interpolating little at the same
  // points (step function: last value <= x).
  auto little_at = [&](std::uint64_t x) {
    double cum = 0;
    for (const auto& p : little) {
      if (p.value <= x) cum = p.cumulative;
    }
    return cum;
  };
  const std::size_t stride = overall.size() > 16 ? overall.size() / 16 : 1;
  for (std::size_t i = 0; i < overall.size(); i += stride) {
    cdf.add_row({Table::fmt_ns_as_us(overall[i].value),
                 Table::fmt(overall[i].cumulative, 3),
                 Table::fmt(little_at(overall[i].value), 3)});
  }
  ctx.emit(cdf, "db_latency_cdf");
  ctx.shape_check(cdf_run.latency.p99_little() <= w.cdf_slo * 13 / 10,
                  "CDF run: little-core P99 within the SLO");
}

}  // namespace asl::bench
