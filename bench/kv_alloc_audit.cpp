// kv_alloc_audit — the zero-allocation regression gate (DESIGN.md §9).
//
// The request hot path is contractually heap-free once warm: admission moves
// a 24-byte Request through a preallocated ring, puts format values into a
// per-worker arena, the pooled engines (hash via capacity-reusing assigns,
// mvcc via its node freelist) recycle their own storage. This scenario is
// the gate that keeps it true. For each engine under the contract it runs
// the *real* service — worker threads, shard locks, epoch feedback, the
// lot — through a warmup window (which may allocate: rings, engine growth,
// epoch slots, freelist population) and then a steady window, and asserts
// the process-wide operator-new count moved by exactly zero during steady
// traffic. One surviving `new` per request fails the bench, which fails CI.
//
// The counter is the asl_alloc interposer (asl/alloc_count.h), linked into
// every figure binary; the submit loop below is itself allocation-free
// (try_submit + yield), so the whole process quiesces to zero.
#include <chrono>
#include <string>
#include <thread>

#include "asl/alloc_count.h"
#include "bench_common.h"
#include "platform/rng.h"
#include "server/kv_service.h"
#include "server/telemetry.h"

namespace asl::bench {
namespace {

using server::KvService;
using server::KvServiceConfig;
using server::OpType;

// Engines under the zero-allocation contract. Btree joined in PR 9: with
// the keyspace prefilled, steady-state puts are in-place value overwrites
// (capacity-reusing assign) and node splits are amortized into warmup, so
// the audited windows are allocation-free. Not "lsm": its per-op
// allocations (memtable entries, snapshot vectors) are structural —
// CostProfile::allocs prices them instead (DESIGN.md §7/§9).
const char* const kAuditedEngines[] = {"hash", "btree", "mvcc"};

// With --telemetry=on the audited service also runs the full observation
// pipeline (DESIGN.md §11): a live 1 ms sampler folding the metrics
// registry plus 1-in-64 span tracing. The zero-allocation bar is unchanged —
// wait-free recording and preallocated fold scratch are part of the
// telemetry contract, and this mode is the gate that keeps them true.
KvServiceConfig audit_config(const std::string& engine, bool telemetry_on) {
  KvServiceConfig cfg;
  cfg.engine = engine;
  cfg.num_shards = 2;
  cfg.workers_per_shard = 2;  // a big/little pair contending per shard
  cfg.queue_capacity = 64;
  cfg.batch_k = 8;
  // Keys stay inside the prefill range so steady-state puts are overwrites
  // (an insert of a brand-new key legitimately grows the engine).
  cfg.prefill_keys = 512;
  cfg.classes.push_back(
      server::RequestClass{"audit", /*slo_ns=*/2 * kNanosPerMilli});
  if (telemetry_on) {
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_period_ns = 1 * kNanosPerMilli;
    cfg.telemetry.span_sample_every = 64;
    cfg.telemetry.span_ring_capacity = 512;
  }
  return cfg;
}

// Submits `n` requests (1 put per 4 ops, keys uniform over the prefill
// range), retrying rejected submits after a yield — backpressure pacing
// with no sleeps, no clocks beyond try_submit's own stamp, and no heap.
void pump(KvService& service, Rng& rng, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const OpType op = (i % 4 == 0) ? OpType::kPut : OpType::kGet;
    const std::uint64_t key = rng.below(512);
    while (!service.try_submit(op, key, 0)) {
      std::this_thread::yield();
    }
  }
}

// Waits until every shard queue reads empty, then grants the workers a
// grace interval to finish the in-flight batch (queue depth hits zero when
// the last request is *claimed*, not when it is served). Polling
// queue_depth takes the queue lock only — no allocation inside the
// measured window, unlike report().
void quiesce(KvService& service) {
  for (std::uint32_t s = 0; s < service.config().num_shards; ++s) {
    while (service.queue_depth(s) != 0) {
      std::this_thread::yield();
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

void run_alloc_audit(ScenarioContext& ctx) {
  const bool telemetry_on = ctx.option("telemetry") == "on";
  ctx.banner("kv_alloc_audit",
             "steady-state heap allocations per request (must be zero)");
  ctx.note(telemetry_on
               ? "telemetry ON: live sampler + span tracing inside the "
                 "audited windows"
               : "telemetry off (pass --telemetry=on to audit the "
                 "observation pipeline too)");
  ctx.shape_check(alloc_counting_linked(),
                  "allocation-counting hooks are linked into this binary");
  // Liveness probe: a deliberate allocation must move the counter, so a
  // zero steady-state reading below can never be a silently dead gate.
  const std::uint64_t probe_before = alloc_count();
  {
    char* volatile probe = new char[64];
    delete[] probe;
  }
  ctx.shape_check(alloc_count() > probe_before,
                  "counter observes a deliberate allocation");

  const std::uint64_t warmup_reqs = 10000;  // per warmup window
  const std::uint64_t steady_reqs = 20000;
  const int max_warmup_windows = 10;

  Table table({"engine", "warmup_windows", "warmup_allocs", "steady_reqs",
               "steady_allocs", "steady_bytes", "allocs_per_kreq"});
  for (const char* engine : kAuditedEngines) {
    KvService service(audit_config(engine, telemetry_on));
    service.start();
    Rng rng(0x5eedu);

    // Warmup: populate every lazily-grown structure (epoch slots, reclaimer
    // batches, the mvcc node freelist) and repeat traffic windows until one
    // completes allocation-free. Convergence is guaranteed, not hoped for:
    // every lazily-grown structure has a hard size bound (the reclaimer's
    // backlog cap, the fixed keyspace, the preallocated rings), so the
    // pools stop growing once their high-water marks are reached — the
    // loop just has to drive them there.
    int warm_windows = 0;
    std::uint64_t warm_allocs = 0;
    bool warmed = false;
    while (warm_windows < max_warmup_windows && !warmed) {
      const std::uint64_t before = alloc_count();
      pump(service, rng, warmup_reqs);
      quiesce(service);
      const std::uint64_t delta = alloc_count() - before;
      warm_allocs += delta;
      warm_windows += 1;
      warmed = delta == 0;
    }
    ctx.shape_check(warmed, std::string(engine) +
                                ": warmup converged to an allocation-free "
                                "window");

    // Steady window: same traffic, zero tolerance.
    const AllocCounts steady_before = alloc_counts();
    pump(service, rng, steady_reqs);
    quiesce(service);
    const AllocCounts steady_after = alloc_counts();
    service.stop();

    const std::uint64_t steady_allocs =
        steady_after.allocs - steady_before.allocs;
    const std::uint64_t steady_bytes = steady_after.bytes - steady_before.bytes;
    table.add_row({engine, std::to_string(warm_windows),
                   std::to_string(warm_allocs), std::to_string(steady_reqs),
                   std::to_string(steady_allocs),
                   std::to_string(steady_bytes),
                   std::to_string(steady_allocs * 1000 / steady_reqs)});

    ctx.shape_check(steady_allocs == 0,
                    std::string(engine) +
                        ": zero steady-state heap allocations per request");
    if (telemetry_on) {
      // The sampler must actually have been live during the audited
      // traffic — a zero with a dead sampler would prove nothing about the
      // fold path.
      ctx.shape_check(service.telemetry() != nullptr &&
                          service.telemetry()->ticks() > 0,
                      std::string(engine) +
                          ": sampler folded ticks during the audit");
    }
  }
  ctx.emit(table, "alloc_audit");
  ctx.note("steady_allocs is a process-wide operator-new delta over the "
           "steady window; any nonzero value is a hot-path regression "
           "(DESIGN.md §9)");
}

}  // namespace
}  // namespace asl::bench

// Explicit-only: the audit counts every allocation in the process, so it
// must run in a quiet binary (its own CI step), not after dozens of other
// scenarios' thread and heap churn under --all.
ASL_SCENARIO_EXPLICIT(kv_alloc_audit,
                      "zero-allocation audit of the real request hot path") {
  asl::bench::run_alloc_audit(ctx);
}
