// Engine cost-model calibration scenario (DESIGN.md §7): measures, on this
// host, the wall-clock cost of one emulated NOP and of one get/put against
// each registered engine, and prints the derived per-op NOP classes next to
// the checked-in reference profile. This is the procedure that produced the
// defaults in src/db/engine.cpp; rerun it on a quiet host after an engine
// change and copy the classes over.
//
// Wall-clock numbers on a shared runner are noise, so shape checks stay on
// validity (every engine measured, classes positive, reference profiles
// present); the measured-vs-reference comparison is a table to eyeball, not
// an assertion.
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/engine_calib.h"

namespace asl::bench {
namespace {

void run_engine_calib(ScenarioContext& ctx) {
  ctx.banner("kv_engine_calib",
             "per-op engine cost calibration (wall clock, this host)");
  ctx.note("procedure: nop_ns = min-of-5 spin passes; op_ns = mean over "
           "20k uniform-key ops on a 4k-key prefilled engine; "
           "cs class = op_ns / nop_ns (post split kept from the reference)");

  const std::vector<EngineCalibResult> results = calibrate_all_engines();
  ctx.emit(engine_calib_table(results), "engine_calib");

  bool all_valid = !results.empty();
  bool classes_positive = true;
  bool references_pinned = true;
  for (const EngineCalibResult& r : results) {
    all_valid = all_valid && r.valid();
    classes_positive = classes_positive && r.measured.get.cs_nops > 0 &&
                       r.measured.put.cs_nops > 0 && r.nop_ns > 0;
    references_pinned = references_pinned && !r.reference.empty();
    ctx.note(r.engine + ": measured put/get cs ratio " +
             Table::fmt(static_cast<double>(r.measured.put.cs_nops) /
                            static_cast<double>(r.measured.get.cs_nops),
                        2) +
             " (reference " +
             Table::fmt(static_cast<double>(r.reference.put.cs_nops) /
                            static_cast<double>(r.reference.get.cs_nops),
                        2) +
             ")");
  }
  ctx.shape_check(all_valid, "every registered engine calibrates");
  ctx.shape_check(classes_positive, "derived cost classes are positive");
  ctx.shape_check(references_pinned,
                  "every engine has a checked-in reference profile");
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_engine_calib,
             "per-op engine cost calibration (wall clock, this host)") {
  asl::bench::run_engine_calib(ctx);
}
