// kv_telemetry / sim_kv_telemetry — the live-telemetry scenarios
// (DESIGN.md §11).
//
// kv_telemetry runs the real service under kv_zipf_diurnal's traffic with
// the observation pipeline on: the sampler folds the lock-free metrics
// registry into time series (emitted as long-form CSV) and 1-in-64 span
// tracing exports a Chrome-trace JSON timeline (--spans=PATH). The shape
// checks make the telemetry *load-bearing*: the sampled series must resolve
// the diurnal swing (peak-window completion rate clearly above the trough
// windows), the final tick must observe the drained service, and a
// closed-loop A/B pump bounds the perturbation telemetry is allowed to
// cost.
//
// sim_kv_telemetry samples the identical series schema in virtual time on
// the twin: the trough/peak ordering becomes an exact deterministic fact,
// the telemetry CSV is byte-identical across runs (the determinism suite
// pins it against a checked-in golden), and telemetry on vs off leaves the
// measured table byte-identical — sampling reads virtual time, it never
// bends it.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.h"
#include "kv_probe_common.h"
#include "platform/rng.h"
#include "server/scenarios.h"
#include "server/sim_kv_service.h"
#include "server/telemetry.h"
#include "workload/open_loop.h"

namespace asl::bench {
namespace {

using server::KvScenario;
using server::KvService;
using server::KvTelemetry;
using server::OpenLoopResult;
using server::ServiceReport;
using server::SimServiceReport;

// The diurnal period of the kv_telemetry load (scenarios.cpp) — needed here
// to place the phase windows; scaled with --time-scale like the horizon.
constexpr Nanos kDiurnalPeriod = 200 * kNanosPerMilli;

// Mean throughput (ops per ns, wall or virtual) of a cumulative-counter
// series inside the diurnal trough and peak windows. Each inter-tick delta
// is attributed to the phase of its midpoint; the windows are the ±12.5%
// of the period around the trough (phase 0) and the peak (phase 0.5) —
// wide enough to absorb the real path's start-to-release offset, narrow
// enough that the 3.2x offered swing cannot average away.
struct DiurnalRates {
  double trough = 0.0;  // ops/ns
  double peak = 0.0;
  bool valid = false;  // both windows saw at least one whole tick
};

DiurnalRates diurnal_window_rates(const TimeSeries* completed, Nanos period) {
  DiurnalRates rates;
  if (completed == nullptr || period <= 0 || completed->size() < 2) {
    return rates;
  }
  const auto& pts = completed->points();
  const auto p = static_cast<std::uint64_t>(period);
  double trough_ops = 0.0, trough_ns = 0.0, peak_ops = 0.0, peak_ns = 0.0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const std::uint64_t t0 = pts[i - 1].t, t1 = pts[i].t;
    if (t1 <= t0 || pts[i].v < pts[i - 1].v) continue;
    const double phase = static_cast<double>(((t0 + t1) / 2) % p) /
                         static_cast<double>(p);
    const double ops = static_cast<double>(pts[i].v - pts[i - 1].v);
    const double ns = static_cast<double>(t1 - t0);
    if (phase >= 0.875 || phase < 0.125) {
      trough_ops += ops;
      trough_ns += ns;
    } else if (phase >= 0.375 && phase < 0.625) {
      peak_ops += ops;
      peak_ns += ns;
    }
  }
  if (trough_ns > 0 && peak_ns > 0) {
    rates.trough = trough_ops / trough_ns;
    rates.peak = peak_ops / peak_ns;
    rates.valid = true;
  }
  return rates;
}

// Last recorded value of a named series (0 when absent or empty).
std::uint64_t last_value(const obs::TimeSeriesLog& log,
                         const std::string& name) {
  const TimeSeries* s = log.find(name);
  return (s == nullptr || s->empty()) ? 0 : s->points().back().v;
}

// The kv_telemetry scenario with its time knobs (horizon, arrival
// modulation, sampling cadence) compressed by `time_scale` together, so a
// scaled run sees the same two "days" resolved into the same ~40 ticks per
// day.
KvScenario scaled_scenario(double time_scale) {
  KvScenario sc = server::make_kv_scenario("kv_telemetry");
  sc.horizon =
      static_cast<Nanos>(static_cast<double>(sc.horizon) * time_scale);
  for (server::LoadSpec& spec : sc.load) {
    spec.arrivals = spec.arrivals.with_time_scale(time_scale);
  }
  sc.service.telemetry.sample_period_ns = std::max<Nanos>(
      1, static_cast<Nanos>(
             static_cast<double>(sc.service.telemetry.sample_period_ns) *
             time_scale));
  return sc;
}

// ------------------------------------------------------------- real path

// Wall time of a closed-loop pump of `n` requests against a small service
// with telemetry on or off (the kv_alloc_audit idiom: try_submit + yield,
// then poll the queues dry). Construction/teardown are excluded from the
// timed window, so the A/B compares only the instrumented hot path plus the
// live sampler.
Nanos pump_window_ns(bool telemetry_on, std::uint64_t n) {
  server::KvServiceConfig cfg;
  cfg.engine = "hash";
  cfg.num_shards = 2;
  cfg.workers_per_shard = 2;
  cfg.queue_capacity = 64;
  cfg.batch_k = 4;
  cfg.prefill_keys = 512;
  cfg.classes.push_back(server::RequestClass{"perturb", 2 * kNanosPerMilli});
  if (telemetry_on) {
    cfg.telemetry.enabled = true;
    cfg.telemetry.sample_period_ns = 1 * kNanosPerMilli;
    cfg.telemetry.span_sample_every = 64;
    cfg.telemetry.span_ring_capacity = 512;
  }
  KvService service(cfg);
  service.start();
  Rng rng(0x7e1e);
  auto pump_one = [&](std::uint64_t i) {
    const server::OpType op =
        (i % 4 == 0) ? server::OpType::kPut : server::OpType::kGet;
    while (!service.try_submit(op, rng.below(512), 0)) {
      std::this_thread::yield();
    }
  };
  // Short warm pass so both variants time steady state, not first-touch
  // effects.
  for (std::uint64_t i = 0; i < n / 10; ++i) pump_one(i);
  const Nanos t0 = now_ns();
  for (std::uint64_t i = 0; i < n; ++i) pump_one(i);
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    while (service.queue_depth(s) != 0) std::this_thread::yield();
  }
  const Nanos elapsed = now_ns() - t0;
  service.stop();
  return elapsed;
}

void run_kv_telemetry(ScenarioContext& ctx) {
  KvScenario sc = scaled_scenario(ctx.time_scale());
  const Nanos period = static_cast<Nanos>(
      static_cast<double>(kDiurnalPeriod) * ctx.time_scale());

  ctx.banner("kv_telemetry", sc.title);
  ctx.note("sample_period_us=" +
           std::to_string(sc.service.telemetry.sample_period_ns /
                          kNanosPerMicro) +
           " span_sample_every=" +
           std::to_string(sc.service.telemetry.span_sample_every) +
           " horizon_ms=" + std::to_string(sc.horizon / kNanosPerMilli));

  KvService service(sc.service);
  service.start();
  OpenLoopResult load = server::run_open_loop(service, sc.load, sc.horizon);
  service.stop();
  const ServiceReport report = service.report();
  const KvTelemetry* telem = service.telemetry();

  ctx.emit(kv_measured_table(report), "kv_measured");
  ctx.emit(telem->log().table(), "kv_telemetry_series");

  // The usual accounting bar first, then the telemetry contract proper.
  ctx.shape_check(load.offered == load.accepted + load.rejected,
                  "offered = accepted + rejected (generator)");
  ctx.shape_check(report.total_completed() == report.total_accepted(),
                  "stop() drains every accepted request");
  ctx.shape_check(telem->ticks() > 2, "sampler folded periodic ticks");
  ctx.note("sampler ticks=" + std::to_string(telem->ticks()) +
           " series=" + std::to_string(telem->log().num_series()) +
           " dropped_points=" + std::to_string(telem->log().dropped()));

  // The final tick runs after the drain (stop() stops the sampler last):
  // cumulative completed series end at the report's totals and every
  // sampled queue depth ends at zero.
  bool final_matches = true;
  for (const server::ClassReport& c : report.classes) {
    final_matches =
        final_matches &&
        last_value(telem->log(), "class." + c.name + ".completed") ==
            c.completed;
  }
  ctx.shape_check(final_matches,
                  "final tick's completed series equal the report totals");
  bool depths_zero = true;
  for (std::uint32_t s = 0; s < sc.service.num_shards; ++s) {
    depths_zero = depths_zero &&
                  last_value(telem->log(),
                             "shard." + std::to_string(s) + ".depth") == 0;
  }
  ctx.shape_check(depths_zero, "final tick observes drained queues");

  // The sampled series must resolve the diurnal swing: the interactive
  // class's completion rate inside the peak windows clearly above the
  // trough windows. The offered swing is ~3.2x; asserting 1.5x keeps the
  // check CI-safe while still failing a sampler that smears or misorders
  // its ticks.
  const DiurnalRates rates = diurnal_window_rates(
      telem->log().find("class." + sc.service.classes[0].name + ".completed"),
      period);
  ctx.shape_check(rates.valid, "trough and peak windows both sampled");
  if (rates.valid) {
    ctx.note("trough " + Table::fmt_ops(rates.trough * 1e9) +
             " ops/s vs peak " + Table::fmt_ops(rates.peak * 1e9) + " ops/s");
    ctx.shape_check(
        rates.peak > 1.5 * rates.trough,
        "time series resolve the diurnal swing (peak > 1.5x trough)");
  }

  // Span tracing: the 1-in-64 gate must have sampled real requests; the
  // export is Chrome trace-event JSON (schema pinned by obs_test; CI also
  // loads the artifact with a JSON parser).
  ctx.shape_check(telem->tracer().recorded() > 0,
                  "span tracer sampled requests");
  const std::string spans_path = ctx.option("spans");
  if (!spans_path.empty()) {
    std::ofstream out(spans_path);
    if (out) {
      telem->tracer().write_chrome_trace(out, service.telemetry_epoch_ns());
    }
    ctx.shape_check(static_cast<bool>(out),
                    "wrote Chrome trace JSON to " + spans_path);
    ctx.note("spans recorded=" + std::to_string(telem->tracer().recorded()) +
             " dropped=" + std::to_string(telem->tracer().dropped()));
  }

  // Perturbation bound: a closed-loop pump with telemetry on must stay
  // within a band of the same pump with it off. Min-of-3 each, interleaved
  // to decorrelate runner drift; the wide 1.5x + 10 ms band keeps shared CI
  // runners from flaking while still catching a hot path that grew a lock
  // or a syscall.
  const std::uint64_t pump_reqs = 100'000;
  Nanos off_ns = ~Nanos{0} >> 1, on_ns = ~Nanos{0} >> 1;
  for (int trial = 0; trial < 3; ++trial) {
    off_ns = std::min(off_ns, pump_window_ns(false, pump_reqs));
    on_ns = std::min(on_ns, pump_window_ns(true, pump_reqs));
  }
  ctx.note("perturbation pump (" + std::to_string(pump_reqs) +
           " reqs, min of 3): telemetry-off " +
           std::to_string(off_ns / kNanosPerMicro) + " us, telemetry-on " +
           std::to_string(on_ns / kNanosPerMicro) + " us");
  ctx.shape_check(on_ns <= off_ns + off_ns / 2 + 10 * kNanosPerMilli,
                  "telemetry-on throughput within band of telemetry-off");
}

// ------------------------------------------------------------------ twin

void run_sim_kv_telemetry(ScenarioContext& ctx) {
  KvScenario sc = scaled_scenario(ctx.time_scale());
  const Nanos period = static_cast<Nanos>(
      static_cast<double>(kDiurnalPeriod) * ctx.time_scale());

  ctx.banner("sim_kv_telemetry", "twin of: " + sc.title);

  const SimServiceReport report = server::run_sim_kv(sc);
  ctx.emit(server::sim_kv_measured_table(report), "sim_kv_measured");
  ctx.emit(server::sim_kv_telemetry_table(report), "sim_kv_telemetry");

  ctx.shape_check(report.total_completed() == report.total_accepted(),
                  "drain completes every accepted request");
  ctx.shape_check(!report.telemetry.empty(),
                  "virtual-time sampler recorded series");

  // Byte-determinism: a second run emits the identical telemetry CSV (the
  // determinism suite additionally pins it against a checked-in golden).
  {
    const SimServiceReport again = server::run_sim_kv(sc);
    std::ostringstream a, b;
    server::sim_kv_telemetry_table(report).print_csv(a);
    server::sim_kv_telemetry_table(again).print_csv(b);
    ctx.shape_check(a.str() == b.str() && !a.str().empty(),
                    "telemetry time-series CSV is byte-identical across runs");
  }

  // Zero perturbation, exactly: the same scenario with telemetry off
  // produces a byte-identical measured table — sampling reads virtual time,
  // it never bends it.
  {
    KvScenario off = sc;
    off.service.telemetry.enabled = false;
    const SimServiceReport off_report = server::run_sim_kv(off);
    std::ostringstream a, b;
    server::sim_kv_measured_table(report).print_csv(a);
    server::sim_kv_measured_table(off_report).print_csv(b);
    ctx.shape_check(a.str() == b.str(),
                    "telemetry on/off measured tables are byte-identical "
                    "(zero perturbation)");
  }

  // In virtual time the diurnal ordering is exact, so the bar is higher
  // than the real path's.
  const DiurnalRates rates = diurnal_window_rates(
      report.telemetry.find("class." + sc.service.classes[0].name +
                            ".completed"),
      period);
  ctx.shape_check(rates.valid, "trough and peak windows both sampled");
  if (rates.valid) {
    ctx.note("trough " + Table::fmt_ops(rates.trough * 1e9) +
             " ops/s vs peak " + Table::fmt_ops(rates.peak * 1e9) +
             " ops/s (virtual)");
    ctx.shape_check(
        rates.peak > 2.0 * rates.trough,
        "virtual-time series resolve the diurnal swing (peak > 2x trough)");
  }

  // Final-tick drain facts, exact in virtual time.
  bool final_matches = true;
  for (const server::ClassReport& c : report.service.classes) {
    final_matches = final_matches &&
                    last_value(report.telemetry,
                               "class." + c.name + ".completed") == c.completed;
  }
  ctx.shape_check(final_matches,
                  "final tick's completed series equal the report totals");
  bool depths_zero = true;
  for (std::uint32_t s = 0; s < sc.service.num_shards; ++s) {
    depths_zero = depths_zero &&
                  last_value(report.telemetry,
                             "shard." + std::to_string(s) + ".depth") == 0;
  }
  ctx.shape_check(depths_zero, "final tick observes drained queues");
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_telemetry,
             "live telemetry: time series + span traces over a diurnal KV "
             "run") {
  asl::bench::run_kv_telemetry(ctx);
}

ASL_SCENARIO(sim_kv_telemetry,
             "twin: virtual-time telemetry series over the diurnal KV run") {
  asl::bench::run_sim_kv_telemetry(ctx);
}
