// Figure-9d-f: database figure for the kUpscaleDb workload model (see db_bench_common.h and
// sim/db_model.cpp for the lock pattern and op mix).
#include <cmath>

#include "db_bench_common.h"

int main() {
  return asl::bench::run_db_figure(asl::sim::DbKind::kUpscaleDb, "Figure-9d-f");
}
