// Figure-9d-f: database figure for the kUpscaleDb workload model (see
// db_bench_common.h and sim/db_model.cpp for the lock pattern and op mix).
#include "db_bench_common.h"

ASL_SCENARIO(fig09_upscaledb, "Figure 9d-f: upscaledb workload model") {
  asl::bench::run_db_figure(ctx, asl::sim::DbKind::kUpscaleDb, "Figure-9d-f");
}
