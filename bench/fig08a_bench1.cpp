// Figure 8a: Bench-1 (heavily contended, epoch = 4 critical sections over 2
// locks, 64 shared lines total) — comparison across all locks plus LibASL at
// several SLOs, LibASL-OPT (static window) and LibASL-MAX.
#include <cmath>

#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig08a_bench1, "Figure 8a: Bench-1 lock comparison") {
  ctx.banner("Figure 8a", "Bench-1 lock comparison");
  ctx.note("epoch = 4 CS over 2 locks (64 lines); TAS shows big-core affinity");

  auto gen = bench1_workload();
  Table table = comparison_table();

  auto run_plain = [&](const char* name, LockKind kind) {
    SimResult r = run_sim(ctx.scaled(bench1_config(kind)), gen);
    add_comparison_row(table, name, r, r.cs_throughput());
    return r;
  };
  auto run_asl = [&](const char* name, Time slo, bool use_slo) {
    SimResult r = run_sim(ctx.scaled(bench1_asl_config(slo, use_slo)), gen);
    add_comparison_row(table, name, r, r.cs_throughput());
    return r;
  };

  SimResult pthread = run_plain("pthread", LockKind::kPthread);
  SimResult tas = run_plain("tas", LockKind::kTas);
  SimResult ticket = run_plain("ticket", LockKind::kTicket);
  SimConfig shfl_cfg = ctx.scaled(bench1_config(LockKind::kShflPb));
  shfl_cfg.pb_proportion = 10;
  SimResult shfl = run_sim(shfl_cfg, gen);
  add_comparison_row(table, "shfl-pb10", shfl, shfl.cs_throughput());
  SimResult mcs = run_plain("mcs", LockKind::kMcs);
  SimResult asl0 = run_asl("libasl-0", 0, true);
  SimResult asl25 = run_asl("libasl-25", 25 * kMicro, true);
  // LibASL-OPT: static window chosen to land near the 50us SLO behaviour.
  // Bench-1 epochs take 4 locks, each acquisition may wait out the window,
  // so the per-acquisition optimum is ~SLO/4.
  SimConfig opt_cfg = ctx.scaled(bench1_config(LockKind::kReorderable));
  opt_cfg.policy = Policy::kAslStatic;
  opt_cfg.static_window = 12 * kMicro;
  SimResult opt = run_sim(opt_cfg, gen);
  add_comparison_row(table, "libasl-opt", opt, opt.cs_throughput());
  SimResult asl50 = run_asl("libasl-50", 50 * kMicro, true);
  SimResult asl65 = run_asl("libasl-65", 65 * kMicro, true);
  SimResult aslmax = run_asl("libasl-max", 0, false);
  ctx.emit(table, "lock_comparison");

  (void)ticket;
  (void)asl65;
  ctx.shape_check(std::abs(asl0.cs_throughput() / mcs.cs_throughput() - 1.0) <
                      0.15,
                  "LibASL-0 falls back to FIFO (== MCS throughput)");
  ctx.shape_check(asl25.cs_throughput() <= asl50.cs_throughput() * 1.05 &&
                      asl50.cs_throughput() <= aslmax.cs_throughput() * 1.05,
                  "throughput grows with the SLO");
  ctx.shape_check(aslmax.cs_throughput() > tas.cs_throughput(),
                  "LibASL-MAX beats the TAS lock (paper: up to 1.2x)");
  ctx.shape_check(aslmax.cs_throughput() > mcs.cs_throughput() * 1.3,
                  "LibASL-MAX substantially beats MCS (paper: 1.7x)");
  ctx.shape_check(pthread.cs_throughput() < mcs.cs_throughput(),
                  "pthread_mutex_lock has the worst throughput");
  ctx.shape_check(
      asl25.latency.p99_overall() < tas.latency.p99_overall() * 3 / 4,
      "at similar throughput (LibASL-25), tail latency well below "
      "TAS (paper: >50% reduction)");
  ctx.shape_check(asl50.cs_throughput() > tas.cs_throughput(),
                  "at similar tail latency (LibASL-50), throughput above TAS "
                  "(paper: +50%)");
  ctx.shape_check(
      asl50.cs_throughput() > opt.cs_throughput() * 0.85,
      "AIMD window costs little vs the static-window OPT (paper: 6%)");
  ctx.shape_check(aslmax.cs_throughput() > shfl.cs_throughput() * 1.2,
                  "LibASL's dynamic ordering dominates the static SHFL-PB10 "
                  "trade-off point");
}
