// Simulated-twin KV scenarios (DESIGN.md §5): the same five open-loop
// configurations as bench/kv_scenarios.cpp, replayed on the discrete-event
// twin instead of real threads. Three tables per scenario:
//   * offered — the identical arrival digest the real path emits (same
//     generate_trace, byte-for-byte);
//   * sim_kv_measured — the virtual-time measured table, byte-reproducible
//     (the determinism + golden tests compare it);
//   * sim_kv_shards — per-shard queue-depth stats (hot-shard skew).
// Because the clock is virtual, shape checks here go beyond accounting:
// rejection-free steady runs and SLO attainment are deterministic facts.
#include <string>

#include "bench_common.h"
#include "server/sim_kv_service.h"

namespace asl::bench {
namespace {

using server::ClassReport;
using server::KvScenario;
using server::SimServiceReport;
using server::SimShardStats;

void run_sim_kv_scenario(ScenarioContext& ctx, const std::string& name) {
  KvScenario sc = server::make_kv_scenario(name);
  // Same compression rule as the real path: horizon and arrival modulation
  // shrink together, so a --time-scale run covers the same burst cycles.
  sc.horizon = static_cast<Nanos>(
      static_cast<double>(sc.horizon) * ctx.time_scale());
  for (server::LoadSpec& spec : sc.load) {
    spec.arrivals = spec.arrivals.with_time_scale(ctx.time_scale());
  }

  ctx.banner("sim_" + name, "twin of: " + sc.title);
  ctx.note("shards=" + std::to_string(sc.service.num_shards) +
           " workers/shard=" + std::to_string(sc.service.workers_per_shard) +
           " queue_capacity=" + std::to_string(sc.service.queue_capacity) +
           " horizon_ms=" + std::to_string(sc.horizon / kNanosPerMilli) +
           " (virtual)");

  ctx.emit(server::offered_trace_table(sc.load, sc.horizon), "kv_offered");

  SimServiceReport report = server::run_sim_kv(sc);
  ctx.emit(server::sim_kv_measured_table(report), "sim_kv_measured");
  ctx.emit(server::sim_kv_shard_table(report), "sim_kv_shards");

  const double achieved =
      report.drained_at == 0
          ? 0.0
          : static_cast<double>(report.total_completed()) *
                static_cast<double>(kNanosPerSec) /
                static_cast<double>(report.drained_at);
  ctx.note("offered " + std::to_string(report.offered) + " reqs, achieved " +
           Table::fmt_ops(achieved) + " ops/s (virtual)");

  // Conservation (as on the real path) plus virtual-time-only facts.
  ctx.shape_check(report.offered ==
                      report.total_accepted() + report.total_rejected(),
                  "offered = accepted + rejected");
  ctx.shape_check(report.total_completed() == report.total_accepted(),
                  "drain completes every accepted request");
  ctx.shape_check(report.total_completed() > 0, "twin made progress");
  ctx.shape_check(report.drained_at > 0 && report.horizon > 0,
                  "virtual clock advanced");
  bool shards_progress = true;
  for (const SimShardStats& s : report.shards) {
    shards_progress = shards_progress && s.completed == s.accepted;
  }
  ctx.shape_check(shards_progress, "per-shard completed == accepted");
  bool met_some = true;
  for (const ClassReport& c : report.service.classes) {
    met_some = met_some && (c.completed == 0 || c.slo_met > 0);
  }
  ctx.shape_check(met_some, "each class met its SLO at least once");
  // The base scenarios run far below twin saturation even through bursts;
  // in virtual time that is an exact statement, not a hope.
  ctx.shape_check(report.total_rejected() == 0,
                  "no rejections below saturation (deterministic)");
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(sim_kv_uniform_steady,
             "twin: open-loop KV, uniform keys, steady Poisson arrivals") {
  asl::bench::run_sim_kv_scenario(ctx, "kv_uniform_steady");
}

ASL_SCENARIO(sim_kv_uniform_bursty,
             "twin: open-loop KV, uniform keys, bursty (MMPP) arrivals") {
  asl::bench::run_sim_kv_scenario(ctx, "kv_uniform_bursty");
}

ASL_SCENARIO(sim_kv_zipf_steady,
             "twin: open-loop KV, zipfian keys, steady Poisson arrivals") {
  asl::bench::run_sim_kv_scenario(ctx, "kv_zipf_steady");
}

ASL_SCENARIO(sim_kv_zipf_bursty,
             "twin: open-loop KV, zipfian keys, bursty (MMPP) arrivals") {
  asl::bench::run_sim_kv_scenario(ctx, "kv_zipf_bursty");
}

ASL_SCENARIO(sim_kv_zipf_diurnal,
             "twin: open-loop KV, zipfian keys, diurnal-ramp arrivals") {
  asl::bench::run_sim_kv_scenario(ctx, "kv_zipf_diurnal");
}

ASL_SCENARIO(sim_kv_batch_shed,
             "twin: open-loop KV, batched shard drain + sheddable writes") {
  asl::bench::run_sim_kv_scenario(ctx, "kv_batch_shed");
}
