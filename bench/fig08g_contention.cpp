// Figure 8g (Bench-5): throughput speedup of LibASL (no SLO, max reordering)
// over each baseline at varying contention: the interval between critical
// sections sweeps 10^0..10^5 NOPs. Includes the MCS-4 (big cores only) row.
#include <cmath>

#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig08g_contention,
             "Figure 8g: LibASL speedup vs contention (10^n NOP intervals)") {
  ctx.banner("Figure 8g", "LibASL speedup vs contention (10^n NOP intervals)");
  ctx.note("speedup = LibASL-MAX throughput / baseline throughput - 1 "
           "(x100 %)");

  Table table({"nops_10^n", "vs_mcs4_pct", "vs_tas_pct", "vs_ticket_pct",
               "vs_mcs_pct", "vs_pthread_pct", "vs_shflpb10_pct"});

  double high_contention_vs_mcs4 = 0;
  double low_contention_vs_mcs4 = 0;
  bool never_bad = true;
  for (std::uint32_t decade = 0; decade <= 5; ++decade) {
    auto gen = contention_workload(decade);
    SimConfig asl = collapse_config(8, LockKind::kReorderable,
                                    TasAffinity::kSymmetric);
    asl.policy = Policy::kAsl;
    asl.use_slo = false;
    SimResult ra = run_sim(ctx.scaled(asl), gen);

    auto speedup_pct = [&](LockKind kind, std::uint32_t threads,
                           TasAffinity aff) {
      SimConfig cfg = collapse_config(threads, kind, aff);
      cfg.pb_proportion = 10;
      SimResult r = run_sim(ctx.scaled(cfg), gen);
      return (ra.cs_throughput() / r.cs_throughput() - 1.0) * 100.0;
    };

    const double vs_mcs4 =
        speedup_pct(LockKind::kMcs, 4, TasAffinity::kSymmetric);
    const double vs_tas =
        speedup_pct(LockKind::kTas, 8, TasAffinity::kBigCores);
    const double vs_ticket =
        speedup_pct(LockKind::kTicket, 8, TasAffinity::kSymmetric);
    const double vs_mcs =
        speedup_pct(LockKind::kMcs, 8, TasAffinity::kSymmetric);
    const double vs_pthread =
        speedup_pct(LockKind::kPthread, 8, TasAffinity::kSymmetric);
    const double vs_shfl =
        speedup_pct(LockKind::kShflPb, 8, TasAffinity::kSymmetric);
    table.add_row({std::to_string(decade), Table::fmt(vs_mcs4, 1),
                   Table::fmt(vs_tas, 1), Table::fmt(vs_ticket, 1),
                   Table::fmt(vs_mcs, 1), Table::fmt(vs_pthread, 1),
                   Table::fmt(vs_shfl, 1)});
    if (decade == 0) high_contention_vs_mcs4 = vs_mcs4;
    if (decade == 5) low_contention_vs_mcs4 = vs_mcs4;
    never_bad = never_bad && vs_mcs > -20.0;
  }
  ctx.emit(table, "contention_speedup");

  ctx.shape_check(std::abs(high_contention_vs_mcs4) < 25.0,
                  "at extreme contention LibASL ~ MCS-4 (standby little "
                  "cores)");
  ctx.shape_check(low_contention_vs_mcs4 > 30.0,
                  "at low contention little cores bring real speedup "
                  "(paper: 68%)");
  ctx.shape_check(never_bad,
                  "LibASL never falls far below MCS at any contention");
}
