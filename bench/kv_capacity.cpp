// Latency-targeted capacity probe scenarios (DESIGN.md §5): bisection over
// offered rate for the max rate whose per-class p99 still meets the SLO
// (with zero/bounded rejections), YCSB/treadmill-style.
//
//   * kv_capacity_twin — the probe on the simulated twin. Virtual time, so
//     the whole search is deterministic: the found rate is a regression-
//     testable number (tests/capacity_test.cpp asserts convergence and
//     bracketing on the same configuration).
//   * kv_capacity_real — the probe on the real wall-clock service in smoke
//     mode: coarse tolerance, few trials, horizon scaled by --time-scale.
//     The twin's rate is printed alongside for comparison; shape checks stay
//     on probe-accounting invariants (CI hosts are noisy).
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/capacity_probe.h"
#include "harness/engine_calib.h"
#include "kv_probe_common.h"
#include "server/sim_kv_service.h"
#include "workload/open_loop.h"

namespace asl::bench {
namespace {

using server::KvScenario;
using server::KvService;

// Probe configuration shared by both paths: the steady-uniform scenario with
// a smaller queue (sharper saturation onset — a 512-deep queue absorbs
// minutes of marginal overload before rejecting) and a shortened horizon.
KvScenario probe_scenario(Nanos horizon) {
  KvScenario sc = server::make_kv_scenario("kv_uniform_steady");
  sc.horizon = horizon;
  sc.service.queue_capacity = 128;
  sc.service.prefill_keys = 4096;  // trials rebuild the service; keep cheap
  return sc;
}

CapacityResult probe_twin(const KvScenario& base,
                          const server::SimTwinConfig& twin = {}) {
  const CapacityProbeConfig cfg = twin_probe_config(base);
  return find_capacity(cfg, [&base, &twin](double rate) {
    return server::report_meets_slos(
        server::run_sim_kv(at_rate(base, rate), twin).service);
  });
}

void check_probe_invariants(ScenarioContext& ctx, const CapacityResult& r,
                            std::uint32_t max_trials) {
  ctx.shape_check(!r.trials.empty() && r.trials.size() <= max_trials,
                  "trial count within budget");
  ctx.shape_check(r.feasible == r.trials.front().ok,
                  "feasibility reflects the first trial");
  ctx.shape_check(!(r.feasible && r.bracketed) || r.max_rate < r.min_violating,
                  "bracket ordered: max feasible < min violating");
}

void run_capacity_twin(ScenarioContext& ctx) {
  const Nanos horizon = 10 * kNanosPerMilli;
  const KvScenario base = probe_scenario(horizon);
  ctx.banner("kv_capacity_twin", "latency-targeted load search, virtual time");
  ctx.note("SLOs: kv-get p99 <= 1 ms, kv-put p99 <= 4 ms, zero rejections");

  const CapacityResult r = probe_twin(base);
  ctx.emit(capacity_table(r), "capacity_twin");
  ctx.note("max SLO-feasible rate: " + Table::fmt_ops(r.max_rate) +
           " req/s (first violating: " + Table::fmt_ops(r.min_violating) +
           ")");

  check_probe_invariants(ctx, r, 24);
  ctx.shape_check(r.feasible, "nominal scenario rate is SLO-feasible");
  ctx.shape_check(r.bracketed, "probe found the saturation bracket");
  ctx.shape_check(!r.bracketed || r.trials.size() == 24 ||
                      r.min_violating <= r.max_rate * 1.1 * 1.0001,
                  "bracket narrowed to the 10% tolerance");

  // Per-class view of the same search: each class's capacity is the max
  // offered rate (of the whole mix) at which *that* class still meets its
  // SLO (class_meets_slo). The whole-service capacity above is the min of
  // these, so every per-class number must sit at or above it.
  const std::vector<ClassCapacity> per_class = find_class_capacities_memoized(
      twin_probe_config(base), base.service,
      [&base](double rate) { return server::run_sim_kv(at_rate(base, rate)); });
  ctx.emit(class_capacity_table(per_class), "capacity_twin_by_class");
  bool at_least_service = true;
  for (const ClassCapacity& c : per_class) {
    at_least_service = at_least_service && c.result.feasible &&
                       c.result.max_rate >= r.max_rate * (1.0 - 1e-9);
  }
  ctx.shape_check(at_least_service,
                  "every per-class capacity >= the whole-service capacity");
}

void run_capacity_real(ScenarioContext& ctx) {
  const Nanos horizon = static_cast<Nanos>(
      static_cast<double>(40 * kNanosPerMilli) * ctx.time_scale());
  const KvScenario base = probe_scenario(horizon);
  ctx.banner("kv_capacity_real",
             "latency-targeted load search, wall clock (smoke)");

  // The twin's answer for the same configuration, as the reference point —
  // calibrated on *this* host (the carried ROADMAP fidelity item): the
  // engine's measured per-op profile is fed through KvServiceConfig::cost
  // and the measured NOP cost through SimTwinConfig::nop_ns, so the 2x-band
  // verdict below compares the real probe against a twin modeling this
  // machine's engines, not the checked-in reference host's.
  KvScenario twin_base = probe_scenario(10 * kNanosPerMilli);
  server::SimTwinConfig twin_cfg;
  const EngineCalibResult calib = calibrate_engine(twin_base.service.engine);
  if (calib.valid() && calib.nop_ns > 0) {
    twin_base.service.cost = calib.measured;
    twin_cfg.nop_ns = calib.nop_ns;
    ctx.note("twin reference calibrated on this host: engine=" +
             calib.engine + " get " +
             std::to_string(calib.measured.get.cs_nops) + " / put " +
             std::to_string(calib.measured.put.cs_nops) + " cs NOPs @ " +
             Table::fmt(calib.nop_ns, 3) + " ns/NOP (reference: " +
             std::to_string(calib.reference.get.cs_nops) + " / " +
             std::to_string(calib.reference.put.cs_nops) + ")");
  } else {
    ctx.note("engine calibration unavailable on this host; twin reference "
             "uses the checked-in profile");
  }
  const CapacityResult twin = probe_twin(twin_base, twin_cfg);
  ctx.note("twin reference capacity: " + Table::fmt_ops(twin.max_rate) +
           " req/s (virtual-time model, host-calibrated)");

  CapacityProbeConfig cfg;
  cfg.start_rate = server::nominal_rate_per_sec(base.load);
  cfg.growth = 2.0;
  cfg.tolerance = 0.5;  // smoke: bracket coarsely, spend few trials
  cfg.max_trials = 6;
  const CapacityResult r = find_capacity(cfg, [&base](double rate) {
    const KvScenario sc = at_rate(base, rate);
    KvService service(sc.service);
    service.start();
    server::run_open_loop(service, sc.load, sc.horizon);
    service.stop();
    // Real runs tolerate a trace of rejections (generator jitter turns lag
    // into bursts); 0.1% is far below any real saturation signature.
    return server::report_meets_slos(service.report(), 0.001);
  });
  ctx.emit(capacity_table(r), "capacity_real");
  ctx.note(r.feasible
               ? "max SLO-feasible rate (this host): " +
                     Table::fmt_ops(r.max_rate) + " req/s"
               : "nominal rate infeasible on this host (loaded runner)");

  // Automated twin-vs-real cross-check (ROADMAP follow-up): the ratio table
  // plus a *non-fatal* tolerance verdict. A shared runner legitimately lands
  // far from the virtual-time model, so a band miss is a warning note, never
  // a failed shape check — the gate stays on probe accounting.
  const CapacityComparison cmp = compare_capacity(r, twin, /*tolerance=*/2.0);
  ctx.emit(capacity_comparison_table(cmp), "capacity_real_vs_twin");
  if (cmp.within_band) {
    ctx.note("twin-vs-real: real capacity is " +
             Table::fmt(cmp.ratio, 2) + "x the twin's (within the 2x band)");
  } else if (cmp.both_feasible) {
    ctx.note("WARNING (non-fatal): real capacity is " +
             Table::fmt(cmp.ratio, 2) +
             "x the twin's — outside the 2x band; noisy host or a "
             "twin-fidelity drift worth a look (DESIGN.md §5)");
  } else {
    ctx.note("WARNING (non-fatal): twin-vs-real comparison skipped — a "
             "probe found no feasible capacity on this host");
  }

  // Wall-clock results vary across hosts; assert only probe accounting.
  check_probe_invariants(ctx, r, 6);
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_capacity_twin,
             "capacity probe on the simulated twin (deterministic)") {
  asl::bench::run_capacity_twin(ctx);
}

ASL_SCENARIO(kv_capacity_real,
             "capacity probe on the real service (smoke mode, coarse)") {
  asl::bench::run_capacity_real(ctx);
}
