// Single entry point for every figure bench. Per-figure binaries are this
// same file compiled with ASL_DEFAULT_SCENARIO set (see CMakeLists.txt);
// asl_figures carries no default and can run any registered scenario.
#include "harness/scenario.h"

#ifndef ASL_DEFAULT_SCENARIO
#define ASL_DEFAULT_SCENARIO nullptr
#endif

int main(int argc, char** argv) {
  return asl::bench::scenario_main(argc, argv, ASL_DEFAULT_SCENARIO);
}
