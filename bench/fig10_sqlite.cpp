// Figure-10d-f: database figure for the kSqlite workload model (see
// db_bench_common.h and sim/db_model.cpp for the lock pattern and op mix).
#include "db_bench_common.h"

ASL_SCENARIO(fig10_sqlite, "Figure 10d-f: SQLite workload model") {
  asl::bench::run_db_figure(ctx, asl::sim::DbKind::kSqlite, "Figure-10d-f");
}
