// Host microbenchmarks of the real lock library (google-benchmark):
// uncontended and contended acquire/release cost for every lock, the
// reorderable lock's entry points, and the backoff ablation (DESIGN.md
// ablation 2). These run on the build host, not the simulator — absolute
// numbers are host-specific; the paper analog is the Section 4 setup
// discussion.
#include <benchmark/benchmark.h>

#include "asl/libasl.h"
#include "locks/clh.h"
#include "locks/mcs.h"
#include "locks/pthread_lock.h"
#include "locks/shfl_pb.h"
#include "locks/stp_mcs.h"
#include "locks/tas.h"
#include "locks/tas_backoff.h"
#include "locks/ticket.h"
#include "platform/topology.h"
#include "reorder/reorderable.h"

namespace {

template <typename L>
void BM_Uncontended(benchmark::State& state) {
  L lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK_TEMPLATE(BM_Uncontended, asl::TasLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::TasBackoffLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::TicketLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::McsLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::ClhLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::PthreadLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::StpMcsLock);
BENCHMARK_TEMPLATE(BM_Uncontended, asl::ShflPbLock);

template <typename L>
void BM_Contended(benchmark::State& state) {
  static L lock;
  static std::uint64_t shared_counter = 0;
  for (auto _ : state) {
    lock.lock();
    ++shared_counter;
    benchmark::DoNotOptimize(shared_counter);
    lock.unlock();
  }
}
BENCHMARK_TEMPLATE(BM_Contended, asl::TasLock)->Threads(2)->Threads(4);
BENCHMARK_TEMPLATE(BM_Contended, asl::TicketLock)->Threads(2)->Threads(4);
BENCHMARK_TEMPLATE(BM_Contended, asl::McsLock)->Threads(2)->Threads(4);
BENCHMARK_TEMPLATE(BM_Contended, asl::ShflPbLock)->Threads(2)->Threads(4);

void BM_ReorderableImmediate(benchmark::State& state) {
  asl::ReorderableLock<asl::McsLock> lock;
  for (auto _ : state) {
    lock.lock_immediately();
    lock.unlock();
  }
}
BENCHMARK(BM_ReorderableImmediate);

void BM_ReorderableReorderFreeLock(benchmark::State& state) {
  // Free-lock fast path of lock_reorder (Algorithm 1 line 7).
  asl::ReorderableLock<asl::McsLock> lock;
  for (auto _ : state) {
    lock.lock_reorder(asl::kMaxReorderWindow);
    lock.unlock();
  }
}
BENCHMARK(BM_ReorderableReorderFreeLock);

void BM_AslMutexBigCore(benchmark::State& state) {
  asl::ScopedCoreType big(asl::CoreType::kBig);
  asl::AslMutex<asl::McsLock> mutex;
  for (auto _ : state) {
    mutex.lock();
    mutex.unlock();
  }
}
BENCHMARK(BM_AslMutexBigCore);

void BM_AslMutexLittleCore(benchmark::State& state) {
  asl::ScopedCoreType little(asl::CoreType::kLittle);
  asl::AslMutex<asl::McsLock> mutex;
  for (auto _ : state) {
    mutex.lock();
    mutex.unlock();
  }
}
BENCHMARK(BM_AslMutexLittleCore);

// Ablation 5 (DESIGN.md): the reorderable lock over different FIFO
// substrates — "the underneath replaceable FIFO lock" of Section 3.2.
template <typename Fifo>
void BM_ReorderableSubstrateContended(benchmark::State& state) {
  static asl::ReorderableLock<Fifo> lock;
  const bool reorder = state.thread_index() % 2 == 1;
  for (auto _ : state) {
    if (reorder) {
      lock.lock_reorder(2'000);  // 2 us window
    } else {
      lock.lock_immediately();
    }
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK_TEMPLATE(BM_ReorderableSubstrateContended, asl::McsLock)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_ReorderableSubstrateContended, asl::TicketLock)
    ->Threads(4);
BENCHMARK_TEMPLATE(BM_ReorderableSubstrateContended, asl::ClhLock)
    ->Threads(4);

// Ablation 2: TAS with vs without exponential backoff under contention.
void BM_TasNoBackoffContended(benchmark::State& state) {
  static asl::TasLock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_TasNoBackoffContended)->Threads(4);

void BM_TasBackoffContended(benchmark::State& state) {
  static asl::TasBackoffLock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK(BM_TasBackoffContended)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
