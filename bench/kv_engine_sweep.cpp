// Engine sweep (DESIGN.md §7): the measured case for the pluggable-engine
// subsystem — the same front-end, traffic and SLOs over hash, btree and
// lsm shards, so every difference in the tables is the *engine's* cost
// profile (the paper's Fig. 9/10 point: ASL's benefit and the service's
// capacity depend on the engine's critical-section shape).
//
//   * kv_engine_sweep_twin — engine x read/write mix x offered load on the
//     simulated twin (virtual time, deterministic): a completion/latency
//     table per cell, then a per-class capacity probe per engine
//     (find_capacity_per_class). Two headline facts become assertable:
//     the per-engine capacity ordering at the standard get-dominant mix
//     (lsm > hash > btree — the lock-held share of the op decides, and
//     LSM gets snapshot briefly then read off-lock while btree holds the
//     global lock for the whole traversal), and the LSM read/write
//     asymmetry — put-heavy LSM capacity collapses to a fraction of its
//     get-heavy capacity and falls below hash's, a contrast the symmetric
//     hash profile provably hides (its own get/put ratio stays near 1).
//   * kv_engine_sweep_real — the same engines under the wall-clock service
//     in smoke mode: accounting invariants and store growth per engine
//     (real latency on a shared runner is not assertable).
#include <cstdlib>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "harness/capacity_probe.h"
#include "kv_probe_common.h"
#include "server/sim_kv_service.h"
#include "workload/open_loop.h"

namespace asl::bench {
namespace {

using server::ClassReport;
using server::KvScenario;
using server::KvService;
using server::SimServiceReport;

// One read/write mix: per-class rate multipliers over the standard scenario
// (class 0 = gets at 12k/s nominal, class 1 = puts at 4k/s nominal).
struct Mix {
  const char* name;
  double get_scale;
  double put_scale;
};
constexpr Mix kMixes[] = {
    {"get_heavy", 1.0, 0.25},  // 12k gets : 1k puts
    {"standard", 1.0, 1.0},    // 12k gets : 4k puts (the scenario default)
    {"put_heavy", 1.0 / 6, 3.0},  // 2k gets : 12k puts
};

// --mix= accepts a kMixes name or a "R:W" get:put rate ratio. A ratio keeps
// the standard mix's total nominal rate (16k/s) and splits it R:W, so
// "3:1" reproduces the standard mix and "12:1" the get_heavy one.
bool parse_mix(const std::string& text, Mix& out) {
  for (const Mix& mix : kMixes) {
    if (text == mix.name) {
      out = mix;
      return true;
    }
  }
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  const double r = std::atof(text.substr(0, colon).c_str());
  const double w = std::atof(text.substr(colon + 1).c_str());
  if (r < 0 || w < 0 || r + w <= 0) return false;
  constexpr double kNominalGets = 12'000.0, kNominalPuts = 4'000.0;
  const double total = kNominalGets + kNominalPuts;
  out.name = "ratio";
  out.get_scale = total * r / (r + w) / kNominalGets;
  out.put_scale = total * w / (r + w) / kNominalPuts;
  return true;
}

// The engine / mix subsets a run covers, honouring the --engine= / --mix=
// CLI filters (scenario.h). Returns false (after a failing shape check, so
// CI exits nonzero) when a filter names something unknown.
bool filtered_engines(ScenarioContext& ctx, std::vector<std::string>& out) {
  out = db::kv_engine_names();
  const std::string filter = ctx.option("engine");
  if (filter.empty()) return true;
  for (const std::string& name : out) {
    if (name == filter) {
      out = {filter};
      ctx.note("--engine=" + filter + ": running that engine only");
      return true;
    }
  }
  ctx.shape_check(false, "--engine=" + filter + " names a registered engine");
  return false;
}

bool filtered_mixes(ScenarioContext& ctx, std::vector<Mix>& out) {
  out.assign(std::begin(kMixes), std::end(kMixes));
  const std::string filter = ctx.option("mix");
  if (filter.empty()) return true;
  Mix mix{};
  if (!parse_mix(filter, mix)) {
    ctx.shape_check(false, "--mix=" + filter +
                               " is a known mix name or R:W ratio");
    return false;
  }
  out = {mix};
  ctx.note("--mix=" + filter + ": gets x" + Table::fmt(mix.get_scale, 3) +
           ", puts x" + Table::fmt(mix.put_scale, 3) + " of nominal");
  return true;
}

// The sweep cell: the shared overload profile (scenarios.h — 128-deep
// queue, every per-op class scaled 100x) on `engine`, with the mix applied
// before the whole-load scale so "Nx offered" always means N times the
// *mix's* nominal rate.
KvScenario sweep_scenario(const std::string& engine, const Mix& mix,
                          double rate_scale, Nanos horizon) {
  KvScenario sc = server::make_overloaded_kv_scenario("kv_uniform_steady",
                                                      1.0, horizon);
  sc.service.engine = engine;
  server::scale_class_rates(sc.load, 0, mix.get_scale);
  server::scale_class_rates(sc.load, 1, mix.put_scale);
  server::scale_load_rates(sc.load, rate_scale);
  return sc;
}

std::uint64_t tput_per_sec(const SimServiceReport& r) {
  return r.horizon == 0 ? 0
                        : r.total_completed() * kNanosPerSec / r.horizon;
}

// Whole-service capacity of `engine` under `mix` (twin probe, 10 ms
// trials): the max offered rate of the whole mix meeting every class SLO.
CapacityResult engine_capacity(const std::string& engine, const Mix& mix) {
  const KvScenario base =
      sweep_scenario(engine, mix, 1.0, 10 * kNanosPerMilli);
  return find_capacity(twin_probe_config(base), [&base](double rate) {
    return server::report_meets_slos(
        server::run_sim_kv(at_rate(base, rate)).service);
  });
}

void run_engine_sweep_twin(ScenarioContext& ctx) {
  const Nanos horizon = 20 * kNanosPerMilli;

  ctx.banner("kv_engine_sweep_twin",
             "engine x mix x offered-load sweep on the simulated twin "
             "(deterministic)");
  ctx.note("per-op cost classes from the engine registry defaults "
           "(db/engine.cpp), scaled 100x; same traffic, SLOs and admission "
           "policy in every cell");
  std::vector<std::string> engines;
  std::vector<Mix> mixes;
  if (!filtered_engines(ctx, engines) || !filtered_mixes(ctx, mixes)) return;
  // The headline cross-engine/cross-mix checks compare cells a filtered run
  // may not produce — they only run on the full matrix.
  const bool full_matrix =
      ctx.option("engine").empty() && ctx.option("mix").empty();

  Table sweep({"engine", "mix", "offered_x", "offered", "accepted",
               "rejected", "completed", "tput_per_sec", "get_p99_ns",
               "put_p99_ns"});
  bool conserved = true;
  for (const std::string& engine : engines) {
    for (const Mix& mix : mixes) {
      for (const double scale : {1.0, 4.0, 8.0}) {
        const SimServiceReport r =
            server::run_sim_kv(sweep_scenario(engine, mix, scale, horizon));
        const ClassReport& get = r.service.classes[0];
        const ClassReport& put = r.service.classes[1];
        sweep.add_row({engine, mix.name, std::to_string(
                           static_cast<std::uint64_t>(scale)),
                       std::to_string(r.offered),
                       std::to_string(r.total_accepted()),
                       std::to_string(r.total_rejected()),
                       std::to_string(r.total_completed()),
                       std::to_string(tput_per_sec(r)),
                       std::to_string(get.total.overall().p99()),
                       std::to_string(put.total.overall().p99())});
        conserved = conserved &&
                    r.offered == r.total_accepted() + r.total_rejected() &&
                    r.total_completed() == r.total_accepted();
      }
    }
  }
  ctx.emit(sweep, "engine_sweep");
  ctx.shape_check(conserved, "conservation in every sweep cell");

  // Per-class capacity per engine at the standard mix: how much offered
  // load can each class absorb on each engine while keeping its SLO.
  // Skipped under a --mix filter (it is a standard-mix table by
  // definition); an --engine filter just narrows the rows.
  if (!ctx.option("mix").empty()) {
    ctx.note("mix filter active: standard-mix capacity tables and headline "
             "checks skipped");
    return;
  }
  std::map<std::string, double> service_capacity;
  for (const std::string& engine : engines) {
    const KvScenario base = sweep_scenario(engine, kMixes[1], 1.0,
                                           10 * kNanosPerMilli);
    const std::vector<ClassCapacity> per_class =
        find_class_capacities_memoized(
            twin_probe_config(base), base.service,
            [&base](double rate) {
              return server::run_sim_kv(at_rate(base, rate));
            });
    ctx.emit(class_capacity_table(per_class),
             "capacity_by_class_" + engine);
    const CapacityResult whole = engine_capacity(engine, kMixes[1]);
    service_capacity[engine] = whole.feasible ? whole.max_rate : 0.0;
    ctx.note(engine + ": standard-mix service capacity " +
             Table::fmt_ops(whole.max_rate) + " req/s");
  }
  if (!full_matrix) {
    ctx.note("engine filter active: cross-engine headline checks skipped");
    return;
  }
  // At the standard (get-dominant) mix the *lock-held* share of the op
  // orders capacity: LSM gets spend ~250 scaled NOPs under the meta lock
  // (snapshot) and the rest off-lock, hash pays ~400 for the whole op
  // under the slot lock, and btree holds the global lock for the full
  // ~1000-NOP traversal — so lsm > hash > btree, deterministically.
  // Looked up by name: the claim is about these three engines and must
  // keep holding when the registry grows a fourth.
  ctx.shape_check(service_capacity["lsm"] > service_capacity["hash"] &&
                      service_capacity["hash"] > service_capacity["btree"],
                  "standard-mix capacity ordering: lsm > hash > btree");

  // The LSM read/write asymmetry, and why a hash shard hides it: at equal
  // offered mixes, LSM's get-heavy capacity stands far above its put-heavy
  // capacity (put amplification — memtable append + amortized compaction
  // under the lock), while hash's two capacities stay close (symmetric
  // classes). The contrast is the ratio of ratios.
  const CapacityResult lsm_get = engine_capacity("lsm", kMixes[0]);
  const CapacityResult lsm_put = engine_capacity("lsm", kMixes[2]);
  const CapacityResult hash_get = engine_capacity("hash", kMixes[0]);
  const CapacityResult hash_put = engine_capacity("hash", kMixes[2]);
  Table asym({"engine", "get_heavy_cap", "put_heavy_cap", "ratio_milli"});
  auto ratio_milli = [](const CapacityResult& g, const CapacityResult& p) {
    return p.max_rate <= 0
               ? std::uint64_t{0}
               : static_cast<std::uint64_t>(g.max_rate / p.max_rate * 1000.0);
  };
  asym.add_row({"hash", Table::fmt_ops(hash_get.max_rate),
                Table::fmt_ops(hash_put.max_rate),
                std::to_string(ratio_milli(hash_get, hash_put))});
  asym.add_row({"lsm", Table::fmt_ops(lsm_get.max_rate),
                Table::fmt_ops(lsm_put.max_rate),
                std::to_string(ratio_milli(lsm_get, lsm_put))});
  ctx.emit(asym, "engine_rw_asymmetry");
  ctx.shape_check(lsm_get.feasible && lsm_put.feasible &&
                      lsm_get.max_rate > lsm_put.max_rate * 1.5,
                  "LSM put amplification: get-heavy capacity > 1.5x "
                  "put-heavy capacity");
  ctx.shape_check(lsm_put.max_rate < hash_put.max_rate,
                  "under the put-heavy mix LSM falls below hash — the "
                  "get-mix advantage flips with the op mix");
  ctx.shape_check(hash_get.feasible && hash_put.feasible &&
                      hash_put.max_rate > 0 && lsm_put.max_rate > 0 &&
                      lsm_get.max_rate / lsm_put.max_rate >
                          hash_get.max_rate / hash_put.max_rate * 1.3,
                  "the asymmetry is the engine's, not the mix's: the hash "
                  "shard's get/put capacity ratio stays well below LSM's");
}

void run_engine_sweep_real(ScenarioContext& ctx) {
  const Nanos horizon = static_cast<Nanos>(
      static_cast<double>(40 * kNanosPerMilli) * ctx.time_scale());
  ctx.banner("kv_engine_sweep_real",
             "engines under the wall-clock service (smoke mode)");

  std::vector<std::string> engines;
  if (!filtered_engines(ctx, engines)) return;

  bool conserved = true;
  bool stores_grow = true;
  for (const std::string& engine : engines) {
    KvScenario sc = server::make_kv_scenario("kv_uniform_steady", engine);
    sc.service.prefill_keys = 4096;

    KvService service(sc.service);
    const std::size_t prefilled = service.store_size();
    service.start();
    server::run_open_loop(service, sc.load, horizon);
    service.stop();
    const server::ServiceReport r = service.report();
    ctx.note("engine=" + engine + ": " +
             std::to_string(r.total_completed()) + " completed, store " +
             std::to_string(service.store_size()) + " keys");
    ctx.emit(kv_measured_table(r), "kv_measured_" + engine);
    conserved = conserved && r.total_completed() == r.total_accepted();
    // Puts write distinct "k" keys into a 32k key space against a 4k
    // prefill, so any realistic run grows the store on every engine.
    stores_grow = stores_grow && service.store_size() >= prefilled &&
                  r.total_completed() > 0;
  }
  ctx.shape_check(conserved,
                  "stop() drains every accepted request on every engine");
  ctx.shape_check(stores_grow, "every engine served traffic and kept its "
                               "prefilled store");
}

// ---------------------------------------------------------------------------
// Read-scaling (DESIGN.md §8): the measured case for the lock-free get
// route. One shard, the get-heavy mix, worker count 1 vs 8 — on a locked
// engine every extra worker still queues on the same shard mutex for its
// gets, so get capacity plateaus near the single-worker figure; on mvcc the
// gets never touch the mutex and capacity grows with the worker pool.

// The read-scaling cell: the overload profile pinned to a single shard so
// the shard lock is the only possible bottleneck, with `workers` serving it
// (first half big, the service's default split) and the get-heavy mix.
KvScenario read_scaling_scenario(const std::string& engine,
                                 std::uint32_t workers, Nanos horizon) {
  KvScenario sc = server::make_overloaded_kv_scenario("kv_uniform_steady",
                                                      1.0, horizon);
  sc.service.engine = engine;
  sc.service.num_shards = 1;
  sc.service.workers_per_shard = workers;
  sc.service.big_workers = (workers + 1) / 2;
  server::scale_class_rates(sc.load, 0, kMixes[0].get_scale);
  server::scale_class_rates(sc.load, 1, kMixes[0].put_scale);
  return sc;
}

void run_mvcc_read_scaling_twin(ScenarioContext& ctx) {
  ctx.banner("kv_mvcc_read_scaling",
             "lock-free get route: get-class capacity vs worker count on "
             "the twin (deterministic)");
  ctx.note("one shard, get-heavy mix (12k:1k nominal); mvcc gets bypass the "
           "shard lock (LockRouteStats proves it), hash gets serialize on "
           "it");

  Table table({"engine", "workers", "get_cap_per_sec", "put_cap_per_sec",
               "get_route_acq", "put_route_acq", "cs_gets",
               "lockfree_gets"});
  std::map<std::string, std::map<std::uint32_t, double>> get_cap;
  bool routes_ok = true;
  for (const std::string engine : {"hash", "mvcc"}) {
    for (const std::uint32_t workers : {1u, 8u}) {
      const KvScenario base =
          read_scaling_scenario(engine, workers, 10 * kNanosPerMilli);
      const std::vector<ClassCapacity> per_class =
          find_class_capacities_memoized(
              twin_probe_config(base), base.service,
              [&base](double rate) {
                return server::run_sim_kv(at_rate(base, rate));
              });
      get_cap[engine][workers] = per_class[0].result.max_rate;
      // Route accounting from one deterministic nominal-rate run: on mvcc
      // no acquisition is ever headed by a get and no get runs in a CS.
      const SimServiceReport r = server::run_sim_kv(base);
      const server::LockRouteStats& routes = r.lock_routes;
      table.add_row({engine, std::to_string(workers),
                     Table::fmt_ops(per_class[0].result.max_rate),
                     Table::fmt_ops(per_class[1].result.max_rate),
                     std::to_string(routes.get_route_acquires),
                     std::to_string(routes.put_route_acquires),
                     std::to_string(routes.cs_gets),
                     std::to_string(routes.lockfree_gets)});
      if (engine == "mvcc") {
        routes_ok = routes_ok && routes.get_route_acquires == 0 &&
                    routes.cs_gets == 0 && routes.lockfree_gets > 0;
      } else {
        routes_ok = routes_ok && routes.get_route_acquires > 0 &&
                    routes.cs_gets > 0 && routes.lockfree_gets == 0;
      }
    }
  }
  ctx.emit(table, "mvcc_read_scaling");

  ctx.shape_check(routes_ok,
                  "route counters: mvcc gets never acquire the shard lock "
                  "(get_route_acquires == 0, cs_gets == 0), hash gets do");
  const double mvcc_gain = get_cap["mvcc"][1] > 0
                               ? get_cap["mvcc"][8] / get_cap["mvcc"][1]
                               : 0.0;
  const double hash_gain = get_cap["hash"][1] > 0
                               ? get_cap["hash"][8] / get_cap["hash"][1]
                               : 0.0;
  ctx.note("get-class capacity gain 1 -> 8 workers: mvcc " +
           Table::fmt(mvcc_gain, 2) + "x, hash " + Table::fmt(hash_gain, 2) +
           "x");
  // The tentpole assertion: off-lock gets scale with the worker pool (4 big
  // + 4 little on 8 workers give well over 3x one big worker's service
  // rate), while gets on a locked engine are bounded by lock throughput —
  // at best the post-op share of the op is reclaimed, < 1.5x.
  ctx.shape_check(mvcc_gain >= 3.0,
                  "mvcc get capacity scales >= 3x from 1 to 8 workers");
  ctx.shape_check(hash_gain > 0 && hash_gain < 1.5,
                  "hash get capacity plateaus (< 1.5x) — the shard lock "
                  "caps the locked read path");
}

void run_mvcc_read_scaling_real(ScenarioContext& ctx) {
  const Nanos horizon = static_cast<Nanos>(
      static_cast<double>(40 * kNanosPerMilli) * ctx.time_scale());
  ctx.banner("kv_mvcc_read_scaling_real",
             "lock-free get route on the wall-clock service (smoke: route "
             "counters + completion ordering)");
  ctx.note("same single-shard get-heavy overload as the twin scenario, "
           "8 workers; latency is not asserted, the route counters and the "
           "mvcc > hash completion ordering are");

  std::map<std::string, std::uint64_t> completed;
  bool routes_ok = true;
  bool conserved = true;
  for (const std::string engine : {"hash", "mvcc"}) {
    KvScenario sc = read_scaling_scenario(engine, 8, horizon);
    sc.service.prefill_keys = 4096;
    // Push the single shard past the locked path's service rate (the
    // nominal get-heavy mix is well inside both engines' capacity): the
    // completion ordering below only discriminates once hash saturates.
    server::scale_load_rates(sc.load, 6.0);
    KvService service(sc.service);
    service.start();
    server::run_open_loop(service, sc.load, horizon);
    service.stop();
    const server::ServiceReport r = service.report();
    const server::LockRouteStats routes = service.lock_route_stats();
    completed[engine] = r.total_completed();
    conserved = conserved && r.total_completed() == r.total_accepted();
    ctx.note("engine=" + engine + ": " +
             std::to_string(r.total_completed()) + " completed; acquires " +
             std::to_string(routes.get_route_acquires) + " get-route / " +
             std::to_string(routes.put_route_acquires) + " put-route, " +
             std::to_string(routes.cs_gets) + " CS gets, " +
             std::to_string(routes.lockfree_gets) + " lock-free gets");
    ctx.emit(kv_measured_table(r), "kv_measured_" + engine);
    if (engine == "mvcc") {
      routes_ok = routes_ok && routes.get_route_acquires == 0 &&
                  routes.cs_gets == 0 && routes.lockfree_gets > 0;
    } else {
      routes_ok = routes_ok && routes.get_route_acquires > 0 &&
                  routes.cs_gets > 0;
    }
  }
  ctx.shape_check(conserved, "stop() drains every accepted request");
  ctx.shape_check(routes_ok,
                  "real-path route counters: mvcc gets never block on the "
                  "shard mutex (get-route acquires == 0), hash gets do");
  // Same ordering as the twin: with one shard saturated by the get-heavy
  // overload, the engine whose gets bypass the lock completes more. The
  // ordering needs actual hardware parallelism — on a 1-2 core host the 8
  // off-lock workers timeshare one pipeline and the lock is not the
  // bottleneck — so it is asserted only where it can physically appear.
  if (std::thread::hardware_concurrency() >= 4) {
    ctx.shape_check(completed["mvcc"] > completed["hash"],
                    "mvcc completes more than hash under the single-shard "
                    "get-heavy overload");
  } else {
    ctx.note("host has < 4 cores: completion-ordering check skipped (the "
             "off-lock gets have no parallelism to win)");
  }
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_engine_sweep_twin,
             "engine x mix x offered-load sweep + per-engine capacity on "
             "the twin (deterministic)") {
  asl::bench::run_engine_sweep_twin(ctx);
}

ASL_SCENARIO(kv_engine_sweep_real,
             "engines under the real service (smoke, accounting)") {
  asl::bench::run_engine_sweep_real(ctx);
}

ASL_SCENARIO(kv_mvcc_read_scaling,
             "lock-free get route: mvcc vs hash get-capacity scaling in "
             "workers on the twin (deterministic)") {
  asl::bench::run_mvcc_read_scaling_twin(ctx);
}

ASL_SCENARIO(kv_mvcc_read_scaling_real,
             "lock-free get route on the real service (route counters + "
             "completion ordering)") {
  asl::bench::run_mvcc_read_scaling_real(ctx);
}
