// Trace record/replay scenarios (DESIGN.md §10).
//
//   * kv_record — run a twin scenario with a TraceRecorder attached, emit
//     the run's measured/shard tables, self-check the trace (stream vs
//     accounting, serialization round trip) and write it to --trace=PATH
//     when given. --seed=N perturbs every LoadSpec seed, so CI can record
//     fresh traffic without recompiling.
//   * kv_replay — load --trace=PATH (or self-record when absent), replay it
//     through a fresh twin under the recorded config, and emit the same
//     two tables. The tables must be byte-identical to kv_record's — that
//     is the determinism contract, and the CI step diffs the two CSVs to
//     prove it. Re-recording the replay must reproduce the trace file byte
//     for byte, which additionally pins the batch histogram and routes.
//   * kv_ab_policy — record one overloaded trace, replay it under two
//     configs (batch_k 1 vs 8; shed off vs on) and emit the paired-
//     difference tables: identical offered streams, so every delta is the
//     policy's doing (src/harness/ab_compare.h).
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "harness/ab_compare.h"
#include "server/sim_kv_service.h"
#include "workload/trace.h"

namespace asl::bench {
namespace {

using server::AdmissionPolicy;
using server::KvScenario;
using server::RecordedTrace;
using server::SimKvService;
using server::SimReplayReport;
using server::SimServiceReport;
using server::SimTwinConfig;
using server::TraceRecorder;

// The configuration the record/replay pair exercises. Steady uniform
// traffic keeps the trace compact; the scenario name rides in the trace
// meta, so kv_replay can rebuild the identical config from the file alone.
constexpr const char* kRecordedScenario = "kv_uniform_steady";

// --seed=N (decimal or 0x-hex). Returns false on a malformed value — the
// caller turns that into a shape FAIL, per the option() contract.
bool parse_seed_option(const ScenarioContext& ctx, std::uint64_t* seed,
                       bool* given) {
  const std::string s = ctx.option("seed");
  *given = !s.empty();
  if (s.empty()) return true;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *seed = v;
  return true;
}

KvScenario recorded_scenario(const ScenarioContext& ctx, std::uint64_t seed,
                             bool reseed) {
  KvScenario sc = server::make_kv_scenario(kRecordedScenario);
  // Same compression rule as the twin scenarios: horizon and arrival
  // modulation shrink together under --time-scale.
  sc.horizon =
      static_cast<Nanos>(static_cast<double>(sc.horizon) * ctx.time_scale());
  for (server::LoadSpec& spec : sc.load) {
    spec.arrivals = spec.arrivals.with_time_scale(ctx.time_scale());
  }
  if (reseed) {
    // One splitmix64 stream off the user seed: distinct per-spec seeds,
    // deterministic in N.
    std::uint64_t state = seed;
    for (server::LoadSpec& spec : sc.load) {
      spec.seed = splitmix64(state);
    }
  }
  return sc;
}

void emit_twin_tables(ScenarioContext& ctx, const SimServiceReport& report) {
  ctx.emit(server::sim_kv_measured_table(report), "sim_kv_measured");
  ctx.emit(server::sim_kv_shard_table(report), "sim_kv_shards");
}

bool routes_equal(const server::LockRouteStats& a,
                  const server::LockRouteStats& b) {
  return a.get_route_acquires == b.get_route_acquires &&
         a.put_route_acquires == b.put_route_acquires &&
         a.cs_gets == b.cs_gets && a.lockfree_gets == b.lockfree_gets;
}

void run_kv_record(ScenarioContext& ctx) {
  ctx.banner("kv_record",
             "record a twin run: offered trace + admission decisions");
  std::uint64_t seed = 0;
  bool reseed = false;
  if (!parse_seed_option(ctx, &seed, &reseed)) {
    ctx.shape_check(false, "--seed='" + ctx.option("seed") +
                               "' parses as an unsigned integer");
    return;
  }
  const KvScenario sc = recorded_scenario(ctx, seed, reseed);
  ctx.note("scenario=" + sc.name + " engine=" + sc.service.engine +
           " horizon_ms=" + std::to_string(sc.horizon / kNanosPerMilli) +
           (reseed ? " seed=" + std::to_string(seed) : std::string()));

  SimServiceReport report;
  const RecordedTrace trace = server::record_sim_kv(sc, {}, &report);
  emit_twin_tables(ctx, report);

  ctx.shape_check(trace.offered() == report.offered,
                  "every scheduled arrival was recorded");
  std::string why;
  ctx.shape_check(
      server::accounting_counts_match(
          trace.accounting, server::sim_trace_accounting(report), &why),
      "recorded accounting matches the run's report" +
          (why.empty() ? std::string() : " (" + why + ")"));
  std::uint64_t batch_total = 0;
  for (const server::TraceBatchBucket& b : trace.accounting.batches) {
    batch_total += b.count;
  }
  ctx.shape_check(batch_total ==
                      trace.accounting.routes.get_route_acquires +
                          trace.accounting.routes.put_route_acquires,
                  "batch histogram sums to the lock acquisition count");

  // Serialization round trip, in memory: write -> parse -> write must be
  // byte-stable, or the on-disk artifact is not the ground truth it claims.
  const std::string bytes = server::trace_to_string(trace);
  RecordedTrace parsed;
  std::string error;
  std::istringstream in(bytes);
  const bool ok = server::parse_trace(in, &parsed, &error);
  ctx.shape_check(ok && server::trace_to_string(parsed) == bytes,
                  "serialization round-trips byte-identically" +
                      (ok ? std::string() : " (" + error + ")"));
  ctx.note("trace: " + std::to_string(trace.offered()) + " records, " +
           std::to_string(bytes.size()) + " bytes");

  const std::string path = ctx.option("trace");
  if (!path.empty()) {
    const bool saved = server::save_trace(trace, path, &error);
    ctx.shape_check(saved, "trace written to " + path +
                               (saved ? std::string() : " (" + error + ")"));
  }
}

void run_kv_replay(ScenarioContext& ctx) {
  ctx.banner("kv_replay",
             "replay a recorded trace on the twin (byte-deterministic)");
  std::uint64_t seed = 0;
  bool reseed = false;
  if (!parse_seed_option(ctx, &seed, &reseed)) {
    ctx.shape_check(false, "--seed='" + ctx.option("seed") +
                               "' parses as an unsigned integer");
    return;
  }

  RecordedTrace trace;
  std::string error;
  const std::string path = ctx.option("trace");
  if (!path.empty()) {
    if (!server::load_trace(path, &trace, &error)) {
      ctx.shape_check(false, "--trace=" + path + " loads (" + error + ")");
      return;
    }
    ctx.note("replaying " + path + ": " + std::to_string(trace.offered()) +
             " records of " + trace.meta.scenario + "/" + trace.meta.engine);
  } else {
    // Self-contained mode: record the reference run in-process, then
    // replay it — the same byte-identity contract, no file needed.
    trace = server::record_sim_kv(recorded_scenario(ctx, seed, reseed));
    ctx.note("no --trace given: self-recorded " +
             std::to_string(trace.offered()) + " records of " +
             trace.meta.scenario);
  }

  bool known = false;
  for (const std::string& name : server::kv_scenario_names()) {
    known = known || name == trace.meta.scenario;
  }
  ctx.shape_check(known, "trace scenario '" + trace.meta.scenario +
                             "' is a registered kv scenario");
  if (!known) return;

  // Rebuild the recorded config from the trace meta alone (the file is
  // self-sufficient), with the recording's twin seed so the simulated
  // lock's randomness is reproduced too.
  const KvScenario sc =
      server::make_kv_scenario(trace.meta.scenario, trace.meta.engine);
  SimTwinConfig twin;
  twin.seed = trace.meta.twin_seed;

  // Replay with a recorder attached: beyond table identity, re-recording
  // the replay must reproduce the trace itself byte for byte (records,
  // accounting, batch histogram — everything).
  SimKvService service(sc.service, twin);
  TraceRecorder recorder;
  service.record_to(&recorder);
  const SimReplayReport rr = service.replay(trace);
  const RecordedTrace rerecorded =
      recorder.finish(trace.meta, rr.report.lock_routes);

  emit_twin_tables(ctx, rr.report);

  ctx.shape_check(rr.report.offered == trace.offered(),
                  "replay offered every recorded request");
  ctx.shape_check(rr.exact(),
                  "replay re-took every recorded decision (divergence = " +
                      std::to_string(rr.decision_divergence) + "/" +
                      std::to_string(rr.shard_divergence) + ")");
  std::string why;
  ctx.shape_check(
      server::accounting_counts_match(
          trace.accounting, server::sim_trace_accounting(rr.report), &why),
      "replayed accounting equals the recording's" +
          (why.empty() ? std::string() : " (" + why + ")"));
  ctx.shape_check(
      routes_equal(trace.accounting.routes, rr.report.lock_routes),
      "replayed lock-route counters equal the recording's");
  ctx.shape_check(server::trace_to_string(rerecorded) ==
                      server::trace_to_string(trace),
                  "re-recording the replay reproduces the trace byte-for-"
                  "byte");
  ctx.shape_check(rr.report.total_completed() == rr.report.total_accepted(),
                  "drain completes every accepted request");
}

void run_kv_ab_policy(ScenarioContext& ctx) {
  ctx.banner("kv_ab_policy",
             "A/B two policies on one recorded trace (paired differences)");
  // Fixed 20 ms virtual horizon, deliberately NOT scaled by --time-scale:
  // the twin's cost is event count, not wall time, and a fixed horizon
  // keeps this table byte-identical across CI time-scale settings.
  const Nanos horizon = 20 * kNanosPerMilli;
  const double overload = 8.0;  // kv_batch_sweep's past-saturation factor
  ctx.note("one recorded trace per comparison, 8x-nominal overload, "
           "heavy-cost profile; identical offered streams per pair");

  // Comparison 1: batch_k 1 vs 8, shedding disabled so batching is the
  // only difference. Recorded under the A arm's config.
  KvScenario batch_base =
      server::make_overloaded_kv_scenario("kv_batch_shed", overload, horizon);
  batch_base.service.batch_k = 1;
  batch_base.service.classes[1].admission = AdmissionPolicy{};
  const RecordedTrace batch_trace = server::record_sim_kv(batch_base);
  AbPolicy batch1{"batch1", batch_base.service, {}};
  AbPolicy batch8 = batch1;
  batch8.label = "batch8";
  batch8.service.batch_k = 8;
  const AbComparison batch_cmp = ab_compare(batch_trace, batch1, batch8);
  ctx.emit(ab_difference_table(batch_cmp), "ab_batch");

  ctx.shape_check(batch_cmp.a.exact(),
                  "A arm (the recorded config) replays exactly");
  std::string why;
  ctx.shape_check(server::accounting_counts_match(
                      batch_trace.accounting,
                      server::sim_trace_accounting(batch_cmp.a.report), &why),
                  "A arm accounting equals the recording's" +
                      (why.empty() ? std::string() : " (" + why + ")"));
  ctx.shape_check(batch_cmp.b.report.total_completed() >
                      batch_cmp.a.report.total_completed(),
                  "batch_k=8 completes more of the same trace than "
                  "batch_k=1");
  ctx.shape_check(batch_cmp.b.report.total_rejected() <
                      batch_cmp.a.report.total_rejected(),
                  "batch_k=8 rejects less of the same trace than batch_k=1");

  // Comparison 2: shedding off vs on at the scenario's batch_k=4, recorded
  // under the no-shed arm. Shedding trades loose-class (kv-put) sheds for
  // tight-class (kv-get) queue headroom.
  KvScenario shed_base =
      server::make_overloaded_kv_scenario("kv_batch_shed", overload, horizon);
  KvScenario noshed_base = shed_base;
  noshed_base.service.classes[1].admission = AdmissionPolicy{};
  const RecordedTrace shed_trace = server::record_sim_kv(noshed_base);
  AbPolicy noshed{"noshed", noshed_base.service, {}};
  AbPolicy shed{"shed", shed_base.service, {}};
  const AbComparison shed_cmp = ab_compare(shed_trace, noshed, shed);
  ctx.emit(ab_difference_table(shed_cmp), "ab_shed");

  ctx.shape_check(shed_cmp.a.exact(),
                  "no-shed arm (the recorded config) replays exactly");
  const server::ClassReport& get_noshed =
      shed_cmp.a.report.service.classes[0];
  const server::ClassReport& get_shed = shed_cmp.b.report.service.classes[0];
  const server::ClassReport& put_shed = shed_cmp.b.report.service.classes[1];
  const auto hard = [](const server::ClassReport& c) {
    return c.rejected >= c.shed ? c.rejected - c.shed : 0;
  };
  ctx.shape_check(put_shed.shed > 0,
                  "shed arm sheds the loose class on the same trace");
  ctx.shape_check(hard(get_shed) < hard(get_noshed),
                  "shedding cuts the tight class's hard rejections on the "
                  "same trace");
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_record,
             "record a twin run's offered trace + decisions (--trace=PATH "
             "writes it, --seed=N reseeds)") {
  asl::bench::run_kv_record(ctx);
}

ASL_SCENARIO(kv_replay,
             "replay a recorded trace on the twin, byte-deterministically "
             "(--trace=PATH, else self-records)") {
  asl::bench::run_kv_replay(ctx);
}

ASL_SCENARIO(kv_ab_policy,
             "A/B policy comparison on one recorded trace: batch_k 1 vs 8, "
             "shed off vs on") {
  asl::bench::run_kv_ab_policy(ctx);
}
