// Shared helpers for the KV service benches (kv_capacity, kv_batch_sweep,
// kv_engine_sweep, kv_scenarios): rate-scaled scenario construction, the
// per-class capacity search over a deterministic twin oracle (memoized per
// trial rate), and the per-class measured-report tables both the real and
// engine-sweep benches print. Lives beside the benches rather than in
// bench_common.h so the pure figure benches never pull in the server layer.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/capacity_probe.h"
#include "server/scenarios.h"
#include "server/sim_kv_service.h"
#include "workload/open_loop.h"

namespace asl::bench {

// `base` with every stream scaled so the combined nominal offered rate is
// `rate` req/s — the one trial-construction rule every capacity probe and
// sweep shares, so "offered rate r" means the same thing in each of them.
inline server::KvScenario at_rate(const server::KvScenario& base,
                                  double rate) {
  server::KvScenario sc = base;
  server::scale_load_rates(
      sc.load, rate / server::nominal_rate_per_sec(base.load));
  return sc;
}

// The probe configuration the twin searches share: start at the scenario's
// nominal rate, double to bracket, narrow to 10%.
inline CapacityProbeConfig twin_probe_config(const server::KvScenario& base,
                                             std::uint32_t max_trials = 24) {
  CapacityProbeConfig cfg;
  cfg.start_rate = server::nominal_rate_per_sec(base.load);
  cfg.growth = 2.0;
  cfg.tolerance = 0.1;
  cfg.max_trials = max_trials;
  return cfg;
}

// The real path's per-class measured table (offered/accepted/rejected/
// completed, SLO attainment, wall-clock latency split) — shared by the
// kv_* scenario family and the engine sweep's real smoke so the column
// convention cannot drift between them.
inline Table kv_measured_table(const server::ServiceReport& report) {
  Table measured({"class", "slo_us", "offered_ops", "accepted", "rejected",
                  "completed", "attain_pct", "p50_us", "p99_big_us",
                  "p99_little_us", "qwait_p99_us"});
  for (const server::ClassReport& c : report.classes) {
    measured.add_row(
        {c.name, std::to_string(c.slo_ns / kNanosPerMicro),
         std::to_string(c.accepted + c.rejected), std::to_string(c.accepted),
         std::to_string(c.rejected), std::to_string(c.completed),
         Table::fmt(100.0 * c.attainment(), 1),
         Table::fmt_ns_as_us(c.total.overall().p50()),
         Table::fmt_ns_as_us(c.total.p99_big()),
         Table::fmt_ns_as_us(c.total.p99_little()),
         Table::fmt_ns_as_us(c.queue_wait.p99())});
  }
  return measured;
}

// The config's class names in class-index order — the order
// find_capacity_per_class reports its results in.
inline std::vector<std::string> class_names(
    const server::KvServiceConfig& config) {
  std::vector<std::string> names;
  names.reserve(config.classes.size());
  for (const server::RequestClass& c : config.classes) {
    names.push_back(c.name);
  }
  return names;
}

// Runs one capacity search per class of `service`, judging class c at rate
// r by class_meets_slo on its slice of report_at(r). The per-class searches
// share growth/tolerance/start, so their trial-rate ladders largely
// coincide — the (deterministic) twin report is memoized per distinct rate
// and each full simulation runs once, not once per class. Synchronous: the
// cache lives on this frame.
inline std::vector<ClassCapacity> find_class_capacities_memoized(
    const CapacityProbeConfig& config,
    const server::KvServiceConfig& service,
    const std::function<server::SimServiceReport(double)>& report_at) {
  std::map<double, server::SimServiceReport> cache;
  return find_capacity_per_class(
      config, class_names(service),
      [&cache, &report_at](std::size_t class_index, double rate) {
        auto it = cache.find(rate);
        if (it == cache.end()) {
          it = cache.emplace(rate, report_at(rate)).first;
        }
        return server::class_meets_slo(
            it->second.service.classes[class_index]);
      });
}

}  // namespace asl::bench
