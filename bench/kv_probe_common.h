// Shared helper for the KV twin capacity benches (kv_capacity,
// kv_batch_sweep): per-class capacity search over a deterministic twin
// oracle, memoized per trial rate. Lives beside the benches rather than in
// bench_common.h so the pure figure benches never pull in the server layer.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/capacity_probe.h"
#include "server/sim_kv_service.h"

namespace asl::bench {

// The config's class names in class-index order — the order
// find_capacity_per_class reports its results in.
inline std::vector<std::string> class_names(
    const server::KvServiceConfig& config) {
  std::vector<std::string> names;
  names.reserve(config.classes.size());
  for (const server::RequestClass& c : config.classes) {
    names.push_back(c.name);
  }
  return names;
}

// Runs one capacity search per class of `service`, judging class c at rate
// r by class_meets_slo on its slice of report_at(r). The per-class searches
// share growth/tolerance/start, so their trial-rate ladders largely
// coincide — the (deterministic) twin report is memoized per distinct rate
// and each full simulation runs once, not once per class. Synchronous: the
// cache lives on this frame.
inline std::vector<ClassCapacity> find_class_capacities_memoized(
    const CapacityProbeConfig& config,
    const server::KvServiceConfig& service,
    const std::function<server::SimServiceReport(double)>& report_at) {
  std::map<double, server::SimServiceReport> cache;
  return find_capacity_per_class(
      config, class_names(service),
      [&cache, &report_at](std::size_t class_index, double rate) {
        auto it = cache.find(rate);
        if (it == cache.end()) {
          it = cache.emplace(rate, report_at(rate)).first;
        }
        return server::class_meets_slo(
            it->second.service.classes[class_index]);
      });
}

}  // namespace asl::bench
