// Figure 1: existing locks collapse on AMP (little-core-affinity TAS case).
// Threads 1..8 (first 4 big, rest little) acquire one lock to RMW 4 shared
// cache lines with a fixed NOP gap; plots throughput and P99 latency for the
// MCS and TAS locks.
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig01_collapse,
             "Figure 1: throughput & latency collapse (TAS little-affinity)") {
  ctx.banner("Figure 1", "throughput & latency collapse (TAS little-affinity)");
  ctx.note("CS = 4 shared cache lines; threads bound big-first (M1 layout)");

  auto gen = collapse_workload(4, 150);
  Table table({"threads", "mcs_tput", "tas_tput", "mcs_p99_us", "tas_p99_us"});

  double mcs4 = 0, mcs8 = 0, tas8 = 0;
  std::uint64_t mcs8_p99 = 0, tas8_p99 = 0;
  for (std::uint32_t n = 1; n <= 8; ++n) {
    SimResult mcs = run_sim(
        ctx.scaled(collapse_config(n, LockKind::kMcs, TasAffinity::kSymmetric)),
        gen);
    SimResult tas = run_sim(
        ctx.scaled(
            collapse_config(n, LockKind::kTas, TasAffinity::kLittleCores)),
        gen);
    table.add_row({std::to_string(n), Table::fmt_ops(mcs.cs_throughput()),
                   Table::fmt_ops(tas.cs_throughput()),
                   Table::fmt_ns_as_us(mcs.latency.p99_overall()),
                   Table::fmt_ns_as_us(tas.latency.p99_overall())});
    if (n == 4) mcs4 = mcs.cs_throughput();
    if (n == 8) {
      mcs8 = mcs.cs_throughput();
      tas8 = tas.cs_throughput();
      mcs8_p99 = mcs.latency.p99_overall();
      tas8_p99 = tas.latency.p99_overall();
    }
  }
  ctx.emit(table, "collapse");

  ctx.shape_check(mcs8 < mcs4 * 0.55,
                  "MCS throughput collapses >45% from 4 big cores to 4+4");
  ctx.shape_check(tas8 < mcs8,
                  "little-affinity TAS throughput below MCS at 8 threads");
  ctx.shape_check(tas8_p99 > mcs8_p99 * 2,
                  "TAS P99 latency is a multiple of MCS P99 (paper: 6.2x)");
}
