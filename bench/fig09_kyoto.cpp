// Figure-9a-c: database figure for the kKyoto workload model (see
// db_bench_common.h and sim/db_model.cpp for the lock pattern and op mix).
#include "db_bench_common.h"

ASL_SCENARIO(fig09_kyoto, "Figure 9a-c: Kyoto Cabinet workload model") {
  asl::bench::run_db_figure(ctx, asl::sim::DbKind::kKyoto, "Figure-9a-c");
}
