// Open-loop KV service scenarios (DESIGN.md §4): the {uniform, zipfian} x
// {steady, bursty} family plus a diurnal ramp, each run as a real-thread
// service under scheduled arrivals. Two tables per scenario:
//   * offered — the deterministic arrival digest (pure function of the
//     seeds; the determinism tests compare it byte-for-byte);
//   * measured — offered vs achieved throughput, backpressure counts and
//     the per-class latency / SLO-attainment split.
// Shape checks stay on accounting invariants (conservation, drain
// completeness, epoch tagging) rather than wall-clock latency thresholds,
// so the scenarios are CI-stable on noisy shared runners.
#include <string>

#include "bench_common.h"
#include "kv_probe_common.h"
#include "server/scenarios.h"
#include "workload/open_loop.h"

namespace asl::bench {
namespace {

using server::ClassReport;
using server::KvScenario;
using server::KvService;
using server::OpenLoopResult;
using server::ServiceReport;

void run_kv_scenario(ScenarioContext& ctx, const std::string& name) {
  KvScenario sc = server::make_kv_scenario(name);
  const Nanos horizon = static_cast<Nanos>(
      static_cast<double>(sc.horizon) * ctx.time_scale());
  // Compress the arrival modulation (burst dwells, diurnal period) with the
  // horizon, so a --time-scale run sees the same number of burst cycles and
  // the same fraction of the "day", just faster.
  for (server::LoadSpec& spec : sc.load) {
    spec.arrivals = spec.arrivals.with_time_scale(ctx.time_scale());
  }

  ctx.banner(name, sc.title);
  ctx.note("shards=" + std::to_string(sc.service.num_shards) +
           " workers/shard=" + std::to_string(sc.service.workers_per_shard) +
           " queue_capacity=" + std::to_string(sc.service.queue_capacity) +
           " horizon_ms=" + std::to_string(horizon / kNanosPerMilli));

  ctx.emit(server::offered_trace_table(sc.load, horizon), "kv_offered");

  KvService service(sc.service);
  EpochRegistry& registry = EpochRegistry::instance();
  std::vector<std::uint64_t> completions_before;
  for (std::uint32_t c = 0; c < sc.service.classes.size(); ++c) {
    completions_before.push_back(registry.completions(service.epoch_id(c)));
  }
  service.start();
  OpenLoopResult load = server::run_open_loop(service, sc.load, horizon);
  service.stop();
  ServiceReport report = service.report();

  ctx.emit(kv_measured_table(report), "kv_measured");

  const double achieved =
      load.elapsed == 0 ? 0.0
                        : static_cast<double>(report.total_completed()) *
                              static_cast<double>(kNanosPerSec) /
                              static_cast<double>(load.elapsed);
  ctx.note("offered " + Table::fmt_ops(load.offered_rate_per_sec()) +
           " ops/s, achieved " + Table::fmt_ops(achieved) + " ops/s");

  // Conservation across the layers: generator counts == service counts,
  // the drain on stop() completes every accepted request, and every
  // completion was epoch-tagged exactly once.
  ctx.shape_check(load.offered == load.accepted + load.rejected,
                  "offered = accepted + rejected (generator)");
  ctx.shape_check(load.accepted == report.total_accepted() &&
                      load.rejected == report.total_rejected(),
                  "generator and service admission counts agree");
  ctx.shape_check(report.total_completed() == report.total_accepted(),
                  "stop() drains every accepted request");
  ctx.shape_check(report.total_completed() > 0, "service made progress");
  bool tagged = true;
  for (std::uint32_t c = 0; c < sc.service.classes.size(); ++c) {
    const std::uint64_t delta =
        registry.completions(service.epoch_id(c)) - completions_before[c];
    tagged = tagged && delta == report.classes[c].completed;
  }
  ctx.shape_check(tagged, "per-class epoch completions match served counts");
  bool met_some = true;
  for (const ClassReport& c : report.classes) {
    met_some = met_some && (c.completed == 0 || c.slo_met > 0);
  }
  ctx.shape_check(met_some, "each class met its SLO at least once");
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_uniform_steady,
             "open-loop KV: uniform keys, steady Poisson arrivals") {
  asl::bench::run_kv_scenario(ctx, "kv_uniform_steady");
}

ASL_SCENARIO(kv_uniform_bursty,
             "open-loop KV: uniform keys, bursty (MMPP) arrivals") {
  asl::bench::run_kv_scenario(ctx, "kv_uniform_bursty");
}

ASL_SCENARIO(kv_zipf_steady,
             "open-loop KV: zipfian keys, steady Poisson arrivals") {
  asl::bench::run_kv_scenario(ctx, "kv_zipf_steady");
}

ASL_SCENARIO(kv_zipf_bursty,
             "open-loop KV: zipfian keys, bursty (MMPP) arrivals") {
  asl::bench::run_kv_scenario(ctx, "kv_zipf_bursty");
}

ASL_SCENARIO(kv_zipf_diurnal,
             "open-loop KV: zipfian keys, diurnal-ramp arrivals") {
  asl::bench::run_kv_scenario(ctx, "kv_zipf_diurnal");
}

ASL_SCENARIO(kv_batch_shed,
             "open-loop KV: batched shard drain + sheddable write class") {
  asl::bench::run_kv_scenario(ctx, "kv_batch_shed");
}
