// Figures 8e/8f (Bench-4): scalability 1..8 threads on the Figure 4
// workload — lock throughput and overall tail latency for MCS, TAS and
// LibASL-{0, 12us, 50us, MAX}.
#include <cmath>

#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

namespace {

SimConfig asl_cfg(std::uint32_t threads, Time slo, bool use_slo) {
  SimConfig cfg = collapse_config(threads, LockKind::kReorderable,
                                  TasAffinity::kSymmetric);
  cfg.policy = Policy::kAsl;
  cfg.use_slo = use_slo;
  cfg.slo = slo;
  seed_controller(cfg);
  return cfg;
}

}  // namespace

ASL_SCENARIO(fig08ef_scalability,
             "Figure 8e/8f: scalability — throughput and P99 vs threads") {
  ctx.banner("Figure 8e/8f", "scalability: throughput and P99 vs thread count");
  ctx.note("Figure 4 workload (64-line CS); LibASL-X = SLO X us");

  auto gen = collapse_workload(64, 1500);
  Table table({"threads", "mcs_tput", "tas_tput", "asl0_tput", "asl12_tput",
               "asl50_tput", "aslmax_tput", "mcs_p99", "tas_p99", "asl12_p99",
               "asl50_p99", "aslmax_p99"});

  double mcs4 = 0, aslmax4 = 0, mcs8 = 0, asl0_8 = 0, aslmax8 = 0,
         asl12_8 = 0, asl50_8 = 0, tas8 = 0;
  std::uint64_t asl12_p99_8 = 0, asl50_p99_8 = 0, tas_p99_8 = 0;
  for (std::uint32_t n = 1; n <= 8; ++n) {
    SimResult mcs = run_sim(
        ctx.scaled(collapse_config(n, LockKind::kMcs, TasAffinity::kSymmetric)),
        gen);
    SimResult tas = run_sim(
        ctx.scaled(collapse_config(n, LockKind::kTas, TasAffinity::kBigCores)),
        gen);
    SimResult a0 = run_sim(ctx.scaled(asl_cfg(n, 0, true)), gen);
    SimResult a12 = run_sim(ctx.scaled(asl_cfg(n, 12 * kMicro, true)), gen);
    SimResult a50 = run_sim(ctx.scaled(asl_cfg(n, 50 * kMicro, true)), gen);
    SimResult amax = run_sim(ctx.scaled(asl_cfg(n, 0, false)), gen);
    table.add_row(
        {std::to_string(n), Table::fmt_ops(mcs.cs_throughput()),
         Table::fmt_ops(tas.cs_throughput()),
         Table::fmt_ops(a0.cs_throughput()),
         Table::fmt_ops(a12.cs_throughput()),
         Table::fmt_ops(a50.cs_throughput()),
         Table::fmt_ops(amax.cs_throughput()),
         Table::fmt_ns_as_us(mcs.latency.p99_overall()),
         Table::fmt_ns_as_us(tas.latency.p99_overall()),
         Table::fmt_ns_as_us(a12.latency.p99_overall()),
         Table::fmt_ns_as_us(a50.latency.p99_overall()),
         Table::fmt_ns_as_us(amax.latency.p99_overall())});
    if (n == 4) {
      mcs4 = mcs.cs_throughput();
      aslmax4 = amax.cs_throughput();
    }
    if (n == 8) {
      mcs8 = mcs.cs_throughput();
      tas8 = tas.cs_throughput();
      asl0_8 = a0.cs_throughput();
      asl12_8 = a12.cs_throughput();
      asl50_8 = a50.cs_throughput();
      aslmax8 = amax.cs_throughput();
      asl12_p99_8 = a12.latency.p99_overall();
      asl50_p99_8 = a50.latency.p99_overall();
      tas_p99_8 = tas.latency.p99_overall();
    }
  }
  ctx.emit(table, "scalability");

  (void)tas8;
  (void)asl12_8;
  (void)asl12_p99_8;
  ctx.shape_check(std::abs(asl0_8 / mcs8 - 1.0) < 0.15,
                  "LibASL-0 behaves as the MCS lock");
  ctx.shape_check(aslmax8 >= aslmax4 * 0.93,
                  "LibASL-MAX throughput does not drop when little cores "
                  "join");
  // Note: in our TAS model surviving little-core epochs keep TAS's overall
  // P99 high, whereas on M1 little cores starve out of the P99 entirely
  // (the paper's 12us TAS tail is big-core-only). The comparable claim is
  // therefore made at LibASL-50: far better tail than TAS at comparable
  // throughput, and much better throughput than MCS.
  ctx.shape_check(asl50_8 > mcs8 * 1.3 && asl50_p99_8 < tas_p99_8,
                  "LibASL-50: >1.3x MCS throughput at a tail far below TAS");
  ctx.shape_check(mcs8 < mcs4 * 0.6, "MCS still collapses on this workload");
}
