// LibASL bookkeeping overhead on the real host (Section 3.4 claims: the two
// epoch operations cost ~93 cycles together; redirect indirection ~20+
// cycles; per-thread epoch metadata is 24 bytes in the paper's C layout).
#include <benchmark/benchmark.h>

#include "asl/epoch.h"
#include "asl/libasl.h"
#include "platform/time.h"
#include "platform/topology.h"

namespace {

void BM_EpochStartEnd(benchmark::State& state) {
  asl::ScopedCoreType little(asl::CoreType::kLittle);
  asl::reset_thread_epochs();
  for (auto _ : state) {
    asl::epoch_start(1);
    asl::epoch_end(1, 1'000'000);
  }
}
BENCHMARK(BM_EpochStartEnd);

void BM_EpochStartEndBigCore(benchmark::State& state) {
  // Big cores skip the feedback step (Algorithm 2 line 21): cheaper still.
  asl::ScopedCoreType big(asl::CoreType::kBig);
  asl::reset_thread_epochs();
  for (auto _ : state) {
    asl::epoch_start(1);
    asl::epoch_end(1, 1'000'000);
  }
}
BENCHMARK(BM_EpochStartEndBigCore);

void BM_EpochNested(benchmark::State& state) {
  asl::ScopedCoreType little(asl::CoreType::kLittle);
  asl::reset_thread_epochs();
  for (auto _ : state) {
    asl::epoch_start(1);
    asl::epoch_start(2);
    asl::epoch_end(2, 1'000'000);
    asl::epoch_end(1, 1'000'000);
  }
}
BENCHMARK(BM_EpochNested);

void BM_ClockGettime(benchmark::State& state) {
  // The paper quotes ~45 cycles for the lightweight clock_gettime; this
  // reports the host's actual cost, which bounds the epoch ops.
  for (auto _ : state) {
    benchmark::DoNotOptimize(asl::now_ns());
  }
}
BENCHMARK(BM_ClockGettime);

void BM_IsBigCoreOracle(benchmark::State& state) {
  asl::ScopedCoreType big(asl::CoreType::kBig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(asl::is_big_core());
  }
}
BENCHMARK(BM_IsBigCoreOracle);

void BM_CurrentEpochWindow(benchmark::State& state) {
  asl::ScopedCoreType little(asl::CoreType::kLittle);
  asl::reset_thread_epochs();
  asl::epoch_start(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(asl::current_epoch_window());
  }
  asl::epoch_end(3, 1'000'000);
}
BENCHMARK(BM_CurrentEpochWindow);

}  // namespace

BENCHMARK_MAIN();
