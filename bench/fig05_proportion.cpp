// Figure 5: static proportional execution sweep. N = big cores get N times
// higher chance to lock; throughput and little-core tail latency both grow
// with N — the static trade-off that motivates SLO-guided ordering.
#include <algorithm>

#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig05_proportion,
             "Figure 5: throughput vs P99 for static proportions 0..29") {
  ctx.banner("Figure 5", "throughput vs P99 for static proportions 0..29");
  ctx.note("proportion N: exactly 1 little-core acquisition per N big-core "
           "ones");

  // Single heavily-saturated lock (64-line CS, minimal gap): the rotation
  // counter is the only thing letting little cores in, as in the paper's
  // high-contention setting.
  auto gen = collapse_workload(64, 100);
  Table table({"proportion", "tput_ops", "p99_us", "little_p99_us"});
  double first_tput = 0, last_tput = 0;
  std::uint64_t first_p99 = 0, last_p99 = 0;
  for (std::uint32_t n : {0u, 1u, 2u, 3u, 5u, 8u, 10u, 14u, 19u, 24u, 29u}) {
    SimConfig cfg = ctx.scaled(
        collapse_config(8, LockKind::kShflPb, TasAffinity::kSymmetric));
    cfg.pb_proportion = n == 0 ? 1 : n;
    SimResult r = run_sim(cfg, gen);
    table.add_row({std::to_string(n), Table::fmt_ops(r.cs_throughput()),
                   Table::fmt_ns_as_us(r.latency.p99_overall()),
                   Table::fmt_ns_as_us(r.latency.p99_little())});
    if (n == 0) {
      first_tput = r.cs_throughput();
      first_p99 = r.latency.p99_little();
    }
    if (n == 29) {
      last_tput = r.cs_throughput();
      last_p99 = r.latency.p99_little();
    }
  }
  ctx.emit(table, "proportion_sweep");

  ctx.shape_check(last_tput > first_tput * 1.1,
                  "throughput grows with the proportion");
  ctx.shape_check(
      last_p99 > first_p99 * 2,
      "little-core P99 grows with the proportion (mutual exclusivity)");

  // Section 2.3's second strawman argument: "since applications' loads may
  // change over time, the latency is unstable when setting a fixed
  // proportion". Run PB10 and LibASL on a light and a heavy load; the fixed
  // proportion's little-core P99 swings with the load while LibASL pins it
  // to the SLO in both.
  ctx.banner("Section 2.3", "fixed proportion is unstable across loads");
  auto light = collapse_workload(16, 2000);
  auto heavy = collapse_workload(64, 100);
  SimConfig pb = ctx.scaled(
      collapse_config(8, LockKind::kShflPb, TasAffinity::kSymmetric));
  pb.pb_proportion = 10;
  SimResult pb_light = run_sim(pb, light);
  SimResult pb_heavy = run_sim(pb, heavy);
  const Time slo = 60 * kMicro;
  SimConfig asl = ctx.scaled(
      collapse_config(8, LockKind::kReorderable, TasAffinity::kSymmetric));
  asl.policy = Policy::kAsl;
  asl.use_slo = true;
  asl.slo = slo;
  seed_controller(asl);
  SimResult asl_light = run_sim(asl, light);
  SimResult asl_heavy = run_sim(asl, heavy);

  Table unstable({"policy", "light_little_p99_us", "heavy_little_p99_us"});
  unstable.add_row({"shfl-pb10",
                    Table::fmt_ns_as_us(pb_light.latency.p99_little()),
                    Table::fmt_ns_as_us(pb_heavy.latency.p99_little())});
  unstable.add_row({"libasl (slo 60us)",
                    Table::fmt_ns_as_us(asl_light.latency.p99_little()),
                    Table::fmt_ns_as_us(asl_heavy.latency.p99_little())});
  ctx.emit(unstable, "load_instability");

  const double pb_swing =
      static_cast<double>(pb_heavy.latency.p99_little()) /
      static_cast<double>(std::max<std::uint64_t>(
          pb_light.latency.p99_little(), 1));
  ctx.shape_check(pb_swing > 3.0,
                  "fixed proportion: little-core P99 swings >3x across loads");
  ctx.shape_check(asl_heavy.latency.p99_little() <= slo * 13 / 10 &&
                      asl_light.latency.p99_little() <= slo * 13 / 10,
                  "LibASL: little-core P99 pinned to the SLO under both loads");
}
