// Figures 8h/8i (Bench-6): CPU core over-subscription — 2 threads per core
// running Bench-1 with blocking locks. Compares pthread, spin-then-park MCS
// and blocking LibASL at several SLOs, then sweeps the SLO (Figure 8i).
//
// Also covers DESIGN.md ablation 4 (blocking vs spinning standby when
// oversubscribed).
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

namespace {

SimConfig oversub(SimConfig cfg) {
  cfg.machine.threads_per_core = 2;
  cfg.big_threads = 8;    // 2 per big core
  cfg.little_threads = 8; // 2 per little core
  return cfg;
}

SimConfig blocking_asl(Time slo, bool use_slo) {
  SimConfig cfg = oversub(bench1_config(LockKind::kBlockingReorderable));
  cfg.policy = Policy::kAsl;
  cfg.use_slo = use_slo;
  cfg.slo = slo;
  seed_controller(cfg);
  return cfg;
}

}  // namespace

ASL_SCENARIO(fig08hi_oversub,
             "Figure 8h/8i: blocking locks, 2 threads/core (Bench-1)") {
  ctx.banner("Figure 8h", "blocking locks, 2 threads/core (Bench-1)");
  ctx.note("LibASL-X = blocking LibASL with SLO X ms");

  auto gen = bench1_workload();
  Table table = comparison_table();

  SimResult pth = run_sim(
      ctx.scaled(oversub(bench1_config(LockKind::kPthread))), gen);
  add_comparison_row(table, "pthread", pth, pth.cs_throughput());
  SimResult stp = run_sim(
      ctx.scaled(oversub(bench1_config(LockKind::kStpMcs))), gen);
  add_comparison_row(table, "mcs-stp", stp, stp.cs_throughput());
  SimResult asl0 = run_sim(ctx.scaled(blocking_asl(0, true)), gen);
  add_comparison_row(table, "libasl-0", asl0, asl0.cs_throughput());
  SimResult asl3 = run_sim(ctx.scaled(blocking_asl(3 * kMilli, true)), gen);
  add_comparison_row(table, "libasl-3ms", asl3, asl3.cs_throughput());
  SimResult asl8 = run_sim(ctx.scaled(blocking_asl(8 * kMilli, true)), gen);
  add_comparison_row(table, "libasl-8ms", asl8, asl8.cs_throughput());
  SimResult aslmax = run_sim(ctx.scaled(blocking_asl(0, false)), gen);
  add_comparison_row(table, "libasl-max", aslmax, aslmax.cs_throughput());
  // Ablation 4: spinning standby while oversubscribed (what LibASL avoids).
  SimConfig spin_cfg = oversub(bench1_config(LockKind::kReorderable));
  spin_cfg.policy = Policy::kAsl;
  spin_cfg.use_slo = false;
  SimResult spin = run_sim(ctx.scaled(spin_cfg), gen);
  add_comparison_row(table, "spin-standby(ablation)", spin,
                     spin.cs_throughput());
  ctx.emit(table, "oversub_comparison");

  ctx.shape_check(stp.cs_throughput() < pth.cs_throughput() * 0.7,
                  "spin-then-park MCS pays a wakeup per handover and loses "
                  "to pthread (paper: 96% worse)");
  ctx.shape_check(aslmax.cs_throughput() > pth.cs_throughput() * 1.1,
                  "blocking LibASL beats pthread (paper: up to 80%)");
  ctx.shape_check(aslmax.cs_throughput() > spin.cs_throughput(),
                  "sleeping standby beats spinning standby when "
                  "oversubscribed");

  ctx.banner("Figure 8i", "blocking LibASL with variant SLOs");
  Table sweep({"slo_ms", "big_p99_ms", "little_p99_ms", "tput_ops"});
  double tput_hi = 0;
  bool tracked = true;
  for (Time slo_ms : {1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u}) {
    SimResult r = run_sim(ctx.scaled(blocking_asl(slo_ms * kMilli, true)),
                          gen);
    sweep.add_row({std::to_string(slo_ms),
                   Table::fmt(static_cast<double>(r.latency.p99_big()) / 1e6),
                   Table::fmt(
                       static_cast<double>(r.latency.p99_little()) / 1e6),
                   Table::fmt_ops(r.cs_throughput())});
    if (slo_ms == 10) tput_hi = r.cs_throughput();
    if (slo_ms >= 4) {
      tracked = tracked && r.latency.p99_little() <= slo_ms * kMilli * 2;
    }
  }
  ctx.emit(sweep, "oversub_slo_sweep");
  // The knee of this workload sits below SLO = 1ms, so growth is measured
  // from the FIFO fallback (LibASL-0) to the loose-SLO plateau.
  ctx.shape_check(tput_hi > asl0.cs_throughput() * 1.1,
                  "throughput grows from the FIFO fallback to loose SLOs");
  ctx.shape_check(tracked, "SLO tracked despite unstable pthread handover");
}
