// Figure-10a-c: database figure for the kLevelDb workload model (see
// db_bench_common.h and sim/db_model.cpp for the lock pattern and op mix).
#include "db_bench_common.h"

ASL_SCENARIO(fig10_leveldb, "Figure 10a-c: LevelDB workload model") {
  asl::bench::run_db_figure(ctx, asl::sim::DbKind::kLevelDb, "Figure-10a-c");
}
