// Shared scaffolding for the figure-reproduction benches.
//
// The per-bench main() boilerplate (CLI, SIM_TIME_SCALE, shape-check
// accounting, CSV output) lives in the scenario layer
// (src/harness/scenario.h); this header only keeps the table helpers every
// figure shares. Benches register with ASL_SCENARIO and receive a
// ScenarioContext.
#pragma once

#include <string>

#include "harness/experiment.h"
#include "harness/scenario.h"
#include "stats/table.h"

namespace asl::bench {

using sim::SimConfig;
using sim::SimResult;

// A standard comparison row: lock name, Big/Little/Overall P99 (us),
// throughput (ops/s).
inline void add_comparison_row(Table& table, const std::string& name,
                               const SimResult& r, double throughput) {
  table.add_row({name, Table::fmt_ns_as_us(r.latency.p99_big()),
                 Table::fmt_ns_as_us(r.latency.p99_little()),
                 Table::fmt_ns_as_us(r.latency.p99_overall()),
                 Table::fmt_ops(throughput)});
}

inline Table comparison_table() {
  return Table(
      {"lock", "big_p99_us", "little_p99_us", "overall_p99_us", "tput_ops"});
}

}  // namespace asl::bench
