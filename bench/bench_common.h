// Shared scaffolding for the figure-reproduction benches: uniform headers,
// lock-comparison rows, shape-check assertions printed as PASS/FAIL, and the
// SIM_TIME_SCALE knob.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "stats/table.h"

namespace asl::bench {

using sim::SimConfig;
using sim::SimResult;

// SIM_TIME_SCALE scales the simulated measurement window (default 1.0; the
// shapes are stable down to ~0.2).
inline double time_scale() {
  const char* env = std::getenv("SIM_TIME_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline SimConfig scaled(SimConfig cfg) {
  return sim::scale_durations(cfg, time_scale());
}

inline void banner(const std::string& figure, const std::string& title) {
  std::cout << "\n=== " << figure << ": " << title << " ===\n";
}

inline void note(const std::string& text) {
  std::cout << "  # " << text << "\n";
}

// Shape check: prints PASS/FAIL so bench output doubles as verification.
inline bool g_all_shapes_ok = true;
inline void shape_check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [shape PASS] " : "  [shape FAIL] ") << what << "\n";
  g_all_shapes_ok = g_all_shapes_ok && ok;
}

inline int finish() {
  std::cout << (g_all_shapes_ok ? "\nAll shape checks passed.\n"
                                : "\nSOME SHAPE CHECKS FAILED.\n");
  return g_all_shapes_ok ? 0 : 1;
}

// A standard comparison row: lock name, Big/Little/Overall P99 (us),
// throughput (ops/s).
inline void add_comparison_row(Table& table, const std::string& name,
                               const SimResult& r, double throughput) {
  table.add_row({name, Table::fmt_ns_as_us(r.latency.p99_big()),
                 Table::fmt_ns_as_us(r.latency.p99_little()),
                 Table::fmt_ns_as_us(r.latency.p99_overall()),
                 Table::fmt_ops(throughput)});
}

inline Table comparison_table() {
  return Table(
      {"lock", "big_p99_us", "little_p99_us", "overall_p99_us", "tput_ops"});
}

}  // namespace asl::bench
