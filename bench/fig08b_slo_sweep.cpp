// Figure 8b: Bench-1 under variant SLOs. As the SLO grows, throughput grows
// and the little-core P99 sticks to the Y=X line; below the FIFO-achievable
// latency, LibASL falls back to MCS behaviour.
//
// Also runs the DESIGN.md ablation 1: the percentile-derived AIMD growth
// unit vs a fixed growth unit (WindowController::Config::fixed_unit).
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig08b_slo_sweep,
             "Figure 8b: Bench-1 with variant SLOs (LibASL feedback)") {
  ctx.banner("Figure 8b", "Bench-1 with variant SLOs (LibASL feedback)");

  Table table({"slo_us", "big_p99_us", "little_p99_us", "overall_p99_us",
               "tput_ops"});
  auto gen = bench1_workload();

  double tput_20 = 0, tput_100 = 0;
  bool slo_tracked = true;
  for (Time slo_us : {5u, 10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u, 90u, 100u}) {
    const Time slo = slo_us * kMicro;
    SimResult r = run_sim(ctx.scaled(bench1_asl_config(slo)), gen);
    table.add_row({std::to_string(slo_us),
                   Table::fmt_ns_as_us(r.latency.p99_big()),
                   Table::fmt_ns_as_us(r.latency.p99_little()),
                   Table::fmt_ns_as_us(r.latency.p99_overall()),
                   Table::fmt_ops(r.cs_throughput())});
    if (slo_us == 20) tput_20 = r.cs_throughput();
    if (slo_us == 100) tput_100 = r.cs_throughput();
    if (slo_us >= 30) {
      slo_tracked = slo_tracked && r.latency.p99_little() <= slo * 13 / 10;
    }
  }
  ctx.emit(table, "slo_sweep");

  ctx.shape_check(tput_100 > tput_20,
                  "throughput increases with a larger SLO");
  ctx.shape_check(slo_tracked,
                  "little-core P99 tracks the SLO (sticks to the Y=X line)");

  // Ablation 1: percentile-derived unit vs a genuinely fixed tiny unit
  // (Config::fixed_unit keeps the growth unit constant instead of
  // re-deriving it as window*(100-PCT)/100 after every violation). The
  // fixed unit recovers too slowly after violations, costing throughput at
  // the same SLO.
  ctx.banner("Ablation 1", "AIMD growth unit: percentile-derived vs fixed");
  const Time slo = 50 * kMicro;
  SimResult derived = run_sim(ctx.scaled(bench1_asl_config(slo)), gen);
  SimConfig fixed_cfg = ctx.scaled(bench1_asl_config(slo));
  fixed_cfg.controller.fixed_unit = true;
  fixed_cfg.controller.initial_unit = 16;
  fixed_cfg.controller.min_unit = 16;
  SimResult fixed = run_sim(fixed_cfg, gen);
  Table ab({"variant", "little_p99_us", "tput_ops"});
  ab.add_row({"unit=window*(100-PCT)/100",
              Table::fmt_ns_as_us(derived.latency.p99_little()),
              Table::fmt_ops(derived.cs_throughput())});
  ab.add_row({"unit=16ns fixed",
              Table::fmt_ns_as_us(fixed.latency.p99_little()),
              Table::fmt_ops(fixed.cs_throughput())});
  ctx.emit(ab, "ablation1_growth_unit");
  ctx.shape_check(derived.cs_throughput() >= fixed.cs_throughput() * 0.95,
                  "derived unit recovers at least as fast as a fixed tiny "
                  "unit");
}
