// Figure 8b: Bench-1 under variant SLOs. As the SLO grows, throughput grows
// and the little-core P99 sticks to the Y=X line; below the FIFO-achievable
// latency, LibASL falls back to MCS behaviour.
//
// The sweep runs through the paper's SLO profiling tool (Section 3.1,
// asl/profiler.h): SloProfiler::sweep iterates the SLO range, the simulator
// provides the measurement callback, and graph_table renders the
// latency-throughput graph — the same artifact the tool hands a developer
// choosing an SLO. recommend() then picks the knee.
//
// Also runs the DESIGN.md ablation 1: the percentile-derived AIMD growth
// unit vs a fixed growth unit (WindowController::Config::fixed_unit).
#include "asl/profiler.h"
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

ASL_SCENARIO(fig08b_slo_sweep,
             "Figure 8b: Bench-1 with variant SLOs (LibASL feedback)") {
  ctx.banner("Figure 8b", "Bench-1 with variant SLOs (LibASL feedback)");

  auto gen = bench1_workload();
  SloProfiler profiler;
  // 10..100 us in 10 linear steps: 10, 20, ..., 100.
  const SloProfiler::Range range{10 * kMicro, 100 * kMicro, 10};
  const std::vector<SloPoint> points =
      profiler.sweep(range, [&](std::uint64_t slo) {
        SimResult r = run_sim(ctx.scaled(bench1_asl_config(slo)), gen);
        SloPoint p;
        p.throughput = r.cs_throughput();
        p.p99_big = r.latency.p99_big();
        p.p99_little = r.latency.p99_little();
        p.p99_overall = r.latency.p99_overall();
        return p;
      });
  ctx.emit(SloProfiler::graph_table(points), "slo_sweep");

  double tput_20 = 0, tput_100 = 0;
  bool slo_tracked = true;
  for (const SloPoint& p : points) {
    if (p.slo_ns == 20 * kMicro) tput_20 = p.throughput;
    if (p.slo_ns == 100 * kMicro) tput_100 = p.throughput;
    if (p.slo_ns >= 30 * kMicro) {
      slo_tracked = slo_tracked && p.p99_little <= p.slo_ns * 13 / 10;
    }
  }
  ctx.shape_check(tput_100 > tput_20,
                  "throughput increases with a larger SLO");
  ctx.shape_check(slo_tracked,
                  "little-core P99 tracks the SLO (sticks to the Y=X line)");

  const SloPoint* knee = SloProfiler::recommend(points);
  ctx.shape_check(knee != nullptr, "profiler recommends an SLO knee");
  if (knee != nullptr) {
    ctx.note("recommended SLO (95% of best throughput): " +
             std::to_string(knee->slo_ns / kMicro) + " us");
  }

  // Ablation 1: percentile-derived unit vs a genuinely fixed tiny unit
  // (Config::fixed_unit keeps the growth unit constant instead of
  // re-deriving it as window*(100-PCT)/100 after every violation). The
  // fixed unit recovers too slowly after violations, costing throughput at
  // the same SLO.
  ctx.banner("Ablation 1", "AIMD growth unit: percentile-derived vs fixed");
  const Time slo = 50 * kMicro;
  SimResult derived = run_sim(ctx.scaled(bench1_asl_config(slo)), gen);
  SimConfig fixed_cfg = ctx.scaled(bench1_asl_config(slo));
  fixed_cfg.controller.fixed_unit = true;
  fixed_cfg.controller.initial_unit = 16;
  fixed_cfg.controller.min_unit = 16;
  SimResult fixed = run_sim(fixed_cfg, gen);
  Table ab({"variant", "little_p99_us", "tput_ops"});
  ab.add_row({"unit=window*(100-PCT)/100",
              Table::fmt_ns_as_us(derived.latency.p99_little()),
              Table::fmt_ops(derived.cs_throughput())});
  ab.add_row({"unit=16ns fixed",
              Table::fmt_ns_as_us(fixed.latency.p99_little()),
              Table::fmt_ops(fixed.cs_throughput())});
  ctx.emit(ab, "ablation1_growth_unit");
  ctx.shape_check(derived.cs_throughput() >= fixed.cs_throughput() * 0.95,
                  "derived unit recovers at least as fast as a fixed tiny "
                  "unit");
}
