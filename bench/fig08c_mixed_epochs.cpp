// Figure 8c (Bench-3): epochs of significantly different lengths. Short and
// long (100x) epochs are mixed at varying ratios under a fixed 100us SLO;
// LibASL must stay close to the static-window optimum (LibASL-OPT) while
// keeping the little-core latency within SLO at every mix.
//
// Also runs DESIGN.md ablation 3: per-epoch windows vs a single per-lock
// static window, which is what makes heterogeneous epochs survivable.
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

namespace {

// x% short epochs, (100-x)% long (100x) epochs. Long epochs are long by
// "inserting more NOP instructions" (paper Bench-3): the in-epoch
// *non-critical* work grows 100x while the critical section stays Bench-1
// sized — so a long epoch is still SLO-feasible on a little core (its
// compute alone stays under the SLO) and the reorder window absorbs the
// rest.
// Calibration: CS 2.5us, long-epoch NOPs 25us (100x the short epoch's
// 0.25us). A long epoch's own compute on a little core is ~55us (10us CS +
// 45us NOPs), leaving window headroom under the 100us SLO; at the all-long
// end the FIFO tail sits right at the SLO boundary (the paper's x=100
// fallback point), and the mixes keep the lock saturated so reordering
// pays.
EpochGen mixed_workload(std::uint32_t short_pct) {
  return [short_pct](const SimThread&, std::uint64_t, Time, Rng& rng) {
    EpochPlan plan;
    const bool is_short = rng.below(100) < short_pct;
    const Time inner_ncs = is_short ? Time{250} : Time{250 * 100};
    plan.sections.push_back(Section{0, 2500, inner_ncs});
    plan.gap_after = 250;
    return plan;
  };
}

}  // namespace

ASL_SCENARIO(fig08c_mixed_epochs,
             "Figure 8c: mixed short/long (100x) epochs, SLO 100us") {
  ctx.banner("Figure 8c", "mixed short/long (100x) epochs, SLO 100us");

  const Time slo = 100 * kMicro;
  Table table({"short_pct", "asl_tput_norm_mcs", "opt_tput_norm_mcs",
               "little_p99_us", "overall_p99_us"});

  bool slo_ok = true;
  bool near_opt = true;
  bool beats_mcs = true;
  for (std::uint32_t pct : {0u, 20u, 40u, 50u, 60u, 80u, 100u}) {
    auto gen = mixed_workload(pct);
    SimResult mcs = run_sim(ctx.scaled(bench1_config(LockKind::kMcs)), gen);
    SimResult asl = run_sim(ctx.scaled(bench1_asl_config(slo)), gen);
    SimConfig opt_cfg = ctx.scaled(bench1_config(LockKind::kReorderable));
    opt_cfg.policy = Policy::kAslStatic;
    // "Directly chooses a suitable (static) window": the window a long
    // epoch can afford (SLO minus its little-core compute).
    opt_cfg.static_window = pct == 0 ? 0 : slo / 4;
    SimResult opt = run_sim(opt_cfg, gen);

    const double asl_norm = asl.cs_throughput() / mcs.cs_throughput();
    const double opt_norm = opt.cs_throughput() / mcs.cs_throughput();
    table.add_row({std::to_string(pct), Table::fmt(asl_norm),
                   Table::fmt(opt_norm),
                   Table::fmt_ns_as_us(asl.latency.p99_little()),
                   Table::fmt_ns_as_us(asl.latency.p99_overall())});
    if (pct == 0) {
      // All epochs long: the FIFO tail sits at the SLO boundary, so LibASL
      // ends up at (or indistinguishable from) MCS behaviour (paper: y=1 at
      // x=100). Accept either the fallback tail or an in-SLO tail.
      slo_ok = slo_ok &&
               (asl.latency.p99_little() <=
                    mcs.latency.p99_little() * 13 / 10 ||
                asl.latency.p99_little() <= slo * 13 / 10);
    } else {
      slo_ok = slo_ok && asl.latency.p99_little() <= slo * 13 / 10;
    }
    if (pct >= 20 && pct <= 80) {
      near_opt = near_opt && asl_norm > opt_norm * 0.7;
      beats_mcs = beats_mcs && asl_norm > 1.05;
    }
  }
  ctx.emit(table, "mixed_epochs");

  ctx.shape_check(slo_ok,
                  "latency within SLO at every feasible mix (FIFO fallback "
                  "when all epochs are long)");
  ctx.shape_check(beats_mcs, "throughput above MCS at intermediate mixes");
  ctx.shape_check(near_opt,
                  "close to the static-window optimum (paper: max 20% gap)");
}
