// Figure-9g-i: database figure for the kLmdb workload model (see db_bench_common.h and
// sim/db_model.cpp for the lock pattern and op mix).
#include <cmath>

#include "db_bench_common.h"

int main() {
  return asl::bench::run_db_figure(asl::sim::DbKind::kLmdb, "Figure-9g-i");
}
