// Figure-9g-i: database figure for the kLmdb workload model (see
// db_bench_common.h and sim/db_model.cpp for the lock pattern and op mix).
#include "db_bench_common.h"

ASL_SCENARIO(fig09_lmdb, "Figure 9g-i: LMDB workload model") {
  asl::bench::run_db_figure(ctx, asl::sim::DbKind::kLmdb, "Figure-9g-i");
}
