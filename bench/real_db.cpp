// Real-thread throughput/latency of the five mini database engines under
// their Table-1 workload mixes, with LibASL epochs annotated around each
// request (the Section 4.2 integration, on real engines rather than the
// simulator models). Host numbers — they demonstrate the engines and the
// library integration, not the AMP figures (those come from the fig09*/
// fig10* simulator benches).
#include <atomic>
#include <iostream>

#include "asl/libasl.h"
#include "db/btreekv.h"
#include "db/hashkv.h"
#include "db/lsmkv.h"
#include "db/minisql.h"
#include "db/mvkv.h"
#include "harness/runner.h"
#include "platform/rng.h"
#include "stats/table.h"

using namespace asl;

namespace {

constexpr Nanos kRunFor = 200 * kNanosPerMilli;
constexpr Nanos kSlo = 2 * kNanosPerMilli;
constexpr std::uint64_t kKeys = 2048;

RunStats run_engine(const std::function<void(Rng&, std::uint64_t)>& op) {
  auto roles = m1_layout(4, 2);
  return run_fixed_duration(
      roles, kRunFor, [&](const WorkerCtx& ctx) -> WorkerBody {
        auto rng = std::make_shared<Rng>(ctx.index + 31);
        return [&, rng](WorkerCtx& c) {
          const Nanos t0 = now_ns();
          epoch_start(1);
          op(*rng, rng->below(kKeys));
          epoch_end(1, kSlo);
          c.record_latency(now_ns() - t0);
          c.ops += 1;
        };
      });
}

void add_row(Table& table, const char* name, const RunStats& stats) {
  table.add_row({name, Table::fmt_ops(stats.throughput_ops_per_sec()),
                 Table::fmt_ns_as_us(stats.latency.p99_big()),
                 Table::fmt_ns_as_us(stats.latency.p99_little())});
}

}  // namespace

int main() {
  std::cout << "=== Real-engine benchmark (host threads, LibASL epochs, "
               "50/50 put-get unless noted) ===\n";
  Table table({"engine", "tput_ops", "big_p99_us", "little_p99_us"});

  {
    db::HashKv kv(64);
    for (std::uint64_t i = 0; i < kKeys; ++i)
      kv.put(std::to_string(i), "seed");
    add_row(table, "hashkv (kyoto)", run_engine([&](Rng& rng, std::uint64_t k) {
              if (rng.chance(0.5)) {
                kv.put(std::to_string(k), "v");
              } else {
                kv.get(std::to_string(k));
              }
            }));
  }
  {
    db::BtreeKv kv;
    for (std::uint64_t i = 0; i < kKeys; ++i) kv.put(i, "seed");
    add_row(table, "btreekv (upscaledb)",
            run_engine([&](Rng& rng, std::uint64_t k) {
              if (rng.chance(0.5)) {
                kv.put(k, "v");
              } else {
                kv.get(k);
              }
            }));
  }
  {
    db::MvKv kv;
    for (std::uint64_t i = 0; i < kKeys; ++i) kv.put(i, "seed");
    add_row(table, "mvkv (lmdb)", run_engine([&](Rng& rng, std::uint64_t k) {
              if (rng.chance(0.5)) {
                kv.put(k, "v");
              } else {
                kv.get(k);
              }
            }));
  }
  {
    db::LsmKv kv;
    for (std::uint64_t i = 0; i < kKeys; ++i) kv.put(i, "seed");
    add_row(table, "lsmkv (leveldb, get-only)",
            run_engine([&](Rng&, std::uint64_t k) { kv.get(k); }));
  }
  {
    db::MiniSql db;
    db.create_table("t");
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      db.insert("t", {static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(i % 100), "seed"});
    }
    std::atomic<std::int64_t> next_id{static_cast<std::int64_t>(kKeys)};
    add_row(table, "minisql (sqlite mix)",
            run_engine([&](Rng& rng, std::uint64_t k) {
              switch (rng.below(3)) {
                case 0: {
                  db::MiniSql::Txn txn = db.begin();
                  if (txn.insert("t", {next_id.fetch_add(1), 1, "r"})) {
                    txn.commit();
                  } else {
                    txn.rollback();
                  }
                  break;
                }
                case 1:
                  db.select_point("t", static_cast<std::int64_t>(k));
                  break;
                default:
                  db.select_range("t", static_cast<std::int64_t>(k),
                                  static_cast<std::int64_t>(k) + 64, 50);
                  break;
              }
            }));
  }

  table.print(std::cout);
  std::cout << "(absolute numbers are host-specific; figure reproduction "
               "lives in fig09*/fig10*)\n";
  return 0;
}
