// Figure 8d (Bench-2): self-adaptive reorder window under a highly variable
// workload. Epoch length: 1x (0-100ms) -> 128x (100-200ms) -> 1x
// (200-250ms) -> random 1..128x (250-300ms) -> 1024x (300ms+, SLO becomes
// impossible -> FIFO fallback). SLO fixed at 100us. Prints the little-core
// latency envelope per phase.
#include "bench_common.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::bench;
using namespace asl::sim;

namespace {

constexpr Time kBaseCs = 400;
constexpr Time kBaseInner = 300;  // in-epoch non-critical work

// Phase script: the epoch's in-epoch work is scaled 1x / 128x / 1x /
// random(1..128) / 1024x. At 128x a little-core epoch's own compute is
// ~69us — feasible under the 100us SLO with a small window; at 1024x it is
// ~553us — the SLO is impossible and LibASL must fall back to FIFO.
EpochGen phased_workload() {
  return [](const SimThread&, std::uint64_t, Time now, Rng& rng) {
    EpochPlan plan;
    double scale = 1.0;
    if (now >= 300 * kMilli) {
      scale = 1024.0;
    } else if (now >= 250 * kMilli) {
      scale = static_cast<double>(1 + rng.below(128));
    } else if (now >= 200 * kMilli) {
      scale = 1.0;
    } else if (now >= 100 * kMilli) {
      scale = 128.0;
    }
    plan.sections.push_back(
        Section{0, kBaseCs, static_cast<Time>(kBaseInner * scale)});
    plan.gap_after = 250;
    return plan;
  };
}

}  // namespace

ASL_SCENARIO(fig08d_adaptive,
             "Figure 8d: self-adaptive reorder window under phase changes") {
  ctx.banner("Figure 8d", "self-adaptive reorder window under phase changes");
  ctx.note("phases: 1x | 128x | 1x | random | 1024x (SLO 100us)");

  SimConfig cfg = bench1_asl_config(100 * kMicro);
  cfg.num_locks = 1;
  cfg.warmup = 0;
  cfg.measure = 350 * kMilli;  // fixed script timeline; not scaled
  cfg.record_series = true;
  SimResult r = run_sim(cfg, phased_workload());

  // Report the P99-ish envelope (max after dropping the top 1%) per phase.
  struct Phase {
    const char* name;
    Time t0, t1;
  };
  const Phase phases[] = {
      {"0-100ms (1x)", 5 * kMilli, 100 * kMilli},
      {"100-200ms (128x)", 110 * kMilli, 200 * kMilli},
      {"200-250ms (1x)", 210 * kMilli, 250 * kMilli},
      {"250-300ms (random)", 255 * kMilli, 300 * kMilli},
      {"300-350ms (1024x)", 305 * kMilli, 350 * kMilli},
  };
  Table table({"phase", "little_max_us", "big_max_us", "epochs_little"});
  std::vector<std::uint64_t> little_max(5, 0);
  std::vector<std::uint64_t> big_max(5, 0);
  for (int i = 0; i < 5; ++i) {
    little_max[i] = r.little_series.max_in(phases[i].t0, phases[i].t1);
    big_max[i] = r.big_series.max_in(phases[i].t0, phases[i].t1);
    std::uint64_t n = 0;
    for (const auto& p : r.little_series.points()) {
      n += (p.t >= phases[i].t0 && p.t < phases[i].t1) ? 1 : 0;
    }
    table.add_row({phases[i].name, Table::fmt_ns_as_us(little_max[i]),
                   Table::fmt_ns_as_us(big_max[i]), std::to_string(n)});
  }
  ctx.emit(table, "phase_envelope");

  const Time slo = 100 * kMicro;
  // Transient spikes right at a phase change are expected (that is the
  // feedback detecting the violation); the envelope must stay within a
  // small multiple of the SLO and re-converge.
  ctx.shape_check(little_max[0] <= slo * 13 / 10,
                  "steady 1x phase: latency within SLO");
  ctx.shape_check(little_max[1] <= slo * 3,
                  "128x phase: re-converges near SLO after the spike");
  ctx.shape_check(little_max[2] <= slo * 13 / 10,
                  "back to 1x: window re-opens, SLO still met");
  ctx.shape_check(little_max[3] <= slo * 3,
                  "random phase: SLO maintained under heterogeneity");
  ctx.shape_check(big_max[4] > slo && little_max[4] < big_max[4] * 3,
                  "1024x phase: SLO impossible -> FIFO fallback, big ~ little");
}
