// Batch + shed sweep (DESIGN.md §6): the measured case for request batching
// on the shard queue and class-aware load shedding.
//
//   * kv_batch_sweep_twin — the sweep on the simulated twin: batch_k in
//     {1,2,4,8,16} x {shed off, shed on} at one fixed offered overload.
//     Virtual time makes the two headline claims assertable facts:
//     throughput is monotone non-decreasing in batch_k at fixed offered
//     load, and with shedding on the loose class absorbs the rejections
//     while the tight class's p99 improves over the unshedded run. A
//     per-class capacity probe (find_capacity_per_class) then reports how
//     much offered load each class can absorb at batch_k 1 vs 8.
//   * kv_batch_sweep_real — the same sweep on the wall-clock service in
//     smoke mode: coarse rates, accounting-only shape checks (shed counts
//     land in the right class, conservation holds), since wall-clock
//     latency on a shared runner is not assertable.
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/capacity_probe.h"
#include "kv_probe_common.h"
#include "server/sim_kv_service.h"
#include "workload/open_loop.h"

namespace asl::bench {
namespace {

using server::AdmissionPolicy;
using server::ClassReport;
using server::KvScenario;
using server::KvService;
using server::SimServiceReport;

// The sweep's base configuration: the kv_batch_shed scenario (uniform keys,
// steady Poisson, tight gets + sheddable loose puts) under the shared
// heavy-cost overload profile (scenarios.h make_overloaded_kv_scenario —
// the same profile the TwinShapes tests assert on and the golden CSV pins),
// with the batch/shed knobs overridden per sweep cell.
KvScenario sweep_scenario(std::uint32_t batch_k, bool shed,
                          double rate_scale, Nanos horizon) {
  KvScenario sc =
      server::make_overloaded_kv_scenario("kv_batch_shed", rate_scale,
                                          horizon);
  sc.service.batch_k = batch_k;
  if (!shed) sc.service.classes[1].admission = AdmissionPolicy{};
  return sc;
}

// Sustained absorbed rate: completions per second of *arrival window*. The
// horizon, not drained_at, is the denominator — at fixed offered load the
// service that completes more of it has the higher throughput, and the
// post-horizon drain tail (one final large batch chewing on a little core
// while the big core idles) does not punish the very batching that created
// it.
std::uint64_t tput_per_sec(const SimServiceReport& r) {
  return r.horizon == 0 ? 0
                        : r.total_completed() * kNanosPerSec / r.horizon;
}

void run_batch_sweep_twin(ScenarioContext& ctx) {
  const Nanos horizon = 20 * kNanosPerMilli;
  // 8x the nominal rate: comfortably past saturation for the heavy-cost
  // profile, so both backpressure regimes (shed vs full-queue) are active.
  const double overload = 8.0;
  const std::vector<std::uint32_t> batch_ks = {1, 2, 4, 8, 16};

  ctx.banner("kv_batch_sweep_twin",
             "batch_k x shed sweep on the simulated twin (deterministic)");
  ctx.note("offered load fixed at " + Table::fmt(overload, 1) +
           "x nominal; tight class kv-get (1 ms SLO, protected), loose "
           "class kv-put (4 ms SLO, sheds at half queue depth)");

  Table sweep({"batch_k", "shed_on", "offered", "accepted", "rejected",
               "shed", "completed", "tput_per_sec", "get_p99_ns",
               "put_p99_ns", "get_rejected", "put_rejected"});
  bool monotone = true;
  bool conserved = true;
  std::uint64_t tight_p99_shed = 0, tight_p99_noshed = 0;
  std::uint64_t loose_rej_shed = 0, tight_rej_shed = 0, shed_total = 0;
  for (const bool shed : {false, true}) {
    std::uint64_t prev_tput = 0;
    for (const std::uint32_t k : batch_ks) {
      const SimServiceReport r =
          run_sim_kv(sweep_scenario(k, shed, overload, horizon));
      const std::uint64_t tput = tput_per_sec(r);
      const ClassReport& get = r.service.classes[0];
      const ClassReport& put = r.service.classes[1];
      sweep.add_row({std::to_string(k), shed ? "1" : "0",
                     std::to_string(r.offered),
                     std::to_string(r.total_accepted()),
                     std::to_string(r.total_rejected()),
                     std::to_string(r.service.total_shed()),
                     std::to_string(r.total_completed()),
                     std::to_string(tput),
                     std::to_string(get.total.overall().p99()),
                     std::to_string(put.total.overall().p99()),
                     std::to_string(get.rejected),
                     std::to_string(put.rejected)});
      monotone = monotone && tput >= prev_tput;
      prev_tput = tput;
      conserved = conserved &&
                  r.offered == r.total_accepted() + r.total_rejected() &&
                  r.total_completed() == r.total_accepted();
      // Compare shed vs unshedded at batch_k = 4 (the kv_batch_shed
      // default): at k = 1 the queue-capped p99s of the two settings tie —
      // the service is too slow for admission policy to change what the
      // tail looks like — while any batched cell shows the separation.
      if (k == 4) {
        if (shed) {
          tight_p99_shed = get.total.overall().p99();
          loose_rej_shed = put.rejected;
          tight_rej_shed = get.rejected;
          shed_total = r.service.total_shed();
        } else {
          tight_p99_noshed = get.total.overall().p99();
        }
      }
    }
  }
  ctx.emit(sweep, "batch_sweep");

  ctx.shape_check(conserved, "conservation in every sweep cell");
  ctx.shape_check(monotone,
                  "throughput monotone non-decreasing in batch_k "
                  "(both shed settings)");
  ctx.shape_check(shed_total > 0 && loose_rej_shed > tight_rej_shed,
                  "past saturation the loose class absorbs the rejections");
  ctx.shape_check(tight_p99_shed < tight_p99_noshed,
                  "shedding the loose class shortens the tight-class p99");

  // Per-class capacity: how much offered load can each class absorb while
  // *it* keeps its SLO (hard rejections only — deliberate sheds are policy,
  // not overload). Reported at batch_k 1 vs 8, shedding on.
  for (const std::uint32_t k : {1u, 8u}) {
    const KvScenario base =
        sweep_scenario(k, /*shed=*/true, 1.0, 10 * kNanosPerMilli);
    const std::vector<ClassCapacity> per_class =
        find_class_capacities_memoized(
            twin_probe_config(base, /*max_trials=*/20), base.service,
            [&base](double rate) { return run_sim_kv(at_rate(base, rate)); });
    ctx.emit(class_capacity_table(per_class),
             "capacity_by_class_batch" + std::to_string(k));
    bool sane = true;
    for (const ClassCapacity& c : per_class) {
      sane = sane && c.result.feasible &&
             (!c.result.bracketed ||
              c.result.max_rate < c.result.min_violating);
    }
    ctx.shape_check(sane, "per-class probes feasible and ordered (batch_k=" +
                              std::to_string(k) + ")");
  }
}

void run_batch_sweep_real(ScenarioContext& ctx) {
  const Nanos horizon = static_cast<Nanos>(
      static_cast<double>(40 * kNanosPerMilli) * ctx.time_scale());
  ctx.banner("kv_batch_sweep_real",
             "batch_k x shed sweep on the real service (smoke mode)");

  Table sweep({"batch_k", "shed_on", "offered", "accepted", "rejected",
               "shed", "completed", "get_rejected", "put_rejected",
               "put_shed"});
  bool conserved = true;
  bool shed_attribution = true;
  for (const bool shed : {false, true}) {
    for (const std::uint32_t k : {1u, 4u, 16u}) {
      KvScenario sc = server::make_kv_scenario("kv_batch_shed");
      sc.service.batch_k = k;
      sc.service.prefill_keys = 4096;
      // A small queue, a heavier critical section and 20x nominal load make
      // backpressure likely even in a short smoke run on a fast host; the
      // wall-clock cells stay accounting-only regardless, so a quiet runner
      // that absorbs everything still passes.
      sc.service.queue_capacity = 32;
      sc.service.cost_scale = 50.0;  // hash default cs class -> 20k NOPs
      if (!shed) sc.service.classes[1].admission = AdmissionPolicy{};
      server::scale_load_rates(sc.load, 20.0);

      KvService service(sc.service);
      service.start();
      server::run_open_loop(service, sc.load, horizon);
      service.stop();
      const server::ServiceReport r = service.report();
      const ClassReport& get = r.classes[0];
      const ClassReport& put = r.classes[1];
      sweep.add_row({std::to_string(k), shed ? "1" : "0",
                     std::to_string(r.total_accepted() + r.total_rejected()),
                     std::to_string(r.total_accepted()),
                     std::to_string(r.total_rejected()),
                     std::to_string(r.total_shed()),
                     std::to_string(r.total_completed()),
                     std::to_string(get.rejected), std::to_string(put.rejected),
                     std::to_string(put.shed)});
      conserved = conserved && r.total_completed() == r.total_accepted();
      // Sheds may only appear in the sheddable class, and only when the
      // policy is on; the protected tight class must never record one.
      shed_attribution = shed_attribution && get.shed == 0 &&
                         (shed || put.shed == 0) && put.shed <= put.rejected;
    }
  }
  ctx.emit(sweep, "batch_sweep_real");
  ctx.shape_check(conserved, "stop() drains every accepted request");
  ctx.shape_check(shed_attribution,
                  "sheds attributed only to the sheddable class");
}

}  // namespace
}  // namespace asl::bench

ASL_SCENARIO(kv_batch_sweep_twin,
             "batch_k x shed sweep + per-class capacity on the twin "
             "(deterministic)") {
  asl::bench::run_batch_sweep_twin(ctx);
}

ASL_SCENARIO(kv_batch_sweep_real,
             "batch_k x shed sweep on the real service (smoke, accounting)") {
  asl::bench::run_batch_sweep_real(ctx);
}
