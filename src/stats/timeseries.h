// Time-series recorder for per-epoch latency traces (Figure 8d: "epochs'
// latencies during first 350ms").
#pragma once

#include <cstdint>
#include <vector>

namespace asl {

class TimeSeries {
 public:
  struct Point {
    std::uint64_t t;  // timestamp (ns since experiment start)
    std::uint64_t v;  // observed value (e.g. epoch latency in ns)
  };

  void record(std::uint64_t t, std::uint64_t v) { points_.push_back({t, v}); }

  // Preallocate capacity for `n` points, so a recorder with a known tick
  // budget (the telemetry sampler, obs/timeseries_log.h) can append without
  // ever touching the heap mid-run.
  void reserve(std::size_t n) { points_.reserve(n); }

  const std::vector<Point>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }

  // Downsample to at most `max_points` by keeping, within each stride, the
  // point with the maximum value — tails are what the figure shows, so
  // downsampling must not erase spikes.
  TimeSeries downsample_keep_max(std::size_t max_points) const {
    TimeSeries out;
    if (points_.empty() || max_points == 0) return out;
    const std::size_t stride = (points_.size() + max_points - 1) / max_points;
    for (std::size_t base = 0; base < points_.size(); base += stride) {
      std::size_t best = base;
      const std::size_t end = std::min(base + stride, points_.size());
      for (std::size_t i = base + 1; i < end; ++i) {
        if (points_[i].v > points_[best].v) best = i;
      }
      out.record(points_[best].t, points_[best].v);
    }
    return out;
  }

  // Max value within [t0, t1).
  std::uint64_t max_in(std::uint64_t t0, std::uint64_t t1) const {
    std::uint64_t m = 0;
    for (const Point& p : points_) {
      if (p.t >= t0 && p.t < t1 && p.v > m) m = p.v;
    }
    return m;
  }

 private:
  std::vector<Point> points_;
};

}  // namespace asl
