#include "stats/histogram.h"

#include <algorithm>
#include <bit>

namespace asl {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

std::uint32_t Histogram::bucket_index(std::uint64_t value) {
  // Values below kSubBuckets map linearly (octave 0 is exact).
  if (value < kSubBuckets) {
    return static_cast<std::uint32_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const std::uint32_t octave = static_cast<std::uint32_t>(msb) - kSubBucketBits;
  const std::uint32_t sub = static_cast<std::uint32_t>(
      (value >> (msb - static_cast<int>(kSubBucketBits))) - kSubBuckets);
  const std::uint32_t index = (octave + 1) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_edge(std::uint32_t index) {
  if (index < kSubBuckets) {
    return index;
  }
  const std::uint32_t octave = index / kSubBuckets - 1;
  const std::uint32_t sub = index % kSubBuckets;
  // Reconstruct: value had msb = octave + kSubBucketBits, sub-bucket `sub`.
  const std::uint64_t base = 1ULL << (octave + kSubBucketBits);
  const std::uint64_t width = base >> kSubBucketBits;
  return base + static_cast<std::uint64_t>(sub + 1) * width - 1;
}

void Histogram::record(std::uint64_t value) { record_n(value, 1); }

void Histogram::record_n(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(value)] += count;
  total_ += count;
  sum_ += value * count;
  max_ = std::max(max_, value);
  min_ = std::min(min_, value);
}

std::uint64_t Histogram::quantile_from_bucket_counts(
    const std::uint64_t* buckets, std::uint64_t total, double q) {
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based (nearest rank).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return bucket_upper_edge(i);
    }
  }
  // Unreachable when `total` really is the bucket sum; returning the top
  // edge keeps a lying caller monotone instead of undefined.
  return bucket_upper_edge(kNumBuckets - 1);
}

std::uint64_t Histogram::value_at_quantile(double q) const {
  if (total_ == 0) return 0;
  // The shared bucket walk, then the observed-max clamp: a bucket's upper
  // edge can exceed everything recorded into it (quantization), and with a
  // single sample the clamp is what makes every quantile exactly that
  // sample (see the header's edge-case contract).
  return std::min<std::uint64_t>(
      quantile_from_bucket_counts(buckets_.data(), total_, q), max_);
}

void Histogram::merge(const Histogram& other) {
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = ~0ULL;
}

std::vector<Histogram::CdfPoint> Histogram::cdf() const {
  std::vector<CdfPoint> points;
  if (total_ == 0) return points;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    points.push_back({std::min<std::uint64_t>(bucket_upper_edge(i), max_),
                      static_cast<double>(seen) / static_cast<double>(total_)});
  }
  return points;
}

}  // namespace asl
