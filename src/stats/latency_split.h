// Latency recording split by core type — every figure reports "Big P99",
// "Little P99" and "Overall P99" separately.
#pragma once

#include <cstdint>

#include "platform/topology.h"
#include "stats/histogram.h"

namespace asl {

class LatencySplit {
 public:
  void record(CoreType type, std::uint64_t latency_ns) {
    overall_.record(latency_ns);
    (type == CoreType::kBig ? big_ : little_).record(latency_ns);
  }

  void merge(const LatencySplit& other) {
    overall_.merge(other.overall_);
    big_.merge(other.big_);
    little_.merge(other.little_);
  }

  const Histogram& overall() const { return overall_; }
  const Histogram& big() const { return big_; }
  const Histogram& little() const { return little_; }

  std::uint64_t p99_overall() const { return overall_.p99(); }
  std::uint64_t p99_big() const { return big_.p99(); }
  std::uint64_t p99_little() const { return little_.p99(); }

  void reset() {
    overall_.reset();
    big_.reset();
    little_.reset();
  }

 private:
  Histogram overall_;
  Histogram big_;
  Histogram little_;
};

}  // namespace asl
