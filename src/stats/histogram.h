// Log-bucketed latency histogram (HDR-histogram style).
//
// Latency recording must be cheap (one increment on the epoch path) and must
// resolve tail percentiles across nine decades (tens of ns lock handoffs up
// to the paper's multi-ms SQLite epochs). We bucket values by octave with
// kSubBuckets linear sub-buckets per octave: relative quantization error is
// bounded by 1/kSubBuckets (~1.6% with 64 sub-buckets), ample for P99
// comparisons.
#pragma once

#include <cstdint>
#include <vector>

namespace asl {

class Histogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 6;  // 64 sub-buckets/octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::uint32_t kOctaves = 40;  // covers up to ~2^40 ns
  static constexpr std::uint32_t kNumBuckets = kOctaves * kSubBuckets;

  Histogram();

  // Record one observation (e.g. latency in ns). Saturates at the top bucket.
  void record(std::uint64_t value);

  // Record `count` observations of the same value.
  void record_n(std::uint64_t value, std::uint64_t count);

  // Value at quantile q in [0,1] (q=0.99 => P99), nearest-rank over the
  // buckets. Returns a representative value of the containing bucket (its
  // upper edge), clamped to the true observed max so quantization never
  // reports a value larger than anything recorded. Edge cases are defined,
  // not bucket-boundary garbage (asserted in stats_test):
  //   * empty histogram  -> 0 for every q (same convention as
  //     ExactSample::value_at_quantile and LatencySplit);
  //   * single sample v  -> exactly v for every q (the containing bucket's
  //     upper edge is >= v, and the max clamp pulls it back to v).
  std::uint64_t value_at_quantile(double q) const;

  // The same nearest-rank walk over a raw bucket-count array (length
  // kNumBuckets, counts summing to `total`), without an observed-max clamp:
  // returns the containing bucket's upper edge, or 0 when total == 0. This
  // is the shared kernel value_at_quantile builds on, exposed so the
  // telemetry sampler (obs/) can take windowed percentiles over per-tick
  // bucket *deltas* — a delta window has no max of its own to clamp to,
  // and the result stays a deterministic integer either way.
  static std::uint64_t quantile_from_bucket_counts(const std::uint64_t* buckets,
                                                   std::uint64_t total,
                                                   double q);

  std::uint64_t p50() const { return value_at_quantile(0.50); }
  std::uint64_t p99() const { return value_at_quantile(0.99); }
  std::uint64_t p999() const { return value_at_quantile(0.999); }

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return total_ == 0 ? 0 : min_; }
  double mean() const {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / total_;
  }

  // Merge another histogram into this one (per-thread / per-worker
  // recorders are folded into one combined histogram at the end of an
  // experiment). Exact: the merged histogram's buckets, count, sum, min and
  // max are identical to recording both observation streams into a single
  // histogram (asserted against that oracle in stats_test).
  void merge(const Histogram& other);

  void reset();

  // (value, cumulative_probability) pairs for CDF plots (Figures 9c/9f/9i,
  // 10c/10f). Only non-empty buckets are emitted.
  struct CdfPoint {
    std::uint64_t value;
    double cumulative;
  };
  std::vector<CdfPoint> cdf() const;

  // Bucket index for a value; exposed for tests.
  static std::uint32_t bucket_index(std::uint64_t value);
  // Upper edge of bucket i (the value reported for observations in it).
  static std::uint64_t bucket_upper_edge(std::uint32_t index);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ULL;
};

}  // namespace asl
