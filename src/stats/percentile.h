// Exact percentile over a stored sample. Used as the reference oracle in
// histogram tests and for small experiment runs where storing every sample
// is affordable (e.g. the time-series benchmark, Figure 8d).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace asl {

class ExactSample {
 public:
  void record(std::uint64_t v) { values_.push_back(v); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Exact value at quantile q in [0,1] using the nearest-rank definition
  // (matches Histogram::value_at_quantile's rank convention). The edge
  // cases follow the same contract as the histogram (stats_test pins both
  // against each other): an empty sample returns 0 for every q, and a
  // single-sample set returns exactly that sample for every q.
  std::uint64_t value_at_quantile(double q) {
    if (values_.empty()) return 0;
    q = std::clamp(q, 0.0, 1.0);
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(values_.size()) + 0.5);
    rank = std::max<std::size_t>(1, std::min(rank, values_.size()));
    std::nth_element(values_.begin(), values_.begin() + (rank - 1),
                     values_.end());
    return values_[rank - 1];
  }

  std::uint64_t p99() { return value_at_quantile(0.99); }

  std::uint64_t max() const {
    return values_.empty() ? 0 : *std::max_element(values_.begin(),
                                                   values_.end());
  }

  void clear() { values_.clear(); }
  const std::vector<std::uint64_t>& values() const { return values_; }

 private:
  std::vector<std::uint64_t> values_;
};

}  // namespace asl
