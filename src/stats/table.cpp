#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace asl {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_ns_as_us(std::uint64_t ns, int precision) {
  return fmt(static_cast<double>(ns) / 1000.0, precision);
}

std::string Table::fmt_ops(double ops_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", ops_per_sec);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace asl
