// Streaming scalar statistics (count/mean/min/max) with O(1) state.
#pragma once

#include <algorithm>
#include <cstdint>

namespace asl {

class StreamingStats {
 public:
  void record(double v) {
    ++count_;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  void merge(const StreamingStats& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() { *this = StreamingStats{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace asl
