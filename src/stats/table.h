// Fixed-width table / CSV printer used by every benchmark binary so figure
// output is uniform and grep-able.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace asl {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append a row; cells are stringified by the caller or via the helpers.
  void add_row(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_ns_as_us(std::uint64_t ns, int precision = 2);
  static std::string fmt_ops(double ops_per_sec);  // e.g. 1.23e6

  // Render as an aligned text table.
  void print(std::ostream& os) const;
  // Render as CSV (machine-readable companion output).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asl
