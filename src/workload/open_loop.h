// Open-loop load generator for the KV service.
//
// A LoadSpec is one traffic stream: an arrival process, a key distribution,
// an op mix and a request class. The schedule a spec offers is a pure
// function of (spec, horizon) — generate_trace() — so the same spec can be
// (a) digested into a deterministic offered-load table (the byte-identity
// anchor of the determinism tests), and (b) replayed against the wall clock
// by run_open_loop(), which submits each request at its scheduled instant
// whether or not the service keeps up. Requests the service rejects
// (bounded-queue backpressure) are counted, never retried: offered load is
// the generator's to decide, accepted load is the server's.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/time.h"
#include "server/kv_service.h"
#include "stats/table.h"
#include "workload/arrival.h"
#include "workload/keydist.h"

namespace asl::server {

struct LoadSpec {
  workload::ArrivalProcess arrivals = workload::ArrivalProcess::poisson(1000);
  workload::KeyDist keys = workload::KeyDist::uniform(1 << 15);
  double put_fraction = 0.5;
  std::uint32_t class_index = 0;
  std::uint64_t seed = 1;
};

struct TracePoint {
  Nanos at = 0;  // offset from the run start
  std::uint64_t key = 0;
  bool is_put = false;
};

// The offered schedule of `spec` over [0, horizon): deterministic in
// (spec, horizon), independent of wall-clock time.
std::vector<TracePoint> generate_trace(const LoadSpec& spec, Nanos horizon);

// Combined nominal rate of a load (sum of per-spec base/peak rates) — the
// denominator the capacity probe uses to turn an absolute target rate into
// a per-spec scale factor.
inline double nominal_rate_per_sec(const std::vector<LoadSpec>& specs) {
  double rate = 0.0;
  for (const LoadSpec& spec : specs) {
    rate += spec.arrivals.base_rate_per_sec();
  }
  return rate;
}

// Scale every stream's rate by `factor`, preserving the traffic mix (the
// get:put ratio, burst shapes and key distributions are untouched).
inline void scale_load_rates(std::vector<LoadSpec>& specs, double factor) {
  for (LoadSpec& spec : specs) {
    spec.arrivals = spec.arrivals.with_rate_scale(factor);
  }
}

// The read/write mix knob: scale only the streams aimed at `class_index`
// (the scenario convention routes gets and puts through separate classes),
// leaving every other stream's rate, all burst shapes and all key
// distributions untouched. Composes with scale_load_rates — scale the mix
// first, then the whole offered load.
inline void scale_class_rates(std::vector<LoadSpec>& specs,
                              std::uint32_t class_index, double factor) {
  for (LoadSpec& spec : specs) {
    if (spec.class_index == class_index) {
      spec.arrivals = spec.arrivals.with_rate_scale(factor);
    }
  }
}

// Per-interval digest of every spec's offered load (arrival counts, op mix,
// key checksum per horizon/buckets slice). All-integer cells, so two
// generations with the same specs are byte-identical CSV.
Table offered_trace_table(const std::vector<LoadSpec>& specs, Nanos horizon,
                          std::uint32_t buckets = 8);

struct OpenLoopResult {
  std::uint64_t offered = 0;   // scheduled arrivals within the horizon
  std::uint64_t accepted = 0;  // admitted by the service
  std::uint64_t rejected = 0;  // bounced by queue backpressure
  Nanos elapsed = 0;           // wall clock, release -> last submission

  double offered_rate_per_sec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(offered) *
                              static_cast<double>(kNanosPerSec) /
                              static_cast<double>(elapsed);
  }
};

// Replays every spec against `service` (one generator thread per spec,
// submitting at the scheduled instants; a generator that falls behind
// submits immediately — lag becomes burst, as in a real open loop).
// The service must be started; the caller stops it afterwards. Specs whose
// class_index the service does not know offer nothing (see the .cpp note).
OpenLoopResult run_open_loop(KvService& service,
                             const std::vector<LoadSpec>& specs,
                             Nanos horizon);

}  // namespace asl::server
