// Key distributions for the KV workloads.
//
// Uniform and Zipfian draws over a dense key space. The Zipfian generator is
// the Gray et al. rejection-free construction (the one YCSB popularized):
// O(keyspace) zeta precomputation at build time, O(1) per draw. The popular
// ranks are scrambled through splitmix64 so the hottest keys do not cluster
// in one shard of a striped store.
#pragma once

#include <cmath>
#include <cstdint>

#include "platform/rng.h"

namespace asl::workload {

class KeyDist {
 public:
  static KeyDist uniform(std::uint64_t keyspace) {
    KeyDist d;
    d.keyspace_ = keyspace < 1 ? 1 : keyspace;
    d.zipfian_ = false;
    return d;
  }

  // theta in (0, 1); 0.99 is the YCSB default ("zipfian" skew where the
  // hottest ~10% of keys absorb most of the traffic).
  static KeyDist zipfian(std::uint64_t keyspace, double theta = 0.99) {
    KeyDist d;
    d.keyspace_ = keyspace < 2 ? 2 : keyspace;
    d.zipfian_ = true;
    d.theta_ = theta;
    const double n = static_cast<double>(d.keyspace_);
    d.zetan_ = zeta(d.keyspace_, theta);
    d.alpha_ = 1.0 / (1.0 - theta);
    d.eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
             (1.0 - zeta(2, theta) / d.zetan_);
    return d;
  }

  std::uint64_t next(Rng& rng) const {
    if (!zipfian_) return rng.below(keyspace_);
    const double u = rng.uniform();
    const double uz = u * zetan_;
    std::uint64_t rank;
    if (uz < 1.0) {
      rank = 0;
    } else if (uz < 1.0 + std::pow(0.5, theta_)) {
      rank = 1;
    } else {
      rank = static_cast<std::uint64_t>(
          static_cast<double>(keyspace_) *
          std::pow(eta_ * u - eta_ + 1.0, alpha_));
      if (rank >= keyspace_) rank = keyspace_ - 1;
    }
    // Scatter ranks over the key space so popularity is not correlated with
    // key order (and therefore not with shard striping).
    std::uint64_t h = rank;
    return splitmix64(h) % keyspace_;
  }

  std::uint64_t keyspace() const { return keyspace_; }
  bool is_zipfian() const { return zipfian_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t keyspace_ = 1;
  bool zipfian_ = false;
  double theta_ = 0.99;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

}  // namespace asl::workload
