#include "workload/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace asl::server {
namespace {

// Name tokens are single whitespace-free words on disk; class names in this
// repo already are ("kv-get", "audit"), the substitution just keeps a
// hypothetical exotic name from corrupting the line structure.
std::string sanitize_token(std::string s) {
  if (s.empty()) return "_";
  for (char& c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return s;
}

// Per-class / per-shard totals recomputed from the record stream — used by
// finish() to build the accounting and by parse_trace() to cross-check the
// file's own totals against its records.
void derive_totals(const std::vector<TraceRecord>& records,
                   std::vector<TraceClassTotals>& classes,
                   std::vector<TraceShardTotals>& shards) {
  for (const TraceRecord& r : records) {
    TraceClassTotals& c = classes[r.class_index];
    TraceShardTotals& s = shards[r.shard];
    switch (r.decision) {
      case TraceDecision::kAdmit:
        c.accepted += 1;
        s.accepted += 1;
        break;
      case TraceDecision::kShed:
        c.rejected += 1;
        c.shed += 1;
        s.rejected += 1;
        s.shed += 1;
        break;
      case TraceDecision::kReject:
        c.rejected += 1;
        s.rejected += 1;
        break;
    }
  }
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = "trace: " + why;
  return false;
}

}  // namespace

bool accounting_counts_match(const TraceAccounting& want,
                             const TraceAccounting& got, std::string* why) {
  auto mismatch = [why](const std::string& what, std::uint64_t w,
                        std::uint64_t g) {
    if (why != nullptr) {
      *why = what + ": recorded " + std::to_string(w) + ", replayed " +
             std::to_string(g);
    }
    return false;
  };
  if (want.classes.size() != got.classes.size()) {
    return mismatch("class count", want.classes.size(), got.classes.size());
  }
  if (want.shards.size() != got.shards.size()) {
    return mismatch("shard count", want.shards.size(), got.shards.size());
  }
  for (std::size_t i = 0; i < want.classes.size(); ++i) {
    const TraceClassTotals& w = want.classes[i];
    const TraceClassTotals& g = got.classes[i];
    const std::string tag = "class " + w.name;
    if (w.accepted != g.accepted) {
      return mismatch(tag + " accepted", w.accepted, g.accepted);
    }
    if (w.rejected != g.rejected) {
      return mismatch(tag + " rejected", w.rejected, g.rejected);
    }
    if (w.shed != g.shed) return mismatch(tag + " shed", w.shed, g.shed);
  }
  for (std::size_t i = 0; i < want.shards.size(); ++i) {
    const TraceShardTotals& w = want.shards[i];
    const TraceShardTotals& g = got.shards[i];
    const std::string tag = "shard " + std::to_string(i);
    if (w.accepted != g.accepted) {
      return mismatch(tag + " accepted", w.accepted, g.accepted);
    }
    if (w.rejected != g.rejected) {
      return mismatch(tag + " rejected", w.rejected, g.rejected);
    }
    if (w.shed != g.shed) return mismatch(tag + " shed", w.shed, g.shed);
  }
  return true;
}

void TraceRecorder::set_origin(Nanos origin_ns) {
  lock_.lock();
  origin_ = origin_ns;
  lock_.unlock();
}

void TraceRecorder::on_arrival(Nanos at, std::uint32_t class_index,
                               bool is_put, std::uint64_t key,
                               TraceDecision decision, std::uint32_t shard) {
  TraceRecord r;
  r.class_index = class_index;
  r.is_put = is_put;
  r.key = key;
  r.value_size = is_put ? kv_value_size(key) : 0;
  r.decision = decision;
  r.shard = shard;
  lock_.lock();
  r.at = at > origin_ ? at - origin_ : 0;
  records_.push_back(r);
  lock_.unlock();
}

void TraceRecorder::on_batch(std::uint32_t shard, std::uint32_t size) {
  lock_.lock();
  batches_[{shard, size}] += 1;
  lock_.unlock();
}

std::uint64_t TraceRecorder::recorded() const {
  lock_.lock();
  const std::uint64_t n = records_.size();
  lock_.unlock();
  return n;
}

RecordedTrace TraceRecorder::finish(TraceMeta meta,
                                    const LockRouteStats& routes) {
  RecordedTrace trace;
  trace.meta = std::move(meta);
  lock_.lock();
  trace.records = std::move(records_);
  records_.clear();
  for (const auto& [key, count] : batches_) {
    trace.accounting.batches.push_back(
        TraceBatchBucket{key.first, key.second, count});
  }
  batches_.clear();
  origin_ = 0;
  lock_.unlock();
  trace.accounting.routes = routes;
  trace.accounting.classes.resize(trace.meta.class_names.size());
  for (std::size_t i = 0; i < trace.accounting.classes.size(); ++i) {
    trace.accounting.classes[i].name = trace.meta.class_names[i];
  }
  trace.accounting.shards.resize(trace.meta.num_shards);
  derive_totals(trace.records, trace.accounting.classes,
                trace.accounting.shards);
  return trace;
}

void write_trace(const RecordedTrace& trace, std::ostream& out) {
  out << "asltrace v" << trace.version << "\n";
  out << "scenario " << sanitize_token(trace.meta.scenario) << "\n";
  out << "engine " << sanitize_token(trace.meta.engine) << "\n";
  out << "horizon " << trace.meta.horizon << "\n";
  out << "shards " << trace.meta.num_shards << "\n";
  out << "twin_seed " << trace.meta.twin_seed << "\n";
  out << "real " << (trace.meta.real_path ? 1 : 0) << "\n";
  for (const TraceMeta::SpecSeed& s : trace.meta.seeds) {
    out << "seed " << s.class_index << " " << s.seed << "\n";
  }
  for (const TraceClassTotals& c : trace.accounting.classes) {
    out << "class " << sanitize_token(c.name) << " " << c.accepted << " "
        << c.rejected << " " << c.shed << "\n";
  }
  for (const TraceShardTotals& s : trace.accounting.shards) {
    out << "shard " << s.accepted << " " << s.rejected << " " << s.shed
        << "\n";
  }
  const LockRouteStats& r = trace.accounting.routes;
  out << "routes " << r.get_route_acquires << " " << r.put_route_acquires
      << " " << r.cs_gets << " " << r.lockfree_gets << "\n";
  for (const TraceBatchBucket& b : trace.accounting.batches) {
    out << "batch " << b.shard << " " << b.size << " " << b.count << "\n";
  }
  out << "columns at,class,op,key,vsize,decision,shard\n";
  out << "records " << trace.records.size() << "\n";
  for (const TraceRecord& rec : trace.records) {
    out << rec.at << "," << rec.class_index << "," << (rec.is_put ? 1 : 0)
        << "," << rec.key << "," << rec.value_size << ","
        << static_cast<unsigned>(rec.decision) << "," << rec.shard << "\n";
  }
  out << "end\n";
}

std::string trace_to_string(const RecordedTrace& trace) {
  std::ostringstream out;
  write_trace(trace, out);
  return out.str();
}

bool parse_trace(std::istream& in, RecordedTrace* out, std::string* error) {
  RecordedTrace trace;
  std::string line;

  if (!std::getline(in, line)) return fail(error, "empty input");
  {
    unsigned version = 0;
    if (std::sscanf(line.c_str(), "asltrace v%u", &version) != 1) {
      return fail(error, "missing 'asltrace v<N>' magic on line 1");
    }
    if (version != RecordedTrace::kVersion) {
      return fail(error, "unsupported trace version v" +
                             std::to_string(version) + " (this reader is v" +
                             std::to_string(RecordedTrace::kVersion) + ")");
    }
    trace.version = version;
  }

  // Header section: named meta / seed / accounting lines in any order,
  // terminated by the `columns` schema line.
  bool saw_columns = false;
  std::uint64_t record_count = 0;
  bool saw_records = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) return fail(error, "blank line inside header");
    if (key == "scenario") {
      if (!(ls >> trace.meta.scenario)) return fail(error, "bad scenario line");
    } else if (key == "engine") {
      if (!(ls >> trace.meta.engine)) return fail(error, "bad engine line");
    } else if (key == "horizon") {
      if (!(ls >> trace.meta.horizon)) return fail(error, "bad horizon line");
    } else if (key == "shards") {
      if (!(ls >> trace.meta.num_shards) || trace.meta.num_shards == 0) {
        return fail(error, "bad shards line");
      }
    } else if (key == "twin_seed") {
      if (!(ls >> trace.meta.twin_seed)) {
        return fail(error, "bad twin_seed line");
      }
    } else if (key == "real") {
      int v = -1;
      if (!(ls >> v) || (v != 0 && v != 1)) {
        return fail(error, "bad real line");
      }
      trace.meta.real_path = v == 1;
    } else if (key == "seed") {
      TraceMeta::SpecSeed s;
      if (!(ls >> s.class_index >> s.seed)) {
        return fail(error, "bad seed line");
      }
      trace.meta.seeds.push_back(s);
    } else if (key == "class") {
      TraceClassTotals c;
      if (!(ls >> c.name >> c.accepted >> c.rejected >> c.shed)) {
        return fail(error, "bad class line");
      }
      trace.meta.class_names.push_back(c.name);
      trace.accounting.classes.push_back(std::move(c));
    } else if (key == "shard") {
      TraceShardTotals s;
      if (!(ls >> s.accepted >> s.rejected >> s.shed)) {
        return fail(error, "bad shard line");
      }
      trace.accounting.shards.push_back(s);
    } else if (key == "routes") {
      LockRouteStats& r = trace.accounting.routes;
      if (!(ls >> r.get_route_acquires >> r.put_route_acquires >> r.cs_gets >>
            r.lockfree_gets)) {
        return fail(error, "bad routes line");
      }
    } else if (key == "batch") {
      TraceBatchBucket b;
      if (!(ls >> b.shard >> b.size >> b.count)) {
        return fail(error, "bad batch line");
      }
      trace.accounting.batches.push_back(b);
    } else if (key == "columns") {
      std::string schema;
      ls >> schema;
      if (schema != "at,class,op,key,vsize,decision,shard") {
        return fail(error, "unexpected record schema '" + schema + "'");
      }
      saw_columns = true;
      break;
    } else {
      return fail(error, "unknown header line '" + key + "'");
    }
  }
  if (!saw_columns) return fail(error, "truncated: no columns line");

  if (!std::getline(in, line)) return fail(error, "truncated: no records line");
  {
    unsigned long long n = 0;
    if (std::sscanf(line.c_str(), "records %llu", &n) != 1) {
      return fail(error, "bad records line '" + line + "'");
    }
    record_count = n;
    saw_records = true;
  }
  (void)saw_records;

  const std::size_t num_classes = trace.accounting.classes.size();
  if (num_classes == 0) return fail(error, "no class lines");
  if (trace.accounting.shards.size() != trace.meta.num_shards) {
    return fail(error, "shard line count does not match shards header");
  }
  trace.records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    if (!std::getline(in, line)) {
      return fail(error, "truncated: " + std::to_string(i) + " of " +
                             std::to_string(record_count) + " records");
    }
    unsigned long long at = 0, cls = 0, op = 0, key = 0, vsize = 0, dec = 0,
                       shd = 0;
    if (std::sscanf(line.c_str(), "%llu,%llu,%llu,%llu,%llu,%llu,%llu", &at,
                    &cls, &op, &key, &vsize, &dec, &shd) != 7) {
      return fail(error, "bad record line '" + line + "'");
    }
    if (cls >= num_classes) {
      return fail(error, "record class " + std::to_string(cls) +
                             " out of range");
    }
    if (op > 1) return fail(error, "record op out of range");
    if (dec > 2) return fail(error, "record decision out of range");
    if (shd >= trace.meta.num_shards) {
      return fail(error, "record shard " + std::to_string(shd) +
                             " out of range");
    }
    TraceRecord rec;
    rec.at = static_cast<Nanos>(at);
    rec.class_index = static_cast<std::uint32_t>(cls);
    rec.is_put = op == 1;
    rec.key = key;
    rec.value_size = static_cast<std::uint32_t>(vsize);
    rec.decision = static_cast<TraceDecision>(dec);
    rec.shard = static_cast<std::uint32_t>(shd);
    // Twin recordings are appended in virtual processing order, which is
    // time-monotone by construction; an out-of-order stamp means the file
    // was edited or mis-merged. Real-path recorder order is wall-clock
    // append order and may legitimately jitter, so it is exempt.
    if (!trace.meta.real_path && !trace.records.empty() &&
        rec.at < trace.records.back().at) {
      return fail(error, "record " + std::to_string(i) +
                             " out of time order in a twin trace");
    }
    trace.records.push_back(rec);
  }
  if (!std::getline(in, line) || line != "end") {
    return fail(error, "truncated: missing end trailer");
  }

  // Cross-check the file's own totals against its record stream: a trace
  // whose summary disagrees with its records is corrupt, not replayable.
  std::vector<TraceClassTotals> classes(num_classes);
  std::vector<TraceShardTotals> shards(trace.meta.num_shards);
  for (std::size_t i = 0; i < num_classes; ++i) {
    classes[i].name = trace.accounting.classes[i].name;
  }
  derive_totals(trace.records, classes, shards);
  TraceAccounting derived;
  derived.classes = std::move(classes);
  derived.shards = std::move(shards);
  std::string why;
  if (!accounting_counts_match(trace.accounting, derived, &why)) {
    return fail(error, "totals do not match record stream (" + why + ")");
  }

  *out = std::move(trace);
  return true;
}

bool save_trace(const RecordedTrace& trace, const std::string& path,
                std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return fail(error, "cannot open '" + path + "' for writing");
  write_trace(trace, out);
  out.flush();
  if (!out) return fail(error, "write to '" + path + "' failed");
  return true;
}

bool load_trace(const std::string& path, RecordedTrace* out,
                std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "cannot open '" + path + "'");
  return parse_trace(in, out, error);
}

bool TraceSource::open(const std::string& path, TraceSource* out,
                       std::string* error) {
  RecordedTrace trace;
  if (!load_trace(path, &trace, error)) return false;
  out->trace_ = std::move(trace);
  return true;
}

}  // namespace asl::server
