// Micro-benchmark critical/non-critical section bodies.
//
// The paper's micro-benchmarks "read-modify-write a specific number of shared
// cache lines" inside the critical section and execute "a fixed number of NOP
// instructions" between acquisitions. On the symmetric reproduction host the
// big/little speed gap is emulated by scaling the iteration counts with the
// worker's declared speed factor (a little core executing the same critical
// section ~3.5x slower is indistinguishable, from the lock's point of view,
// from a same-speed core executing 3.5x the work).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/cacheline.h"
#include "platform/time.h"

namespace asl {

// A shared array of cache lines that critical sections read-modify-write.
class SharedRegion {
 public:
  explicit SharedRegion(std::size_t num_lines = 64) : lines_(num_lines) {}

  // Read-modify-write `count` lines starting at `first` (wrapping), `reps`
  // times over. This is the paper's critical-section body.
  void rmw(std::size_t first, std::size_t count, std::uint64_t reps = 1) {
    const std::size_t n = lines_.size();
    for (std::uint64_t r = 0; r < reps; ++r) {
      for (std::size_t i = 0; i < count; ++i) {
        SharedLine& line = lines_[(first + i) % n];
        line.word = line.word + 1;
      }
    }
  }

  std::size_t num_lines() const { return lines_.size(); }
  std::uint64_t line_value(std::size_t i) const { return lines_[i].word; }

 private:
  std::vector<SharedLine> lines_;
};

// Worker speed emulation: scales work amounts for the core type the worker
// plays. Big cores use {1.0, 1.0}. The defaults for little cores follow the
// paper's M1 measurements: ~3.75x slower on memory-heavy work (Sysbench),
// ~1.8x slower on plain instruction streams (NOP).
struct SpeedFactors {
  double cs_scale = 1.0;   // critical-section (memory-heavy) slowdown
  double ncs_scale = 1.0;  // non-critical (compute) slowdown

  static SpeedFactors big() { return {1.0, 1.0}; }
  static SpeedFactors little(double cs = 3.5, double ncs = 1.8) {
    return {cs, ncs};
  }

  std::uint64_t scale_cs(std::uint64_t reps) const {
    return static_cast<std::uint64_t>(static_cast<double>(reps) * cs_scale);
  }
  std::uint64_t scale_ncs(std::uint64_t nops) const {
    return static_cast<std::uint64_t>(static_cast<double>(nops) * ncs_scale);
  }
};

}  // namespace asl
