#include "workload/open_loop.h"

#include <atomic>
#include <string>
#include <thread>

namespace asl::server {

std::vector<TracePoint> generate_trace(const LoadSpec& spec, Nanos horizon) {
  // Copies of the process and a fresh Rng make this a pure function of
  // (spec, horizon); the draw order (gap, key, op) is part of the contract.
  workload::ArrivalProcess arrivals = spec.arrivals;
  Rng rng(spec.seed);
  std::vector<TracePoint> trace;
  Nanos t = 0;
  for (;;) {
    t += arrivals.next_gap(rng);
    if (t >= horizon) break;
    TracePoint point;
    point.at = t;
    point.key = spec.keys.next(rng);
    point.is_put = rng.chance(spec.put_fraction);
    trace.push_back(point);
  }
  return trace;
}

Table offered_trace_table(const std::vector<LoadSpec>& specs, Nanos horizon,
                          std::uint32_t buckets) {
  if (buckets < 1) buckets = 1;
  Table table({"class", "bucket", "arrivals", "puts", "key_xor"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    std::vector<std::uint64_t> arrivals(buckets, 0);
    std::vector<std::uint64_t> puts(buckets, 0);
    std::vector<std::uint64_t> key_xor(buckets, 0);
    for (const TracePoint& p : generate_trace(specs[i], horizon)) {
      const std::uint32_t b = static_cast<std::uint32_t>(
          static_cast<unsigned __int128>(p.at) * buckets / horizon);
      arrivals[b] += 1;
      puts[b] += p.is_put ? 1 : 0;
      key_xor[b] ^= p.key;
    }
    for (std::uint32_t b = 0; b < buckets; ++b) {
      table.add_row({std::to_string(specs[i].class_index), std::to_string(b),
                     std::to_string(arrivals[b]), std::to_string(puts[b]),
                     std::to_string(key_xor[b])});
    }
  }
  return table;
}

OpenLoopResult run_open_loop(KvService& service,
                             const std::vector<LoadSpec>& specs,
                             Nanos horizon) {
  // Pre-generate every schedule so the replay loop does no RNG work and the
  // offered load matches offered_trace_table() arrival-for-arrival. A spec
  // aimed at a class the service does not have is a configuration bug;
  // offering it anyway would desync the generator's rejected count from the
  // service's per-class accounting, so such a spec offers nothing.
  std::vector<std::vector<TracePoint>> traces;
  traces.reserve(specs.size());
  for (const LoadSpec& spec : specs) {
    traces.push_back(spec.class_index < service.num_classes()
                         ? generate_trace(spec, horizon)
                         : std::vector<TracePoint>{});
  }

  std::atomic<std::uint64_t> accepted{0}, rejected{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint32_t> ready{0};
  std::vector<std::thread> generators;
  generators.reserve(specs.size());
  const std::uint32_t n = static_cast<std::uint32_t>(specs.size());

  Nanos start = 0;  // written before go is released, read after
  for (std::uint32_t i = 0; i < n; ++i) {
    generators.emplace_back([&, i] {
      const LoadSpec& spec = specs[i];
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (const TracePoint& p : traces[i]) {
        const Nanos target = start + p.at;
        const Nanos now = now_ns();
        if (now < target) {
          // Coarse sleep, then spin the last stretch: submission instants
          // stay close to the schedule without burning a core per stream.
          if (target - now > 60 * kNanosPerMicro) {
            sleep_ns(target - now - 50 * kNanosPerMicro);
          }
          spin_until(target);
        }
        const bool ok = service.try_submit(
            p.is_put ? OpType::kPut : OpType::kGet, p.key, spec.class_index);
        (ok ? accepted : rejected).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  while (ready.load(std::memory_order_acquire) != n) {
  }
  start = now_ns();
  go.store(true, std::memory_order_release);
  for (auto& t : generators) t.join();

  OpenLoopResult result;
  for (const auto& trace : traces) result.offered += trace.size();
  result.accepted = accepted.load(std::memory_order_relaxed);
  result.rejected = rejected.load(std::memory_order_relaxed);
  result.elapsed = now_ns() - start;
  return result;
}

}  // namespace asl::server
