// Trace record/replay — byte-deterministic capture of offered traffic plus
// the decisions taken on it (DESIGN.md §10).
//
// A recorded trace is the ground truth of one run: every arrival in the
// order the service processed it (virtual-time order on the twin, recorder
// order on the wall clock), each with its class, op, key, value size and
// the admission decision + shard route it received, plus the run's summary
// accounting (per-class and per-shard accepted/rejected/shed, lock-route
// counters, the batch-size histogram) and the seed provenance that
// generated the stream. Replaying the trace feeds the identical offered
// sequence back through either path:
//
//   * twin replay is byte-deterministic — SimKvService::replay() schedules
//     the records in recorded order, which reproduces the original engine
//     event sequence exactly (sim/engine.h executes by (time, insertion)
//     order, and the recorder appended in processing order), so the
//     measured and shard tables come back byte-identical;
//   * real-path replay is decision-checked — wall-clock latencies differ
//     run to run, but admission, shed and shard-route *accounting* must
//     match the recording (server/replay.h), which is what makes policy
//     A/Bs on the real service apples-to-apples.
//
// The file format is versioned, self-describing text (one record per line,
// all-integer fields; see write_trace) so traces diff cleanly, survive as
// CI artifacts and golden files, and reject mismatched readers loudly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "server/kv_service.h"

namespace asl::server {

// The three ways admission can go, in the order try_push_below reports
// them: admitted to a shard queue, deliberately shed at a class watermark,
// or hard-rejected by a full queue. Stable on-disk values.
enum class TraceDecision : std::uint8_t { kAdmit = 0, kShed = 1, kReject = 2 };

// One offered request, in processing order. `at` is the arrival instant
// relative to the run start (virtual ns on the twin, recorder-origin-
// relative wall ns on the real path); `value_size` is the byte length of
// the value a put carried (0 for gets); `shard` is where shard_for_key
// routed it — recorded even for bounced requests, since the bounce happened
// at that shard's queue.
struct TraceRecord {
  Nanos at = 0;
  std::uint32_t class_index = 0;
  bool is_put = false;
  std::uint64_t key = 0;
  std::uint32_t value_size = 0;
  TraceDecision decision = TraceDecision::kAdmit;
  std::uint32_t shard = 0;
};

// Byte length of the service's value representation of `key` ("v:<key>",
// ValueArena::format_value) — what a put's value_size records.
inline std::uint32_t kv_value_size(std::uint64_t key) {
  std::uint32_t digits = 1;
  while (key >= 10) {
    key /= 10;
    ++digits;
  }
  return digits + 2;  // "v:" prefix
}

// Summary accounting of the recorded run — the parity surface replay is
// checked against. Class and shard totals are derived from the records
// (they are redundant with the stream on purpose: a truncated or edited
// trace fails the cross-check), the route counters and batch histogram
// come from the service and describe *serving*, which the stream alone
// cannot reconstruct.
struct TraceClassTotals {
  std::string name;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  // all bounces (shed included)
  std::uint64_t shed = 0;
};

struct TraceShardTotals {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
};

// One bucket of the batch-size histogram: `count` lock acquisitions on
// `shard` carried a batch of exactly `size` requests. Summed over buckets,
// count == get_route_acquires + put_route_acquires (lock-free solo gets
// acquire nothing and are not batches).
struct TraceBatchBucket {
  std::uint32_t shard = 0;
  std::uint32_t size = 0;
  std::uint64_t count = 0;
};

struct TraceAccounting {
  std::vector<TraceClassTotals> classes;
  std::vector<TraceShardTotals> shards;
  LockRouteStats routes;
  std::vector<TraceBatchBucket> batches;  // sorted by (shard, size)
};

// Decision parity: same per-class and per-shard accepted/rejected/shed in
// `got` as in `want`. This is the real-path replay guarantee — it does NOT
// compare route counters or batch histograms, which depend on worker timing
// there (the twin replay asserts those separately, where they are exact).
// On mismatch returns false and, when `why` is non-null, names the first
// differing counter.
bool accounting_counts_match(const TraceAccounting& want,
                             const TraceAccounting& got, std::string* why);

// Provenance + shape of the recorded run — everything replay needs to
// rebuild a matching service, and everything a reader needs to interpret
// the stream without the recording code at hand.
struct TraceMeta {
  std::string scenario = "unnamed";  // registry name or free-form label
  std::string engine = "hash";
  Nanos horizon = 0;             // arrival window of the recorded run
  std::uint32_t num_shards = 1;  // shard field domain
  std::uint64_t twin_seed = 0;   // SimTwinConfig::seed (twin recordings)
  bool real_path = false;        // recorded on the wall clock?
  std::vector<std::string> class_names;  // class_index domain, config order
  // The LoadSpec seeds that generated the offered stream, in spec order —
  // the trace is self-sufficient for replay, but the seeds let a reader
  // regenerate the schedule from source and diff against the recording.
  struct SpecSeed {
    std::uint32_t class_index = 0;
    std::uint64_t seed = 0;
  };
  std::vector<SpecSeed> seeds;
};

// A whole recorded run. `version` guards the on-disk format: parse_trace
// rejects any file whose version differs from kVersion (no silent
// best-effort reads of future or ancient traces).
struct RecordedTrace {
  static constexpr std::uint32_t kVersion = 1;
  std::uint32_t version = kVersion;
  TraceMeta meta;
  std::vector<TraceRecord> records;  // processing order
  TraceAccounting accounting;

  std::uint64_t offered() const { return records.size(); }
};

// Collects one run's records. Attach to a service before traffic (KvService
// ::set_recorder / SimKvService::record_to); the hooks call on_arrival /
// on_batch, then the owner snapshots the result with finish(). Appends are
// spinlock-serialized: the twin's single-threaded engine never contends,
// real-path submitter threads serialize in wall-clock order (which is why
// real recordings are accounting-faithful, not byte-deterministic).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Wall-clock zero for real-path recording: arrival stamps are stored as
  // `at - origin`. Twin hooks pass virtual time, already run-relative, so
  // the default origin of 0 is correct there.
  void set_origin(Nanos origin_ns);

  void on_arrival(Nanos at, std::uint32_t class_index, bool is_put,
                  std::uint64_t key, TraceDecision decision,
                  std::uint32_t shard);
  void on_batch(std::uint32_t shard, std::uint32_t size);

  std::uint64_t recorded() const;

  // Snapshot into a RecordedTrace: meta from the caller, class/shard totals
  // derived from the records (meta.class_names and meta.num_shards size the
  // tally vectors), route counters from the service's own accounting.
  // Leaves the recorder empty, ready for another run.
  RecordedTrace finish(TraceMeta meta, const LockRouteStats& routes);

 private:
  mutable RawSpinLock lock_;
  Nanos origin_ = 0;
  std::vector<TraceRecord> records_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> batches_;
};

// Serialization. The format is line-oriented text, stable under kVersion:
// a version magic, named meta lines, seed/accounting lines, a `columns`
// schema line, exactly `records N` CSV record lines, and an `end` trailer
// (a missing trailer is how truncation is detected). All fields integer
// except the name tokens; writing the same trace twice is byte-identical.
void write_trace(const RecordedTrace& trace, std::ostream& out);
std::string trace_to_string(const RecordedTrace& trace);

// Strict parse: false + a one-line reason in `error` on version mismatch,
// truncation, malformed lines, out-of-domain fields, or totals that do not
// cross-check against the record stream. A parsed trace is safe to replay
// without further validation.
bool parse_trace(std::istream& in, RecordedTrace* out, std::string* error);

bool save_trace(const RecordedTrace& trace, const std::string& path,
                std::string* error);
bool load_trace(const std::string& path, RecordedTrace* out,
                std::string* error);

// A loaded, validated trace ready to feed either path. Thin by design:
// validation happened at open()/parse time, so replay code can assume a
// well-formed trace.
class TraceSource {
 public:
  TraceSource() = default;
  explicit TraceSource(RecordedTrace trace) : trace_(std::move(trace)) {}

  // Loads and validates `path`; false + reason on any parse failure.
  static bool open(const std::string& path, TraceSource* out,
                   std::string* error);

  const RecordedTrace& trace() const { return trace_; }
  std::uint64_t offered() const { return trace_.records.size(); }

 private:
  RecordedTrace trace_;
};

}  // namespace asl::server
