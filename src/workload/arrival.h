// Open-loop arrival processes.
//
// The figure benches are closed-loop: each thread issues the next epoch as
// soon as the previous one finishes, so offered load adapts to service
// capacity and queueing delay never appears. A production service is
// open-loop — requests arrive on their own schedule whether or not the
// server keeps up — which is exactly the regime where SLO attainment and
// the reorder-window dispatch interact (DESIGN.md §4). These processes
// generate arrival timestamps; the load generator (open_loop.h) replays
// them against the wall clock, and the determinism tests replay them
// against nothing at all.
//
// All draws come from platform/rng.h so a (process, seed) pair defines one
// arrival schedule, byte-for-byte reproducible across runs and hosts.
#pragma once

#include <cmath>
#include <cstdint>

#include "platform/rng.h"
#include "platform/time.h"

namespace asl::workload {

// A stateful interarrival generator. Value type: copy one to replay the
// same process from its initial state (generate_trace relies on this).
class ArrivalProcess {
 public:
  // Homogeneous Poisson arrivals: exponential interarrivals at `rate_per_sec`.
  static ArrivalProcess poisson(double rate_per_sec) {
    ArrivalProcess p;
    p.kind_ = Kind::kPoisson;
    p.base_rate_ = rate_per_sec;
    return p;
  }

  // Bursty arrivals: a two-state Markov-modulated Poisson process. The
  // process dwells exponentially in a calm state (rate = base) and a burst
  // state (rate = base * burst_multiplier), the classic MMPP(2) traffic
  // model for flash crowds.
  static ArrivalProcess bursty(double base_rate_per_sec,
                               double burst_multiplier = 8.0,
                               Nanos mean_calm_ns = 40 * kNanosPerMilli,
                               Nanos mean_burst_ns = 10 * kNanosPerMilli) {
    ArrivalProcess p;
    p.kind_ = Kind::kBursty;
    p.base_rate_ = base_rate_per_sec;
    p.burst_multiplier_ = burst_multiplier;
    p.mean_calm_ns_ = mean_calm_ns;
    p.mean_burst_ns_ = mean_burst_ns;
    return p;
  }

  // Diurnal ramp: a non-homogeneous Poisson process whose rate follows one
  // raised-cosine cycle per `period_ns`, from `trough_fraction * peak` up to
  // `peak_rate_per_sec` and back — a whole day compressed into one run.
  static ArrivalProcess diurnal(double peak_rate_per_sec,
                                double trough_fraction = 0.2,
                                Nanos period_ns = 200 * kNanosPerMilli) {
    ArrivalProcess p;
    p.kind_ = Kind::kDiurnal;
    p.base_rate_ = peak_rate_per_sec;
    p.trough_fraction_ = trough_fraction;
    p.period_ns_ = period_ns < 1 ? 1 : period_ns;  // phase is t % period
    return p;
  }

  // Copy with the *modulation* time constants (MMPP dwell times, diurnal
  // period) multiplied by `scale`, rates untouched. Scenario drivers apply
  // their --time-scale here so a shortened horizon still covers the same
  // number of burst cycles / the same fraction of a "day" — compressing
  // time without inflating offered load beyond what the real service sees.
  ArrivalProcess with_time_scale(double scale) const {
    ArrivalProcess p = *this;
    if (scale <= 0) return p;
    auto scaled = [scale](Nanos ns) {
      const double v = static_cast<double>(ns) * scale;
      return v < 1.0 ? Nanos{1} : static_cast<Nanos>(v);
    };
    p.mean_calm_ns_ = scaled(p.mean_calm_ns_);
    p.mean_burst_ns_ = scaled(p.mean_burst_ns_);
    if (p.period_ns_ > 0) p.period_ns_ = scaled(p.period_ns_);
    return p;
  }

  // Copy with the *rate* multiplied by `scale` (base rate for Poisson/MMPP,
  // peak rate for diurnal), modulation time constants untouched — the
  // offered-load knob the capacity probe bisects over, orthogonal to
  // with_time_scale(). Non-positive scales return an unmodified copy.
  ArrivalProcess with_rate_scale(double scale) const {
    ArrivalProcess p = *this;
    if (scale > 0) p.base_rate_ *= scale;
    return p;
  }

  // Gap to the next arrival, advancing the process state. Gaps are >= 1 ns
  // so schedules make progress even at absurd rates.
  Nanos next_gap(Rng& rng) {
    double rate = base_rate_;
    switch (kind_) {
      case Kind::kPoisson:
        break;
      case Kind::kBursty: {
        // Advance the modulating chain before drawing: if the dwell in the
        // current state has elapsed, flip and draw a fresh dwell.
        while (now_ns_ >= state_until_ns_) {
          in_burst_ = !in_burst_;
          const Nanos mean = in_burst_ ? mean_burst_ns_ : mean_calm_ns_;
          state_until_ns_ += exponential(rng, static_cast<double>(mean));
        }
        if (in_burst_) rate = base_rate_ * burst_multiplier_;
        break;
      }
      case Kind::kDiurnal: {
        const double phase =
            2.0 * kPi *
            static_cast<double>(now_ns_ % period_ns_) /
            static_cast<double>(period_ns_);
        const double level =
            trough_fraction_ +
            (1.0 - trough_fraction_) * 0.5 * (1.0 - std::cos(phase));
        rate = base_rate_ * level;
        break;
      }
    }
    // The mean stays in double all the way into the draw: truncating it to
    // whole nanoseconds first biases offered load high once gaps approach a
    // few ns (a 600M/s target has a 1.67 ns mean; floored to 1 ns it offers
    // ~1.67x the configured rate). Only the drawn gap is cast, and the >= 1
    // floor applies per draw — E[max(1, floor(Exp(mean)))] stays within 1%
    // of the mean even at mean 1.67 ns (the regression test pins this).
    const double mean_gap =
        rate > 0 ? static_cast<double>(kNanosPerSec) / rate
                 : static_cast<double>(kNanosPerSec);
    const Nanos gap = exponential(rng, mean_gap);
    now_ns_ += gap;
    return gap;
  }

  double base_rate_per_sec() const { return base_rate_; }

 private:
  enum class Kind : std::uint8_t { kPoisson, kBursty, kDiurnal };

  static constexpr double kPi = 3.14159265358979323846;

  // Exponential draw with the given (fractional-ns) mean, floored at 1 ns.
  static Nanos exponential(Rng& rng, double mean_ns) {
    // 1 - uniform() is in (0, 1], so the log argument never hits zero.
    const double u = 1.0 - rng.uniform();
    const double gap = -mean_ns * std::log(u);
    return gap < 1.0 ? Nanos{1} : static_cast<Nanos>(gap);
  }

  Kind kind_ = Kind::kPoisson;
  double base_rate_ = 1000.0;
  double burst_multiplier_ = 8.0;
  Nanos mean_calm_ns_ = 0;
  Nanos mean_burst_ns_ = 0;
  double trough_fraction_ = 0.2;
  Nanos period_ns_ = 0;

  // Process state (advanced by next_gap).
  Nanos now_ns_ = 0;
  Nanos state_until_ns_ = 0;
  bool in_burst_ = true;  // flipped to calm by the first next_gap
};

}  // namespace asl::workload
