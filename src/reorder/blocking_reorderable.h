// Blocking reorderable lock — the Bench-6 (Figure 8h/8i) variant for
// core-oversubscribed systems.
//
// Two changes versus ReorderableLock, both from Section 4.1 Bench-6:
//  * the substrate is a *blocking, unfair* lock (pthread_mutex): a FIFO
//    spin-then-park substrate would put every waiter's wakeup latency on the
//    critical path;
//  * standby competitors yield the CPU with nanosleep between status checks
//    ("the sleep time is set in a back-off manner") instead of busy-waiting,
//    because with 2 threads per core a spinning standby competitor steals
//    cycles from the lock holder.
#pragma once

#include <cstdint>

#include "platform/time.h"
#include "locks/lock_concepts.h"
#include "locks/pthread_lock.h"
#include "reorder/reorderable.h"

namespace asl {

template <Lockable Blocking = PthreadLock>
class BlockingReorderableLock {
 public:
  BlockingReorderableLock() = default;
  BlockingReorderableLock(const BlockingReorderableLock&) = delete;
  BlockingReorderableLock& operator=(const BlockingReorderableLock&) = delete;

  void lock_immediately() { lock_.lock(); }

  void lock_reorder(Nanos window) {
    if (window > kMaxReorderWindow) window = kMaxReorderWindow;
    if (lock_.is_free()) {
      lock_.lock();
      return;
    }
    const Nanos window_end = now_ns() + window;
    Nanos sleep = kMinSleep;
    while (now_ns() < window_end) {
      if (lock_.is_free()) break;
      // Back-off sleep, capped both absolutely and by the window remainder
      // so expiry is detected promptly.
      const Nanos now = now_ns();
      if (now >= window_end) break;
      Nanos this_sleep = sleep;
      if (now + this_sleep > window_end) this_sleep = window_end - now;
      sleep_ns(this_sleep);
      if (sleep < kMaxSleep) sleep <<= 1;
    }
    lock_.lock();
  }

  void lock() { lock_immediately(); }
  bool try_lock() { return lock_.try_lock(); }
  void unlock() { lock_.unlock(); }
  bool is_free() const { return lock_.is_free(); }

 private:
  static constexpr Nanos kMinSleep = 1 * kNanosPerMicro;
  static constexpr Nanos kMaxSleep = 1 * kNanosPerMilli;

  Blocking lock_;
};

}  // namespace asl
