// The reorderable lock — the paper's Algorithm 1.
//
// Exposes bounded reordering atop any FIFO lock:
//   lock_immediately()        — enqueue on the FIFO substrate at once
//                               (big-core path).
//   lock_reorder(window_ns)   — become a *standby competitor*: stay out of
//                               the queue for up to `window_ns`, letting
//                               later lock_immediately callers overtake;
//                               enqueue when the lock is observed free or the
//                               window expires (little-core path).
//
// Standby competitors poll the lock status with binary exponential backoff
// (Algorithm 1 lines 9-13) to keep contention on the lock word low. The
// window is clamped to kMaxReorderWindow so the lock is starvation-free: a
// standby competitor always enters the FIFO queue within a bounded time, and
// the substrate's FIFO order takes it from there.
//
// The window is a hint, not a strict order constraint: after it expires the
// competitor still goes through lock_fifo(), so an immediately-arriving big
// core can still slot in ahead during the enqueue race — the paper notes
// this "does not influence its correctness or efficiency".
#pragma once

#include <cstdint>
#include <utility>

#include "platform/spin.h"
#include "platform/time.h"
#include "locks/lock_concepts.h"

namespace asl {

// Upper bound on any reorder window: 100 ms, the paper's "maximum reorder
// window" used for LibASL-MAX and the no-SLO default.
inline constexpr Nanos kMaxReorderWindow = 100 * kNanosPerMilli;

template <Lockable Fifo>
class ReorderableLock {
 public:
  ReorderableLock() = default;
  template <typename... Args>
  explicit ReorderableLock(Args&&... args)
      : fifo_(std::forward<Args>(args)...) {}
  ReorderableLock(const ReorderableLock&) = delete;
  ReorderableLock& operator=(const ReorderableLock&) = delete;

  // Algorithm 1, lock_immediately: join the FIFO queue now.
  void lock_immediately() { fifo_.lock(); }

  // Algorithm 1, lock_reorder: stand by for up to `window` ns.
  void lock_reorder(Nanos window) {
    if (window > kMaxReorderWindow) window = kMaxReorderWindow;
    if (fifo_.is_free()) {
      fifo_.lock();
      return;
    }
    const Nanos window_end = now_ns() + window;
    // Binary exponential backoff over status checks: check at iteration 1,
    // 2, 4, 8, ... of the spin counter.
    std::uint64_t cnt = 0;
    std::uint64_t next_check = 1;
    SpinWait waiter;
    while (now_ns() < window_end) {
      if (++cnt == next_check) {
        if (fifo_.is_free()) break;
        next_check <<= 1;
      }
      waiter.pause();
    }
    fifo_.lock();
  }

  // std::mutex-compatible surface; plain lock() means "no reorder
  // preference", i.e. join the queue immediately.
  void lock() { lock_immediately(); }
  bool try_lock() { return fifo_.try_lock(); }

  void unlock() { fifo_.unlock(); }

  bool is_free() const { return fifo_.is_free(); }

  Fifo& substrate() { return fifo_; }

 private:
  Fifo fifo_;
};

}  // namespace asl
