#include "db/lsmkv.h"

#include <algorithm>
#include <map>

namespace asl::db {

LsmKv::LsmKv(Options options) : options_(options) {
  if (options_.memtable_limit == 0) options_.memtable_limit = 1;
  if (options_.max_runs < 2) options_.max_runs = 2;
}

namespace {
// Sort key: ascending key, then descending sequence so the newest entry for
// a key comes first and lower_bound lands on it.
bool entry_less(const LsmKv::Snapshot::Entry& a,
                const LsmKv::Snapshot::Entry& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.seq > b.seq;
}
}  // namespace

void LsmKv::put(std::uint64_t key, std::string_view value) {
  LockGuard<AslMutex<McsLock>> guard(meta_lock_);
  Entry e{key, next_seq_++, false, std::string(value)};
  memtable_.insert(
      std::lower_bound(memtable_.begin(), memtable_.end(), e, entry_less), e);
  if (memtable_.size() >= options_.memtable_limit) {
    rotate_memtable_locked();
    maybe_compact_locked();
  }
}

void LsmKv::erase(std::uint64_t key) {
  LockGuard<AslMutex<McsLock>> guard(meta_lock_);
  Entry e{key, next_seq_++, true, std::string()};
  memtable_.insert(
      std::lower_bound(memtable_.begin(), memtable_.end(), e, entry_less), e);
  if (memtable_.size() >= options_.memtable_limit) {
    rotate_memtable_locked();
    maybe_compact_locked();
  }
}

void LsmKv::rotate_memtable_locked() {
  if (memtable_.empty()) return;
  auto run = std::make_shared<Run>(std::move(memtable_));
  memtable_.clear();
  runs_.insert(runs_.begin(), std::move(run));
}

std::shared_ptr<const LsmKv::Run> LsmKv::merge_runs(const Run& newer,
                                                    const Run& older) {
  auto out = std::make_shared<Run>();
  out->reserve(newer.size() + older.size());
  std::merge(newer.begin(), newer.end(), older.begin(), older.end(),
             std::back_inserter(*out), entry_less);
  // Drop superseded versions: keep only the first (newest) entry per key.
  auto last = std::unique(out->begin(), out->end(),
                          [](const Entry& a, const Entry& b) {
                            return a.key == b.key;
                          });
  out->erase(last, out->end());
  return out;
}

void LsmKv::maybe_compact_locked() {
  while (runs_.size() > options_.max_runs) {
    // Merge the two oldest runs (back of the vector).
    auto older = runs_.back();
    runs_.pop_back();
    auto newer = runs_.back();
    runs_.pop_back();
    runs_.push_back(merge_runs(*newer, *older));
  }
}

void LsmKv::compact_all() {
  LockGuard<AslMutex<McsLock>> guard(meta_lock_);
  rotate_memtable_locked();
  while (runs_.size() > 1) {
    auto older = runs_.back();
    runs_.pop_back();
    auto newer = runs_.back();
    runs_.pop_back();
    runs_.push_back(merge_runs(*newer, *older));
  }
}

LsmKv::Snapshot LsmKv::snapshot() const {
  Snapshot snap;
  LockGuard<AslMutex<McsLock>> guard(meta_lock_);
  // The memtable view is copied (it is mutable); runs are shared immutably.
  snap.memtable_ = std::make_shared<const Run>(memtable_);
  snap.runs_ = runs_;
  return snap;
}

std::optional<std::string> LsmKv::Snapshot::get(std::uint64_t key) const {
  auto probe = [key](const Run& run) -> const Entry* {
    Entry needle{key, ~0ULL, false, std::string()};
    auto it = std::lower_bound(run.begin(), run.end(), needle, entry_less);
    if (it != run.end() && it->key == key) return &*it;
    return nullptr;
  };
  if (const Entry* e = probe(*memtable_)) {
    return e->tombstone ? std::nullopt : std::optional<std::string>(e->value);
  }
  for (const auto& run : runs_) {
    if (const Entry* e = probe(*run)) {
      return e->tombstone ? std::nullopt
                          : std::optional<std::string>(e->value);
    }
  }
  return std::nullopt;
}

std::vector<std::pair<std::uint64_t, std::string>> LsmKv::Snapshot::range(
    std::uint64_t lo, std::uint64_t hi) const {
  // Newest (key, seq) pair wins; runs are already sorted (key asc, seq
  // desc), so a map keyed by key keeps the first-seen (newest within a run)
  // entry and cross-run conflicts resolve by seq.
  std::map<std::uint64_t, const Entry*> newest;
  auto sweep = [&](const Run& run) {
    Entry needle{lo, ~0ULL, false, std::string()};
    for (auto it = std::lower_bound(run.begin(), run.end(), needle,
                                    entry_less);
         it != run.end() && it->key <= hi; ++it) {
      auto [pos, inserted] = newest.try_emplace(it->key, &*it);
      if (!inserted && it->seq > pos->second->seq) {
        pos->second = &*it;
      }
    }
  };
  sweep(*memtable_);
  for (const auto& run : runs_) sweep(*run);
  std::vector<std::pair<std::uint64_t, std::string>> out;
  for (const auto& [key, entry] : newest) {
    if (!entry->tombstone) out.emplace_back(key, entry->value);
  }
  return out;
}

std::optional<std::string> LsmKv::get(std::uint64_t key) const {
  return snapshot().get(key);
}

std::vector<std::pair<std::uint64_t, std::string>> LsmKv::range(
    std::uint64_t lo, std::uint64_t hi) const {
  return snapshot().range(lo, hi);
}

std::size_t LsmKv::num_runs() const {
  LockGuard<AslMutex<McsLock>> guard(meta_lock_);
  return runs_.size();
}

std::size_t LsmKv::memtable_entries() const {
  LockGuard<AslMutex<McsLock>> guard(meta_lock_);
  return memtable_.size();
}

}  // namespace asl::db
