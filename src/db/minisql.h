// MiniSql — a small relational engine, the SQLite stand-in.
//
// Lock pattern (Table 1): SQLite serializes writers through a *state-machine
// lock*: a connection's file lock progresses UNLOCKED -> SHARED -> RESERVED
// -> EXCLUSIVE, and "the transaction can commit successfully only in a
// certain state". MiniSql reproduces that: a global lock state guarded by
// the state-machine mutex (an AslMutex), DEFERRED transactions that take
// SHARED on first read and RESERVED on first write, and commit that upgrades
// to EXCLUSIVE. A separate metadata lock guards the catalog.
//
// The engine supports the paper's SQLite benchmark mix: INSERT, simple point
// SELECT on an indexed column, complex range SELECT with a filter on a
// non-indexed column, and a full-table scan.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "asl/libasl.h"

namespace asl::db {

class MiniSql {
 public:
  // SQLite's file-lock ladder (PENDING folded into EXCLUSIVE acquisition).
  enum class LockState : std::uint8_t {
    kUnlocked,
    kShared,
    kReserved,
    kExclusive,
  };

  struct Row {
    std::int64_t id = 0;       // indexed column
    std::int64_t score = 0;    // non-indexed column (complex-select filter)
    std::string payload;
    bool deleted = false;      // tombstone (DELETE marks, VACUUM-less)
  };

  MiniSql() = default;

  // --- schema -------------------------------------------------------------
  // Creates a table; returns false if it already exists.
  bool create_table(const std::string& name);
  bool has_table(const std::string& name) const;

  // --- transactions (DEFERRED semantics) -----------------------------------
  class Txn {
   public:
    ~Txn();
    Txn(Txn&&) noexcept;
    Txn& operator=(Txn&&) = delete;
    Txn(const Txn&) = delete;

    // INSERT INTO table VALUES (row). First write upgrades to RESERVED.
    bool insert(const std::string& table, Row row);

    // UPDATE table SET score, payload WHERE id = ?. Buffered like insert;
    // returns false on SQLITE_BUSY (another writer holds RESERVED).
    bool update(const std::string& table, std::int64_t id,
                std::int64_t new_score, const std::string& new_payload);

    // DELETE FROM table WHERE id = ?. Buffered; rows are tombstoned at
    // commit (SQLite reuses freed pages rather than compacting).
    bool erase(const std::string& table, std::int64_t id);

    // SELECT * WHERE id = ? (point query via the id index).
    std::optional<Row> select_point(const std::string& table,
                                    std::int64_t id);

    // SELECT * WHERE id BETWEEN lo AND hi AND score >= min_score
    // (range over the index, filter on the non-indexed column).
    std::vector<Row> select_range(const std::string& table, std::int64_t lo,
                                  std::int64_t hi, std::int64_t min_score);

    // SELECT * (full-table scan; the paper's occasional extremely long op).
    std::vector<Row> full_scan(const std::string& table);

    // COMMIT: upgrades to EXCLUSIVE, applies buffered writes, releases.
    // Returns false (and rolls back) if the upgrade is impossible.
    bool commit();
    void rollback();

    bool active() const { return active_; }
    LockState state() const { return state_; }

   private:
    friend class MiniSql;
    explicit Txn(MiniSql* db) : db_(db) {}

    bool ensure_shared();
    bool ensure_reserved();

    MiniSql* db_ = nullptr;
    bool active_ = true;
    LockState state_ = LockState::kUnlocked;
    struct PendingWrite {
      enum class Kind : std::uint8_t { kInsert, kUpdate, kDelete };
      Kind kind = Kind::kInsert;
      std::string table;
      Row row;  // kInsert: full row; kUpdate: id+score+payload; kDelete: id
    };
    std::vector<PendingWrite> writes_;
  };

  // Begins a DEFERRED transaction: no lock is taken until first use.
  Txn begin();

  // Autocommit helpers (each wraps one op in a transaction).
  bool insert(const std::string& table, Row row);
  bool update(const std::string& table, std::int64_t id,
              std::int64_t new_score, const std::string& new_payload);
  bool erase(const std::string& table, std::int64_t id);
  std::optional<Row> select_point(const std::string& table, std::int64_t id);
  std::vector<Row> select_range(const std::string& table, std::int64_t lo,
                                std::int64_t hi, std::int64_t min_score);
  std::vector<Row> full_scan(const std::string& table);

  std::size_t table_rows(const std::string& table) const;

  // Introspection for tests.
  LockState global_state() const;
  std::uint64_t commits() const;
  std::uint64_t busy_rejections() const;

 private:
  struct Table {
    std::vector<Row> rows;
    std::multimap<std::int64_t, std::size_t> id_index;  // id -> row position
  };

  // State-machine transitions; all return success and are guarded by
  // state_lock_.
  bool acquire_shared();
  void release_shared();
  bool acquire_reserved();
  void release_reserved_to_shared();
  bool upgrade_exclusive();
  void release_exclusive();

  Table* find_table(const std::string& name);
  const Table* find_table(const std::string& name) const;

  mutable AslMutex<McsLock> state_lock_;  // guards the lock-state counters
  mutable AslMutex<McsLock> meta_lock_;   // guards the catalog
  std::map<std::string, Table> tables_;   // guarded by meta_lock_ for DDL;
                                          // row access governed by the
                                          // state machine
  // State-machine occupancy (guarded by state_lock_):
  std::uint32_t shared_holders_ = 0;
  bool reserved_held_ = false;
  bool exclusive_held_ = false;
  std::uint64_t commits_ = 0;
  std::uint64_t busy_rejections_ = 0;
};

}  // namespace asl::db
