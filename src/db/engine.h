// KvEngine — the pluggable storage-engine contract behind the KV service
// (DESIGN.md §7).
//
// The paper's real-application results (Fig. 9/10) show that ASL's benefit
// depends on the *engine's* critical-section profile: Kyoto's slot locks,
// upscaledb's global lock and LevelDB's snapshot-then-read-off-lock pattern
// saturate at very different offered loads and with very different get/put
// asymmetry. This header is the seam that lets one service front-end run on
// any of them:
//
//   * KvEngine — uint64-key/string-value get/put/erase, implemented by thin
//     adapters over the src/db engines (HashKv, BtreeKv, LsmKv). Every
//     adapter is internally locked, but under the KV service all calls are
//     additionally serialized by the shard lock — the adapters exist for
//     the *data*, the CostProfile below models the *time*.
//   * CostProfile — per-op service-cost classes in emulated NOPs, the twin-
//     fidelity currency (experiment.h's ~0.4 ns/NOP calibration). cs_nops
//     is spent inside the shard lock, post_nops after release. The real
//     service spins these counts (scaled by the worker's core speed) to
//     emulate a paper-scale engine on our small in-memory stand-ins; the
//     simulated twin charges exactly the same classes in virtual time —
//     one number set, two clocks, which is what keeps twin-predicted
//     capacity comparable to the real probe (DESIGN.md §5/§7).
//   * the registry — string-keyed construction (make_kv_engine) plus the
//     checked-in default CostProfile per engine (default_cost_profile),
//     calibrated once with the engine_calib harness and pinned so twin
//     runs stay deterministic across hosts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asl::db {

// One operation's service-cost class: emulated NOPs inside the shard lock
// (cs_nops) and after release (post_nops). Big-core counts; little cores
// stretch by the SpeedFactors / machine-model slowdowns at the call site.
// `allocs` is the op's steady-state heap-allocation count (operator-new
// calls per op after warmup, measured by the asl_alloc hooks): a *count*,
// not a NOP budget, so cost_scale never touches it. The twin charges
// allocs * SimTwinConfig::alloc_ns on the op's service segment; the
// kv_alloc_audit scenario is what pins the zero rows as regressions.
struct OpCost {
  std::uint64_t cs_nops = 0;
  std::uint64_t post_nops = 0;
  std::uint64_t allocs = 0;
};

// Per-op cost classes for one engine. This is what replaces the service's
// old flat cs_nops fold: a get and a put may cost arbitrarily different
// amounts, which is exactly the LSM asymmetry (cheap snapshot under the
// lock + off-lock read for gets; memtable append with amortized rotation/
// compaction under the lock for puts) a single number cannot express.
struct CostProfile {
  OpCost get;
  OpCost put;
  // Lock-free get class (the MVCC snapshot-read contract, DESIGN.md §8):
  // when set, the service routes gets around the shard lock entirely —
  // get.cs_nops is still the latency-visible service time of the read, but
  // it is spent *off-lock* at non-critical-section speed (the real worker
  // spins it scale_ncs, the twin charges it under ncs_slowdown), and the
  // shard lock is acquired for puts only. Safe because every engine is
  // internally synchronized; profitable only for engines whose reads take
  // no engine-side lock either (mvcc's pinned snapshots).
  bool get_lock_free = false;

  const OpCost& op(bool is_put) const { return is_put ? put : get; }

  // All-zero *time* means "unset": KvServiceConfig uses it as the sentinel
  // for "resolve from the engine registry default". The allocation counts
  // deliberately do not participate — a profile carrying only allocs has no
  // service time and could not have come from calibration.
  bool empty() const {
    return get.cs_nops == 0 && get.post_nops == 0 && put.cs_nops == 0 &&
           put.post_nops == 0;
  }

  // Uniformly scaled copy — the overload scenarios' knob. Scaling every
  // class by one factor preserves the get/put asymmetry (it is not a fold
  // back into a single number). Allocation counts pass through unscaled:
  // making an op's emulated work 10x heavier does not make it call the
  // allocator 10x more.
  CostProfile scaled(double factor) const {
    auto mul = [factor](std::uint64_t n) {
      return static_cast<std::uint64_t>(static_cast<double>(n) * factor);
    };
    return CostProfile{{mul(get.cs_nops), mul(get.post_nops), get.allocs},
                       {mul(put.cs_nops), mul(put.post_nops), put.allocs},
                       get_lock_free};
  }
};

// The engine contract the KV service shards program against. Adapters
// normalize the underlying engines' key/value conventions (HashKv's string
// keys, LsmKv's void put) to one shape; get of a missing key is nullopt,
// never an error, and erase reports whether the key was (still) visible.
class KvEngine {
 public:
  virtual ~KvEngine() = default;

  // The registry name this engine was constructed under ("hash", ...).
  virtual std::string_view name() const = 0;

  // put takes a view, not a string: the service formats values into arena
  // buffers outside the critical section (DESIGN.md §9) and the engine must
  // be able to consume them without forcing a std::string materialization
  // at the call boundary. Engines copy the bytes into their own storage
  // (reusing existing capacity on overwrite), so the view only needs to
  // outlive the call.
  virtual void put(std::uint64_t key, std::string_view value) = 0;
  virtual std::optional<std::string> get(std::uint64_t key) const = 0;
  virtual bool erase(std::uint64_t key) = 0;

  // Live (non-deleted) keys. May cost a full scan on engines without a
  // cheap counter (the LSM adapter counts a snapshot): an observability
  // call, not a hot-path one.
  virtual std::size_t size() const = 0;

  // Whether get() is safe and profitable to call without the shard lock:
  // true only for engines whose reads are wait-free against concurrent
  // writers (no engine-internal reader lock, no refcount contention). Must
  // agree with the registry CostProfile's get_lock_free flag — the service
  // routes on the profile, and tests pin the two together.
  virtual bool lock_free_gets() const { return false; }
};

// Registered engine names, sorted ("btree", "hash", "lsm", "mvcc").
std::vector<std::string> kv_engine_names();

// Constructs the engine registered under `name`; nullptr when the name is
// unknown — pair with kv_engine_error() for the diagnosis. The service
// front-ends treat an unknown name as a configuration bug and abort with
// that message rather than silently substituting a default.
std::unique_ptr<KvEngine> make_kv_engine(std::string_view name);

// Human-readable diagnosis for an unknown engine name, listing the
// registered ones.
std::string kv_engine_error(std::string_view name);

// The checked-in calibrated default CostProfile for `name` (DESIGN.md §7:
// measured once with the engine_calib harness on the reference host, then
// pinned so the twin's virtual time never depends on the build machine).
// Returns an empty profile for unknown names.
CostProfile default_cost_profile(std::string_view name);

}  // namespace asl::db
