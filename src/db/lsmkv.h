// LsmKv — log-structured merge KV store, the LevelDB stand-in.
//
// Lock pattern (Table 1): a *metadata lock* that every Get takes briefly to
// snapshot the current version (memtable + immutable runs) — the paper's
// db_bench randomread "acquires a global lock to take a snapshot of internal
// database structures" — and that Put takes to append to the memtable and to
// rotate/compact. Reads then proceed off-lock against the snapshot.
//
// Runs are immutable sorted vectors shared via shared_ptr; compaction merges
// the two smallest runs when the run count exceeds a threshold.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asl/libasl.h"

namespace asl::db {

class LsmKv {
 public:
  struct Options {
    std::size_t memtable_limit = 1024;  // entries before rotation
    std::size_t max_runs = 8;           // compact when exceeded
  };

  explicit LsmKv(Options options);
  LsmKv() : LsmKv(Options{}) {}

  // The value is a view; the memtable entry copies it (an LSM put appends a
  // fresh version by design, so this engine allocates per put — the cost
  // registry's nonzero allocs row, DESIGN.md §9).
  void put(std::uint64_t key, std::string_view value);
  // Tombstone write; get() of an erased key returns nullopt.
  void erase(std::uint64_t key);

  std::optional<std::string> get(std::uint64_t key) const;
  std::vector<std::pair<std::uint64_t, std::string>> range(
      std::uint64_t lo, std::uint64_t hi) const;

  // Snapshot for multi-read consistency (what db_bench's Get loop models).
  class Snapshot {
   public:
    struct Entry {
      std::uint64_t key;
      std::uint64_t seq;
      bool tombstone;
      std::string value;
    };
    using Run = std::vector<Entry>;

    std::optional<std::string> get(std::uint64_t key) const;

    // Ordered range scan [lo, hi]: newest version per key wins, tombstones
    // suppress. Merges the memtable view with every run.
    std::vector<std::pair<std::uint64_t, std::string>> range(
        std::uint64_t lo, std::uint64_t hi) const;

   private:
    friend class LsmKv;
    std::shared_ptr<const Run> memtable_;  // sorted copy-on-rotate view
    std::vector<std::shared_ptr<const Run>> runs_;  // newest first
  };
  Snapshot snapshot() const;

  std::size_t num_runs() const;
  std::size_t memtable_entries() const;

  // Force-merge all runs into one (testing / maintenance).
  void compact_all();

 private:
  using Entry = Snapshot::Entry;
  using Run = Snapshot::Run;

  void rotate_memtable_locked();
  void maybe_compact_locked();
  static std::shared_ptr<const Run> merge_runs(const Run& newer,
                                               const Run& older);

  Options options_;
  mutable AslMutex<McsLock> meta_lock_;
  // All below guarded by meta_lock_.
  std::vector<Entry> memtable_;  // kept sorted by (key, seq desc)
  std::vector<std::shared_ptr<const Run>> runs_;  // newest first
  std::uint64_t next_seq_ = 1;
};

}  // namespace asl::db
