#include "db/hashkv.h"

#include "platform/spin.h"

namespace asl::db {

HashKv::HashKv(std::size_t num_slots)
    : slots_(num_slots == 0 ? 1 : num_slots) {}

std::uint64_t HashKv::hash_key(std::string_view key) {
  // FNV-1a: cheap and uniform enough for bucket selection.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

HashKv::Slot& HashKv::slot_for(std::string_view key) {
  return slots_[hash_key(key) % slots_.size()];
}
const HashKv::Slot& HashKv::slot_for(std::string_view key) const {
  return slots_[hash_key(key) % slots_.size()];
}

void HashKv::method_enter_shared() const {
  LockGuard<AslMutex<McsLock>> guard(method_lock_);
  ++inflight_;
}

void HashKv::method_exit_shared() const {
  LockGuard<AslMutex<McsLock>> guard(method_lock_);
  --inflight_;
}

bool HashKv::put(std::string_view key, std::string_view value) {
  method_enter_shared();
  Slot& slot = slot_for(key);
  bool inserted = false;
  {
    LockGuard<AslMutex<McsLock>> guard(slot.lock);
    bool found = false;
    for (Entry& e : slot.chain) {
      if (e.key == key) {
        // assign() reuses the entry's capacity: an overwrite of a key whose
        // value is not growing never allocates (the steady-state contract).
        e.value.assign(value);
        found = true;
        break;
      }
    }
    if (!found) {
      slot.chain.push_back(Entry{std::string(key), std::string(value)});
      inserted = true;
    }
  }
  if (inserted) {
    LockGuard<AslMutex<McsLock>> guard(size_lock_);
    ++size_;
  }
  method_exit_shared();
  return inserted;
}

std::optional<std::string> HashKv::get(std::string_view key) const {
  method_enter_shared();
  const Slot& slot = slot_for(key);
  std::optional<std::string> result;
  {
    LockGuard<AslMutex<McsLock>> guard(slot.lock);
    for (const Entry& e : slot.chain) {
      if (e.key == key) {
        result = e.value;
        break;
      }
    }
  }
  method_exit_shared();
  return result;
}

bool HashKv::remove(std::string_view key) {
  method_enter_shared();
  Slot& slot = slot_for(key);
  bool removed = false;
  {
    LockGuard<AslMutex<McsLock>> guard(slot.lock);
    for (std::size_t i = 0; i < slot.chain.size(); ++i) {
      if (slot.chain[i].key == key) {
        slot.chain[i] = std::move(slot.chain.back());
        slot.chain.pop_back();
        removed = true;
        break;
      }
    }
  }
  if (removed) {
    LockGuard<AslMutex<McsLock>> guard(size_lock_);
    --size_;
  }
  method_exit_shared();
  return removed;
}

std::size_t HashKv::size() const {
  LockGuard<AslMutex<McsLock>> guard(size_lock_);
  return size_;
}

void HashKv::for_each(
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  // Exclusive method operation: hold the method lock and wait for in-flight
  // record operations to drain, then walk every slot under its lock.
  method_lock_.lock();
  while (inflight_ != 0) {
    // Record ops finish without needing the method lock to *exit*... they
    // do need it; avoid deadlock by releasing and re-acquiring.
    method_lock_.unlock();
    sched_yield();
    method_lock_.lock();
  }
  for (const Slot& slot : slots_) {
    LockGuard<AslMutex<McsLock>> guard(slot.lock);
    for (const Entry& e : slot.chain) {
      fn(e.key, e.value);
    }
  }
  method_lock_.unlock();
}

}  // namespace asl::db
