#include "db/engine.h"

#include <cstdio>

#include "db/btreekv.h"
#include "db/hashkv.h"
#include "db/lsmkv.h"
#include "db/mvkv.h"

namespace asl::db {
namespace {

// HashKv (the Kyoto stand-in) keys by string; keep the service's historic
// "k:<n>" representation so a hash-backed store looks exactly like the
// pre-engine-subsystem one. Keys are formatted into a stack buffer and
// passed as views — the adapter itself never touches the heap (the store
// copies into its own entries, reusing capacity on overwrite).
class HashKvEngine final : public KvEngine {
 public:
  HashKvEngine() : kv_(16) {}
  std::string_view name() const override { return "hash"; }
  void put(std::uint64_t key, std::string_view value) override {
    KeyBuf buf;
    kv_.put(key_string(key, buf), value);
  }
  std::optional<std::string> get(std::uint64_t key) const override {
    KeyBuf buf;
    return kv_.get(key_string(key, buf));
  }
  bool erase(std::uint64_t key) override {
    KeyBuf buf;
    return kv_.remove(key_string(key, buf));
  }
  std::size_t size() const override { return kv_.size(); }

 private:
  using KeyBuf = char[24];  // "k:" + 20 digits + nul

  static std::string_view key_string(std::uint64_t key, KeyBuf& buf) {
    const int len = std::snprintf(buf, sizeof(KeyBuf), "k:%llu",
                                  static_cast<unsigned long long>(key));
    return std::string_view(buf, static_cast<std::size_t>(len));
  }
  HashKv kv_;
};

// BtreeKv (the upscaledb stand-in): native uint64 keys, tracked size.
class BtreeKvEngine final : public KvEngine {
 public:
  std::string_view name() const override { return "btree"; }
  void put(std::uint64_t key, std::string_view value) override {
    kv_.put(key, value);
  }
  std::optional<std::string> get(std::uint64_t key) const override {
    return kv_.get(key);
  }
  bool erase(std::uint64_t key) override { return kv_.erase(key); }
  std::size_t size() const override { return kv_.size(); }

 private:
  BtreeKv kv_;
};

// LsmKv (the LevelDB stand-in). erase() writes a tombstone whether or not
// the key exists, so visibility is probed first to keep the contract's
// "was it there" answer; size() counts live keys off one snapshot (no cheap
// counter exists across memtable + runs with superseded versions).
class LsmKvEngine final : public KvEngine {
 public:
  std::string_view name() const override { return "lsm"; }
  void put(std::uint64_t key, std::string_view value) override {
    kv_.put(key, value);
  }
  std::optional<std::string> get(std::uint64_t key) const override {
    return kv_.get(key);
  }
  bool erase(std::uint64_t key) override {
    const bool existed = kv_.get(key).has_value();
    kv_.erase(key);
    return existed;
  }
  std::size_t size() const override {
    return kv_.range(0, ~0ULL).size();
  }

 private:
  LsmKv kv_;
};

// MvKv (the LMDB stand-in): native uint64 keys, single-writer MVCC with
// epoch-reclaimed snapshot reads. The one engine whose gets are wait-free
// against concurrent puts — lock_free_gets() lets the service skip the
// shard lock for the get route entirely (DESIGN.md §8).
class MvccKvEngine final : public KvEngine {
 public:
  std::string_view name() const override { return "mvcc"; }
  void put(std::uint64_t key, std::string_view value) override {
    kv_.put(key, value);
  }
  std::optional<std::string> get(std::uint64_t key) const override {
    return kv_.get(key);
  }
  bool erase(std::uint64_t key) override { return kv_.erase(key); }
  std::size_t size() const override { return kv_.size(); }
  bool lock_free_gets() const override { return true; }

 private:
  MvKv kv_;
};

using EngineFactory = std::unique_ptr<KvEngine> (*)();

// The registry rows, sorted by name. The default CostProfiles are the
// calibrated per-op cost classes (DESIGN.md §7): big-core NOP counts from
// the engine_calib harness on the reference host, rounded and checked in so
// twin runs are byte-deterministic everywhere. Shapes they encode:
//   * hash — O(1) slot-chain ops; symmetric get/put (this symmetry is what
//     *hides* write amplification on a hash shard);
//   * btree — depth-proportional traversals under the global lock; puts pay
//     extra for splits;
//   * lsm — gets snapshot briefly under the meta lock and read off-lock
//     (small cs, larger post), puts append to the sorted memtable and carry
//     the amortized rotation/compaction bill under the lock (large cs) —
//     the LevelDB-style put amplification the engine sweep demonstrates;
//   * mvcc — get_lock_free: gets never take the shard lock at all (the get
//     class is the off-lock snapshot traversal, charged at non-CS speed);
//     puts path-copy under the single-writer lock (cs) and retire the old
//     version's nodes to the epoch reclaimer afterwards (post).
// The third OpCost field is the steady-state allocation count (DESIGN.md
// §9): hash, btree and mvcc are allocation-free after warmup (hash/mvcc
// pinned at zero by kv_alloc_audit; btree allocates only on the rare
// amortized split), while lsm inherently allocates — every get materializes
// a run-list snapshot, every put appends a memtable entry and carries the
// amortized rotation/compaction churn.
struct EngineEntry {
  const char* name;
  EngineFactory make;
  CostProfile cost;
};

// check_docs.py parses the quoted names below as the registered-engine set;
// keep one entry per line.
const EngineEntry kEngineRegistry[] = {
    {"btree", [] { return std::unique_ptr<KvEngine>(new BtreeKvEngine); },
     CostProfile{{1000, 100, 0}, {1300, 120, 0}}},
    {"hash", [] { return std::unique_ptr<KvEngine>(new HashKvEngine); },
     CostProfile{{400, 100, 0}, {400, 100, 0}}},
    {"lsm", [] { return std::unique_ptr<KvEngine>(new LsmKvEngine); },
     CostProfile{{250, 600, 1}, {1500, 100, 1}}},
    {"mvcc", [] { return std::unique_ptr<KvEngine>(new MvccKvEngine); },
     CostProfile{{700, 100, 0}, {1200, 300, 0}, /*get_lock_free=*/true}},
};

const EngineEntry* find_entry(std::string_view name) {
  for (const EngineEntry& e : kEngineRegistry) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> kv_engine_names() {
  std::vector<std::string> names;
  for (const EngineEntry& e : kEngineRegistry) names.emplace_back(e.name);
  return names;
}

std::unique_ptr<KvEngine> make_kv_engine(std::string_view name) {
  const EngineEntry* entry = find_entry(name);
  return entry == nullptr ? nullptr : entry->make();
}

std::string kv_engine_error(std::string_view name) {
  std::string msg = "unknown KV engine '";
  msg += name;
  msg += "'; registered engines:";
  for (const EngineEntry& e : kEngineRegistry) {
    msg += ' ';
    msg += e.name;
  }
  return msg;
}

CostProfile default_cost_profile(std::string_view name) {
  const EngineEntry* entry = find_entry(name);
  return entry == nullptr ? CostProfile{} : entry->cost;
}

}  // namespace asl::db
