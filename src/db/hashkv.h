// HashKv — in-memory hash-table KV store, the Kyoto Cabinet stand-in.
//
// Lock pattern (Table 1): a *method lock* serializing whole-store operations
// (iteration, clear, resize bookkeeping) against per-record operations, plus
// *slot-level locks* — one per bucket group — protecting the actual chains.
// A Put/Get epoch therefore takes: method lock (briefly, shared intent) then
// its slot lock, matching the paper's "Slot-level Lock, Method Lock" row.
//
// All locks are AslMutex so an application linked with LibASL gets the
// SLO-guided ordering with no code changes here.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asl/libasl.h"

namespace asl::db {

class HashKv {
 public:
  explicit HashKv(std::size_t num_slots = 64);

  // Inserts or overwrites. Returns true if the key was new. Keys and values
  // are views (callers may format them in stack/arena buffers — DESIGN.md
  // §9); the store copies into its own entries, reusing an existing entry's
  // value capacity on overwrite, so only first-insert allocates.
  bool put(std::string_view key, std::string_view value);

  std::optional<std::string> get(std::string_view key) const;

  // Removes the key; returns true if it existed.
  bool remove(std::string_view key);

  std::size_t size() const;

  // Whole-store iteration under the exclusive method lock (the "method"
  // operations Kyoto serializes store-wide).
  void for_each(
      const std::function<void(const std::string&, const std::string&)>& fn)
      const;

  std::size_t num_slots() const { return slots_.size(); }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };
  struct Slot {
    mutable AslMutex<McsLock> lock;
    std::vector<Entry> chain;
  };

  static std::uint64_t hash_key(std::string_view key);
  Slot& slot_for(std::string_view key);
  const Slot& slot_for(std::string_view key) const;

  // Method lock: count of in-flight record ops + exclusive flag, guarded by
  // method_lock_. Record ops take it briefly (shared intent); for_each takes
  // it exclusively by waiting the in-flight count down.
  void method_enter_shared() const;
  void method_exit_shared() const;

  mutable AslMutex<McsLock> method_lock_;
  mutable std::uint32_t inflight_ = 0;  // guarded by method_lock_
  std::vector<Slot> slots_;
  mutable AslMutex<McsLock> size_lock_;
  std::size_t size_ = 0;  // guarded by size_lock_
};

}  // namespace asl::db
