#include "db/minisql.h"

#include "platform/spin.h"

namespace asl::db {

// ---------------------------------------------------------------- schema

bool MiniSql::create_table(const std::string& name) {
  LockGuard<AslMutex<McsLock>> meta(meta_lock_);
  return tables_.emplace(name, Table{}).second;
}

bool MiniSql::has_table(const std::string& name) const {
  LockGuard<AslMutex<McsLock>> meta(meta_lock_);
  return tables_.count(name) != 0;
}

MiniSql::Table* MiniSql::find_table(const std::string& name) {
  LockGuard<AslMutex<McsLock>> meta(meta_lock_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const MiniSql::Table* MiniSql::find_table(const std::string& name) const {
  LockGuard<AslMutex<McsLock>> meta(meta_lock_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

// ------------------------------------------------------- state machine
// SHARED: any number of readers, unless EXCLUSIVE is held.
// RESERVED: at most one intending writer; readers may coexist.
// EXCLUSIVE: sole owner; waits out readers.

bool MiniSql::acquire_shared() {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  if (exclusive_held_) {
    ++busy_rejections_;
    return false;
  }
  ++shared_holders_;
  return true;
}

void MiniSql::release_shared() {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  --shared_holders_;
}

bool MiniSql::acquire_reserved() {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  if (reserved_held_ || exclusive_held_) {
    ++busy_rejections_;
    return false;  // SQLITE_BUSY: another writer is active
  }
  reserved_held_ = true;
  return true;
}

void MiniSql::release_reserved_to_shared() {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  reserved_held_ = false;
}

bool MiniSql::upgrade_exclusive() {
  // Spin until all other readers drain (SQLite's PENDING stage blocks new
  // readers; we approximate by repeatedly attempting the upgrade).
  for (;;) {
    {
      LockGuard<AslMutex<McsLock>> guard(state_lock_);
      if (!exclusive_held_ && shared_holders_ <= 1) {
        // The upgrading txn is itself one of the shared holders.
        exclusive_held_ = true;
        return true;
      }
    }
    sched_yield();
  }
}

void MiniSql::release_exclusive() {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  exclusive_held_ = false;
}

MiniSql::LockState MiniSql::global_state() const {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  if (exclusive_held_) return LockState::kExclusive;
  if (reserved_held_) return LockState::kReserved;
  if (shared_holders_ > 0) return LockState::kShared;
  return LockState::kUnlocked;
}

std::uint64_t MiniSql::commits() const {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  return commits_;
}

std::uint64_t MiniSql::busy_rejections() const {
  LockGuard<AslMutex<McsLock>> guard(state_lock_);
  return busy_rejections_;
}

// ----------------------------------------------------------- transactions

MiniSql::Txn MiniSql::begin() { return Txn(this); }

MiniSql::Txn::~Txn() {
  if (active_) rollback();
}

MiniSql::Txn::Txn(Txn&& other) noexcept
    : db_(other.db_),
      active_(other.active_),
      state_(other.state_),
      writes_(std::move(other.writes_)) {
  other.active_ = false;
  other.state_ = LockState::kUnlocked;
}

bool MiniSql::Txn::ensure_shared() {
  if (state_ != LockState::kUnlocked) return true;
  // DEFERRED: first read takes SHARED; retry through transient EXCLUSIVE
  // holders like sqlite3_busy_timeout would.
  while (!db_->acquire_shared()) {
    sched_yield();
  }
  state_ = LockState::kShared;
  return true;
}

bool MiniSql::Txn::ensure_reserved() {
  if (state_ == LockState::kReserved || state_ == LockState::kExclusive) {
    return true;
  }
  ensure_shared();
  if (!db_->acquire_reserved()) {
    return false;  // SQLITE_BUSY surfaced to the caller
  }
  state_ = LockState::kReserved;
  return true;
}

bool MiniSql::Txn::insert(const std::string& table, Row row) {
  if (!active_ || !ensure_reserved()) return false;
  if (db_->find_table(table) == nullptr) return false;
  writes_.push_back(
      PendingWrite{PendingWrite::Kind::kInsert, table, std::move(row)});
  return true;
}

bool MiniSql::Txn::update(const std::string& table, std::int64_t id,
                          std::int64_t new_score,
                          const std::string& new_payload) {
  if (!active_ || !ensure_reserved()) return false;
  if (db_->find_table(table) == nullptr) return false;
  writes_.push_back(PendingWrite{PendingWrite::Kind::kUpdate, table,
                                 Row{id, new_score, new_payload, false}});
  return true;
}

bool MiniSql::Txn::erase(const std::string& table, std::int64_t id) {
  if (!active_ || !ensure_reserved()) return false;
  if (db_->find_table(table) == nullptr) return false;
  writes_.push_back(PendingWrite{PendingWrite::Kind::kDelete, table,
                                 Row{id, 0, std::string(), false}});
  return true;
}

std::optional<MiniSql::Row> MiniSql::Txn::select_point(
    const std::string& table, std::int64_t id) {
  if (!active_) return std::nullopt;
  ensure_shared();
  const Table* t = db_->find_table(table);
  if (t == nullptr) return std::nullopt;
  for (auto [it, end] = t->id_index.equal_range(id); it != end; ++it) {
    const Row& row = t->rows[it->second];
    if (!row.deleted) return row;
  }
  return std::nullopt;
}

std::vector<MiniSql::Row> MiniSql::Txn::select_range(const std::string& table,
                                                     std::int64_t lo,
                                                     std::int64_t hi,
                                                     std::int64_t min_score) {
  std::vector<Row> out;
  if (!active_) return out;
  ensure_shared();
  const Table* t = db_->find_table(table);
  if (t == nullptr) return out;
  for (auto it = t->id_index.lower_bound(lo);
       it != t->id_index.end() && it->first <= hi; ++it) {
    const Row& row = t->rows[it->second];
    if (!row.deleted && row.score >= min_score) out.push_back(row);
  }
  return out;
}

std::vector<MiniSql::Row> MiniSql::Txn::full_scan(const std::string& table) {
  std::vector<Row> out;
  if (!active_) return out;
  ensure_shared();
  const Table* t = db_->find_table(table);
  if (t == nullptr) return out;
  for (const Row& row : t->rows) {
    if (!row.deleted) out.push_back(row);
  }
  return out;
}

bool MiniSql::Txn::commit() {
  if (!active_) return false;
  if (writes_.empty()) {
    rollback();  // read-only commit == release
    return true;
  }
  // Writer commit: RESERVED -> EXCLUSIVE, apply, release everything.
  db_->upgrade_exclusive();
  state_ = LockState::kExclusive;
  for (PendingWrite& w : writes_) {
    Table* t = db_->find_table(w.table);
    if (t == nullptr) continue;
    switch (w.kind) {
      case PendingWrite::Kind::kInsert:
        t->rows.push_back(std::move(w.row));
        t->id_index.emplace(t->rows.back().id, t->rows.size() - 1);
        break;
      case PendingWrite::Kind::kUpdate:
        for (auto [it, end] = t->id_index.equal_range(w.row.id); it != end;
             ++it) {
          Row& row = t->rows[it->second];
          if (!row.deleted) {
            row.score = w.row.score;
            row.payload = w.row.payload;
          }
        }
        break;
      case PendingWrite::Kind::kDelete:
        for (auto [it, end] = t->id_index.equal_range(w.row.id); it != end;
             ++it) {
          t->rows[it->second].deleted = true;
        }
        break;
    }
  }
  {
    LockGuard<AslMutex<McsLock>> guard(db_->state_lock_);
    ++db_->commits_;
  }
  db_->release_exclusive();
  db_->release_reserved_to_shared();
  db_->release_shared();
  writes_.clear();
  active_ = false;
  state_ = LockState::kUnlocked;
  return true;
}

void MiniSql::Txn::rollback() {
  if (!active_) return;
  if (state_ == LockState::kExclusive) db_->release_exclusive();
  if (state_ == LockState::kExclusive || state_ == LockState::kReserved) {
    db_->release_reserved_to_shared();
  }
  if (state_ != LockState::kUnlocked) db_->release_shared();
  writes_.clear();
  active_ = false;
  state_ = LockState::kUnlocked;
}

// ----------------------------------------------------------- autocommit

bool MiniSql::insert(const std::string& table, Row row) {
  Txn txn = begin();
  if (!txn.insert(table, std::move(row))) return false;
  return txn.commit();
}

std::optional<MiniSql::Row> MiniSql::select_point(const std::string& table,
                                                  std::int64_t id) {
  Txn txn = begin();
  auto row = txn.select_point(table, id);
  txn.commit();
  return row;
}

std::vector<MiniSql::Row> MiniSql::select_range(const std::string& table,
                                                std::int64_t lo,
                                                std::int64_t hi,
                                                std::int64_t min_score) {
  Txn txn = begin();
  auto rows = txn.select_range(table, lo, hi, min_score);
  txn.commit();
  return rows;
}

std::vector<MiniSql::Row> MiniSql::full_scan(const std::string& table) {
  Txn txn = begin();
  auto rows = txn.full_scan(table);
  txn.commit();
  return rows;
}

bool MiniSql::update(const std::string& table, std::int64_t id,
                     std::int64_t new_score, const std::string& new_payload) {
  Txn txn = begin();
  if (!txn.update(table, id, new_score, new_payload)) return false;
  return txn.commit();
}

bool MiniSql::erase(const std::string& table, std::int64_t id) {
  Txn txn = begin();
  if (!txn.erase(table, id)) return false;
  return txn.commit();
}

std::size_t MiniSql::table_rows(const std::string& table) const {
  const Table* t = find_table(table);
  if (t == nullptr) return 0;
  std::size_t n = 0;
  for (const Row& row : t->rows) n += row.deleted ? 0 : 1;
  return n;
}

}  // namespace asl::db
