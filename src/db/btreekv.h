// BtreeKv — B+tree KV store, the upscaledb stand-in.
//
// Lock pattern (Table 1): one *global lock* held across the whole tree
// operation (upscaledb serializes the environment) plus a *worker-pool lock*
// protecting a free-list of per-operation cursor scratch objects, taken
// briefly before and after each op. Epochs on this engine are therefore
// global-lock-bound with long critical sections — the workload where the
// paper observes TAS's big-core affinity and LibASL's biggest wins (3.8x
// over MCS).
//
// The tree is a real in-memory B+tree (fixed fanout, split-on-insert,
// borrow/merge-free lazy deletion via tombstone compaction on node rebuild)
// rather than a std::map facade, so critical-section lengths scale with
// depth like the real engine's.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asl/libasl.h"

namespace asl::db {

class BtreeKv {
 public:
  BtreeKv();
  ~BtreeKv();

  // The value is a view (arena/stack-formatted by callers, DESIGN.md §9);
  // overwrites reuse the leaf slot's capacity, first inserts copy.
  void put(std::uint64_t key, std::string_view value);
  std::optional<std::string> get(std::uint64_t key) const;
  bool erase(std::uint64_t key);

  // Inclusive range scan; returns (key,value) pairs in key order.
  std::vector<std::pair<std::uint64_t, std::string>> range(
      std::uint64_t lo, std::uint64_t hi) const;

  std::size_t size() const;
  std::size_t height() const;

  // Pool statistics (how many cursor objects exist / are free).
  std::size_t pool_total() const;
  std::size_t pool_free() const;

 private:
  static constexpr std::size_t kFanout = 16;  // max keys per node

  struct Node;
  struct Cursor;  // per-op scratch object drawn from the worker pool

  Cursor* pool_acquire() const;
  void pool_release(Cursor* cursor) const;

  Node* find_leaf(std::uint64_t key) const;
  void insert_into_leaf(Node* leaf, std::uint64_t key, std::string_view value);
  void split_leaf(Node* leaf);
  void split_inner(Node* inner);
  void insert_into_parent(Node* left, std::uint64_t sep, Node* right);

  mutable AslMutex<McsLock> global_lock_;
  mutable AslMutex<McsLock> pool_lock_;
  mutable std::vector<std::unique_ptr<Cursor>> pool_all_;
  mutable std::vector<Cursor*> pool_free_;

  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace asl::db
