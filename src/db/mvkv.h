// MvKv — multi-version copy-on-write KV store, the LMDB stand-in.
//
// Lock pattern (Table 1): a *global (single-writer) lock* held across each
// write transaction's copy-on-write path update; readers take no lock at
// all — they pin the published root through the epoch reclaimer and read
// the immutable version directly. Readers never block writers and vice
// versa, exactly like LMDB's MVCC B-tree, but where LMDB pins pages via a
// reader table, MvKv pins whole version trees via EpochReclaimer (asl/
// reclaim.h): an atomic root pointer published with release order, raw
// immutable BST nodes shared structurally across versions, and path-copied
// nodes retired to the reclaimer the moment the new root is published.
//
// The shared_ptr scheme this replaces put an atomic refcount bump/drop on
// every node a reader touched — cross-core cache-line traffic on the hot
// read path, plus a metadata lock around every root pin. Now a read is:
// pin (one uncontended store to a thread-private slot), traverse, unpin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asl/libasl.h"
#include "asl/reclaim.h"

namespace asl::db {

class MvKv {
 public:
  explicit MvKv(ReclaimConfig reclaim = {});
  ~MvKv();
  MvKv(const MvKv&) = delete;
  MvKv& operator=(const MvKv&) = delete;

  // Write transaction: insert/overwrite under the single-writer lock.
  void put(std::uint64_t key, const std::string& value);

  // Write transaction: delete. Returns true if the key existed.
  bool erase(std::uint64_t key);

  // Read transaction: pins the current root (epoch pin, no lock), then
  // reads lock-free.
  std::optional<std::string> get(std::uint64_t key) const;

  // Read transaction over a range, against one snapshot.
  std::vector<std::pair<std::uint64_t, std::string>> range(
      std::uint64_t lo, std::uint64_t hi) const;

  // Explicit snapshot handle for multi-read transactions. Holds an epoch
  // pin for its whole lifetime: every node reachable from root_ stays
  // allocated until the snapshot is destroyed, however many writes land in
  // the meantime. Movable, not copyable; destroy promptly — a long-lived
  // snapshot stalls reclamation of every version retired after it.
  class Snapshot {
   public:
    struct Node;  // definition in mvkv.cpp (immutable BST node)

    Snapshot() = default;
    Snapshot(Snapshot&&) = default;
    Snapshot& operator=(Snapshot&&) = default;

    std::optional<std::string> get(std::uint64_t key) const;
    std::vector<std::pair<std::uint64_t, std::string>> range(
        std::uint64_t lo, std::uint64_t hi) const;
    std::uint64_t version() const { return version_; }

   private:
    friend class MvKv;
    EpochReclaimer::Guard guard_;  // pin outlives every root_ dereference
    const Node* root_ = nullptr;
    std::uint64_t version_ = 0;
  };
  Snapshot snapshot() const;

  std::size_t size() const;
  std::uint64_t version() const;

  // Reclamation observables (tests/reclaim_test.cpp pins the backlog bound
  // against these).
  const EpochReclaimer& reclaimer() const { return reclaimer_; }

 private:
  using Node = Snapshot::Node;

  // Copy-on-write helpers. Every node they copy or unlink is pushed onto
  // `retired` (the caller retires the batch after publishing the new
  // root); shared subtrees are never pushed.
  const Node* insert(const Node* node, std::uint64_t key,
                     const std::string& value, bool& added,
                     std::vector<const Node*>& retired);
  const Node* remove(const Node* node, std::uint64_t key, bool& removed,
                     std::vector<const Node*>& retired);
  void publish(const Node* new_root, std::vector<const Node*>& retired);

  mutable AslMutex<McsLock> writer_lock_;  // the single-writer global lock
  mutable EpochReclaimer reclaimer_;       // version-node grace periods
  std::atomic<const Node*> root_{nullptr};  // published root (release/acquire)
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::size_t> size_{0};
  std::vector<const Node*> retire_scratch_;  // guarded by writer_lock_
};

}  // namespace asl::db
