// MvKv — multi-version copy-on-write KV store, the LMDB stand-in.
//
// Lock pattern (Table 1): a *global (single-writer) lock* held across each
// write transaction's copy-on-write path update; readers take no lock at
// all — they pin the published root through the epoch reclaimer and read
// the immutable version directly. Readers never block writers and vice
// versa, exactly like LMDB's MVCC B-tree, but where LMDB pins pages via a
// reader table, MvKv pins whole version trees via EpochReclaimer (asl/
// reclaim.h): an atomic root pointer published with release order, raw
// immutable BST nodes shared structurally across versions, and path-copied
// nodes retired to the reclaimer the moment the new root is published.
//
// The shared_ptr scheme this replaces put an atomic refcount bump/drop on
// every node a reader touched — cross-core cache-line traffic on the hot
// read path, plus a metadata lock around every root pin. Now a read is:
// pin (one uncontended store to a thread-private slot), traverse, unpin.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asl/libasl.h"
#include "asl/reclaim.h"
#include "platform/raw_spinlock.h"

namespace asl::db {

class MvKv {
 public:
  explicit MvKv(ReclaimConfig reclaim = {});
  ~MvKv();
  MvKv(const MvKv&) = delete;
  MvKv& operator=(const MvKv&) = delete;

  // Write transaction: insert/overwrite under the single-writer lock. The
  // value is a view (callers format into arena/stack buffers, DESIGN.md §9);
  // the path-copied nodes reuse pooled storage, so a put over a warmed
  // keyspace touches the heap zero times.
  void put(std::uint64_t key, std::string_view value);

  // Write transaction: delete. Returns true if the key existed.
  bool erase(std::uint64_t key);

  // Read transaction: pins the current root (epoch pin, no lock), then
  // reads lock-free.
  std::optional<std::string> get(std::uint64_t key) const;

  // Read transaction over a range, against one snapshot.
  std::vector<std::pair<std::uint64_t, std::string>> range(
      std::uint64_t lo, std::uint64_t hi) const;

  // Explicit snapshot handle for multi-read transactions. Holds an epoch
  // pin for its whole lifetime: every node reachable from root_ stays
  // allocated until the snapshot is destroyed, however many writes land in
  // the meantime. Movable, not copyable; destroy promptly — a long-lived
  // snapshot stalls reclamation of every version retired after it.
  class Snapshot {
   public:
    struct Node;  // definition in mvkv.cpp (immutable BST node)

    Snapshot() = default;
    Snapshot(Snapshot&&) = default;
    Snapshot& operator=(Snapshot&&) = default;

    std::optional<std::string> get(std::uint64_t key) const;
    std::vector<std::pair<std::uint64_t, std::string>> range(
        std::uint64_t lo, std::uint64_t hi) const;
    std::uint64_t version() const { return version_; }

   private:
    friend class MvKv;
    EpochReclaimer::Guard guard_;  // pin outlives every root_ dereference
    const Node* root_ = nullptr;
    std::uint64_t version_ = 0;
  };
  Snapshot snapshot() const;

  std::size_t size() const;
  std::uint64_t version() const;

  // Reclamation observables (tests/reclaim_test.cpp pins the backlog bound
  // against these).
  const EpochReclaimer& reclaimer() const { return reclaimer_; }

  // Node-pool observables (tests/alloc_test.cpp pins steady-state puts at
  // zero pool growth): how many nodes the pool ever created, and how many
  // currently sit on the freelist.
  std::size_t pool_total() const;
  std::size_t pool_free() const;

 private:
  using Node = Snapshot::Node;

  // Node freelist (DESIGN.md §9). The copy-on-write path allocates d+1
  // nodes per put and retires d; recycling retired nodes through the
  // reclaimer's deleter closes the loop, so a warmed keyspace reaches an
  // equilibrium where every acquire is a freelist pop and the heap is never
  // touched. The pool owns every node it ever created (`all_`) and frees
  // them at teardown — which is why it is declared *before* reclaimer_:
  // the reclaimer's destructor drains pending retirees back into the
  // freelist, and only then may the pool destruct and delete the backing
  // storage. Spinlock-guarded: acquires run under writer_lock_, but
  // releases arrive from whichever thread's retire() crossed a sweep
  // boundary.
  class NodePool {
   public:
    // Nodes created per freelist miss (one returned, the rest banked):
    // over-provisioning past each high-water mark is what lets the pool
    // reach allocation-free equilibrium within a few warmup misses.
    static constexpr std::size_t kGrowChunk = 32;

    ~NodePool();
    Node* acquire(std::uint64_t key, std::string_view value, const Node* left,
                  const Node* right);
    // Freelist pop alone — nullptr on a miss, never touches the heap (so
    // the caller can try reclamation before conceding an allocation).
    Node* try_acquire(std::uint64_t key, std::string_view value,
                      const Node* left, const Node* right);
    void release(Node* node);
    std::size_t total() const;
    std::size_t free_count() const;

   private:
    mutable RawSpinLock lock_;
    std::vector<Node*> free_;  // guarded by lock_
    std::vector<Node*> all_;   // every node ever created; deleted at teardown
  };

  // The reclaimer Deleter that returns a node to its pool instead of
  // deleting it (Node carries the back-pointer; Deleter has no context arg).
  static void recycle_node(void* p);

  // Writer-side reclamation push, called (under writer_lock_) at the top of
  // every write transaction: when the freelist dips under this bound —
  // comfortably above the deepest path copy a put can need — advance the
  // epoch and sweep, so the write draws on grace-expired retirees instead
  // of growing the pool. Without it the pool's size converges only as
  // retire()'s batch-boundary sweeps happen to fire near backlog peaks,
  // i.e. stochastically — and every new high-water mark is a heap
  // allocation the zero-allocation audit would count.
  static constexpr std::size_t kFreelistLowWater = 64;
  void maybe_replenish();

  // Freelist acquire with a bounded reclaim-wait on a miss. An empty
  // freelist almost always means the nodes this write needs are retirees
  // still inside their grace period (every put retires a whole path copy),
  // not a genuinely larger working set — so before conceding a (counted)
  // chunk allocation, spin on advance+sweep: readers unpin in microseconds,
  // and the heap stays the supplier of last resort against a stuck pin.
  static constexpr int kReclaimSpinRounds = 256;
  Node* fresh_node(std::uint64_t key, std::string_view value,
                   const Node* left, const Node* right);

  // Copy-on-write helpers. Every node they copy or unlink is pushed onto
  // `retired` (the caller retires the batch after publishing the new
  // root); shared subtrees are never pushed.
  const Node* insert(const Node* node, std::uint64_t key,
                     std::string_view value, bool& added,
                     std::vector<const Node*>& retired);
  const Node* remove(const Node* node, std::uint64_t key, bool& removed,
                     std::vector<const Node*>& retired);
  void publish(const Node* new_root, std::vector<const Node*>& retired);

  mutable AslMutex<McsLock> writer_lock_;  // the single-writer global lock
  NodePool pool_;                          // MUST precede reclaimer_ (above)
  mutable EpochReclaimer reclaimer_;       // version-node grace periods
  std::atomic<const Node*> root_{nullptr};  // published root (release/acquire)
  std::atomic<std::uint64_t> version_{0};
  std::atomic<std::size_t> size_{0};
  std::vector<const Node*> retire_scratch_;  // guarded by writer_lock_
};

}  // namespace asl::db
