// MvKv — multi-version copy-on-write KV store, the LMDB stand-in.
//
// Lock pattern (Table 1): a *global (single-writer) lock* held across each
// write transaction's copy-on-write path update, plus *metadata locks* —
// the reader-table lock every operation touches briefly to pin / unpin a
// root snapshot. Readers never block writers and vice versa once the
// snapshot is pinned, exactly like LMDB's MVCC B-tree.
//
// Versions are immutable binary search tree nodes shared via shared_ptr:
// path copying on write, O(1) snapshot pin, reclamation when the last
// reader of an old root drops it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "asl/libasl.h"

namespace asl::db {

class MvKv {
 public:
  MvKv() = default;

  // Write transaction: insert/overwrite under the single-writer lock.
  void put(std::uint64_t key, const std::string& value);

  // Write transaction: delete. Returns true if the key existed.
  bool erase(std::uint64_t key);

  // Read transaction: pins the current root (metadata lock, briefly), then
  // reads lock-free.
  std::optional<std::string> get(std::uint64_t key) const;

  // Read transaction over a range, against one snapshot.
  std::vector<std::pair<std::uint64_t, std::string>> range(
      std::uint64_t lo, std::uint64_t hi) const;

  // Explicit snapshot handle for multi-read transactions.
  class Snapshot {
   public:
    struct Node;  // definition in mvkv.cpp (immutable BST node)

    std::optional<std::string> get(std::uint64_t key) const;
    std::vector<std::pair<std::uint64_t, std::string>> range(
        std::uint64_t lo, std::uint64_t hi) const;
    std::uint64_t version() const { return version_; }

   private:
    friend class MvKv;
    std::shared_ptr<const Node> root_;
    std::uint64_t version_ = 0;
  };
  Snapshot snapshot() const;

  std::size_t size() const;
  std::uint64_t version() const;

 private:
  using Node = Snapshot::Node;

  static std::shared_ptr<const Node> insert(
      const std::shared_ptr<const Node>& node, std::uint64_t key,
      const std::string& value, bool& added);
  static std::shared_ptr<const Node> remove(
      const std::shared_ptr<const Node>& node, std::uint64_t key,
      bool& removed);

  mutable AslMutex<McsLock> writer_lock_;  // the single-writer global lock
  mutable AslMutex<McsLock> meta_lock_;    // reader-table / root pin lock
  std::shared_ptr<const Node> root_;       // guarded by meta_lock_ for swap
  std::uint64_t version_ = 0;              // guarded by writer_lock_
  std::size_t size_ = 0;                   // guarded by writer_lock_
};

}  // namespace asl::db
