#include "db/btreekv.h"

#include <algorithm>
#include <cassert>

namespace asl::db {

// B+tree node: leaves hold (key, value) pairs and a right-sibling link;
// inner nodes hold separator keys and child pointers (children.size() ==
// keys.size() + 1).
struct BtreeKv::Node {
  bool leaf = true;
  std::vector<std::uint64_t> keys;
  std::vector<std::string> values;   // leaves only
  std::vector<Node*> children;      // inner only
  Node* parent = nullptr;
  Node* next = nullptr;  // leaf chain for range scans
};

// Cursor scratch: the worker-pool object; real engines keep per-operation
// state (page refs, txn handles) here. We keep the descent path, which the
// split logic genuinely uses.
struct BtreeKv::Cursor {
  std::vector<Node*> path;
  bool in_use = false;
};

BtreeKv::BtreeKv() {
  root_ = new Node();
}

BtreeKv::~BtreeKv() {
  struct Recurse {
    static void run(Node* n) {
      if (n == nullptr) return;
      if (!n->leaf) {
        for (Node* c : n->children) run(c);
      }
      delete n;
    }
  };
  Recurse::run(root_);
}

BtreeKv::Cursor* BtreeKv::pool_acquire() const {
  LockGuard<AslMutex<McsLock>> guard(pool_lock_);
  if (!pool_free_.empty()) {
    Cursor* c = pool_free_.back();
    pool_free_.pop_back();
    c->in_use = true;
    return c;
  }
  pool_all_.push_back(std::make_unique<Cursor>());
  pool_all_.back()->in_use = true;
  return pool_all_.back().get();
}

void BtreeKv::pool_release(Cursor* cursor) const {
  LockGuard<AslMutex<McsLock>> guard(pool_lock_);
  cursor->path.clear();
  cursor->in_use = false;
  pool_free_.push_back(cursor);
}

BtreeKv::Node* BtreeKv::find_leaf(std::uint64_t key) const {
  Node* node = root_;
  while (!node->leaf) {
    // First separator strictly greater than key decides the child.
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[i];
  }
  return node;
}

void BtreeKv::insert_into_leaf(Node* leaf, std::uint64_t key,
                               std::string_view value) {
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  const std::size_t idx =
      static_cast<std::size_t>(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) {
    // assign() reuses the slot's capacity: overwrites are allocation-free
    // while the value is not growing.
    leaf->values[idx].assign(value);
    return;
  }
  leaf->keys.insert(it, key);
  leaf->values.insert(leaf->values.begin() + static_cast<std::ptrdiff_t>(idx),
                      std::string(value));
  ++size_;
  if (leaf->keys.size() > kFanout) {
    split_leaf(leaf);
  }
}

void BtreeKv::split_leaf(Node* leaf) {
  const std::size_t mid = leaf->keys.size() / 2;
  Node* right = new Node();
  right->leaf = true;
  right->keys.assign(leaf->keys.begin() + static_cast<std::ptrdiff_t>(mid),
                     leaf->keys.end());
  right->values.assign(leaf->values.begin() + static_cast<std::ptrdiff_t>(mid),
                       leaf->values.end());
  leaf->keys.resize(mid);
  leaf->values.resize(mid);
  right->next = leaf->next;
  leaf->next = right;
  insert_into_parent(leaf, right->keys.front(), right);
}

void BtreeKv::split_inner(Node* inner) {
  const std::size_t mid = inner->keys.size() / 2;
  const std::uint64_t sep = inner->keys[mid];
  Node* right = new Node();
  right->leaf = false;
  right->keys.assign(inner->keys.begin() + static_cast<std::ptrdiff_t>(mid + 1),
                     inner->keys.end());
  right->children.assign(
      inner->children.begin() + static_cast<std::ptrdiff_t>(mid + 1),
      inner->children.end());
  for (Node* c : right->children) c->parent = right;
  inner->keys.resize(mid);
  inner->children.resize(mid + 1);
  insert_into_parent(inner, sep, right);
}

void BtreeKv::insert_into_parent(Node* left, std::uint64_t sep, Node* right) {
  Node* parent = left->parent;
  if (parent == nullptr) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->keys.push_back(sep);
    new_root->children.push_back(left);
    new_root->children.push_back(right);
    left->parent = new_root;
    right->parent = new_root;
    root_ = new_root;
    return;
  }
  right->parent = parent;
  auto it = std::lower_bound(parent->keys.begin(), parent->keys.end(), sep);
  const std::size_t idx =
      static_cast<std::size_t>(it - parent->keys.begin());
  parent->keys.insert(it, sep);
  parent->children.insert(
      parent->children.begin() + static_cast<std::ptrdiff_t>(idx + 1), right);
  if (parent->keys.size() > kFanout) {
    split_inner(parent);
  }
}

void BtreeKv::put(std::uint64_t key, std::string_view value) {
  Cursor* cursor = pool_acquire();
  {
    LockGuard<AslMutex<McsLock>> guard(global_lock_);
    Node* leaf = find_leaf(key);
    cursor->path.push_back(leaf);
    insert_into_leaf(leaf, key, value);
  }
  pool_release(cursor);
}

std::optional<std::string> BtreeKv::get(std::uint64_t key) const {
  Cursor* cursor = pool_acquire();
  std::optional<std::string> result;
  {
    LockGuard<AslMutex<McsLock>> guard(global_lock_);
    Node* leaf = find_leaf(key);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it != leaf->keys.end() && *it == key) {
      result = leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
    }
  }
  pool_release(cursor);
  return result;
}

bool BtreeKv::erase(std::uint64_t key) {
  // Lazy deletion: remove from the leaf; underfull leaves are tolerated
  // (upscaledb similarly defers structural shrinking).
  Cursor* cursor = pool_acquire();
  bool removed = false;
  {
    LockGuard<AslMutex<McsLock>> guard(global_lock_);
    Node* leaf = find_leaf(key);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it != leaf->keys.end() && *it == key) {
      const std::size_t idx =
          static_cast<std::size_t>(it - leaf->keys.begin());
      leaf->keys.erase(it);
      leaf->values.erase(leaf->values.begin() +
                         static_cast<std::ptrdiff_t>(idx));
      --size_;
      removed = true;
    }
  }
  pool_release(cursor);
  return removed;
}

std::vector<std::pair<std::uint64_t, std::string>> BtreeKv::range(
    std::uint64_t lo, std::uint64_t hi) const {
  Cursor* cursor = pool_acquire();
  std::vector<std::pair<std::uint64_t, std::string>> out;
  {
    LockGuard<AslMutex<McsLock>> guard(global_lock_);
    Node* leaf = find_leaf(lo);
    while (leaf != nullptr) {
      for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
        if (leaf->keys[i] < lo) continue;
        if (leaf->keys[i] > hi) {
          leaf = nullptr;
          break;
        }
        out.emplace_back(leaf->keys[i], leaf->values[i]);
      }
      if (leaf != nullptr) leaf = leaf->next;
    }
  }
  pool_release(cursor);
  return out;
}

std::size_t BtreeKv::size() const {
  LockGuard<AslMutex<McsLock>> guard(global_lock_);
  return size_;
}

std::size_t BtreeKv::height() const {
  LockGuard<AslMutex<McsLock>> guard(global_lock_);
  std::size_t h = 1;
  const Node* node = root_;
  while (!node->leaf) {
    node = node->children.front();
    ++h;
  }
  return h;
}

std::size_t BtreeKv::pool_total() const {
  LockGuard<AslMutex<McsLock>> guard(pool_lock_);
  return pool_all_.size();
}

std::size_t BtreeKv::pool_free() const {
  LockGuard<AslMutex<McsLock>> guard(pool_lock_);
  return pool_free_.size();
}

}  // namespace asl::db
