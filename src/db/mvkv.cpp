#include "db/mvkv.h"

namespace asl::db {

// Immutable BST node. No balancing: keys in the benchmarks are drawn
// uniformly at random, which keeps expected depth logarithmic; the engine's
// observable behaviour (single writer, lock-free snapshot reads) does not
// depend on the tree shape.
struct MvKv::Snapshot::Node {
  std::uint64_t key;
  std::string value;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

std::shared_ptr<const MvKv::Node> MvKv::insert(
    const std::shared_ptr<const Node>& node, std::uint64_t key,
    const std::string& value, bool& added) {
  if (node == nullptr) {
    added = true;
    return std::make_shared<const Node>(Node{key, value, nullptr, nullptr});
  }
  if (key == node->key) {
    added = false;
    return std::make_shared<const Node>(
        Node{key, value, node->left, node->right});
  }
  if (key < node->key) {
    return std::make_shared<const Node>(
        Node{node->key, node->value, insert(node->left, key, value, added),
             node->right});
  }
  return std::make_shared<const Node>(
      Node{node->key, node->value, node->left,
           insert(node->right, key, value, added)});
}

namespace {
// Leftmost node of a subtree (successor search for deletion).
const MvKv::Snapshot::Node* leftmost(const MvKv::Snapshot::Node* n) {
  while (n->left != nullptr) n = n->left.get();
  return n;
}
}  // namespace

std::shared_ptr<const MvKv::Node> MvKv::remove(
    const std::shared_ptr<const Node>& node, std::uint64_t key,
    bool& removed) {
  if (node == nullptr) {
    removed = false;
    return nullptr;
  }
  if (key < node->key) {
    auto left = remove(node->left, key, removed);
    if (!removed) return node;
    return std::make_shared<const Node>(
        Node{node->key, node->value, left, node->right});
  }
  if (key > node->key) {
    auto right = remove(node->right, key, removed);
    if (!removed) return node;
    return std::make_shared<const Node>(
        Node{node->key, node->value, node->left, right});
  }
  removed = true;
  if (node->left == nullptr) return node->right;
  if (node->right == nullptr) return node->left;
  // Two children: replace with in-order successor, delete it from the right.
  const Node* succ = leftmost(node->right.get());
  bool dummy = false;
  auto right = remove(node->right, succ->key, dummy);
  return std::make_shared<const Node>(
      Node{succ->key, succ->value, node->left, right});
}

void MvKv::put(std::uint64_t key, const std::string& value) {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  bool added = false;
  auto new_root = insert(root_, key, value, added);
  if (added) ++size_;
  ++version_;
  {
    LockGuard<AslMutex<McsLock>> meta(meta_lock_);
    root_ = std::move(new_root);
  }
}

bool MvKv::erase(std::uint64_t key) {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  bool removed = false;
  auto new_root = remove(root_, key, removed);
  if (removed) {
    --size_;
    ++version_;
    LockGuard<AslMutex<McsLock>> meta(meta_lock_);
    root_ = std::move(new_root);
  }
  return removed;
}

MvKv::Snapshot MvKv::snapshot() const {
  Snapshot snap;
  LockGuard<AslMutex<McsLock>> meta(meta_lock_);
  snap.root_ = root_;
  snap.version_ = version_;
  return snap;
}

std::optional<std::string> MvKv::Snapshot::get(std::uint64_t key) const {
  const Node* node = root_.get();
  while (node != nullptr) {
    if (key == node->key) return node->value;
    node = key < node->key ? node->left.get() : node->right.get();
  }
  return std::nullopt;
}

std::vector<std::pair<std::uint64_t, std::string>> MvKv::Snapshot::range(
    std::uint64_t lo, std::uint64_t hi) const {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  // Explicit stack in-order walk with pruning.
  std::vector<const Node*> stack;
  const Node* node = root_.get();
  while (node != nullptr || !stack.empty()) {
    while (node != nullptr) {
      if (node->key >= lo) {
        stack.push_back(node);
        node = node->left.get();
      } else {
        node = node->right.get();
      }
    }
    if (stack.empty()) break;
    node = stack.back();
    stack.pop_back();
    if (node->key > hi) break;
    out.emplace_back(node->key, node->value);
    node = node->right.get();
  }
  return out;
}

std::optional<std::string> MvKv::get(std::uint64_t key) const {
  return snapshot().get(key);
}

std::vector<std::pair<std::uint64_t, std::string>> MvKv::range(
    std::uint64_t lo, std::uint64_t hi) const {
  return snapshot().range(lo, hi);
}

std::size_t MvKv::size() const {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  return size_;
}

std::uint64_t MvKv::version() const {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  return version_;
}

}  // namespace asl::db
