#include "db/mvkv.h"

#include "platform/spin.h"

namespace asl::db {

// Immutable BST node. No balancing: steady-state keys in the benchmarks are
// drawn uniformly at random and the service prefills in median-first order
// (kv_service.cpp), which together keep depth logarithmic — a sorted insert
// stream would degenerate into a chain, making every get O(n) and every
// path copy O(n) pool nodes. The engine's observable behaviour (single
// writer, lock-free snapshot reads) does not depend on the tree shape. Raw child pointers: lifetime is managed by the
// epoch reclaimer, not refcounts — a node stays valid for as long as any
// pinned snapshot could reach it. `pool` points back at the owning freelist
// so the reclaimer's context-free Deleter can recycle the node (DESIGN.md
// §9) instead of deleting it.
struct MvKv::Snapshot::Node {
  std::uint64_t key;
  std::string value;
  const Node* left;
  const Node* right;
  MvKv::NodePool* pool;
};

namespace {

using Node = MvKv::Snapshot::Node;

// Leftmost node of a subtree (successor search for deletion).
const Node* leftmost(const Node* n) {
  while (n->left != nullptr) n = n->left;
  return n;
}

}  // namespace

MvKv::NodePool::~NodePool() {
  // The pool owns every node it ever handed out — the published tree, the
  // freelist, and anything the reclaimer drained back — so teardown is one
  // sweep over `all_`. No liveness question arises: ~MvKv destroys the
  // reclaimer (declared after the pool) first, and no snapshot can be live.
  for (Node* n : all_) delete n;
}

Node* MvKv::NodePool::try_acquire(std::uint64_t key, std::string_view value,
                                  const Node* left, const Node* right) {
  Node* n = nullptr;
  lock_.lock();
  if (!free_.empty()) {
    n = free_.back();
    free_.pop_back();
  }
  lock_.unlock();
  if (n == nullptr) return nullptr;
  n->key = key;
  // assign() reuses the recycled node's string capacity: once the freelist
  // reaches equilibrium a put writes into storage that already exists.
  n->value.assign(value);
  n->left = left;
  n->right = right;
  return n;
}

Node* MvKv::NodePool::acquire(std::uint64_t key, std::string_view value,
                              const Node* left, const Node* right) {
  if (Node* n = try_acquire(key, value, left, right)) return n;
  // Grow by a chunk, not a node: a miss means outstanding nodes (live
  // tree + reclaimer backlog + in-flight path) hit a new high-water mark,
  // and the mark is approached stochastically — sweep timing depends on
  // reader pin interleavings. Overshooting it by a margin makes the next
  // miss need a mark `kGrowChunk` higher, so the population converges to
  // its (hard-bounded, see reclaim.h) fixed point in a handful of misses
  // instead of creeping up one node per miss for millions of requests.
  Node* spares[kGrowChunk - 1];
  for (std::size_t i = 0; i + 1 < kGrowChunk; ++i) {
    spares[i] = new Node{0, std::string(), nullptr, nullptr, this};
  }
  Node* n = new Node{key, std::string(value), left, right, this};
  lock_.lock();
  for (Node* spare : spares) {
    all_.push_back(spare);
    free_.push_back(spare);
  }
  all_.push_back(n);
  lock_.unlock();
  return n;
}

void MvKv::NodePool::release(Node* node) {
  lock_.lock();
  free_.push_back(node);
  lock_.unlock();
}

std::size_t MvKv::NodePool::total() const {
  lock_.lock();
  const std::size_t n = all_.size();
  lock_.unlock();
  return n;
}

std::size_t MvKv::NodePool::free_count() const {
  lock_.lock();
  const std::size_t n = free_.size();
  lock_.unlock();
  return n;
}

void MvKv::recycle_node(void* p) {
  Node* n = static_cast<Node*>(p);
  n->pool->release(n);
}

MvKv::MvKv(ReclaimConfig reclaim) : reclaimer_(reclaim) {}

MvKv::~MvKv() {
  // Destruction order does the work: ~EpochReclaimer (declared after the
  // pool) recycles every still-retired node into the freelist, then
  // ~NodePool deletes the backing storage of the whole node population —
  // published tree included, so no explicit tree teardown is needed here.
}

const Node* MvKv::insert(const Node* node, std::uint64_t key,
                         std::string_view value, bool& added,
                         std::vector<const Node*>& retired) {
  if (node == nullptr) {
    added = true;
    return fresh_node(key, value, nullptr, nullptr);
  }
  // Path copying: the original of every copied node is retired; subtrees
  // hanging off the path are shared with the previous version untouched.
  retired.push_back(node);
  if (key == node->key) {
    added = false;
    return fresh_node(key, value, node->left, node->right);
  }
  if (key < node->key) {
    return fresh_node(node->key, node->value,
                      insert(node->left, key, value, added, retired),
                      node->right);
  }
  return fresh_node(node->key, node->value, node->left,
                    insert(node->right, key, value, added, retired));
}

const Node* MvKv::remove(const Node* node, std::uint64_t key, bool& removed,
                         std::vector<const Node*>& retired) {
  if (node == nullptr) {
    removed = false;
    return nullptr;
  }
  if (key < node->key) {
    const Node* left = remove(node->left, key, removed, retired);
    if (!removed) return node;  // miss: old subtree returned unchanged
    retired.push_back(node);
    return fresh_node(node->key, node->value, left, node->right);
  }
  if (key > node->key) {
    const Node* right = remove(node->right, key, removed, retired);
    if (!removed) return node;
    retired.push_back(node);
    return fresh_node(node->key, node->value, node->left, right);
  }
  removed = true;
  retired.push_back(node);  // the unlinked match itself
  if (node->left == nullptr) return node->right;
  if (node->right == nullptr) return node->left;
  // Two children: replace with in-order successor, delete it from the right
  // (that recursion retires the successor's old path copies).
  const Node* succ = leftmost(node->right);
  bool dummy = false;
  const Node* right = remove(node->right, succ->key, dummy, retired);
  return fresh_node(succ->key, succ->value, node->left, right);
}

void MvKv::publish(const Node* new_root, std::vector<const Node*>& retired) {
  // Release-publish the new version first: once a reader can load new_root
  // it can no longer reach the retired path copies, so handing them to the
  // reclaimer afterwards tags them with an epoch no earlier than any pin
  // that could still be traversing the old version.
  root_.store(new_root, std::memory_order_release);
  // recycle_node, not the deleting default: a reclaimed node goes back to
  // the pool's freelist, which is what makes steady-state puts heap-free.
  for (const Node* n : retired) {
    reclaimer_.retire(const_cast<Node*>(n), &MvKv::recycle_node);
  }
  retired.clear();
}

MvKv::Snapshot::Node* MvKv::fresh_node(std::uint64_t key,
                                       std::string_view value,
                                       const Node* left, const Node* right) {
  if (Node* n = pool_.try_acquire(key, value, left, right)) return n;
  // Grace-period wait (header comment): the retirees of previous puts are
  // the supply this write should draw on; they only need the epoch to turn
  // over twice. A reader pinned across one try_advance unpins within its
  // (microsecond) read, so the bounded spin resolves the miss without the
  // heap in all but pathological schedules.
  SpinWait waiter;
  for (int i = 0; i < kReclaimSpinRounds; ++i) {
    reclaimer_.try_advance();
    if (reclaimer_.sweep() > 0) {
      if (Node* n = pool_.try_acquire(key, value, left, right)) return n;
    }
    waiter.pause();
  }
  return pool_.acquire(key, value, left, right);
}

void MvKv::maybe_replenish() {
  if (pool_.free_count() >= kFreelistLowWater) return;
  // Two rounds: retirees tagged one epoch back need a single advance to
  // leave their grace period, the freshest need two. A round can stall if a
  // reader is pinned at the pre-advance epoch right now; then the next
  // write's call retries, and the chunked pool growth is the backstop.
  for (int round = 0; round < 2; ++round) {
    reclaimer_.try_advance();
    reclaimer_.sweep();
    if (pool_.free_count() >= kFreelistLowWater) return;
  }
}

void MvKv::put(std::uint64_t key, std::string_view value) {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  maybe_replenish();
  bool added = false;
  retire_scratch_.clear();
  const Node* new_root = insert(root_.load(std::memory_order_relaxed), key,
                                value, added, retire_scratch_);
  if (added) size_.fetch_add(1, std::memory_order_relaxed);
  version_.fetch_add(1, std::memory_order_relaxed);
  publish(new_root, retire_scratch_);
}

bool MvKv::erase(std::uint64_t key) {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  maybe_replenish();
  bool removed = false;
  retire_scratch_.clear();
  const Node* new_root = remove(root_.load(std::memory_order_relaxed), key,
                                removed, retire_scratch_);
  if (removed) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    version_.fetch_add(1, std::memory_order_relaxed);
    publish(new_root, retire_scratch_);
  }
  return removed;
}

MvKv::Snapshot MvKv::snapshot() const {
  Snapshot snap;
  // Pin first, then load: any version the load can observe was published
  // before the pin resolved, so none of its nodes can complete the
  // two-epoch grace period while this snapshot is alive.
  snap.guard_ = EpochReclaimer::Guard(reclaimer_);
  snap.root_ = root_.load(std::memory_order_acquire);
  snap.version_ = version_.load(std::memory_order_acquire);
  return snap;
}

std::optional<std::string> MvKv::Snapshot::get(std::uint64_t key) const {
  const Node* node = root_;
  while (node != nullptr) {
    if (key == node->key) return node->value;
    node = key < node->key ? node->left : node->right;
  }
  return std::nullopt;
}

std::vector<std::pair<std::uint64_t, std::string>> MvKv::Snapshot::range(
    std::uint64_t lo, std::uint64_t hi) const {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  // Explicit stack in-order walk with pruning.
  std::vector<const Node*> stack;
  const Node* node = root_;
  while (node != nullptr || !stack.empty()) {
    while (node != nullptr) {
      if (node->key >= lo) {
        stack.push_back(node);
        node = node->left;
      } else {
        node = node->right;
      }
    }
    if (stack.empty()) break;
    node = stack.back();
    stack.pop_back();
    if (node->key > hi) break;
    out.emplace_back(node->key, node->value);
    node = node->right;
  }
  return out;
}

std::optional<std::string> MvKv::get(std::uint64_t key) const {
  return snapshot().get(key);
}

std::vector<std::pair<std::uint64_t, std::string>> MvKv::range(
    std::uint64_t lo, std::uint64_t hi) const {
  return snapshot().range(lo, hi);
}

std::size_t MvKv::size() const {
  return size_.load(std::memory_order_acquire);
}

std::uint64_t MvKv::version() const {
  return version_.load(std::memory_order_acquire);
}

std::size_t MvKv::pool_total() const { return pool_.total(); }

std::size_t MvKv::pool_free() const { return pool_.free_count(); }

}  // namespace asl::db
