#include "db/mvkv.h"

namespace asl::db {

// Immutable BST node. No balancing: keys in the benchmarks are drawn
// uniformly at random, which keeps expected depth logarithmic; the engine's
// observable behaviour (single writer, lock-free snapshot reads) does not
// depend on the tree shape. Raw child pointers: lifetime is managed by the
// epoch reclaimer, not refcounts — a node stays valid for as long as any
// pinned snapshot could reach it.
struct MvKv::Snapshot::Node {
  std::uint64_t key;
  std::string value;
  const Node* left;
  const Node* right;
};

namespace {

using Node = MvKv::Snapshot::Node;

// Leftmost node of a subtree (successor search for deletion).
const Node* leftmost(const Node* n) {
  while (n->left != nullptr) n = n->left;
  return n;
}

// Post-destruction teardown: delete a whole subtree with an explicit stack
// (only the destructor calls this — no snapshot can be live).
void delete_tree(const Node* root) {
  std::vector<const Node*> stack;
  if (root != nullptr) stack.push_back(root);
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n->left != nullptr) stack.push_back(n->left);
    if (n->right != nullptr) stack.push_back(n->right);
    delete n;
  }
}

}  // namespace

MvKv::MvKv(ReclaimConfig reclaim) : reclaimer_(reclaim) {}

MvKv::~MvKv() {
  // No readers can be live here; the published tree is deleted directly and
  // the reclaimer's destructor frees everything ever retired (the two sets
  // are disjoint: retired nodes were unlinked from the published version).
  delete_tree(root_.load(std::memory_order_acquire));
}

const Node* MvKv::insert(const Node* node, std::uint64_t key,
                         const std::string& value, bool& added,
                         std::vector<const Node*>& retired) {
  if (node == nullptr) {
    added = true;
    return new Node{key, value, nullptr, nullptr};
  }
  // Path copying: the original of every copied node is retired; subtrees
  // hanging off the path are shared with the previous version untouched.
  retired.push_back(node);
  if (key == node->key) {
    added = false;
    return new Node{key, value, node->left, node->right};
  }
  if (key < node->key) {
    return new Node{node->key, node->value,
                    insert(node->left, key, value, added, retired),
                    node->right};
  }
  return new Node{node->key, node->value, node->left,
                  insert(node->right, key, value, added, retired)};
}

const Node* MvKv::remove(const Node* node, std::uint64_t key, bool& removed,
                         std::vector<const Node*>& retired) {
  if (node == nullptr) {
    removed = false;
    return nullptr;
  }
  if (key < node->key) {
    const Node* left = remove(node->left, key, removed, retired);
    if (!removed) return node;  // miss: old subtree returned unchanged
    retired.push_back(node);
    return new Node{node->key, node->value, left, node->right};
  }
  if (key > node->key) {
    const Node* right = remove(node->right, key, removed, retired);
    if (!removed) return node;
    retired.push_back(node);
    return new Node{node->key, node->value, node->left, right};
  }
  removed = true;
  retired.push_back(node);  // the unlinked match itself
  if (node->left == nullptr) return node->right;
  if (node->right == nullptr) return node->left;
  // Two children: replace with in-order successor, delete it from the right
  // (that recursion retires the successor's old path copies).
  const Node* succ = leftmost(node->right);
  bool dummy = false;
  const Node* right = remove(node->right, succ->key, dummy, retired);
  return new Node{succ->key, succ->value, node->left, right};
}

void MvKv::publish(const Node* new_root, std::vector<const Node*>& retired) {
  // Release-publish the new version first: once a reader can load new_root
  // it can no longer reach the retired path copies, so handing them to the
  // reclaimer afterwards tags them with an epoch no earlier than any pin
  // that could still be traversing the old version.
  root_.store(new_root, std::memory_order_release);
  for (const Node* n : retired) reclaimer_.retire(n);
  retired.clear();
}

void MvKv::put(std::uint64_t key, const std::string& value) {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  bool added = false;
  retire_scratch_.clear();
  const Node* new_root = insert(root_.load(std::memory_order_relaxed), key,
                                value, added, retire_scratch_);
  if (added) size_.fetch_add(1, std::memory_order_relaxed);
  version_.fetch_add(1, std::memory_order_relaxed);
  publish(new_root, retire_scratch_);
}

bool MvKv::erase(std::uint64_t key) {
  LockGuard<AslMutex<McsLock>> writer(writer_lock_);
  bool removed = false;
  retire_scratch_.clear();
  const Node* new_root = remove(root_.load(std::memory_order_relaxed), key,
                                removed, retire_scratch_);
  if (removed) {
    size_.fetch_sub(1, std::memory_order_relaxed);
    version_.fetch_add(1, std::memory_order_relaxed);
    publish(new_root, retire_scratch_);
  }
  return removed;
}

MvKv::Snapshot MvKv::snapshot() const {
  Snapshot snap;
  // Pin first, then load: any version the load can observe was published
  // before the pin resolved, so none of its nodes can complete the
  // two-epoch grace period while this snapshot is alive.
  snap.guard_ = EpochReclaimer::Guard(reclaimer_);
  snap.root_ = root_.load(std::memory_order_acquire);
  snap.version_ = version_.load(std::memory_order_acquire);
  return snap;
}

std::optional<std::string> MvKv::Snapshot::get(std::uint64_t key) const {
  const Node* node = root_;
  while (node != nullptr) {
    if (key == node->key) return node->value;
    node = key < node->key ? node->left : node->right;
  }
  return std::nullopt;
}

std::vector<std::pair<std::uint64_t, std::string>> MvKv::Snapshot::range(
    std::uint64_t lo, std::uint64_t hi) const {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  // Explicit stack in-order walk with pruning.
  std::vector<const Node*> stack;
  const Node* node = root_;
  while (node != nullptr || !stack.empty()) {
    while (node != nullptr) {
      if (node->key >= lo) {
        stack.push_back(node);
        node = node->left;
      } else {
        node = node->right;
      }
    }
    if (stack.empty()) break;
    node = stack.back();
    stack.pop_back();
    if (node->key > hi) break;
    out.emplace_back(node->key, node->value);
    node = node->right;
  }
  return out;
}

std::optional<std::string> MvKv::get(std::uint64_t key) const {
  return snapshot().get(key);
}

std::vector<std::pair<std::uint64_t, std::string>> MvKv::range(
    std::uint64_t lo, std::uint64_t hi) const {
  return snapshot().range(lo, hi);
}

std::size_t MvKv::size() const {
  return size_.load(std::memory_order_acquire);
}

std::uint64_t MvKv::version() const {
  return version_.load(std::memory_order_acquire);
}

}  // namespace asl::db
