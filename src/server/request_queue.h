// Bounded request queue — the per-shard admission buffer of the KV service.
//
// Open-loop traffic needs explicit backpressure: when arrivals outrun
// service capacity the queue fills and try_push fails, turning overload into
// a counted rejection instead of unbounded memory growth (DESIGN.md §4).
// The default service layout is MPSC (many submitters, one worker per
// shard), but nothing here assumes a single consumer, so scenarios may run
// a big/little worker pair per shard.
//
// Producers never block; consumers block on a CondVar (the litl-style
// shadow-mutex condvar from asl/condvar.h) until an item or close() arrives.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "asl/condvar.h"
#include "locks/pthread_lock.h"

namespace asl::server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    ring_.resize(capacity_);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking push; false when the queue is full or closed (the caller
  // counts the rejection).
  bool try_push(T item) {
    lock_.lock();
    if (closed_ || count_ == capacity_) {
      lock_.unlock();
      return false;
    }
    ring_[(head_ + count_) % capacity_] = std::move(item);
    count_ += 1;
    lock_.unlock();
    not_empty_.signal();
    return true;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // fully drained (false). Closed-but-nonempty queues keep delivering, so
  // every accepted request is eventually served.
  bool pop(T& out) {
    lock_.lock();
    while (count_ == 0 && !closed_) {
      not_empty_.wait(lock_);
    }
    if (count_ == 0) {
      lock_.unlock();
      return false;
    }
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    count_ -= 1;
    lock_.unlock();
    return true;
  }

  // Rejects future pushes and wakes all poppers. Idempotent.
  void close() {
    lock_.lock();
    closed_ = true;
    lock_.unlock();
    not_empty_.broadcast();
  }

  std::size_t size() const {
    lock_.lock();
    const std::size_t n = count_;
    lock_.unlock();
    return n;
  }

  std::size_t capacity() const { return capacity_; }

  bool closed() const {
    lock_.lock();
    const bool c = closed_;
    lock_.unlock();
    return c;
  }

 private:
  const std::size_t capacity_;
  mutable PthreadLock lock_;
  CondVar not_empty_;
  std::vector<T> ring_;   // ring buffer: [head_, head_ + count_) mod capacity
  std::size_t head_ = 0;  // guarded by lock_
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace asl::server
