// Bounded request queue — the per-shard admission buffer of the KV service.
//
// Open-loop traffic needs explicit backpressure: when arrivals outrun
// service capacity the queue fills and try_push fails, turning overload into
// a counted rejection instead of unbounded memory growth (DESIGN.md §4).
// The default service layout is MPSC (many submitters, one worker per
// shard), but nothing here assumes a single consumer, so scenarios may run
// a big/little worker pair per shard.
//
// Class-aware admission (DESIGN.md §6) is expressed as a per-push depth
// limit: try_push_below(item, limit) admits only while the current depth is
// under `limit`, so a sheddable request class can be rejected at a watermark
// below the physical capacity while protected classes keep using the full
// queue. The queue itself stays class-blind — the caller (KvService /
// SimKvService) derives the limit from its AdmissionPolicy, and the
// tri-state PushResult tells it whether a rejection was a deliberate shed
// (watermark hit, queue not full) or genuine exhaustion.
//
// Producers never block; consumers block on a CondVar (the litl-style
// shadow-mutex condvar from asl/condvar.h) until an item or close() arrives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "asl/condvar.h"
#include "locks/pthread_lock.h"
#include "platform/cacheline.h"

namespace asl::server {

// Outcome of a depth-limited push. kShed is only possible when the caller's
// limit is below the physical capacity: the queue had room, but the class's
// watermark said to bounce the request anyway.
enum class PushResult : std::uint8_t {
  kOk = 0,    // admitted
  kShed = 1,  // rejected by the caller's depth limit (queue not full)
  kFull = 2,  // rejected by capacity exhaustion or close()
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {
    ring_.resize(capacity_);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking push; false when the queue is full or closed (the caller
  // counts the rejection). Equivalent to try_push_below(item, capacity()).
  bool try_push(T item) {
    return try_push_below(std::move(item), capacity_) == PushResult::kOk;
  }

  // Non-blocking push with a caller-supplied depth limit: admits only while
  // the current depth is strictly below min(limit, capacity). The limit is
  // evaluated under the queue lock, so the shed decision and the push are
  // one atomic step — a concurrent pop cannot turn a shed into a spurious
  // full-queue rejection or vice versa. A limit >= capacity degenerates to
  // plain try_push (kShed is never returned); a limit of 0 sheds everything
  // for that class while the queue stays open to others.
  PushResult try_push_below(T item, std::size_t limit) {
    lock_.lock();
    if (closed_ || count_ >= capacity_) {
      lock_.unlock();
      return PushResult::kFull;
    }
    if (count_ >= limit) {
      lock_.unlock();
      return PushResult::kShed;
    }
    ring_[(head_ + count_) % capacity_] = std::move(item);
    count_ += 1;
    lock_.unlock();
    not_empty_.signal();
    return PushResult::kOk;
  }

  // Blocks until an item is available (true) or the queue is closed and
  // fully drained (false). Closed-but-nonempty queues keep delivering, so
  // every accepted request is eventually served.
  bool pop(T& out) {
    lock_.lock();
    while (count_ == 0 && !closed_) {
      not_empty_.wait(lock_);
    }
    if (count_ == 0) {
      lock_.unlock();
      return false;
    }
    out = std::move(ring_[head_]);
    // Reset the slot: a moved-from element may still own resources (arena
    // handles, strings), and leaving it in the ring keeps them alive until
    // the slot happens to be overwritten — a leak-by-delay under low load.
    ring_[head_] = T{};
    head_ = (head_ + 1) % capacity_;
    count_ -= 1;
    lock_.unlock();
    return true;
  }

  // Non-blocking pop: true and an item when one is immediately available,
  // false otherwise (empty or closed-and-drained). Workers use this to
  // extend a batch after the blocking pop delivered its head — the batch
  // grows only with requests that are already waiting, it never stalls the
  // critical section waiting for arrivals.
  bool try_pop(T& out) {
    lock_.lock();
    if (count_ == 0) {
      lock_.unlock();
      return false;
    }
    out = std::move(ring_[head_]);
    ring_[head_] = T{};  // same leak-by-delay rule as pop()
    head_ = (head_ + 1) % capacity_;
    count_ -= 1;
    lock_.unlock();
    return true;
  }

  // Rejects future pushes and wakes all poppers. Idempotent.
  void close() {
    lock_.lock();
    closed_ = true;
    lock_.unlock();
    not_empty_.broadcast();
  }

  // Instantaneous depth; a point-in-time read that concurrent pushes and
  // pops may move immediately.
  std::size_t size() const {
    lock_.lock();
    const std::size_t n = count_;
    lock_.unlock();
    return n;
  }

  // The clamped capacity (construction clamps 0 to 1); constant, so
  // callers may derive admission thresholds from it once.
  std::size_t capacity() const { return capacity_; }

  // Whether close() has been called. Closed is terminal: pushes fail
  // forever, pops drain what remains.
  bool closed() const {
    lock_.lock();
    const bool c = closed_;
    lock_.unlock();
    return c;
  }

 private:
  // Cache-line placement: the immutable fields (capacity_, the ring's
  // control block — its data pointer never moves after construction) share
  // a read-only line, while the lock word sits on its own line *with* the
  // cursors it guards — lock, head_, count_ and closed_ travel together
  // through every push/pop, so splitting them across lines would just add
  // coherence misses, and padding the group keeps neighbouring objects
  // (the shard's BlockingAslMutex, another queue in an array) from sharing
  // a line with this queue's hottest word.
  const std::size_t capacity_;
  std::vector<T> ring_;   // ring buffer: [head_, head_ + count_) mod capacity
  alignas(kCacheLine) mutable PthreadLock lock_;
  std::size_t head_ = 0;  // guarded by lock_
  std::size_t count_ = 0;
  bool closed_ = false;
  CondVar not_empty_;
};

}  // namespace asl::server
