// Canonical open-loop KV scenarios — one definition shared by the figure
// driver (bench/kv_scenarios.cpp), the determinism tests and the server
// tests, so "kv_zipf_bursty" means exactly one thing everywhere (the same
// role experiment.h plays for the closed-loop benches). The kv_server
// example deliberately does NOT use these: it hand-builds a small config to
// demonstrate the raw service API.
//
// The family is the cross product {uniform, zipfian} keys x {steady
// Poisson, bursty MMPP} arrivals, plus a diurnal-ramp variant and
// kv_batch_shed (batched shard drain + a sheddable write class, DESIGN.md
// §6). Every scenario serves two request classes with different SLOs —
// interactive point gets (tight) and writes (loose) — so per-epoch SLO
// accounting has something to distinguish.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "workload/open_loop.h"

namespace asl::server {

// One runnable open-loop configuration: a service shape plus the traffic
// offered to it. The same value drives the real path (KvService +
// run_open_loop), the twin (run_sim_kv) and the tests, which is what makes
// real-vs-twin comparisons apples-to-apples.
struct KvScenario {
  std::string name;   // registry key, e.g. "kv_zipf_bursty"
  std::string title;  // one-line human description for banners
  KvServiceConfig service;
  std::vector<LoadSpec> load;
  Nanos horizon = 0;  // unscaled run length; benches scale it by --time-scale
};

// Names of the registered open-loop scenarios, sorted.
std::vector<std::string> kv_scenario_names();

// Builds the scenario configuration for `name`; aborts (assert-style via
// the returned empty load) only on unknown names — callers use
// kv_scenario_names() or the scenario registry, which only hold valid ones.
KvScenario make_kv_scenario(std::string_view name);

// The same scenario on a different storage engine (db/engine.h registry
// name): every registered scenario runs unmodified on any engine — only
// KvServiceConfig::engine changes, so traffic, SLOs and admission policy
// stay identical and engine comparisons are apples-to-apples. The engine
// name is validated at service construction, not here.
KvScenario make_kv_scenario(std::string_view name, std::string_view engine);

// The heavy-critical-section overload profile shared by the TwinShapes
// queueing-shape tests, the kv_batch_sweep / kv_engine_sweep benches and
// the overload goldens: `name`'s scenario with a 128-deep queue and every
// per-op cost class scaled 100x (on the hash default that is a 40k/10k NOP
// profile — cs ~16 us big / ~64 us little under the twin's calibration;
// other engines keep their get/put asymmetry, just heavier), every
// stream's rate scaled by `rate_scale`. The heavy critical section
// pulls twin saturation down to a few times the nominal rate, so overload
// runs stay at a few thousand virtual events. One definition on purpose:
// retuning it retunes the shape tests, the sweep and the golden together
// instead of letting three copies drift apart.
KvScenario make_overloaded_kv_scenario(std::string_view name,
                                       double rate_scale,
                                       Nanos horizon = 20 * kNanosPerMilli);

}  // namespace asl::server
