// Canonical open-loop KV scenarios — one definition shared by the figure
// driver (bench/kv_scenarios.cpp), the determinism tests and the server
// tests, so "kv_zipf_bursty" means exactly one thing everywhere (the same
// role experiment.h plays for the closed-loop benches). The kv_server
// example deliberately does NOT use these: it hand-builds a small config to
// demonstrate the raw service API.
//
// The family is the cross product {uniform, zipfian} keys x {steady
// Poisson, bursty MMPP} arrivals, plus a diurnal-ramp variant. Every
// scenario serves two request classes with different SLOs — interactive
// point gets (tight) and writes (loose) — so per-epoch SLO accounting has
// something to distinguish.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "workload/open_loop.h"

namespace asl::server {

struct KvScenario {
  std::string name;
  std::string title;
  KvServiceConfig service;
  std::vector<LoadSpec> load;
  Nanos horizon = 0;  // unscaled run length; benches scale it by --time-scale
};

// Names of the registered open-loop scenarios, sorted.
std::vector<std::string> kv_scenario_names();

// Builds the scenario configuration for `name`; aborts (assert-style via
// the returned empty load) only on unknown names — callers use
// kv_scenario_names() or the scenario registry, which only hold valid ones.
KvScenario make_kv_scenario(std::string_view name);

}  // namespace asl::server
