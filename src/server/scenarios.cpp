#include "server/scenarios.h"

namespace asl::server {
namespace {

constexpr std::uint64_t kKeySpace = 1 << 15;
constexpr double kGetRate = 12'000.0;  // interactive stream, requests/sec
constexpr double kPutRate = 4'000.0;   // write stream

// Shared service shape: 4 shards, a big/little worker pair per shard (AMP
// contention on every shard lock), bounded queues sized for burst
// absorption but small enough that sustained overload rejects.
KvServiceConfig base_service() {
  KvServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.workers_per_shard = 2;
  cfg.big_workers = 4;
  cfg.queue_capacity = 512;
  cfg.prefill_keys = kKeySpace;
  cfg.classes.push_back(RequestClass{"kv-get", 1 * kNanosPerMilli});
  cfg.classes.push_back(RequestClass{"kv-put", 4 * kNanosPerMilli});
  return cfg;
}

std::vector<LoadSpec> base_load(const workload::KeyDist& keys,
                                const workload::ArrivalProcess& get_arrivals,
                                const workload::ArrivalProcess& put_arrivals) {
  LoadSpec gets;
  gets.arrivals = get_arrivals;
  gets.keys = keys;
  gets.put_fraction = 0.0;
  gets.class_index = 0;
  gets.seed = 0xA11CE;
  LoadSpec puts;
  puts.arrivals = put_arrivals;
  puts.keys = keys;
  puts.put_fraction = 1.0;
  puts.class_index = 1;
  puts.seed = 0xB0B;
  return {gets, puts};
}

}  // namespace

std::vector<std::string> kv_scenario_names() {
  return {"kv_batch_shed",  "kv_telemetry",    "kv_uniform_bursty",
          "kv_uniform_steady", "kv_zipf_bursty", "kv_zipf_diurnal",
          "kv_zipf_steady"};
}

KvScenario make_kv_scenario(std::string_view name) {
  using workload::ArrivalProcess;
  using workload::KeyDist;

  KvScenario sc;
  sc.name = std::string(name);
  sc.service = base_service();
  sc.horizon = 400 * kNanosPerMilli;

  const KeyDist uniform = KeyDist::uniform(kKeySpace);
  const KeyDist zipf = KeyDist::zipfian(kKeySpace, 0.99);
  const ArrivalProcess get_steady = ArrivalProcess::poisson(kGetRate);
  const ArrivalProcess put_steady = ArrivalProcess::poisson(kPutRate);
  // Bursts multiply the interactive stream ~10x for ~10 ms spells — the
  // flash-crowd pattern bounded queues exist for.
  const ArrivalProcess get_bursty = ArrivalProcess::bursty(
      kGetRate, 10.0, 40 * kNanosPerMilli, 10 * kNanosPerMilli);

  if (name == "kv_uniform_steady") {
    sc.title = "open-loop KV: uniform keys, steady Poisson arrivals";
    sc.load = base_load(uniform, get_steady, put_steady);
  } else if (name == "kv_uniform_bursty") {
    sc.title = "open-loop KV: uniform keys, bursty (MMPP) arrivals";
    sc.load = base_load(uniform, get_bursty, put_steady);
  } else if (name == "kv_zipf_steady") {
    sc.title = "open-loop KV: zipfian keys, steady Poisson arrivals";
    sc.load = base_load(zipf, get_steady, put_steady);
  } else if (name == "kv_zipf_bursty") {
    sc.title = "open-loop KV: zipfian keys, bursty (MMPP) arrivals";
    sc.load = base_load(zipf, get_bursty, put_steady);
  } else if (name == "kv_batch_shed") {
    sc.title =
        "open-loop KV: batched shard drain + class-aware shedding "
        "(uniform keys, steady Poisson)";
    // Same traffic as kv_uniform_steady, but the service drains up to 4
    // requests per shard-lock acquisition and marks the write class
    // sheddable: past half queue depth, puts are rejected so gets keep the
    // queue headroom (DESIGN.md §6). At the nominal rate the watermark is
    // never reached — shedding and rejections only appear under the scaled
    // overloads the TwinShapes tests and the kv_batch_sweep family apply.
    sc.service.batch_k = 4;
    sc.service.classes[1].admission = AdmissionPolicy{1, 0.5};
    sc.load = base_load(uniform, get_steady, put_steady);
  } else if (name == "kv_zipf_diurnal") {
    sc.title = "open-loop KV: zipfian keys, diurnal-ramp arrivals";
    // The interactive rate sweeps trough -> peak -> trough every 200 ms —
    // two compressed "days" over the 400 ms horizon (the ratio survives
    // --time-scale, which compresses period and horizon together).
    sc.load = base_load(
        zipf,
        ArrivalProcess::diurnal(2.0 * kGetRate, 0.2, 200 * kNanosPerMilli),
        put_steady);
  } else if (name == "kv_telemetry") {
    sc.title =
        "open-loop KV: live telemetry over diurnal-ramp arrivals "
        "(time series + span traces)";
    // kv_zipf_diurnal's traffic with the observation pipeline switched on:
    // the 5 ms sampler resolves the 200 ms diurnal period into ~40 points
    // per "day" (trough/peak ordering is the assertable shape), and 1-in-64
    // span tracing exports a Chrome-trace timeline. DESIGN.md §11.
    sc.load = base_load(
        zipf,
        ArrivalProcess::diurnal(2.0 * kGetRate, 0.2, 200 * kNanosPerMilli),
        put_steady);
    sc.service.telemetry.enabled = true;
    sc.service.telemetry.sample_period_ns = 5 * kNanosPerMilli;
    sc.service.telemetry.span_sample_every = 64;
    sc.service.telemetry.span_ring_capacity = 2048;
  }
  return sc;
}

KvScenario make_kv_scenario(std::string_view name, std::string_view engine) {
  KvScenario sc = make_kv_scenario(name);
  sc.service.engine = std::string(engine);
  return sc;
}

KvScenario make_overloaded_kv_scenario(std::string_view name,
                                       double rate_scale, Nanos horizon) {
  KvScenario sc = make_kv_scenario(name);
  sc.horizon = horizon;
  sc.service.queue_capacity = 128;
  // 100x the engine's per-op cost classes (hash default: 40k/10k NOPs, the
  // pre-engine-subsystem overload numbers) — scaling, not overriding, so a
  // non-hash engine's get/put asymmetry survives into the overload runs.
  sc.service.cost_scale = 100.0;
  scale_load_rates(sc.load, rate_scale);
  return sc;
}

}  // namespace asl::server
