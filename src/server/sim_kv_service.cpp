#include "server/sim_kv_service.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>

#include "asl/runtime.h"
#include "server/telemetry.h"
#include "sim/engine.h"

namespace asl::server {
namespace {

// One queued request inside the twin. `at` is the virtual enqueue instant
// (the TracePoint's scheduled arrival — admission is instantaneous, so
// enqueue time equals arrival time, unlike the wall clock where try_submit
// stamps slightly after the scheduled instant).
struct SimRequest {
  std::uint64_t key = 0;
  std::uint32_t class_index = 0;
  bool is_put = false;
  Nanos at = 0;
};

}  // namespace

struct SimKvService::Impl {
  struct Shard {
    std::deque<SimRequest> queue;
    std::unique_ptr<sim::SimLock> lock;
    SimShardStats stats;
    Nanos depth_since = 0;  // last depth-change instant (integral bookkeeping)
  };

  // One worker per simulated core (the twin of pin_workers): same slot
  // assignment rule as KvService — worker w serves shard w % num_shards,
  // the first big_workers slots are big.
  struct Worker {
    std::uint32_t index = 0;
    std::uint32_t shard = 0;
    sim::Core core{};
    sim::SimThread sim{};
    // Per-(worker, class) AIMD controllers — the twin of the real service's
    // thread-local epoch state, seeded by the same seed_config_for_slo rule.
    std::vector<WindowController> controllers;
    bool busy = false;
  };

  struct ClassState {
    RequestClass spec;
    std::size_t depth_limit = 0;  // shed_threshold(spec.admission, capacity)
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  // all bounces (shed included)
    std::uint64_t shed = 0;      // watermark bounces only
    std::uint64_t completed = 0;
    std::uint64_t slo_met = 0;
    LatencySplit total;
    Histogram queue_wait;
  };

  KvServiceConfig config;
  SimTwinConfig twin;
  db::CostProfile cost;  // resolved_cost_profile(config): per-op classes
  Rng rng;
  sim::Engine eng;
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<ClassState> classes;
  LockRouteStats routes;
  std::uint64_t allocs_charged = 0;  // sum of per-op CostProfile allocs
  TraceRecorder* recorder = nullptr;  // not owned; null = no recording
  bool ran = false;
  // Telemetry in virtual time (DESIGN.md §11): the same KvTelemetry the
  // real path folds, single slot (the twin is single-threaded).
  std::unique_ptr<KvTelemetry> telemetry;
  std::vector<std::uint64_t> tick_accepted, tick_shed, tick_depth;
  // Virtual instant of the last *service* event (arrival or work
  // completion). Telemetry ticks are engine events too, but they must not
  // move the reported drain time — drained_at reads this clock, which tick
  // events leave alone, so telemetry on/off cannot perturb the measured
  // tables (the twin-side zero-perturbation contract).
  Nanos work_clock = 0;
  void touch() { work_clock = eng.now(); }

  Impl(KvServiceConfig cfg, SimTwinConfig tw)
      : config(std::move(cfg)), twin(std::move(tw)), rng(twin.seed) {
    if (config.num_shards < 1) config.num_shards = 1;
    if (config.workers_per_shard < 1) config.workers_per_shard = 1;
    // The real path's BoundedQueue clamps capacity to 1; the twin must
    // admit under the same bound or a zero-capacity config would diverge
    // (reject-everything here vs serve-everything there). Same story for
    // batch_k: both paths clamp to [1, kMaxBatch].
    if (config.queue_capacity < 1) config.queue_capacity = 1;
    if (config.batch_k < 1) config.batch_k = 1;
    if (config.batch_k > kMaxBatch) {
      config.batch_k = static_cast<std::uint32_t>(kMaxBatch);
    }
    if (config.classes.empty()) {
      config.classes.push_back(RequestClass{"kv-default", 0});
    }
    // Same per-op cost resolution as the real service (engine registry
    // default unless the config carries an explicit profile, then
    // cost_scale): the twin charges the classes the real path spins.
    cost = resolved_cost_profile(config);
    for (const RequestClass& spec : config.classes) {
      ClassState cs;
      cs.spec = spec;
      // Same precomputed shed depths as KvService: the twin and the real
      // service reject a sheddable class at identical queue depths.
      cs.depth_limit = shed_threshold(spec.admission, config.queue_capacity);
      classes.push_back(std::move(cs));
    }

    shards.reserve(config.num_shards);
    for (std::uint32_t s = 0; s < config.num_shards; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->lock =
          make_sim_lock(twin.lock, &eng, &twin.machine, &rng);
      shards.push_back(std::move(shard));
    }

    const std::uint32_t n = config.num_shards * config.workers_per_shard;
    std::uint32_t num_big = config.big_workers;
    if (num_big == ~0u) num_big = (n + 1) / 2;
    for (std::uint32_t w = 0; w < n; ++w) {
      auto worker = std::make_unique<Worker>();
      worker->index = w;
      worker->shard = w % config.num_shards;
      worker->core.id = w;
      worker->core.type = w < num_big ? CoreType::kBig : CoreType::kLittle;
      worker->core.runnable = 1;
      worker->sim.id = w;
      worker->sim.core = &worker->core;
      for (const RequestClass& spec : config.classes) {
        WindowController::Config ctl;
        if (spec.slo_ns > 0) seed_config_for_slo(ctl, spec.slo_ns);
        worker->controllers.emplace_back(ctl);
      }
      workers.push_back(std::move(worker));
    }

    if (config.telemetry.enabled) {
      telemetry = std::make_unique<KvTelemetry>(config, /*num_slots=*/1);
      tick_accepted.resize(classes.size());
      tick_shed.resize(classes.size());
      tick_depth.resize(shards.size());
    }
  }

  // One virtual-time sampler fold at telemetry time `t` — the twin of
  // KvService::telemetry_tick, reading the Impl counters directly.
  void sample_tick(Nanos t) {
    for (std::size_t c = 0; c < classes.size(); ++c) {
      tick_accepted[c] = classes[c].accepted;
      tick_shed[c] = classes[c].shed;
    }
    for (std::size_t s = 0; s < shards.size(); ++s) {
      tick_depth[s] = shards[s]->queue.size();
    }
    TelemetryTickInputs in;
    in.class_accepted = tick_accepted.data();
    in.class_shed = tick_shed.data();
    in.shard_depth = tick_depth.data();
    in.lock_acquires = routes.get_route_acquires + routes.put_route_acquires;
    in.lockfree_gets = routes.lockfree_gets;
    telemetry->fold_tick(t, in);
  }

  // Pre-posts one tick event per sample period over the arrival window (the
  // drain-instant final tick is collect()'s). Each tick reports *its own*
  // scheduled time, and none of them calls touch() — sampling reads state,
  // never advances the work clock.
  void schedule_ticks(Nanos horizon) {
    if (!telemetry) return;
    const Nanos period = config.telemetry.sample_period_ns < 1
                             ? 1
                             : config.telemetry.sample_period_ns;
    for (Nanos t = period; t <= horizon; t += period) {
      eng.at(t, [this, t] { sample_tick(t); });
    }
  }

  // Per-op cost-class NOPs -> virtual ns under the machine model's
  // asymmetry, floored at 1 ns so zero-cost classes still advance virtual
  // time. The op kind selects the class (DESIGN.md §7) — this is where the
  // old flat cs_nops fold used to live.
  sim::Time cs_time(CoreType type, bool is_put) const {
    // The per-op allocation charge (allocs * alloc_ns, DESIGN.md §9) rides
    // on the op's service segment and stretches with the same slowdown the
    // segment runs under: the allocation happens inside the engine call.
    // With the default alloc_ns = 0.0 this term vanishes and the formula is
    // the historic NOP fold.
    const double ns = (static_cast<double>(cost.op(is_put).cs_nops) *
                           twin.nop_ns +
                       static_cast<double>(cost.op(is_put).allocs) *
                           twin.alloc_ns) *
                      twin.machine.cs_slowdown(type);
    return ns < 1.0 ? sim::Time{1} : static_cast<sim::Time>(ns);
  }
  sim::Time post_time(CoreType type, bool is_put) const {
    const double ns = static_cast<double>(cost.op(is_put).post_nops) *
                      twin.nop_ns * twin.machine.ncs_slowdown(type);
    return ns < 1.0 ? sim::Time{1} : static_cast<sim::Time>(ns);
  }
  // Lock-free get service time (DESIGN.md §8): the get class's cs_nops are
  // still the latency-visible read, but they run off-lock at non-CS speed —
  // the twin of the real worker's scale_ncs spin on the lock-free route.
  // The get class's allocation charge moves off-lock with it.
  sim::Time lockfree_get_time(CoreType type) const {
    const double ns = (static_cast<double>(cost.get.cs_nops) * twin.nop_ns +
                       static_cast<double>(cost.get.allocs) * twin.alloc_ns) *
                      twin.machine.ncs_slowdown(type);
    return ns < 1.0 ? sim::Time{1} : static_cast<sim::Time>(ns);
  }

  void flush_depth(Shard& shard) {
    shard.stats.depth_integral +=
        static_cast<std::uint64_t>(shard.queue.size()) *
        (eng.now() - shard.depth_since);
    shard.depth_since = eng.now();
  }

  // Admission at arrival time. Returns the decision taken (the replay path
  // compares it against the recorded one) and, when a recorder is attached,
  // captures the arrival + decision + route before any queue/worker state
  // moves — so recorded order is exactly virtual processing order.
  TraceDecision arrive(std::uint32_t shard_index, const SimRequest& req) {
    touch();
    Shard& shard = *shards[shard_index];
    ClassState& cls = classes[req.class_index];
    // Mirror of BoundedQueue::try_push_below: capacity exhaustion first,
    // then the class watermark — a shed is counted only when the queue
    // still had room.
    TraceDecision decision = TraceDecision::kAdmit;
    if (shard.queue.size() >= config.queue_capacity) {
      decision = TraceDecision::kReject;
    } else if (shard.queue.size() >= cls.depth_limit) {
      decision = TraceDecision::kShed;
    }
    if (recorder != nullptr) {
      recorder->on_arrival(req.at, req.class_index, req.is_put, req.key,
                           decision, shard_index);
    }
    if (decision == TraceDecision::kReject) {
      cls.rejected += 1;
      shard.stats.rejected += 1;
      return decision;
    }
    if (decision == TraceDecision::kShed) {
      cls.shed += 1;
      cls.rejected += 1;
      shard.stats.rejected += 1;
      shard.stats.shed += 1;
      return decision;
    }
    flush_depth(shard);
    shard.queue.push_back(req);
    cls.accepted += 1;
    shard.stats.accepted += 1;
    shard.stats.max_depth =
        std::max<std::uint64_t>(shard.stats.max_depth, shard.queue.size());
    // Kick the lowest-index idle worker of this shard (the twin's stand-in
    // for whichever blocked popper the OS would wake first).
    for (auto& worker : workers) {
      if (worker->shard == shard_index && !worker->busy) {
        dispatch(*worker);
        break;
      }
    }
    return decision;
  }

  // One claimed batch member: the request plus its queue wait, frozen at
  // the instant a worker took charge of it (pop time), mirroring the real
  // path's per-request wait measurement.
  struct Pending {
    SimRequest req;
    Nanos wait = 0;
  };

  void dispatch(Worker& worker) {
    Shard& shard = *shards[worker.shard];
    worker.busy = true;
    flush_depth(shard);
    const SimRequest head = shard.queue.front();
    shard.queue.pop_front();
    const Nanos head_wait = eng.now() - head.at;

    if (cost.get_lock_free && !head.is_put) {
      // Lock-free get route — the twin of the real worker's solo off-lock
      // serve: no simulated acquisition, no batch extension, no dispatch-
      // window decision (there is no lock to reorder around). The read
      // occupies the worker for lockfree_get_time, then the usual
      // accounting / feedback / post-op sequence runs at the same joints
      // as a one-request locked batch.
      routes.lockfree_gets += 1;
      allocs_charged += cost.get.allocs;
      eng.after(lockfree_get_time(worker.core.type),
                [this, &worker, &shard, head, head_wait] {
        touch();
        ClassState& cls = classes[head.class_index];
        const Nanos total = eng.now() - head.at;
        cls.completed += 1;
        shard.stats.completed += 1;
        if (cls.spec.slo_ns == 0 || total <= cls.spec.slo_ns) {
          cls.slo_met += 1;
        }
        cls.total.record(worker.core.type, total);
        cls.queue_wait.record(head_wait);
        if (telemetry) telemetry->on_complete(0, head.class_index, total);
        if (cls.spec.slo_ns > 0 &&
            DispatchPolicy::updates_window(worker.core.type)) {
          worker.controllers[head.class_index].on_epoch_end(total,
                                                            cls.spec.slo_ns);
        }
        eng.after(post_time(worker.core.type, /*is_put=*/false),
                  [this, &worker, &shard] {
          touch();
          if (!shard.queue.empty()) {
            dispatch(worker);
          } else {
            worker.busy = false;
          }
        });
      });
      return;
    }
    (head.is_put ? routes.put_route_acquires : routes.get_route_acquires) +=
        1;

    // The real worker wraps the shard critical section in epoch_start /
    // epoch_end_with_latency; the twin consumes the same DispatchPolicy and
    // WindowController directly (sim_runner precedent — the feedback loop is
    // production code, only the clock is virtual). As on the real path, the
    // *head* request's class window governs the one dispatch decision the
    // whole batch shares (DESIGN.md §6).
    ClassState& cls = classes[head.class_index];
    WindowController& ctl = worker.controllers[head.class_index];
    const std::uint64_t window = cls.spec.slo_ns > 0
                                     ? ctl.window()
                                     : DispatchPolicy::no_epoch_window();
    const LockPlan plan = DispatchPolicy::plan(worker.core.type, window);
    const Nanos lock_req_at = eng.now();
    shard.lock->acquire(
        &worker.sim,
        plan.immediate ? sim::AcquireMode::kImmediate
                       : sim::AcquireMode::kReorder,
        plan.window_ns,
        [this, &worker, &shard, head, head_wait, lock_req_at] {
          touch();
          const Nanos acquired_at = eng.now();
          if (telemetry) telemetry->on_lock_wait(0, acquired_at - lock_req_at);
          // Batch extension at acquisition time — the twin of the real
          // worker's try_pop loop after lock.lock(): requests already
          // waiting when the lock was won ride along, one simulated lock
          // handoff amortized over all of them. Per-op engine cost is still
          // paid per request (serve_segment), so batching saves handoffs,
          // never work.
          auto batch = std::make_shared<std::vector<Pending>>();
          batch->push_back(Pending{head, head_wait});
          while (batch->size() < config.batch_k && !shard.queue.empty()) {
            flush_depth(shard);
            const SimRequest req = shard.queue.front();
            shard.queue.pop_front();
            batch->push_back(Pending{req, eng.now() - req.at});
          }
          if (recorder != nullptr) {
            // One histogram bucket per acquisition: summed over buckets,
            // batch counts equal the route acquire counters (lock-free solo
            // gets acquire nothing and are not batches).
            recorder->on_batch(worker.shard,
                               static_cast<std::uint32_t>(batch->size()));
          }
          std::size_t cs_count = batch->size();
          if (cost.get_lock_free) {
            // Mixed put-headed batch on the lock-free route: puts run
            // first, inside the CS, gets are deferred past the release —
            // the same stable puts-then-gets reorder the real worker's two
            // serving passes produce (each group keeps pop order; waits
            // were frozen at pop time above, so the reorder only changes
            // *service* order).
            std::stable_partition(
                batch->begin(), batch->end(),
                [](const Pending& p) { return p.req.is_put; });
            cs_count = static_cast<std::size_t>(std::count_if(
                batch->begin(), batch->end(),
                [](const Pending& p) { return p.req.is_put; }));
          }
          serve_segment(worker, shard, batch, 0, cs_count, acquired_at);
        });
  }

  // Serves batch member i: one service segment for *its* op kind, then that
  // request's accounting and controller feedback at the segment's end —
  // later batch members see the work ahead of them in their measured
  // latency, exactly like the real path. Members below cs_count run inside
  // the critical section at cs_time; the lock is released after the last of
  // them, and members past cs_count (deferred lock-free gets — only on a
  // get_lock_free profile, where cs_count is the batch's put count) run
  // off-lock at lockfree_get_time. Then each served request's own post-op
  // interval elapses before the worker re-dispatches or idles.
  void serve_segment(Worker& worker, Shard& shard,
                     const std::shared_ptr<std::vector<Pending>>& batch,
                     std::size_t i, std::size_t cs_count, Nanos acquired_at) {
    const bool in_cs = i < cs_count;
    const sim::Time span = in_cs
                               ? cs_time(worker.core.type, (*batch)[i].req.is_put)
                               : lockfree_get_time(worker.core.type);
    if (!in_cs) routes.lockfree_gets += 1;
    if (in_cs && !(*batch)[i].req.is_put) routes.cs_gets += 1;
    // Ledger entry regardless of alloc_ns: the count is the twin-side
    // assertion surface for the zero-allocation contract (DESIGN.md §9).
    allocs_charged +=
        in_cs ? cost.op((*batch)[i].req.is_put).allocs : cost.get.allocs;
    eng.after(span, [this, &worker, &shard, batch, i, cs_count, acquired_at] {
      touch();
      const Pending& served = (*batch)[i];
      ClassState& cls = classes[served.req.class_index];
      const Nanos total = eng.now() - served.req.at;
      cls.completed += 1;
      shard.stats.completed += 1;
      if (cls.spec.slo_ns == 0 || total <= cls.spec.slo_ns) {
        cls.slo_met += 1;
      }
      cls.total.record(worker.core.type, total);
      cls.queue_wait.record(served.wait);
      if (telemetry) telemetry->on_complete(0, served.req.class_index, total);
      if (cls.spec.slo_ns > 0 &&
          DispatchPolicy::updates_window(worker.core.type)) {
        worker.controllers[served.req.class_index].on_epoch_end(
            total, cls.spec.slo_ns);
      }
      // Release at the CS boundary: after the last critical-section member,
      // whether or not deferred off-lock gets follow (when cs_count ==
      // batch size this is the historic release-after-last-segment).
      if (i + 1 == cs_count) {
        if (telemetry) telemetry->on_lock_hold(0, eng.now() - acquired_at);
        shard.lock->release(&worker.sim);
      }
      if (i + 1 < batch->size()) {
        serve_segment(worker, shard, batch, i + 1, cs_count, acquired_at);
        return;
      }
      // One post-op interval per served request, each priced by its own op
      // class — the twin of the real path's per-request post spin.
      sim::Time post = 0;
      for (const Pending& p : *batch) {
        post += post_time(worker.core.type, p.req.is_put);
      }
      eng.after(post, [this, &worker, &shard] {
        touch();
        if (!shard.queue.empty()) {
          dispatch(worker);
        } else {
          worker.busy = false;
        }
      });
    });
  }

  // Snapshot after run_all(): per-class reports, shard stats, routes, the
  // allocation ledger — shared verbatim by run() and replay() so both
  // emit byte-identical tables for identical executions.
  void collect(SimServiceReport& report) {
    // work_clock, not eng.now(): the last service event defines the drain
    // instant. With telemetry off they are the same clock; with telemetry on
    // a trailing tick event past the drain must not move it.
    report.drained_at = work_clock;
    if (telemetry) {
      // The final tick, at the drain instant — the virtual-time twin of the
      // real Sampler's stop()-time fold: it observes empty queues and final
      // counters, so "the sampler sees zero after drain" holds here too.
      sample_tick(work_clock);
      report.telemetry = telemetry->log();
    }
    for (auto& shard : shards) flush_depth(*shard);
    for (const ClassState& cs : classes) {
      ClassReport c;
      c.name = cs.spec.name;
      c.epoch_id = -1;  // the twin does not touch the global EpochRegistry
      c.slo_ns = cs.spec.slo_ns;
      c.accepted = cs.accepted;
      c.rejected = cs.rejected;
      c.shed = cs.shed;
      c.completed = cs.completed;
      c.slo_met = cs.slo_met;
      c.total = cs.total;
      c.queue_wait = cs.queue_wait;
      report.service.classes.push_back(std::move(c));
    }
    for (const auto& shard : shards) {
      report.shards.push_back(shard->stats);
    }
    report.lock_routes = routes;
    report.allocs_charged = allocs_charged;
  }
};

SimKvService::SimKvService(KvServiceConfig config, SimTwinConfig twin)
    : impl_(new Impl(std::move(config), std::move(twin))) {}

SimKvService::~SimKvService() { delete impl_; }

std::uint32_t SimKvService::shard_of(std::uint64_t key) const {
  return shard_for_key(key, impl_->config.num_shards);
}

const KvServiceConfig& SimKvService::config() const { return impl_->config; }

SimServiceReport SimKvService::run(const std::vector<LoadSpec>& load,
                                   Nanos horizon) {
  SimServiceReport report;
  report.horizon = horizon;
  if (impl_->ran) return report;  // single-shot, like one start/stop cycle
  impl_->ran = true;

  // Pre-generate every schedule with the same pure function the wall-clock
  // generator replays, then post arrivals as engine events. Specs aimed at
  // unknown classes offer nothing (run_open_loop's rule).
  for (const LoadSpec& spec : load) {
    if (spec.class_index >= impl_->classes.size()) continue;
    for (const TracePoint& p : generate_trace(spec, horizon)) {
      SimRequest req;
      req.key = p.key;
      req.class_index = spec.class_index;
      req.is_put = p.is_put;
      req.at = p.at;
      report.offered += 1;
      impl_->eng.at(p.at, [this, req] {
        impl_->arrive(shard_of(req.key), req);
      });
    }
  }

  impl_->schedule_ticks(horizon);

  // Drain completely: arrivals stop at the horizon, workers run the queues
  // dry — the virtual-time equivalent of stop()'s close-then-drain, so
  // completed == accepted holds exactly on return.
  impl_->eng.run_all();
  impl_->collect(report);
  return report;
}

void SimKvService::record_to(TraceRecorder* recorder) {
  impl_->recorder = recorder;
}

SimReplayReport SimKvService::replay(const RecordedTrace& trace) {
  SimReplayReport rr;
  rr.report.horizon = trace.meta.horizon;
  if (impl_->ran) return rr;  // single-shot, like run()
  impl_->ran = true;

  // Schedule the recorded stream in record order. Recorded order is the
  // original run's processing order ((time, insertion) — sim/engine.h), so
  // inserting in that order preserves both the time order and the original
  // FIFO tie-breaks among equal timestamps: the replayed event sequence is
  // the original one, which is what makes the tables byte-identical under
  // the recorded config. Records aimed at classes this config lacks are
  // skipped, mirroring run()'s unknown-class rule.
  for (const TraceRecord& rec : trace.records) {
    if (rec.class_index >= impl_->classes.size()) {
      rr.skipped += 1;
      continue;
    }
    SimRequest req;
    req.key = rec.key;
    req.class_index = rec.class_index;
    req.is_put = rec.is_put;
    req.at = rec.at;
    rr.report.offered += 1;
    impl_->eng.at(rec.at, [this, req, rec, &rr] {
      // Routing is always recomputed from the key: under the recorded
      // config it reproduces the recorded shard (shared shard_for_key
      // rule); under a changed shard count the divergence counter says how
      // much of the recorded routing no longer applies.
      const std::uint32_t shard = shard_of(req.key);
      if (shard != rec.shard) rr.shard_divergence += 1;
      const TraceDecision live = impl_->arrive(shard, req);
      if (live != rec.decision) rr.decision_divergence += 1;
    });
  }

  impl_->schedule_ticks(trace.meta.horizon);

  impl_->eng.run_all();
  impl_->collect(rr.report);
  return rr;
}

SimServiceReport run_sim_kv(const KvScenario& scenario,
                            const SimTwinConfig& twin) {
  SimKvService service(scenario.service, twin);
  return service.run(scenario.load, scenario.horizon);
}

RecordedTrace record_sim_kv(const KvScenario& scenario,
                            const SimTwinConfig& twin,
                            SimServiceReport* report_out) {
  SimKvService service(scenario.service, twin);
  TraceRecorder recorder;
  service.record_to(&recorder);
  const SimServiceReport report = service.run(scenario.load, scenario.horizon);

  TraceMeta meta;
  if (!scenario.name.empty()) meta.scenario = scenario.name;
  meta.engine = service.config().engine;
  meta.horizon = scenario.horizon;
  meta.num_shards = service.config().num_shards;
  meta.twin_seed = twin.seed;
  meta.real_path = false;
  for (const RequestClass& cls : service.config().classes) {
    meta.class_names.push_back(cls.name);
  }
  for (const LoadSpec& spec : scenario.load) {
    meta.seeds.push_back(TraceMeta::SpecSeed{spec.class_index, spec.seed});
  }
  if (report_out != nullptr) *report_out = report;
  return recorder.finish(std::move(meta), report.lock_routes);
}

SimReplayReport replay_sim_kv(const RecordedTrace& trace,
                              const KvServiceConfig& config,
                              const SimTwinConfig& twin) {
  SimKvService service(config, twin);
  return service.replay(trace);
}

TraceAccounting sim_trace_accounting(const SimServiceReport& report) {
  TraceAccounting acc;
  for (const ClassReport& c : report.service.classes) {
    TraceClassTotals t;
    t.name = c.name;
    t.accepted = c.accepted;
    t.rejected = c.rejected;
    t.shed = c.shed;
    acc.classes.push_back(std::move(t));
  }
  for (const SimShardStats& s : report.shards) {
    acc.shards.push_back(TraceShardTotals{s.accepted, s.rejected, s.shed});
  }
  acc.routes = report.lock_routes;
  return acc;
}

Table sim_kv_measured_table(const SimServiceReport& report) {
  // All-integer cells (virtual ns): byte-identical across runs and the
  // anchor of the twin's determinism + golden-trace tests.
  Table table({"class", "slo_us", "offered", "accepted", "rejected", "shed",
               "completed", "slo_met", "mean_ns", "p50_ns", "p99_ns",
               "p99_big_ns", "p99_little_ns", "qwait_p99_ns"});
  for (const ClassReport& c : report.service.classes) {
    table.add_row(
        {c.name, std::to_string(c.slo_ns / kNanosPerMicro),
         std::to_string(c.accepted + c.rejected), std::to_string(c.accepted),
         std::to_string(c.rejected), std::to_string(c.shed),
         std::to_string(c.completed), std::to_string(c.slo_met),
         std::to_string(
             static_cast<std::uint64_t>(c.total.overall().mean())),
         std::to_string(c.total.overall().p50()),
         std::to_string(c.total.overall().p99()),
         std::to_string(c.total.p99_big()),
         std::to_string(c.total.p99_little()),
         std::to_string(c.queue_wait.p99())});
  }
  return table;
}

Table sim_kv_shard_table(const SimServiceReport& report) {
  // mean_depth_milli = time-averaged queue depth * 1000 (integer cell).
  const std::uint64_t span = report.drained_at > 0 ? report.drained_at : 1;
  Table table({"shard", "accepted", "rejected", "shed", "completed",
               "max_depth", "mean_depth_milli"});
  for (std::size_t s = 0; s < report.shards.size(); ++s) {
    const SimShardStats& st = report.shards[s];
    table.add_row({std::to_string(s), std::to_string(st.accepted),
                   std::to_string(st.rejected), std::to_string(st.shed),
                   std::to_string(st.completed), std::to_string(st.max_depth),
                   std::to_string(st.depth_integral * 1000 / span)});
  }
  return table;
}

Table sim_kv_telemetry_table(const SimServiceReport& report) {
  // Long-form {series, t_ns, value}: integer virtual-ns cells plus the
  // series name — byte-identical across runs, goldenable.
  return report.telemetry.table();
}

}  // namespace asl::server
