// KvTelemetry — the service-side telemetry bundle (DESIGN.md §11): one
// metrics registry + one time-series log + one span tracer, wired to the
// KV service's schema.
//
// Split of responsibilities with the service:
//   * the *hot path* calls on_complete / on_lock_wait / on_lock_hold —
//     each is one or two relaxed atomic RMWs into the registry's per-slot
//     cells (wait-free, allocation-free; the telemetry-on kv_alloc_audit
//     zero depends on it);
//   * the *sampler* (a real thread on the real path, virtual-time tick
//     events on the twin) calls fold_tick with a TelemetryTickInputs
//     snapshot of the counters the service already owns (admission,
//     queue depths, lock routes) — fold_tick sums the registry slots,
//     computes windowed p99s from per-tick bucket deltas, and appends one
//     point per series. All fold scratch is preallocated here, so a tick
//     never allocates either.
//
// Series schema (canonical order, identical on the real path and the twin
// so the twin's virtual-time CSV is goldenable against this layout):
//   per class c:  class.<name>.accepted   (cumulative)
//                 class.<name>.completed  (cumulative)
//                 class.<name>.shed       (cumulative)
//                 class.<name>.p99_ns     (end-to-end p99 of THIS tick's
//                                          completions; 0 on an idle tick)
//   per shard s:  shard.<s>.depth         (instantaneous queue depth)
//   then:         lock.acquires           (cumulative, both routes)
//                 lock.wait_p99_ns        (windowed, shard-lock wait)
//                 lock.hold_p99_ns        (windowed, shard-lock hold)
//                 routes.lockfree_gets    (cumulative)
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/span_tracer.h"
#include "obs/timeseries_log.h"
#include "platform/time.h"

namespace asl::server {

struct KvServiceConfig;

// One sampler fold's view of the counters the *service* owns (the registry
// covers only what workers record directly). Pointers refer to the caller's
// preallocated scratch, valid for the duration of the fold_tick call.
struct TelemetryTickInputs {
  const std::uint64_t* class_accepted = nullptr;  // [num_classes]
  const std::uint64_t* class_shed = nullptr;      // [num_classes]
  const std::uint64_t* shard_depth = nullptr;     // [num_shards]
  std::uint64_t lock_acquires = 0;
  std::uint64_t lockfree_gets = 0;
};

class KvTelemetry {
 public:
  // Builds and freezes the whole pipeline for `config` (post-clamping, so
  // classes is non-empty) with `num_slots` writer identities. Every
  // allocation the telemetry layer will ever make happens here.
  KvTelemetry(const KvServiceConfig& config, std::uint32_t num_slots);
  KvTelemetry(const KvTelemetry&) = delete;
  KvTelemetry& operator=(const KvTelemetry&) = delete;

  // --- hot path (worker threads; wait-free, allocation-free) -------------
  void on_complete(std::uint32_t slot, std::uint32_t class_index,
                   Nanos latency_ns) {
    registry_.add(class_completed_[class_index], slot, 1);
    registry_.observe(class_latency_[class_index], slot,
                      static_cast<std::uint64_t>(latency_ns));
  }
  void on_lock_wait(std::uint32_t slot, Nanos wait_ns) {
    registry_.observe(lock_wait_, slot, static_cast<std::uint64_t>(wait_ns));
  }
  void on_lock_hold(std::uint32_t slot, Nanos hold_ns) {
    registry_.observe(lock_hold_, slot, static_cast<std::uint64_t>(hold_ns));
  }

  // --- sampler side ------------------------------------------------------
  // Appends one point to every series at time `t` (ns on the telemetry time
  // axis — wall-clock-since-start() on the real path, virtual time on the
  // twin). Single-threaded by contract: the real Sampler serializes its
  // ticks, the twin is single-threaded by construction.
  void fold_tick(Nanos t, const TelemetryTickInputs& in);

  std::uint64_t ticks() const { return ticks_; }
  const obs::TimeSeriesLog& log() const { return log_; }
  const obs::SpanTracer& tracer() const { return tracer_; }
  obs::SpanTracer& tracer() { return tracer_; }
  const obs::MetricsRegistry& registry() const { return registry_; }

 private:
  // p99 over one tick's worth of a histogram metric: fold the registry's
  // buckets, diff against the previous tick's fold, quantile the delta.
  std::uint64_t windowed_p99(std::size_t hist_index, obs::MetricId id);

  obs::MetricsRegistry registry_;
  obs::TimeSeriesLog log_;
  obs::SpanTracer tracer_;

  // Registry metric ids (what workers record).
  std::vector<obs::MetricId> class_completed_;  // counter per class
  std::vector<obs::MetricId> class_latency_;    // histogram per class
  obs::MetricId lock_wait_ = 0;                 // histogram
  obs::MetricId lock_hold_ = 0;                 // histogram

  // Series ids, in schema order.
  std::vector<obs::TimeSeriesLog::SeriesId> s_class_accepted_;
  std::vector<obs::TimeSeriesLog::SeriesId> s_class_completed_;
  std::vector<obs::TimeSeriesLog::SeriesId> s_class_shed_;
  std::vector<obs::TimeSeriesLog::SeriesId> s_class_p99_;
  std::vector<obs::TimeSeriesLog::SeriesId> s_shard_depth_;
  obs::TimeSeriesLog::SeriesId s_lock_acquires_ = 0;
  obs::TimeSeriesLog::SeriesId s_lock_wait_p99_ = 0;
  obs::TimeSeriesLog::SeriesId s_lock_hold_p99_ = 0;
  obs::TimeSeriesLog::SeriesId s_lockfree_gets_ = 0;

  // Fold scratch, preallocated: cur_/delta_ are one histogram's buckets,
  // prev_ snapshots every histogram metric's previous fold (class latencies
  // first, then lock wait, then lock hold — indexed by hist_index).
  std::vector<std::uint64_t> cur_;
  std::vector<std::uint64_t> delta_;
  std::vector<std::uint64_t> prev_;
  std::uint64_t ticks_ = 0;
};

}  // namespace asl::server
