// SimKvService — the deterministic twin of the real KV service (DESIGN.md
// §5).
//
// The real service (kv_service.h) can only be *accounted* in CI: wall-clock
// latency on a noisy runner is not assertable. The twin runs the same
// shard/queue/admission semantics on the discrete-event engine (src/sim/),
// with service costs drawn from the AMP machine model (sim/core_model.h), so
// every scenario produces one byte-reproducible measured table — queueing
// shapes (latency vs offered load, rejection onset, hot-shard skew) become
// regression-testable facts instead of wall-clock luck.
//
// Fidelity contract (what the twin models vs elides) is written out in
// DESIGN.md §5; the short version:
//   * modeled: shard routing (shard_for_key), bounded-queue admission with
//     counted rejections, class-aware shedding at the same shed_threshold
//     depths as the real queue (sheds counted per class and per shard),
//     batch_k drain — one simulated lock handoff per batch, per-op engine
//     cost per request, acquisition window from the head request's class —
//     big/little worker slots (same assignment rule as KvService), the
//     shard lock as the simulated Bench-6 substrate
//     (LockKind::kBlockingReorderable by default), ASL dispatch + AIMD
//     feedback via the production DispatchPolicy/WindowController driven by
//     virtual end-to-end latencies (per batch member, at the end of its own
//     critical-section segment), the lock-free get route (a get_lock_free
//     profile serves gets with no lock acquisition at all — service time is
//     the get class's cs_nops under the *non*-CS slowdown, the twin of the
//     real worker's off-lock scale_ncs spin; puts in a mixed batch run
//     first, inside the CS, with the deferred gets following the release in
//     pop order — DESIGN.md §8), and the drain-on-stop invariant
//     (completed == accepted).
//   * elided: the engine's data structures (no keys are stored; service
//     cost is the engine's per-op CostProfile — resolved_cost_profile, the
//     same classes the real worker spins — under the machine model's
//     big/little slowdowns, DESIGN.md §7), the EpochRegistry (the twin
//     drives the
//     controller/dispatch classes directly, like sim_runner does), OS
//     scheduling of generator threads (arrivals fire exactly on schedule),
//     and worker wake ordering (the lowest-index idle worker of a shard
//     serves next; the real pop order is OS-dependent).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/timeseries_log.h"
#include "server/kv_service.h"
#include "server/scenarios.h"
#include "sim/core_model.h"
#include "sim/sim_lock.h"
#include "stats/table.h"
#include "workload/open_loop.h"
#include "workload/trace.h"

namespace asl::server {

// Twin-only knobs: the machine model supplying service-cost asymmetry and
// lock-handover costs, plus the NOP calibration tying the resolved per-op
// CostProfile's classes to virtual time.
struct SimTwinConfig {
  sim::MachineParams machine{};
  // Shard-lock model. The real service uses BlockingAslMutex (Bench-6), so
  // the blocking reorderable simulated lock is the faithful default.
  sim::LockKind lock = sim::LockKind::kBlockingReorderable;
  // Virtual ns per emulated NOP on a big core (experiment.h's "1 NOP ~
  // 0.4 ns" calibration); little cores stretch by the machine slowdowns.
  double nop_ns = 0.4;
  // Virtual ns per steady-state heap allocation (the CostProfile's per-op
  // `allocs` count, DESIGN.md §9), charged on the op's service segment.
  // Defaults to 0.0 — the allocation *count* is always tracked in the
  // report, but it only bends virtual time when a scenario opts in (e.g.
  // to model allocator contention at scale), which keeps the checked-in
  // goldens byte-identical. ~25 ns is a reasonable malloc/free round trip
  // on the reference host if fidelity to a pre-arena build is wanted.
  double alloc_ns = 0.0;
  // Seeds the simulated lock's tie-breaking randomness (barge races, grant
  // penalties) — part of the twin's deterministic identity.
  std::uint64_t seed = 42;
};

// Per-shard queueing statistics — the observable the hot-shard-skew shape
// tests assert on. depth_integral is the time integral of the queue depth
// (ns · waiting requests): divided by the run length it is the mean depth,
// and its spread across shards exposes zipfian hot shards. `shed` is the
// subset of `rejected` bounced by a class watermark rather than a full
// queue (kv_service.h AdmissionPolicy), localizing which shards ran hot
// enough to trigger shedding.
struct SimShardStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t max_depth = 0;
  std::uint64_t depth_integral = 0;
};

// Everything one twin run measures. Conservation on return from run():
// offered == total_accepted() + total_rejected() and total_completed() ==
// total_accepted(), exactly — the twin's drain is unconditional.
struct SimServiceReport {
  // Same per-class shape as the real path (ClassReport latencies are virtual
  // ns here; epoch_id is -1 — the twin does not touch the global registry).
  ServiceReport service;
  std::vector<SimShardStats> shards;
  std::uint64_t offered = 0;  // scheduled arrivals across every LoadSpec
  Nanos horizon = 0;     // arrival window
  Nanos drained_at = 0;  // virtual time the last queued request finished
  // Route accounting (kv_service.h LockRouteStats): on a get_lock_free
  // profile the twin, like the real path, serves every get without a
  // simulated lock acquisition — get_route_acquires == 0 and cs_gets == 0
  // is the assertable twin half of the lock-free contract (DESIGN.md §8).
  LockRouteStats lock_routes;
  // Heap-allocation budget the run charged: sum over completed ops of their
  // class's CostProfile allocs count (DESIGN.md §9). Zero for hash/btree/
  // mvcc configs — the twin's ledger of the real path's zero-allocation
  // contract — and completed * per-op count for lsm.
  std::uint64_t allocs_charged = 0;
  // Telemetry time series sampled in virtual time (DESIGN.md §11): the same
  // schema KvTelemetry emits on the real path, one tick per
  // telemetry.sample_period_ns over the horizon plus one final tick at the
  // drain instant. Empty unless config.telemetry.enabled. Byte-deterministic
  // like every other twin observable — sim_kv_telemetry_table is goldenable.
  obs::TimeSeriesLog telemetry;

  std::uint64_t total_accepted() const { return service.total_accepted(); }
  std::uint64_t total_rejected() const { return service.total_rejected(); }
  std::uint64_t total_completed() const { return service.total_completed(); }
};

// A trace replayed through a fresh twin (DESIGN.md §10). The divergence
// counters compare each record's *live* re-decision against what the
// recording captured: replaying under the recorded config they are all
// zero (same admission state machine, same event order — that is the
// byte-determinism contract the golden trace test pins); replaying under a
// changed config (the A/B harness) they measure exactly how many requests
// the policy change re-decided. Counters and tables always reflect the
// live decisions, never the recorded ones.
struct SimReplayReport {
  SimServiceReport report;
  std::uint64_t decision_divergence = 0;  // live admit/shed/reject differed
  std::uint64_t shard_divergence = 0;     // live route differed (config change)
  std::uint64_t skipped = 0;  // records aimed at classes this config lacks

  // True when the replay re-took every recorded decision identically.
  bool exact() const {
    return decision_divergence == 0 && shard_divergence == 0 && skipped == 0;
  }
};

class SimKvService {
 public:
  explicit SimKvService(KvServiceConfig config, SimTwinConfig twin = {});
  ~SimKvService();
  SimKvService(const SimKvService&) = delete;
  SimKvService& operator=(const SimKvService&) = delete;

  // Replays every spec's offered schedule (the same generate_trace the real
  // generator replays) over [0, horizon) virtual ns, then drains: on return
  // completed == accepted per class, exactly. Single-shot — one run per
  // instance, like one start()/stop() cycle of the real service.
  SimServiceReport run(const std::vector<LoadSpec>& load, Nanos horizon);

  // Feeds a recorded trace's offered stream back through the twin instead
  // of generating one. Records are scheduled in recorded order, which is
  // the original run's processing order — the engine executes events by
  // (time, insertion) order, so the replayed event sequence, and therefore
  // the measured/shard tables, are byte-identical to the recording run's
  // when the config and twin seed match. Single-shot, like run().
  SimReplayReport replay(const RecordedTrace& trace);

  // Attach a recorder before run()/replay(): every arrival's admission
  // decision + shard route and every lock acquisition's batch size are
  // captured. Not owned; must outlive the run. The twin is single-threaded,
  // so recorded order is exactly virtual processing order.
  void record_to(TraceRecorder* recorder);

  // Identical mapping to KvService::shard_of (shared shard_for_key rule).
  std::uint32_t shard_of(std::uint64_t key) const;

  // The effective configuration after the same clamping KvService applies
  // (queue capacity >= 1, batch_k in [1, kMaxBatch], default class).
  const KvServiceConfig& config() const;

 private:
  struct Impl;
  Impl* impl_;
};

// Convenience: the twin of a whole scenario (service config + load +
// horizon), as registered in server/scenarios.*.
SimServiceReport run_sim_kv(const KvScenario& scenario,
                            const SimTwinConfig& twin = {});

// Records one twin run of `scenario`: runs it with a recorder attached and
// returns the finished trace (meta filled from the scenario + twin,
// seed provenance from the load specs). The run's own report lands in
// `*report_out` when non-null — its tables are the byte-identity reference
// a replay of the returned trace must reproduce.
RecordedTrace record_sim_kv(const KvScenario& scenario,
                            const SimTwinConfig& twin = {},
                            SimServiceReport* report_out = nullptr);

// Replays a recorded trace through a fresh twin under `config` — the
// recording's config for determinism checks, a deliberately changed one
// for policy A/Bs. Pass the trace's own twin_seed (in `twin`) to reproduce
// the recorded lock randomness.
SimReplayReport replay_sim_kv(const RecordedTrace& trace,
                              const KvServiceConfig& config,
                              const SimTwinConfig& twin = {});

// A twin report's accounting in the trace's shape (class/shard totals +
// route counters; the batch histogram lives only in recordings) — the
// right-hand side of accounting_counts_match against a trace's recorded
// accounting.
TraceAccounting sim_trace_accounting(const SimServiceReport& report);

// Byte-reproducible tables (all-integer cells, virtual ns): the measured
// per-class table the determinism/golden tests compare, and the per-shard
// depth table the skew tests read.
Table sim_kv_measured_table(const SimServiceReport& report);
Table sim_kv_shard_table(const SimServiceReport& report);
// The twin's telemetry time series as the long-form {series, t_ns, value}
// table (empty when telemetry was disabled) — the golden-checked CSV shape.
Table sim_kv_telemetry_table(const SimServiceReport& report);

}  // namespace asl::server
