#include "server/telemetry.h"

#include "server/kv_service.h"
#include "stats/histogram.h"

namespace asl::server {

KvTelemetry::KvTelemetry(const KvServiceConfig& config,
                         std::uint32_t num_slots)
    : registry_(num_slots),
      tracer_(num_slots, config.telemetry.span_ring_capacity,
              config.telemetry.span_sample_every) {
  const std::size_t num_classes = config.classes.size();
  const std::size_t num_shards = config.num_shards;
  const std::size_t cap = config.telemetry.max_ticks;

  class_completed_.reserve(num_classes);
  class_latency_.reserve(num_classes);
  s_class_accepted_.reserve(num_classes);
  s_class_completed_.reserve(num_classes);
  s_class_shed_.reserve(num_classes);
  s_class_p99_.reserve(num_classes);
  s_shard_depth_.reserve(num_shards);

  for (const RequestClass& c : config.classes) {
    class_completed_.push_back(registry_.counter("class." + c.name +
                                                 ".completed"));
    class_latency_.push_back(registry_.histogram("class." + c.name +
                                                 ".latency_ns"));
    s_class_accepted_.push_back(
        log_.add_series("class." + c.name + ".accepted", cap));
    s_class_completed_.push_back(
        log_.add_series("class." + c.name + ".completed", cap));
    s_class_shed_.push_back(log_.add_series("class." + c.name + ".shed", cap));
    s_class_p99_.push_back(log_.add_series("class." + c.name + ".p99_ns", cap));
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    s_shard_depth_.push_back(
        log_.add_series("shard." + std::to_string(s) + ".depth", cap));
  }
  lock_wait_ = registry_.histogram("lock.wait_ns");
  lock_hold_ = registry_.histogram("lock.hold_ns");
  s_lock_acquires_ = log_.add_series("lock.acquires", cap);
  s_lock_wait_p99_ = log_.add_series("lock.wait_p99_ns", cap);
  s_lock_hold_p99_ = log_.add_series("lock.hold_p99_ns", cap);
  s_lockfree_gets_ = log_.add_series("routes.lockfree_gets", cap);

  registry_.freeze();

  const std::size_t num_hists = num_classes + 2;
  cur_.resize(Histogram::kNumBuckets);
  delta_.resize(Histogram::kNumBuckets);
  prev_.assign(num_hists * Histogram::kNumBuckets, 0);
}

std::uint64_t KvTelemetry::windowed_p99(std::size_t hist_index,
                                        obs::MetricId id) {
  registry_.fold_buckets(id, cur_.data());
  std::uint64_t* prev = prev_.data() + hist_index * Histogram::kNumBuckets;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    // Counters are monotone, so cur >= prev bucket-wise; the delta is
    // exactly this tick's observations.
    delta_[b] = cur_[b] - prev[b];
    total += delta_[b];
    prev[b] = cur_[b];
  }
  return Histogram::quantile_from_bucket_counts(delta_.data(), total, 0.99);
}

void KvTelemetry::fold_tick(Nanos t, const TelemetryTickInputs& in) {
  const std::uint64_t ts = static_cast<std::uint64_t>(t);
  for (std::size_t c = 0; c < class_completed_.size(); ++c) {
    log_.append(s_class_accepted_[c], ts, in.class_accepted[c]);
    log_.append(s_class_completed_[c], ts,
                registry_.fold(class_completed_[c]));
    log_.append(s_class_shed_[c], ts, in.class_shed[c]);
    log_.append(s_class_p99_[c], ts, windowed_p99(c, class_latency_[c]));
  }
  for (std::size_t s = 0; s < s_shard_depth_.size(); ++s) {
    log_.append(s_shard_depth_[s], ts, in.shard_depth[s]);
  }
  log_.append(s_lock_acquires_, ts, in.lock_acquires);
  log_.append(s_lock_wait_p99_, ts,
              windowed_p99(class_completed_.size(), lock_wait_));
  log_.append(s_lock_hold_p99_, ts,
              windowed_p99(class_completed_.size() + 1, lock_hold_));
  log_.append(s_lockfree_gets_, ts, in.lockfree_gets);
  ticks_ += 1;
}

}  // namespace asl::server
