// Real-path trace replay (DESIGN.md §10): feed a recorded offered stream
// back through a live KvService, at the recorded tempo, and check the
// decisions it takes against the ones the recording captured.
//
// What this guarantees — and what it does not. The offered *sequence* is
// exact: same requests, same order (one replay thread walks the merged
// stream), same classes, keys and ops. The *decisions* are exact under
// enforce_decisions (recorded sheds/rejects are accounted without being
// re-offered, so only recorded admits reach try_submit; a live bounce of
// one of those is a counted divergence, impossible when the service has
// queue headroom for the recorded accepted load). What is NOT reproduced:
// wall-clock latencies (different run, different machine noise), batch
// formation and lock-route acquire counts (worker timing), and — with
// enforce_decisions off — the shed/reject split under contention, because
// live queue depths depend on how fast workers drained this time. The twin
// replay (SimKvService::replay) is the byte-deterministic half of the
// contract; this is the accounting-faithful half.
#pragma once

#include "server/kv_service.h"
#include "workload/trace.h"

namespace asl::server {

struct ReplayOptions {
  // Honor recorded non-admit decisions instead of re-deciding them: a
  // recorded shed/reject is counted (per class, per shard) and skipped, so
  // the service sees exactly the recording's accepted stream. Off = every
  // record is re-offered and the service re-decides live (policy A/B on
  // the real path; the shed/reject split then depends on live timing).
  bool enforce_decisions = true;
  // Pacing: record i is submitted at origin + at * time_scale wall ns
  // (the open-loop sleep-then-spin idiom). <= 0 disables pacing — the
  // stream is offered back-to-back, which preserves order and (with
  // enforce_decisions and queue headroom) accounting, but not tempo.
  double time_scale = 1.0;
};

// Replay-side accounting. `accounting` is the trace-shaped tally the
// harness kept (live decisions plus enforced ones): decision parity with
// the recording is accounting_counts_match(trace.accounting,
// result.accounting) — exact whenever divergence == 0.
struct RealReplayResult {
  std::uint64_t offered = 0;    // records fed (skipped excluded)
  std::uint64_t submitted = 0;  // try_submit calls actually issued
  std::uint64_t accepted = 0;   // live admissions
  std::uint64_t rejected = 0;   // live bounces of submitted records
  std::uint64_t enforced_shed = 0;    // recorded sheds not re-offered
  std::uint64_t enforced_reject = 0;  // recorded rejects not re-offered
  std::uint64_t divergence = 0;  // live decision != recorded decision
  std::uint64_t skipped = 0;  // classes the service does not have
  Nanos elapsed = 0;          // wall clock, first to last record
  TraceAccounting accounting;
};

// Walks the trace through `service` (which the caller has start()ed and
// will stop()) on the calling thread. Routing is recomputed from the key
// via service.shard_of — under the recorded shard count it reproduces the
// recorded routes exactly (shared shard_for_key rule).
RealReplayResult replay_trace(KvService& service, const RecordedTrace& trace,
                              const ReplayOptions& options = {});

}  // namespace asl::server
