// Sharded KV front-end — the open-loop service layer over the asl_db
// engines (DESIGN.md §4).
//
// Layout: N shards, each one KvEngine (hash/btree/lsm/mvcc, selected by
// KvServiceConfig::engine — DESIGN.md §7) guarded by a BlockingAslMutex
// (the oversubscription-safe LibASL lock) behind a bounded request queue.
// Requests are routed by key hash, admitted with backpressure (a full queue
// rejects, it never blocks the submitter), and served by worker threads
// that declare big/little core types through the topology oracle and pin
// themselves like the paper's evaluation harness.
//
// Every request carries a *request class*: a named epoch registered with
// the EpochRegistry, so different classes (point lookups vs writes, say)
// adapt their reorder windows against different SLOs. The worker wraps the
// shard critical section in epoch_start / epoch_end_with_latency and feeds
// the controller the *end-to-end* latency (queue wait + service): under
// overload, queueing delay violates the SLO, the window collapses, and
// little-core workers stop standing by — the service-level version of the
// paper's feedback loop.
//
// Lock-free read route (DESIGN.md §8): when the resolved CostProfile sets
// get_lock_free (the mvcc engine), gets bypass the shard lock entirely —
// the engine's snapshot reads are wait-free against writers, so the worker
// serves them off-lock at non-CS speed while only puts acquire the mutex.
// LockRouteStats counts which route served what on both the real path and
// the twin.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "asl/libasl.h"
#include "db/engine.h"
#include "platform/cacheline.h"
#include "platform/raw_spinlock.h"
#include "platform/rng.h"
#include "server/request_queue.h"
#include "stats/histogram.h"
#include "stats/latency_split.h"
#include "workload/cs_workload.h"

namespace asl::obs {
class Sampler;  // obs/sampler.h
}  // namespace asl::obs

namespace asl::server {

class KvTelemetry;  // server/telemetry.h

// The two engine operations a request can carry: kGet reads the key (a
// miss is not an error — unprefilled keys simply return nothing), kPut
// upserts a value derived from the key. Both run inside the shard lock.
enum class OpType : std::uint8_t { kGet = 0, kPut = 1 };

// Key -> shard mapping, shared by the real service and its simulated twin
// (sim_kv_service.h) so both route identically: splitmix64 decorrelates
// shard choice from key order, spreading zipfian-hot ranks and sequential
// prefills alike over the shards.
inline std::uint32_t shard_for_key(std::uint64_t key,
                                   std::uint32_t num_shards) {
  std::uint64_t h = key;
  return static_cast<std::uint32_t>(splitmix64(h) % num_shards);
}

// Upper bound on batch_k both paths enforce: a worker never carries more
// than this many requests through one lock acquisition (the real path's
// batch scratch space is a fixed stack array, and unbounded batches would
// starve the other worker of a shard anyway).
inline constexpr std::size_t kMaxBatch = 64;

// One queued request. `class_index` is the dense index into the configured
// request classes (each of which owns a registered epoch id). A fixed-size
// value type on purpose: the shard queues are preallocated rings of these,
// so admission moves 24 bytes and never touches the heap (DESIGN.md §9).
struct Request {
  OpType op = OpType::kGet;
  std::uint64_t key = 0;
  std::uint32_t class_index = 0;
  Nanos enqueue_ns = 0;
};

// Per-worker value arena (DESIGN.md §9). Puts format their value bytes into
// this fixed monotonic buffer *before* entering the critical section; the
// engines consume them as string_views and copy into their own storage, so
// the slots recycle every batch. Two guarantees by construction:
//   * zero heap traffic — the upstream is the null resource, so an arena
//     that would ever spill past its fixed buffer throws bad_alloc instead
//     of silently allocating (and the sizing makes that unreachable: at
//     most kMaxBatch values of kSlotBytes each per batch);
//   * no sharing — each worker thread owns one arena on its drain-loop
//     stack. "Per shard" would race: with two workers per shard, both
//     format values for the same shard concurrently outside the lock.
class ValueArena {
 public:
  // "v:" + at most 20 decimal digits + nul, rounded up: one slot per batch
  // member, kMaxBatch slots per batch.
  static constexpr std::size_t kSlotBytes = 32;

  ValueArena()
      : resource_(buffer_, sizeof(buffer_), std::pmr::null_memory_resource()) {}
  ValueArena(const ValueArena&) = delete;
  ValueArena& operator=(const ValueArena&) = delete;

  // Formats the service's value representation of `key` ("v:<key>") into an
  // arena slot. The view stays valid until the next release().
  std::string_view format_value(std::uint64_t key);

  // Recycles every slot (end of batch). O(1): a monotonic resource resets
  // its cursor to the start of the fixed buffer it was constructed over.
  void release() { resource_.release(); }

 private:
  alignas(kCacheLine) char buffer_[kMaxBatch * kSlotBytes];
  std::pmr::monotonic_buffer_resource resource_;
};

// Class-aware admission control (DESIGN.md §6). Under backpressure the
// bounded shard queues should not degrade every class together: deliberately
// rejecting ("shedding") the loose-SLO class early keeps queue headroom —
// and therefore queueing delay — for the tight-SLO class. The policy is two
// knobs that combine into one depth threshold:
//
//   * shed_priority — 0 marks the class protected: it is rejected only by a
//     genuinely full queue (exactly the class-blind FIFO behaviour shedding
//     replaces). Values >= 1 mark it sheddable; larger values shed earlier.
//   * watermark — the queue-depth fraction of capacity where priority-1
//     shedding begins. Each further priority level halves geometrically:
//     priority p sheds once depth >= capacity * watermark^p. Priority 0
//     yields watermark^0 = 1.0, i.e. the full-capacity limit, which is how
//     "protected" and "plain FIFO rejection" are the same code path.
//
// shed_threshold() is that formula, shared by the real service and the twin
// so both shed at exactly the same depths. Shed rejections are counted per
// class (ClassReport::shed, a subset of rejected): deliberate sheds are
// admission policy at work, not overload, which is why class_meets_slo()
// exempts them from the rejection bound.
struct AdmissionPolicy {
  std::uint32_t shed_priority = 0;  // 0 = protected (full-queue rejects only)
  double watermark = 0.5;           // depth fraction where priority 1 sheds
};

// The depth limit `policy` imposes on a queue of `capacity` slots: requests
// of the class are admitted only while depth < the returned limit. Clamped
// to [1, capacity] so a sheddable class always has at least one slot when
// the queue is otherwise empty (a zero limit would starve a class even at
// idle, which is a misconfiguration, not a policy).
inline std::size_t shed_threshold(const AdmissionPolicy& policy,
                                  std::size_t capacity) {
  if (policy.shed_priority == 0) return capacity;
  double fraction = 1.0;
  for (std::uint32_t p = 0; p < policy.shed_priority; ++p) {
    fraction *= policy.watermark;
  }
  // Nudge before flooring: watermarks like 0.29 are not exactly
  // representable, so capacity * fraction can land a hair under the
  // intended integer (100 * 0.29 == 28.999...) and a bare truncation
  // would shed one slot early.
  const double slots =
      std::floor(static_cast<double>(capacity) * fraction + 1e-9);
  if (slots <= 1.0) return 1;
  if (slots >= static_cast<double>(capacity)) return capacity;
  return static_cast<std::size_t>(slots);
}

// A request class: its epoch name (registered with the EpochRegistry at
// service construction), the end-to-end latency SLO, and its admission
// policy. slo_ns == 0 means "no SLO": the epoch still tags the request but
// runs no feedback. The default admission policy is protected, so configs
// that never mention shedding behave exactly as before.
struct RequestClass {
  std::string name;
  Nanos slo_ns = 0;
  AdmissionPolicy admission{};
};

// Live-telemetry knobs (DESIGN.md §11). Default-off: a config that never
// mentions telemetry builds no registry, spawns no sampler thread, and the
// hot path's only cost is one null-pointer test per batch. With enabled =
// true the service preallocates the whole observation pipeline at
// construction (metrics slots, time-series capacity, span rings), so
// recording and sampling stay allocation-free — the telemetry-on
// kv_alloc_audit zero is part of the contract, not a separate mode.
struct TelemetryConfig {
  bool enabled = false;
  // Fold cadence of the sampler thread (real path) / of the virtual-time
  // tick events the twin schedules over its horizon.
  Nanos sample_period_ns = 5 * kNanosPerMilli;
  // Preallocated points per series; later ticks drop (and count drops).
  std::size_t max_ticks = 4096;
  // Span tracing: 1-in-N request sampling per worker (0 = off — the
  // compiled-in, default-off knob) into fixed per-worker rings that
  // overwrite oldest when full.
  std::uint32_t span_sample_every = 0;
  std::size_t span_ring_capacity = 1024;
};

struct KvServiceConfig {
  std::uint32_t num_shards = 4;
  std::size_t queue_capacity = 256;  // per shard
  // Workers = num_shards * workers_per_shard; worker w serves shard
  // w % num_shards, so 2 workers/shard pairs a big with a little worker on
  // every shard (AMP contention on the shard lock).
  std::uint32_t workers_per_shard = 1;
  // How many workers declare CoreType::kBig (the rest are little); ~0u =
  // half, rounded up.
  std::uint32_t big_workers = ~0u;
  bool pin_workers = true;
  // Storage engine per shard, by registry name (db/engine.h: "hash",
  // "btree", "lsm"). An unknown name is a configuration bug: the service
  // aborts at construction with kv_engine_error's diagnosis.
  std::string engine = "hash";
  // Per-op service-cost classes (DESIGN.md §7). All-zero (the default)
  // resolves to the engine's checked-in calibrated profile
  // (db::default_cost_profile); a non-empty profile — e.g. one measured by
  // the engine_calib harness on this host — overrides it. Either way every
  // class is scaled by cost_scale (the overload scenarios' knob: scaling
  // preserves the get/put asymmetry instead of folding it away). The real
  // worker spins cs_nops inside the shard lock and post_nops after release
  // (core-speed scaled, cs_workload.h semantics) on top of the actual
  // engine op; the twin charges the identical classes in virtual time.
  db::CostProfile cost{};
  double cost_scale = 1.0;
  // Keys [0, prefill_keys) are inserted at construction so gets can hit.
  std::uint64_t prefill_keys = 0;
  // Batch drain (DESIGN.md §6): a worker serves up to batch_k same-shard
  // requests per BlockingAslMutex acquisition — the blocking pop delivers
  // the batch head, up to batch_k-1 more waiting requests join after the
  // lock is acquired, and all of them execute back-to-back in one critical
  // section. One lock acquisition (and one reorder-dispatch decision, made
  // under the head request's class epoch) is amortized over the batch,
  // while latency accounting and controller feedback stay per-request.
  // batch_k = 1 is exactly the unbatched service. Clamped to [1, kMaxBatch].
  std::uint32_t batch_k = 1;
  std::vector<RequestClass> classes;
  // Live telemetry (metrics registry + sampler + span tracer, DESIGN.md
  // §11). Shared with the simulated twin, which samples the same series
  // schema in virtual time.
  TelemetryConfig telemetry;
};

// The per-op cost classes `config` actually runs with: the explicit profile
// when set, otherwise the engine's checked-in default, either one scaled by
// cost_scale. Aborts (with kv_engine_error's message) when the profile must
// come from the registry but the engine name is unknown — the same rule
// KvService applies at construction, shared here so the simulated twin
// resolves identical numbers.
db::CostProfile resolved_cost_profile(const KvServiceConfig& config);

// Per-class accounting, merged across workers. Conservation contract:
// offered = accepted + rejected; shed <= rejected (a shed is one kind of
// rejection, so totals that sum accepted + rejected never double-count);
// after stop() / a twin drain, completed == accepted.
struct ClassReport {
  std::string name;
  int epoch_id = -1;
  Nanos slo_ns = 0;
  std::uint64_t accepted = 0;   // admitted to a shard queue
  std::uint64_t rejected = 0;   // all bounces: full-queue + shed
  std::uint64_t shed = 0;       // deliberate watermark rejections (subset)
  std::uint64_t completed = 0;  // served by a worker
  std::uint64_t slo_met = 0;    // completed with end-to-end latency <= SLO
  LatencySplit total;           // end-to-end latency, by worker core type
  Histogram queue_wait;         // admission -> service start

  // Fraction of completed requests that met the class SLO; vacuously 1.0
  // when nothing completed (an idle class has violated nothing).
  double attainment() const {
    return completed == 0 ? 1.0
                          : static_cast<double>(slo_met) /
                                static_cast<double>(completed);
  }
};

// Snapshot of every class's accounting, in config order. Totals below sum
// over classes; `shed` totals are part of total_rejected(), never added on
// top of it.
struct ServiceReport {
  std::vector<ClassReport> classes;

  std::uint64_t total_accepted() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.accepted;
    return n;
  }
  std::uint64_t total_rejected() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.rejected;
    return n;
  }
  std::uint64_t total_completed() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.completed;
    return n;
  }
  std::uint64_t total_shed() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.shed;
    return n;
  }
};

// Per-class capacity-probe pass/fail criterion, shared by the real path and
// the simulated twin: a class with an SLO passes iff its end-to-end p99 is
// within the SLO *and* its **hard** rejections (full-queue bounces, i.e.
// rejected - shed) are at most max_reject_fraction of its offered requests.
// A hard-rejected request is an infinite-latency request — with bounded
// queues, overload surfaces as rejections long before the queue-capped p99
// moves, so the rejection term is what detects saturation. Deliberate sheds
// are excluded from the bound: they are the admission policy working as
// configured, not the service failing, so shedding the loose class must not
// fail the tight class's capacity check (and the shed class itself is
// judged on the latency of what it actually served). Classes without an SLO
// (slo_ns == 0) pass vacuously.
inline bool class_meets_slo(const ClassReport& c,
                            double max_reject_fraction = 0.0) {
  if (c.slo_ns == 0) return true;
  const std::uint64_t offered = c.accepted + c.rejected;
  if (offered == 0) return true;
  // Defensive clamp: report() enforces shed <= rejected, but hand-built
  // reports may not, and an unsigned underflow here would read as an
  // astronomical rejection fraction.
  const std::uint64_t hard = c.rejected >= c.shed ? c.rejected - c.shed : 0;
  const double reject_fraction =
      static_cast<double>(hard) / static_cast<double>(offered);
  if (reject_fraction > max_reject_fraction) return false;
  return c.total.overall().p99() <= c.slo_ns;
}

// Whole-service criterion: every class passes class_meets_slo. This is the
// oracle the capacity probes bisect against on both paths.
inline bool report_meets_slos(const ServiceReport& report,
                              double max_reject_fraction = 0.0) {
  for (const ClassReport& c : report.classes) {
    if (!class_meets_slo(c, max_reject_fraction)) return false;
  }
  return true;
}

// Which route served what (DESIGN.md §8) — the observable that proves the
// lock-free read path is actually lock-free. Counted identically by the
// real service and the twin:
//   * get_route_acquires — shard-lock acquisitions whose batch head was a
//     get. Zero on a get_lock_free profile (the acceptance criterion: gets
//     never block on the shard mutex), nonzero on locked engines.
//   * put_route_acquires — acquisitions headed by a put.
//   * cs_gets — gets served inside a critical section (locked engines).
//   * lockfree_gets — gets served off-lock (head-get solo serves plus gets
//     that rode a put-headed batch and were deferred past the release).
// cs_gets + lockfree_gets == completed gets, always.
struct LockRouteStats {
  std::uint64_t get_route_acquires = 0;
  std::uint64_t put_route_acquires = 0;
  std::uint64_t cs_gets = 0;
  std::uint64_t lockfree_gets = 0;
};

class TraceRecorder;  // workload/trace.h

class KvService {
 public:
  explicit KvService(KvServiceConfig config);
  ~KvService();
  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  // Spawns the worker pool. Idempotent; requests submitted before start()
  // sit in the shard queues (server_test uses this to fill a queue).
  void start();

  // Closes the queues, lets the workers drain every accepted request, and
  // joins them. After stop(), completed == accepted per class. Idempotent.
  void stop();

  // Key -> shard routing (hash-striped so skewed key popularity still
  // spreads over shards). Exposed for the routing tests.
  std::uint32_t shard_of(std::uint64_t key) const;

  // Open-loop admission: non-blocking; false = rejected (queue full,
  // class watermark hit, or service stopped). The enqueue timestamp is
  // taken here. Sheddable classes are rejected once their shard queue's
  // depth reaches shed_threshold(class.admission, queue_capacity); such
  // rejections count in both `rejected` and `shed` for the class. An
  // out-of-range class_index is a caller bug: it returns false without
  // counting a per-class rejection (there is no class to attribute it to),
  // so callers validate indices up front (run_open_loop does).
  bool try_submit(OpType op, std::uint64_t key, std::uint32_t class_index);

  // Number of configured request classes (>= 1: an empty config gets a
  // default no-SLO class at construction).
  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(config_.classes.size());
  }
  // The EpochRegistry id backing class_index's epoch, or -1 when the index
  // is out of range. Valid ids are stable for the service's lifetime.
  int epoch_id(std::uint32_t class_index) const;
  // Instantaneous depth of one shard's queue (0 for an out-of-range shard).
  // A point-in-time read: concurrent submits/drains may move it immediately.
  std::size_t queue_depth(std::uint32_t shard) const;
  // Total keys stored across all shard engines (prefill + completed puts).
  std::size_t store_size() const;
  // Worker-slot count: num_shards * workers_per_shard, fixed at
  // construction whether or not start() ever ran.
  std::uint32_t num_workers() const;
  // The effective configuration after construction-time clamping (shard/
  // worker minimums, batch_k in [1, kMaxBatch], default class injection).
  const KvServiceConfig& config() const { return config_; }

  // Merged per-class accounting snapshot. Safe to call at any time; after
  // stop() it is quiescent and satisfies completed == accepted per class.
  ServiceReport report() const;

  // Route accounting (see LockRouteStats). On a get_lock_free profile
  // get_route_acquires stays 0 and cs_gets stays 0 — every get is served
  // off-lock.
  LockRouteStats lock_route_stats() const;

  // Attach a trace recorder (workload/trace.h, DESIGN.md §10): every
  // subsequent try_submit's admission decision + shard route and every
  // drained batch's size are captured into it. Not owned — it must outlive
  // the traffic it records; pass nullptr to detach. Real-path recording is
  // accounting-faithful, not byte-deterministic: concurrent submitters
  // append in whatever order they win the recorder's lock, so the record
  // stream's interleaving (unlike its per-class/per-shard totals) can
  // differ run to run.
  void set_recorder(TraceRecorder* recorder);

  // Live telemetry (DESIGN.md §11): null unless config.telemetry.enabled.
  // The time-series log and span rings are safe to read once stop() has
  // returned (the sampler's final tick and the worker joins both precede
  // it); mid-run reads see a racing-but-valid snapshot.
  const KvTelemetry* telemetry() const { return telemetry_.get(); }
  KvTelemetry* telemetry() { return telemetry_.get(); }
  // Wall-clock origin of the telemetry time axis (start() instant) — the
  // epoch write_chrome_trace rebases span timestamps against.
  Nanos telemetry_epoch_ns() const { return telemetry_start_ns_; }

 private:
  // Cache-line discipline inside the shard (DESIGN.md §9): the queue ends
  // with its own padded lock group, and the shard lock starts a fresh line,
  // so a submitter hammering the queue lock never bounces the line a worker
  // is spinning on for the shard mutex. The engine pointer rides after the
  // lock — it is read-only once constructed.
  struct Shard {
    Shard(std::size_t queue_capacity, std::unique_ptr<db::KvEngine> eng)
        : queue(queue_capacity), engine(std::move(eng)) {}
    BoundedQueue<Request> queue;
    alignas(kCacheLine) BlockingAslMutex lock;  // serializes shard workers
    std::unique_ptr<db::KvEngine> engine;
  };

  // Split by writer population: the admission counters are bumped by
  // submitter threads on every try_submit, the completion stats by worker
  // threads under stats_lock — putting each group on its own line keeps the
  // load generator and the workers from false-sharing, and both away from
  // the read-only spec words.
  struct ClassState {
    RequestClass spec;
    int epoch_id = -1;
    std::size_t depth_limit = 0;  // shed_threshold(spec.admission, capacity)
    // Submitter side.
    alignas(kCacheLine) std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};  // all bounces (shed included)
    std::atomic<std::uint64_t> shed{0};      // watermark bounces only
    // Worker side.
    alignas(kCacheLine) mutable RawSpinLock stats_lock;
    std::uint64_t completed = 0;  // guarded by stats_lock
    std::uint64_t slo_met = 0;
    LatencySplit total;
    Histogram queue_wait;
  };

  // Read-only per-worker configuration, one private line each: slots_ is a
  // contiguous vector every worker indexes in its hot loop, and padding
  // them means a future mutable field cannot silently put two workers'
  // state on one line.
  struct alignas(kCacheLine) WorkerSlot {
    std::uint32_t index = 0;
    std::uint32_t shard = 0;
    CoreType type = CoreType::kBig;
    SpeedFactors speed{};
  };

  void worker_loop(const WorkerSlot& slot);
  // Blocking-pop/batch/serve loop shared by worker threads and the inline
  // drain in stop(); returns when the shard queue is closed and empty.
  // Owns the worker's ValueArena for its whole run.
  void drain_queue(const WorkerSlot& slot);
  // One lock acquisition for `head` plus up to batch_k-1 already-waiting
  // requests drained after the acquisition, executed back-to-back in the
  // critical section, then per-request latency recording + controller
  // feedback (DESIGN.md §6). Put values are formatted into `arena` (the
  // head's before the acquisition); the arena is recycled before return.
  void serve_batch(const WorkerSlot& slot, const Request& head,
                   ValueArena& arena);
  // One sampler fold: snapshots the admission counters, queue depths and
  // route counters into the preallocated tick scratch and hands them to the
  // telemetry layer. Allocation-free (kv_alloc_audit runs telemetry-on).
  void telemetry_tick(Nanos now);

  KvServiceConfig config_;
  db::CostProfile cost_;  // resolved_cost_profile(config_), fixed at build
  // Trace recorder hook (null = not recording). Atomic so set_recorder can
  // race benignly with in-flight submits/workers; callers attach before
  // traffic for a complete recording.
  std::atomic<TraceRecorder*> recorder_{nullptr};
  // Route counters: worker-side only, grouped on their own line away from
  // the read-mostly config/cost words above.
  alignas(kCacheLine) std::atomic<std::uint64_t> get_route_acquires_{0};
  std::atomic<std::uint64_t> put_route_acquires_{0};
  std::atomic<std::uint64_t> cs_gets_{0};
  std::atomic<std::uint64_t> lockfree_gets_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ClassState>> classes_;
  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
  // Lifecycle: transitions (spawn/join, the flags) serialize on
  // lifecycle_lock_, so concurrent start()/stop() from different threads
  // compose instead of racing on the worker vector; the flags themselves
  // are atomic so diagnostic reads never need the lock. Workers never take
  // lifecycle_lock_, so joining under it cannot deadlock.
  mutable PthreadLock lifecycle_lock_;
  std::atomic<bool> running_{false};   // guarded by lifecycle_lock_ (writes)
  std::atomic<bool> stopped_{false};
  // Telemetry (null when disabled). The sampler starts after the workers
  // spawn and stops after they join — its final tick is the one sample
  // guaranteed to observe drained queues and final counters. The tick
  // scratch vectors are sized at construction so folds never allocate.
  std::unique_ptr<KvTelemetry> telemetry_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::vector<std::uint64_t> tick_accepted_;
  std::vector<std::uint64_t> tick_shed_;
  std::vector<std::uint64_t> tick_depth_;
  Nanos telemetry_start_ns_ = 0;
};

}  // namespace asl::server
