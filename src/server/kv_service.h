// Sharded KV front-end — the open-loop service layer over the asl_db
// engines (DESIGN.md §4).
//
// Layout: N shards, each one HashKv engine guarded by a BlockingAslMutex
// (the oversubscription-safe LibASL lock) behind a bounded request queue.
// Requests are routed by key hash, admitted with backpressure (a full queue
// rejects, it never blocks the submitter), and served by worker threads
// that declare big/little core types through the topology oracle and pin
// themselves like the paper's evaluation harness.
//
// Every request carries a *request class*: a named epoch registered with
// the EpochRegistry, so different classes (point lookups vs writes, say)
// adapt their reorder windows against different SLOs. The worker wraps the
// shard critical section in epoch_start / epoch_end_with_latency and feeds
// the controller the *end-to-end* latency (queue wait + service): under
// overload, queueing delay violates the SLO, the window collapses, and
// little-core workers stop standing by — the service-level version of the
// paper's feedback loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "asl/libasl.h"
#include "db/hashkv.h"
#include "platform/raw_spinlock.h"
#include "platform/rng.h"
#include "server/request_queue.h"
#include "stats/histogram.h"
#include "stats/latency_split.h"
#include "workload/cs_workload.h"

namespace asl::server {

enum class OpType : std::uint8_t { kGet = 0, kPut = 1 };

// Key -> shard mapping, shared by the real service and its simulated twin
// (sim_kv_service.h) so both route identically: splitmix64 decorrelates
// shard choice from key order, spreading zipfian-hot ranks and sequential
// prefills alike over the shards.
inline std::uint32_t shard_for_key(std::uint64_t key,
                                   std::uint32_t num_shards) {
  std::uint64_t h = key;
  return static_cast<std::uint32_t>(splitmix64(h) % num_shards);
}

// One queued request. `class_index` is the dense index into the configured
// request classes (each of which owns a registered epoch id).
struct Request {
  OpType op = OpType::kGet;
  std::uint64_t key = 0;
  std::uint32_t class_index = 0;
  Nanos enqueue_ns = 0;
};

// A request class: its epoch name (registered with the EpochRegistry at
// service construction) and the end-to-end latency SLO. slo_ns == 0 means
// "no SLO": the epoch still tags the request but runs no feedback.
struct RequestClass {
  std::string name;
  Nanos slo_ns = 0;
};

struct KvServiceConfig {
  std::uint32_t num_shards = 4;
  std::size_t queue_capacity = 256;  // per shard
  // Workers = num_shards * workers_per_shard; worker w serves shard
  // w % num_shards, so 2 workers/shard pairs a big with a little worker on
  // every shard (AMP contention on the shard lock).
  std::uint32_t workers_per_shard = 1;
  // How many workers declare CoreType::kBig (the rest are little); ~0u =
  // half, rounded up.
  std::uint32_t big_workers = ~0u;
  bool pin_workers = true;
  // Emulated service cost: critical-section spin inside the shard lock and
  // post-op spin outside, both scaled by the worker's core speed factors
  // (cs_workload.h semantics).
  std::uint64_t cs_nops = 400;
  std::uint64_t post_nops = 200;
  // Keys [0, prefill_keys) are inserted at construction so gets can hit.
  std::uint64_t prefill_keys = 0;
  std::vector<RequestClass> classes;
};

// Per-class accounting, merged across workers.
struct ClassReport {
  std::string name;
  int epoch_id = -1;
  Nanos slo_ns = 0;
  std::uint64_t accepted = 0;   // admitted to a shard queue
  std::uint64_t rejected = 0;   // bounced by a full queue (backpressure)
  std::uint64_t completed = 0;  // served by a worker
  std::uint64_t slo_met = 0;    // completed with end-to-end latency <= SLO
  LatencySplit total;           // end-to-end latency, by worker core type
  Histogram queue_wait;         // admission -> service start

  double attainment() const {
    return completed == 0 ? 1.0
                          : static_cast<double>(slo_met) /
                                static_cast<double>(completed);
  }
};

struct ServiceReport {
  std::vector<ClassReport> classes;

  std::uint64_t total_accepted() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.accepted;
    return n;
  }
  std::uint64_t total_rejected() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.rejected;
    return n;
  }
  std::uint64_t total_completed() const {
    std::uint64_t n = 0;
    for (const ClassReport& c : classes) n += c.completed;
    return n;
  }
};

// The capacity-probe pass/fail criterion, shared by the real path and the
// simulated twin: every class with an SLO must keep its end-to-end p99
// within the SLO *and* reject at most max_reject_fraction of its offered
// requests (a rejected request is an infinite-latency request — with
// bounded queues, overload surfaces as rejections long before the queue-
// capped p99 moves, so the rejection term is what detects saturation).
inline bool report_meets_slos(const ServiceReport& report,
                              double max_reject_fraction = 0.0) {
  for (const ClassReport& c : report.classes) {
    if (c.slo_ns == 0) continue;
    const std::uint64_t offered = c.accepted + c.rejected;
    if (offered == 0) continue;
    const double reject_fraction =
        static_cast<double>(c.rejected) / static_cast<double>(offered);
    if (reject_fraction > max_reject_fraction) return false;
    if (c.total.overall().p99() > c.slo_ns) return false;
  }
  return true;
}

class KvService {
 public:
  explicit KvService(KvServiceConfig config);
  ~KvService();
  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  // Spawns the worker pool. Idempotent; requests submitted before start()
  // sit in the shard queues (server_test uses this to fill a queue).
  void start();

  // Closes the queues, lets the workers drain every accepted request, and
  // joins them. After stop(), completed == accepted per class. Idempotent.
  void stop();

  // Key -> shard routing (hash-striped so skewed key popularity still
  // spreads over shards). Exposed for the routing tests.
  std::uint32_t shard_of(std::uint64_t key) const;

  // Open-loop admission: non-blocking; false = rejected (queue full or
  // service stopped). The enqueue timestamp is taken here. An out-of-range
  // class_index is a caller bug: it returns false without counting a
  // per-class rejection (there is no class to attribute it to), so callers
  // validate indices up front (run_open_loop does).
  bool try_submit(OpType op, std::uint64_t key, std::uint32_t class_index);

  std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(config_.classes.size());
  }
  int epoch_id(std::uint32_t class_index) const;
  std::size_t queue_depth(std::uint32_t shard) const;
  std::size_t store_size() const;  // sum over shard engines
  std::uint32_t num_workers() const;
  const KvServiceConfig& config() const { return config_; }

  ServiceReport report() const;

 private:
  struct Shard {
    explicit Shard(std::size_t queue_capacity)
        : queue(queue_capacity), engine(16) {}
    BoundedQueue<Request> queue;
    BlockingAslMutex lock;  // serializes workers of this shard on the engine
    db::HashKv engine;
  };

  struct ClassState {
    RequestClass spec;
    int epoch_id = -1;
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    mutable RawSpinLock stats_lock;
    std::uint64_t completed = 0;  // guarded by stats_lock
    std::uint64_t slo_met = 0;
    LatencySplit total;
    Histogram queue_wait;
  };

  struct WorkerSlot {
    std::uint32_t index = 0;
    std::uint32_t shard = 0;
    CoreType type = CoreType::kBig;
    SpeedFactors speed{};
  };

  static std::string key_string(std::uint64_t key);
  void worker_loop(const WorkerSlot& slot);
  void serve(const WorkerSlot& slot, const Request& req);

  KvServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ClassState>> classes_;
  std::vector<WorkerSlot> slots_;
  std::vector<std::thread> workers_;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace asl::server
