#include "server/kv_service.h"

#include "platform/affinity.h"
#include "platform/rng.h"
#include "platform/time.h"

namespace asl::server {

KvService::KvService(KvServiceConfig config) : config_(std::move(config)) {
  if (config_.num_shards < 1) config_.num_shards = 1;
  if (config_.workers_per_shard < 1) config_.workers_per_shard = 1;
  if (config_.classes.empty()) {
    config_.classes.push_back(RequestClass{"kv-default", 0});
  }

  shards_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }

  // Register each request class as a named epoch, its controller seeded
  // proportionally to the SLO by the same rule the simulator configs use.
  for (const RequestClass& spec : config_.classes) {
    auto cs = std::make_unique<ClassState>();
    cs->spec = spec;
    EpochOptions opts;
    opts.default_slo_ns = spec.slo_ns;
    if (spec.slo_ns > 0) {
      seed_config_for_slo(opts.controller, spec.slo_ns);
    }
    cs->epoch_id = EpochRegistry::instance().register_epoch(spec.name, opts);
    classes_.push_back(std::move(cs));
  }

  for (std::uint64_t k = 0; k < config_.prefill_keys; ++k) {
    shards_[shard_of(k)]->engine.put(key_string(k), "prefill");
  }

  // Worker slots: worker w serves shard w % num_shards; the first
  // big_workers slots are big, the rest little (m1_layout order).
  const std::uint32_t n = config_.num_shards * config_.workers_per_shard;
  std::uint32_t num_big = config_.big_workers;
  if (num_big == ~0u) num_big = (n + 1) / 2;
  for (std::uint32_t w = 0; w < n; ++w) {
    WorkerSlot slot;
    slot.index = w;
    slot.shard = w % config_.num_shards;
    slot.type = w < num_big ? CoreType::kBig : CoreType::kLittle;
    slot.speed =
        slot.type == CoreType::kBig ? SpeedFactors::big() : SpeedFactors::little();
    slots_.push_back(slot);
  }
}

KvService::~KvService() { stop(); }

void KvService::start() {
  if (running_ || stopped_) return;
  running_ = true;
  workers_.reserve(slots_.size());
  for (const WorkerSlot& slot : slots_) {
    workers_.emplace_back([this, &slot] { worker_loop(slot); });
  }
}

void KvService::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) {
    shard->queue.close();
  }
  for (auto& worker : workers_) {
    worker.join();
  }
  if (workers_.empty()) {
    // Never started: drain inline (each shard under its first worker slot's
    // core type) so the "after stop(), completed == accepted" invariant
    // holds regardless of lifecycle.
    for (const WorkerSlot& slot : slots_) {
      if (slot.index != slot.shard) continue;  // one drainer per shard
      ScopedCoreType scoped(slot.type);
      Request req;
      while (shards_[slot.shard]->queue.pop(req)) {
        serve(slot, req);
      }
    }
  }
  workers_.clear();
  running_ = false;
}

std::uint32_t KvService::shard_of(std::uint64_t key) const {
  return shard_for_key(key, config_.num_shards);
}

bool KvService::try_submit(OpType op, std::uint64_t key,
                           std::uint32_t class_index) {
  if (class_index >= classes_.size()) return false;
  ClassState& cs = *classes_[class_index];
  Request req;
  req.op = op;
  req.key = key;
  req.class_index = class_index;
  req.enqueue_ns = now_ns();
  if (shards_[shard_of(key)]->queue.try_push(req)) {
    cs.accepted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  cs.rejected.fetch_add(1, std::memory_order_relaxed);
  return false;
}

int KvService::epoch_id(std::uint32_t class_index) const {
  return class_index < classes_.size() ? classes_[class_index]->epoch_id : -1;
}

std::size_t KvService::queue_depth(std::uint32_t shard) const {
  return shard < shards_.size() ? shards_[shard]->queue.size() : 0;
}

std::size_t KvService::store_size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->engine.size();
  return n;
}

std::uint32_t KvService::num_workers() const {
  return static_cast<std::uint32_t>(slots_.size());
}

ServiceReport KvService::report() const {
  ServiceReport report;
  for (const auto& cs : classes_) {
    ClassReport c;
    c.name = cs->spec.name;
    c.epoch_id = cs->epoch_id;
    c.slo_ns = cs->spec.slo_ns;
    c.accepted = cs->accepted.load(std::memory_order_relaxed);
    c.rejected = cs->rejected.load(std::memory_order_relaxed);
    cs->stats_lock.lock();
    c.completed = cs->completed;
    c.slo_met = cs->slo_met;
    c.total = cs->total;
    c.queue_wait = cs->queue_wait;
    cs->stats_lock.unlock();
    report.classes.push_back(std::move(c));
  }
  return report;
}

std::string KvService::key_string(std::uint64_t key) {
  return "k:" + std::to_string(key);
}

void KvService::worker_loop(const WorkerSlot& slot) {
  if (config_.pin_workers) {
    pin_to_cpu_wrapped(slot.index);
  }
  ScopedCoreType scoped(slot.type);
  Shard& shard = *shards_[slot.shard];
  Request req;
  while (shard.queue.pop(req)) {
    serve(slot, req);
  }
  // No epoch-state reset here: the thread_local destructor folds this
  // worker's completion counts into the registry, which is how post-stop
  // snapshots still account for every served request.
}

void KvService::serve(const WorkerSlot& slot, const Request& req) {
  ClassState& cs = *classes_[req.class_index];
  Shard& shard = *shards_[slot.shard];
  const Nanos service_start = now_ns();

  epoch_start(cs.epoch_id);
  shard.lock.lock();
  spin_nops(slot.speed.scale_cs(config_.cs_nops));
  if (req.op == OpType::kPut) {
    shard.engine.put(key_string(req.key), "v:" + std::to_string(req.key));
  } else {
    (void)shard.engine.get(key_string(req.key));
  }
  shard.lock.unlock();

  const Nanos done = now_ns();
  const Nanos total = done > req.enqueue_ns ? done - req.enqueue_ns : 0;
  // Feedback sees the end-to-end latency (queue wait included): overload
  // shows up as SLO violations and shrinks the class's reorder window even
  // when the critical section itself is fast.
  if (cs.spec.slo_ns > 0) {
    epoch_end_with_latency(cs.epoch_id, cs.spec.slo_ns, total);
  } else {
    epoch_end(cs.epoch_id);
  }
  spin_nops(slot.speed.scale_ncs(config_.post_nops));

  const Nanos wait =
      service_start > req.enqueue_ns ? service_start - req.enqueue_ns : 0;
  cs.stats_lock.lock();
  cs.completed += 1;
  if (cs.spec.slo_ns == 0 || total <= cs.spec.slo_ns) cs.slo_met += 1;
  cs.total.record(slot.type, total);
  cs.queue_wait.record(wait);
  cs.stats_lock.unlock();
}

}  // namespace asl::server
