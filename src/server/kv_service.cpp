#include "server/kv_service.h"

#include <cstdio>
#include <cstdlib>

#include "obs/sampler.h"
#include "platform/affinity.h"
#include "platform/rng.h"
#include "platform/time.h"
#include "server/telemetry.h"
#include "workload/trace.h"

namespace asl::server {

db::CostProfile resolved_cost_profile(const KvServiceConfig& config) {
  // The engine name is validated even when an explicit profile overrides
  // the registry default: the twin resolves costs without ever
  // constructing an engine, and a typo'd name must abort there too, not
  // silently label every table with a nonexistent engine.
  const db::CostProfile registry_default =
      db::default_cost_profile(config.engine);
  if (registry_default.empty()) {
    std::fprintf(stderr, "KvService: %s\n",
                 db::kv_engine_error(config.engine).c_str());
    std::abort();
  }
  const db::CostProfile profile =
      config.cost.empty() ? registry_default : config.cost;
  return profile.scaled(config.cost_scale);
}

KvService::KvService(KvServiceConfig config) : config_(std::move(config)) {
  if (config_.num_shards < 1) config_.num_shards = 1;
  if (config_.workers_per_shard < 1) config_.workers_per_shard = 1;
  if (config_.batch_k < 1) config_.batch_k = 1;
  if (config_.batch_k > kMaxBatch) {
    config_.batch_k = static_cast<std::uint32_t>(kMaxBatch);
  }
  if (config_.classes.empty()) {
    config_.classes.push_back(RequestClass{"kv-default", 0});
  }
  cost_ = resolved_cost_profile(config_);

  shards_.reserve(config_.num_shards);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    std::unique_ptr<db::KvEngine> engine = db::make_kv_engine(config_.engine);
    if (engine == nullptr) {
      std::fprintf(stderr, "KvService: %s\n",
                   db::kv_engine_error(config_.engine).c_str());
      std::abort();
    }
    shards_.push_back(
        std::make_unique<Shard>(config_.queue_capacity, std::move(engine)));
  }

  // Register each request class as a named epoch, its controller seeded
  // proportionally to the SLO by the same rule the simulator configs use.
  // The shed threshold is precomputed against the queue's *clamped*
  // capacity, so a zero-capacity config sheds at the same depths the queue
  // actually enforces.
  for (const RequestClass& spec : config_.classes) {
    auto cs = std::make_unique<ClassState>();
    cs->spec = spec;
    cs->depth_limit =
        shed_threshold(spec.admission, shards_[0]->queue.capacity());
    EpochOptions opts;
    opts.default_slo_ns = spec.slo_ns;
    if (spec.slo_ns > 0) {
      seed_config_for_slo(opts.controller, spec.slo_ns);
    }
    cs->epoch_id = EpochRegistry::instance().register_epoch(spec.name, opts);
    classes_.push_back(std::move(cs));
  }

  // Median-first prefill order (each range's midpoint before its halves):
  // engines with comparison-ordered internals that never rebalance — the
  // mvcc path-copying BST — come up with logarithmic depth, where the
  // ascending 0..N-1 order would build a degenerate N-deep chain: every
  // mvcc get would then traverse O(N) nodes and every put would path-copy
  // O(N) pool nodes, which is both a latency cliff and a steady drain on
  // the node freelist (DESIGN.md §9). Hash/btree/lsm are insensitive to
  // the order; the key set is identical either way.
  if (config_.prefill_keys > 0) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
    ranges.emplace_back(0, config_.prefill_keys);  // half-open [lo, hi)
    while (!ranges.empty()) {
      const auto [lo, hi] = ranges.back();
      ranges.pop_back();
      const std::uint64_t mid = lo + (hi - lo) / 2;
      shards_[shard_of(mid)]->engine->put(mid, "prefill");
      if (mid > lo) ranges.emplace_back(lo, mid);
      if (mid + 1 < hi) ranges.emplace_back(mid + 1, hi);
    }
  }

  // Worker slots: worker w serves shard w % num_shards; the first
  // big_workers slots are big, the rest little (m1_layout order).
  const std::uint32_t n = config_.num_shards * config_.workers_per_shard;
  std::uint32_t num_big = config_.big_workers;
  if (num_big == ~0u) num_big = (n + 1) / 2;
  for (std::uint32_t w = 0; w < n; ++w) {
    WorkerSlot slot;
    slot.index = w;
    slot.shard = w % config_.num_shards;
    slot.type = w < num_big ? CoreType::kBig : CoreType::kLittle;
    slot.speed =
        slot.type == CoreType::kBig ? SpeedFactors::big() : SpeedFactors::little();
    slots_.push_back(slot);
  }

  // Telemetry pipeline (DESIGN.md §11), built and frozen here so nothing on
  // the hot path or in a sampler tick ever allocates. The epoch defaults to
  // the construction instant so a stop()-without-start() final tick still
  // lands on a sane time axis; start() re-stamps it.
  if (config_.telemetry.enabled) {
    telemetry_ = std::make_unique<KvTelemetry>(config_, n);
    tick_accepted_.resize(classes_.size());
    tick_shed_.resize(classes_.size());
    tick_depth_.resize(shards_.size());
    telemetry_start_ns_ = now_ns();
    sampler_ = std::make_unique<obs::Sampler>(
        config_.telemetry.sample_period_ns,
        [this](std::uint64_t, Nanos now) { telemetry_tick(now); });
  }
}

KvService::~KvService() { stop(); }

void KvService::start() {
  // Whole transition under the lifecycle lock: a concurrent stop() either
  // runs first (stopped_ is set, no workers ever spawn) or waits until the
  // worker vector is fully populated and joins every thread. The old plain-
  // bool flags made start()/stop() from different threads a data race.
  lifecycle_lock_.lock();
  if (running_.load(std::memory_order_relaxed) ||
      stopped_.load(std::memory_order_relaxed)) {
    lifecycle_lock_.unlock();
    return;
  }
  running_.store(true, std::memory_order_relaxed);
  workers_.reserve(slots_.size());
  for (const WorkerSlot& slot : slots_) {
    workers_.emplace_back([this, &slot] { worker_loop(slot); });
  }
  if (sampler_) {
    // The time axis starts when service does; the sampler rides along for
    // the whole worker lifetime (stop() ends it after the joins).
    telemetry_start_ns_ = now_ns();
    sampler_->start();
  }
  lifecycle_lock_.unlock();
}

void KvService::stop() {
  lifecycle_lock_.lock();
  if (stopped_.load(std::memory_order_relaxed)) {
    lifecycle_lock_.unlock();
    return;
  }
  stopped_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    shard->queue.close();
  }
  for (auto& worker : workers_) {
    worker.join();
  }
  if (workers_.empty()) {
    // Never started: drain inline (each shard under its first worker slot's
    // core type) so the "after stop(), completed == accepted" invariant
    // holds regardless of lifecycle. The queues are already closed, so the
    // shared drain loop runs the batched pops dry and returns.
    for (const WorkerSlot& slot : slots_) {
      if (slot.index != slot.shard) continue;  // one drainer per shard
      ScopedCoreType scoped(slot.type);
      drain_queue(slot);
    }
  }
  if (sampler_) {
    // After the joins / inline drain: the sampler's final tick is the one
    // sample guaranteed to see empty queues and final counters.
    sampler_->stop();
  }
  workers_.clear();
  running_.store(false, std::memory_order_relaxed);
  lifecycle_lock_.unlock();
}

std::uint32_t KvService::shard_of(std::uint64_t key) const {
  return shard_for_key(key, config_.num_shards);
}

bool KvService::try_submit(OpType op, std::uint64_t key,
                           std::uint32_t class_index) {
  if (class_index >= classes_.size()) return false;
  ClassState& cs = *classes_[class_index];
  Request req;
  req.op = op;
  req.key = key;
  req.class_index = class_index;
  req.enqueue_ns = now_ns();
  const std::uint32_t shard = shard_of(key);
  // The class's precomputed depth limit turns the push into the shed
  // decision: protected classes carry limit == capacity (plain bounded-
  // queue admission), sheddable classes bounce early at their watermark.
  const PushResult pushed =
      shards_[shard]->queue.try_push_below(req, cs.depth_limit);
  if (TraceRecorder* rec = recorder_.load(std::memory_order_relaxed)) {
    const TraceDecision decision = pushed == PushResult::kOk
                                       ? TraceDecision::kAdmit
                                       : pushed == PushResult::kShed
                                             ? TraceDecision::kShed
                                             : TraceDecision::kReject;
    rec->on_arrival(req.enqueue_ns, class_index, op == OpType::kPut, key,
                    decision, shard);
  }
  switch (pushed) {
    case PushResult::kOk:
      cs.accepted.fetch_add(1, std::memory_order_relaxed);
      return true;
    case PushResult::kShed:
      // rejected first, shed second (and report() reads them in the
      // opposite order): a concurrent snapshot between the two increments
      // then undercounts shed rather than overcounting it, preserving the
      // shed <= rejected contract consumers subtract on.
      cs.rejected.fetch_add(1, std::memory_order_relaxed);
      cs.shed.fetch_add(1, std::memory_order_relaxed);
      return false;
    case PushResult::kFull:
      cs.rejected.fetch_add(1, std::memory_order_relaxed);
      return false;
  }
  return false;  // unreachable: the switch above is exhaustive
}

void KvService::set_recorder(TraceRecorder* recorder) {
  recorder_.store(recorder, std::memory_order_relaxed);
}

int KvService::epoch_id(std::uint32_t class_index) const {
  return class_index < classes_.size() ? classes_[class_index]->epoch_id : -1;
}

std::size_t KvService::queue_depth(std::uint32_t shard) const {
  return shard < shards_.size() ? shards_[shard]->queue.size() : 0;
}

std::size_t KvService::store_size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->engine->size();
  return n;
}

std::uint32_t KvService::num_workers() const {
  return static_cast<std::uint32_t>(slots_.size());
}

LockRouteStats KvService::lock_route_stats() const {
  LockRouteStats s;
  s.get_route_acquires = get_route_acquires_.load(std::memory_order_relaxed);
  s.put_route_acquires = put_route_acquires_.load(std::memory_order_relaxed);
  s.cs_gets = cs_gets_.load(std::memory_order_relaxed);
  s.lockfree_gets = lockfree_gets_.load(std::memory_order_relaxed);
  return s;
}

ServiceReport KvService::report() const {
  ServiceReport report;
  for (const auto& cs : classes_) {
    ClassReport c;
    c.name = cs->spec.name;
    c.epoch_id = cs->epoch_id;
    c.slo_ns = cs->spec.slo_ns;
    c.accepted = cs->accepted.load(std::memory_order_relaxed);
    // shed before rejected (the mirror of try_submit's increment order),
    // then clamp: relaxed loads on a racing snapshot may still tear, and
    // the report-level contract shed <= rejected must hold uncondition-
    // ally — class_meets_slo computes rejected - shed on unsigned values.
    c.shed = cs->shed.load(std::memory_order_relaxed);
    c.rejected = cs->rejected.load(std::memory_order_relaxed);
    if (c.shed > c.rejected) c.shed = c.rejected;
    cs->stats_lock.lock();
    c.completed = cs->completed;
    c.slo_met = cs->slo_met;
    c.total = cs->total;
    c.queue_wait = cs->queue_wait;
    cs->stats_lock.unlock();
    report.classes.push_back(std::move(c));
  }
  return report;
}

void KvService::telemetry_tick(Nanos now) {
  // Snapshot into the preallocated scratch — relaxed racing reads of the
  // same counters report() takes, at sampler fidelity (DESIGN.md §11).
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    tick_accepted_[c] = classes_[c]->accepted.load(std::memory_order_relaxed);
    tick_shed_[c] = classes_[c]->shed.load(std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    tick_depth_[s] = shards_[s]->queue.size();
  }
  TelemetryTickInputs in;
  in.class_accepted = tick_accepted_.data();
  in.class_shed = tick_shed_.data();
  in.shard_depth = tick_depth_.data();
  in.lock_acquires =
      get_route_acquires_.load(std::memory_order_relaxed) +
      put_route_acquires_.load(std::memory_order_relaxed);
  in.lockfree_gets = lockfree_gets_.load(std::memory_order_relaxed);
  telemetry_->fold_tick(
      now > telemetry_start_ns_ ? now - telemetry_start_ns_ : 0, in);
}

void KvService::worker_loop(const WorkerSlot& slot) {
  if (config_.pin_workers) {
    pin_to_cpu_wrapped(slot.index);
  }
  ScopedCoreType scoped(slot.type);
  drain_queue(slot);
  // No epoch-state reset here: the thread_local destructor folds this
  // worker's completion counts into the registry, which is how post-stop
  // snapshots still account for every served request.
}

std::string_view ValueArena::format_value(std::uint64_t key) {
  // The 1-byte alignment request packs slots tightly; with the null
  // upstream, running past the fixed buffer would throw rather than touch
  // the heap — unreachable by the sizing (kMaxBatch slots per batch).
  char* slot = static_cast<char*>(resource_.allocate(kSlotBytes, 1));
  const int len = std::snprintf(slot, kSlotBytes, "v:%llu",
                                static_cast<unsigned long long>(key));
  return std::string_view(slot, static_cast<std::size_t>(len));
}

void KvService::drain_queue(const WorkerSlot& slot) {
  Shard& shard = *shards_[slot.shard];
  // One arena per worker, on the drain loop's own stack: naturally private
  // to this thread for the whole run (see ValueArena's sharing note).
  ValueArena arena;
  Request head;
  while (shard.queue.pop(head)) {
    serve_batch(slot, head, arena);
  }
}

void KvService::serve_batch(const WorkerSlot& slot, const Request& head,
                            ValueArena& arena) {
  Shard& shard = *shards_[slot.shard];
  struct Served {
    Request req;
    std::string_view value;  // arena-formatted put value (empty for gets)
    Nanos wait = 0;  // enqueue -> pop (the instant a worker took charge)
    Nanos done = 0;  // end of the request's critical-section segment
  };
  Served batch[kMaxBatch];
  std::size_t count = 0;
  const std::size_t batch_k = config_.batch_k;  // clamped to kMaxBatch

  // The head's value is formatted here — outside the critical section, into
  // the worker's arena (DESIGN.md §9). This is the put path's whole point:
  // the old code built a std::string inside the shard lock on every put.
  const std::string_view head_value =
      head.op == OpType::kPut ? arena.format_value(head.key)
                              : std::string_view{};
  const Nanos head_start = now_ns();
  batch[count++] = Served{
      head, head_value,
      head_start > head.enqueue_ns ? head_start - head.enqueue_ns : 0, 0};

  // The acquisition runs under the *head* request's class epoch: one
  // reorder-dispatch decision per batch, governed by the window of the
  // class that was at the front of the queue (DESIGN.md §6).
  ClassState& head_cls = *classes_[head.class_index];
  epoch_start(head_cls.epoch_id);

  // Telemetry hooks (DESIGN.md §11): with telemetry off this whole layer is
  // one null test per batch. A traced head (the span tracer's 1-in-N gate)
  // contributes one span per phase it passes through.
  KvTelemetry* const telem = telemetry_.get();
  const bool traced = telem && telem->tracer().sample(slot.index);
  if (traced) {
    telem->tracer().record(slot.index, obs::SpanPhase::kQueueWait,
                           head.enqueue_ns, batch[0].wait);
  }

  const bool lock_free_gets = cost_.get_lock_free;
  if (lock_free_gets && head.op == OpType::kGet) {
    // Lock-free get route (DESIGN.md §8): the engine's snapshot read is
    // wait-free against writers, so a get-headed serve touches neither the
    // shard lock nor the batch extension — the emulated service time is
    // the get class's cs_nops spent *off-lock* at non-CS speed (the same
    // accounting the twin charges under ncs_slowdown), and the next
    // waiting request is picked up by the regular pop loop immediately.
    spin_nops(slot.speed.scale_ncs(cost_.get.cs_nops));
    (void)shard.engine->get(head.key);
    batch[0].done = now_ns();
    lockfree_gets_.fetch_add(1, std::memory_order_relaxed);
    if (traced) {
      telem->tracer().record(slot.index, obs::SpanPhase::kCriticalSection,
                             head_start, batch[0].done - head_start);
    }
  } else {
    // Locked route. The acquisition is attributed to the head's op kind:
    // get_route_acquires must stay zero on a lock-free profile, and on
    // locked engines it is the counter that shows gets do block here.
    (head.op == OpType::kPut ? put_route_acquires_ : get_route_acquires_)
        .fetch_add(1, std::memory_order_relaxed);
    Nanos t_acq = head_start;
    if (telem) {
      const Nanos waited = shard.lock.lock_timed();
      t_acq = now_ns();
      telem->on_lock_wait(slot.index, waited);
      if (traced) {
        telem->tracer().record(slot.index, obs::SpanPhase::kLockWait,
                               t_acq > waited ? t_acq - waited : 0, waited);
      }
    } else {
      shard.lock.lock();
    }
    // Batch extension after the acquisition: requests that were already
    // waiting when the lock was won ride along in this critical section;
    // the drain never waits for new arrivals. Extension values are
    // formatted at pop time — inside the lock (they cannot exist earlier:
    // the batch is discovered under it) but still allocation-free, a
    // bounded snprintf into the same arena.
    Request more;
    while (count < batch_k && shard.queue.try_pop(more)) {
      const std::string_view value = more.op == OpType::kPut
                                         ? arena.format_value(more.key)
                                         : std::string_view{};
      const Nanos t = now_ns();
      batch[count++] = Served{
          more, value, t > more.enqueue_ns ? t - more.enqueue_ns : 0, 0};
    }
    // Critical-section pass. On a lock-free profile only the puts run here
    // — gets that rode a put-headed batch are deferred past the release
    // (served below, off-lock, in pop order). On locked profiles this is
    // the historic path serving every op in pop order, byte-identical
    // behaviour to before the route split.
    for (std::size_t i = 0; i < count; ++i) {
      const Request& req = batch[i].req;
      const bool is_put = req.op == OpType::kPut;
      if (lock_free_gets && !is_put) continue;
      // Per-op cost class (DESIGN.md §7): the emulated critical-section
      // cost of *this* op's kind, on top of the actual engine call below.
      spin_nops(slot.speed.scale_cs(cost_.op(is_put).cs_nops));
      if (is_put) {
        shard.engine->put(req.key, batch[i].value);
      } else {
        (void)shard.engine->get(req.key);
        cs_gets_.fetch_add(1, std::memory_order_relaxed);
      }
      // A request is done at the end of its own segment, not the batch's:
      // later batch members pay for the work ahead of them in their
      // measured latency, exactly like requests served by separate
      // acquisitions.
      batch[i].done = now_ns();
    }
    // Hold time ends here; the histogram/span recording happens after the
    // release so observation never extends the critical section.
    const Nanos hold = telem ? now_ns() - t_acq : 0;
    shard.lock.unlock();
    if (telem) {
      telem->on_lock_hold(slot.index, hold);
      if (traced) {
        telem->tracer().record(slot.index, obs::SpanPhase::kCriticalSection,
                               t_acq, hold);
      }
    }
    // Batch-size capture after the release: the recorder's internal lock
    // must not extend the shard critical section. `count` is final — the
    // extension loop closed before the CS pass.
    if (TraceRecorder* rec = recorder_.load(std::memory_order_relaxed)) {
      rec->on_batch(slot.shard, static_cast<std::uint32_t>(count));
    }
    if (lock_free_gets) {
      // Deferred gets: off-lock, after the puts published. Each still gets
      // its own done stamp at the end of its own segment, so a get that
      // waited behind two puts and another get pays for all three in its
      // measured latency — the same segment rule as the CS pass.
      for (std::size_t i = 0; i < count; ++i) {
        const Request& req = batch[i].req;
        if (req.op == OpType::kPut) continue;
        spin_nops(slot.speed.scale_ncs(cost_.get.cs_nops));
        (void)shard.engine->get(req.key);
        batch[i].done = now_ns();
        lockfree_gets_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // Per-request feedback even though the acquisition was shared: the head
  // ends the epoch opened before the lock; every later member brackets its
  // own class epoch with an immediate start/end pair. Each served request
  // therefore counts exactly one completion in its class's epoch, and each
  // class controller sees that request's end-to-end latency (queue wait
  // included) — batching amortizes the lock, never the feedback.
  const Nanos post_start = traced ? now_ns() : 0;
  for (std::size_t i = 0; i < count; ++i) {
    const Request& req = batch[i].req;
    ClassState& cs = *classes_[req.class_index];
    const Nanos total =
        batch[i].done > req.enqueue_ns ? batch[i].done - req.enqueue_ns : 0;
    if (i > 0) epoch_start(cs.epoch_id);
    if (cs.spec.slo_ns > 0) {
      epoch_end_with_latency(cs.epoch_id, cs.spec.slo_ns, total);
    } else {
      epoch_end(cs.epoch_id);
    }
    cs.stats_lock.lock();
    cs.completed += 1;
    if (cs.spec.slo_ns == 0 || total <= cs.spec.slo_ns) cs.slo_met += 1;
    cs.total.record(slot.type, total);
    cs.queue_wait.record(batch[i].wait);
    cs.stats_lock.unlock();
    if (telem) telem->on_complete(slot.index, req.class_index, total);
    spin_nops(slot.speed.scale_ncs(
        cost_.op(req.op == OpType::kPut).post_nops));
  }
  if (traced) {
    telem->tracer().record(slot.index, obs::SpanPhase::kPostSection,
                           post_start, now_ns() - post_start);
  }
  // Recycle every value slot for the next batch. The engines copied the
  // bytes during their put calls, so nothing references the arena now.
  arena.release();
}

}  // namespace asl::server
