#include "server/replay.h"

#include <algorithm>

#include "platform/time.h"

namespace asl::server {

RealReplayResult replay_trace(KvService& service, const RecordedTrace& trace,
                              const ReplayOptions& options) {
  RealReplayResult result;
  // Tally in the trace's shape so the parity check is a straight
  // accounting_counts_match. Shard slots cover both shard counts: routes
  // are recomputed against the live service, which may be configured wider
  // or narrower than the recording (then the size mismatch itself is the
  // reported difference).
  result.accounting.classes.resize(trace.accounting.classes.size());
  for (std::size_t i = 0; i < result.accounting.classes.size(); ++i) {
    result.accounting.classes[i].name = trace.accounting.classes[i].name;
  }
  result.accounting.shards.resize(std::max<std::size_t>(
      service.config().num_shards, trace.meta.num_shards));

  const bool paced = options.time_scale > 0;
  const Nanos origin = now_ns();
  Nanos last = origin;
  for (const TraceRecord& rec : trace.records) {
    if (rec.class_index >= service.num_classes() ||
        rec.class_index >= result.accounting.classes.size()) {
      result.skipped += 1;
      continue;
    }
    result.offered += 1;
    if (paced) {
      const Nanos target =
          origin + static_cast<Nanos>(static_cast<double>(rec.at) *
                                      options.time_scale);
      const Nanos now = now_ns();
      if (now < target) {
        // Coarse sleep, then spin the last stretch (run_open_loop's pacing
        // idiom): submissions stay near the recorded tempo without burning
        // the replay core.
        if (target - now > 60 * kNanosPerMicro) {
          sleep_ns(target - now - 50 * kNanosPerMicro);
        }
        spin_until(target);
      }
    }

    TraceClassTotals& cls = result.accounting.classes[rec.class_index];
    TraceShardTotals& shd = result.accounting.shards[service.shard_of(rec.key)];
    if (options.enforce_decisions && rec.decision != TraceDecision::kAdmit) {
      // Honor the recorded bounce: account it where the recording did,
      // without re-offering — the service sees only the recorded accepted
      // stream.
      cls.rejected += 1;
      shd.rejected += 1;
      if (rec.decision == TraceDecision::kShed) {
        cls.shed += 1;
        shd.shed += 1;
        result.enforced_shed += 1;
      } else {
        result.enforced_reject += 1;
      }
      last = now_ns();
      continue;
    }

    result.submitted += 1;
    const bool ok =
        service.try_submit(rec.is_put ? OpType::kPut : OpType::kGet, rec.key,
                           rec.class_index);
    if (ok) {
      result.accepted += 1;
      cls.accepted += 1;
      shd.accepted += 1;
    } else {
      // try_submit does not report shed vs full, so a live bounce lands in
      // the rejected totals only — with enforce_decisions on, any bounce
      // here is already a divergence (the recording admitted this record).
      result.rejected += 1;
      cls.rejected += 1;
      shd.rejected += 1;
    }
    if (ok != (rec.decision == TraceDecision::kAdmit)) {
      result.divergence += 1;
    }
    last = now_ns();
  }
  result.elapsed = last > origin ? last - origin : 0;
  return result;
}

}  // namespace asl::server
