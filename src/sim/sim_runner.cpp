#include "sim/sim_runner.h"

#include <memory>

#include "reorder/reorderable.h"

namespace asl::sim {
namespace {

// Per-thread runner state wrapping the shared SimThread model.
struct RunnerThread {
  SimThread sim{};
  WindowController controller;
  EpochPlan plan{};
  std::uint64_t epoch_index = 0;

  explicit RunnerThread(const WindowController::Config& cfg)
      : controller(cfg) {}
};

class Runner {
 public:
  Runner(const SimConfig& cfg, const EpochGen& gen)
      : cfg_(cfg), gen_(gen), rng_(cfg.seed) {
    const auto& m = cfg_.machine;
    cores_.reserve(m.num_big_cores + m.num_little_cores);
    for (std::uint32_t i = 0; i < m.num_big_cores; ++i) {
      cores_.push_back(Core{i, CoreType::kBig, 0});
    }
    for (std::uint32_t i = 0; i < m.num_little_cores; ++i) {
      cores_.push_back(
          Core{m.num_big_cores + i, CoreType::kLittle, 0});
    }
    locks_.reserve(cfg_.num_locks);
    for (std::uint32_t i = 0; i < cfg_.num_locks; ++i) {
      locks_.push_back(make_sim_lock(cfg_.lock, &eng_, &cfg_.machine, &rng_,
                                     cfg_.pb_proportion));
    }
    // Bind threads to cores round-robin within their type band, matching
    // the paper's even binding (2 threads/core in Bench-6 falls out of
    // big_threads = 2 * num_big_cores).
    std::uint32_t id = 0;
    for (std::uint32_t i = 0; i < cfg_.big_threads; ++i) {
      threads_.push_back(std::make_unique<RunnerThread>(cfg_.controller));
      threads_.back()->sim.id = id++;
      threads_.back()->sim.core = big_core(i);
    }
    for (std::uint32_t i = 0; i < cfg_.little_threads; ++i) {
      threads_.push_back(std::make_unique<RunnerThread>(cfg_.controller));
      threads_.back()->sim.id = id++;
      threads_.back()->sim.core = little_core(i);
    }
    for (auto& th : threads_) th->sim.core->runnable += 1;
  }

  SimResult run() {
    end_ = cfg_.warmup + cfg_.measure;
    for (auto& th : threads_) {
      start_epoch(th.get());
    }
    eng_.run_until(end_);
    result_.measured = cfg_.measure;
    return std::move(result_);
  }

 private:
  Core* big_core(std::uint32_t i) {
    return &cores_[i % cfg_.machine.num_big_cores];
  }
  Core* little_core(std::uint32_t i) {
    return &cores_[cfg_.machine.num_big_cores +
                   i % cfg_.machine.num_little_cores];
  }

  bool in_window(Time t) const { return t >= cfg_.warmup && t < end_; }

  Time scale_cs(const RunnerThread& th, Time base) const {
    const double stretch = th.sim.core->stretch();
    return static_cast<Time>(static_cast<double>(base) *
                             cfg_.machine.cs_slowdown(th.sim.type()) *
                             stretch);
  }
  Time scale_ncs(const RunnerThread& th, Time base) const {
    const double stretch = th.sim.core->stretch();
    return static_cast<Time>(static_cast<double>(base) *
                             cfg_.machine.ncs_slowdown(th.sim.type()) *
                             stretch);
  }

  // Window Algorithm 3 receives for this thread right now: the AIMD
  // controller's (or the no-SLO maximum) under kAsl, the fixed window under
  // kAslStatic.
  Time reorder_window(const RunnerThread& th) const {
    if (cfg_.policy == Policy::kAslStatic) return cfg_.static_window;
    return cfg_.use_slo ? th.controller.window()
                        : DispatchPolicy::no_epoch_window();
  }

  // The acquisition decision. kPlain bypasses LibASL entirely (baseline
  // locks have no reorder entry point); the ASL policies go through the
  // production DispatchPolicy — the same Algorithm 3 implementation
  // AslMutex::lock() runs.
  LockPlan plan_for(const RunnerThread& th) const {
    if (cfg_.policy == Policy::kPlain) return LockPlan{true, 0};
    return DispatchPolicy::plan(th.sim.type(), reorder_window(th));
  }

  void start_epoch(RunnerThread* th) {
    if (eng_.now() >= end_) return;
    th->plan = gen_(th->sim, th->epoch_index, eng_.now(), rng_);
    th->sim.epoch_begin = eng_.now();
    th->sim.section_index = 0;
    run_section(th);
  }

  void run_section(RunnerThread* th) {
    if (th->sim.section_index >= th->plan.sections.size()) {
      end_epoch(th);
      return;
    }
    const Section& sec = th->plan.sections[th->sim.section_index];
    const Time ncs = scale_ncs(*th, sec.ncs_before);
    eng_.after(ncs, [this, th] { do_acquire(th); });
  }

  void do_acquire(RunnerThread* th) {
    const Section& sec = th->plan.sections[th->sim.section_index];
    SimLock* lock = locks_[sec.lock % locks_.size()].get();
    const LockPlan plan = plan_for(*th);
    lock->acquire(&th->sim,
                  plan.immediate ? AcquireMode::kImmediate
                                 : AcquireMode::kReorder,
                  plan.window_ns,
                  [this, th, lock] {
                    const Section& s = th->plan.sections[th->sim.section_index];
                    const Time cs = scale_cs(*th, s.cs);
                    eng_.after(cs, [this, th, lock] {
                      lock->release(&th->sim);
                      if (in_window(eng_.now())) {
                        result_.cs_total += 1;
                        if (th->sim.type() == CoreType::kBig) {
                          result_.cs_big += 1;
                        } else {
                          result_.cs_little += 1;
                        }
                      }
                      th->sim.section_index += 1;
                      run_section(th);
                    });
                  });
  }

  void end_epoch(RunnerThread* th) {
    const Time latency = eng_.now() - th->sim.epoch_begin;
    if (in_window(eng_.now())) {
      result_.epochs += 1;
      result_.latency.record(th->sim.type(), latency);
    }
    if (cfg_.record_series) {
      (th->sim.type() == CoreType::kBig ? result_.big_series
                                        : result_.little_series)
          .record(eng_.now(), latency);
    }
    // Algorithm 2 feedback, gated by the production DispatchPolicy (little
    // cores only).
    asl_epoch_feedback(cfg_.policy, cfg_.use_slo, th->sim.type(),
                       th->controller, latency, cfg_.slo);
    th->epoch_index += 1;
    const Time gap = scale_ncs(*th, th->plan.gap_after);
    eng_.after(gap, [this, th] { start_epoch(th); });
  }

  SimConfig cfg_;
  EpochGen gen_;
  Rng rng_;
  Engine eng_;
  Time end_ = 0;
  std::vector<Core> cores_;
  std::vector<std::unique_ptr<SimLock>> locks_;
  std::vector<std::unique_ptr<RunnerThread>> threads_;
  SimResult result_;
};

}  // namespace

SimResult run_sim(const SimConfig& config, const EpochGen& gen) {
  Runner runner(config, gen);
  return runner.run();
}

EpochGen single_cs_workload(Time cs_ns, Time gap_ns) {
  return [cs_ns, gap_ns](const SimThread&, std::uint64_t, Time, Rng&) {
    EpochPlan plan;
    plan.sections.push_back(Section{0, cs_ns, 0});
    plan.gap_after = gap_ns;
    return plan;
  };
}

}  // namespace asl::sim
