// Simulation experiment runner: spawns simulated threads executing an epoch
// workload against a simulated lock, applies the LibASL dispatch policy, and
// collects the statistics every figure reports.
//
// Both halves of the feedback loop are the production code (DESIGN.md §2):
// the AIMD controller is asl::WindowController and the big/little dispatch
// plus the little-cores-only feedback gate come from asl::DispatchPolicy —
// the simulator consumes the very classes AslMutex ships, not a
// reimplementation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "asl/runtime.h"
#include "asl/window_controller.h"
#include "stats/latency_split.h"
#include "platform/rng.h"
#include "sim/core_model.h"
#include "sim/engine.h"
#include "sim/sim_lock.h"
#include "stats/timeseries.h"

namespace asl::sim {

// One critical section inside an epoch: which lock, how long the section
// runs on a big core, and how much non-critical work precedes it.
struct Section {
  std::uint32_t lock = 0;
  Time cs = 0;          // critical-section length on a big core (ns)
  Time ncs_before = 0;  // non-critical work before acquiring (ns, big core)
};

// One epoch instance: its sections plus the inter-epoch gap that follows.
struct EpochPlan {
  std::vector<Section> sections;
  Time gap_after = 0;  // non-critical work after the epoch (outside latency)
};

// Generates the next epoch for a thread. Receiving the epoch index, the
// current virtual time and the experiment RNG lets workloads script phase
// changes (Bench-2), random mixes (Bench-3) and per-op draws (the database
// models).
using EpochGen = std::function<EpochPlan(const SimThread& thread,
                                         std::uint64_t epoch_index, Time now,
                                         Rng& rng)>;

// How lock() calls are issued.
enum class Policy : std::uint8_t {
  kPlain,      // every thread acquires immediately (baseline locks)
  kAsl,        // Algorithm 3 via asl::DispatchPolicy: big -> immediate;
               // little -> reorder with the AIMD window (or the max window
               // when no SLO is set)
  kAslStatic,  // LibASL-OPT: little cores use a fixed window, no feedback
};

// The per-epoch feedback step, shared verbatim by Runner::end_epoch and the
// dispatch-parity tests: Policy::kAsl with an SLO runs the production AIMD
// update on the threads DispatchPolicy says adapt (little cores).
inline void asl_epoch_feedback(Policy policy, bool use_slo, CoreType type,
                               WindowController& controller, Time latency,
                               Time slo) {
  if (policy == Policy::kAsl && use_slo &&
      DispatchPolicy::updates_window(type)) {
    controller.on_epoch_end(latency, slo);
  }
}

struct SimConfig {
  MachineParams machine{};
  std::uint32_t big_threads = 4;
  std::uint32_t little_threads = 4;
  LockKind lock = LockKind::kMcs;
  std::uint32_t num_locks = 1;
  Policy policy = Policy::kPlain;

  bool use_slo = true;        // false + kAsl = LibASL-MAX (default window)
  Time slo = 50 * kMicro;     // per-epoch latency SLO (virtual ns)
  Time static_window = 0;     // for kAslStatic
  WindowController::Config controller{};

  Time warmup = 20 * kMilli;   // adaptation period, excluded from stats
  Time measure = 150 * kMilli; // measurement period
  std::uint64_t seed = 42;
  std::uint32_t pb_proportion = 10;
  bool record_series = false;  // per-epoch latency time series (Fig 8d)
};

struct SimResult {
  std::uint64_t cs_total = 0;  // critical sections completed in the window
  std::uint64_t cs_big = 0;
  std::uint64_t cs_little = 0;
  std::uint64_t epochs = 0;
  Time measured = 0;
  LatencySplit latency;        // epoch latency, split by core type
  TimeSeries big_series;       // (time, latency) of every epoch (if enabled)
  TimeSeries little_series;

  double cs_throughput() const {
    return measured == 0 ? 0.0
                         : static_cast<double>(cs_total) *
                               static_cast<double>(kSecond) /
                               static_cast<double>(measured);
  }
  double epoch_throughput() const {
    return measured == 0 ? 0.0
                         : static_cast<double>(epochs) *
                               static_cast<double>(kSecond) /
                               static_cast<double>(measured);
  }
};

SimResult run_sim(const SimConfig& config, const EpochGen& gen);

// Convenience: epoch = single critical section + inter-epoch gap (the
// Figure 1/4/8e micro-benchmark shape).
EpochGen single_cs_workload(Time cs_ns, Time gap_ns);

}  // namespace asl::sim
