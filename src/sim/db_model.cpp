#include "sim/db_model.h"

namespace asl::sim {
namespace {

// Lock id layout conventions per model (ids index SimConfig::num_locks):
//   0            = the engine's global / method / state-machine lock
//   1..N         = slot or metadata locks

// Kyoto Cabinet model: in-memory hash KV. Every op takes the method RW lock
// briefly, then one of 16 slot locks for the bucket operation. Put rewrites
// the record (longer) vs Get's lookup. Latencies land in the tens-of-us
// decade (paper CDF SLO: 70us, half-SLO boundary at the Get/Put split).
EpochPlan kyoto_epoch(const SimThread&, std::uint64_t, Time, Rng& rng) {
  EpochPlan plan;
  const bool put = rng.chance(0.5);
  const std::uint32_t slot = 1 + static_cast<std::uint32_t>(rng.below(16));
  // The store-wide method lock is the bottleneck (every op takes it; the 16
  // slot locks split the remaining contention 16 ways).
  plan.sections.push_back(Section{0, 800, 300});            // method lock
  plan.sections.push_back(
      Section{slot, put ? Time{2000} : Time{700}, 200});    // slot lock
  plan.gap_after = 1200;
  return plan;
}

// upscaledb model: on-disk B-tree KV with one global lock held for the
// whole tree operation plus a worker-pool lock. The paper observes TAS
// showing *big-core affinity* on this workload.
EpochPlan upscaledb_epoch(const SimThread&, std::uint64_t, Time, Rng& rng) {
  EpochPlan plan;
  const bool put = rng.chance(0.5);
  plan.sections.push_back(Section{1, 300, 400});                  // pool lock
  plan.sections.push_back(
      Section{0, put ? Time{5200} : Time{1800}, 300});            // global
  plan.gap_after = 2000;
  return plan;
}

// LMDB model: single-writer B-tree. Put holds the global writer lock for
// the copy-on-write update; both ops touch metadata locks (reader table,
// txn bookkeeping). Latency decade: hundreds of us to ~2ms (CDF SLO 1.9ms).
EpochPlan lmdb_epoch(const SimThread&, std::uint64_t, Time, Rng& rng) {
  EpochPlan plan;
  const bool put = rng.chance(0.5);
  plan.sections.push_back(Section{1, 900, 2'000});                // metadata
  if (put) {
    // Copy-on-write path update under the single-writer lock. 40us on a big
    // core keeps the little-core feasibility floor (own CS + big-writer
    // queue ~ 320us) under the paper's 400/600us comparison SLOs.
    plan.sections.push_back(Section{0, 40'000, 1'500});           // writer
  } else {
    plan.sections.push_back(Section{2, 1'100, 12'000});           // reader tbl
  }
  plan.gap_after = 9'000;
  return plan;
}

// LevelDB model: db_bench randomread. Every Get briefly takes the global
// metadata lock to snapshot the version set, then reads off-lock.
EpochPlan leveldb_epoch(const SimThread&, std::uint64_t, Time, Rng& rng) {
  EpochPlan plan;
  plan.sections.push_back(Section{0, 1'600, 2'500});     // snapshot metadata
  // Off-lock read work, variable with cache behaviour.
  plan.gap_after = 3'000 + rng.below(3'000);
  return plan;
}

// SQLite model: DEFERRED transactions against the state-machine lock:
// 1/3 insert (journal write, long), 1/3 simple indexed select (short),
// 1/3 complex range select (medium), plus an extremely long full-table scan
// every 1000th epoch (the paper adds one per 1000 executions to show SLO
// survival under occasional giants). Multi-ms decade (CDF SLO 4ms).
EpochPlan sqlite_epoch(const SimThread&, std::uint64_t epoch_index, Time,
                       Rng& rng) {
  EpochPlan plan;
  plan.sections.push_back(Section{1, 700, 1'500});  // schema/metadata lock
  if (epoch_index % 1000 == 999) {
    plan.sections.push_back(Section{0, 2'000'000, 500});  // full-table scan
  } else {
    const std::uint64_t pick = rng.below(3);
    Time cs = 0;
    switch (pick) {
      case 0: cs = 130'000; break;  // insert: state machine through EXCLUSIVE
      case 1: cs = 9'000; break;    // simple point select
      default: cs = 38'000; break;  // complex filtered range select
    }
    plan.sections.push_back(Section{0, cs, 800});
  }
  plan.gap_after = 15'000;
  return plan;
}

}  // namespace

const char* to_string(DbKind kind) {
  switch (kind) {
    case DbKind::kKyoto: return "kyotocabinet";
    case DbKind::kUpscaleDb: return "upscaledb";
    case DbKind::kLmdb: return "lmdb";
    case DbKind::kLevelDb: return "leveldb";
    case DbKind::kSqlite: return "sqlite";
  }
  return "?";
}

DbWorkload make_db_workload(DbKind kind) {
  DbWorkload w;
  w.name = to_string(kind);
  switch (kind) {
    case DbKind::kKyoto:
      w.gen = kyoto_epoch;
      w.num_locks = 17;
      w.tas_affinity = TasAffinity::kLittleCores;  // Section 2.2 / 4.2
      w.paper_slo_a = 40 * kMicro;
      w.paper_slo_b = 70 * kMicro;
      w.sweep_max = 200 * kMicro;
      w.cdf_slo = 70 * kMicro;
      break;
    case DbKind::kUpscaleDb:
      w.gen = upscaledb_epoch;
      w.num_locks = 2;
      w.tas_affinity = TasAffinity::kBigCores;  // Section 4.2
      w.paper_slo_a = 100 * kMicro;
      w.paper_slo_b = 140 * kMicro;
      w.sweep_max = 400 * kMicro;
      w.cdf_slo = 140 * kMicro;
      break;
    case DbKind::kLmdb:
      w.gen = lmdb_epoch;
      w.num_locks = 3;
      w.tas_affinity = TasAffinity::kLittleCores;
      // The paper compares at 400/600us on M1; our calibration's little-core
      // write cost puts the feasibility floor near 900us, so the comparison
      // SLOs sit at 1000/1500us — still inside the paper's 0-2000us sweep
      // (Figure 9h).
      w.paper_slo_a = 1000 * kMicro;
      w.paper_slo_b = 1500 * kMicro;
      w.sweep_max = 2400 * kMicro;
      w.cdf_slo = 1900 * kMicro;
      break;
    case DbKind::kLevelDb:
      w.gen = leveldb_epoch;
      w.num_locks = 1;
      w.tas_affinity = TasAffinity::kBigCores;
      w.paper_slo_a = 15 * kMicro;
      w.paper_slo_b = 30 * kMicro;
      w.sweep_max = 100 * kMicro;
      w.cdf_slo = 100 * kMicro;
      break;
    case DbKind::kSqlite:
      w.gen = sqlite_epoch;
      w.num_locks = 2;
      w.tas_affinity = TasAffinity::kLittleCores;
      w.paper_slo_a = 4 * kMilli;
      w.paper_slo_b = 7 * kMilli;
      w.sweep_max = 20 * kMilli;
      w.cdf_slo = 4 * kMilli;
      break;
  }
  return w;
}

}  // namespace asl::sim
