#include "sim/sim_lock.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "reorder/reorderable.h"

namespace asl::sim {
namespace {

// The production bound from reorder/reorderable.h (100 ms), shared so real
// and simulated standby competitors clamp identically.
constexpr Time kSimMaxReorderWindow = asl::kMaxReorderWindow;
// Standby poll backoff cap: Algorithm 1's exponential check spacing, bounded
// so a long-standing standby competitor still detects a free lock promptly.
constexpr Time kPollGapCap = 16 * kMicro;

struct Waiter {
  SimThread* t = nullptr;
  Engine::Action cb;
};

// ---------------------------------------------------------------- FIFO base
// MCS: constant-cost handover. Ticket: handover cost grows with the number
// of spinning waiters (every waiter's cached copy of the grant word is
// invalidated), which is what makes ticket locks non-scalable.
class FifoSimLock : public SimLock {
 public:
  FifoSimLock(Engine* eng, const MachineParams* mp, Rng* rng,
              bool ticket_costs)
      : SimLock(eng, mp, rng), ticket_costs_(ticket_costs) {}

  void acquire(SimThread* t, AcquireMode, Time, Engine::Action granted) override {
    if (!held_) {
      held_ = true;
      eng_->after(mp_->uncontended_acquire, std::move(granted));
      return;
    }
    queue_.push_back(Waiter{t, std::move(granted)});
  }

  void release(SimThread*) override {
    if (queue_.empty()) {
      held_ = false;
      return;
    }
    Waiter w = std::move(queue_.front());
    queue_.pop_front();
    Time cost = mp_->handover + spinner_grant_penalty(w.t);
    if (ticket_costs_) {
      cost += mp_->ticket_per_waiter * static_cast<Time>(queue_.size() + 1);
    }
    eng_->after(cost, std::move(w.cb));
  }

  bool is_free() const override { return !held_; }

 private:
  bool ticket_costs_;
  bool held_ = false;
  std::deque<Waiter> queue_;
};

// ------------------------------------------------------------------ TAS
// Unfair: a release triggers a contended TAS round among all current
// spinners; the winner is drawn with per-core-type weights (the asymmetric
// atomic success rate of Section 2.2). Arrivals during the round take part.
class TasSimLock : public SimLock {
 public:
  TasSimLock(Engine* eng, const MachineParams* mp, Rng* rng)
      : SimLock(eng, mp, rng) {}

  void acquire(SimThread* t, AcquireMode, Time, Engine::Action granted) override {
    if (!held_ && !deciding_) {
      held_ = true;
      eng_->after(mp_->uncontended_acquire, std::move(granted));
      return;
    }
    spinners_.push_back(Waiter{t, std::move(granted)});
  }

  void release(SimThread*) override {
    held_ = false;
    if (spinners_.empty() || deciding_) return;
    start_round();
  }

  bool is_free() const override { return !held_ && !deciding_; }

 private:
  void start_round() {
    deciding_ = true;
    const Time cost =
        mp_->tas_decision +
        mp_->tas_per_waiter * static_cast<Time>(spinners_.size());
    eng_->after(cost, [this] { finish_round(); });
  }

  void finish_round() {
    deciding_ = false;
    if (spinners_.empty() || held_) return;
    double total = 0;
    for (const Waiter& w : spinners_) total += mp_->tas_weight(w.t->type());
    double draw = rng_->uniform() * total;
    std::size_t winner = spinners_.size() - 1;
    for (std::size_t i = 0; i < spinners_.size(); ++i) {
      draw -= mp_->tas_weight(spinners_[i].t->type());
      if (draw <= 0) {
        winner = i;
        break;
      }
    }
    Waiter w = std::move(spinners_[winner]);
    spinners_.erase(spinners_.begin() + static_cast<std::ptrdiff_t>(winner));
    held_ = true;
    eng_->after(spinner_grant_penalty(w.t), std::move(w.cb));
  }

  bool held_ = false;
  bool deciding_ = false;
  std::vector<Waiter> spinners_;
};

// ------------------------------------------------------------- spin-then-park
// FIFO MCS where a waiter parks after its spin budget; granting a parked
// waiter pays the wakeup latency — on every handover, which is the Bench-6
// pathology ("spin-then-park MCS is 96% worse than pthread_mutex_lock").
class StpMcsSimLock : public SimLock {
 public:
  StpMcsSimLock(Engine* eng, const MachineParams* mp, Rng* rng)
      : SimLock(eng, mp, rng) {}

  void acquire(SimThread* t, AcquireMode, Time, Engine::Action granted) override {
    if (!held_) {
      held_ = true;
      eng_->after(mp_->uncontended_acquire, std::move(granted));
      return;
    }
    auto w = std::make_shared<ParkWaiter>();
    w->t = t;
    w->cb = std::move(granted);
    queue_.push_back(w);
    eng_->after(kSpinBudget, [w] {
      if (!w->granted && !w->parked) {
        w->parked = true;
        w->t->core->runnable -= 1;
      }
    });
  }

  void release(SimThread*) override {
    if (queue_.empty()) {
      held_ = false;
      return;
    }
    auto w = queue_.front();
    queue_.pop_front();
    w->granted = true;
    if (w->parked) {
      eng_->after(mp_->wakeup_latency, [w] {
        w->t->core->runnable += 1;
        w->cb();
      });
    } else {
      eng_->after(mp_->handover, [w] { w->cb(); });
    }
  }

  bool is_free() const override { return !held_; }

 private:
  static constexpr Time kSpinBudget = 5 * kMicro;

  struct ParkWaiter {
    SimThread* t = nullptr;
    Engine::Action cb;
    bool parked = false;
    bool granted = false;
  };

  bool held_ = false;
  std::deque<std::shared_ptr<ParkWaiter>> queue_;
};

// ----------------------------------------------------------------- pthread
// Unfair blocking lock with barging: waiters park immediately; release makes
// the lock free and wakes one waiter, but any thread arriving before the
// wakeup completes can steal the lock (the woken waiter re-parks). This is
// the glibc behaviour the paper leans on for the blocking LibASL substrate.
class PthreadSimLock : public SimLock {
 public:
  PthreadSimLock(Engine* eng, const MachineParams* mp, Rng* rng)
      : SimLock(eng, mp, rng) {}

  void acquire(SimThread* t, AcquireMode, Time, Engine::Action granted) override {
    // Barging: an arrival may steal a free lock, but when a woken waiter is
    // in flight the race is a coin flip (in real hardware the outcome
    // depends on scheduling noise; always-wins would starve the wait queue).
    if (!held_ && (!wake_pending_ || rng_->chance(0.5))) {
      held_ = true;
      eng_->after(mp_->uncontended_acquire, std::move(granted));
      return;
    }
    auto w = std::make_shared<Waiter>(Waiter{t, std::move(granted)});
    t->core->runnable -= 1;
    sleepers_.push_back(w);
  }

  void release(SimThread*) override {
    held_ = false;
    if (sleepers_.empty() || wake_pending_) return;
    wake_one();
  }

  bool is_free() const override { return !held_; }

 private:
  void wake_one() {
    wake_pending_ = true;
    auto w = sleepers_.front();
    sleepers_.pop_front();
    eng_->after(mp_->wakeup_latency, [this, w] {
      wake_pending_ = false;
      if (!held_) {
        held_ = true;
        w->t->core->runnable += 1;
        w->cb();
      } else {
        // Barged by a faster arrival: stay parked at the queue head.
        sleepers_.push_front(w);
      }
    });
  }

  bool held_ = false;
  bool wake_pending_ = false;
  std::deque<std::shared_ptr<Waiter>> sleepers_;
};

// ----------------------------------------------------------------- SHFL-PB
// Proportional big:little rotation, mirroring locks/shfl_pb.h: serve
// `proportion` big-core acquisitions, then one little-core acquisition.
class ShflPbSimLock : public SimLock {
 public:
  ShflPbSimLock(Engine* eng, const MachineParams* mp, Rng* rng,
                std::uint32_t proportion)
      : SimLock(eng, mp, rng),
        proportion_(proportion == 0 ? 1 : proportion) {}

  void acquire(SimThread* t, AcquireMode, Time, Engine::Action granted) override {
    if (!held_) {
      held_ = true;
      eng_->after(mp_->uncontended_acquire, std::move(granted));
      return;
    }
    auto& q = t->type() == CoreType::kBig ? big_ : little_;
    q.push_back(Waiter{t, std::move(granted)});
  }

  void release(SimThread*) override {
    Waiter w;
    const bool little_turn = served_big_ >= proportion_;
    if (little_turn && !little_.empty()) {
      w = std::move(little_.front());
      little_.pop_front();
      served_big_ = 0;
    } else if (!big_.empty()) {
      w = std::move(big_.front());
      big_.pop_front();
      ++served_big_;
    } else if (!little_.empty()) {
      w = std::move(little_.front());
      little_.pop_front();
      served_big_ = 0;
    } else {
      held_ = false;
      return;
    }
    eng_->after(mp_->handover + spinner_grant_penalty(w.t), std::move(w.cb));
  }

  bool is_free() const override { return !held_; }

 private:
  std::uint32_t proportion_;
  bool held_ = false;
  std::uint32_t served_big_ = 0;
  std::deque<Waiter> big_;
  std::deque<Waiter> little_;
};

// ------------------------------------------------------------- reorderable
// Algorithm 1 over a FIFO queue. Standby competitors poll the lock word on
// an exponential-backoff schedule; when the lock goes free with an empty
// queue, the standby with the earliest upcoming poll claims it — unless an
// immediate acquisition barges in first (claim generations invalidate stale
// claims). Window expiry moves the standby into the FIFO queue.
//
// `blocking` selects the Bench-6 variant, whose substrate is the *unfair
// blocking* pthread lock rather than a FIFO queue (Section 4.1: a FIFO
// spin-then-park substrate would put a wakeup on every handover). Standby
// competitors sleep between nanosleep-backoff polls (1us doubling to 1ms);
// queue waiters park, and release wakes one of them while letting a faster
// arrival barge in (glibc behaviour) — the woken waiter re-parks on a lost
// race.
class ReorderableSimLock : public SimLock {
 public:
  ReorderableSimLock(Engine* eng, const MachineParams* mp, Rng* rng,
                     bool blocking)
      : SimLock(eng, mp, rng), blocking_(blocking) {}

  void acquire(SimThread* t, AcquireMode mode, Time window,
               Engine::Action granted) override {
    if (mode == AcquireMode::kImmediate) {
      enqueue_fifo(t, std::move(granted), /*was_sleeping=*/false);
      return;
    }
    window = std::min(window, kSimMaxReorderWindow);
    if (!held_ && queue_.empty()) {
      take(std::move(granted), mp_->uncontended_acquire);
      return;
    }
    auto sb = std::make_shared<Standby>();
    sb->t = t;
    sb->cb = std::move(granted);
    sb->expiry = eng_->now() + window;
    sb->gap = blocking_ ? kSleepMin : mp_->poll_quantum;
    sb->next_poll = eng_->now() + sb->gap;
    if (blocking_) t->core->runnable -= 1;  // standby sleeps
    standby_.push_back(sb);
    eng_->at(sb->expiry, [this, sb] {
      if (!sb->active) return;
      sb->active = false;
      erase_standby(sb);
      // Window expired: join the FIFO queue (Algorithm 1 line 16).
      enqueue_fifo(sb->t, std::move(sb->cb), blocking_);
    });
  }

  void release(SimThread*) override {
    if (!blocking_) {
      // Spin variant: strict FIFO handover (MCS substrate).
      if (!queue_.empty()) {
        QWaiter w = std::move(queue_.front());
        queue_.pop_front();
        eng_->after(mp_->handover + spinner_grant_penalty(w.t),
                    std::move(w.cb));
        return;
      }
      held_ = false;
      schedule_claim();
      return;
    }
    // Blocking variant: pthread-like. The lock goes free immediately; one
    // parked waiter is woken (paying the wakeup latency) but arrivals and
    // standby polls may barge in first.
    held_ = false;
    if (!queue_.empty() && !wake_pending_) wake_one();
    schedule_claim();
  }

  bool is_free() const override { return !held_; }

 private:
  static constexpr Time kSleepMin = 1 * kMicro;
  static constexpr Time kSleepMax = 1 * kMilli;

  struct Standby {
    SimThread* t = nullptr;
    Engine::Action cb;
    Time expiry = 0;
    Time next_poll = 0;
    Time gap = 0;
    bool active = true;
  };
  struct QWaiter {
    SimThread* t = nullptr;
    Engine::Action cb;
    bool sleeping = false;
  };

  void take(Engine::Action cb, Time cost) {
    held_ = true;
    ++claim_gen_;
    eng_->after(cost, std::move(cb));
  }

  void enqueue_fifo(SimThread* t, Engine::Action cb, bool was_sleeping) {
    // Spin variant: only a fully free lock (empty queue) is acquirable on
    // arrival. Blocking variant: barging — any free lock may be taken even
    // with parked waiters (pthread substrate), but a woken waiter in flight
    // wins the race half the time.
    const bool acquirable =
        blocking_ ? (!held_ && (!wake_pending_ || rng_->chance(0.5)))
                  : (!held_ && queue_.empty());
    if (acquirable) {
      if (was_sleeping) t->core->runnable += 1;
      take(std::move(cb), mp_->uncontended_acquire);
      return;
    }
    // Blocking variant: queue waiters are parked; spin variant: they spin.
    bool sleeping = blocking_ || was_sleeping;
    if (blocking_ && !was_sleeping) t->core->runnable -= 1;
    queue_.push_back(QWaiter{t, std::move(cb), sleeping});
  }

  // Blocking variant: wake the queue head; it re-parks if barged.
  void wake_one() {
    wake_pending_ = true;
    auto w = std::make_shared<QWaiter>(std::move(queue_.front()));
    queue_.pop_front();
    eng_->after(mp_->wakeup_latency, [this, w] {
      wake_pending_ = false;
      if (!held_) {
        w->t->core->runnable += 1;
        take(std::move(w->cb), 0);
      } else {
        queue_.push_front(std::move(*w));  // lost the race: stay parked
      }
      if (!held_ && !queue_.empty() && !wake_pending_) wake_one();
    });
  }

  void erase_standby(const std::shared_ptr<Standby>& sb) {
    for (std::size_t i = 0; i < standby_.size(); ++i) {
      if (standby_[i] == sb) {
        standby_.erase(standby_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  // Lock just went free with an empty queue: let the standby with the
  // earliest upcoming poll claim it.
  void schedule_claim() {
    if (standby_.empty()) return;
    const Time now = eng_->now();
    std::shared_ptr<Standby> best;
    const Time gap_cap = blocking_ ? kSleepMax : kPollGapCap;
    for (auto& sb : standby_) {
      while (sb->next_poll < now) {
        sb->gap = std::min<Time>(sb->gap * 2, gap_cap);
        sb->next_poll += sb->gap;
      }
      if (!best || sb->next_poll < best->next_poll) best = sb;
    }
    const std::uint64_t gen = claim_gen_;
    eng_->at(best->next_poll, [this, best, gen] {
      if (gen != claim_gen_ || !best->active) return;
      // Spin variant: the FIFO substrate only looks free when the queue is
      // empty. Blocking variant: a free pthread lock is claimable even with
      // parked waiters (barging), racing any in-flight wakeup.
      if (held_ || (!blocking_ && !queue_.empty())) return;
      if (blocking_ && wake_pending_ && !rng_->chance(0.5)) return;
      best->active = false;
      erase_standby(best);
      if (blocking_) best->t->core->runnable += 1;
      take(std::move(best->cb), mp_->uncontended_acquire);
    });
  }

  bool blocking_;
  bool held_ = false;
  bool wake_pending_ = false;
  std::uint64_t claim_gen_ = 0;
  std::deque<QWaiter> queue_;
  std::vector<std::shared_ptr<Standby>> standby_;
};

}  // namespace

const char* to_string(LockKind kind) {
  switch (kind) {
    case LockKind::kPthread: return "pthread";
    case LockKind::kTas: return "tas";
    case LockKind::kTicket: return "ticket";
    case LockKind::kMcs: return "mcs";
    case LockKind::kStpMcs: return "mcs-stp";
    case LockKind::kShflPb: return "shfl-pb";
    case LockKind::kReorderable: return "reorderable";
    case LockKind::kBlockingReorderable: return "reorderable-blocking";
  }
  return "?";
}

std::unique_ptr<SimLock> make_sim_lock(LockKind kind, Engine* eng,
                                       const MachineParams* mp, Rng* rng,
                                       std::uint32_t pb_proportion) {
  switch (kind) {
    case LockKind::kPthread:
      return std::make_unique<PthreadSimLock>(eng, mp, rng);
    case LockKind::kTas:
      return std::make_unique<TasSimLock>(eng, mp, rng);
    case LockKind::kTicket:
      return std::make_unique<FifoSimLock>(eng, mp, rng,
                                           /*ticket_costs=*/true);
    case LockKind::kMcs:
      return std::make_unique<FifoSimLock>(eng, mp, rng,
                                           /*ticket_costs=*/false);
    case LockKind::kStpMcs:
      return std::make_unique<StpMcsSimLock>(eng, mp, rng);
    case LockKind::kShflPb:
      return std::make_unique<ShflPbSimLock>(eng, mp, rng, pb_proportion);
    case LockKind::kReorderable:
      return std::make_unique<ReorderableSimLock>(eng, mp, rng,
                                                  /*blocking=*/false);
    case LockKind::kBlockingReorderable:
      return std::make_unique<ReorderableSimLock>(eng, mp, rng,
                                                  /*blocking=*/true);
  }
  return nullptr;
}

}  // namespace asl::sim
