// Simulation workload models of the five evaluated databases (Table 1).
//
// Each model encodes the lock pattern the paper attributes to the engine
// (which locks an epoch takes, in what order, with what critical-section
// lengths) and the op mix of the benchmark run against it (50% put / 50% get
// for the KV stores, db_bench random-read for LevelDB, the 1/3-1/3-1/3
// transaction mix plus the rare full-table scan for SQLite).
//
// Critical-section lengths are virtual-time stand-ins chosen to land each
// benchmark in the latency decade the paper reports (Kyoto ~70us SLO, LMDB
// ~1.9ms, SQLite ~4ms); DESIGN.md §2 records this substitution. The real
// counterpart engines live in src/db and are exercised by tests/examples.
#pragma once

#include "sim/core_model.h"
#include "sim/sim_runner.h"

namespace asl::sim {

enum class DbKind : std::uint8_t {
  kKyoto,      // in-memory KV: slot-level lock + method lock
  kUpscaleDb,  // on-disk KV: global lock + worker-pool lock
  kLmdb,       // on-disk KV: global (writer) lock + metadata locks
  kLevelDb,    // on-disk KV: metadata (snapshot) lock, random-read only
  kSqlite,     // SQL: state-machine lock + metadata locks, mixed txns
};

struct DbWorkload {
  const char* name = "";
  EpochGen gen;                 // one epoch = one request
  std::uint32_t num_locks = 1;  // lock id space used by gen
  TasAffinity tas_affinity = TasAffinity::kSymmetric;
  Time paper_slo_a = 0;   // the two SLOs the paper's comparison bars use
  Time paper_slo_b = 0;
  Time sweep_max = 0;     // x-range of the paper's variant-SLO figure
  Time cdf_slo = 0;       // the SLO of the paper's CDF figure
};

DbWorkload make_db_workload(DbKind kind);

const char* to_string(DbKind kind);

}  // namespace asl::sim
