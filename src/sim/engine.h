// Discrete-event simulation engine (virtual-time core of the AMP testbed
// substitute — DESIGN.md §2).
//
// Events are (time, seq, closure) triples executed in (time, seq) order; seq
// makes simultaneous events deterministic (FIFO among equal timestamps).
// All times are virtual nanoseconds starting at 0.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace asl::sim {

using Time = std::uint64_t;

inline constexpr Time kMicro = 1'000ULL;
inline constexpr Time kMilli = 1'000'000ULL;
inline constexpr Time kSecond = 1'000'000'000ULL;

class Engine {
 public:
  using Action = std::function<void()>;

  // Schedule `fn` at absolute virtual time `t` (>= now, else clamped to now).
  void at(Time t, Action fn);
  // Schedule `fn` `delay` ns from now.
  void after(Time delay, Action fn) { at(now_ + delay, std::move(fn)); }

  Time now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

  // Execute the next event; returns false when the queue is empty.
  bool step();

  // Execute all events with timestamp <= end; leaves now() == end.
  void run_until(Time end);

  // Execute until the queue drains.
  void run_all();

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    Action fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace asl::sim
