// AMP machine model: cores, speed asymmetry, lock-primitive costs and the
// TAS win-rate asymmetry. All knobs in one struct so experiments state their
// assumptions explicitly (values justified in DESIGN.md §2 and calibrated
// against the paper's M1 observations in Section 2/4).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/topology.h"
#include "sim/engine.h"

namespace asl::sim {

using asl::CoreType;

// Which core type tends to win contended test-and-set rounds (Section 2.2:
// "on some AMP systems big cores have a stable advantage ... on other
// platforms the advantage shifts").
enum class TasAffinity : std::uint8_t {
  kSymmetric,
  kBigCores,
  kLittleCores,
};

struct MachineParams {
  std::uint32_t num_big_cores = 4;
  std::uint32_t num_little_cores = 4;

  // Speed asymmetry: how much longer little cores take. The paper measured
  // big cores 3.75x faster on memory-heavy Sysbench and 1.8x on NOP streams;
  // critical sections RMW shared cache lines (memory-heavy), non-critical
  // sections are NOP-like.
  double little_cs_slowdown = 4.0;
  double little_ncs_slowdown = 1.8;

  // Lock-primitive costs, virtual ns.
  Time uncontended_acquire = 15;  // CAS on a resident line
  Time handover = 60;             // queue-lock handoff (one line transfer)
  Time ticket_per_waiter = 12;    // ticket broadcast invalidation per waiter
  Time tas_decision = 50;         // contended TAS round resolution
  Time tas_per_waiter = 8;        // extra line-bouncing per spinner
  Time wakeup_latency = 8 * kMicro;  // futex wake -> runnable (Bench-6)
  Time poll_quantum = 64;         // standby poll backoff base (Algorithm 1)

  // Relative TAS win weight of the advantaged core type (paper: the
  // advantage is "stable", i.e. strong).
  double tas_affinity_weight = 6.0;
  TasAffinity tas_affinity = TasAffinity::kSymmetric;

  // Threads per core; 2 = the Bench-6 oversubscription setup.
  std::uint32_t threads_per_core = 1;
  // OS scheduling quantum: when a lock is granted to a spinning waiter that
  // is currently descheduled (its core is oversubscribed), the handover
  // stalls for up to this long — the reason spin locks die under
  // oversubscription and Bench-6 switches to blocking locks.
  Time sched_quantum = 3 * kMilli;

  double cs_slowdown(CoreType t) const {
    return t == CoreType::kBig ? 1.0 : little_cs_slowdown;
  }
  double ncs_slowdown(CoreType t) const {
    return t == CoreType::kBig ? 1.0 : little_ncs_slowdown;
  }
  double tas_weight(CoreType t) const {
    switch (tas_affinity) {
      case TasAffinity::kSymmetric:
        return 1.0;
      case TasAffinity::kBigCores:
        return t == CoreType::kBig ? tas_affinity_weight : 1.0;
      case TasAffinity::kLittleCores:
        return t == CoreType::kLittle ? tas_affinity_weight : 1.0;
    }
    return 1.0;
  }
};

// A simulated core: tracks how many threads currently need its pipeline
// (computing or spin-waiting). Compute segments are stretched by the
// occupancy at segment start — a coarse but shape-preserving time-sharing
// model for the oversubscription experiments.
struct Core {
  std::uint32_t id = 0;
  CoreType type = CoreType::kBig;
  std::uint32_t runnable = 0;

  double stretch() const { return runnable == 0 ? 1.0 : runnable; }
};

// A simulated thread, bound to one core for the whole run (the paper's
// evaluation binds threads; Section 4 setup).
struct SimThread {
  std::uint32_t id = 0;
  Core* core = nullptr;

  CoreType type() const { return core->type; }

  // Runner bookkeeping (opaque to locks).
  Time epoch_begin = 0;
  std::uint64_t epochs_done = 0;
  std::uint32_t section_index = 0;
};

}  // namespace asl::sim
