// Simulated lock interface and factory.
//
// A SimLock receives acquisition requests in virtual time and invokes the
// `granted` continuation when the requesting thread becomes the holder. Each
// implementation models the *ordering decision* and the *handover cost* of
// its real counterpart in src/locks; DESIGN.md §2 explains why that is the
// faithful level of abstraction for reproducing the paper's figures.
//
// AcquireMode::kReorder is honoured by the reorderable locks only; FIFO/
// unfair baselines treat every acquisition as immediate (their real APIs
// have no reorder entry point either).
#pragma once

#include <cstdint>
#include <memory>

#include "platform/rng.h"
#include "sim/core_model.h"
#include "sim/engine.h"

namespace asl::sim {

enum class AcquireMode : std::uint8_t {
  kImmediate,  // lock_immediately / plain lock()
  kReorder,    // lock_reorder(window)
};

class SimLock {
 public:
  SimLock(Engine* eng, const MachineParams* mp, Rng* rng)
      : eng_(eng), mp_(mp), rng_(rng) {}
  virtual ~SimLock() = default;
  SimLock(const SimLock&) = delete;
  SimLock& operator=(const SimLock&) = delete;

  // Request the lock. `granted` runs (as an engine event) when the thread
  // holds the lock. `window` is only meaningful with kReorder.
  virtual void acquire(SimThread* t, AcquireMode mode, Time window,
                       Engine::Action granted) = 0;

  // Release by the current holder.
  virtual void release(SimThread* t) = 0;

  virtual bool is_free() const = 0;

 protected:
  // Extra grant delay when handing the lock to a *spinning* waiter that may
  // currently be descheduled: with k runnable threads sharing the waiter's
  // core, the waiter is off-CPU with probability (k-1)/k and notices the
  // grant only when rescheduled, up to a quantum later.
  Time spinner_grant_penalty(const SimThread* t) {
    const std::uint32_t k = t->core->runnable;
    if (k <= 1) return 0;
    const double p_descheduled = 1.0 - 1.0 / static_cast<double>(k);
    if (!rng_->chance(p_descheduled)) return 0;
    return rng_->below(mp_->sched_quantum);
  }

  Engine* eng_;
  const MachineParams* mp_;
  Rng* rng_;
};

enum class LockKind : std::uint8_t {
  kPthread,     // unfair blocking with barging + wakeup latency
  kTas,         // test-and-set with affinity-weighted win rate
  kTicket,      // FIFO, broadcast handover cost grows with waiters
  kMcs,         // FIFO, constant handover cost
  kStpMcs,      // FIFO, waiters park after a spin budget (Bench-6 baseline)
  kShflPb,      // two-queue proportional big:little (SHFL-PB comparator)
  kReorderable, // reorderable lock over a FIFO queue, spinning standby
  kBlockingReorderable,  // reorderable over blocking substrate, sleeping
                         // standby (Bench-6 LibASL)
};

const char* to_string(LockKind kind);

std::unique_ptr<SimLock> make_sim_lock(LockKind kind, Engine* eng,
                                       const MachineParams* mp, Rng* rng,
                                       std::uint32_t pb_proportion = 10);

}  // namespace asl::sim
