#include "sim/engine.h"

#include <utility>

namespace asl::sim {

void Engine::at(Time t, Action fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is the
  // standard workaround, safe because pop() immediately destroys the slot.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++executed_;
  ev.fn();
  return true;
}

void Engine::run_until(Time end) {
  while (!queue_.empty() && queue_.top().t <= end) {
    step();
  }
  now_ = end;
}

void Engine::run_all() {
  while (step()) {
  }
}

}  // namespace asl::sim
