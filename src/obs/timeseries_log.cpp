#include "obs/timeseries_log.h"

namespace asl::obs {

TimeSeriesLog::SeriesId TimeSeriesLog::add_series(std::string name,
                                                  std::size_t capacity) {
  names_.push_back(std::move(name));
  series_.emplace_back();
  series_.back().reserve(capacity);
  capacity_.push_back(capacity);
  return static_cast<SeriesId>(series_.size() - 1);
}

const TimeSeries* TimeSeriesLog::find(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return &series_[i];
  }
  return nullptr;
}

bool TimeSeriesLog::empty() const {
  for (const TimeSeries& s : series_) {
    if (!s.empty()) return false;
  }
  return true;
}

Table TimeSeriesLog::table() const {
  Table table({"series", "t_ns", "value"});
  for (std::size_t i = 0; i < series_.size(); ++i) {
    for (const TimeSeries::Point& p : series_[i].points()) {
      table.add_row({names_[i], std::to_string(p.t), std::to_string(p.v)});
    }
  }
  return table;
}

}  // namespace asl::obs
