// Periodic sampler thread — the fold half of the telemetry layer
// (DESIGN.md §11).
//
// A Sampler owns one background thread that invokes the tick callback every
// `period_ns` until stop(). The callback does the folding (registry sums ->
// time-series appends); the Sampler only provides the cadence and the
// lifecycle contract the KvService tests pin:
//   * start()/stop() are idempotent and compose from concurrent threads
//     (same discipline as KvService's lifecycle lock, DESIGN.md §4);
//   * stop() wakes the thread promptly (condition variable, not a sleep
//     poll), joins it, and then runs exactly one FINAL tick inline — so the
//     last sample always observes the post-drain state (queues empty,
//     counters final), and a service that was never start()ed still emits
//     one sample on stop() (mirroring stop()-without-start()'s inline
//     drain);
//   * the periodic path never allocates: the callback is constructed once
//     up front, and a condition-variable timed wait has no heap traffic —
//     required for the telemetry-on kv_alloc_audit zero.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "platform/time.h"

namespace asl::obs {

class Sampler {
 public:
  // `tick` is the 0-based tick index; `now` is the wall clock at the fold.
  using TickFn = std::function<void(std::uint64_t tick, Nanos now)>;

  Sampler(Nanos period_ns, TickFn on_tick);
  ~Sampler();  // stop()s, so an owner's destructor order is forgiving
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // Spawns the sampling thread. Idempotent; a no-op after stop().
  void start();

  // Signals, joins, then runs the one final tick. Idempotent — the final
  // tick fires exactly once across every start/stop interleaving,
  // including stop() with no start() at all.
  void stop();

  // Ticks completed so far (the final tick included once stop() returns).
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void run();

  Nanos period_;
  TickFn on_tick_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool started_ = false;        // guarded by mu_
  bool stop_requested_ = false; // guarded by mu_
  bool stopped_ = false;        // guarded by mu_; final tick fired
  std::thread thread_;
  std::atomic<std::uint64_t> ticks_{0};
};

}  // namespace asl::obs
