// Span tracer — per-thread ring buffers of request phases, exported as
// Chrome trace-event JSON (DESIGN.md §11).
//
// A sampled request contributes one complete ("X") span per phase it passes
// through — queue-wait, lock-wait, critical-section, post-section — so a
// Perfetto / chrome://tracing timeline shows where a request's latency
// actually went. The recording rules keep it hot-path-safe:
//   * 1-in-N sampling per thread (sample_every == 0 disables tracing
//     entirely — the compiled-in-but-default-off knob), so the common case
//     is one counter increment and a branch;
//   * each thread writes only its own fixed-size ring — single-writer,
//     no atomics, no sharing, and strictly allocation-free once built;
//   * a full ring overwrites its oldest span and counts the drop
//     (dropped()): recent behaviour survives, and a truncated trace says
//     so instead of silently posing as complete.
// Readers (collect / write_chrome_trace) run after the writer threads are
// joined; the join is the happens-before edge.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "platform/cacheline.h"
#include "platform/time.h"

namespace asl::obs {

enum class SpanPhase : std::uint8_t {
  kQueueWait = 0,       // admission -> a worker takes charge
  kLockWait,            // lock requested -> acquired (locked route only)
  kCriticalSection,     // the service segment (off-lock on the get route)
  kPostSection,         // feedback + post-op work after the service segment
};

// Stable phase label for the trace-event "name" field.
const char* span_phase_name(SpanPhase phase);

struct Span {
  Nanos start = 0;  // absolute monotonic ns (rebased on export)
  Nanos dur = 0;
  SpanPhase phase = SpanPhase::kQueueWait;
  std::uint32_t tid = 0;
};

class SpanTracer {
 public:
  // `num_threads` writer identities (worker slots), each with its own
  // `ring_capacity`-span ring; `sample_every` = N of the 1-in-N gate
  // (0 = tracing off: sample() is always false, nothing ever records).
  SpanTracer(std::uint32_t num_threads, std::size_t ring_capacity,
             std::uint32_t sample_every);
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  bool enabled() const { return sample_every_ > 0; }
  std::uint32_t sample_every() const { return sample_every_; }

  // The 1-in-N decision for thread `tid`'s next candidate request. The
  // caller records every phase of a request iff this returned true for it.
  bool sample(std::uint32_t tid) {
    if (sample_every_ == 0) return false;
    ThreadRing& r = rings_[tid];
    return (r.seen++ % sample_every_) == 0;
  }

  // Records one completed span into `tid`'s ring (single writer per tid).
  void record(std::uint32_t tid, SpanPhase phase, Nanos start, Nanos dur) {
    ThreadRing& r = rings_[tid];
    r.ring[r.head % r.ring.size()] = Span{start, dur, phase, tid};
    r.head += 1;
  }

  // Total spans recorded / spans overwritten (oldest-first) across threads.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  // Surviving spans, per-thread oldest-first (allocates; post-run only).
  std::vector<Span> collect() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}, complete "X" events,
  // ts/dur in microseconds), timestamps rebased to `epoch_ns` so the
  // timeline starts near zero. Loadable in Perfetto / chrome://tracing;
  // schema-checked by obs_test's parser, not by eyeball.
  void write_chrome_trace(std::ostream& os, Nanos epoch_ns) const;

 private:
  struct alignas(kCacheLine) ThreadRing {
    std::uint64_t head = 0;  // total spans written; ring index = head % cap
    std::uint64_t seen = 0;  // sample() candidates, for the 1-in-N gate
    std::vector<Span> ring;
  };

  std::uint32_t sample_every_;
  std::vector<ThreadRing> rings_;
};

}  // namespace asl::obs
