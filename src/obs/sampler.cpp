#include "obs/sampler.h"

#include <chrono>
#include <utility>

namespace asl::obs {

Sampler::Sampler(Nanos period_ns, TickFn on_tick)
    : period_(period_ns < 1 ? 1 : period_ns), on_tick_(std::move(on_tick)) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  std::unique_lock<std::mutex> lk(mu_);
  if (started_ || stopped_) return;
  started_ = true;
  thread_ = std::thread([this] { run(); });
}

void Sampler::run() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    // Timed wait, not a sleep: stop() interrupts the period immediately, so
    // shutdown latency is join cost, not a leftover fraction of the period.
    if (cv_.wait_for(lk, std::chrono::nanoseconds(period_),
                     [this] { return stop_requested_; })) {
      break;
    }
    const std::uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
    // The fold runs outside mu_ so a long tick never delays the stop signal
    // being *posted* (stop still joins the in-flight tick, as it must — the
    // final tick is only final if no periodic fold runs after it).
    lk.unlock();
    on_tick_(tick, now_ns());
    lk.lock();
  }
}

void Sampler::stop() {
  std::thread to_join;
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_requested_ = true;
    cv_.notify_all();
    if (stopped_) return;  // a finished (or finishing) stop already owns it
    stopped_ = true;
    to_join = std::move(thread_);
  }
  // Join outside mu_ — the sampling thread reacquires mu_ to re-check the
  // stop flag, so joining under the lock would deadlock.
  if (to_join.joinable()) to_join.join();
  // Exactly one final tick, after the thread is gone (or if it never
  // existed): the one sample guaranteed to observe fully-drained state.
  on_tick_(ticks_.fetch_add(1, std::memory_order_relaxed), now_ns());
}

}  // namespace asl::obs
