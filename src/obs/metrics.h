// Lock-free metrics registry — the recording half of the telemetry layer
// (DESIGN.md §11).
//
// Metrics are *named at registration, indexed at recording*: a service
// registers counters, gauges and log-bucketed histograms while it is built,
// calls freeze() once to lay the storage out, and from then on every
// recording is one relaxed atomic RMW into a preallocated, cache-line-
// padded per-slot cell — wait-free and allocation-free, which is what lets
// the kv_alloc_audit zero survive with telemetry ON (DESIGN.md §9). A
// "slot" is a writer identity (one per worker thread on the real path, a
// single slot on the single-threaded twin); writers never share a cell, so
// recording never contends and never false-shares.
//
// Reading is the sampler's job: fold() / fold_buckets() sum a metric's
// slots with relaxed loads. Concurrent folds see a racing snapshot (each
// cell individually atomic), which is exactly the fidelity a periodic
// sampler needs — monotone counters can only be undercounted by an
// in-flight increment, never corrupted.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "platform/cacheline.h"
#include "stats/histogram.h"

namespace asl::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// Dense handle returned at registration; recording and folding are O(1)
// array indexing off it, never a name lookup.
using MetricId = std::uint32_t;

class MetricsRegistry {
 public:
  // `num_slots` is the writer population (clamped to >= 1): recording slot
  // s of any metric is private to writer s.
  explicit MetricsRegistry(std::uint32_t num_slots);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registration (before freeze() only): returns the metric's id. Counters
  // accumulate via add(), gauges overwrite via set(), histograms bucket
  // observations via observe() into Histogram's log-bucketed layout.
  MetricId counter(std::string name);
  MetricId gauge(std::string name);
  MetricId histogram(std::string name);

  // Lays out the storage (the only allocation this class ever performs).
  // Registration after freeze() or recording before it is a caller bug.
  void freeze();
  bool frozen() const { return frozen_; }

  // --- recording: wait-free, allocation-free, relaxed atomics ------------
  void add(MetricId id, std::uint32_t slot, std::uint64_t delta) {
    scalars_[scalar_cell(id, slot)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void set(MetricId id, std::uint32_t slot, std::uint64_t value) {
    scalars_[scalar_cell(id, slot)].value.store(value,
                                                std::memory_order_relaxed);
  }
  void observe(MetricId id, std::uint32_t slot, std::uint64_t value) {
    hist_[hist_base(id, slot) + Histogram::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  // --- folding (sampler side; allocation-free) ---------------------------
  // Sum of a counter/gauge over every slot.
  std::uint64_t fold(MetricId id) const;
  // Per-bucket sums of a histogram over every slot, written into `out`
  // (caller-preallocated, Histogram::kNumBuckets entries, overwritten).
  // Returns the total observation count (the bucket sum).
  std::uint64_t fold_buckets(MetricId id, std::uint64_t* out) const;

  std::uint32_t num_slots() const { return num_slots_; }
  std::size_t size() const { return metrics_.size(); }
  const std::string& name(MetricId id) const { return metrics_[id].name; }
  MetricKind kind(MetricId id) const { return metrics_[id].kind; }

 private:
  // One padded cell per (scalar metric, slot): two writers' hot counters
  // never share a line, and neither does the sampler's fold cursor.
  struct alignas(kCacheLine) PaddedCell {
    std::atomic<std::uint64_t> value{0};
  };

  struct Metric {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    // Dense index among metrics of the same storage family (scalar vs
    // histogram); the cell math below turns it into an array offset.
    std::size_t base = 0;
  };

  std::size_t scalar_cell(MetricId id, std::uint32_t slot) const {
    return metrics_[id].base * num_slots_ + slot;
  }
  std::size_t hist_base(MetricId id, std::uint32_t slot) const {
    // A slot's bucket block is kNumBuckets * 8 bytes (way past a line), so
    // per-slot padding is structural — no PaddedCell needed here.
    return (metrics_[id].base * num_slots_ + slot) * Histogram::kNumBuckets;
  }

  MetricId register_metric(std::string name, MetricKind kind);

  std::uint32_t num_slots_;
  bool frozen_ = false;
  std::vector<Metric> metrics_;
  std::size_t scalar_count_ = 0;  // scalar metrics registered so far
  std::size_t hist_count_ = 0;    // histogram metrics registered so far
  std::vector<PaddedCell> scalars_;              // [scalar metric x slot]
  std::vector<std::atomic<std::uint64_t>> hist_; // [hist metric x slot x bucket]
};

}  // namespace asl::obs
