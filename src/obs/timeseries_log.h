// Named, capacity-bounded collection of time series — where the telemetry
// sampler's folds land (DESIGN.md §11).
//
// Each series is one stats/timeseries.h TimeSeries preallocated to a fixed
// tick budget at add_series() time, so append() during a run is a bounds
// check plus a vector write into reserved storage — allocation-free, which
// the kv_alloc_audit telemetry-on window depends on. A series that fills up
// drops further points (counted in dropped(); a truncated series must never
// read as a complete one).
//
// The whole log renders as one long-form table {series, t_ns, value}: rows
// are series-major in registration order, time-ascending within a series —
// a pure function of the appended points, so a virtual-time producer (the
// twin) emits byte-deterministic CSV, goldenable like every other twin
// table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/table.h"
#include "stats/timeseries.h"

namespace asl::obs {

class TimeSeriesLog {
 public:
  using SeriesId = std::uint32_t;

  // Registers a series and reserves `capacity` points for it up front.
  SeriesId add_series(std::string name, std::size_t capacity);

  // Appends one point; a full series drops it and counts the drop.
  void append(SeriesId id, std::uint64_t t, std::uint64_t v) {
    TimeSeries& s = series_[id];
    if (s.size() >= capacity_[id]) {
      dropped_ += 1;
      return;
    }
    s.record(t, v);
  }

  std::uint64_t dropped() const { return dropped_; }
  std::size_t num_series() const { return series_.size(); }
  const std::string& name(SeriesId id) const { return names_[id]; }
  const TimeSeries& series(SeriesId id) const { return series_[id]; }
  // Lookup by name (nullptr when absent) — for tests and shape checks;
  // recording paths always hold the dense id.
  const TimeSeries* find(std::string_view name) const;

  // True when no series holds any point.
  bool empty() const;

  // Long-form {series, t_ns, value} table; integer cells plus the series
  // name, byte-deterministic in the appended points.
  Table table() const;

 private:
  std::vector<std::string> names_;
  std::vector<TimeSeries> series_;
  std::vector<std::size_t> capacity_;
  std::uint64_t dropped_ = 0;
};

}  // namespace asl::obs
