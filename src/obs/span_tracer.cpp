#include "obs/span_tracer.h"

#include <cstdio>
#include <ostream>

namespace asl::obs {

const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kQueueWait: return "queue-wait";
    case SpanPhase::kLockWait: return "lock-wait";
    case SpanPhase::kCriticalSection: return "critical-section";
    case SpanPhase::kPostSection: return "post-section";
  }
  return "unknown";
}

SpanTracer::SpanTracer(std::uint32_t num_threads, std::size_t ring_capacity,
                       std::uint32_t sample_every)
    : sample_every_(sample_every),
      rings_(num_threads < 1 ? 1 : num_threads) {
  const std::size_t cap = ring_capacity < 1 ? 1 : ring_capacity;
  for (ThreadRing& r : rings_) {
    r.ring.resize(cap);
  }
}

std::uint64_t SpanTracer::recorded() const {
  std::uint64_t n = 0;
  for (const ThreadRing& r : rings_) n += r.head;
  return n;
}

std::uint64_t SpanTracer::dropped() const {
  std::uint64_t n = 0;
  for (const ThreadRing& r : rings_) {
    if (r.head > r.ring.size()) n += r.head - r.ring.size();
  }
  return n;
}

std::vector<Span> SpanTracer::collect() const {
  std::vector<Span> out;
  for (const ThreadRing& r : rings_) {
    const std::uint64_t cap = r.ring.size();
    const std::uint64_t kept = r.head < cap ? r.head : cap;
    // Oldest surviving span first: when the ring wrapped, that is the slot
    // head points at (the one the next write would overwrite).
    for (std::uint64_t i = 0; i < kept; ++i) {
      out.push_back(r.ring[(r.head - kept + i) % cap]);
    }
  }
  return out;
}

void SpanTracer::write_chrome_trace(std::ostream& os, Nanos epoch_ns) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const Span& span : collect()) {
    // trace-event ts/dur are microseconds; emit ns-precision decimals so
    // nothing rounds away at the tens-of-ns scale lock handoffs live at.
    const Nanos rel = span.start > epoch_ns ? span.start - epoch_ns : 0;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"kv\",\"ph\":\"X\","
        "\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,\"pid\":1,\"tid\":%u}",
        first ? "" : ",", span_phase_name(span.phase),
        static_cast<unsigned long long>(rel / 1000),
        static_cast<unsigned long long>(rel % 1000),
        static_cast<unsigned long long>(span.dur / 1000),
        static_cast<unsigned long long>(span.dur % 1000), span.tid);
    os << buf;
    first = false;
  }
  os << "]}\n";
}

}  // namespace asl::obs
