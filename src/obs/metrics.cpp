#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>

namespace asl::obs {

MetricsRegistry::MetricsRegistry(std::uint32_t num_slots)
    : num_slots_(num_slots < 1 ? 1 : num_slots) {}

MetricId MetricsRegistry::register_metric(std::string name, MetricKind kind) {
  if (frozen_) {
    // Registration after freeze() would need a reallocation under live
    // writers — a structural bug, not a recoverable condition.
    std::fprintf(stderr,
                 "MetricsRegistry: register('%s') after freeze()\n",
                 name.c_str());
    std::abort();
  }
  Metric m;
  m.name = std::move(name);
  m.kind = kind;
  m.base = kind == MetricKind::kHistogram ? hist_count_++ : scalar_count_++;
  metrics_.push_back(std::move(m));
  return static_cast<MetricId>(metrics_.size() - 1);
}

MetricId MetricsRegistry::counter(std::string name) {
  return register_metric(std::move(name), MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string name) {
  return register_metric(std::move(name), MetricKind::kGauge);
}

MetricId MetricsRegistry::histogram(std::string name) {
  return register_metric(std::move(name), MetricKind::kHistogram);
}

void MetricsRegistry::freeze() {
  if (frozen_) return;
  frozen_ = true;
  // The one-and-only allocation: every cell this registry will ever touch,
  // zero-initialized. vector(n) constructs elements in place, so the
  // non-movable atomic cells never need to relocate.
  scalars_ = std::vector<PaddedCell>(scalar_count_ * num_slots_);
  hist_ = std::vector<std::atomic<std::uint64_t>>(
      hist_count_ * num_slots_ * Histogram::kNumBuckets);
}

std::uint64_t MetricsRegistry::fold(MetricId id) const {
  std::uint64_t sum = 0;
  for (std::uint32_t s = 0; s < num_slots_; ++s) {
    sum += scalars_[scalar_cell(id, s)].value.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t MetricsRegistry::fold_buckets(MetricId id,
                                            std::uint64_t* out) const {
  for (std::uint32_t b = 0; b < Histogram::kNumBuckets; ++b) out[b] = 0;
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < num_slots_; ++s) {
    const std::size_t base = hist_base(id, s);
    for (std::uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t n = hist_[base + b].load(std::memory_order_relaxed);
      out[b] += n;
      total += n;
    }
  }
  return total;
}

}  // namespace asl::obs
