#include "harness/capacity_probe.h"

#include <cmath>

namespace asl::bench {
namespace {

bool run_trial(const CapacityTrialFn& trial, double rate,
               CapacityResult& result) {
  const bool ok = trial(rate);
  result.trials.push_back(CapacityTrial{rate, ok});
  return ok;
}

}  // namespace

CapacityResult find_capacity(const CapacityProbeConfig& config,
                             const CapacityTrialFn& trial) {
  CapacityProbeConfig cfg = config;
  if (cfg.start_rate <= 0) cfg.start_rate = 1.0;
  if (cfg.growth <= 1.0) cfg.growth = 1.5;
  if (cfg.tolerance <= 0) cfg.tolerance = 0.01;
  if (cfg.max_trials < 3) cfg.max_trials = 3;

  CapacityResult result;
  if (!run_trial(trial, cfg.start_rate, result)) {
    result.min_violating = cfg.start_rate;
    return result;
  }
  result.feasible = true;
  double lo = cfg.start_rate;  // invariant: trial(lo) passed
  double hi = 0;               // invariant when set: trial(hi) failed

  // Growth phase: multiply until a failure brackets the capacity or a
  // ceiling (rate cap / trial budget) ends the search un-bracketed.
  while (hi == 0 && result.trials.size() < cfg.max_trials) {
    double next = lo * cfg.growth;
    if (cfg.max_rate > 0 && next >= cfg.max_rate) next = cfg.max_rate;
    // A cap at or below the passing floor leaves nothing to probe; never
    // re-trial a rate <= lo (a noisy oracle flipping its answer there would
    // invert the max_rate < min_violating guarantee).
    if (next <= lo) break;
    if (run_trial(trial, next, result)) {
      lo = next;
      if (cfg.max_rate > 0 && next >= cfg.max_rate) break;  // capped, all-pass
    } else {
      hi = next;
    }
  }
  if (hi == 0) {
    result.max_rate = lo;
    return result;
  }
  result.bracketed = true;

  // Bisection phase: narrow [lo, hi] to the relative tolerance.
  while (hi - lo > cfg.tolerance * lo &&
         result.trials.size() < cfg.max_trials) {
    const double mid = (lo + hi) / 2.0;
    if (run_trial(trial, mid, result)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.max_rate = lo;
  result.min_violating = hi;
  return result;
}

std::vector<ClassCapacity> find_capacity_per_class(
    const CapacityProbeConfig& config,
    const std::vector<std::string>& class_names,
    const ClassCapacityTrialFn& trial) {
  std::vector<ClassCapacity> capacities;
  capacities.reserve(class_names.size());
  for (std::size_t c = 0; c < class_names.size(); ++c) {
    ClassCapacity capacity;
    capacity.class_name = class_names[c];
    capacity.result = find_capacity(
        config, [&trial, c](double rate) { return trial(c, rate); });
    capacities.push_back(std::move(capacity));
  }
  return capacities;
}

Table capacity_table(const CapacityResult& result) {
  Table table({"trial", "rate_per_sec", "slo_ok"});
  for (std::size_t i = 0; i < result.trials.size(); ++i) {
    const CapacityTrial& t = result.trials[i];
    table.add_row({std::to_string(i),
                   std::to_string(static_cast<std::uint64_t>(
                       std::llround(t.rate))),
                   t.ok ? "1" : "0"});
  }
  return table;
}

Table class_capacity_table(const std::vector<ClassCapacity>& capacities) {
  Table table({"class", "feasible", "bracketed", "capacity_per_sec",
               "min_violating_per_sec", "trials"});
  for (const ClassCapacity& c : capacities) {
    table.add_row({c.class_name, c.result.feasible ? "1" : "0",
                   c.result.bracketed ? "1" : "0",
                   std::to_string(static_cast<std::uint64_t>(
                       std::llround(c.result.max_rate))),
                   std::to_string(static_cast<std::uint64_t>(
                       std::llround(c.result.min_violating))),
                   std::to_string(c.result.trials.size())});
  }
  return table;
}

CapacityComparison compare_capacity(const CapacityResult& real,
                                    const CapacityResult& twin,
                                    double tolerance_factor) {
  if (tolerance_factor < 1.0) tolerance_factor = 1.0;
  CapacityComparison c;
  c.real_rate = real.feasible ? real.max_rate : 0.0;
  c.twin_rate = twin.feasible ? twin.max_rate : 0.0;
  c.both_feasible = c.real_rate > 0 && c.twin_rate > 0;
  if (c.both_feasible) {
    c.ratio = c.real_rate / c.twin_rate;
    c.within_band =
        c.ratio >= 1.0 / tolerance_factor && c.ratio <= tolerance_factor;
  }
  return c;
}

Table capacity_comparison_table(const CapacityComparison& comparison) {
  Table table({"real_per_sec", "twin_per_sec", "ratio_milli", "both_feasible",
               "within_band"});
  table.add_row({std::to_string(static_cast<std::uint64_t>(
                     std::llround(comparison.real_rate))),
                 std::to_string(static_cast<std::uint64_t>(
                     std::llround(comparison.twin_rate))),
                 std::to_string(static_cast<std::uint64_t>(
                     std::llround(comparison.ratio * 1000.0))),
                 comparison.both_feasible ? "1" : "0",
                 comparison.within_band ? "1" : "0"});
  return table;
}

}  // namespace asl::bench
