#include "harness/engine_calib.h"

#include <memory>

#include "platform/rng.h"
#include "platform/time.h"

namespace asl::bench {
namespace {

// Wall ns per emulated NOP: time a large spin a few times and keep the
// fastest pass (the one least disturbed by preemption) — the same
// min-of-repeats trick hardware microbenchmarks use.
double measure_nop_ns() {
  constexpr std::uint64_t kSpin = 1u << 22;
  double best = 0;
  for (int pass = 0; pass < 5; ++pass) {
    const Nanos t0 = now_ns();
    spin_nops(kSpin);
    const Nanos t1 = now_ns();
    const double ns =
        static_cast<double>(t1 - t0) / static_cast<double>(kSpin);
    if (pass == 0 || ns < best) best = ns;
  }
  return best > 0 ? best : 1e-3;
}

// Mean wall ns per op over `ops` calls; min over repeats would hide the
// amortized costs (LSM rotation/compaction) that are the whole point, so
// the mean over one long run is the honest statistic here.
template <typename Op>
double measure_mean_ns(std::uint64_t ops, Op&& op) {
  if (ops == 0) ops = 1;
  const Nanos t0 = now_ns();
  for (std::uint64_t i = 0; i < ops; ++i) op(i);
  const Nanos t1 = now_ns();
  return static_cast<double>(t1 - t0) / static_cast<double>(ops);
}

}  // namespace

EngineCalibResult calibrate_engine(const std::string& engine,
                                   const EngineCalibConfig& config) {
  EngineCalibResult result;
  result.engine = engine;
  result.reference = db::default_cost_profile(engine);

  std::unique_ptr<db::KvEngine> kv = db::make_kv_engine(engine);
  if (kv == nullptr) return result;  // !valid(): unknown engine

  const std::uint64_t key_space =
      config.key_space == 0 ? 1 : config.key_space;
  for (std::uint64_t k = 0; k < config.prefill_keys; ++k) {
    kv->put(k % key_space, "prefill");
  }

  result.nop_ns = measure_nop_ns();
  // Keys and values are drawn/built outside the timed loops so the
  // measurement prices only engine work — a per-iteration RNG call or
  // string allocation would bias every class upward, worst for the
  // cheapest ops.
  Rng rng(config.seed);
  std::vector<std::uint64_t> keys(config.ops == 0 ? 1 : config.ops);
  for (std::uint64_t& k : keys) k = rng.below(key_space);
  const std::string value = "v:calib";
  result.get_ns = measure_mean_ns(config.ops, [&](std::uint64_t i) {
    (void)kv->get(keys[i % keys.size()]);
  });
  result.put_ns = measure_mean_ns(config.ops, [&](std::uint64_t i) {
    kv->put(keys[i % keys.size()], value);
  });

  auto to_nops = [&result](double ns) {
    const double n = ns / result.nop_ns;
    return n < 1.0 ? std::uint64_t{1} : static_cast<std::uint64_t>(n);
  };
  // The measured wall time already *includes* whatever the engine's
  // allocations cost on this host, but the count is carried through
  // unchanged: it is a structural fact about the engine (lsm allocates per
  // op, the pooled engines do not), not something a timing run re-derives.
  result.measured.get = db::OpCost{to_nops(result.get_ns),
                                   result.reference.get.post_nops,
                                   result.reference.get.allocs};
  result.measured.put = db::OpCost{to_nops(result.put_ns),
                                   result.reference.put.post_nops,
                                   result.reference.put.allocs};
  // Routing is part of the profile: a measured profile fed back through
  // KvServiceConfig::cost must keep the engine on the same (lock-free or
  // locked) get route as the reference, or the calibration would silently
  // change the service's semantics along with its numbers.
  result.measured.get_lock_free = result.reference.get_lock_free;
  return result;
}

std::vector<EngineCalibResult> calibrate_all_engines(
    const EngineCalibConfig& config) {
  std::vector<EngineCalibResult> results;
  for (const std::string& name : db::kv_engine_names()) {
    results.push_back(calibrate_engine(name, config));
  }
  return results;
}

Table engine_calib_table(const std::vector<EngineCalibResult>& results) {
  Table table({"engine", "nop_ns_milli", "get_ns", "put_ns",
               "measured_get_cs", "measured_put_cs", "reference_get_cs",
               "reference_put_cs"});
  for (const EngineCalibResult& r : results) {
    table.add_row(
        {r.engine,
         std::to_string(static_cast<std::uint64_t>(r.nop_ns * 1000.0)),
         std::to_string(static_cast<std::uint64_t>(r.get_ns)),
         std::to_string(static_cast<std::uint64_t>(r.put_ns)),
         std::to_string(r.measured.get.cs_nops),
         std::to_string(r.measured.put.cs_nops),
         std::to_string(r.reference.get.cs_nops),
         std::to_string(r.reference.put.cs_nops)});
  }
  return table;
}

}  // namespace asl::bench
