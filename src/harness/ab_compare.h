// A/B policy comparison on a recorded trace (DESIGN.md §10).
//
// The apples-to-apples guarantee record/replay buys: both arms replay the
// *same* offered stream — identical arrivals, keys, ops, classes, in
// identical order — through the deterministic twin under two different
// service configs (batch_k 1 vs 8, shed on vs off, hash vs mvcc, ...).
// Every difference in the paired table is therefore attributable to the
// policy change alone: no regenerated randomness, no statistically-similar
// traffic, no wall-clock noise. This is the harness the ROADMAP's
// autoscaling sweeps stand on.
#pragma once

#include <string>

#include "server/sim_kv_service.h"
#include "stats/table.h"

namespace asl::bench {

// One arm of the comparison: a display label (used as a column prefix, so
// keep it a short token) plus the service + twin configuration to replay
// the trace under. Arms that only change policy knobs keep the recording's
// twin seed so the lock randomness is paired too.
struct AbPolicy {
  std::string label;
  server::KvServiceConfig service;
  server::SimTwinConfig twin{};
};

struct AbComparison {
  std::string label_a;
  std::string label_b;
  server::SimReplayReport a;
  server::SimReplayReport b;
};

// Replays `trace` under both arms (two fresh twins, same offered stream)
// and returns the paired results. Deterministic: same trace + same arms =>
// same comparison, byte for byte.
AbComparison ab_compare(const server::RecordedTrace& trace, const AbPolicy& a,
                        const AbPolicy& b);

// The paired-difference table: one row per class plus a TOTAL row, with
// completed / hard-rejected (rejected - shed) / shed / p99 under each arm
// and the signed B-A deltas. All-integer cells (virtual ns), so the table
// is byte-reproducible and golden-able like every other twin table.
Table ab_difference_table(const AbComparison& cmp);

}  // namespace asl::bench
