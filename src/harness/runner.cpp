#include "harness/runner.h"

#include <atomic>

#include "platform/affinity.h"

namespace asl {

std::vector<WorkerRole> m1_layout(std::uint32_t n, std::uint32_t num_big) {
  std::vector<WorkerRole> roles;
  roles.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WorkerRole role = i < num_big ? WorkerRole::big() : WorkerRole::little();
    role.pin_cpu = i;
    roles.push_back(role);
  }
  return roles;
}

RunStats run_fixed_duration(
    const std::vector<WorkerRole>& roles, Nanos duration,
    const std::function<WorkerBody(const WorkerCtx&)>& make_body) {
  const std::uint32_t n = static_cast<std::uint32_t>(roles.size());
  std::vector<WorkerCtx> contexts(n);
  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    contexts[i].index = i;
    contexts[i].role = roles[i];
    threads.emplace_back([&, i] {
      WorkerCtx& ctx = contexts[i];
      if (ctx.role.pin_cpu != ~0u) {
        pin_to_cpu_wrapped(ctx.role.pin_cpu);
      }
      ScopedCoreType scoped(ctx.role.type);
      WorkerBody body = make_body(ctx);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
        // Start barrier: all workers begin together.
      }
      while (!stop.load(std::memory_order_relaxed)) {
        body(ctx);
      }
    });
  }

  while (ready.load(std::memory_order_acquire) != n) {
  }
  const Nanos t0 = now_ns();
  go.store(true, std::memory_order_release);
  sleep_ns(duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const Nanos t1 = now_ns();

  RunStats stats;
  stats.elapsed = t1 - t0;
  for (const WorkerCtx& ctx : contexts) {
    stats.total_ops += ctx.ops;
    stats.latency.merge(ctx.latency);
  }
  return stats;
}

}  // namespace asl
