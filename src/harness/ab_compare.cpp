#include "harness/ab_compare.h"

#include <cstdint>
#include <string>
#include <vector>

namespace asl::bench {
namespace {

using server::ClassReport;
using server::SimReplayReport;

std::string signed_delta(std::uint64_t a, std::uint64_t b) {
  return b >= a ? std::to_string(b - a) : "-" + std::to_string(a - b);
}

std::uint64_t hard_rejects(const ClassReport& c) {
  return c.rejected >= c.shed ? c.rejected - c.shed : 0;
}

}  // namespace

AbComparison ab_compare(const server::RecordedTrace& trace, const AbPolicy& a,
                        const AbPolicy& b) {
  AbComparison cmp;
  cmp.label_a = a.label;
  cmp.label_b = b.label;
  cmp.a = server::replay_sim_kv(trace, a.service, a.twin);
  cmp.b = server::replay_sim_kv(trace, b.service, b.twin);
  return cmp;
}

Table ab_difference_table(const AbComparison& cmp) {
  const std::string& la = cmp.label_a;
  const std::string& lb = cmp.label_b;
  Table table({"class", la + "_completed", lb + "_completed", "d_completed",
               la + "_hard_rej", lb + "_hard_rej", "d_hard_rej", la + "_shed",
               lb + "_shed", "d_shed", la + "_p99_ns", lb + "_p99_ns",
               "d_p99_ns"});

  const std::vector<ClassReport>& ca = cmp.a.report.service.classes;
  const std::vector<ClassReport>& cb = cmp.b.report.service.classes;
  const std::size_t n = ca.size() < cb.size() ? ca.size() : cb.size();
  ClassReport total_a, total_b;
  std::uint64_t p99a_max = 0, p99b_max = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const ClassReport& A = ca[i];
    const ClassReport& B = cb[i];
    const std::uint64_t p99a = A.total.overall().p99();
    const std::uint64_t p99b = B.total.overall().p99();
    table.add_row({A.name, std::to_string(A.completed),
                   std::to_string(B.completed),
                   signed_delta(A.completed, B.completed),
                   std::to_string(hard_rejects(A)),
                   std::to_string(hard_rejects(B)),
                   signed_delta(hard_rejects(A), hard_rejects(B)),
                   std::to_string(A.shed), std::to_string(B.shed),
                   signed_delta(A.shed, B.shed), std::to_string(p99a),
                   std::to_string(p99b), signed_delta(p99a, p99b)});
    total_a.completed += A.completed;
    total_a.rejected += A.rejected;
    total_a.shed += A.shed;
    total_b.completed += B.completed;
    total_b.rejected += B.rejected;
    total_b.shed += B.shed;
    p99a_max = p99a > p99a_max ? p99a : p99a_max;
    p99b_max = p99b > p99b_max ? p99b : p99b_max;
  }
  // TOTAL row: counts sum over classes; the p99 columns carry the max over
  // classes (quantiles do not sum — the max is the "worst class" view).
  table.add_row({"TOTAL", std::to_string(total_a.completed),
                 std::to_string(total_b.completed),
                 signed_delta(total_a.completed, total_b.completed),
                 std::to_string(hard_rejects(total_a)),
                 std::to_string(hard_rejects(total_b)),
                 signed_delta(hard_rejects(total_a), hard_rejects(total_b)),
                 std::to_string(total_a.shed), std::to_string(total_b.shed),
                 signed_delta(total_a.shed, total_b.shed),
                 std::to_string(p99a_max), std::to_string(p99b_max),
                 signed_delta(p99a_max, p99b_max)});
  return table;
}

}  // namespace asl::bench
