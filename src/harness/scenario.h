// Scenario registry + shared bench driver.
//
// Every figure reproduction registers a named scenario (ASL_SCENARIO) and
// the per-bench main() boilerplate lives once in scenario_main(): shared CLI
// (--list, --scenario selection, --time-scale, --csv), the SIM_TIME_SCALE
// environment knob, uniform banners/shape-check accounting, and
// machine-readable CSV output alongside the human tables. Figure binaries
// are generated from one driver (bench/figures_main.cpp) compiled against
// the scenario objects — the setbench-style "one target graph, many
// executables" layout (DESIGN.md §1).
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "stats/table.h"

namespace asl::bench {

// Per-run services handed to a scenario: output, shape-check accounting and
// the shared time-scale knob.
class ScenarioContext {
 public:
  ScenarioContext(std::string scenario, double time_scale, std::ostream* csv,
                  std::map<std::string, std::string> options = {});

  // Simulated-duration scaling (SIM_TIME_SCALE / --time-scale).
  double time_scale() const { return time_scale_; }
  sim::SimConfig scaled(sim::SimConfig cfg) const {
    return sim::scale_durations(cfg, time_scale_);
  }

  void banner(const std::string& figure, const std::string& title);
  void note(const std::string& text);

  // Shape check: prints PASS/FAIL so bench output doubles as verification;
  // the driver's exit code aggregates over every scenario run.
  void shape_check(bool ok, const std::string& what);

  // Print the table to stdout and, when CSV output is enabled, append it to
  // the CSV stream tagged with the scenario and table name.
  void emit(const Table& table, const std::string& tag);

  bool all_ok() const { return all_ok_; }
  const std::string& scenario() const { return scenario_; }

  // Scenario-interpreted filter option ("" when the flag was not given).
  // The driver whitelists the flag names (--engine=, --mix=, --seed=,
  // --trace=) so a typo'd flag still errors instead of silently reaching a
  // scenario that ignores it; scenarios that do not read a given option are
  // unaffected by it. Values are raw strings: the consuming scenario
  // validates them (a bad value is a shape FAIL there, not a CLI error).
  std::string option(const std::string& name) const;

 private:
  std::string scenario_;
  double time_scale_ = 1.0;
  std::ostream* csv_ = nullptr;
  std::map<std::string, std::string> options_;
  bool all_ok_ = true;
};

using ScenarioFn = std::function<void(ScenarioContext&)>;

struct Scenario {
  std::string name;   // CLI name, e.g. "fig01_collapse"
  std::string title;  // one-line description for --list
  ScenarioFn run;
  // Run only when named on the command line, never under --all. For
  // scenarios whose assertions need a quiet process (kv_alloc_audit counts
  // every heap allocation process-wide; dozens of preceding scenarios'
  // thread churn would show up in its steady-state window).
  bool explicit_only = false;
};

class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  void add(Scenario scenario);
  const Scenario* find(const std::string& name) const;
  // All scenarios, sorted by name.
  std::vector<const Scenario*> list() const;

 private:
  std::vector<Scenario> scenarios_;
};

struct ScenarioRegistrar {
  ScenarioRegistrar(std::string name, std::string title, ScenarioFn fn,
                    bool explicit_only = false);
};

// Registers `void` scenario body: ASL_SCENARIO(fig01_collapse, "...") { ... }
// The body receives `ScenarioContext& ctx`.
#define ASL_SCENARIO(scenario_name, scenario_title)                          \
  static void asl_scenario_body_##scenario_name(                             \
      ::asl::bench::ScenarioContext& ctx);                                   \
  static const ::asl::bench::ScenarioRegistrar                               \
      asl_scenario_reg_##scenario_name{#scenario_name, scenario_title,       \
                                       asl_scenario_body_##scenario_name};   \
  static void asl_scenario_body_##scenario_name(                             \
      ::asl::bench::ScenarioContext& ctx)

// Like ASL_SCENARIO, but the scenario runs only when named explicitly —
// `--all` skips it (and `--list` marks it). See Scenario::explicit_only.
#define ASL_SCENARIO_EXPLICIT(scenario_name, scenario_title)                 \
  static void asl_scenario_body_##scenario_name(                             \
      ::asl::bench::ScenarioContext& ctx);                                   \
  static const ::asl::bench::ScenarioRegistrar                               \
      asl_scenario_reg_##scenario_name{#scenario_name, scenario_title,       \
                                       asl_scenario_body_##scenario_name,    \
                                       /*explicit_only=*/true};              \
  static void asl_scenario_body_##scenario_name(                             \
      ::asl::bench::ScenarioContext& ctx)

// The shared driver. CLI:
//   --list                 print registered scenarios and exit
//   --time-scale=<f>       override SIM_TIME_SCALE
//   --csv=<path>           write every emitted table as CSV to <path>
//   --all                  run every registered scenario (except the
//                          explicit-only ones, see ASL_SCENARIO_EXPLICIT)
//   --engine=<name>        filter option for engine-matrix scenarios
//                          (kv_engine_sweep: run one registry engine)
//   --mix=<name|r:w>       filter option for mix-matrix scenarios (a mix
//                          name like get_heavy, or a get:put rate ratio)
//   --seed=<n>             reseed option for the record/replay scenarios
//                          (kv_record: perturb every LoadSpec seed)
//   --trace=<path>         trace file option for the record/replay
//                          scenarios (kv_record writes it, kv_replay reads
//                          it; an unreadable value is a shape FAIL)
//   --telemetry=<on|off>   telemetry toggle for scenarios that support it
//                          (kv_alloc_audit: audit with the sampler live)
//   --spans=<path>         Chrome-trace JSON output for span-tracing
//                          scenarios (kv_telemetry writes it; load it in
//                          Perfetto / chrome://tracing)
//   <name>...              scenarios to run (default: `default_scenario`,
//                          or --list behaviour when none is configured)
// Exit code 0 iff every shape check of every scenario passed.
int scenario_main(int argc, char** argv, const char* default_scenario);

}  // namespace asl::bench
