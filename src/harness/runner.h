// Fixed-duration real-thread experiment runner.
//
// Spawns one worker per role, declares each worker's core type (the AMP
// placement emulation), releases all workers through a start barrier, lets
// them iterate a body until the deadline, and merges per-thread statistics.
// Used by the real-thread tests, the examples and the host-overhead benches;
// the figure benches use the discrete-event simulator instead (see
// DESIGN.md §2).
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "platform/time.h"
#include "platform/topology.h"
#include "stats/latency_split.h"
#include "workload/cs_workload.h"

namespace asl {

// One worker's identity in an experiment.
struct WorkerRole {
  CoreType type = CoreType::kBig;
  SpeedFactors speed{};
  std::uint32_t pin_cpu = ~0u;  // pin target; ~0u = unpinned

  static WorkerRole big() { return {CoreType::kBig, SpeedFactors::big(), ~0u}; }
  static WorkerRole little() {
    return {CoreType::kLittle, SpeedFactors::little(), ~0u};
  }
};

// Standard paper layout: `n` threads, first up to 4 big then little (the M1
// binding order used by Figures 1 and 8e).
std::vector<WorkerRole> m1_layout(std::uint32_t n, std::uint32_t num_big = 4);

// Per-worker context handed to the body each iteration.
struct WorkerCtx {
  std::uint32_t index = 0;
  WorkerRole role{};
  // Filled by the worker loop:
  std::uint64_t ops = 0;           // incremented by the body as it sees fit
  LatencySplit latency;            // body records epoch/op latencies here
  void record_latency(std::uint64_t ns) { latency.record(role.type, ns); }
};

struct RunStats {
  std::uint64_t total_ops = 0;
  Nanos elapsed = 0;
  LatencySplit latency;

  double throughput_ops_per_sec() const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(total_ops) *
                              static_cast<double>(kNanosPerSec) /
                              static_cast<double>(elapsed);
  }
};

// Body signature: called repeatedly until the deadline; should perform one
// unit of work (e.g. one epoch) and update ctx.ops / ctx.latency.
using WorkerBody = std::function<void(WorkerCtx&)>;

// Runs `roles.size()` workers for `duration`. `make_body` is called once per
// worker (on the worker thread, after core-type declaration) to build its
// body closure.
RunStats run_fixed_duration(
    const std::vector<WorkerRole>& roles, Nanos duration,
    const std::function<WorkerBody(const WorkerCtx&)>& make_body);

}  // namespace asl
