#include "harness/scenario.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>

namespace asl::bench {
namespace {

double env_time_scale() {
  const char* env = std::getenv("SIM_TIME_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

}  // namespace

ScenarioContext::ScenarioContext(std::string scenario, double time_scale,
                                 std::ostream* csv,
                                 std::map<std::string, std::string> options)
    : scenario_(std::move(scenario)),
      time_scale_(time_scale > 0 ? time_scale : 1.0),
      csv_(csv),
      options_(std::move(options)) {}

std::string ScenarioContext::option(const std::string& name) const {
  const auto it = options_.find(name);
  return it == options_.end() ? std::string() : it->second;
}

void ScenarioContext::banner(const std::string& figure,
                             const std::string& title) {
  std::cout << "\n=== " << figure << ": " << title << " ===\n";
}

void ScenarioContext::note(const std::string& text) {
  std::cout << "  # " << text << "\n";
}

void ScenarioContext::shape_check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [shape PASS] " : "  [shape FAIL] ") << what << "\n";
  all_ok_ = all_ok_ && ok;
}

void ScenarioContext::emit(const Table& table, const std::string& tag) {
  table.print(std::cout);
  if (csv_ != nullptr) {
    *csv_ << "# scenario=" << scenario_ << " table=" << tag << "\n";
    table.print_csv(*csv_);
  }
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = new ScenarioRegistry;
  return *registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const Scenario& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const Scenario& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name < b->name;
            });
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(std::string name, std::string title,
                                     ScenarioFn fn, bool explicit_only) {
  ScenarioRegistry::instance().add(Scenario{std::move(name), std::move(title),
                                            std::move(fn), explicit_only});
}

int scenario_main(int argc, char** argv, const char* default_scenario) {
  double time_scale = env_time_scale();
  std::string csv_path;
  bool list_only = false;
  bool run_all = false;
  std::vector<std::string> names;
  std::map<std::string, std::string> options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--all") {
      run_all = true;
    } else if (arg.rfind("--time-scale=", 0) == 0) {
      const double v = std::atof(value_of("--time-scale=").c_str());
      if (v > 0) time_scale = v;
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path = value_of("--csv=");
    } else if (arg.rfind("--scenario=", 0) == 0) {
      names.push_back(value_of("--scenario="));
    } else if (arg.rfind("--engine=", 0) == 0) {
      options["engine"] = value_of("--engine=");
    } else if (arg.rfind("--mix=", 0) == 0) {
      options["mix"] = value_of("--mix=");
    } else if (arg.rfind("--seed=", 0) == 0) {
      options["seed"] = value_of("--seed=");
    } else if (arg.rfind("--trace=", 0) == 0) {
      options["trace"] = value_of("--trace=");
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      options["telemetry"] = value_of("--telemetry=");
    } else if (arg.rfind("--spans=", 0) == 0) {
      options["spans"] = value_of("--spans=");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--list] [--all] [--time-scale=F] [--csv=PATH] "
                   "[--engine=NAME] [--mix=NAME|R:W] [--seed=N] "
                   "[--trace=PATH] [--telemetry=on|off] [--spans=PATH] "
                   "[scenario...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << " (try --help)\n";
      return 2;
    } else {
      names.push_back(arg);
    }
  }

  ScenarioRegistry& registry = ScenarioRegistry::instance();
  if (run_all) {
    names.clear();
    for (const Scenario* s : registry.list()) {
      if (!s->explicit_only) names.push_back(s->name);
    }
  }
  if (names.empty() && default_scenario != nullptr) {
    names.emplace_back(default_scenario);
  }
  if (list_only || names.empty()) {
    for (const Scenario* s : registry.list()) {
      std::cout << s->name << "  —  " << s->title
                << (s->explicit_only ? "  [explicit-only]" : "") << "\n";
    }
    return list_only || !registry.list().empty() ? 0 : 1;
  }

  std::ofstream csv_file;
  std::ostream* csv = nullptr;
  if (!csv_path.empty()) {
    csv_file.open(csv_path);
    if (!csv_file) {
      std::cerr << "cannot open CSV output: " << csv_path << "\n";
      return 2;
    }
    csv = &csv_file;
  }

  bool all_ok = true;
  for (const std::string& name : names) {
    const Scenario* scenario = registry.find(name);
    if (scenario == nullptr) {
      std::cerr << "unknown scenario: " << name << " (try --list)\n";
      return 2;
    }
    ScenarioContext ctx(name, time_scale, csv, options);
    scenario->run(ctx);
    std::cout << (ctx.all_ok() ? "\nAll shape checks passed.\n"
                               : "\nSOME SHAPE CHECKS FAILED.\n");
    all_ok = all_ok && ctx.all_ok();
  }
  return all_ok ? 0 : 1;
}

}  // namespace asl::bench
