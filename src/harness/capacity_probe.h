// Latency-targeted capacity probe (DESIGN.md §5).
//
// The YCSB/treadmill-style load search: given a trial oracle "does the
// service meet its SLOs at offered rate r?", find the maximum rate that
// still passes. Geometric growth brackets the capacity (every pass raises
// the floor, the first failure sets the ceiling), then bisection narrows the
// bracket to a relative tolerance. The probe is deliberately generic — it
// knows nothing about KV services — so the same search drives the real
// wall-clock service, its simulated twin, and the synthetic oracles the
// property tests use. With a deterministic trial (the twin), the whole
// search is deterministic: same config + same oracle => same trial sequence
// and the same found rate, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/table.h"

namespace asl::bench {

// One offered-rate trial: run the service at `rate_per_sec` and report
// whether every SLO held (see server::report_meets_slos for the service
// criterion both paths share).
using CapacityTrialFn = std::function<bool(double rate_per_sec)>;

struct CapacityProbeConfig {
  double start_rate = 1000.0;  // requests/sec; should be known-feasible
  double max_rate = 0;         // growth ceiling; 0 = unbounded (trials cap)
  double growth = 2.0;         // geometric bracketing factor (> 1)
  double tolerance = 0.05;     // stop when hi - lo <= tolerance * lo
  std::uint32_t max_trials = 32;
};

// One executed trial, recorded in execution order: the offered rate and
// the oracle's verdict at that rate.
struct CapacityTrial {
  double rate = 0;
  bool ok = false;
};

struct CapacityResult {
  bool feasible = false;     // the start rate itself met the SLO
  bool bracketed = false;    // a violating rate was found (search converged)
  double max_rate = 0;       // highest rate observed to meet the SLO
  double min_violating = 0;  // lowest rate observed to violate it (0 = none)
  std::vector<CapacityTrial> trials;  // every trial, in execution order
};

// Runs the search. Guarantees on return:
//  * every entry in `trials` is an actual invocation of `trial`, in order;
//  * if feasible && bracketed: trial(max_rate) returned true,
//    trial(min_violating) returned false, max_rate < min_violating, and —
//    unless the trial budget ran out first — min_violating <= max_rate *
//    (1 + tolerance);
//  * if !feasible: max_rate == 0 and min_violating == start_rate;
//  * if feasible && !bracketed: the ceiling (max_rate cap or trial budget)
//    was reached with every trial passing.
CapacityResult find_capacity(const CapacityProbeConfig& config,
                             const CapacityTrialFn& trial);

// Per-class capacity (DESIGN.md §6). Whole-service capacity collapses to
// the weakest class; with class-aware shedding the interesting number is
// per class — "how much offered load can the service absorb while *this*
// class keeps its SLO", letting a shed loose class and a protected tight
// class report different capacities from the same configuration. One named
// search result per probed class.
struct ClassCapacity {
  std::string class_name;
  CapacityResult result;
};

// One trial of class `class_index` at `rate_per_sec`: run the service at
// the offered rate (the whole mix, not just that class's stream) and report
// whether that single class met its SLO (server::class_meets_slo is the
// service-side criterion). The probe stays service-agnostic: `class_index`
// indexes `class_names` as passed to find_capacity_per_class.
using ClassCapacityTrialFn =
    std::function<bool(std::size_t class_index, double rate_per_sec)>;

// Runs one find_capacity search per entry of `class_names`, in order, each
// with the same probe configuration. Every per-class search carries the
// find_capacity guarantees; with a deterministic trial the whole sweep is
// deterministic.
std::vector<ClassCapacity> find_capacity_per_class(
    const CapacityProbeConfig& config,
    const std::vector<std::string>& class_names,
    const ClassCapacityTrialFn& trial);

// The trial history as a printable/CSV table (rate cells rounded to whole
// requests/sec; integer, so deterministic trials emit deterministic bytes).
Table capacity_table(const CapacityResult& result);

// Per-class capacity summary table: one row per class — found capacity,
// first violating rate, trial count, bracketing flags. Integer rate cells,
// deterministic bytes under a deterministic trial.
Table class_capacity_table(const std::vector<ClassCapacity>& capacities);

// Twin-vs-real capacity cross-check (DESIGN.md §5/§7). The twin predicts a
// capacity in virtual time; the real probe measures one on this host. The
// comparison is *advisory* — a shared CI runner legitimately lands far from
// the model — so the verdict is a ratio band to warn on, never a pass/fail
// gate: `within_band` is false when either probe found no capacity or the
// real/twin ratio falls outside [1/tolerance_factor, tolerance_factor].
struct CapacityComparison {
  double real_rate = 0;       // real probe's max feasible rate
  double twin_rate = 0;       // twin probe's max feasible rate
  double ratio = 0;           // real / twin; 0 when either rate is 0
  bool both_feasible = false; // both probes bracketed a positive capacity
  bool within_band = false;   // both feasible and ratio inside the band
};

// Builds the comparison from the two probe results. tolerance_factor must
// be >= 1 (clamped): 2.0 flags anything beyond a 2x disagreement.
CapacityComparison compare_capacity(const CapacityResult& real,
                                    const CapacityResult& twin,
                                    double tolerance_factor = 2.0);

// One-row summary table (rates rounded to whole req/s; ratio in thousandths
// so the cells stay integer and deterministic under deterministic trials).
Table capacity_comparison_table(const CapacityComparison& comparison);

}  // namespace asl::bench
