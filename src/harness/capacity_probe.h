// Latency-targeted capacity probe (DESIGN.md §5).
//
// The YCSB/treadmill-style load search: given a trial oracle "does the
// service meet its SLOs at offered rate r?", find the maximum rate that
// still passes. Geometric growth brackets the capacity (every pass raises
// the floor, the first failure sets the ceiling), then bisection narrows the
// bracket to a relative tolerance. The probe is deliberately generic — it
// knows nothing about KV services — so the same search drives the real
// wall-clock service, its simulated twin, and the synthetic oracles the
// property tests use. With a deterministic trial (the twin), the whole
// search is deterministic: same config + same oracle => same trial sequence
// and the same found rate, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/table.h"

namespace asl::bench {

// One offered-rate trial: run the service at `rate_per_sec` and report
// whether every SLO held (see server::report_meets_slos for the service
// criterion both paths share).
using CapacityTrialFn = std::function<bool(double rate_per_sec)>;

struct CapacityProbeConfig {
  double start_rate = 1000.0;  // requests/sec; should be known-feasible
  double max_rate = 0;         // growth ceiling; 0 = unbounded (trials cap)
  double growth = 2.0;         // geometric bracketing factor (> 1)
  double tolerance = 0.05;     // stop when hi - lo <= tolerance * lo
  std::uint32_t max_trials = 32;
};

struct CapacityTrial {
  double rate = 0;
  bool ok = false;
};

struct CapacityResult {
  bool feasible = false;     // the start rate itself met the SLO
  bool bracketed = false;    // a violating rate was found (search converged)
  double max_rate = 0;       // highest rate observed to meet the SLO
  double min_violating = 0;  // lowest rate observed to violate it (0 = none)
  std::vector<CapacityTrial> trials;  // every trial, in execution order
};

// Runs the search. Guarantees on return:
//  * every entry in `trials` is an actual invocation of `trial`, in order;
//  * if feasible && bracketed: trial(max_rate) returned true,
//    trial(min_violating) returned false, max_rate < min_violating, and —
//    unless the trial budget ran out first — min_violating <= max_rate *
//    (1 + tolerance);
//  * if !feasible: max_rate == 0 and min_violating == start_rate;
//  * if feasible && !bracketed: the ceiling (max_rate cap or trial budget)
//    was reached with every trial passing.
CapacityResult find_capacity(const CapacityProbeConfig& config,
                             const CapacityTrialFn& trial);

// The trial history as a printable/CSV table (rate cells rounded to whole
// requests/sec; integer, so deterministic trials emit deterministic bytes).
Table capacity_table(const CapacityResult& result);

}  // namespace asl::bench
