// Canonical experiment configurations shared by the figure benches and the
// shape-check tests, so "Bench-1" means exactly one thing everywhere.
//
// Workload calibration (virtual-time stand-ins for the paper's cache-line
// counts and NOP counts; DESIGN.md §2):
//   * one RMW'd shared cache line  ~ 25 ns on a big core
//   * Figure 1 micro-bench: CS = 4 lines (100 ns), NOP gap = 150 ns
//   * Figure 4 variant:     CS = 64 lines (1.6 us)
//   * Bench-1 epoch: 4 critical sections over 2 locks, 64 lines total,
//     inter-epoch gap ~ 250 ns  (heavily contended)
#pragma once

#include <cstdint>

#include "sim/core_model.h"
#include "sim/db_model.h"
#include "sim/sim_runner.h"

namespace asl::sim {

inline constexpr Time kLineRmwNs = 25;

// ---------------------------------------------------------------- Figure 1/4
// Threads acquire one lock, RMW `lines` cache lines, then run a fixed NOP
// gap. Figure 1 uses 4 lines (TAS shows little-core affinity); Figure 4 uses
// 64 lines (big-core affinity).
inline EpochGen collapse_workload(std::uint32_t lines, Time gap_ns) {
  return single_cs_workload(lines * kLineRmwNs, gap_ns);
}

inline SimConfig collapse_config(std::uint32_t threads, LockKind lock,
                                 TasAffinity affinity) {
  SimConfig cfg;
  cfg.big_threads = threads <= 4 ? threads : 4;
  cfg.little_threads = threads <= 4 ? 0 : threads - 4;
  cfg.lock = lock;
  cfg.policy = Policy::kPlain;
  cfg.machine.tas_affinity = affinity;
  cfg.warmup = 10 * kMilli;
  cfg.measure = 100 * kMilli;
  return cfg;
}

// ------------------------------------------------------------------ Bench-1
// "All threads repeatedly execute the same epoch, which contains 4 critical
// sections of different lengths protected by 2 different locks ... 64 shared
// cache lines in total."
inline EpochGen bench1_workload() {
  return [](const SimThread&, std::uint64_t, Time, Rng&) {
    EpochPlan plan;
    plan.sections.push_back(Section{0, 8 * kLineRmwNs, 60});
    plan.sections.push_back(Section{1, 16 * kLineRmwNs, 60});
    plan.sections.push_back(Section{0, 24 * kLineRmwNs, 60});
    plan.sections.push_back(Section{1, 16 * kLineRmwNs, 60});
    plan.gap_after = 250;
    return plan;
  };
}

inline SimConfig bench1_config(LockKind lock) {
  SimConfig cfg;
  cfg.big_threads = 4;
  cfg.little_threads = 4;
  cfg.num_locks = 2;
  cfg.lock = lock;
  cfg.policy = Policy::kPlain;
  // Bench-1's TAS "shows big-core-affinity here" (Figure 8a discussion).
  cfg.machine.tas_affinity = TasAffinity::kBigCores;
  cfg.warmup = 20 * kMilli;
  cfg.measure = 150 * kMilli;
  return cfg;
}

// Seed the AIMD controller proportionally to the SLO so adaptation reaches
// equilibrium within a few dozen epochs regardless of the SLO's decade (the
// paper: defaults "quickly adjust themselves to a suitable size after
// executing a few epochs" — which requires the growth unit to be on the
// SLO's scale).
inline void seed_controller(SimConfig& cfg) {
  if (!cfg.use_slo || cfg.slo == 0) return;
  // Start the window *at* the SLO: the first epochs run with strong
  // reordering, and multiplicative decrease walks down to the equilibrium.
  // Starting low instead is an absorbing trap: with every little core in
  // the FIFO queue the SLO is violated on every epoch, so windows can never
  // grow — even when an SLO-meeting equilibrium exists under reordering.
  seed_config_for_slo(cfg.controller, cfg.slo);
}

// LibASL over Bench-1 with a given SLO (slo = 0 -> impossible-SLO FIFO
// fallback case; use_slo = false -> LibASL-MAX).
inline SimConfig bench1_asl_config(Time slo, bool use_slo = true) {
  SimConfig cfg = bench1_config(LockKind::kReorderable);
  cfg.policy = Policy::kAsl;
  cfg.use_slo = use_slo;
  cfg.slo = slo;
  seed_controller(cfg);
  return cfg;
}

// ------------------------------------------------------------------ Bench-5
// Variant contention: RMW 2 shared lines, vary the inter-CS NOP interval as
// 10^n NOPs (n = 0..5); 1 NOP ~ 0.4 ns of gap.
inline EpochGen contention_workload(std::uint32_t decade) {
  Time gap = 1;
  for (std::uint32_t i = 0; i < decade; ++i) gap *= 10;
  return single_cs_workload(2 * kLineRmwNs, gap * 2 / 5);
}

// ------------------------------------------------------------------ DB figs
inline SimConfig db_config(const DbWorkload& w, LockKind lock) {
  SimConfig cfg;
  cfg.big_threads = 4;
  cfg.little_threads = 4;
  cfg.num_locks = w.num_locks;
  cfg.lock = lock;
  cfg.policy = Policy::kPlain;
  cfg.machine.tas_affinity = w.tas_affinity;
  cfg.warmup = 30 * kMilli;
  cfg.measure = 200 * kMilli;
  return cfg;
}

inline SimConfig db_asl_config(const DbWorkload& w, Time slo,
                               bool use_slo = true) {
  SimConfig cfg = db_config(w, LockKind::kReorderable);
  cfg.policy = Policy::kAsl;
  cfg.use_slo = use_slo;
  cfg.slo = slo;
  seed_controller(cfg);
  return cfg;
}

// Scale measurement durations (benches use it, via the SIM_TIME_SCALE
// environment variable, to trade precision for wall-clock time).
inline SimConfig scale_durations(SimConfig cfg, double scale) {
  if (scale <= 0) scale = 1.0;
  cfg.warmup = static_cast<Time>(static_cast<double>(cfg.warmup) * scale);
  cfg.measure = static_cast<Time>(static_cast<double>(cfg.measure) * scale);
  return cfg;
}

}  // namespace asl::sim
