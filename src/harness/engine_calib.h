// Engine cost-model calibration (DESIGN.md §7).
//
// The twin prices every KV request with a per-op CostProfile (db/engine.h)
// in emulated NOPs. The checked-in defaults were produced by this harness:
// it measures, on the current host,
//   (a) the wall-clock cost of one emulated NOP (spin_nops — the unit the
//       profile is denominated in), and
//   (b) the mean wall-clock cost of one get and one put against a live
//       engine instance (prefilled, uniform random keys),
// then divides (b) by (a) to express the engine's op costs as NOP classes.
// The measured profile keeps the checked-in default's post_nops (the
// off-lock share is a modeling split the wall clock cannot observe from
// outside the service) and replaces the cs classes.
//
// Two uses: regenerating the checked-in defaults after an engine change
// (run kv_engine_calib on a quiet host, copy the classes into
// src/db/engine.cpp), and per-host fidelity checks — pass the measured
// profile through KvServiceConfig::cost to make the twin model *this*
// host's engines instead of the reference numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/engine.h"
#include "stats/table.h"

namespace asl::bench {

struct EngineCalibConfig {
  std::uint64_t prefill_keys = 4096;  // live keys before measuring
  std::uint64_t key_space = 4096;     // measured ops draw keys below this
  std::uint64_t ops = 20000;          // measured ops per op kind
  std::uint64_t seed = 42;            // key-draw RNG seed
};

struct EngineCalibResult {
  std::string engine;
  double nop_ns = 0;  // measured wall ns per emulated NOP on this host
  double get_ns = 0;  // mean wall ns per engine get
  double put_ns = 0;  // mean wall ns per engine put
  // Measured cs classes (get_ns / nop_ns, put_ns / nop_ns) + the reference
  // profile's post split; all-zero when `engine` was unknown.
  db::CostProfile measured;
  // The checked-in registry default, for side-by-side comparison.
  db::CostProfile reference;

  bool valid() const { return !measured.empty(); }
};

// Measures one engine. Wall-clock: run on a quiet host for numbers worth
// checking in; determinism is *not* promised (that is what the pinned
// defaults in db/engine.cpp are for).
EngineCalibResult calibrate_engine(const std::string& engine,
                                   const EngineCalibConfig& config = {});

// Every registered engine, in registry (sorted) order.
std::vector<EngineCalibResult> calibrate_all_engines(
    const EngineCalibConfig& config = {});

// One row per engine: measured ns/op, derived cs classes, reference
// classes. Wall-clock cells — human/CSV output, not a golden.
Table engine_calib_table(const std::vector<EngineCalibResult>& results);

}  // namespace asl::bench
