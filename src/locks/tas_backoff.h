// Test-and-set spinlock with bounded exponential backoff.
//
// The paper notes LibASL "behaves similarly to the backoff spinlock" among
// little cores (Section 3.4); this is that baseline, and it is also the
// classic remedy for TAS dogpiling on the lock line.
#pragma once

#include <atomic>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "locks/lock_concepts.h"

namespace asl {

class TasBackoffLock {
 public:
  TasBackoffLock() = default;
  TasBackoffLock(const TasBackoffLock&) = delete;
  TasBackoffLock& operator=(const TasBackoffLock&) = delete;

  void lock() {
    Backoff backoff(/*initial=*/4, /*max=*/1u << 12);
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      backoff.pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  bool is_free() const { return !locked_.load(std::memory_order_relaxed); }

 private:
  alignas(kCacheLine) std::atomic<bool> locked_{false};
};

static_assert(Lockable<TasBackoffLock>);

}  // namespace asl
