// MCS queue lock (Mellor-Crummey & Scott, 1991) — the paper's default FIFO
// substrate for the reorderable lock.
//
// Each waiter spins on a flag in its own cache-line-private queue node, so
// handover causes exactly one line transfer. Queue nodes live in a per-lock
// array indexed by the dense thread id (platform/thread_registry.h), which
// keeps lock()/unlock() signature-compatible with std::mutex — no node
// threading through call sites, which matters because the database engines
// hold locks across function boundaries.
#pragma once

#include <atomic>
#include <memory>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "platform/thread_registry.h"
#include "locks/lock_concepts.h"

namespace asl {

class McsLock {
 public:
  McsLock() : nodes_(std::make_unique<Node[]>(kMaxThreads)) {}
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void lock() {
    Node* me = &nodes_[thread_id()];
    me->next.store(nullptr, std::memory_order_relaxed);
    me->locked.store(true, std::memory_order_relaxed);
    Node* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      SpinWait waiter;
      while (me->locked.load(std::memory_order_acquire)) {
        waiter.pause();
      }
    }
  }

  bool try_lock() {
    Node* me = &nodes_[thread_id()];
    me->next.store(nullptr, std::memory_order_relaxed);
    me->locked.store(true, std::memory_order_relaxed);
    Node* expected = nullptr;
    return tail_.compare_exchange_strong(expected, me,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    Node* me = &nodes_[thread_id()];
    Node* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
      // A successor is in the middle of enqueueing; wait for its link.
      do {
        cpu_relax();
        next = me->next.load(std::memory_order_acquire);
      } while (next == nullptr);
    }
    next->locked.store(false, std::memory_order_release);
  }

  bool is_free() const {
    return tail_.load(std::memory_order_relaxed) == nullptr;
  }

  // For the calling thread, which must be the current holder: is another
  // thread queued behind it? (Cohort locks use this for the in-node passing
  // decision.) Racy in the benign direction: a successor that enqueues
  // concurrently may be missed once.
  bool holder_has_successor() const {
    const Node* me = &nodes_[thread_id()];
    return me->next.load(std::memory_order_acquire) != nullptr ||
           tail_.load(std::memory_order_acquire) != me;
  }

 private:
  struct alignas(kCacheLine) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  alignas(kCacheLine) std::atomic<Node*> tail_{nullptr};
  std::unique_ptr<Node[]> nodes_;
};

static_assert(Lockable<McsLock>);
template <>
struct is_fifo_lock<McsLock> : std::true_type {};

}  // namespace asl
