// CLH queue lock — FIFO lock where each waiter spins on its *predecessor's*
// node. Alternative reorderable-lock substrate (DESIGN.md ablation 5).
//
// Nodes are recycled in the classic way: after release, a thread adopts its
// predecessor's node as its own for the next acquisition. The node pool is
// per lock; per-thread owned-node/predecessor pointers are indexed by dense
// thread id.
#pragma once

#include <atomic>
#include <memory>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "platform/thread_registry.h"
#include "locks/lock_concepts.h"

namespace asl {

class ClhLock {
 public:
  ClhLock()
      : nodes_(std::make_unique<Node[]>(kMaxThreads + 1)),
        slots_(std::make_unique<Slot[]>(kMaxThreads)) {
    // nodes_[kMaxThreads] is the initial dummy tail (unlocked).
    nodes_[kMaxThreads].locked.store(false, std::memory_order_relaxed);
    tail_.store(&nodes_[kMaxThreads], std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < kMaxThreads; ++i) {
      slots_[i].mine = &nodes_[i];
    }
  }
  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;

  void lock() {
    Slot& slot = slots_[thread_id()];
    Node* me = slot.mine;
    me->locked.store(true, std::memory_order_relaxed);
    Node* pred = tail_.exchange(me, std::memory_order_acq_rel);
    slot.pred = pred;
    SpinWait waiter;
    while (pred->locked.load(std::memory_order_acquire)) {
      waiter.pause();
    }
  }

  bool try_lock() {
    Slot& slot = slots_[thread_id()];
    Node* me = slot.mine;
    me->locked.store(true, std::memory_order_relaxed);
    Node* expected = tail_.load(std::memory_order_relaxed);
    if (expected->locked.load(std::memory_order_acquire)) {
      me->locked.store(false, std::memory_order_relaxed);
      return false;
    }
    if (tail_.compare_exchange_strong(expected, me, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
      // Predecessor was observed unlocked; but it may have been re-locked
      // between the check and the CAS only by becoming a *new* acquisition,
      // which would have changed tail_ and failed the CAS. Safe.
      slot.pred = expected;
      return true;
    }
    me->locked.store(false, std::memory_order_relaxed);
    return false;
  }

  void unlock() {
    Slot& slot = slots_[thread_id()];
    Node* me = slot.mine;
    Node* pred = slot.pred;
    me->locked.store(false, std::memory_order_release);
    slot.mine = pred;  // recycle predecessor's node
  }

  bool is_free() const {
    return !tail_.load(std::memory_order_relaxed)
                ->locked.load(std::memory_order_relaxed);
  }

 private:
  struct alignas(kCacheLine) Node {
    std::atomic<bool> locked{false};
  };
  struct alignas(kCacheLine) Slot {
    Node* mine = nullptr;
    Node* pred = nullptr;
  };

  alignas(kCacheLine) std::atomic<Node*> tail_{nullptr};
  std::unique_ptr<Node[]> nodes_;
  std::unique_ptr<Slot[]> slots_;
};

static_assert(Lockable<ClhLock>);
template <>
struct is_fifo_lock<ClhLock> : std::true_type {};

}  // namespace asl
