// Test-and-set spinlock — the canonical unfair lock (paper Section 2.2).
//
// On AMP hardware its handover order is decided by which core wins the
// atomic exchange, which is asymmetric between big and little cores; that is
// exactly the behaviour Figures 1 and 4 dissect. On the symmetric
// reproduction host the real TAS is fair-ish; the asymmetric win-rate is
// modeled explicitly in the simulator (sim/sim_locks.*).
#pragma once

#include <atomic>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "locks/lock_concepts.h"

namespace asl {

class TasLock {
 public:
  TasLock() = default;
  TasLock(const TasLock&) = delete;
  TasLock& operator=(const TasLock&) = delete;

  void lock() {
    // Test-and-test-and-set: spin on a plain load to avoid hammering the
    // line with RMWs, then attempt the exchange.
    SpinWait waiter;
    for (;;) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      waiter.pause();
    }
  }

  bool try_lock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { locked_.store(false, std::memory_order_release); }

  bool is_free() const { return !locked_.load(std::memory_order_relaxed); }

 private:
  alignas(kCacheLine) std::atomic<bool> locked_{false};
};

static_assert(Lockable<TasLock>);

}  // namespace asl
