// Cohort lock (Dice, Marathe, Shavit — "Lock Cohorting") — a NUMA-aware
// FIFO-ish substrate.
//
// Two levels: per-node local MCS queues plus one global lock. A thread
// acquires its node's local lock; the first thread of a node also acquires
// the global lock on the node's behalf, and ownership is then passed
// *within* the node for up to kBatch handoffs before the global lock is
// surrendered (long-term fairness across nodes, locality within a node).
//
// Included because Section 3.4 ("Target systems") prescribes exactly this
// composition for large future AMPs: "LibASL can adapt to those AMPs by
// replacing the underlying lock with the corresponding scalable locks (e.g.
// NUMA-aware locks)". ReorderableLock<CohortLock<2>> compiles and is covered
// by tests; on an AMP+NUMA machine the reorderable layer prioritizes big
// cores while the cohort substrate preserves NUMA locality.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "platform/thread_registry.h"
#include "locks/lock_concepts.h"
#include "locks/mcs.h"
#include "locks/tas_backoff.h"

namespace asl {

template <std::uint32_t kNodes = 2, std::uint32_t kBatch = 32>
class CohortLock {
 public:
  static_assert(kNodes >= 1);

  CohortLock() = default;
  CohortLock(const CohortLock&) = delete;
  CohortLock& operator=(const CohortLock&) = delete;

  // Node of the calling thread. Default: dense thread id modulo node count;
  // NUMA deployments override via set_this_thread_node().
  static std::uint32_t this_node() {
    return t_node_override < kNodes ? t_node_override
                                    : thread_id() % kNodes;
  }
  static void set_this_thread_node(std::uint32_t node) {
    t_node_override = node;
  }
  static void clear_this_thread_node() { t_node_override = ~0u; }

  void lock() {
    NodeState& node = nodes_[this_node()].value;
    node.local.lock();
    // Local lock held. If the node already owns the global lock (passed by
    // the previous local holder), we are done.
    if (node.global_owned.load(std::memory_order_acquire)) {
      return;
    }
    global_.lock();
    node.global_owned.store(true, std::memory_order_relaxed);
    node.batch = 0;
  }

  bool try_lock() {
    NodeState& node = nodes_[this_node()].value;
    if (!node.local.try_lock()) return false;
    if (node.global_owned.load(std::memory_order_acquire)) {
      return true;
    }
    if (global_.try_lock()) {
      node.global_owned.store(true, std::memory_order_relaxed);
      node.batch = 0;
      return true;
    }
    node.local.unlock();
    return false;
  }

  void unlock() {
    NodeState& node = nodes_[this_node()].value;
    // Pass within the node while a successor is waiting and the batch
    // budget remains; otherwise surrender the global lock first.
    node.batch += 1;
    const bool successor_waiting = node.local.holder_has_successor();
    if (successor_waiting && node.batch < kBatch) {
      node.local.unlock();  // successor inherits global_owned
      return;
    }
    node.global_owned.store(false, std::memory_order_release);
    global_.unlock();
    node.local.unlock();
  }

  bool is_free() const { return global_.is_free(); }

 private:
  struct NodeState {
    McsLock local;
    std::atomic<bool> global_owned{false};
    std::uint32_t batch = 0;  // guarded by local
  };

  static thread_local std::uint32_t t_node_override;

  TasBackoffLock global_;
  CachePadded<NodeState> nodes_[kNodes];
};

template <std::uint32_t kNodes, std::uint32_t kBatch>
thread_local std::uint32_t CohortLock<kNodes, kBatch>::t_node_override = ~0u;

}  // namespace asl
