// Spin-then-park MCS ("MCS-STP") — the blocking FIFO baseline of Bench-6
// (Figure 8h): waiters spin briefly, then park on a futex; the releaser wakes
// exactly its successor.
//
// The paper's point: FIFO handover puts the wakeup latency of every parked
// waiter on the critical path, which is why blocking LibASL builds on an
// unfair blocking lock (pthread) instead.
#pragma once

#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "platform/thread_registry.h"
#include "locks/lock_concepts.h"

namespace asl {

class StpMcsLock {
 public:
  // Spin budget before parking, in relax iterations.
  explicit StpMcsLock(std::uint32_t spin_budget = 4096)
      : spin_budget_(spin_budget),
        nodes_(std::make_unique<Node[]>(kMaxThreads)) {}
  StpMcsLock(const StpMcsLock&) = delete;
  StpMcsLock& operator=(const StpMcsLock&) = delete;

  void lock() {
    Node* me = &nodes_[thread_id()];
    me->next.store(nullptr, std::memory_order_relaxed);
    me->state.store(kWaiting, std::memory_order_relaxed);
    Node* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev == nullptr) return;
    prev->next.store(me, std::memory_order_release);

    for (std::uint32_t i = 0; i < spin_budget_; ++i) {
      if (me->state.load(std::memory_order_acquire) == kGranted) return;
      cpu_relax();
    }
    // Park: advertise, then wait while still parked.
    std::uint32_t expected = kWaiting;
    while (!me->state.compare_exchange_weak(expected, kParked,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      if (expected == kGranted) return;
      expected = kWaiting;
    }
    while (me->state.load(std::memory_order_acquire) != kGranted) {
      futex_wait(&me->state, kParked);
    }
  }

  bool try_lock() {
    Node* me = &nodes_[thread_id()];
    me->next.store(nullptr, std::memory_order_relaxed);
    me->state.store(kWaiting, std::memory_order_relaxed);
    Node* expected = nullptr;
    return tail_.compare_exchange_strong(expected, me,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    Node* me = &nodes_[thread_id()];
    Node* next = me->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      Node* expected = me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
      do {
        cpu_relax();
        next = me->next.load(std::memory_order_acquire);
      } while (next == nullptr);
    }
    const std::uint32_t prev =
        next->state.exchange(kGranted, std::memory_order_acq_rel);
    if (prev == kParked) {
      futex_wake(&next->state);
    }
  }

  bool is_free() const {
    return tail_.load(std::memory_order_relaxed) == nullptr;
  }

 private:
  static constexpr std::uint32_t kGranted = 0;
  static constexpr std::uint32_t kWaiting = 1;
  static constexpr std::uint32_t kParked = 2;

  struct alignas(kCacheLine) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> state{kWaiting};
  };

  static void futex_wait(std::atomic<std::uint32_t>* addr,
                         std::uint32_t expected) {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
            FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
  }
  static void futex_wake(std::atomic<std::uint32_t>* addr) {
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr),
            FUTEX_WAKE_PRIVATE, 1, nullptr, nullptr, 0);
  }

  std::uint32_t spin_budget_;
  alignas(kCacheLine) std::atomic<Node*> tail_{nullptr};
  std::unique_ptr<Node[]> nodes_;
};

static_assert(Lockable<StpMcsLock>);
template <>
struct is_fifo_lock<StpMcsLock> : std::true_type {};

}  // namespace asl
