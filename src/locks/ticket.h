// Ticket lock — short-term-fair FIFO lock with a single shared grant word.
//
// FIFO handover is the property that collapses on AMP (Implication 1): the
// little cores' longer critical sections enter the critical path on every
// rotation. Included both as a baseline (Figures 8a, 9, 10 all plot it) and
// as an alternative substrate for the reorderable lock.
#pragma once

#include <atomic>
#include <cstdint>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "locks/lock_concepts.h"

namespace asl {

class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() {
    const std::uint32_t my = next_.fetch_add(1, std::memory_order_relaxed);
    SpinWait waiter;
    while (serving_.load(std::memory_order_acquire) != my) {
      waiter.pause();
    }
  }

  bool try_lock() {
    std::uint32_t serving = serving_.load(std::memory_order_acquire);
    std::uint32_t expected = serving;
    // Only take a ticket if we would be served immediately.
    if (next_.load(std::memory_order_relaxed) != serving) return false;
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  bool is_free() const {
    return next_.load(std::memory_order_relaxed) ==
           serving_.load(std::memory_order_relaxed);
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> next_{0};
  alignas(kCacheLine) std::atomic<std::uint32_t> serving_{0};
};

static_assert(Lockable<TicketLock>);
template <>
struct is_fifo_lock<TicketLock> : std::true_type {};

}  // namespace asl
