// Asymmetry-aware reader-writer lock.
//
// Kyoto Cabinet's "method lock" (Table 1) is a reader-writer lock: record
// operations take it shared, store-wide operations exclusive. This RW lock
// composes with LibASL the same way AslMutex does: the writer path goes
// through a reorderable lock (big-core writers overtake little-core writers
// within their reorder windows), and readers use a counting fast path.
//
// Design: writer-preference counting RW lock.
//   * state_ = (writer_active << 31) | reader_count
//   * readers spin while a writer is active or pending;
//   * writers serialize on an AslMutex (so LibASL's SLO-guided ordering
//     applies among writers), announce intent (writer_pending_), wait for
//     readers to drain, then set writer_active.
#pragma once

#include <atomic>
#include <cstdint>

#include "asl/libasl.h"
#include "platform/cacheline.h"
#include "platform/spin.h"

namespace asl {

template <Lockable WriterLock = AslMutex<McsLock>>
class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared() {
    SpinWait waiter;
    for (;;) {
      // Writer preference: do not start new reads while a writer waits.
      while (writer_pending_.load(std::memory_order_acquire)) {
        waiter.pause();
      }
      readers_.fetch_add(1, std::memory_order_acquire);
      if (!writer_pending_.load(std::memory_order_acquire)) {
        return;
      }
      // A writer announced intent between our check and increment: back out
      // and retry so the writer is not starved.
      readers_.fetch_sub(1, std::memory_order_release);
    }
  }

  void unlock_shared() { readers_.fetch_sub(1, std::memory_order_release); }

  bool try_lock_shared() {
    if (writer_pending_.load(std::memory_order_acquire)) return false;
    readers_.fetch_add(1, std::memory_order_acquire);
    if (writer_pending_.load(std::memory_order_acquire)) {
      readers_.fetch_sub(1, std::memory_order_release);
      return false;
    }
    return true;
  }

  void lock() {
    writer_lock_.lock();  // LibASL ordering among writers
    writer_pending_.store(true, std::memory_order_release);
    SpinWait waiter;
    while (readers_.load(std::memory_order_acquire) != 0) {
      waiter.pause();
    }
  }

  bool try_lock() {
    if (!writer_lock_.try_lock()) return false;
    writer_pending_.store(true, std::memory_order_release);
    if (readers_.load(std::memory_order_acquire) != 0) {
      writer_pending_.store(false, std::memory_order_release);
      writer_lock_.unlock();
      return false;
    }
    return true;
  }

  void unlock() {
    writer_pending_.store(false, std::memory_order_release);
    writer_lock_.unlock();
  }

  bool is_free() const {
    return readers_.load(std::memory_order_relaxed) == 0 &&
           !writer_pending_.load(std::memory_order_relaxed);
  }

  std::uint32_t reader_count() const {
    return readers_.load(std::memory_order_relaxed);
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> readers_{0};
  alignas(kCacheLine) std::atomic<bool> writer_pending_{false};
  WriterLock writer_lock_;
};

// RAII shared guard.
template <typename RW>
class SharedGuard {
 public:
  explicit SharedGuard(RW& lock) : lock_(lock) { lock_.lock_shared(); }
  ~SharedGuard() { lock_.unlock_shared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  RW& lock_;
};

}  // namespace asl
