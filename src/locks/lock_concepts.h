// Lock interface contract shared by all baseline locks.
//
// Every lock in src/locks models `Lockable`:
//   lock() / unlock()   — mutual exclusion
//   try_lock()          — non-blocking attempt (paper: "both the trylock and
//                         the nested locking are supported")
//   is_free()           — lock-status probe used by the reorderable lock's
//                         standby competitors (Algorithm 1: is_lock_free)
// FIFO locks additionally model `FifoLockable` (a tag trait), meaning
// acquisitions are granted in arrival order; this is the property the
// reorderable lock builds on.
#pragma once

#include <concepts>
#include <mutex>

namespace asl {

template <typename L>
concept Lockable = requires(L lock) {
  { lock.lock() } -> std::same_as<void>;
  { lock.unlock() } -> std::same_as<void>;
  { lock.try_lock() } -> std::same_as<bool>;
  { lock.is_free() } -> std::same_as<bool>;
};

// Trait: acquisitions are served in FIFO order of lock() entry.
template <typename L>
struct is_fifo_lock : std::false_type {};

template <typename L>
inline constexpr bool is_fifo_lock_v = is_fifo_lock<L>::value;

// std::lock_guard works with any Lockable; alias for readability.
template <Lockable L>
using LockGuard = std::lock_guard<L>;

}  // namespace asl
