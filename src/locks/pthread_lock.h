// pthread_mutex_t wrapper — the glibc baseline every figure plots.
//
// is_free() is approximated with a shadow flag: POSIX offers no non-acquiring
// probe, and the reorderable lock only uses is_free() as a heuristic hint
// (Algorithm 1 re-checks by actually acquiring), so a racy shadow is sound.
#pragma once

#include <pthread.h>

#include <atomic>

#include "platform/cacheline.h"
#include "locks/lock_concepts.h"

namespace asl {

class PthreadLock {
 public:
  PthreadLock() { pthread_mutex_init(&mutex_, nullptr); }
  ~PthreadLock() { pthread_mutex_destroy(&mutex_); }
  PthreadLock(const PthreadLock&) = delete;
  PthreadLock& operator=(const PthreadLock&) = delete;

  void lock() {
    pthread_mutex_lock(&mutex_);
    held_.store(true, std::memory_order_relaxed);
  }

  bool try_lock() {
    if (pthread_mutex_trylock(&mutex_) == 0) {
      held_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  void unlock() {
    held_.store(false, std::memory_order_relaxed);
    pthread_mutex_unlock(&mutex_);
  }

  bool is_free() const { return !held_.load(std::memory_order_relaxed); }

 private:
  alignas(kCacheLine) pthread_mutex_t mutex_;
  std::atomic<bool> held_{false};
};

static_assert(Lockable<PthreadLock>);

}  // namespace asl
