// Type-erased Lockable, used where the lock implementation must be chosen at
// runtime (pthread interposition shim, harness lock-name dispatch).
#pragma once

#include <memory>
#include <utility>

#include "locks/lock_concepts.h"

namespace asl {

class AnyLock {
 public:
  template <Lockable L, typename... Args>
  static AnyLock make(Args&&... args) {
    AnyLock any;
    any.impl_ = std::make_unique<Model<L>>(std::forward<Args>(args)...);
    return any;
  }

  AnyLock() = default;
  AnyLock(AnyLock&&) noexcept = default;
  AnyLock& operator=(AnyLock&&) noexcept = default;

  void lock() { impl_->lock(); }
  void unlock() { impl_->unlock(); }
  bool try_lock() { return impl_->try_lock(); }
  bool is_free() const { return impl_->is_free(); }
  bool valid() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void lock() = 0;
    virtual void unlock() = 0;
    virtual bool try_lock() = 0;
    virtual bool is_free() const = 0;
  };

  template <Lockable L>
  struct Model final : Concept {
    template <typename... Args>
    explicit Model(Args&&... args) : lock_(std::forward<Args>(args)...) {}
    void lock() override { lock_.lock(); }
    void unlock() override { lock_.unlock(); }
    bool try_lock() override { return lock_.try_lock(); }
    bool is_free() const override { return lock_.is_free(); }
    L lock_;
  };

  std::unique_ptr<Concept> impl_;
};

static_assert(Lockable<AnyLock>);

}  // namespace asl
