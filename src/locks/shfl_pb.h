// Proportional big:little lock ("SHFL-PB") — the static-policy comparator.
//
// The paper adapts ShflLock's NUMA-local policy to AMP: split competitors
// into a big-core queue and a little-core queue and "use a simple counter to
// allow exactly 1 little core to lock after every N big cores" (Section 4,
// N=10 in the evaluation). This class implements exactly those semantics:
// two FIFO queues plus the N:1 rotation counter. Transitions are guarded by
// an internal TAS word; the guard is held for a handful of instructions, so
// it does not distort the comparator's behaviour at the time scales the
// experiments measure.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>

#include "platform/cacheline.h"
#include "platform/spin.h"
#include "platform/thread_registry.h"
#include "platform/topology.h"
#include "locks/lock_concepts.h"

namespace asl {

class ShflPbLock {
 public:
  // `proportion` = how many big-core acquisitions are served per little-core
  // acquisition (the paper's PB10 => proportion = 10).
  explicit ShflPbLock(std::uint32_t proportion = 10)
      : proportion_(proportion == 0 ? 1 : proportion) {}
  ShflPbLock(const ShflPbLock&) = delete;
  ShflPbLock& operator=(const ShflPbLock&) = delete;

  void lock() { lock_as(is_big_core() ? CoreType::kBig : CoreType::kLittle); }

  // Explicit-type entry point for harnesses that emulate placement.
  void lock_as(CoreType type) {
    const std::uint32_t tid = thread_id();
    std::atomic<bool>& flag = granted_[tid].value;
    flag.store(false, std::memory_order_relaxed);

    guard_acquire();
    if (!held_.load(std::memory_order_relaxed)) {
      held_.store(true, std::memory_order_relaxed);
      guard_release();
      return;
    }
    if (type == CoreType::kBig) {
      big_queue_.push_back(tid);
    } else {
      little_queue_.push_back(tid);
    }
    guard_release();

    SpinWait waiter;
    while (!flag.load(std::memory_order_acquire)) {
      waiter.pause();
    }
  }

  bool try_lock() {
    guard_acquire();
    const bool ok = !held_.load(std::memory_order_relaxed);
    if (ok) held_.store(true, std::memory_order_relaxed);
    guard_release();
    return ok;
  }

  void unlock() {
    guard_acquire();
    std::uint32_t next = kNone;
    // Rotation: serve `proportion_` big acquisitions, then 1 little.
    const bool little_turn = served_since_little_ >= proportion_;
    if (little_turn && !little_queue_.empty()) {
      next = little_queue_.front();
      little_queue_.pop_front();
      served_since_little_ = 0;
    } else if (!big_queue_.empty()) {
      next = big_queue_.front();
      big_queue_.pop_front();
      ++served_since_little_;
    } else if (!little_queue_.empty()) {
      next = little_queue_.front();
      little_queue_.pop_front();
      served_since_little_ = 0;
    }
    if (next == kNone) {
      held_.store(false, std::memory_order_relaxed);
      guard_release();
      return;
    }
    guard_release();
    granted_[next].value.store(true, std::memory_order_release);
  }

  bool is_free() const { return !held_.load(std::memory_order_relaxed); }

  std::uint32_t proportion() const { return proportion_; }

 private:
  static constexpr std::uint32_t kNone = ~0u;

  void guard_acquire() {
    while (guard_.exchange(true, std::memory_order_acquire)) {
      cpu_relax();
    }
  }
  void guard_release() { guard_.store(false, std::memory_order_release); }

  std::uint32_t proportion_;
  alignas(kCacheLine) std::atomic<bool> guard_{false};
  std::atomic<bool> held_{false};
  std::uint32_t served_since_little_ = 0;
  std::deque<std::uint32_t> big_queue_;
  std::deque<std::uint32_t> little_queue_;
  CachePadded<std::atomic<bool>> granted_[kMaxThreads];
};

static_assert(Lockable<ShflPbLock>);

}  // namespace asl
