#include "platform/topology.h"

#include "platform/raw_spinlock.h"
#include <atomic>
#include <memory>
#include <sstream>

#include "platform/affinity.h"

namespace asl {
namespace {

// Per-thread override: 0 = none, 1 = big, 2 = little. Plain thread_local;
// only the owning thread touches it.
thread_local std::uint8_t t_core_type_override = 0;

// Immutable topology snapshot, swapped atomically on reconfigure so that
// is_big_core() — which sits on the lock acquisition hot path — never takes
// a mutex. Snapshots from superseded configurations are retired to a keeper
// list instead of freed: readers may still hold the raw pointer.
struct Snapshot {
  std::vector<CoreType> cpus;  // empty => symmetric host, all big
};

std::atomic<const Snapshot*> g_snapshot{nullptr};
RawSpinLock g_config_mutex;
std::vector<std::unique_ptr<const Snapshot>> g_retired;

const Snapshot* snapshot() {
  return g_snapshot.load(std::memory_order_acquire);
}

}  // namespace

Topology& Topology::instance() {
  static Topology topo;
  return topo;
}

void Topology::configure(std::vector<CoreType> cpus) {
  std::lock_guard<RawSpinLock> guard(g_config_mutex);
  auto next = std::make_unique<Snapshot>();
  next->cpus = std::move(cpus);
  const Snapshot* prev =
      g_snapshot.exchange(next.get(), std::memory_order_acq_rel);
  g_retired.emplace_back(std::move(next));
  if (prev != nullptr) {
    // prev is already owned by g_retired from the configure that installed
    // it; nothing to do. Entries live until process exit, which bounds the
    // leak by the number of reconfigurations (a handful per experiment).
  }
}

void Topology::configure_banded(std::uint32_t num_big,
                                std::uint32_t num_little) {
  std::vector<CoreType> cpus;
  cpus.reserve(num_big + num_little);
  for (std::uint32_t i = 0; i < num_big; ++i) cpus.push_back(CoreType::kBig);
  for (std::uint32_t i = 0; i < num_little; ++i)
    cpus.push_back(CoreType::kLittle);
  configure(std::move(cpus));
}

void Topology::set_this_thread_core_type(CoreType type) {
  t_core_type_override = type == CoreType::kBig ? 1 : 2;
}

void Topology::clear_this_thread_core_type() { t_core_type_override = 0; }

CoreType Topology::core_type(std::uint32_t cpu) const {
  const Snapshot* snap = snapshot();
  if (snap != nullptr && cpu < snap->cpus.size()) {
    return snap->cpus[cpu];
  }
  return CoreType::kBig;
}

CoreType Topology::current_core_type() const {
  if (t_core_type_override != 0) {
    return t_core_type_override == 1 ? CoreType::kBig : CoreType::kLittle;
  }
  const int cpu = current_cpu();
  return core_type(cpu >= 0 ? static_cast<std::uint32_t>(cpu) : 0u);
}

std::uint32_t Topology::num_cores() const {
  const Snapshot* snap = snapshot();
  return (snap == nullptr || snap->cpus.empty())
             ? online_cpus()
             : static_cast<std::uint32_t>(snap->cpus.size());
}

std::uint32_t Topology::num_big() const {
  const Snapshot* snap = snapshot();
  if (snap == nullptr || snap->cpus.empty()) return online_cpus();
  std::uint32_t n = 0;
  for (CoreType t : snap->cpus) n += t == CoreType::kBig ? 1 : 0;
  return n;
}

std::uint32_t Topology::num_little() const {
  const Snapshot* snap = snapshot();
  if (snap == nullptr) return 0;
  std::uint32_t n = 0;
  for (CoreType t : snap->cpus) n += t == CoreType::kLittle ? 1 : 0;
  return n;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << num_big() << " big + " << num_little() << " little cores";
  return os.str();
}

}  // namespace asl
