// Monotonic nanosecond clock and delay primitives.
//
// The paper uses clock_gettime (~45 cycles) for epoch timestamps; we expose
// the same via the steady clock, plus calibrated busy-delay loops used by
// workload generators to emulate "N NOP instructions".
#pragma once

#include <cstdint>
#include <ctime>

namespace asl {

using Nanos = std::uint64_t;

inline constexpr Nanos kNanosPerMicro = 1'000ULL;
inline constexpr Nanos kNanosPerMilli = 1'000'000ULL;
inline constexpr Nanos kNanosPerSec = 1'000'000'000ULL;

// Current monotonic time in nanoseconds. CLOCK_MONOTONIC matches the paper's
// use of clock_gettime and is cheap enough to call inside epoch bookkeeping.
inline Nanos now_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<Nanos>(ts.tv_sec) * kNanosPerSec +
         static_cast<Nanos>(ts.tv_nsec);
}

// Sleep for the given duration (used by the blocking reorderable lock's
// standby waiters, Section 4 Bench-6).
inline void sleep_ns(Nanos ns) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(ns / kNanosPerSec);
  ts.tv_nsec = static_cast<long>(ns % kNanosPerSec);
  nanosleep(&ts, nullptr);
}

// Busy-wait executing roughly `n` dependent no-op iterations. The volatile
// accumulator stops the optimizer from collapsing the loop; the work is
// CPU-bound like the paper's NOP filler between critical sections.
inline void spin_nops(std::uint64_t n) {
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sink = sink + 1;
  }
}

// Busy-wait until at least `deadline` (monotonic ns). Returns the time
// observed when the wait ended.
inline Nanos spin_until(Nanos deadline) {
  Nanos t = now_ns();
  while (t < deadline) {
    t = now_ns();
  }
  return t;
}

}  // namespace asl
