#include "platform/thread_registry.h"

#include "platform/raw_spinlock.h"
#include <atomic>
#include <vector>

namespace asl {
namespace {

// Free-list of recycled ids plus a bump allocator for fresh ones.
RawSpinLock g_id_mutex;
std::vector<std::uint32_t> g_free_ids;
std::atomic<std::uint32_t> g_next_id{0};
std::atomic<std::uint32_t> g_high_water{0};

std::uint32_t allocate_id() {
  {
    std::lock_guard<RawSpinLock> guard(g_id_mutex);
    if (!g_free_ids.empty()) {
      const std::uint32_t id = g_free_ids.back();
      g_free_ids.pop_back();
      return id;
    }
  }
  const std::uint32_t id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  // Saturate rather than overflow kMaxThreads; colliding slots would break
  // queue locks silently, so fail loudly in debug builds.
  std::uint32_t hw = g_high_water.load(std::memory_order_relaxed);
  while (id + 1 > hw && !g_high_water.compare_exchange_weak(
                            hw, id + 1, std::memory_order_relaxed)) {
  }
  return id % kMaxThreads;
}

void release_id(std::uint32_t id) {
  std::lock_guard<RawSpinLock> guard(g_id_mutex);
  g_free_ids.push_back(id);
}

// RAII holder so the id returns to the free list at thread exit.
struct IdHolder {
  std::uint32_t id = allocate_id();
  bool released = false;
  ~IdHolder() {
    if (!released) {
      release_id(id);
    }
  }
};

thread_local IdHolder t_id_holder;

}  // namespace

std::uint32_t thread_id() { return t_id_holder.id; }

std::uint32_t thread_id_high_water() {
  return g_high_water.load(std::memory_order_relaxed);
}

namespace detail {
void release_thread_id_for_testing() {
  if (!t_id_holder.released) {
    release_id(t_id_holder.id);
    t_id_holder.released = true;
  }
}
}  // namespace detail

}  // namespace asl
