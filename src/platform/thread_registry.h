// Dense thread-id assignment.
//
// Queue locks (MCS, CLH, ShflLock) need a per-thread, per-lock slot for their
// queue node. Rather than hashing thread ids per acquisition (litl-style), we
// assign each thread a small dense id on first use and let every lock keep a
// fixed array of kMaxThreads nodes. This costs 16 KiB per MCS lock and makes
// the hot path a single indexed load.
#pragma once

#include <cstdint>

namespace asl {

// Upper bound on concurrently-live registered threads. Large enough for the
// oversubscription experiments (2 threads per core on an 8-core AMP is 16;
// we leave plenty of headroom for servers).
inline constexpr std::uint32_t kMaxThreads = 512;

// Returns this thread's dense id in [0, kMaxThreads). Ids are assigned on
// first call and stable for the thread's lifetime. Ids of exited threads are
// recycled so long-running processes that churn threads do not exhaust the
// space.
std::uint32_t thread_id();

// Number of ids handed out so far and never reclaimed (high-water mark).
std::uint32_t thread_id_high_water();

namespace detail {
// Test hook: force-release the calling thread's id (normally done by the
// thread-exit destructor).
void release_thread_id_for_testing();
}  // namespace detail

}  // namespace asl
