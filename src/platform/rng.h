// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible run-to-run (the simulator is seeded, and
// workload mixes such as Bench-3's short/long epoch ratio are drawn from
// these generators), so we use fixed, well-understood generators rather than
// std::random_device.
#pragma once

#include <cstdint>

namespace asl {

// SplitMix64: used for seeding and for cheap stateless hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256**: fast, high-quality generator for workload draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDBA5EULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) {
      word = splitmix64(sm);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace asl
