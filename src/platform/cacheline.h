// Cache-line geometry and padding utilities.
//
// Lock words and per-thread queue nodes must live on private cache lines:
// false sharing between a lock word and the data it protects (or between two
// waiters' spin flags) destroys exactly the scalability this library exists
// to provide.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace asl {

// Hardware cache-line size. std::hardware_destructive_interference_size is
// 64 on every platform the paper targets (x86, Apple M1's L1D line is 64B;
// M1 L2 lines are 128B, which kCachelinePair covers).
inline constexpr std::size_t kCacheLine = 64;
inline constexpr std::size_t kCachelinePair = 128;

// Wraps T so that it occupies at least one full cache line, preventing
// destructive interference with neighbouring objects in arrays.
template <typename T>
struct alignas(kCacheLine) CachePadded {
  static_assert(alignof(T) <= kCacheLine, "over-aligned payload");

  T value{};

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }

  // No explicit pad member: alignas on the struct makes sizeof a multiple of
  // the cache line, which is all array elements need.
};

static_assert(sizeof(CachePadded<char>) == kCacheLine);
static_assert(alignof(CachePadded<char>) == kCacheLine);

// A dummy cache line used by workloads that read-modify-write shared lines
// (the paper's micro-benchmark critical section touches K of these).
struct alignas(kCacheLine) SharedLine {
  volatile unsigned long word = 0;
  char pad[kCacheLine - sizeof(unsigned long)] = {};
};
static_assert(sizeof(SharedLine) == kCacheLine);

}  // namespace asl
