// Spin-wait primitives: CPU relax hint, spin-then-yield waiter and bounded
// exponential backoff.
#pragma once

#include <sched.h>

#include <cstdint>

namespace asl {

// Hint to the CPU that we are in a spin loop (reduces pipeline pressure and,
// on SMT parts, yields issue slots to the sibling thread).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

// Spin-then-yield waiter for unbounded waits (queue-lock handoff flags,
// ticket grants). On a dedicated core this is a pure cpu_relax spin — the
// paper's locks never yield — but when the waiter shares a core with the
// holder (oversubscribed hosts, including this repo's CI), yielding after a
// short spin lets the holder run instead of burning the whole quantum.
class SpinWait {
 public:
  void pause() {
    if (spins_ < kSpinLimit) {
      ++spins_;
      cpu_relax();
    } else {
      sched_yield();
    }
  }
  void reset() { spins_ = 0; }

 private:
  static constexpr std::uint32_t kSpinLimit = 256;
  std::uint32_t spins_ = 0;
};

// Bounded binary exponential backoff. Used by the TAS-backoff lock and by the
// reorderable lock's standby competitors ("binary exponential back-off
// strategy to reduce the contention over the lock", Algorithm 1).
class Backoff {
 public:
  explicit Backoff(std::uint32_t initial = 1, std::uint32_t max = 1u << 14)
      : limit_(initial), max_(max) {}

  // Spin for the current backoff quantum, then double it (saturating).
  void pause() {
    for (std::uint32_t i = 0; i < limit_; ++i) {
      cpu_relax();
    }
    if (limit_ < max_) {
      limit_ <<= 1;
    }
  }

  void reset(std::uint32_t initial = 1) { limit_ = initial; }
  std::uint32_t current() const { return limit_; }

 private:
  std::uint32_t limit_;
  std::uint32_t max_;
};

}  // namespace asl
