// AMP topology description and the is_big_core() oracle.
//
// LibASL's lock-side dispatch (Algorithm 3) needs to know whether the calling
// thread currently runs on a big or a little core. On real AMP hardware this
// is "get the core id and look up a pre-defined table" (Section 3.3). The
// reproduction host is symmetric, so we additionally support a per-thread
// declared core type: experiment drivers register each worker as Big or
// Little and the speed asymmetry is emulated by the workload layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asl {

enum class CoreType : std::uint8_t {
  kBig = 0,
  kLittle = 1,
};

inline const char* to_string(CoreType t) {
  return t == CoreType::kBig ? "big" : "little";
}

// Process-wide topology table: core id -> CoreType, plus per-thread
// overrides. Thread-safe for concurrent readers; configuration calls are
// expected at experiment setup time.
class Topology {
 public:
  // The global instance consulted by LibASL.
  static Topology& instance();

  // Describe the machine: cpus[i] is the type of core i. Default-constructed
  // topology treats every core as big (symmetric host).
  void configure(std::vector<CoreType> cpus);

  // Convenience: first `num_big` cpu ids are big, next `num_little` little
  // (matches the paper's M1 layout: cpu 0-3 big, 4-7 little with threads
  // bound in that order).
  void configure_banded(std::uint32_t num_big, std::uint32_t num_little);

  // Declare the calling thread's core type explicitly. Overrides the cpu
  // table until cleared. This is how experiments emulate AMP placement on a
  // symmetric host.
  static void set_this_thread_core_type(CoreType type);
  static void clear_this_thread_core_type();

  // Core type of cpu `cpu` according to the table.
  CoreType core_type(std::uint32_t cpu) const;

  // Core type governing the calling thread: the per-thread override if set,
  // otherwise the table entry for the cpu it is running on.
  CoreType current_core_type() const;

  std::uint32_t num_cores() const;
  std::uint32_t num_big() const;
  std::uint32_t num_little() const;

  std::string describe() const;
};

// Core type governing the calling thread (DispatchPolicy input).
inline CoreType current_core_type() {
  return Topology::instance().current_core_type();
}

// LibASL's core-type predicate (Algorithm 3 line 2).
inline bool is_big_core() {
  return current_core_type() == CoreType::kBig;
}

// RAII helper for scoped thread core-type declaration in tests/harnesses.
class ScopedCoreType {
 public:
  explicit ScopedCoreType(CoreType type) {
    Topology::set_this_thread_core_type(type);
  }
  ~ScopedCoreType() { Topology::clear_this_thread_core_type(); }
  ScopedCoreType(const ScopedCoreType&) = delete;
  ScopedCoreType& operator=(const ScopedCoreType&) = delete;
};

}  // namespace asl
