// Thread-to-core pinning.
//
// The paper's evaluation binds threads to cores ("we bind threads to
// different cores to evenly distribute them for stable results"). On the
// reproduction host this is a no-op-safe wrapper: pinning to a CPU that does
// not exist simply fails and is reported to the caller.
#pragma once

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <cstdint>

namespace asl {

// Number of online CPUs.
inline std::uint32_t online_cpus() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<std::uint32_t>(n) : 1u;
}

// Pin the calling thread to `cpu`. Returns true on success.
inline bool pin_to_cpu(std::uint32_t cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

// Pin the calling thread to `cpu` modulo the online CPU count, so experiment
// drivers written for an 8-core AMP still run (time-shared) on smaller hosts.
inline bool pin_to_cpu_wrapped(std::uint32_t cpu) {
  return pin_to_cpu(cpu % online_cpus());
}

// CPU the calling thread is currently executing on (-1 if unavailable).
inline int current_cpu() { return sched_getcpu(); }

}  // namespace asl
