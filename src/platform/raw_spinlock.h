// Minimal TAS spinlock with no external dependencies.
//
// Used by process-global registries (thread ids, topology snapshots) that
// must stay usable inside the pthread interposition shim: anything based on
// std::mutex would call pthread_mutex_lock and recurse into the shim.
#pragma once

#include <atomic>

#include "platform/spin.h"

namespace asl {

class RawSpinLock {
 public:
  void lock() {
    SpinWait waiter;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        waiter.pause();
      }
    }
  }
  void unlock() { flag_.store(false, std::memory_order_release); }
  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace asl
