// Epoch runtime: the EpochRegistry plus the per-thread epoch state behind
// the epoch.h API. Replaces the seed's fixed `EpochState epochs[64]`
// thread_local arrays with dynamically grown per-thread vectors, so the
// number of distinct epochs is bounded by kMaxEpochId, not by a compile-time
// array size.
//
// Locking: each thread's state block carries a spinlock taken by that
// thread's epoch operations (uncontended in steady state) and by
// EpochRegistry::snapshot() when it aggregates windows across threads.
// Registry metadata has its own spinlock. Lock order: thread block before
// registry; snapshot() copies the registry first and only then visits thread
// blocks, so the two orders never nest in conflicting directions.
#include "asl/runtime.h"

#include <algorithm>

#include "asl/epoch.h"
#include "platform/raw_spinlock.h"
#include "platform/time.h"

namespace asl {
namespace {

struct EpochState {
  WindowController controller;
  Nanos start = 0;
  std::uint64_t completions = 0;
  bool initialized = false;
};

struct ThreadEpochs {
  RawSpinLock lock;
  std::vector<EpochState> states;  // indexed by epoch id, grown on demand
  int stack[kMaxEpochDepth] = {};
  int depth = 0;
  int current = -1;
  bool has_override = false;
  // Set (under `lock`) once the destructor has folded this thread's
  // completions into the registry; snapshot() then skips the block so the
  // counts are never reported twice.
  bool retired = false;
  WindowController::Config override_config{};

  ThreadEpochs();
  ~ThreadEpochs();
};

// Live thread blocks, for snapshot(). Leaked on purpose: thread_local
// destructors of late-exiting threads may run after static destructors.
struct ThreadList {
  RawSpinLock lock;
  std::vector<ThreadEpochs*> threads;
};

ThreadList& thread_list() {
  static ThreadList* list = new ThreadList;
  return *list;
}

struct RegistrySlot {
  bool used = false;
  std::string name;
  EpochOptions options{};
};

struct RegistryData {
  mutable RawSpinLock lock;
  std::vector<RegistrySlot> slots;  // indexed by id
  // Completion counts folded in from exited threads, so snapshots survive
  // thread churn (a server's worker pools come and go).
  std::vector<std::uint64_t> retired_completions;
  int next_auto_id = 0;
};

RegistryData& registry_data() {
  static RegistryData* data = new RegistryData;
  return *data;
}

ThreadEpochs::ThreadEpochs() {
  ThreadList& list = thread_list();
  list.lock.lock();
  list.threads.push_back(this);
  list.lock.unlock();
}

ThreadEpochs::~ThreadEpochs() {
  // Fold completion counts into the registry before disappearing. The
  // `retired` flag and the fold are published atomically (both under this
  // block's lock, with the registry lock nested inside — the same
  // thread-then-registry order state_for() uses), so a concurrent
  // snapshot() sees the counts either live or retired, never both.
  lock.lock();
  RegistryData& data = registry_data();
  data.lock.lock();
  if (data.retired_completions.size() < states.size()) {
    data.retired_completions.resize(states.size(), 0);
  }
  for (std::size_t id = 0; id < states.size(); ++id) {
    if (states[id].initialized) {
      data.retired_completions[id] += states[id].completions;
    }
  }
  data.lock.unlock();
  retired = true;
  lock.unlock();

  ThreadList& list = thread_list();
  list.lock.lock();
  auto& v = list.threads;
  v.erase(std::remove(v.begin(), v.end(), this), v.end());
  list.lock.unlock();
}

thread_local ThreadEpochs t_epochs;

bool valid_id(int epoch_id) { return epoch_id >= 0 && epoch_id < kMaxEpochId; }

// Requires te.lock held.
EpochState& state_for(ThreadEpochs& te, int epoch_id) {
  if (te.states.size() <= static_cast<std::size_t>(epoch_id)) {
    te.states.resize(static_cast<std::size_t>(epoch_id) + 1);
  }
  EpochState& st = te.states[static_cast<std::size_t>(epoch_id)];
  if (!st.initialized) {
    st.controller = WindowController(
        te.has_override ? te.override_config
                        : EpochRegistry::instance().controller_config(epoch_id));
    st.initialized = true;
  }
  return st;
}

// Pops the epoch stack down to (and including) `epoch_id`. Requires te.lock
// held and `epoch_id` == te.current or present on te.stack. Frames inside
// the matched epoch are abandoned without feedback — their epoch never
// cleanly ended.
void unwind_to(ThreadEpochs& te, int epoch_id) {
  while (te.current != epoch_id && te.depth > 0) {
    te.current = te.stack[--te.depth];
  }
  // te.current == epoch_id now; pop it.
  te.current = te.depth > 0 ? te.stack[--te.depth] : -1;
}

bool on_stack(const ThreadEpochs& te, int epoch_id) {
  if (te.current == epoch_id) return true;
  for (int i = 0; i < te.depth; ++i) {
    if (te.stack[i] == epoch_id) return true;
  }
  return false;
}

// Shared implementation of epoch_end / epoch_end_with_latency /
// epoch_end(id) [registry-default SLO].
int end_epoch(int epoch_id, std::uint64_t slo_ns, bool run_feedback,
              const std::uint64_t* latency_override) {
  if (!valid_id(epoch_id)) return -1;
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  // Mismatch hardening: ending an epoch that is not the innermost one
  // unwinds to its frame (abandoning the inner frames); ending an epoch
  // that was never started leaves the stack untouched and reports failure.
  if (!on_stack(te, epoch_id)) {
    te.lock.unlock();
    return -1;
  }
  EpochState& st = state_for(te, epoch_id);
  // Algorithm 2 line 21 via DispatchPolicy: big cores never stand by, so
  // their windows are irrelevant and the measurement is skipped.
  if (run_feedback && DispatchPolicy::updates_window(current_core_type())) {
    const Nanos latency =
        latency_override != nullptr ? *latency_override : now_ns() - st.start;
    st.controller.on_epoch_end(latency, slo_ns);
  }
  st.completions += 1;
  unwind_to(te, epoch_id);
  te.lock.unlock();
  return 0;
}

}  // namespace

// ------------------------------------------------------------ epoch.h API

int epoch_start(int epoch_id) {
  if (!valid_id(epoch_id)) return -1;
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  if (te.current >= 0 && te.depth < kMaxEpochDepth) {
    te.stack[te.depth++] = te.current;
  }
  te.current = epoch_id;
  state_for(te, epoch_id).start = now_ns();
  te.lock.unlock();
  return 0;
}

int epoch_end(int epoch_id, std::uint64_t slo_ns) {
  return end_epoch(epoch_id, slo_ns, /*run_feedback=*/true, nullptr);
}

int epoch_end(int epoch_id) {
  const std::uint64_t slo = EpochRegistry::instance().default_slo(epoch_id);
  // Without a registered default SLO the end still pops the epoch, but no
  // feedback runs (there is nothing to compare the latency against).
  return end_epoch(epoch_id, slo, /*run_feedback=*/slo != 0, nullptr);
}

int epoch_end_with_latency(int epoch_id, std::uint64_t slo_ns,
                           std::uint64_t latency_ns) {
  return end_epoch(epoch_id, slo_ns, /*run_feedback=*/true, &latency_ns);
}

int current_epoch_id() {
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  const int id = te.current;
  te.lock.unlock();
  return id;
}

std::uint64_t current_epoch_window() {
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  const int id = te.current;
  const std::uint64_t w = id < 0 ? DispatchPolicy::no_epoch_window()
                                 : state_for(te, id).controller.window();
  te.lock.unlock();
  return w;
}

std::uint64_t epoch_window(int epoch_id) {
  if (!valid_id(epoch_id)) return kMaxReorderWindow;
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  const std::uint64_t w = state_for(te, epoch_id).controller.window();
  te.lock.unlock();
  return w;
}

void set_epoch_controller_config(const WindowController::Config& config) {
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  te.has_override = true;
  te.override_config = config;
  for (EpochState& st : te.states) {
    if (st.initialized) {
      st.controller = WindowController(config);
    }
  }
  te.lock.unlock();
}

void reset_thread_epochs() {
  ThreadEpochs& te = t_epochs;
  te.lock.lock();
  // The config override survives a reset (seed semantics): experiments call
  // reset between phases and expect the configured controller to persist.
  te.states.clear();
  te.states.shrink_to_fit();
  te.depth = 0;
  te.current = -1;
  te.lock.unlock();
}

// -------------------------------------------------------------- registry

EpochRegistry& EpochRegistry::instance() {
  static EpochRegistry* registry = new EpochRegistry;
  return *registry;
}

int EpochRegistry::register_epoch(std::string_view name,
                                  const EpochOptions& options) {
  RegistryData& data = registry_data();
  data.lock.lock();
  for (std::size_t id = 0; id < data.slots.size(); ++id) {
    if (data.slots[id].used && data.slots[id].name == name) {
      data.slots[id].options = options;
      data.lock.unlock();
      return static_cast<int>(id);
    }
  }
  // Allocate the next id never handed out (ids below next_auto_id may also
  // be taken by register_epoch_id users; skip those).
  int id = data.next_auto_id;
  while (id < kMaxEpochId &&
         static_cast<std::size_t>(id) < data.slots.size() &&
         data.slots[static_cast<std::size_t>(id)].used) {
    ++id;
  }
  if (id >= kMaxEpochId) {
    data.lock.unlock();
    return -1;
  }
  if (data.slots.size() <= static_cast<std::size_t>(id)) {
    data.slots.resize(static_cast<std::size_t>(id) + 1);
  }
  data.slots[static_cast<std::size_t>(id)] = {true, std::string(name), options};
  data.next_auto_id = id + 1;
  data.lock.unlock();
  return id;
}

int EpochRegistry::register_epoch_id(int id, std::string_view name,
                                     const EpochOptions& options) {
  if (!valid_id(id)) return -1;
  RegistryData& data = registry_data();
  data.lock.lock();
  if (data.slots.size() <= static_cast<std::size_t>(id)) {
    data.slots.resize(static_cast<std::size_t>(id) + 1);
  }
  data.slots[static_cast<std::size_t>(id)] = {true, std::string(name), options};
  data.lock.unlock();
  return id;
}

int EpochRegistry::find(std::string_view name) const {
  RegistryData& data = registry_data();
  data.lock.lock();
  for (std::size_t id = 0; id < data.slots.size(); ++id) {
    if (data.slots[id].used && data.slots[id].name == name) {
      data.lock.unlock();
      return static_cast<int>(id);
    }
  }
  data.lock.unlock();
  return -1;
}

bool EpochRegistry::registered(int id) const {
  if (!valid_id(id)) return false;
  RegistryData& data = registry_data();
  data.lock.lock();
  const bool used = static_cast<std::size_t>(id) < data.slots.size() &&
                    data.slots[static_cast<std::size_t>(id)].used;
  data.lock.unlock();
  return used;
}

std::size_t EpochRegistry::registered_count() const {
  RegistryData& data = registry_data();
  data.lock.lock();
  std::size_t n = 0;
  for (const RegistrySlot& slot : data.slots) n += slot.used ? 1 : 0;
  data.lock.unlock();
  return n;
}

bool EpochRegistry::set_options(int id, const EpochOptions& options) {
  if (!valid_id(id)) return false;
  RegistryData& data = registry_data();
  data.lock.lock();
  if (static_cast<std::size_t>(id) >= data.slots.size() ||
      !data.slots[static_cast<std::size_t>(id)].used) {
    data.lock.unlock();
    return false;
  }
  data.slots[static_cast<std::size_t>(id)].options = options;
  data.lock.unlock();
  return true;
}

EpochDescriptor EpochRegistry::describe(int id) const {
  EpochDescriptor desc;
  if (!valid_id(id)) return desc;
  RegistryData& data = registry_data();
  data.lock.lock();
  if (static_cast<std::size_t>(id) < data.slots.size() &&
      data.slots[static_cast<std::size_t>(id)].used) {
    desc.id = id;
    desc.name = data.slots[static_cast<std::size_t>(id)].name;
    desc.options = data.slots[static_cast<std::size_t>(id)].options;
  }
  data.lock.unlock();
  return desc;
}

std::uint64_t EpochRegistry::default_slo(int id) const {
  if (!valid_id(id)) return 0;
  RegistryData& data = registry_data();
  data.lock.lock();
  const std::uint64_t slo =
      static_cast<std::size_t>(id) < data.slots.size() &&
              data.slots[static_cast<std::size_t>(id)].used
          ? data.slots[static_cast<std::size_t>(id)].options.default_slo_ns
          : 0;
  data.lock.unlock();
  return slo;
}

WindowController::Config EpochRegistry::controller_config(int id) const {
  if (!valid_id(id)) return WindowController::Config{};
  RegistryData& data = registry_data();
  data.lock.lock();
  const WindowController::Config cfg =
      static_cast<std::size_t>(id) < data.slots.size() &&
              data.slots[static_cast<std::size_t>(id)].used
          ? data.slots[static_cast<std::size_t>(id)].options.controller
          : WindowController::Config{};
  data.lock.unlock();
  return cfg;
}

std::vector<EpochSnapshot> EpochRegistry::snapshot() const {
  // Copy the registry metadata first so no thread lock nests inside the
  // registry lock.
  std::vector<EpochSnapshot> out;
  std::vector<std::uint64_t> retired;
  {
    RegistryData& data = registry_data();
    data.lock.lock();
    for (std::size_t id = 0; id < data.slots.size(); ++id) {
      if (!data.slots[id].used) continue;
      EpochSnapshot snap;
      snap.id = static_cast<int>(id);
      snap.name = data.slots[id].name;
      snap.default_slo_ns = data.slots[id].options.default_slo_ns;
      out.push_back(std::move(snap));
    }
    retired = data.retired_completions;
    data.lock.unlock();
  }
  auto find_or_add = [&out](int id) -> EpochSnapshot& {
    for (EpochSnapshot& snap : out) {
      if (snap.id == id) return snap;
    }
    EpochSnapshot snap;
    snap.id = id;
    snap.name = "epoch-" + std::to_string(id);
    out.push_back(std::move(snap));
    return out.back();
  };

  for (std::size_t id = 0; id < retired.size(); ++id) {
    if (retired[id] != 0) {
      find_or_add(static_cast<int>(id)).completions += retired[id];
    }
  }

  ThreadList& list = thread_list();
  list.lock.lock();
  for (ThreadEpochs* te : list.threads) {
    te->lock.lock();
    if (te->retired) {
      // Mid-exit: its counts are already in the retired copy (or will be in
      // the next snapshot); reading them here would double-count.
      te->lock.unlock();
      continue;
    }
    for (std::size_t id = 0; id < te->states.size(); ++id) {
      const EpochState& st = te->states[id];
      if (!st.initialized) continue;
      EpochSnapshot& snap = find_or_add(static_cast<int>(id));
      const std::uint64_t w = st.controller.window();
      if (snap.threads == 0) {
        snap.window_min = snap.window_max = w;
      } else {
        snap.window_min = std::min(snap.window_min, w);
        snap.window_max = std::max(snap.window_max, w);
      }
      snap.window_mean += static_cast<double>(w);
      snap.completions += st.completions;
      snap.threads += 1;
    }
    te->lock.unlock();
  }
  list.lock.unlock();

  for (EpochSnapshot& snap : out) {
    if (snap.threads > 0) snap.window_mean /= snap.threads;
  }
  std::sort(out.begin(), out.end(),
            [](const EpochSnapshot& a, const EpochSnapshot& b) {
              return a.id < b.id;
            });
  return out;
}

std::uint64_t EpochRegistry::completions(int id) const {
  for (const EpochSnapshot& snap : snapshot()) {
    if (snap.id == id) return snap.completions;
  }
  return 0;
}

void EpochRegistry::reset_registrations() {
  RegistryData& data = registry_data();
  data.lock.lock();
  data.slots.clear();
  data.retired_completions.clear();
  data.next_auto_id = 0;
  data.lock.unlock();
}

}  // namespace asl
