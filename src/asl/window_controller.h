// AIMD reorder-window controller — the feedback mechanism of Algorithm 2.
//
// Maps a coarse-grained latency SLO to a fine-grained per-epoch reorder
// window:
//   * latency > SLO  -> window >>= 1 (multiplicative decrease), and the
//     growth unit is re-derived as window * (100-PCT)/100;
//   * latency <= SLO -> window += unit (additive increase).
//
// The (100-PCT)/100 unit choice targets the PCT-th percentile directly
// (paper footnote 4): after a violation halves the window, it takes
// 100/(100-PCT) additive steps to climb back to the violating size, so the
// fraction of epochs executed at a window that barely meets the SLO is
// PCT/100 — i.e. the SLO is maintained *at the configured percentile*, not
// at the mean.
//
// This class is pure logic (no clocks, no atomics): the real library drives
// it from epoch_end() with measured wall-clock latencies, and the simulator
// drives the very same code with virtual-time latencies, so the figure
// benches exercise the production feedback path.
#pragma once

#include <algorithm>
#include <cstdint>

namespace asl {

class WindowController {
 public:
  struct Config {
    std::uint64_t initial_window = 1'000;      // ns; adapts within a few epochs
    std::uint64_t initial_unit = 100;          // ns
    std::uint64_t max_window = 100'000'000;    // 100 ms = kMaxReorderWindow
    std::uint64_t min_window = 16;             // ns; floor for multiplicative
                                               // decrease — repeated halving
                                               // cannot drive the window to 0
                                               // (16 ns is indistinguishable
                                               // from FIFO, but growth stays
                                               // proportional, not stuck at 0)
    std::uint64_t min_unit = 16;               // ns; keeps growth alive after
                                               // deep multiplicative decrease
    std::uint32_t percentile = 99;             // the PCT in Algorithm 2
    bool fixed_unit = false;                   // Figure 8b ablation: keep the
                                               // growth unit fixed instead of
                                               // re-deriving it from the
                                               // window and percentile
  };

  WindowController() : WindowController(Config{}) {}
  explicit WindowController(const Config& config) : config_(config) {
    config_.percentile = std::clamp<std::uint32_t>(config_.percentile, 1, 99);
    config_.min_window = std::min(config_.min_window, config_.max_window);
    window_ = std::clamp(config_.initial_window, config_.min_window,
                         config_.max_window);
    unit_ = std::max(config_.initial_unit, config_.min_unit);
  }

  // Feedback step at epoch end (Algorithm 2 lines 22-30).
  void on_epoch_end(std::uint64_t latency, std::uint64_t slo) {
    if (latency > slo) {
      window_ = std::max(window_ >> 1, config_.min_window);
      if (!config_.fixed_unit) {
        unit_ = std::max<std::uint64_t>(
            window_ * (100 - config_.percentile) / 100, config_.min_unit);
      }
    } else {
      window_ = std::min(window_ + unit_, config_.max_window);
    }
  }

  std::uint64_t window() const { return window_; }
  std::uint64_t unit() const { return unit_; }
  const Config& config() const { return config_; }

  void reset() {
    window_ = std::clamp(config_.initial_window, config_.min_window,
                         config_.max_window);
    unit_ = std::max(config_.initial_unit, config_.min_unit);
  }

 private:
  Config config_;
  std::uint64_t window_ = 0;
  std::uint64_t unit_ = 0;
};

// Seed `config` proportionally to an SLO: start the window *at* the SLO
// (multiplicative decrease walks down to equilibrium; starting low is an
// absorbing trap — see experiment.h's fuller rationale) with a growth unit
// on the SLO's scale so adaptation converges within a few dozen epochs in
// any SLO decade. The one rule shared by the simulator configs
// (seed_controller) and the KV service's per-class registration; other
// config fields (percentile, fixed_unit) are left untouched.
inline void seed_config_for_slo(WindowController::Config& config,
                                std::uint64_t slo_ns) {
  config.initial_window = slo_ns;
  config.initial_unit = slo_ns / 64 > 16 ? slo_ns / 64 : std::uint64_t{16};
}

}  // namespace asl
