// EpochReclaimer — epoch-based (QSBR-style) deferred memory reclamation for
// the lock-free read path (DESIGN.md §8).
//
// The MVCC engine publishes immutable version nodes through an atomic root
// pointer; readers traverse them without any lock, so a writer that unlinks
// a node can never free it immediately — a reader may still be inside the
// old version. This reclaimer is the standard three-epoch scheme (the EBR/
// QSBR family of pop_setbench's recordmgr, PPoPP'25): readers *pin* the
// domain around each read (announcing the global epoch), writers *retire*
// unlinked nodes tagged with the epoch of retirement, and a retired node is
// freed once the global epoch has advanced two steps past its tag — by then
// every reader that could have reached it has unpinned.
//
// Quiescence signal: a thread is quiescent whenever it holds no pin. In the
// KV service the pin interval nests strictly inside the request's
// epoch_start/epoch_end bracket (asl/runtime.h), so the EpochRegistry's
// per-thread epoch state doubles as the QSBR quiescence map: every epoch
// boundary the service already annotates is a point where the thread is
// provably outside any snapshot read (DESIGN.md §8 spells out the mapping).
//
// Bounded backlog: retire() reclaims in batches and applies backpressure —
// at every batch boundary (each batch-th retirement by a thread) the caller
// sweeps until the domain-wide backlog of unreclaimed nodes is back under
// batch * max(1, participating threads), yielding to let in-flight readers
// unpin (see retire() for the two escape hatches). Between boundaries a
// retiring thread can overshoot by at most one in-flight batch, so the
// whole-domain invariant tests/reclaim_test.cpp pins is
// backlog <= backlog_bound() + batch per retiring thread.
//
// Threading: pin/unpin/retire may be called from any thread (slots are
// indexed by the dense platform thread id). Construction and destruction
// are single-threaded; the destructor frees every outstanding retired node
// and must not race live pins.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "platform/cacheline.h"
#include "platform/raw_spinlock.h"
#include "platform/thread_registry.h"

namespace asl {

struct ReclaimConfig {
  // Retirements per thread between reclamation sweeps, and the unit of the
  // backlog bound: retire() keeps the domain-wide unreclaimed backlog at or
  // under batch * max(1, participating threads).
  std::uint32_t batch = 64;
};

class EpochReclaimer {
 public:
  using Deleter = void (*)(void*);

  explicit EpochReclaimer(ReclaimConfig config = {});
  ~EpochReclaimer();
  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  // --------------------------------------------------------- read side
  // Enters a read-side critical section: announces the current global epoch
  // for this thread. Nests (only the outermost pin announces; unpin of the
  // outermost releases). While pinned, every node retired after the pin
  // stays reachable-safe: it cannot be freed until this thread unpins.
  void pin();
  void unpin();
  // Whether the calling thread currently holds a pin on this domain.
  bool pinned() const;

  // Movable RAII pin — the handle snapshot objects hold.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(EpochReclaimer& domain) : domain_(&domain) {
      domain.pin();
    }
    Guard(Guard&& other) noexcept : domain_(other.domain_) {
      other.domain_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        if (domain_ != nullptr) domain_->unpin();
        domain_ = other.domain_;
        other.domain_ = nullptr;
      }
      return *this;
    }
    ~Guard() {
      if (domain_ != nullptr) domain_->unpin();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    bool holds() const { return domain_ != nullptr; }

   private:
    EpochReclaimer* domain_ = nullptr;
  };

  // -------------------------------------------------------- write side
  // Hands an unlinked node to the domain. The node must already be
  // unreachable from the published structure (new readers cannot find it);
  // it is freed with `del` once the two-epoch grace period has passed.
  // Applies the backlog backpressure described above — may sweep and free
  // other safe nodes before returning.
  void retire(void* p, Deleter del);
  template <typename T>
  void retire(const T* p) {
    retire(const_cast<T*>(p), [](void* q) { delete static_cast<T*>(q); });
  }

  // Advances the global epoch iff every pinned thread has announced the
  // current one. Returns whether it advanced.
  bool try_advance();

  // Frees every retired node whose grace period has passed (all slots).
  // Returns the number freed.
  std::size_t sweep();

  // ----------------------------------------------------- introspection
  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  // Retired-but-not-yet-freed nodes, domain-wide.
  std::uint64_t retired_backlog() const {
    return backlog_.load(std::memory_order_acquire);
  }
  std::uint64_t freed_count() const {
    return freed_.load(std::memory_order_acquire);
  }
  // Threads that ever pinned or retired in this domain.
  std::uint32_t participants() const {
    return participants_.load(std::memory_order_acquire);
  }
  // The bound retire() enforces at each batch boundary: backlog <= batch *
  // max(1, participants) on return (unless the caller itself was pinned).
  // Between boundaries a retiring thread may run at most batch() over it.
  std::uint64_t backlog_bound() const {
    const std::uint32_t n = participants();
    return static_cast<std::uint64_t>(config_.batch) * (n == 0 ? 1 : n);
  }
  std::uint32_t batch() const { return config_.batch; }

 private:
  struct Retired {
    void* ptr;
    Deleter del;
    std::uint64_t epoch;  // global epoch at retirement
  };

  // Per-thread slot, indexed by the dense platform thread id. `state`
  // encodes (announced_epoch << 1) | active; quiescent threads read as
  // state 0. `nest` and `used` are only touched by the owning thread; the
  // retired list is owned by the slot's thread for pushes but sweepable by
  // any thread under `lock` (that is what lets retire()'s backpressure
  // free another thread's safe garbage instead of waiting for it).
  struct alignas(kCacheLine) Slot {
    std::atomic<std::uint64_t> state{0};
    std::uint32_t nest = 0;
    bool used = false;
    std::uint64_t retire_seq = 0;  // monotone; drives the batch trigger
    RawSpinLock lock;
    std::vector<Retired> retired;  // guarded by lock
  };

  Slot& self_slot() { return slots_[thread_id()]; }
  const Slot& self_slot() const { return slots_[thread_id()]; }
  void mark_used(Slot& slot);
  // Frees `slot`'s safe nodes against `safe_before` (retire epoch + 2 <=
  // current). Returns the number freed.
  std::size_t sweep_slot(Slot& slot, std::uint64_t current_epoch);

  ReclaimConfig config_;
  std::atomic<std::uint64_t> global_epoch_{2};  // >= 2: epoch 0 is never safe
  std::atomic<std::uint64_t> backlog_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::atomic<std::uint32_t> participants_{0};
  std::vector<Slot> slots_;  // kMaxThreads entries, index == thread_id()
};

}  // namespace asl
