#include "asl/epoch.h"

#include "platform/topology.h"
#include "reorder/reorderable.h"

namespace asl {
namespace {

struct EpochState {
  WindowController controller;
  Nanos start = 0;
  bool initialized = false;
};

struct ThreadEpochs {
  EpochState epochs[kMaxEpochs];
  int stack[kMaxEpochDepth];
  int depth = 0;
  int current = -1;
  WindowController::Config config{};
};

thread_local ThreadEpochs t_epochs;

EpochState& state_for(int epoch_id) {
  EpochState& st = t_epochs.epochs[epoch_id];
  if (!st.initialized) {
    st.controller = WindowController(t_epochs.config);
    st.initialized = true;
  }
  return st;
}

}  // namespace

int epoch_start(int epoch_id) {
  if (epoch_id < 0 || epoch_id >= kMaxEpochs) return -1;
  ThreadEpochs& te = t_epochs;
  if (te.current >= 0 && te.depth < kMaxEpochDepth) {
    te.stack[te.depth++] = te.current;
  }
  te.current = epoch_id;
  state_for(epoch_id).start = now_ns();
  return 0;
}

int epoch_end(int epoch_id, std::uint64_t slo_ns) {
  if (epoch_id < 0 || epoch_id >= kMaxEpochs) return -1;
  ThreadEpochs& te = t_epochs;
  // Algorithm 2 line 21: big cores never stand by, so their windows are
  // irrelevant and the measurement is skipped.
  if (!is_big_core()) {
    EpochState& st = state_for(epoch_id);
    const Nanos latency = now_ns() - st.start;
    st.controller.on_epoch_end(latency, slo_ns);
  }
  te.current = te.depth > 0 ? te.stack[--te.depth] : -1;
  return 0;
}

int current_epoch_id() { return t_epochs.current; }

std::uint64_t current_epoch_window() {
  const int id = t_epochs.current;
  if (id < 0) return kMaxReorderWindow;
  return state_for(id).controller.window();
}

std::uint64_t epoch_window(int epoch_id) {
  if (epoch_id < 0 || epoch_id >= kMaxEpochs) return kMaxReorderWindow;
  return state_for(epoch_id).controller.window();
}

void set_epoch_controller_config(const WindowController::Config& config) {
  t_epochs.config = config;
  for (EpochState& st : t_epochs.epochs) {
    if (st.initialized) {
      st.controller = WindowController(config);
    }
  }
}

void reset_thread_epochs() {
  ThreadEpochs& te = t_epochs;
  for (EpochState& st : te.epochs) {
    st = EpochState{};
  }
  te.depth = 0;
  te.current = -1;
}

}  // namespace asl
