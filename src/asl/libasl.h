// LibASL public lock API — Algorithm 3 (asl_mutex_lock) over the
// reorderable lock plus the epoch feedback of Algorithm 2.
//
// The dispatch rule itself lives in exactly one place: DispatchPolicy
// (runtime.h). Both mutexes here template over the policy, and the
// simulator's Policy::kAsl consumes the same class, so real and simulated
// paths provably share the production dispatch code:
//   big core              -> lock_immediately (join FIFO queue now)
//   little core, no epoch -> lock_reorder(kMaxReorderWindow)  (default
//                            loose window: maximum throughput, still
//                            starvation-free)
//   little core, epoch    -> lock_reorder(current epoch's AIMD window)
//
// AslMutex is templated over the FIFO substrate (MCS by default; the paper:
// "the reorderable lock is built atop the MCS lock"); BlockingAslMutex is
// the oversubscription variant over pthread_mutex.
#pragma once

#include "platform/time.h"
#include "platform/topology.h"
#include "locks/mcs.h"
#include "reorder/blocking_reorderable.h"
#include "reorder/reorderable.h"
#include "asl/epoch.h"
#include "asl/runtime.h"

namespace asl {

template <Lockable Fifo = McsLock, typename Policy = DispatchPolicy>
class AslMutex {
 public:
  AslMutex() = default;
  AslMutex(const AslMutex&) = delete;
  AslMutex& operator=(const AslMutex&) = delete;

  // Algorithm 3, via the shared policy. The window lookup is lazy: big
  // cores enqueue without touching epoch state.
  void lock() {
    Policy::lock(inner_, current_core_type(),
                 [] { return current_epoch_window(); });
  }

  // lock() plus the measured wait (request -> acquisition) — the telemetry
  // layer's lock-wait observable (DESIGN.md §11). A separate entry point so
  // untelemetered acquisitions pay zero extra clock reads.
  Nanos lock_timed() {
    const Nanos t0 = now_ns();
    lock();
    return now_ns() - t0;
  }

  bool try_lock() { return inner_.try_lock(); }
  void unlock() { inner_.unlock(); }
  bool is_free() const { return inner_.is_free(); }

  ReorderableLock<Fifo>& reorderable() { return inner_; }

 private:
  ReorderableLock<Fifo> inner_;
};

// Blocking variant for core-oversubscribed deployments (Bench-6).
template <typename Policy = DispatchPolicy>
class BasicBlockingAslMutex {
 public:
  BasicBlockingAslMutex() = default;
  BasicBlockingAslMutex(const BasicBlockingAslMutex&) = delete;
  BasicBlockingAslMutex& operator=(const BasicBlockingAslMutex&) = delete;

  void lock() {
    Policy::lock(inner_, current_core_type(),
                 [] { return current_epoch_window(); });
  }

  // See AslMutex::lock_timed — same contract for the blocking variant.
  Nanos lock_timed() {
    const Nanos t0 = now_ns();
    lock();
    return now_ns() - t0;
  }

  bool try_lock() { return inner_.try_lock(); }
  void unlock() { inner_.unlock(); }
  bool is_free() const { return inner_.is_free(); }

 private:
  BlockingReorderableLock<PthreadLock> inner_;
};

using BlockingAslMutex = BasicBlockingAslMutex<>;

static_assert(Lockable<AslMutex<McsLock>>);
static_assert(Lockable<BlockingAslMutex>);

// RAII epoch annotation (C++ sugar over epoch_start/epoch_end; Figure 6's
// two-line annotation becomes one declaration).
class EpochScope {
 public:
  EpochScope(int epoch_id, std::uint64_t slo_ns)
      : id_(epoch_id), slo_(slo_ns), use_registry_default_(false) {
    epoch_start(id_);
  }
  // Registry-default-SLO variant for epochs registered with EpochOptions.
  // Ends through the epoch_end(id) overload so an epoch without a default
  // SLO pops cleanly with no feedback (an slo of 0 would instead count
  // every epoch as a violation).
  explicit EpochScope(int epoch_id)
      : id_(epoch_id), slo_(0), use_registry_default_(true) {
    epoch_start(id_);
  }
  ~EpochScope() {
    if (use_registry_default_) {
      epoch_end(id_);
    } else {
      epoch_end(id_, slo_);
    }
  }
  EpochScope(const EpochScope&) = delete;
  EpochScope& operator=(const EpochScope&) = delete;

 private:
  int id_;
  std::uint64_t slo_;
  bool use_registry_default_;
};

}  // namespace asl
