// LibASL public lock API — Algorithm 3 (asl_mutex_lock) over the
// reorderable lock plus the epoch feedback of Algorithm 2.
//
// Dispatch rule:
//   big core              -> lock_immediately (join FIFO queue now)
//   little core, no epoch -> lock_reorder(kMaxReorderWindow)  (default
//                            loose window: maximum throughput, still
//                            starvation-free)
//   little core, epoch    -> lock_reorder(current epoch's AIMD window)
//
// AslMutex is templated over the FIFO substrate (MCS by default; the paper:
// "the reorderable lock is built atop the MCS lock"); BlockingAslMutex is
// the oversubscription variant over pthread_mutex.
#pragma once

#include "platform/topology.h"
#include "locks/mcs.h"
#include "reorder/blocking_reorderable.h"
#include "reorder/reorderable.h"
#include "asl/epoch.h"

namespace asl {

template <Lockable Fifo = McsLock>
class AslMutex {
 public:
  AslMutex() = default;
  AslMutex(const AslMutex&) = delete;
  AslMutex& operator=(const AslMutex&) = delete;

  // Algorithm 3.
  void lock() {
    if (is_big_core()) {
      inner_.lock_immediately();
    } else {
      inner_.lock_reorder(current_epoch_window());
    }
  }

  bool try_lock() { return inner_.try_lock(); }
  void unlock() { inner_.unlock(); }
  bool is_free() const { return inner_.is_free(); }

  ReorderableLock<Fifo>& reorderable() { return inner_; }

 private:
  ReorderableLock<Fifo> inner_;
};

// Blocking variant for core-oversubscribed deployments (Bench-6).
class BlockingAslMutex {
 public:
  BlockingAslMutex() = default;
  BlockingAslMutex(const BlockingAslMutex&) = delete;
  BlockingAslMutex& operator=(const BlockingAslMutex&) = delete;

  void lock() {
    if (is_big_core()) {
      inner_.lock_immediately();
    } else {
      inner_.lock_reorder(current_epoch_window());
    }
  }

  bool try_lock() { return inner_.try_lock(); }
  void unlock() { inner_.unlock(); }
  bool is_free() const { return inner_.is_free(); }

 private:
  BlockingReorderableLock<PthreadLock> inner_;
};

static_assert(Lockable<AslMutex<McsLock>>);
static_assert(Lockable<BlockingAslMutex>);

// RAII epoch annotation (C++ sugar over epoch_start/epoch_end; Figure 6's
// two-line annotation becomes one declaration).
class EpochScope {
 public:
  EpochScope(int epoch_id, std::uint64_t slo_ns)
      : id_(epoch_id), slo_(slo_ns) {
    epoch_start(id_);
  }
  ~EpochScope() { epoch_end(id_, slo_); }
  EpochScope(const EpochScope&) = delete;
  EpochScope& operator=(const EpochScope&) = delete;

 private:
  int id_;
  std::uint64_t slo_;
};

}  // namespace asl
