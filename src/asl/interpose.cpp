// See interpose.h. Implementation notes:
//
// * The shadow table maps pthread_mutex_t* -> AslMutex. It is a fixed-size
//   open-addressed hash table of atomic pointers: lookups are lock-free and
//   insertion races are resolved with compare_exchange (the loser frees its
//   candidate). We must not call anything that could itself take a pthread
//   mutex on this path (malloc is safe under glibc; its internal locks use
//   lll_lock, not the interposable pthread_mutex_lock PLT entry).
// * Entries are never removed: pthread_mutex_destroy is not interposed, so a
//   destroyed-and-reused address simply reuses its shadow, which is exactly
//   the fresh-unlocked state a reinitialized mutex expects.
#include "asl/interpose.h"

#include <atomic>
#include <cstdint>

#include "asl/epoch.h"
#include "asl/libasl.h"

namespace {

constexpr std::size_t kTableBits = 16;
constexpr std::size_t kTableSize = 1ULL << kTableBits;  // 65536 mutexes

using Shadow = asl::AslMutex<asl::McsLock>;

std::atomic<Shadow*> g_table[kTableSize];
std::atomic<const pthread_mutex_t*> g_keys[kTableSize];
std::atomic<std::uint64_t> g_redirects{0};

std::size_t hash_ptr(const pthread_mutex_t* m) {
  auto x = reinterpret_cast<std::uintptr_t>(m);
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x) & (kTableSize - 1);
}

Shadow* shadow_for(pthread_mutex_t* m) {
  std::size_t idx = hash_ptr(m);
  for (std::size_t probe = 0; probe < kTableSize; ++probe) {
    const pthread_mutex_t* key = g_keys[idx].load(std::memory_order_acquire);
    if (key == m) {
      return g_table[idx].load(std::memory_order_acquire);
    }
    if (key == nullptr) {
      const pthread_mutex_t* expected = nullptr;
      if (g_keys[idx].compare_exchange_strong(expected, m,
                                              std::memory_order_acq_rel)) {
        Shadow* shadow = new Shadow();
        g_table[idx].store(shadow, std::memory_order_release);
        return shadow;
      }
      if (expected == m) {
        // Raced with another thread inserting the same key; wait for its
        // shadow pointer to land.
        Shadow* s;
        while ((s = g_table[idx].load(std::memory_order_acquire)) == nullptr) {
        }
        return s;
      }
    }
    idx = (idx + 1) & (kTableSize - 1);
  }
  return nullptr;  // table full: fall back to the real pthread lock
}

}  // namespace

extern "C" {

int asl_epoch_start(int epoch_id) { return asl::epoch_start(epoch_id); }

int asl_epoch_end(int epoch_id, std::uint64_t slo_ns) {
  return asl::epoch_end(epoch_id, slo_ns);
}

std::uint64_t asl_interpose_redirect_count() {
  return g_redirects.load(std::memory_order_relaxed);
}

// The interposed entry points. When this library is linked ahead of
// libpthread (or LD_PRELOADed), these definitions win symbol resolution.
int pthread_mutex_lock(pthread_mutex_t* mutex) {
  Shadow* shadow = shadow_for(mutex);
  if (shadow == nullptr) return 22;  // EINVAL: table exhausted
  g_redirects.fetch_add(1, std::memory_order_relaxed);
  shadow->lock();
  return 0;
}

int pthread_mutex_trylock(pthread_mutex_t* mutex) {
  Shadow* shadow = shadow_for(mutex);
  if (shadow == nullptr) return 22;
  return shadow->try_lock() ? 0 : 16;  // EBUSY
}

int pthread_mutex_unlock(pthread_mutex_t* mutex) {
  Shadow* shadow = shadow_for(mutex);
  if (shadow == nullptr) return 22;
  shadow->unlock();
  return 0;
}

}  // extern "C"
