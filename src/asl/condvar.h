// Condition-variable support for LibASL mutexes.
//
// Section 3.3: "the conditional variable is also supported by using the same
// technique in litl". The litl technique: since the application-visible lock
// is no longer a pthread_mutex_t, each condition variable keeps a private
// real pthread mutex; wait() acquires the private mutex, releases the LibASL
// mutex, blocks on the real pthread_cond_t against the private mutex, then
// reacquires the LibASL mutex before returning. signal/broadcast forward to
// the real condvar. The usual condition-variable contract (caller holds the
// LibASL mutex around wait; predicate re-checked in a loop) carries over
// unchanged.
#pragma once

#include <pthread.h>

#include <cstdint>

#include "locks/lock_concepts.h"
#include "platform/time.h"

namespace asl {

class CondVar {
 public:
  CondVar() {
    pthread_mutex_init(&shadow_mutex_, nullptr);
    pthread_cond_init(&cond_, nullptr);
  }
  ~CondVar() {
    pthread_cond_destroy(&cond_);
    pthread_mutex_destroy(&shadow_mutex_);
  }
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until signalled. `lock` must be held by the caller; it is
  // released while blocked and reacquired (through LibASL's ordering, i.e. a
  // little core re-enters via its reorder window) before returning.
  template <Lockable L>
  void wait(L& lock) {
    pthread_mutex_lock(&shadow_mutex_);
    lock.unlock();
    pthread_cond_wait(&cond_, &shadow_mutex_);
    pthread_mutex_unlock(&shadow_mutex_);
    lock.lock();
  }

  // Timed wait; returns false on timeout. The LibASL mutex is reacquired in
  // both cases.
  template <Lockable L>
  bool wait_for(L& lock, Nanos timeout_ns) {
    timespec deadline;
    clock_gettime(CLOCK_REALTIME, &deadline);
    deadline.tv_sec += static_cast<time_t>(timeout_ns / kNanosPerSec);
    deadline.tv_nsec += static_cast<long>(timeout_ns % kNanosPerSec);
    if (deadline.tv_nsec >= static_cast<long>(kNanosPerSec)) {
      deadline.tv_sec += 1;
      deadline.tv_nsec -= static_cast<long>(kNanosPerSec);
    }
    pthread_mutex_lock(&shadow_mutex_);
    lock.unlock();
    const int rc = pthread_cond_timedwait(&cond_, &shadow_mutex_, &deadline);
    pthread_mutex_unlock(&shadow_mutex_);
    lock.lock();
    return rc == 0;
  }

  // Wakes one / all waiters. Taking the shadow mutex around the signal
  // closes the missed-wakeup race against a waiter between lock.unlock()
  // and pthread_cond_wait().
  void signal() {
    pthread_mutex_lock(&shadow_mutex_);
    pthread_cond_signal(&cond_);
    pthread_mutex_unlock(&shadow_mutex_);
  }
  void broadcast() {
    pthread_mutex_lock(&shadow_mutex_);
    pthread_cond_broadcast(&cond_);
    pthread_mutex_unlock(&shadow_mutex_);
  }

 private:
  pthread_mutex_t shadow_mutex_;
  pthread_cond_t cond_;
};

}  // namespace asl
