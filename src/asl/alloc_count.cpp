// See alloc_count.h. Implementation notes:
//
// * The replacements forward to malloc/free (aligned_alloc for the aligned
//   forms) and count into plain thread_local integers plus relaxed global
//   atomics. No code here may allocate: these functions ARE the allocator
//   for any binary that links them.
// * The thread_local counters are trivially-initialized scalars, so reading
//   them from inside operator new cannot recurse through a dynamic
//   initializer.
// * Defining ANY replacement in a translation unit obliges us to define the
//   whole family (new/new[]/nothrow/aligned x delete/sized/aligned):
//   a partial replacement would pair our new with the library's delete.
// * Throwing forms honor the std::new_handler loop, per [new.delete.single].
#include "asl/alloc_count.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};

thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_frees = 0;

inline void count_alloc(std::size_t size) {
  t_allocs += 1;
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
}

inline void count_free(void* p) {
  if (p == nullptr) return;
  t_frees += 1;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

// malloc with the new-handler retry loop; returns nullptr only when no
// handler is installed (the nothrow forms surface that, the throwing forms
// turn it into bad_alloc).
void* checked_malloc(std::size_t size) {
  if (size == 0) size = 1;  // malloc(0) may return nullptr legally
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* checked_aligned(std::size_t size, std::size_t alignment) {
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  for (;;) {
    void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

}  // namespace

namespace asl {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

AllocCounts alloc_counts() {
  AllocCounts c;
  c.allocs = g_allocs.load(std::memory_order_relaxed);
  c.frees = g_frees.load(std::memory_order_relaxed);
  c.bytes = g_bytes.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t thread_alloc_count() { return t_allocs; }

std::uint64_t thread_free_count() { return t_frees; }

bool alloc_counting_linked() { return true; }

}  // namespace asl

// ------------------------------------------------------------ replacements

void* operator new(std::size_t size) {
  count_alloc(size);
  void* p = checked_malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc(size);
  return checked_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  count_alloc(size);
  return checked_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  count_alloc(size);
  void* p = checked_aligned(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  count_alloc(size);
  return checked_aligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  count_alloc(size);
  return checked_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete[](void* p) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { ::operator delete(p); }

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ::operator delete(p);
}

void operator delete(void* p, std::align_val_t) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  count_free(p);
  std::free(p);
}

void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  count_free(p);
  std::free(p);
}
