// Allocation-counting operator new/delete interposition — the observability
// half of the zero-allocation hot path (DESIGN.md §9).
//
// The paper schedules the *lock* as the scarce resource, but a request path
// that heap-allocates smuggles a second, unscheduled lock into every op: the
// allocator's. Before allocation can be *removed* from the hot path it has
// to be *countable*, and countable in a way a regression test can pin — so,
// alongside the pthread_mutex interposer (interpose.h, the same weak-symbol
// replacement idea), this module replaces the global operator new/delete
// family with counting forwards to malloc/free.
//
// Like asl_interpose, linking is the opt-in: binaries that link `asl_alloc`
// get the counting allocator process-wide (every new/delete in the binary,
// the STL included, passes through it); binaries that do not are untouched.
// The counters are the contract the kv_alloc_audit scenario and
// tests/alloc_test.cpp assert on: a steady-state KV request must move none
// of them.
//
// Counting costs one thread-local increment plus one relaxed global
// fetch_add per call — nothing the figure benches can measure — and the
// hooks never allocate themselves (malloc only), so they are safe under
// ThreadSanitizer and inside any locking path in this codebase.
#pragma once

#include <cstdint>

namespace asl {

// Process-wide totals since process start. `allocs`/`frees` count calls
// (operator new family / operator delete family with a non-null pointer);
// `bytes` sums requested allocation sizes.
struct AllocCounts {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
};

// Process-wide operator-new call count. THE steady-state observable: take it
// before and after a traffic window; the delta is how many times the window
// hit the allocator. Monotone, relaxed (exact once the threads of interest
// have quiesced — drain the service before the "after" read).
std::uint64_t alloc_count();

// All three process-wide counters in one read (each individually relaxed).
AllocCounts alloc_counts();

// Operator-new calls made by the calling thread only. Exact with no
// quiescence requirement, which is what the single-threaded unit tests pin
// (a push/pop cycle on a warmed queue moves this by exactly zero).
std::uint64_t thread_alloc_count();

// Operator-delete calls (non-null) made by the calling thread.
std::uint64_t thread_free_count();

// True when the counting hooks are linked into this binary. Defined in the
// same translation unit as the operator new replacement, so any binary that
// can call this has the hooks by construction — it exists so audit output
// can state the fact rather than assume it.
bool alloc_counting_linked();

}  // namespace asl
