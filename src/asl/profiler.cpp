#include "asl/profiler.h"

#include <algorithm>
#include <ostream>

#include "stats/table.h"

namespace asl {

std::vector<SloPoint> SloProfiler::sweep(const Range& range,
                                         const SloMeasureFn& measure) {
  std::vector<SloPoint> points;
  const std::uint32_t steps = std::max<std::uint32_t>(range.steps, 2);
  for (std::uint32_t i = 0; i < steps; ++i) {
    const std::uint64_t slo =
        range.lo_ns + (range.hi_ns - range.lo_ns) * i / (steps - 1);
    SloPoint p = measure(slo);
    p.slo_ns = slo;
    points.push_back(p);
  }
  return points;
}

Table SloProfiler::graph_table(const std::vector<SloPoint>& points) {
  Table table(
      {"slo_us", "big_p99_us", "little_p99_us", "overall_p99_us", "tput_ops"});
  for (const SloPoint& p : points) {
    table.add_row({Table::fmt_ns_as_us(p.slo_ns),
                   Table::fmt_ns_as_us(p.p99_big),
                   Table::fmt_ns_as_us(p.p99_little),
                   Table::fmt_ns_as_us(p.p99_overall),
                   Table::fmt_ops(p.throughput)});
  }
  return table;
}

void SloProfiler::print_graph(const std::vector<SloPoint>& points,
                              std::ostream& os) {
  graph_table(points).print(os);
}

const SloPoint* SloProfiler::recommend(const std::vector<SloPoint>& points,
                                       double tolerance) {
  if (points.empty()) return nullptr;
  double best = 0;
  for (const SloPoint& p : points) best = std::max(best, p.throughput);
  const SloPoint* pick = nullptr;
  for (const SloPoint& p : points) {
    if (p.throughput >= best * tolerance) {
      if (pick == nullptr || p.slo_ns < pick->slo_ns) pick = &p;
    }
  }
  return pick;
}

}  // namespace asl
