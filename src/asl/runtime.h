// Layered runtime core shared by the real library and the simulator.
//
// Two pieces live here (DESIGN.md §1):
//
//  * DispatchPolicy — THE implementation of Algorithm 3's big/little dispatch
//    rule and of Algorithm 2's "feedback runs on little cores only" gate.
//    AslMutex, BlockingAslMutex and the simulator's Policy::kAsl all consume
//    this class; no other place in the tree is allowed to branch on the core
//    type to pick between lock_immediately and lock_reorder, so the simulator
//    provably exercises the production dispatch code.
//
//  * EpochRegistry — process-wide epoch metadata: dynamic registration by
//    name or id (the seed's fixed 64-slot arrays are gone), per-epoch default
//    SLO and controller configuration, and a snapshot/introspection API that
//    aggregates the live per-thread reorder windows for the profiler.
//
// Per-thread epoch *state* (controllers, start timestamps, the nesting
// stack) stays thread-local and is owned by the epoch runtime in
// runtime.cpp; the registry only holds shared metadata and reaches the
// thread states for snapshots.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "asl/window_controller.h"
#include "platform/topology.h"
#include "reorder/reorderable.h"

namespace asl {

// Upper bound on epoch ids accepted by the runtime. Ids are dense indices
// into per-thread state vectors that grow on demand, so this is a sanity cap
// (rejecting garbage ids), not a preallocation size.
inline constexpr int kMaxEpochId = 65'536;

// ------------------------------------------------------------ DispatchPolicy

// The outcome of Algorithm 3 for one lock acquisition.
struct LockPlan {
  bool immediate = true;        // true: join the FIFO queue now
  std::uint64_t window_ns = 0;  // standby window when !immediate
};

// Algorithm 3 (asl_mutex_lock) + the Algorithm 2 line 21 feedback gate.
//
// Stateless on purpose: the inputs (core type, current epoch window) come
// from the caller, so the same rule serves real threads (wall-clock windows)
// and simulated threads (virtual-time windows).
class DispatchPolicy {
 public:
  // Algorithm 3: big core -> enqueue immediately; little core -> stand by
  // for the caller's current reorder window.
  static constexpr LockPlan plan(CoreType caller, std::uint64_t window_ns) {
    if (caller == CoreType::kBig) return LockPlan{true, 0};
    return LockPlan{false, window_ns};
  }

  // Algorithm 2 line 21: big cores never stand by, so only little cores run
  // the AIMD window update at epoch end.
  static constexpr bool updates_window(CoreType caller) {
    return caller == CoreType::kLittle;
  }

  // Window an out-of-epoch thread uses: the loose maximum (starvation-free,
  // maximum-throughput default).
  static constexpr std::uint64_t no_epoch_window() { return kMaxReorderWindow; }

  // Apply the plan to any reorderable-lock-shaped object (the real
  // ReorderableLock / BlockingReorderableLock; the simulator drives its
  // continuation-passing locks from plan() directly). `window` is either a
  // window in ns or a callable producing one; callables are only invoked
  // when the plan stands by, so the big-core fast path never pays for the
  // epoch-window lookup it would discard.
  template <typename Reorderable, typename WindowSource>
  static void lock(Reorderable& lk, CoreType caller, WindowSource&& window) {
    LockPlan p = plan(caller, 0);
    if (!p.immediate) {
      if constexpr (std::is_invocable_v<WindowSource&>) {
        p = plan(caller, window());
      } else {
        p = plan(caller, window);
      }
    }
    if (p.immediate) {
      lk.lock_immediately();
    } else {
      lk.lock_reorder(p.window_ns);
    }
  }
};

// ------------------------------------------------------------- EpochRegistry

// Shared per-epoch metadata, applied when a thread first touches the epoch.
struct EpochOptions {
  // Default latency SLO for epoch_end(id) callers that do not pass one.
  // 0 = no default: such an end still pops the epoch but skips feedback.
  std::uint64_t default_slo_ns = 0;
  // Controller seed for threads without a thread-local config override.
  WindowController::Config controller{};
};

struct EpochDescriptor {
  int id = -1;
  std::string name;
  EpochOptions options{};
};

// Aggregate view of one epoch across all live threads (profiler input).
struct EpochSnapshot {
  int id = -1;
  std::string name;
  std::uint64_t default_slo_ns = 0;
  std::uint32_t threads = 0;        // threads holding live state
  std::uint64_t completions = 0;    // epoch_end count across threads
  std::uint64_t window_min = 0;     // current windows across threads
  std::uint64_t window_max = 0;
  double window_mean = 0.0;
};

class EpochRegistry {
 public:
  // The global instance the epoch runtime consults.
  static EpochRegistry& instance();

  // Registers an epoch by name and returns its id. Re-registering an
  // existing name updates its options and returns the existing id. Returns
  // -1 when the id space is exhausted.
  int register_epoch(std::string_view name, const EpochOptions& options = {});

  // Registers (or updates) the epoch at a specific id — for programs with a
  // static id scheme (Figure 6 style annotations). Returns `id`, or -1 when
  // out of range.
  int register_epoch_id(int id, std::string_view name,
                        const EpochOptions& options = {});

  // Id registered under `name`, or -1.
  int find(std::string_view name) const;

  bool registered(int id) const;
  std::size_t registered_count() const;

  // Update per-epoch defaults. Applies to threads that first touch the
  // epoch afterwards; live controllers are not re-seeded (use the
  // thread-local set_epoch_controller_config for that). Returns false for
  // unregistered ids.
  bool set_options(int id, const EpochOptions& options);

  // Descriptor for `id`; id == -1 in the result means "not registered".
  EpochDescriptor describe(int id) const;

  // Default SLO for `id` (0 when unregistered or none configured).
  std::uint64_t default_slo(int id) const;

  // Controller seed for `id` (default config when unregistered).
  WindowController::Config controller_config(int id) const;

  // Aggregates live per-thread state for every epoch that is registered or
  // has per-thread state. Unregistered-but-used ids appear as "epoch-<id>".
  // Completion counts of exited threads are retained (folded in at thread
  // exit); window aggregates cover live threads only. Sorted by id.
  std::vector<EpochSnapshot> snapshot() const;

  // Completions currently attributed to `id` (live threads plus the
  // retired fold) — the single-epoch slice of snapshot(). Callers that run
  // back to back in one process compare before/after deltas, not absolute
  // counts.
  std::uint64_t completions(int id) const;

  // Drops all registrations (test isolation). Per-thread state is not
  // touched; call reset_thread_epochs() on the threads that need it.
  void reset_registrations();
};

// Deterministic feedback entry: ends the current epoch exactly like
// epoch_end(id, slo) but with a caller-supplied latency instead of the
// wall-clock measurement. This is the hook the parity tests use to drive the
// production feedback path with the same latency trace the simulator sees.
int epoch_end_with_latency(int epoch_id, std::uint64_t slo_ns,
                           std::uint64_t latency_ns);

}  // namespace asl
