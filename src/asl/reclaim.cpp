#include "asl/reclaim.h"

#include <thread>

namespace asl {
namespace {

// Slot-state encoding: (announced_epoch << 1) | active. 0 == quiescent.
constexpr std::uint64_t kActiveBit = 1;

std::uint64_t encode(std::uint64_t epoch) {
  return (epoch << 1) | kActiveBit;
}

}  // namespace

EpochReclaimer::EpochReclaimer(ReclaimConfig config)
    : config_(config), slots_(kMaxThreads) {
  if (config_.batch == 0) config_.batch = 1;
}

EpochReclaimer::~EpochReclaimer() {
  // Single-threaded teardown contract: no live pins, no concurrent retires.
  // Everything still in a retired list is unreachable by now — free it.
  for (Slot& slot : slots_) {
    for (const Retired& r : slot.retired) r.del(r.ptr);
    slot.retired.clear();
  }
}

void EpochReclaimer::mark_used(Slot& slot) {
  if (!slot.used) {
    slot.used = true;
    participants_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void EpochReclaimer::pin() {
  Slot& slot = self_slot();
  if (slot.nest++ > 0) return;  // nested: outer pin already announced
  mark_used(slot);
  // Announce the epoch we observe, then re-read: if the global epoch moved
  // between the read and the announcement, a concurrent try_advance may
  // have treated us as announcing a stale epoch. Re-announce until the
  // global epoch we published is the one still current — then no sweep can
  // free nodes retired in the epoch we read under. seq_cst on both sides
  // (here and in try_advance) makes the announce/scan ordering total.
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.state.store(encode(e), std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) break;
    e = now;
  }
}

void EpochReclaimer::unpin() {
  Slot& slot = self_slot();
  if (--slot.nest > 0) return;
  slot.state.store(0, std::memory_order_seq_cst);
}

bool EpochReclaimer::pinned() const {
  return self_slot().nest > 0;
}

bool EpochReclaimer::try_advance() {
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  const std::uint32_t scan = thread_id_high_water();
  for (std::uint32_t i = 0; i < scan && i < kMaxThreads; ++i) {
    const std::uint64_t s = slots_[i].state.load(std::memory_order_seq_cst);
    if ((s & kActiveBit) != 0 && s != encode(e)) {
      return false;  // a reader is still inside an older epoch
    }
  }
  // Every active reader has announced e, so nothing can still hold a
  // reference into epoch e-1's retired set. CAS tolerates racing advancers.
  std::uint64_t expected = e;
  return global_epoch_.compare_exchange_strong(expected, e + 1,
                                               std::memory_order_seq_cst);
}

std::size_t EpochReclaimer::sweep_slot(Slot& slot, std::uint64_t current) {
  std::size_t freed = 0;
  slot.lock.lock();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < slot.retired.size(); ++i) {
    const Retired& r = slot.retired[i];
    if (r.epoch + 2 <= current) {
      r.del(r.ptr);
      ++freed;
    } else {
      slot.retired[keep++] = r;
    }
  }
  slot.retired.resize(keep);
  slot.lock.unlock();
  if (freed != 0) {
    backlog_.fetch_sub(freed, std::memory_order_acq_rel);
    freed_.fetch_add(freed, std::memory_order_acq_rel);
  }
  return freed;
}

std::size_t EpochReclaimer::sweep() {
  const std::uint64_t current = global_epoch_.load(std::memory_order_seq_cst);
  std::size_t freed = 0;
  const std::uint32_t scan = thread_id_high_water();
  for (std::uint32_t i = 0; i < scan && i < kMaxThreads; ++i) {
    freed += sweep_slot(slots_[i], current);
  }
  return freed;
}

void EpochReclaimer::retire(void* p, Deleter del) {
  Slot& slot = self_slot();
  mark_used(slot);
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  slot.lock.lock();
  slot.retired.push_back(Retired{p, del, e});
  slot.lock.unlock();
  backlog_.fetch_add(1, std::memory_order_acq_rel);
  // Monotone per-thread count, not the list size: sweeps shrink the list,
  // which would make a size-based trigger drift off the batch cadence.
  const std::uint64_t mine = ++slot.retire_seq;

  // Batch trigger: once this thread has accumulated a batch, try to turn
  // the epoch over, reclaim what became safe, and apply backpressure —
  // sweep until the domain-wide backlog is back at or under
  // batch * max(1, participants). The pressure loop runs only at batch
  // boundaries (between them the backlog can overshoot by at most one
  // in-flight batch per retiring thread): each failed advance means
  // waiting out a reader's scheduling quantum, and paying that on every
  // single retirement serializes writers against the reader schedule on
  // small hosts. Two escape hatches keep the loop from deadlocking:
  // (a) a caller that itself holds a pin can never help the epoch advance
  // by yielding, so it is exempt (its own pin blocks progress — the bound
  // resumes once it unpins); (b) the loop stops after two failed epoch
  // turns — an advance fails only while some reader is pinned inside an
  // older epoch, and on an oversubscribed host that reader may well be
  // descheduled for a whole quantum, so waiting it out would stall every
  // writer boundary. Best-effort then; the next boundary retries.
  if (mine % config_.batch != 0) return;
  try_advance();
  sweep();
  if (slot.nest > 0) return;
  const std::uint64_t bound = backlog_bound();
  int failed_turns = 0;
  for (int attempts = 0;
       backlog_.load(std::memory_order_acquire) > bound &&
       failed_turns < 2 && attempts < 64;
       ++attempts) {
    if (!try_advance()) {
      ++failed_turns;
      std::this_thread::yield();
    }
    sweep();
  }
}

}  // namespace asl
