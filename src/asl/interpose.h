// pthread interposition shim — Section 3.3: "LibASL leverages weak-symbol
// replacement to redirect the invocations of pthread_mutex_lock
// transparently."
//
// Linking (or LD_PRELOAD-ing) libasl_pthread resolves pthread_mutex_lock /
// unlock / trylock to the definitions in interpose.cpp, which route through
// an AslMutex shadow object per pthread_mutex_t address. The C epoch API is
// exported alongside so latency-critical applications add exactly the three
// lines of Figure 6.
//
// Sibling module: alloc_count.h applies the same link-time replacement idea
// to the global operator new/delete family — counting hooks for the
// zero-allocation hot-path regression harness (DESIGN.md §9). The two are
// separate opt-in libraries on purpose: this one *changes lock behaviour*
// process-wide, the allocation counter only observes.
#pragma once

#include <pthread.h>

#include <cstdint>

extern "C" {

// The Figure 6 annotation API.
int asl_epoch_start(int epoch_id);
int asl_epoch_end(int epoch_id, std::uint64_t slo_ns);

// Interposed pthread entry points (defined in interpose.cpp and exported by
// the libasl_pthread shared library).
// int pthread_mutex_lock(pthread_mutex_t*);
// int pthread_mutex_trylock(pthread_mutex_t*);
// int pthread_mutex_unlock(pthread_mutex_t*);

// Introspection for tests/demos: how many pthread_mutex_lock calls have been
// redirected through LibASL in this process.
std::uint64_t asl_interpose_redirect_count();

}  // extern "C"
