// Epoch interfaces — the paper's Algorithm 2 (epoch_start / epoch_end).
//
// An epoch is an application-annotated code block with a latency SLO (e.g. a
// request handler, Figure 6). Epoch metadata is per-thread: each thread keeps
// its own reorder-window controller per epoch id, a start timestamp, and a
// stack supporting nested epochs. The two epoch operations cost ~a hundred
// cycles (one clock_gettime plus integer arithmetic), matching the paper's
// ~93-cycle figure.
//
// This header is the stable C-style annotation API; it is implemented by the
// layered runtime in runtime.h/.cpp. Epoch ids are dynamic: register them by
// name through the EpochRegistry (which also carries per-epoch default SLOs
// and controller configs), or just use small integers directly — state is
// materialized on first use.
#pragma once

#include <cstdint>

#include "asl/runtime.h"

namespace asl {

// Historical alias for the epoch-id cap. The seed sized fixed per-thread
// arrays with this; ids are now dynamic and this is only the validity bound.
inline constexpr int kMaxEpochs = kMaxEpochId;
// Maximum nesting depth of epochs on one thread.
inline constexpr int kMaxEpochDepth = 16;

// Starts epoch `epoch_id` on the calling thread. Nested epochs push the
// outer epoch on a per-thread stack. Returns 0 (matching the C-style paper
// API); out-of-range ids are ignored and return -1.
int epoch_start(int epoch_id);

// Ends epoch `epoch_id` with the given latency SLO in nanoseconds. On little
// cores this measures the epoch latency and runs the AIMD window update; on
// big cores the update is skipped (Algorithm 2 line 21, gated by
// DispatchPolicy::updates_window) because big cores never stand by.
//
// Hardened against mismatched nesting: ending an epoch that is not the
// innermost one unwinds the per-thread stack to its frame (inner frames are
// abandoned without feedback); ending an epoch that is not on the stack at
// all returns -1 and leaves the stack untouched. Returns 0 on success, -1
// for out-of-range ids or mismatches.
int epoch_end(int epoch_id, std::uint64_t slo_ns);

// As above, but takes the SLO from the EpochRegistry's per-epoch default.
// With no default registered the epoch still ends (the stack pops) but no
// feedback runs.
int epoch_end(int epoch_id);

// Epoch id currently governing the calling thread, or -1 when not in any
// epoch (Algorithm 3 consults this).
int current_epoch_id();

// Reorder window of the calling thread's current epoch; kMaxReorderWindow
// when not in an epoch. Used by the LibASL lock dispatch.
std::uint64_t current_epoch_window();

// Window currently chosen for a specific epoch id on this thread (testing /
// introspection).
std::uint64_t epoch_window(int epoch_id);

// Override the percentile / controller configuration for this thread's
// epochs (applies to epochs started afterwards; existing controllers are
// re-seeded). Primarily for experiments; the default is P99 or, for
// registered epochs, the registry's per-epoch controller config.
void set_epoch_controller_config(const WindowController::Config& config);

// Reset all epoch state on the calling thread (between experiment phases).
// The thread's controller-config override, if any, survives the reset.
void reset_thread_epochs();

}  // namespace asl
