// Epoch interfaces — the paper's Algorithm 2 (epoch_start / epoch_end).
//
// An epoch is an application-annotated code block with a latency SLO (e.g. a
// request handler, Figure 6). Epoch metadata is per-thread: each thread keeps
// its own reorder-window controller per epoch id, a start timestamp, and a
// stack supporting nested epochs. The two epoch operations cost ~a hundred
// cycles (one clock_gettime plus integer arithmetic), matching the paper's
// ~93-cycle figure.
#pragma once

#include <cstdint>

#include "platform/time.h"
#include "asl/window_controller.h"

namespace asl {

// Maximum distinct epoch ids (statically assigned by programmers; the paper
// sizes per-thread metadata at 24 bytes/epoch and leaves the count small).
inline constexpr int kMaxEpochs = 64;
// Maximum nesting depth of epochs on one thread.
inline constexpr int kMaxEpochDepth = 16;

// Starts epoch `epoch_id` on the calling thread. Nested epochs push the
// outer epoch on a per-thread stack. Returns 0 (matching the C-style paper
// API); out-of-range ids are ignored and return -1.
int epoch_start(int epoch_id);

// Ends epoch `epoch_id` with the given latency SLO in nanoseconds. On little
// cores this measures the epoch latency and runs the AIMD window update; on
// big cores the update is skipped (Algorithm 2 line 21) because big cores
// never stand by. Returns 0, or -1 for out-of-range ids.
int epoch_end(int epoch_id, std::uint64_t slo_ns);

// Epoch id currently governing the calling thread, or -1 when not in any
// epoch (Algorithm 3 consults this).
int current_epoch_id();

// Reorder window of the calling thread's current epoch; kMaxReorderWindow
// when not in an epoch. Used by the LibASL lock dispatch.
std::uint64_t current_epoch_window();

// Window currently chosen for a specific epoch id on this thread (testing /
// introspection).
std::uint64_t epoch_window(int epoch_id);

// Override the percentile / controller configuration for this thread's
// epochs (applies to epochs started afterwards; existing controllers are
// re-seeded). Primarily for experiments; the default is P99.
void set_epoch_controller_config(const WindowController::Config& config);

// Reset all epoch state on the calling thread (between experiment phases).
void reset_thread_epochs();

}  // namespace asl
