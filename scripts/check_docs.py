#!/usr/bin/env python3
"""Docs consistency check (CI: the "docs" step; satellite of DESIGN.md §6).

Fails (exit 1) when README.md or DESIGN.md:
  * links to an intra-repo file that does not exist,
  * links to a heading anchor that no heading in the target file produces,
  * names (in backticks) a kv_*/sim_kv_*/fig* scenario, bench target or
    registered scenario config that the sources do not define, or
  * references (in backticks, as `engine=<name>`) a storage engine the
    registry in src/db/engine.cpp does not register.

The valid-name sets are parsed straight from the sources — ASL_SCENARIO
registrations in bench/*.cpp, asl_add_figure/add_executable targets in
CMakeLists.txt, the scenario-config string literals in
src/server/scenarios.cpp, and the kEngineRegistry rows in
src/db/engine.cpp — so the check needs no build and cannot drift from the
registries it guards. Stdlib only; run from anywhere:

    python3 scripts/check_docs.py
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = ["README.md", "DESIGN.md"]

# Tokens that look like scenario/bench references. Deliberately narrow:
# kv_/sim_kv_/figNN prefixes only, full-token match, so file paths, class
# names (kv-get) and generic identifiers never trip the check.
SCENARIO_TOKEN = re.compile(r"(?:kv|sim_kv|fig\d+[a-z]*)_[a-z0-9_]+")

# Engine references use the `engine=<name>` convention in docs (matching the
# KvServiceConfig::engine field they describe); bare words like `hash` are
# far too generic to gate on.
ENGINE_TOKEN = re.compile(r"engine=([a-z0-9_]+)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->hyphens."""
    out = []
    for ch in heading.strip().lower():
        if ch.isalnum() or ch in " -_":
            out.append(ch)
    return "".join(out).replace(" ", "-")


def heading_slugs(path: pathlib.Path) -> set:
    slugs = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        m = re.match(r"^#+\s+(.*)$", line)
        if m:
            slugs.add(github_slug(m.group(1)))
    return slugs


def known_names() -> set:
    names = set()
    for bench in (ROOT / "bench").glob("*.cpp"):
        names |= set(
            re.findall(r"ASL_SCENARIO(?:_EXPLICIT)?\(\s*(\w+)", bench.read_text()))
    cmake = (ROOT / "CMakeLists.txt").read_text()
    names |= set(re.findall(r"asl_add_figure\((\w+)", cmake))
    names |= set(re.findall(r"add_executable\((\w+)", cmake))
    scenarios = (ROOT / "src/server/scenarios.cpp").read_text()
    names |= set(re.findall(r'"(kv_\w+)"', scenarios))
    return names


def engine_names() -> set:
    """Registered engines: the quoted names opening kEngineRegistry rows."""
    text = (ROOT / "src/db/engine.cpp").read_text()
    m = re.search(r"kEngineRegistry\[\]\s*=\s*\{(.*?)\n\};", text, re.S)
    block = m.group(1) if m else ""
    return set(re.findall(r'\{"(\w+)"', block))


def check_doc(doc: str, names: set, engines: set) -> list:
    errors = []
    path = ROOT / doc
    text = path.read_text(encoding="utf-8")

    # Intra-repo markdown links: [label](target) and [label](file#anchor).
    for m in re.finditer(r"\[[^\]]*\]\(([^)\s]+)\)", text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        target_path = (path.parent / file_part) if file_part else path
        if not target_path.exists():
            errors.append(f"{doc}: broken link target '{target}'")
            continue
        if anchor and anchor not in heading_slugs(target_path):
            errors.append(f"{doc}: dead anchor '{target}'")

    # Scenario-name and engine references in inline code spans.
    for m in re.finditer(r"`([^`\n]+)`", text):
        token = m.group(1)
        if SCENARIO_TOKEN.fullmatch(token) and token not in names:
            errors.append(
                f"{doc}: references unknown scenario/bench name '{token}'")
        for engine in ENGINE_TOKEN.findall(token):
            if engine not in engines:
                errors.append(
                    f"{doc}: references unregistered engine '{engine}' "
                    f"(registered: {', '.join(sorted(engines))})")
    return errors


def main() -> int:
    names = known_names()
    engines = engine_names()
    errors = []
    if not engines:
        errors.append("no engines parsed from src/db/engine.cpp "
                      "(kEngineRegistry moved or renamed?)")
    for doc in DOCS:
        if not (ROOT / doc).exists():
            errors.append(f"missing {doc}")
            continue
        errors.extend(check_doc(doc, names, engines))
    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        return 1
    print(f"check_docs: {len(DOCS)} docs OK against "
          f"{len(names)} registered names and {len(engines)} engines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
