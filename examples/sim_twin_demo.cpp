// Simulated-twin walkthrough: run the virtual-time twin of one open-loop KV
// scenario, print its measured and per-shard tables, then bisect for the
// scenario's SLO capacity with the latency-targeted probe.
//
// Everything here is virtual time, so the output is byte-identical on every
// run and host — the property the determinism tests pin down. Compare with
// examples/kv_server.cpp, which drives the *real* service the twin mirrors.
#include <cstdio>
#include <iostream>

#include "harness/capacity_probe.h"
#include "server/sim_kv_service.h"
#include "workload/open_loop.h"

int main() {
  using namespace asl;
  using namespace asl::server;

  // The twin of kv_zipf_bursty: zipfian keys, MMPP flash crowds.
  KvScenario sc = make_kv_scenario("kv_zipf_bursty");
  std::printf("twin of %s\n  shards=%u workers/shard=%u queue=%zu "
              "horizon=%llu ms (virtual)\n\n",
              sc.name.c_str(), sc.service.num_shards,
              sc.service.workers_per_shard, sc.service.queue_capacity,
              static_cast<unsigned long long>(sc.horizon / kNanosPerMilli));

  SimServiceReport report = run_sim_kv(sc);
  sim_kv_measured_table(report).print(std::cout);
  sim_kv_shard_table(report).print(std::cout);
  std::printf("\noffered=%llu completed=%llu drained at %llu ms virtual\n",
              static_cast<unsigned long long>(report.offered),
              static_cast<unsigned long long>(report.total_completed()),
              static_cast<unsigned long long>(report.drained_at /
                                              kNanosPerMilli));

  // How much traffic could this configuration absorb before the SLOs break?
  KvScenario probe_base = make_kv_scenario("kv_uniform_steady");
  probe_base.horizon = 10 * kNanosPerMilli;
  probe_base.service.queue_capacity = 128;
  const double nominal = nominal_rate_per_sec(probe_base.load);

  bench::CapacityProbeConfig cfg;
  cfg.start_rate = nominal;
  cfg.tolerance = 0.1;
  cfg.max_trials = 24;
  bench::CapacityResult r =
      bench::find_capacity(cfg, [&probe_base, nominal](double rate) {
        KvScenario trial = probe_base;
        scale_load_rates(trial.load, rate / nominal);
        return report_meets_slos(run_sim_kv(trial).service);
      });

  std::printf("\ncapacity probe (uniform-steady twin, p99 within SLO, "
              "zero rejections):\n");
  bench::capacity_table(r).print(std::cout);
  std::printf("max SLO-feasible rate: %.3g req/s (%.1fx the scenario's "
              "nominal %.3g req/s)\n",
              r.max_rate, r.max_rate / nominal, nominal);
  return 0;
}
