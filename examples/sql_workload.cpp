// SQL scenario: the SQLite benchmark of Section 4.2 on the real MiniSql
// engine — DEFERRED transactions mixing 1/3 INSERT, 1/3 simple SELECT and
// 1/3 complex SELECT per epoch, with an occasional full-table scan, under a
// millisecond-scale SLO.
#include <iostream>

#include "asl/libasl.h"
#include "db/minisql.h"
#include "harness/runner.h"
#include "platform/rng.h"

using namespace asl;

namespace {

constexpr int kTxnEpoch = 2;
constexpr Nanos kSlo = 4 * kNanosPerMilli;  // the paper's CDF SLO
constexpr std::int64_t kSeedRows = 2000;

}  // namespace

int main() {
  std::cout << "MiniSql workload: 1/3 insert, 1/3 simple select, 1/3 complex "
               "select; SLO "
            << kSlo / kNanosPerMilli << " ms\n";

  db::MiniSql db;
  db.create_table("items");
  for (std::int64_t i = 0; i < kSeedRows; ++i) {
    db.insert("items", {i, i % 100, "seed"});
  }

  std::atomic<std::int64_t> next_id{kSeedRows};
  std::atomic<std::uint64_t> busy{0}, scans{0};
  auto roles = m1_layout(4, 2);
  RunStats stats = run_fixed_duration(
      roles, 500 * kNanosPerMilli, [&](const WorkerCtx& ctx) -> WorkerBody {
        auto rng = std::make_shared<Rng>(ctx.index + 99);
        return [&, rng](WorkerCtx& c) {
          const Nanos t0 = now_ns();
          epoch_start(kTxnEpoch);
          db::MiniSql::Txn txn = db.begin();
          bool committed = false;
          if (c.ops % 1000 == 999) {
            // The occasional extremely long request.
            txn.full_scan("items");
            scans.fetch_add(1, std::memory_order_relaxed);
            committed = txn.commit();
          } else {
            switch (rng->below(3)) {
              case 0: {  // INSERT
                const std::int64_t id = next_id.fetch_add(1);
                if (txn.insert("items", {id, id % 100, "row"})) {
                  committed = txn.commit();
                } else {
                  busy.fetch_add(1, std::memory_order_relaxed);
                  txn.rollback();
                }
                break;
              }
              case 1:  // simple point select on the indexed column
                txn.select_point("items", rng->below(kSeedRows));
                committed = txn.commit();
                break;
              default:  // complex: index range + non-indexed filter
                txn.select_range("items",
                                 static_cast<std::int64_t>(rng->below(1000)),
                                 static_cast<std::int64_t>(rng->below(1000)) +
                                     1000,
                                 50);
                committed = txn.commit();
                break;
            }
          }
          epoch_end(kTxnEpoch, kSlo);
          c.record_latency(now_ns() - t0);
          c.ops += committed ? 1 : 0;
        };
      });

  std::cout << "committed txns: " << stats.total_ops
            << " (busy rejections: " << busy.load()
            << ", full scans: " << scans.load() << ")\n"
            << "throughput: "
            << static_cast<long>(stats.throughput_ops_per_sec()) << " txn/s\n"
            << "P99 (ms): big=" << stats.latency.p99_big() / 1e6
            << " little=" << stats.latency.p99_little() / 1e6 << "\n"
            << "table rows: " << db.table_rows("items") << "\n";
  return 0;
}
