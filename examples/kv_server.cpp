// KV server example — the open-loop service layer end to end.
//
// Builds the sharded KV front-end (src/server/): HashKv shards behind
// BlockingAslMutex locks and bounded request queues, a big/little worker
// pair per shard, and two request classes registered as named epochs with
// different SLOs. A Poisson open-loop generator offers traffic on its own
// schedule; the report shows offered vs achieved throughput, backpressure
// and the per-class SLO attainment, then the EpochRegistry snapshot shows
// what the runtime saw per request class.
#include <iostream>
#include <string>

#include "server/kv_service.h"
#include "workload/open_loop.h"

using namespace asl;
using namespace asl::server;

int main() {
  KvServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.workers_per_shard = 2;  // one big + one little worker per shard
  cfg.big_workers = 4;
  cfg.queue_capacity = 256;
  cfg.prefill_keys = 1 << 14;
  cfg.classes.push_back(RequestClass{"kv-get", 1 * kNanosPerMilli});
  cfg.classes.push_back(RequestClass{"kv-put", 4 * kNanosPerMilli});

  std::cout << "KV service: " << cfg.num_shards << " shards, "
            << cfg.num_shards * cfg.workers_per_shard
            << " workers, classes kv-get (SLO 1 ms) / kv-put (SLO 4 ms)\n";

  LoadSpec gets;
  gets.arrivals = workload::ArrivalProcess::poisson(12'000);
  gets.keys = workload::KeyDist::uniform(cfg.prefill_keys);
  gets.put_fraction = 0.0;
  gets.class_index = 0;
  gets.seed = 7;
  LoadSpec puts;
  puts.arrivals = workload::ArrivalProcess::poisson(4'000);
  puts.keys = workload::KeyDist::zipfian(cfg.prefill_keys);
  puts.put_fraction = 1.0;
  puts.class_index = 1;
  puts.seed = 8;

  KvService service(cfg);
  service.start();
  OpenLoopResult load =
      run_open_loop(service, {gets, puts}, 300 * kNanosPerMilli);
  service.stop();

  std::cout << "offered: " << load.offered << " requests ("
            << static_cast<long>(load.offered_rate_per_sec())
            << " ops/s), accepted " << load.accepted << ", rejected "
            << load.rejected << "\n";

  for (const ClassReport& c : service.report().classes) {
    std::cout << "class '" << c.name << "' (epoch " << c.epoch_id
              << ", SLO " << c.slo_ns / kNanosPerMicro
              << " us): completed=" << c.completed
              << " attainment=" << 100.0 * c.attainment() << "%"
              << " p99_us big=" << c.total.p99_big() / 1000.0
              << " little=" << c.total.p99_little() / 1000.0
              << " qwait_p99_us=" << c.queue_wait.p99() / 1000.0 << "\n";
  }
  std::cout << "store size: " << service.store_size() << "\n";

  // Runtime introspection: the workers exited at stop(), so completions
  // come from the registry's retired-completion folding.
  for (const EpochSnapshot& s : EpochRegistry::instance().snapshot()) {
    std::cout << "epoch '" << s.name << "' (id " << s.id
              << "): completions=" << s.completions << "\n";
  }
  return 0;
}
