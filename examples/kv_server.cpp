// KV-server scenario: the Kyoto-Cabinet-style workload of Section 4.2 on
// the real HashKv engine — 50% Put / 50% Get per request epoch, slot-level
// locks plus a method lock, annotated with a latency SLO.
//
// Demonstrates the "integrating LibASL only requires inserting 3 lines"
// claim: the engine itself (db/hashkv.*) has no LibASL-specific code; only
// this request loop adds epoch_start/epoch_end.
#include <iostream>
#include <string>

#include "asl/libasl.h"
#include "db/hashkv.h"
#include "harness/runner.h"
#include "platform/rng.h"

using namespace asl;

namespace {

constexpr Nanos kSlo = 2 * kNanosPerMilli;
constexpr std::uint64_t kKeySpace = 4096;

std::string key_of(std::uint64_t i) { return "user:" + std::to_string(i); }

}  // namespace

int main() {
  std::cout << "KV server (HashKv / Kyoto-style): 50% put, 50% get, SLO "
            << kSlo / kNanosPerMicro << " us\n";

  // Register the request class by name with its SLO as the per-epoch
  // default; the request loop then ends the epoch without repeating it.
  EpochOptions op_opts;
  op_opts.default_slo_ns = kSlo;
  const int kOpEpoch =
      EpochRegistry::instance().register_epoch("kv-op", op_opts);

  db::HashKv store(64);
  for (std::uint64_t i = 0; i < kKeySpace; ++i) {
    store.put(key_of(i), "initial");
  }

  auto roles = m1_layout(4, /*num_big=*/2);
  std::atomic<std::uint64_t> puts{0}, gets{0}, hits{0};
  RunStats stats = run_fixed_duration(
      roles, 500 * kNanosPerMilli, [&](const WorkerCtx& ctx) -> WorkerBody {
        auto rng = std::make_shared<Rng>(ctx.index + 17);
        const SpeedFactors speed = ctx.role.speed;
        return [&, rng, speed](WorkerCtx& c) {
          const std::uint64_t k = rng->below(kKeySpace);
          const Nanos t0 = now_ns();
          epoch_start(kOpEpoch);
          if (rng->chance(0.5)) {
            store.put(key_of(k), "value-" + std::to_string(c.ops));
            puts.fetch_add(1, std::memory_order_relaxed);
          } else {
            hits.fetch_add(store.get(key_of(k)).has_value() ? 1 : 0,
                           std::memory_order_relaxed);
            gets.fetch_add(1, std::memory_order_relaxed);
          }
          epoch_end(kOpEpoch);  // SLO comes from the registry default
          c.record_latency(now_ns() - t0);
          c.ops += 1;
          spin_nops(speed.scale_ncs(500));
        };
      });

  std::cout << "ops: " << stats.total_ops << " (puts=" << puts.load()
            << ", gets=" << gets.load() << ", hit-rate="
            << (gets.load() ? 100.0 * static_cast<double>(hits.load()) /
                                  static_cast<double>(gets.load())
                            : 0.0)
            << "%)\n"
            << "throughput: "
            << static_cast<long>(stats.throughput_ops_per_sec()) << " ops/s\n"
            << "P99 (us): big=" << stats.latency.p99_big() / 1000.0
            << " little=" << stats.latency.p99_little() / 1000.0 << "\n"
            << "store size: " << store.size() << "\n";

  // Runtime introspection: what the epoch runtime saw, per request class
  // (the workers exited, so completions come from the registry's retired
  // counts).
  for (const EpochSnapshot& s : EpochRegistry::instance().snapshot()) {
    std::cout << "epoch '" << s.name << "' (id " << s.id
              << "): completions=" << s.completions;
    if (s.threads > 0) {
      std::cout << " live_threads=" << s.threads
                << " window_mean_us=" << s.window_mean / 1000.0;
    }
    std::cout << "\n";
  }
  return 0;
}
