// Interposition demo: unmodified pthread code accelerated by linking
// libasl_pthread first (Section 3.3's weak-symbol replacement, the "no other
// modification is required" deployment).
//
// The "application" below uses plain pthread_mutex_t and knows nothing about
// LibASL; the three annotation lines (header + epoch_start/epoch_end) are
// the only integration.
#include <pthread.h>

#include <iostream>
#include <thread>
#include <vector>

#include "asl/interpose.h"  // + the one header
#include "platform/time.h"
#include "platform/topology.h"

namespace {

pthread_mutex_t g_mutex = PTHREAD_MUTEX_INITIALIZER;
std::uint64_t g_counter = 0;

// Unmodified latency-critical code.
void handle_request() {
  pthread_mutex_lock(&g_mutex);
  g_counter += 1;
  pthread_mutex_unlock(&g_mutex);
}

}  // namespace

int main() {
  std::cout << "interpose demo: plain pthread_mutex_lock, redirected to "
               "LibASL\n";

  const std::uint64_t redirects_before = asl_interpose_redirect_count();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      asl::ScopedCoreType scoped(t < 2 ? asl::CoreType::kBig
                                       : asl::CoreType::kLittle);
      for (int i = 0; i < 20000; ++i) {
        asl_epoch_start(5);                        // + epoch_start(id)
        handle_request();
        asl_epoch_end(5, 1000 * 1000);             // + epoch_end(id, SLO 1ms)
      }
    });
  }
  for (auto& t : threads) t.join();

  const std::uint64_t redirected =
      asl_interpose_redirect_count() - redirects_before;
  std::cout << "counter = " << g_counter << " (expected 80000)\n"
            << "pthread_mutex_lock calls redirected through LibASL: "
            << redirected << "\n";
  if (g_counter != 80000 || redirected < 80000) {
    std::cout << "FAILED\n";
    return 1;
  }
  std::cout << "OK: mutual exclusion preserved, redirect transparent\n";
  return 0;
}
