// Profiler demo: "for applications without clear SLOs, LibASL provides a
// profiling tool that generates a latency-throughput graph to help choose
// suitable SLOs" (Section 3.1). Sweeps the SLO over the Bench-1 simulation
// workload and prints the graph plus the recommended knee.
#include <iostream>

#include "asl/profiler.h"
#include "harness/experiment.h"
#include "sim/sim_runner.h"

using namespace asl;
using namespace asl::sim;

int main() {
  std::cout << "SLO profiler: sweeping 10..100 us over the Bench-1 workload\n\n";

  SloProfiler profiler;
  auto gen = bench1_workload();
  auto points = profiler.sweep(
      {10 * kMicro, 100 * kMicro, 10},
      [&](std::uint64_t slo) {
        SimConfig cfg = scale_durations(bench1_asl_config(slo), 0.4);
        SimResult r = run_sim(cfg, gen);
        SloPoint p;
        p.throughput = r.cs_throughput();
        p.p99_big = r.latency.p99_big();
        p.p99_little = r.latency.p99_little();
        p.p99_overall = r.latency.p99_overall();
        return p;
      });

  SloProfiler::print_graph(points, std::cout);

  const SloPoint* pick = SloProfiler::recommend(points, 0.95);
  if (pick != nullptr) {
    std::cout << "\nrecommended SLO: " << pick->slo_ns / 1000
              << " us (smallest within 5% of peak throughput)\n";
  }
  return 0;
}
