// Quickstart: the Figure 6 usage model in ~60 lines.
//
// A "request handler" epoch with a 1 ms latency SLO runs on a mix of big and
// little workers (emulated on a symmetric host by declaring core types).
// LibASL keeps little-core tail latency near the SLO while letting big cores
// reorder ahead for throughput.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "asl/libasl.h"
#include "harness/runner.h"
#include "workload/cs_workload.h"

using namespace asl;

namespace {

AslMutex<McsLock> g_lock;
SharedRegion g_shared(16);

constexpr int kRequestEpoch = 5;            // epoch id (Figure 6 uses 5)
constexpr Nanos kSlo = 1 * kNanosPerMilli;  // 1 ms SLO

// The unmodified latency-critical code: lock, touch shared state, unlock.
void handle_request(const SpeedFactors& speed) {
  g_lock.lock();
  g_shared.rmw(0, 4, speed.scale_cs(8));
  g_lock.unlock();
  spin_nops(speed.scale_ncs(2000));  // non-critical work
}

}  // namespace

int main() {
  std::cout << "LibASL quickstart: 2 big + 2 little workers, SLO "
            << kSlo / kNanosPerMicro << " us\n";

  auto roles = m1_layout(4, /*num_big=*/2);
  RunStats stats = run_fixed_duration(
      roles, 500 * kNanosPerMilli, [](const WorkerCtx& ctx) -> WorkerBody {
        const SpeedFactors speed = ctx.role.speed;
        return [speed](WorkerCtx& c) {
          const Nanos t0 = now_ns();
          epoch_start(kRequestEpoch);          // + epoch_start(id);
          handle_request(speed);
          epoch_end(kRequestEpoch, kSlo);      // + epoch_end(id, latencySLO);
          c.record_latency(now_ns() - t0);
          c.ops += 1;
        };
      });

  std::cout << "throughput: " << static_cast<long>(stats.throughput_ops_per_sec())
            << " requests/s\n"
            << "P99 latency (us): big=" << stats.latency.p99_big() / 1000.0
            << " little=" << stats.latency.p99_little() / 1000.0
            << " overall=" << stats.latency.p99_overall() / 1000.0 << "\n";
  std::cout << "(on a real AMP no core-type declaration is needed: LibASL "
               "reads the core id)\n";
  return 0;
}
