// Allocation-count regression tests (DESIGN.md §9): the unit-level half of
// the zero-allocation hot path, next to kv_alloc_audit's whole-service
// gate. This binary links asl_alloc, so the global operator new/delete are
// the counting hooks; the single-threaded suites pin *thread-local* deltas
// (exact, no quiescence needed), the service suite pins the process-wide
// delta after draining. RUN_SERIAL in CMake: the process-wide counters make
// a concurrently running sibling test look like a regression.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <new>
#include <string_view>
#include <thread>

#include "asl/alloc_count.h"
#include "db/mvkv.h"
#include "platform/rng.h"
#include "server/kv_service.h"
#include "server/request_queue.h"
#include "server/telemetry.h"

namespace asl {
namespace {

using server::BoundedQueue;
using server::KvService;
using server::KvServiceConfig;
using server::OpType;
using server::Request;
using server::ValueArena;

// Keeps a deliberate allocation observable (allocation elision could
// otherwise fold the probe new/delete pair away entirely).
char* volatile g_probe_sink = nullptr;

TEST(AllocCounting, HooksAreLinkedAndObserveNewDelete) {
  ASSERT_TRUE(alloc_counting_linked());
  const std::uint64_t allocs = thread_alloc_count();
  const std::uint64_t frees = thread_free_count();
  const AllocCounts before = alloc_counts();
  g_probe_sink = new char[128];
  EXPECT_EQ(thread_alloc_count(), allocs + 1);
  delete[] g_probe_sink;
  EXPECT_EQ(thread_free_count(), frees + 1);
  const AllocCounts after = alloc_counts();
  EXPECT_GE(after.allocs, before.allocs + 1);
  EXPECT_GE(after.bytes, before.bytes + 128);
}

TEST(AllocCounting, AlignedAndNothrowFormsCount) {
  const std::uint64_t before = thread_alloc_count();
  void* aligned = ::operator new(256, std::align_val_t{64});
  void* nothrow = ::operator new(64, std::nothrow);
  EXPECT_EQ(thread_alloc_count(), before + 2);
  ::operator delete(aligned, std::align_val_t{64});
  ::operator delete(nothrow);
}

// Satellite regression: pop()/try_pop() must reset the ring slot after
// moving out of it, or the moved-from element keeps whatever it still owns
// alive until the slot is overwritten. The payload's "move" is a copy
// (copy-only type), so a stale slot is visible as an extra shared_ptr
// reference — deterministic, no allocator involved.
struct SharedToken {
  std::shared_ptr<int> token;
};

TEST(BoundedQueueAlloc, PopResetsTheRingSlot) {
  BoundedQueue<SharedToken> queue(4);
  auto token = std::make_shared<int>(7);
  ASSERT_TRUE(queue.try_push(SharedToken{token}));
  SharedToken out;
  ASSERT_TRUE(queue.pop(out));
  // Holders: `token` here and `out`. A stale ring slot would be a third.
  EXPECT_EQ(token.use_count(), 2);

  ASSERT_TRUE(queue.try_push(SharedToken{token}));
  SharedToken out2;
  ASSERT_TRUE(queue.try_pop(out2));
  EXPECT_EQ(token.use_count(), 3);  // token, out, out2 — and no slot copy
}

TEST(BoundedQueueAlloc, WarmedPushPopCycleIsHeapFree) {
  BoundedQueue<Request> queue(64);  // ring preallocated at construction
  const std::uint64_t before = thread_alloc_count();
  Request out;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    for (std::uint64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(
          queue.try_push(Request{OpType::kPut, i, 0, Nanos{0}}));
    }
    for (std::uint64_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(queue.try_pop(out));
    }
  }
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

TEST(ValueArena, FormatsValuesAndRecyclesSlots) {
  ValueArena arena;
  const std::string_view v = arena.format_value(42);
  EXPECT_EQ(v, "v:42");
  const std::string_view big = arena.format_value(18446744073709551615ull);
  EXPECT_EQ(big, "v:18446744073709551615");
  const char* const first_round_ptr = v.data();
  arena.release();
  // After release the cursor is back at the fixed buffer's start: the next
  // format reuses the first slot's storage.
  EXPECT_EQ(arena.format_value(7).data(), first_round_ptr);
  arena.release();
  // Sizing claim: a full batch of kMaxBatch values fits; one more would
  // spill past the fixed buffer and the null upstream throws instead of
  // silently touching the heap.
  for (std::size_t i = 0; i < server::kMaxBatch; ++i) {
    EXPECT_FALSE(arena.format_value(i).empty());
  }
  EXPECT_THROW(arena.format_value(0), std::bad_alloc);
  arena.release();
}

TEST(ValueArena, FormatReleaseCyclesAreHeapFree) {
  ValueArena arena;
  const std::uint64_t before = thread_alloc_count();
  for (int round = 0; round < 1000; ++round) {
    for (std::size_t i = 0; i < server::kMaxBatch; ++i) {
      arena.format_value(i * 1000003ull + static_cast<std::uint64_t>(round));
    }
    arena.release();
  }
  EXPECT_EQ(thread_alloc_count() - before, 0u);
}

// MvKv's pooled copy-on-write path: after enough puts over a bounded
// keyspace the retire -> sweep -> freelist loop reaches equilibrium, and a
// further put cycle touches the heap zero times and grows the pool by zero
// nodes. Values stay within SSO capacity, like the service's "v:<key>".
TEST(AllocSteadyState, MvKvWarmedPutsReuseThePool) {
  db::MvKv kv;
  Rng rng(11);
  constexpr std::uint64_t kKeys = 256;
  // Warm until a whole window of puts allocates nothing — the pool's
  // high-water mark is hard-bounded (tree size + reclaimer backlog cap),
  // so the loop converges; single-threaded it usually takes one window.
  bool warmed = false;
  for (int window = 0; window < 10 && !warmed; ++window) {
    const std::uint64_t allocs = thread_alloc_count();
    for (std::uint64_t i = 0; i < 10000; ++i) {
      kv.put(rng.below(kKeys), "v:warm");
    }
    warmed = thread_alloc_count() == allocs;
  }
  ASSERT_TRUE(warmed);
  const std::size_t total_before = kv.pool_total();
  EXPECT_GT(total_before, 0u);
  EXPECT_GT(kv.pool_free(), 0u);
  const std::uint64_t allocs_before = thread_alloc_count();
  for (std::uint64_t i = 0; i < 5000; ++i) {
    kv.put(rng.below(kKeys), "v:steady");
    if (i % 8 == 0) {
      auto hit = kv.get(rng.below(kKeys));  // SSO copy, no heap
      (void)hit;
    }
  }
  EXPECT_EQ(thread_alloc_count() - allocs_before, 0u);
  EXPECT_EQ(kv.pool_total(), total_before);
}

// Shared body for the service steady-state audits: worker threads, shard
// locks, epoch feedback, arena-formatted puts — after a warmup window and
// a drain, another traffic window must leave the *process-wide* allocation
// count exactly where it was. Mirrors bench/kv_alloc_audit.cpp at unit
// scale (hash engine; the audit covers mvcc under threads too). Returns
// the service so callers can assert on post-stop observables.
void expect_service_window_heap_free(const KvServiceConfig& cfg,
                                     KvService& service) {
  service.start();

  Rng rng(3);
  auto pump = [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const OpType op = (i % 4 == 0) ? OpType::kPut : OpType::kGet;
      while (!service.try_submit(op, rng.below(256), 0)) {
        std::this_thread::yield();
      }
    }
  };
  // Allocation-free drain detection: poll the queue depths (report() would
  // allocate inside the measured window), then let in-flight batches land.
  auto quiesce = [&] {
    for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
      while (service.queue_depth(s) != 0) std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };

  // Warm until one whole window is allocation-free (see the MvKv test for
  // why this converges), then pin the steady window at exactly zero.
  bool warmed = false;
  for (int window = 0; window < 10 && !warmed; ++window) {
    const std::uint64_t allocs = alloc_count();
    pump(5000);
    quiesce();
    warmed = alloc_count() == allocs;
  }
  ASSERT_TRUE(warmed);
  const std::uint64_t before = alloc_count();
  pump(5000);
  quiesce();
  EXPECT_EQ(alloc_count() - before, 0u);
  service.stop();
  const server::ServiceReport report = service.report();
  EXPECT_EQ(report.total_completed(), report.total_accepted());
}

KvServiceConfig alloc_steady_config() {
  KvServiceConfig cfg;
  cfg.engine = "hash";
  cfg.num_shards = 2;
  cfg.workers_per_shard = 1;
  cfg.queue_capacity = 64;
  cfg.batch_k = 4;
  cfg.prefill_keys = 256;
  cfg.classes.push_back(
      server::RequestClass{"alloc-test", 2 * kNanosPerMilli});
  return cfg;
}

TEST(AllocSteadyState, ServiceRequestWindowIsHeapFree) {
  const KvServiceConfig cfg = alloc_steady_config();
  KvService service(cfg);
  expect_service_window_heap_free(cfg, service);
}

// The DESIGN.md §11 wait-free recording rule at unit scale: with the full
// telemetry pipeline live — per-worker metric slots recorded on every
// request, the sampler thread folding them into the time-series log, and
// 1-in-N span capture into the per-thread rings — the steady traffic
// window must still allocate exactly zero bytes process-wide. Everything
// telemetry touches was preallocated at service start.
TEST(AllocSteadyState, ServiceWindowStaysHeapFreeWithTelemetryOn) {
  KvServiceConfig cfg = alloc_steady_config();
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_period_ns = 1 * kNanosPerMilli;
  cfg.telemetry.span_sample_every = 64;
  cfg.telemetry.span_ring_capacity = 512;
  KvService service(cfg);
  expect_service_window_heap_free(cfg, service);
  // The sampler actually ran during the audit — the zero above covered a
  // live pipeline, not an idle one.
  ASSERT_NE(service.telemetry(), nullptr);
  EXPECT_GT(service.telemetry()->ticks(), 0u);
  EXPECT_FALSE(service.telemetry()->log().empty());
}

}  // namespace
}  // namespace asl
