// Determinism suite: a (config, seed) pair must define one result,
// byte-for-byte. Two anchors:
//  * the discrete-event simulator: two runs of the same seeded config
//    produce byte-identical CSV tables (counts, percentiles, CDF);
//  * the open-loop scenario family: each scenario's offered-load digest
//    (arrival counts, op mix, key checksums per interval) is byte-identical
//    across generations — the wall-clock replay may jitter, the schedule
//    it replays may not.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "db/engine.h"
#include "harness/experiment.h"
#include "server/scenarios.h"
#include "server/sim_kv_service.h"
#include "sim/db_model.h"
#include "sim/sim_runner.h"
#include "stats/table.h"
#include "workload/arrival.h"
#include "workload/open_loop.h"

namespace asl {
namespace {

// Renders everything a figure bench would print for one sim run.
std::string sim_csv(const sim::SimConfig& cfg, const sim::EpochGen& gen) {
  sim::SimResult r = sim::run_sim(cfg, gen);
  Table table({"cs_total", "cs_big", "cs_little", "epochs", "p50", "p99_big",
               "p99_little", "p99_overall", "max"});
  table.add_row({std::to_string(r.cs_total), std::to_string(r.cs_big),
                 std::to_string(r.cs_little), std::to_string(r.epochs),
                 std::to_string(r.latency.overall().p50()),
                 std::to_string(r.latency.p99_big()),
                 std::to_string(r.latency.p99_little()),
                 std::to_string(r.latency.p99_overall()),
                 std::to_string(r.latency.overall().max())});
  Table cdf({"value", "cumulative"});
  for (const Histogram::CdfPoint& p : r.latency.overall().cdf()) {
    cdf.add_row({std::to_string(p.value), Table::fmt(p.cumulative, 6)});
  }
  std::ostringstream out;
  table.print_csv(out);
  cdf.print_csv(out);
  return out.str();
}

TEST(Determinism, SimEngineCsvIsByteIdenticalAcrossRuns) {
  sim::SimConfig cfg =
      sim::scale_durations(sim::bench1_asl_config(50 * sim::kMicro), 0.2);
  const sim::EpochGen gen = sim::bench1_workload();
  EXPECT_EQ(sim_csv(cfg, gen), sim_csv(cfg, gen));

  // The seed is load-bearing: on a workload that draws per-op randomness
  // (Bench-1 is a fixed script), a different seed must change the run —
  // otherwise byte-identity above would be vacuous.
  const sim::DbWorkload db = sim::make_db_workload(sim::DbKind::kKyoto);
  sim::SimConfig db_cfg = sim::scale_durations(
      sim::db_asl_config(db, 100 * sim::kMicro), 0.1);
  sim::SimConfig db_reseeded = db_cfg;
  db_reseeded.seed = db_cfg.seed + 1;
  EXPECT_EQ(sim_csv(db_cfg, db.gen), sim_csv(db_cfg, db.gen));
  EXPECT_NE(sim_csv(db_cfg, db.gen), sim_csv(db_reseeded, db.gen));
}

TEST(Determinism, SimEngineDeterministicAcrossLockKinds) {
  for (const sim::LockKind kind :
       {sim::LockKind::kMcs, sim::LockKind::kTas, sim::LockKind::kShflPb}) {
    sim::SimConfig cfg =
        sim::scale_durations(sim::bench1_config(kind), 0.2);
    const sim::EpochGen gen = sim::bench1_workload();
    EXPECT_EQ(sim_csv(cfg, gen), sim_csv(cfg, gen))
        << "lock kind " << sim::to_string(kind);
  }
}

TEST(Determinism, OpenLoopScenarioTracesAreByteIdentical) {
  for (const std::string& name : server::kv_scenario_names()) {
    // Two independently built scenarios (fresh ArrivalProcess and KeyDist
    // state each time) must offer the same schedule.
    server::KvScenario a = server::make_kv_scenario(name);
    server::KvScenario b = server::make_kv_scenario(name);
    std::ostringstream csv_a, csv_b;
    server::offered_trace_table(a.load, a.horizon).print_csv(csv_a);
    server::offered_trace_table(b.load, b.horizon).print_csv(csv_b);
    EXPECT_EQ(csv_a.str(), csv_b.str()) << name;
    EXPECT_GT(csv_a.str().size(), 0u) << name;

    // And the full trace, not just the digest.
    for (std::size_t i = 0; i < a.load.size(); ++i) {
      const auto ta = server::generate_trace(a.load[i], a.horizon);
      const auto tb = server::generate_trace(b.load[i], b.horizon);
      ASSERT_EQ(ta.size(), tb.size()) << name;
      ASSERT_GT(ta.size(), 0u) << name;
      for (std::size_t j = 0; j < ta.size(); ++j) {
        ASSERT_EQ(ta[j].at, tb[j].at) << name;
        ASSERT_EQ(ta[j].key, tb[j].key) << name;
        ASSERT_EQ(ta[j].is_put, tb[j].is_put) << name;
      }
    }
  }
}

// Everything a twin scenario emits, as one CSV blob (the same two tables
// the sim_kv_* benches write).
std::string twin_csv(const server::KvScenario& sc,
                     const server::SimTwinConfig& twin = {}) {
  const server::SimServiceReport report = server::run_sim_kv(sc, twin);
  std::ostringstream out;
  out << "# scenario=" << sc.name << " engine=" << sc.service.engine
      << " table=sim_kv_measured\n";
  server::sim_kv_measured_table(report).print_csv(out);
  out << "# scenario=" << sc.name << " engine=" << sc.service.engine
      << " table=sim_kv_shards\n";
  server::sim_kv_shard_table(report).print_csv(out);
  return out.str();
}

TEST(Determinism, SimTwinMeasuredCsvIsByteIdenticalAcrossRuns) {
  // The acceptance bar of the twin (DESIGN.md §5): every scenario's
  // *measured* table — not just the offered digest — is byte-identical
  // across two consecutive runs. This is what lets queueing shapes be
  // asserted instead of accounted.
  for (const std::string& name : server::kv_scenario_names()) {
    const server::KvScenario a = server::make_kv_scenario(name);
    const server::KvScenario b = server::make_kv_scenario(name);
    const std::string csv_a = twin_csv(a);
    EXPECT_EQ(csv_a, twin_csv(b)) << name;
    EXPECT_GT(csv_a.size(), 0u) << name;
  }
}

TEST(Determinism, EngineCostClassesAreLoadBearing) {
  // Same traffic, different engine => different virtual-time bytes (the
  // measured table itself, not the labeled header): if the per-op
  // CostProfile resolution ever silently fell back to one flat cost, the
  // per-engine goldens above would all pin the same table and the engine
  // sweep's contrasts would be vacuous.
  const auto measured = [](const char* engine) {
    std::ostringstream out;
    server::sim_kv_measured_table(
        server::run_sim_kv(
            server::make_kv_scenario("kv_uniform_steady", engine)))
        .print_csv(out);
    return out.str();
  };
  const std::string hash = measured("hash");
  const std::string lsm = measured("lsm");
  const std::string btree = measured("btree");
  EXPECT_NE(hash, lsm);
  EXPECT_NE(hash, btree);
  EXPECT_NE(lsm, btree);
}

TEST(Determinism, SimTwinSeedsAreLoadBearing) {
  // Reseeding the *load* must change the measured bytes (otherwise the
  // byte-identity above would be vacuous); reseeding the twin's lock model
  // only perturbs tie-breaking, so it must still produce a valid run with
  // identical admission accounting under an uncontended scenario.
  server::KvScenario base = server::make_kv_scenario("kv_uniform_steady");
  server::KvScenario reseeded = server::make_kv_scenario("kv_uniform_steady");
  reseeded.load[0].seed += 1;
  EXPECT_NE(twin_csv(base), twin_csv(reseeded));

  server::SimTwinConfig twin;
  twin.seed += 1;
  const server::SimServiceReport a = server::run_sim_kv(base);
  const server::SimServiceReport b = server::run_sim_kv(base, twin);
  EXPECT_EQ(a.total_accepted(), b.total_accepted());
  EXPECT_EQ(a.total_completed(), b.total_completed());
}

// The twin's telemetry time series as one CSV blob (what the
// sim_kv_telemetry bench writes).
std::string twin_telemetry_csv(const server::KvScenario& sc) {
  const server::SimServiceReport report = server::run_sim_kv(sc);
  std::ostringstream out;
  server::sim_kv_telemetry_table(report).print_csv(out);
  return out.str();
}

TEST(Determinism, SimTwinTelemetrySeriesIsByteIdentical) {
  // DESIGN.md §11: the twin samples telemetry in virtual time, so the
  // time-series table is an observable like any other — two runs of the
  // same scenario must render byte-identical series CSV.
  const server::KvScenario a = server::make_kv_scenario("kv_telemetry");
  const server::KvScenario b = server::make_kv_scenario("kv_telemetry");
  ASSERT_TRUE(a.service.telemetry.enabled);
  const std::string csv_a = twin_telemetry_csv(a);
  EXPECT_EQ(csv_a, twin_telemetry_csv(b));
  EXPECT_GT(csv_a.size(), 0u);
  // Long-form schema, not an accidental empty table.
  EXPECT_EQ(csv_a.rfind("series,t_ns,value\n", 0), 0u);
}

TEST(Determinism, TelemetryDoesNotPerturbTheTwin) {
  // The perturbation bound's exact analogue in virtual time: sampling is
  // an observer, so switching telemetry off must not move a single byte
  // of the measured table (same admissions, completions, percentiles).
  server::KvScenario on = server::make_kv_scenario("kv_telemetry");
  server::KvScenario off = server::make_kv_scenario("kv_telemetry");
  off.service.telemetry.enabled = false;
  const server::SimServiceReport r_on = server::run_sim_kv(on);
  const server::SimServiceReport r_off = server::run_sim_kv(off);
  std::ostringstream csv_on, csv_off;
  server::sim_kv_measured_table(r_on).print_csv(csv_on);
  server::sim_kv_measured_table(r_off).print_csv(csv_off);
  EXPECT_EQ(csv_on.str(), csv_off.str());
  EXPECT_FALSE(r_on.telemetry.empty());
  EXPECT_TRUE(r_off.telemetry.empty());
}

TEST(Determinism, SimTwinTelemetryGoldenMatchesCheckedInCsv) {
  // Pins the twin's telemetry series byte-for-byte against tests/golden/,
  // like the measured-table goldens above: a reordered sampling tick, a
  // renamed series, or a drifted fold shows up here first. Regenerate
  // after an intentional schema change with:
  //   ASL_WRITE_GOLDEN=1 ./determinism_test
  //     --gtest_filter='*SimTwinTelemetryGolden*'
  const std::string path =
      std::string(ASL_GOLDEN_DIR) + "/sim_kv_telemetry.csv";
  const std::string csv =
      twin_telemetry_csv(server::make_kv_scenario("kv_telemetry"));

  if (std::getenv("ASL_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << csv;
    GTEST_SKIP() << "golden regenerated";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " (regenerate with ASL_WRITE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), csv)
      << "twin telemetry series drifted from the checked-in golden; if the "
         "schema change is intentional, regenerate with ASL_WRITE_GOLDEN=1";
}

TEST(Determinism, SimTwinGoldenTraceMatchesCheckedInCsv) {
  // Byte-compare twin scenarios against tests/golden/: an accidental
  // determinism break (iteration-order change, float formatting, an RNG
  // draw reordered) fails loudly here, not silently downstream. Goldens:
  // the steady scenario once per registered engine — each engine's per-op
  // CostProfile produces distinct virtual-time tables, so all three cost
  // models are pinned byte-for-byte (sim_kv_<engine>_steady.csv) — and the
  // overloaded batch+shed scenario, pinning the batch-drain and
  // admission-policy paths. To regenerate after an *intentional* model
  // change:
  //   ASL_WRITE_GOLDEN=1 ./determinism_test
  //     --gtest_filter='*SimTwinGoldenTrace*'
  // The batch+shed golden runs the scenario at the shared overload profile
  // (scenarios.h make_overloaded_kv_scenario — the one the TwinShapes
  // tests assert on) at 8x nominal: at the nominal rate queues never
  // exceed depth 1, so batches never form and the watermark is never
  // reached — the overloaded variant is what actually pins the batch drain
  // and the shed accounting byte-for-byte.
  struct GoldenCase {
    std::string file;
    server::KvScenario scenario;
  };
  std::vector<GoldenCase> cases;
  for (const std::string& engine : db::kv_engine_names()) {
    cases.push_back(
        {"sim_kv_" + engine + "_steady.csv",
         server::make_kv_scenario("kv_uniform_steady", engine)});
  }
  cases.push_back({"sim_kv_batch_shed_overload.csv",
                   server::make_overloaded_kv_scenario("kv_batch_shed", 8.0)});

  bool regenerated = false;
  for (const GoldenCase& gc : cases) {
    const std::string path = std::string(ASL_GOLDEN_DIR) + "/" + gc.file;
    const std::string csv = twin_csv(gc.scenario);

    if (std::getenv("ASL_WRITE_GOLDEN") != nullptr) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << csv;
      regenerated = true;
      continue;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with ASL_WRITE_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden.str(), csv)
        << gc.file
        << ": twin output drifted from the checked-in golden; if the model "
           "change is intentional, regenerate with ASL_WRITE_GOLDEN=1";
  }
  if (regenerated) GTEST_SKIP() << "goldens regenerated";
}

TEST(Determinism, ArrivalRateIsUnbiasedAtNanosecondGaps) {
  // Regression for the mean-truncation bug (workload/arrival.h): next_gap
  // used to floor the mean inter-arrival to whole ns *before* the
  // exponential draw, so a 600M/s process (1.67 ns mean) drew from a 1 ns
  // mean and offered ~1.67x the configured rate. The mean now stays
  // fractional; only the drawn gap is floored at 1 ns, which keeps the
  // offered rate within 1% of configured even at nanosecond-scale means.
  const double kRates[] = {6e8, 1e6};
  for (const double rate : kRates) {
    workload::ArrivalProcess process = workload::ArrivalProcess::poisson(rate);
    Rng rng(123);
    const std::uint64_t kDraws = 2000000;
    std::uint64_t total_ns = 0;
    for (std::uint64_t i = 0; i < kDraws; ++i) {
      total_ns += process.next_gap(rng);
    }
    const double offered = static_cast<double>(kDraws) * 1e9 /
                           static_cast<double>(total_ns);
    EXPECT_NEAR(offered / rate, 1.0, 0.01) << "configured rate " << rate;
  }
}

TEST(Determinism, DistinctSeedsOfferDistinctSchedules) {
  server::KvScenario sc = server::make_kv_scenario("kv_uniform_steady");
  server::LoadSpec reseeded = sc.load[0];
  reseeded.seed += 1;
  const auto a = server::generate_trace(sc.load[0], sc.horizon);
  const auto b = server::generate_trace(reseeded, sc.horizon);
  ASSERT_GT(a.size(), 0u);
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].at != b[i].at || a[i].key != b[i].key;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace asl
