// LibASL core tests: AIMD window controller properties (including a
// percentile parameter sweep), epoch bookkeeping and nesting, Algorithm 3
// dispatch, profiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "asl/epoch.h"
#include "asl/libasl.h"
#include "asl/profiler.h"
#include "asl/window_controller.h"
#include "platform/topology.h"

namespace asl {
namespace {

TEST(WindowController, GrowsLinearlyWhileMeetingSlo) {
  WindowController::Config cfg;
  cfg.initial_window = 1000;
  cfg.initial_unit = 100;
  WindowController ctrl(cfg);
  const std::uint64_t w0 = ctrl.window();
  ctrl.on_epoch_end(/*latency=*/10, /*slo=*/100);
  EXPECT_EQ(ctrl.window(), w0 + 100);
  ctrl.on_epoch_end(10, 100);
  EXPECT_EQ(ctrl.window(), w0 + 200);
}

TEST(WindowController, HalvesOnViolation) {
  WindowController::Config cfg;
  cfg.initial_window = 4096;
  WindowController ctrl(cfg);
  ctrl.on_epoch_end(/*latency=*/200, /*slo=*/100);
  EXPECT_EQ(ctrl.window(), 2048u);
  ctrl.on_epoch_end(200, 100);
  EXPECT_EQ(ctrl.window(), 1024u);
}

TEST(WindowController, UnitRederivedFromReducedWindow) {
  // Algorithm 2 line 26: unit = window * (100 - PCT) / 100 after reduction.
  WindowController::Config cfg;
  cfg.initial_window = 100'000;
  cfg.percentile = 99;
  WindowController ctrl(cfg);
  ctrl.on_epoch_end(200, 100);  // violation: window 50'000
  EXPECT_EQ(ctrl.window(), 50'000u);
  EXPECT_EQ(ctrl.unit(), 50'000u * 1 / 100);
}

TEST(WindowController, WindowIsBoundedByMax) {
  WindowController::Config cfg;
  cfg.initial_window = 90;
  cfg.initial_unit = 50;
  cfg.max_window = 100;
  WindowController ctrl(cfg);
  for (int i = 0; i < 10; ++i) ctrl.on_epoch_end(0, 100);
  EXPECT_EQ(ctrl.window(), 100u);
}

TEST(WindowController, UnitNeverBelowMin) {
  WindowController::Config cfg;
  cfg.initial_window = 64;
  cfg.min_window = 16;
  cfg.min_unit = 16;
  WindowController ctrl(cfg);
  for (int i = 0; i < 20; ++i) ctrl.on_epoch_end(1000, 1);  // violations
  EXPECT_EQ(ctrl.window(), 16u);
  EXPECT_GE(ctrl.unit(), 16u);
  // Growth must still be possible afterwards.
  ctrl.on_epoch_end(0, 1000);
  EXPECT_GE(ctrl.window(), 32u);
}

TEST(WindowController, ImpossibleSloDrivesWindowToFloor) {
  // SLO 0 can never be met -> FIFO fallback: the window pins at min_window
  // (a few ns of standby is indistinguishable from an immediate enqueue),
  // the LibASL-0 case. The floor means repeated multiplicative decrease can
  // never produce window 0, from which additive growth could only restart
  // via min_unit.
  WindowController ctrl;
  for (int i = 0; i < 64; ++i) ctrl.on_epoch_end(100, 0);
  EXPECT_EQ(ctrl.window(), WindowController::Config{}.min_window);
  EXPECT_GT(ctrl.window(), 0u);
}

TEST(WindowController, ResetRestoresInitialState) {
  WindowController::Config cfg;
  cfg.initial_window = 5000;
  cfg.initial_unit = 500;
  WindowController ctrl(cfg);
  ctrl.on_epoch_end(1, 100);
  ctrl.on_epoch_end(1000, 1);
  ctrl.reset();
  EXPECT_EQ(ctrl.window(), 5000u);
  EXPECT_EQ(ctrl.unit(), 500u);
}

// Percentile-targeting property (paper footnote 4): with unit =
// window*(100-PCT)/100, the steady-state fraction of epochs whose window is
// "large" (just recovered to the violating size) is PCT/100. We verify the
// recovery-step count: after a violation at window W, it takes
// 100/(100-PCT) growth steps to return to W.
class WindowPercentile : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WindowPercentile, RecoveryStepsMatchFormula) {
  const std::uint32_t pct = GetParam();
  WindowController::Config cfg;
  cfg.initial_window = 1 << 20;
  cfg.percentile = pct;
  cfg.min_unit = 1;
  WindowController ctrl(cfg);
  const std::uint64_t before = ctrl.window();
  ctrl.on_epoch_end(1, 0);  // force one violation: window halves
  const std::uint64_t reduced = ctrl.window();
  EXPECT_EQ(reduced, before / 2);
  int steps = 0;
  while (ctrl.window() < before && steps < 10000) {
    ctrl.on_epoch_end(0, 1'000'000);  // meets SLO: grow
    ++steps;
  }
  // Expected: reduced/unit = (W/2) / ((W/2)*(100-pct)/100) = 100/(100-pct),
  // within rounding.
  const int expected = static_cast<int>(100 / (100 - pct));
  EXPECT_NEAR(steps, expected, expected / 10 + 2) << "PCT=" << pct;
}

INSTANTIATE_TEST_SUITE_P(Percentiles, WindowPercentile,
                         ::testing::Values(50u, 90u, 95u, 99u));

TEST(Epoch, StartEndRoundTrip) {
  reset_thread_epochs();
  EXPECT_EQ(current_epoch_id(), -1);
  EXPECT_EQ(epoch_start(5), 0);
  EXPECT_EQ(current_epoch_id(), 5);
  EXPECT_EQ(epoch_end(5, 1000), 0);
  EXPECT_EQ(current_epoch_id(), -1);
}

TEST(Epoch, OutOfRangeIdsRejected) {
  reset_thread_epochs();
  EXPECT_EQ(epoch_start(-1), -1);
  EXPECT_EQ(epoch_start(kMaxEpochs), -1);
  EXPECT_EQ(epoch_end(-1, 1), -1);
  EXPECT_EQ(epoch_end(kMaxEpochs, 1), -1);
}

TEST(Epoch, NestedEpochsRestoreOuter) {
  reset_thread_epochs();
  epoch_start(1);
  epoch_start(2);
  EXPECT_EQ(current_epoch_id(), 2);
  epoch_end(2, 1000);
  EXPECT_EQ(current_epoch_id(), 1);  // outer restored (Algorithm 2 line 32)
  epoch_end(1, 1000);
  EXPECT_EQ(current_epoch_id(), -1);
}

TEST(Epoch, DeepNesting) {
  reset_thread_epochs();
  for (int i = 0; i < 8; ++i) epoch_start(i);
  for (int i = 7; i >= 0; --i) {
    EXPECT_EQ(current_epoch_id(), i);
    epoch_end(i, 1000);
  }
  EXPECT_EQ(current_epoch_id(), -1);
}

TEST(Epoch, NoEpochMeansMaxWindow) {
  reset_thread_epochs();
  EXPECT_EQ(current_epoch_window(), kMaxReorderWindow);
}

TEST(Epoch, LittleCoreViolationShrinksWindow) {
  reset_thread_epochs();
  ScopedCoreType little(CoreType::kLittle);
  WindowController::Config cfg;
  cfg.initial_window = 1 << 20;
  set_epoch_controller_config(cfg);
  epoch_start(3);
  const std::uint64_t w0 = epoch_window(3);
  epoch_end(3, /*slo=*/0);  // elapsed > 0 == violation
  EXPECT_EQ(epoch_window(3), w0 / 2);
  set_epoch_controller_config(WindowController::Config{});
  reset_thread_epochs();
}

TEST(Epoch, BigCoreSkipsFeedback) {
  reset_thread_epochs();
  ScopedCoreType big(CoreType::kBig);
  WindowController::Config cfg;
  cfg.initial_window = 1 << 20;
  set_epoch_controller_config(cfg);
  epoch_start(4);
  const std::uint64_t w0 = epoch_window(4);
  epoch_end(4, 0);  // would be a violation, but big cores skip (line 21)
  EXPECT_EQ(epoch_window(4), w0);
  set_epoch_controller_config(WindowController::Config{});
  reset_thread_epochs();
}

TEST(Epoch, MetadataIsPerThread) {
  reset_thread_epochs();
  ScopedCoreType little(CoreType::kLittle);
  epoch_start(7);
  epoch_end(7, 0);  // shrink this thread's window
  const std::uint64_t mine = epoch_window(7);
  std::uint64_t other = 0;
  std::thread([&] {
    ScopedCoreType also_little(CoreType::kLittle);
    other = epoch_window(7);  // fresh thread: initial window
  }).join();
  EXPECT_NE(mine, other);
  reset_thread_epochs();
}

TEST(Epoch, EpochsAreIndependent) {
  reset_thread_epochs();
  ScopedCoreType little(CoreType::kLittle);
  epoch_start(10);
  epoch_end(10, 0);  // violate 10
  epoch_start(11);
  epoch_end(11, ~0ULL);  // meet 11
  EXPECT_LT(epoch_window(10), epoch_window(11));
  reset_thread_epochs();
}

TEST(AslMutex, BigCoreLocksImmediately) {
  ScopedCoreType big(CoreType::kBig);
  AslMutex<McsLock> mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.is_free());
  mutex.unlock();
  EXPECT_TRUE(mutex.is_free());
}

TEST(AslMutex, LittleCoreNoEpochUsesMaxWindowButFreeLockIsFast) {
  ScopedCoreType little(CoreType::kLittle);
  reset_thread_epochs();
  AslMutex<McsLock> mutex;
  const Nanos t0 = now_ns();
  mutex.lock();  // free lock: no standby wait despite MAX window
  EXPECT_LT(now_ns() - t0, 5 * kNanosPerMilli);
  mutex.unlock();
}

TEST(AslMutex, MutualExclusionAcrossCoreTypes) {
  AslMutex<McsLock> mutex;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ScopedCoreType scoped(t < 2 ? CoreType::kBig : CoreType::kLittle);
      reset_thread_epochs();
      epoch_start(1);
      for (int i = 0; i < 4000; ++i) {
        mutex.lock();
        counter = counter + 1;
        mutex.unlock();
      }
      epoch_end(1, 50 * kNanosPerMicro);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 16000u);
}

TEST(AslMutex, EpochScopeRaii) {
  ScopedCoreType little(CoreType::kLittle);
  reset_thread_epochs();
  {
    EpochScope scope(9, 1000);
    EXPECT_EQ(current_epoch_id(), 9);
  }
  EXPECT_EQ(current_epoch_id(), -1);
  reset_thread_epochs();
}

TEST(BlockingAslMutex, BasicOperation) {
  ScopedCoreType big(CoreType::kBig);
  BlockingAslMutex mutex;
  mutex.lock();
  EXPECT_FALSE(mutex.is_free());
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Profiler, SweepProducesRequestedSteps) {
  SloProfiler profiler;
  std::vector<std::uint64_t> seen;
  auto points = profiler.sweep(
      {1000, 5000, 5},
      [&](std::uint64_t slo) {
        seen.push_back(slo);
        SloPoint p;
        p.throughput = static_cast<double>(slo);  // monotone fake
        p.p99_little = slo;
        return p;
      });
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(seen.front(), 1000u);
  EXPECT_EQ(seen.back(), 5000u);
  EXPECT_EQ(points[2].slo_ns, 3000u);
}

TEST(Profiler, RecommendPicksSmallestNearBest) {
  std::vector<SloPoint> points;
  for (std::uint64_t slo : {10u, 20u, 30u, 40u}) {
    SloPoint p;
    p.slo_ns = slo;
    p.throughput = slo >= 30 ? 100.0 : (slo >= 20 ? 96.0 : 50.0);
    points.push_back(p);
  }
  const SloPoint* pick = SloProfiler::recommend(points, 0.95);
  ASSERT_NE(pick, nullptr);
  EXPECT_EQ(pick->slo_ns, 20u);  // smallest within 5% of best
}

TEST(Profiler, RecommendEmptyIsNull) {
  EXPECT_EQ(SloProfiler::recommend({}, 0.9), nullptr);
}

TEST(Profiler, PrintGraphContainsAllRows) {
  std::vector<SloPoint> points(3);
  points[0].slo_ns = 1000;
  points[1].slo_ns = 2000;
  points[2].slo_ns = 3000;
  std::ostringstream os;
  SloProfiler::print_graph(points, os);
  EXPECT_NE(os.str().find("slo_us"), std::string::npos);
  EXPECT_NE(os.str().find("3.00"), std::string::npos);
}

TEST(Profiler, GraphTableRowsMatchPointsAndCsvIsMachineReadable) {
  std::vector<SloPoint> points(3);
  points[0].slo_ns = 1000;
  points[1].slo_ns = 2000;
  points[2].slo_ns = 3000;
  points[2].throughput = 1.5e6;
  const Table table = SloProfiler::graph_table(points);
  EXPECT_EQ(table.rows(), 3u);

  std::ostringstream csv;
  table.print_csv(csv);
  // Header row + one row per point, all newline-terminated.
  const std::string text = csv.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("slo_us,big_p99_us,little_p99_us,overall_p99_us,"
                      "tput_ops"),
            std::string::npos);

  // print_graph is the same table rendered as text.
  std::ostringstream via_print_graph, via_table;
  SloProfiler::print_graph(points, via_print_graph);
  table.print(via_table);
  EXPECT_EQ(via_print_graph.str(), via_table.str());
}

}  // namespace
}  // namespace asl
