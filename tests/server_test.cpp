// Server-layer tests: shard routing, bounded-queue backpressure, drain
// semantics on stop(), per-epoch SLO accounting across request classes, and
// the open-loop generator's conservation laws.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asl/runtime.h"
#include "server/kv_service.h"
#include "server/replay.h"
#include "server/request_queue.h"
#include "server/scenarios.h"
#include "server/sim_kv_service.h"
#include "server/telemetry.h"
#include "workload/keydist.h"
#include "workload/open_loop.h"
#include "workload/trace.h"

namespace asl::server {
namespace {

std::uint64_t epoch_completions(int epoch_id) {
  return EpochRegistry::instance().completions(epoch_id);
}

// ------------------------------------------------------------ shard routing

TEST(ShardRouting, StableInRangeAndCoversAllShards) {
  KvServiceConfig cfg;
  cfg.num_shards = 8;
  cfg.classes.push_back(RequestClass{"route-test", 0});
  KvService service(cfg);

  std::vector<std::uint64_t> hits(cfg.num_shards, 0);
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const std::uint32_t shard = service.shard_of(key);
    ASSERT_LT(shard, cfg.num_shards);
    EXPECT_EQ(shard, service.shard_of(key)) << "routing must be stable";
    hits[shard] += 1;
  }
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    // Hash striping spreads a dense key range: no empty shard, no shard
    // with more than a quarter of the traffic at 8 shards.
    EXPECT_GT(hits[s], 0u) << "shard " << s << " never hit";
    EXPECT_LT(hits[s], 1024u) << "shard " << s << " absorbs too much";
  }
}

TEST(ShardRouting, RequestsLandOnTheirShardQueue) {
  KvServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.queue_capacity = 64;
  cfg.classes.push_back(RequestClass{"route-queue-test", 0});
  KvService service(cfg);  // not started: requests sit in the queues

  const std::uint64_t key = 12345;
  const std::uint32_t shard = service.shard_of(key);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(service.try_submit(OpType::kGet, key, 0));
  }
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(service.queue_depth(s), s == shard ? 5u : 0u);
  }
}

// ------------------------------------------------------------- backpressure

TEST(BoundedQueueTest, RejectsWhenFullAndDrainsAfterClose) {
  BoundedQueue<int> queue(3);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_push(3));
  EXPECT_FALSE(queue.try_push(4)) << "capacity must bound the queue";
  EXPECT_EQ(queue.size(), 3u);

  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_push(4)) << "pop must free a slot";

  queue.close();
  EXPECT_FALSE(queue.try_push(5)) << "closed queues reject";
  // Closed-but-nonempty queues keep delivering in FIFO order...
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 4);
  // ...and report exhaustion only once drained.
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedQueueTest, CapacityOneAlternatesAndDrainsAfterClose) {
  // The degenerate ring: one slot. Push/pop must alternate cleanly through
  // the wraparound (head_ cycles over a single index) and close() must keep
  // the drain contract.
  BoundedQueue<int> queue(1);
  EXPECT_EQ(queue.capacity(), 1u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.try_push(i)) << "slot must be free after a pop";
    EXPECT_FALSE(queue.try_push(100 + i)) << "capacity-1 queue must be full";
    int out = -1;
    EXPECT_TRUE(queue.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(queue.try_push(42));
  queue.close();
  EXPECT_FALSE(queue.try_push(43));
  int out = -1;
  EXPECT_TRUE(queue.pop(out)) << "closed-but-nonempty must still deliver";
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(queue.pop(out));
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.try_push(7));
  EXPECT_FALSE(queue.try_push(8));
  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 7);
}

TEST(BoundedQueueTest, TryPushBelowShedsBeforeFullAndDistinguishesBoth) {
  // The tri-state admission: below the limit kOk, at the limit (queue not
  // full) kShed, at capacity or after close() kFull — and a shed leaves the
  // queue untouched, so protected pushes still get the remaining slots.
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.try_push_below(1, 2), PushResult::kOk);
  EXPECT_EQ(queue.try_push_below(2, 2), PushResult::kOk);
  EXPECT_EQ(queue.try_push_below(3, 2), PushResult::kShed)
      << "depth 2 reached the limit";
  EXPECT_EQ(queue.size(), 2u) << "a shed must not enqueue";
  EXPECT_TRUE(queue.try_push(3)) << "protected classes keep the full queue";
  EXPECT_TRUE(queue.try_push(4));
  EXPECT_EQ(queue.try_push_below(5, 2), PushResult::kFull)
      << "capacity exhaustion wins over the watermark";
  queue.close();
  EXPECT_EQ(queue.try_push_below(6, 2), PushResult::kFull)
      << "closed queues report kFull, not kShed";
}

TEST(BoundedQueueTest, LimitAtCapacityNeverSheds) {
  // A watermark exactly at capacity is plain FIFO admission: every
  // rejection is a full-queue rejection, kShed is unreachable.
  BoundedQueue<int> queue(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(queue.try_push_below(i, queue.capacity()), PushResult::kOk);
  }
  EXPECT_EQ(queue.try_push_below(9, queue.capacity()), PushResult::kFull);
  // And a limit beyond capacity behaves identically.
  EXPECT_EQ(queue.try_push_below(9, queue.capacity() + 10),
            PushResult::kFull);
}

TEST(BoundedQueueTest, TryPopIsNonBlockingAndFifo) {
  BoundedQueue<int> queue(4);
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out)) << "empty queue must not block";
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.try_pop(out));
  // Mixed with the blocking pop after close(): same FIFO drain contract.
  EXPECT_TRUE(queue.try_push(3));
  queue.close();
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queue.pop(out));
}

// ------------------------------------------------- class-aware admission

TEST(AdmissionPolicyTest, ShedThresholdFormulaAndClamps) {
  // Protected: the full capacity, whatever the watermark says.
  EXPECT_EQ(shed_threshold(AdmissionPolicy{0, 0.5}, 128), 128u);
  // Priority p sheds at capacity * watermark^p.
  EXPECT_EQ(shed_threshold(AdmissionPolicy{1, 0.5}, 128), 64u);
  EXPECT_EQ(shed_threshold(AdmissionPolicy{2, 0.5}, 128), 32u);
  // Watermark exactly 1.0: sheddable in name, FIFO in behaviour.
  EXPECT_EQ(shed_threshold(AdmissionPolicy{1, 1.0}, 128), 128u);
  // Non-representable watermark: 100 * 0.29 is 28.999... in binary; the
  // threshold must still be the intended floor(29), not 28.
  EXPECT_EQ(shed_threshold(AdmissionPolicy{1, 0.29}, 100), 29u);
  // Clamped to at least one slot so an aggressive policy cannot starve a
  // class at idle...
  EXPECT_EQ(shed_threshold(AdmissionPolicy{8, 0.1}, 128), 1u);
  // ...and to at most the capacity on out-of-range watermarks.
  EXPECT_EQ(shed_threshold(AdmissionPolicy{1, 2.0}, 128), 128u);
}

TEST(ServiceAdmission, LooseClassShedsAtWatermarkTightKeepsTheQueue) {
  // Single shard, capacity 16, loose class shedding at half depth: a put
  // storm stops being admitted at depth 8 (all bounces counted as sheds —
  // the queue never actually filled), then gets still take the remaining 8
  // slots, and the drain invariant survives the whole episode.
  KvServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.queue_capacity = 16;
  cfg.classes.push_back(RequestClass{"shed-tight", 1 * kNanosPerMilli, {}});
  cfg.classes.push_back(
      RequestClass{"shed-loose", 4 * kNanosPerMilli, AdmissionPolicy{1, 0.5}});
  KvService service(cfg);  // not started: queues can only fill

  for (std::uint64_t key = 0; key < 20; ++key) {
    service.try_submit(OpType::kPut, key, 1);
  }
  ServiceReport mid = service.report();
  EXPECT_EQ(mid.classes[1].accepted, 8u) << "watermark = capacity/2";
  EXPECT_EQ(mid.classes[1].rejected, 12u);
  EXPECT_EQ(mid.classes[1].shed, 12u)
      << "every loose bounce was a shed: the queue never filled";

  std::uint64_t tight_accepted = 0;
  for (std::uint64_t key = 20; key < 40; ++key) {
    tight_accepted += service.try_submit(OpType::kGet, key, 0) ? 1 : 0;
  }
  EXPECT_EQ(tight_accepted, 8u) << "the protected class takes the rest";
  ServiceReport after = service.report();
  EXPECT_EQ(after.classes[0].shed, 0u) << "protected classes never shed";
  EXPECT_EQ(after.classes[0].rejected, 12u)
      << "tight bounces are full-queue rejections";

  service.start();
  service.stop();
  ServiceReport final_report = service.report();
  EXPECT_EQ(final_report.classes[0].completed, tight_accepted);
  EXPECT_EQ(final_report.classes[1].completed, 8u);
  EXPECT_EQ(service.queue_depth(0), 0u);
}

TEST(ServiceAdmission, AllClassesSheddableStillDrainsAndCounts) {
  // Every class sheddable: nothing is ever admitted past the watermark, so
  // max depth stays at the threshold, every bounce is a shed, and the
  // accepted prefix still drains completely.
  KvServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.queue_capacity = 8;
  cfg.classes.push_back(
      RequestClass{"shed-all-a", 1 * kNanosPerMilli, AdmissionPolicy{1, 0.5}});
  cfg.classes.push_back(
      RequestClass{"shed-all-b", 4 * kNanosPerMilli, AdmissionPolicy{1, 0.5}});
  KvService service(cfg);

  std::uint64_t accepted = 0;
  for (std::uint64_t key = 0; key < 32; ++key) {
    accepted +=
        service.try_submit(OpType::kPut, key, key % 2 ? 1 : 0) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 4u) << "both classes cap at the shared watermark";
  ServiceReport report = service.report();
  EXPECT_EQ(report.total_shed(), 32u - accepted);
  EXPECT_EQ(report.total_rejected(), report.total_shed())
      << "the queue never filled, so every rejection was a shed";

  service.stop();  // inline drain
  report = service.report();
  EXPECT_EQ(report.total_completed(), accepted);
}

TEST(ServiceAdmission, ShedDisabledParityWithFifoRejectionCounts) {
  // With every class protected (the default), admission must match the
  // class-blind bounded queue exactly: same accepted/rejected counts as
  // the pre-shedding service, and zero sheds anywhere.
  KvServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.queue_capacity = 16;
  cfg.classes.push_back(RequestClass{"fifo-parity", 2 * kNanosPerMilli, {}});
  KvService service(cfg);

  std::uint64_t accepted = 0, rejected = 0;
  for (std::uint64_t key = 0; key < 40; ++key) {
    (service.try_submit(OpType::kPut, key, 0) ? accepted : rejected) += 1;
  }
  EXPECT_EQ(accepted, cfg.queue_capacity);
  EXPECT_EQ(rejected, 40 - cfg.queue_capacity);
  ServiceReport report = service.report();
  EXPECT_EQ(report.classes[0].shed, 0u);
  EXPECT_EQ(report.classes[0].rejected, rejected);
  service.stop();
}

TEST(ServiceBackpressure, FullQueueRejectsThenStartDrainsEverything) {
  KvServiceConfig cfg;
  cfg.num_shards = 1;  // single queue so the capacity bound is exact
  cfg.queue_capacity = 16;
  cfg.workers_per_shard = 2;
  cfg.classes.push_back(RequestClass{"bp-test", 2 * kNanosPerMilli});
  KvService service(cfg);  // workers not started yet

  std::uint64_t accepted = 0, rejected = 0;
  for (std::uint64_t key = 0; key < 40; ++key) {
    (service.try_submit(OpType::kPut, key, 0) ? accepted : rejected) += 1;
  }
  EXPECT_EQ(accepted, cfg.queue_capacity);
  EXPECT_EQ(rejected, 40 - cfg.queue_capacity);
  EXPECT_EQ(service.queue_depth(0), cfg.queue_capacity);

  service.start();
  service.stop();  // close + drain + join

  ServiceReport report = service.report();
  ASSERT_EQ(report.classes.size(), 1u);
  EXPECT_EQ(report.classes[0].accepted, accepted);
  EXPECT_EQ(report.classes[0].rejected, rejected);
  EXPECT_EQ(report.classes[0].completed, accepted)
      << "stop() must drain every accepted request";
  EXPECT_EQ(service.queue_depth(0), 0u);
  EXPECT_GT(service.store_size(), 0u) << "puts must reach the engine";
}

TEST(ServiceBackpressure, StopWithoutStartStillDrains) {
  KvServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.queue_capacity = 32;
  cfg.classes.push_back(RequestClass{"drain-test", 2 * kNanosPerMilli});
  KvService service(cfg);

  std::uint64_t accepted = 0;
  for (std::uint64_t key = 0; key < 20; ++key) {
    accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
  }
  ASSERT_GT(accepted, 0u);
  service.stop();  // never started: the drain runs inline

  ServiceReport report = service.report();
  EXPECT_EQ(report.classes[0].completed, accepted)
      << "completed == accepted must hold even without start()";
  EXPECT_EQ(service.queue_depth(0) + service.queue_depth(1), 0u);
}

TEST(ServiceBackpressure, CapacityOneServiceKeepsDrainInvariant) {
  // The tightest admission buffer: every shard holds at most one waiting
  // request, so a submit storm rejects heavily — but whatever was accepted
  // must still be fully served on stop().
  KvServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.queue_capacity = 1;
  cfg.classes.push_back(RequestClass{"cap1-test", 2 * kNanosPerMilli});
  KvService service(cfg);  // not started: queues can only fill

  std::uint64_t accepted = 0, rejected = 0;
  for (std::uint64_t key = 0; key < 64; ++key) {
    (service.try_submit(OpType::kPut, key, 0) ? accepted : rejected) += 1;
  }
  EXPECT_LE(accepted, 2u) << "one slot per shard";
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(rejected, 64 - accepted);

  service.start();
  service.stop();
  ServiceReport report = service.report();
  EXPECT_EQ(report.classes[0].accepted, accepted);
  EXPECT_EQ(report.classes[0].rejected, rejected);
  EXPECT_EQ(report.classes[0].completed, accepted);
}

TEST(ServiceEngines, EveryRegisteredEngineServesAndDrains) {
  // The engine seam on the real path (DESIGN.md §7): the same service,
  // traffic and accounting on each registered engine — only
  // KvServiceConfig::engine differs. Puts must land in the engine's store
  // (distinct keys => store growth) and the drain invariant must hold.
  for (const std::string& engine : db::kv_engine_names()) {
    KvServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.workers_per_shard = 2;
    cfg.queue_capacity = 128;
    cfg.engine = engine;
    cfg.prefill_keys = 32;
    cfg.classes.push_back(RequestClass{"eng-" + engine, 2 * kNanosPerMilli});
    KvService service(cfg);
    EXPECT_EQ(service.store_size(), 32u) << engine;
    service.start();
    std::uint64_t accepted = 0;
    for (std::uint64_t key = 0; key < 200; ++key) {
      accepted += service.try_submit(
          key % 2 == 0 ? OpType::kPut : OpType::kGet, 1000 + key, 0);
    }
    service.stop();
    const ServiceReport report = service.report();
    EXPECT_EQ(report.classes[0].accepted, accepted) << engine;
    EXPECT_EQ(report.classes[0].completed, accepted) << engine;
    EXPECT_GT(service.store_size(), 32u)
        << engine << ": puts must reach the engine";
  }
}

TEST(ServiceEngines, LockRouteCountersSplitByEngineCapability) {
  // The lock-free read path's observable contract (DESIGN.md §8): on an
  // engine whose profile claims get_lock_free (mvcc), a get NEVER acquires
  // the shard lock — zero get-route acquisitions, zero in-CS gets, every
  // completed get on the lock-free route. On a locked engine (hash) the
  // split is exactly the other way. Puts acquire on both.
  for (const std::string& engine : {std::string("mvcc"), std::string("hash")}) {
    KvServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.workers_per_shard = 2;
    cfg.queue_capacity = 256;
    cfg.engine = engine;
    cfg.prefill_keys = 64;
    cfg.classes.push_back(RequestClass{"route-" + engine, 2 * kNanosPerMilli});
    KvService service(cfg);
    service.start();
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    for (std::uint64_t key = 0; key < 400; ++key) {
      if (key % 4 == 0) {
        puts += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
      } else {
        gets += service.try_submit(OpType::kGet, key % 64, 0) ? 1 : 0;
      }
    }
    service.stop();
    const LockRouteStats routes = service.lock_route_stats();
    EXPECT_EQ(routes.cs_gets + routes.lockfree_gets, gets)
        << engine << ": every completed get is on exactly one route";
    if (engine == "mvcc") {
      EXPECT_EQ(routes.get_route_acquires, 0u)
          << "mvcc gets must never take the shard lock";
      EXPECT_EQ(routes.cs_gets, 0u);
      EXPECT_EQ(routes.lockfree_gets, gets);
    } else {
      EXPECT_EQ(routes.lockfree_gets, 0u)
          << "hash has no lock-free read path";
      EXPECT_EQ(routes.cs_gets, gets);
    }
    EXPECT_GT(routes.put_route_acquires, 0u)
        << engine << ": puts always publish under the shard lock";
    EXPECT_LE(routes.put_route_acquires, puts)
        << engine << ": batching can only merge put acquisitions, not mint";
  }
}

TEST(ServiceLifecycle, StopBeforeStartThenLateTrafficIsRejected) {
  // stop() before start(): queued work drains inline, the service closes,
  // and everything submitted afterwards is a counted rejection — the
  // completed == accepted invariant must survive the whole sequence,
  // including a (no-op) start() after stop().
  KvServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.queue_capacity = 8;
  cfg.classes.push_back(RequestClass{"late-test", 0});
  KvService service(cfg);

  std::uint64_t accepted = 0;
  for (std::uint64_t key = 0; key < 6; ++key) {
    accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
  }
  ASSERT_EQ(accepted, 6u);
  service.stop();

  for (std::uint64_t key = 6; key < 12; ++key) {
    EXPECT_FALSE(service.try_submit(OpType::kGet, key, 0))
        << "closed service must reject";
  }
  service.start();  // after stop(): must be a no-op, not a worker respawn
  service.stop();   // idempotent

  ServiceReport report = service.report();
  EXPECT_EQ(report.classes[0].accepted, accepted);
  EXPECT_EQ(report.classes[0].completed, accepted);
  EXPECT_EQ(report.classes[0].rejected, 6u);
  EXPECT_EQ(service.queue_depth(0) + service.queue_depth(1), 0u);
}

TEST(ServiceLifecycle, StopWithQueuedWorkDrainsEveryShard) {
  // Workers racing stop(): fill queues across every shard while workers
  // run, then stop immediately — close() must let the workers drain each
  // accepted request before joining.
  KvServiceConfig cfg;
  cfg.num_shards = 4;
  cfg.workers_per_shard = 1;
  cfg.queue_capacity = 256;
  cfg.classes.push_back(RequestClass{"drain-race-test", 2 * kNanosPerMilli});
  KvService service(cfg);
  service.start();

  std::uint64_t accepted = 0;
  for (std::uint64_t key = 0; key < 512; ++key) {
    accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
  }
  service.stop();

  ServiceReport report = service.report();
  EXPECT_EQ(report.classes[0].completed, accepted);
  for (std::uint32_t s = 0; s < cfg.num_shards; ++s) {
    EXPECT_EQ(service.queue_depth(s), 0u) << "shard " << s;
  }
  EXPECT_GT(service.store_size(), 0u);
}

TEST(ServiceLifecycle, ConcurrentStartAndStopCompose) {
  // The transition race (this suite runs under TSan in CI): one thread
  // starting the service while another stops it. The lifecycle lock
  // serializes the two orders — stop-first leaves a closed, never-started
  // service that drained inline; start-first spawns workers that stop()
  // then joins — and either way every accepted request completes. The old
  // plain-bool running_/stopped_ flags made this a data race.
  for (int round = 0; round < 8; ++round) {
    KvServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.queue_capacity = 32;
    cfg.classes.push_back(RequestClass{"lifecycle-race-test", 0});
    KvService service(cfg);

    std::uint64_t accepted = 0;
    for (std::uint64_t key = 0; key < 16; ++key) {
      accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
    }
    std::thread starter([&service] { service.start(); });
    std::thread stopper([&service] { service.stop(); });
    starter.join();
    stopper.join();
    service.stop();  // idempotent; the first stop already drained

    ServiceReport report = service.report();
    EXPECT_EQ(report.classes[0].accepted, accepted);
    EXPECT_EQ(report.classes[0].completed, accepted);
    EXPECT_EQ(service.queue_depth(0) + service.queue_depth(1), 0u);
  }
}

// ---------------------------------------------------- telemetry lifecycle

namespace {

KvServiceConfig telemetry_test_config() {
  KvServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.workers_per_shard = 1;
  cfg.queue_capacity = 64;
  cfg.prefill_keys = 64;
  cfg.classes.push_back(RequestClass{"telemetry-test", 2 * kNanosPerMilli});
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_period_ns = 1 * kNanosPerMilli;
  return cfg;
}

// Last point of a named series; 0 when the series is absent or empty.
std::uint64_t series_last(const KvTelemetry* telem, const std::string& name) {
  const TimeSeries* s = telem->log().find(name);
  return (s == nullptr || s->empty()) ? 0 : s->points().back().v;
}

}  // namespace

TEST(TelemetryLifecycle, DisabledConfigBuildsNoPipeline) {
  KvServiceConfig cfg;
  cfg.classes.push_back(RequestClass{"telemetry-off-test", 0});
  KvService service(cfg);
  EXPECT_EQ(service.telemetry(), nullptr);
  service.start();
  service.stop();
  EXPECT_EQ(service.telemetry(), nullptr);
}

TEST(TelemetryLifecycle, FinalTickSeesZeroDepthAfterDrain) {
  // The sampler's final tick fires after stop() joins the workers, so the
  // last sample of every series must observe the drained service: queue
  // depths at zero and the cumulative counters at their report values —
  // never a mid-drain snapshot.
  KvService service(telemetry_test_config());
  service.start();
  std::uint64_t accepted = 0;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const OpType op = (i % 4 == 0) ? OpType::kPut : OpType::kGet;
    while (!service.try_submit(op, rng.below(64), 0)) {
      std::this_thread::yield();
    }
    accepted += 1;
  }
  service.stop();

  const KvTelemetry* telem = service.telemetry();
  ASSERT_NE(telem, nullptr);
  EXPECT_GE(telem->ticks(), 1u);
  const ServiceReport report = service.report();
  EXPECT_EQ(report.classes[0].completed, accepted);
  EXPECT_EQ(series_last(telem, "class.telemetry-test.accepted"), accepted);
  EXPECT_EQ(series_last(telem, "class.telemetry-test.completed"), accepted);
  EXPECT_EQ(series_last(telem, "shard.0.depth"), 0u);
  EXPECT_EQ(series_last(telem, "shard.1.depth"), 0u);
}

TEST(TelemetryLifecycle, StopWithoutStartStillSamplesFinalTick) {
  // stop() with no start(): queued work drains inline, and the sampler —
  // never started — must still emit its one final tick, observing the
  // post-drain state. A telemetry-on service never ends a run with an
  // empty log.
  KvService service(telemetry_test_config());
  std::uint64_t accepted = 0;
  for (std::uint64_t key = 0; key < 8; ++key) {
    accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
  }
  ASSERT_GT(accepted, 0u);
  service.stop();

  const KvTelemetry* telem = service.telemetry();
  ASSERT_NE(telem, nullptr);
  EXPECT_GE(telem->ticks(), 1u);
  EXPECT_FALSE(telem->log().empty());
  EXPECT_EQ(series_last(telem, "class.telemetry-test.completed"), accepted);
  EXPECT_EQ(series_last(telem, "shard.0.depth") +
                series_last(telem, "shard.1.depth"),
            0u);
}

TEST(TelemetryLifecycle, ConcurrentStartAndStopCompose) {
  // The PR 7 transition race, now with the sampler in the mix (this suite
  // runs under TSan in CI): whichever order the lifecycle lock serializes,
  // the sampler's final tick fires exactly once and lands on drained state.
  for (int round = 0; round < 8; ++round) {
    KvService service(telemetry_test_config());
    std::uint64_t accepted = 0;
    for (std::uint64_t key = 0; key < 16; ++key) {
      accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
    }
    std::thread starter([&service] { service.start(); });
    std::thread stopper([&service] { service.stop(); });
    starter.join();
    stopper.join();
    service.stop();  // idempotent; no second final tick

    const KvTelemetry* telem = service.telemetry();
    ASSERT_NE(telem, nullptr);
    EXPECT_GE(telem->ticks(), 1u);
    const ServiceReport report = service.report();
    EXPECT_EQ(report.classes[0].completed, accepted);
    EXPECT_EQ(series_last(telem, "class.telemetry-test.completed"), accepted);
    EXPECT_EQ(series_last(telem, "shard.0.depth") +
                  series_last(telem, "shard.1.depth"),
              0u);
  }
}

// ------------------------------------------------------------ batch drain

TEST(ServiceBatching, BatchedDrainKeepsPerRequestAccounting) {
  // batch_k = 8: workers amortize one lock acquisition over up to eight
  // queued requests, but every request must still be counted, latency-
  // recorded and epoch-tagged individually — batching amortizes the lock,
  // never the accounting (DESIGN.md §6).
  KvServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.workers_per_shard = 2;
  cfg.big_workers = 2;
  cfg.queue_capacity = 128;
  cfg.batch_k = 8;
  cfg.prefill_keys = 256;
  cfg.classes.push_back(RequestClass{"batch-tight", 1 * kNanosPerMilli, {}});
  cfg.classes.push_back(RequestClass{"batch-loose", 8 * kNanosPerMilli, {}});
  KvService service(cfg);

  std::vector<std::uint64_t> before;
  for (std::uint32_t c = 0; c < 2; ++c) {
    before.push_back(epoch_completions(service.epoch_id(c)));
  }

  // Fill the queues before start() so the first drains actually form
  // multi-request batches instead of racing the submitter.
  std::vector<std::uint64_t> accepted(2, 0);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint32_t c = static_cast<std::uint32_t>(i % 2);
    if (service.try_submit(i % 3 == 0 ? OpType::kPut : OpType::kGet,
                           i % 256, c)) {
      accepted[c] += 1;
    }
  }
  service.start();
  service.stop();

  ServiceReport report = service.report();
  for (std::uint32_t c = 0; c < 2; ++c) {
    const ClassReport& cls = report.classes[c];
    EXPECT_EQ(cls.completed, accepted[c]);
    EXPECT_EQ(cls.shed, 0u);
    // One epoch completion per served request, batched or not.
    EXPECT_EQ(epoch_completions(service.epoch_id(c)) - before[c],
              cls.completed)
        << "class " << cls.name;
    // Latency recording is complete and per-request.
    EXPECT_EQ(cls.total.overall().count(), cls.completed);
    EXPECT_EQ(cls.queue_wait.count(), cls.completed);
  }
  EXPECT_GT(service.store_size(), 0u);
}

TEST(ServiceBatching, BatchKClampsAndDegenerateValuesServeEverything) {
  // batch_k = 0 clamps to 1 (unbatched) and a huge batch_k clamps to
  // kMaxBatch; both must keep the drain invariant.
  for (const std::uint32_t k : {0u, 1u, 1000u}) {
    KvServiceConfig cfg;
    cfg.num_shards = 1;
    cfg.queue_capacity = 64;
    cfg.batch_k = k;
    cfg.classes.push_back(RequestClass{"batch-clamp", 0, {}});
    KvService service(cfg);
    EXPECT_GE(service.config().batch_k, 1u);
    EXPECT_LE(service.config().batch_k, kMaxBatch);
    std::uint64_t accepted = 0;
    for (std::uint64_t key = 0; key < 50; ++key) {
      accepted += service.try_submit(OpType::kPut, key, 0) ? 1 : 0;
    }
    service.start();
    service.stop();
    EXPECT_EQ(service.report().classes[0].completed, accepted)
        << "batch_k " << k;
  }
}

// --------------------------------------------------- per-epoch SLO accounting

TEST(SloAccounting, ClassesCarryDistinctEpochsAndSlos) {
  KvServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.workers_per_shard = 2;
  cfg.big_workers = 2;
  cfg.prefill_keys = 256;
  cfg.classes.push_back(RequestClass{"slo-test-tight", 1 * kNanosPerMilli});
  cfg.classes.push_back(RequestClass{"slo-test-loose", 50 * kNanosPerMilli});
  cfg.classes.push_back(RequestClass{"slo-test-none", 0});
  KvService service(cfg);

  // Registration side: distinct dense ids, registry carries each class SLO.
  std::set<int> ids;
  for (std::uint32_t c = 0; c < 3; ++c) {
    ASSERT_GE(service.epoch_id(c), 0);
    ids.insert(service.epoch_id(c));
    EXPECT_EQ(EpochRegistry::instance().default_slo(service.epoch_id(c)),
              cfg.classes[c].slo_ns);
  }
  EXPECT_EQ(ids.size(), 3u);

  std::vector<std::uint64_t> before;
  for (std::uint32_t c = 0; c < 3; ++c) {
    before.push_back(epoch_completions(service.epoch_id(c)));
  }

  service.start();
  std::vector<std::uint64_t> accepted(3, 0);
  for (std::uint64_t i = 0; i < 600; ++i) {
    const std::uint32_t c = static_cast<std::uint32_t>(i % 3);
    if (service.try_submit(i % 2 == 0 ? OpType::kGet : OpType::kPut,
                           i % 256, c)) {
      accepted[c] += 1;
    }
  }
  service.stop();

  ServiceReport report = service.report();
  ASSERT_EQ(report.classes.size(), 3u);
  for (std::uint32_t c = 0; c < 3; ++c) {
    const ClassReport& cls = report.classes[c];
    EXPECT_EQ(cls.completed, accepted[c]);
    EXPECT_LE(cls.slo_met, cls.completed);
    EXPECT_GE(cls.attainment(), 0.0);
    EXPECT_LE(cls.attainment(), 1.0);
    // Every served request ended its class epoch exactly once: the registry
    // delta (folded from the exited workers) matches the service count.
    EXPECT_EQ(epoch_completions(service.epoch_id(c)) - before[c],
              cls.completed)
        << "class " << cls.name;
    // Latency recording is complete (every completion recorded once).
    EXPECT_EQ(cls.total.overall().count(), cls.completed);
    EXPECT_EQ(cls.queue_wait.count(), cls.completed);
  }
  // The no-SLO class counts every completion as met (nothing to violate).
  EXPECT_EQ(report.classes[2].slo_met, report.classes[2].completed);
  // The 50 ms class is unmissable at this scale on any sane host; requiring
  // a single met request keeps this robust on loaded CI runners.
  EXPECT_GT(report.classes[1].slo_met, 0u);
}

// ------------------------------------------------------- open-loop generator

TEST(OpenLoopGenerator, ConservationAcrossLayers) {
  KvScenario sc = make_kv_scenario("kv_uniform_steady");
  sc.service.prefill_keys = 1024;  // keep the test-start cost small
  const Nanos horizon = 40 * kNanosPerMilli;

  KvService service(sc.service);
  service.start();
  OpenLoopResult load = run_open_loop(service, sc.load, horizon);
  service.stop();

  EXPECT_GT(load.offered, 0u);
  EXPECT_EQ(load.offered, load.accepted + load.rejected);
  ServiceReport report = service.report();
  EXPECT_EQ(report.total_accepted(), load.accepted);
  EXPECT_EQ(report.total_rejected(), load.rejected);
  EXPECT_EQ(report.total_completed(), load.accepted);
}

TEST(OpenLoopGenerator, TracesAreMonotoneAndBounded) {
  for (const std::string& name : kv_scenario_names()) {
    KvScenario sc = make_kv_scenario(name);
    for (const LoadSpec& spec : sc.load) {
      const auto trace = generate_trace(spec, 50 * kNanosPerMilli);
      ASSERT_GT(trace.size(), 0u) << name;
      Nanos prev = 0;
      for (const TracePoint& p : trace) {
        EXPECT_GT(p.at, prev) << name << ": arrivals must advance";
        prev = p.at;
        EXPECT_LT(p.at, 50 * kNanosPerMilli) << name;
        EXPECT_LT(p.key, spec.keys.keyspace()) << name;
      }
    }
  }
}

TEST(OpenLoopGenerator, ZipfianSkewsAndUniformDoesNot) {
  const std::uint64_t keyspace = 4096;
  const int draws = 40'000;
  auto hottest_count = [&](const workload::KeyDist& dist) {
    Rng rng(99);
    std::vector<std::uint32_t> counts(keyspace, 0);
    for (int i = 0; i < draws; ++i) counts[dist.next(rng)] += 1;
    std::uint32_t max_count = 0;
    for (std::uint32_t c : counts) max_count = std::max(max_count, c);
    return max_count;
  };
  const std::uint32_t uniform_max =
      hottest_count(workload::KeyDist::uniform(keyspace));
  const std::uint32_t zipf_max =
      hottest_count(workload::KeyDist::zipfian(keyspace, 0.99));
  // Uniform expectation is ~10 draws/key; zipfian theta=0.99 concentrates
  // several percent of all draws on the hottest key.
  EXPECT_LT(uniform_max, 60u);
  EXPECT_GT(zipf_max, uniform_max * 5);
}

TEST(TraceReplay, RealPathRecorderCapturesDecisionsAndBatches) {
  // The recorder hook on the real path: every try_submit outcome lands in
  // the trace with the decision the service actually took, and every
  // drained batch lands in the histogram. Reuses the watermark episode of
  // LooseClassShedsAtWatermarkTightKeepsTheQueue, so the expected decision
  // counts are already pinned above.
  KvServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.queue_capacity = 16;
  cfg.classes.push_back(RequestClass{"rec-tight", 1 * kNanosPerMilli, {}});
  cfg.classes.push_back(
      RequestClass{"rec-loose", 4 * kNanosPerMilli, AdmissionPolicy{1, 0.5}});
  KvService service(cfg);  // not started: queues can only fill
  TraceRecorder recorder;
  service.set_recorder(&recorder);

  for (std::uint64_t key = 0; key < 20; ++key) {
    service.try_submit(OpType::kPut, key, 1);
  }
  for (std::uint64_t key = 20; key < 40; ++key) {
    service.try_submit(OpType::kGet, key, 0);
  }
  EXPECT_EQ(recorder.recorded(), 40u);
  service.start();
  service.stop();
  service.set_recorder(nullptr);

  TraceMeta meta;
  meta.scenario = "recorder-unit";
  meta.num_shards = cfg.num_shards;
  meta.real_path = true;
  meta.class_names = {"rec-tight", "rec-loose"};
  const RecordedTrace trace =
      recorder.finish(std::move(meta), service.lock_route_stats());

  // Decision totals derived from the records equal the service's own
  // accounting (8 admits per class; loose bounces all sheds, tight bounces
  // all full-queue rejects).
  const ServiceReport report = service.report();
  ASSERT_EQ(trace.accounting.classes.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(trace.accounting.classes[i].accepted, report.classes[i].accepted);
    EXPECT_EQ(trace.accounting.classes[i].rejected, report.classes[i].rejected);
    EXPECT_EQ(trace.accounting.classes[i].shed, report.classes[i].shed);
  }
  EXPECT_EQ(trace.accounting.classes[1].shed, 12u);
  EXPECT_EQ(trace.accounting.classes[0].shed, 0u);

  // The batch histogram counts exactly the lock acquisitions.
  const LockRouteStats routes = service.lock_route_stats();
  std::uint64_t batch_total = 0, batched_requests = 0;
  for (const TraceBatchBucket& b : trace.accounting.batches) {
    batch_total += b.count;
    batched_requests += b.count * b.size;
  }
  EXPECT_EQ(batch_total, routes.get_route_acquires + routes.put_route_acquires);
  EXPECT_EQ(batched_requests, report.total_completed())
      << "hash engine: every completed request rode exactly one batch";

  // A real-path trace serializes and re-parses (arrival stamps are
  // wall-clock and exempt from the twin's monotonicity rule).
  const std::string bytes = trace_to_string(trace);
  RecordedTrace parsed;
  std::string error;
  std::istringstream in(bytes);
  ASSERT_TRUE(parse_trace(in, &parsed, &error)) << error;
  EXPECT_EQ(trace_to_string(parsed), bytes);
}

TEST(TraceReplay, RealPathReplayReproducesRecordedAccounting) {
  // The decision-parity guarantee (server/replay.h): a twin-recorded
  // overloaded trace — admits, sheds and full-queue rejects all present —
  // replayed onto a live service with queue headroom reproduces the
  // recorded accounting exactly. Enforced bounces are accounted without
  // being re-offered; recorded admits must all be re-admitted live, so
  // divergence is structurally zero here and asserted as such.
  // The default 20 ms overload horizon: long enough for the queues to climb
  // past the shed watermark and then fill outright, so the trace carries
  // all three decisions.
  const KvScenario sc = make_overloaded_kv_scenario("kv_batch_shed", 8.0);
  const RecordedTrace trace = record_sim_kv(sc);
  std::uint64_t rec_accepted = 0, rec_rejected = 0, rec_shed = 0;
  for (const TraceClassTotals& c : trace.accounting.classes) {
    rec_accepted += c.accepted;
    rec_rejected += c.rejected;
    rec_shed += c.shed;
  }
  ASSERT_GT(rec_accepted, 0u);
  ASSERT_GT(rec_shed, 0u) << "the overload profile must exercise shedding";

  KvServiceConfig cfg = sc.service;
  cfg.queue_capacity = 4096;  // headroom >> recorded accepted load
  KvService service(cfg);
  TraceRecorder rerecorder;  // re-record the replay through the real hook
  service.set_recorder(&rerecorder);
  service.start();

  ReplayOptions options;
  options.time_scale = 0.0;  // no pacing: order and accounting, not tempo
  const RealReplayResult result = replay_trace(service, trace, options);
  service.stop();
  service.set_recorder(nullptr);

  EXPECT_EQ(result.offered, trace.offered());
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_EQ(result.divergence, 0u);
  EXPECT_EQ(result.accepted, rec_accepted);
  EXPECT_EQ(result.rejected, 0u) << "headroom: no live bounces";
  EXPECT_EQ(result.submitted, rec_accepted);
  EXPECT_EQ(result.enforced_shed, rec_shed);
  EXPECT_EQ(result.enforced_reject, rec_rejected - rec_shed);
  EXPECT_EQ(rerecorder.recorded(), result.submitted)
      << "the service's recorder saw exactly the re-offered stream";

  std::string why;
  EXPECT_TRUE(accounting_counts_match(trace.accounting, result.accounting,
                                      &why))
      << why;

  // The service itself completed exactly the recorded accepted stream.
  const ServiceReport report = service.report();
  EXPECT_EQ(report.total_accepted(), rec_accepted);
  EXPECT_EQ(report.total_completed(), rec_accepted);
  EXPECT_EQ(report.total_rejected(), 0u);
}

}  // namespace
}  // namespace asl::server
