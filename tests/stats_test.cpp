// Statistics substrate tests: histogram vs exact-percentile oracle
// (parameterized over distributions), CDF, merge, streaming stats, time
// series, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "platform/rng.h"
#include "stats/histogram.h"
#include "stats/percentile.h"
#include "stats/streaming.h"
#include "stats/table.h"
#include "stats/timeseries.h"

namespace asl {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p99(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(12345);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 12345u);
  EXPECT_EQ(h.min(), 12345u);
  // Quantile returns the bucket's upper edge clamped to max.
  EXPECT_EQ(h.p99(), 12345u);
  EXPECT_EQ(h.value_at_quantile(0.0), 12345u);
}

TEST(Histogram, SmallValuesAreExact) {
  // Octave 0 buckets are width-1: values < kSubBuckets report exactly.
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_upper_edge(Histogram::bucket_index(v)), v);
  }
}

TEST(Histogram, BucketIndexMonotone) {
  std::uint32_t prev = 0;
  for (std::uint64_t v = 1; v < (1ULL << 30); v = v * 3 / 2 + 1) {
    const std::uint32_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, BucketRelativeErrorBounded) {
  // The reported value (bucket upper edge) overestimates by < 1/kSubBuckets.
  for (std::uint64_t v = 100; v < (1ULL << 40); v *= 7) {
    const std::uint64_t edge =
        Histogram::bucket_upper_edge(Histogram::bucket_index(v));
    EXPECT_GE(edge, v);
    EXPECT_LE(static_cast<double>(edge - v) / static_cast<double>(v),
              2.0 / Histogram::kSubBuckets);
  }
}

TEST(Histogram, RecordNMatchesRepeatedRecord) {
  Histogram a, b;
  a.record_n(777, 5);
  for (int i = 0; i < 5; ++i) b.record(777);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.p99(), b.p99());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  Histogram a, b;
  a.record(10);
  b.record(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(Histogram, SingleValueIsExactAtEveryQuantile) {
  // The documented single-sample contract (histogram.h): the containing
  // bucket's upper edge is >= v and the max clamp pulls every quantile back
  // to exactly v — including a value far above the width-1 octave.
  for (std::uint64_t v : {1ULL, 63ULL, 12345ULL, 987654321ULL}) {
    Histogram h;
    h.record(v);
    for (double q : {0.0, 0.5, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(h.value_at_quantile(q), v) << "v=" << v << " q=" << q;
    }
  }
}

TEST(Histogram, MergeMatchesSingleCombinedHistogram) {
  // The documented merge contract (histogram.h): merging per-worker
  // histograms is *exact* — identical to recording both observation streams
  // into one histogram. Checked against that oracle across the full summary
  // surface, not just count/extremes.
  Histogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1ULL << 22) + 1;
    if (i % 3 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.value_at_quantile(q), combined.value_at_quantile(q))
        << "q=" << q;
  }
  const auto cdf_a = a.cdf();
  const auto cdf_c = combined.cdf();
  ASSERT_EQ(cdf_a.size(), cdf_c.size());
  for (std::size_t i = 0; i < cdf_a.size(); ++i) {
    EXPECT_EQ(cdf_a[i].value, cdf_c[i].value);
    EXPECT_DOUBLE_EQ(cdf_a[i].cumulative, cdf_c[i].cumulative);
  }
}

TEST(Histogram, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  a.record(500);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.p99(), 500u);
  // Merging into an empty histogram adopts the other's extremes (the ~0
  // min sentinel must not leak through).
  Histogram c;
  c.merge(a);
  EXPECT_EQ(c.count(), 1u);
  EXPECT_EQ(c.min(), 500u);
  EXPECT_EQ(c.max(), 500u);
}

TEST(Histogram, QuantileFromBucketCountsMatchesUnclampedWalk) {
  // The static kernel (telemetry's windowed-p99 path) on a hand-built
  // bucket array: zero total is 0 for every q, and a populated array
  // reports the nearest-rank bucket's upper edge with no max clamp.
  std::vector<std::uint64_t> buckets(Histogram::kNumBuckets, 0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(Histogram::quantile_from_bucket_counts(buckets.data(), 0, q),
              0u);
  }
  // 90 observations of ~100, 10 of ~200000: p50 sits in the low bucket,
  // p99 in the high one.
  const std::uint32_t lo = Histogram::bucket_index(100);
  const std::uint32_t hi = Histogram::bucket_index(200000);
  buckets[lo] = 90;
  buckets[hi] = 10;
  EXPECT_EQ(Histogram::quantile_from_bucket_counts(buckets.data(), 100, 0.5),
            Histogram::bucket_upper_edge(lo));
  EXPECT_EQ(Histogram::quantile_from_bucket_counts(buckets.data(), 100, 0.99),
            Histogram::bucket_upper_edge(hi));
  // Consistency with the member walk: the kernel on a histogram's own
  // buckets is value_at_quantile without the observed-max clamp, so the
  // two agree exactly whenever the quantile lands below the max's bucket.
  Histogram h;
  h.record_n(100, 90);
  h.record_n(200000, 10);
  EXPECT_EQ(h.value_at_quantile(0.5),
            Histogram::quantile_from_bucket_counts(buckets.data(), 100, 0.5));
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtOne) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.record(rng.below(1 << 20));
  auto cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev = 0;
  std::uint64_t prev_v = 0;
  for (const auto& p : cdf) {
    EXPECT_GE(p.cumulative, prev);
    EXPECT_GE(p.value, prev_v);
    prev = p.cumulative;
    prev_v = p.value;
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

// Parameterized distribution sweep: histogram P50/P99/P999 must agree with
// the exact oracle within the bucket quantization error.
struct DistroCase {
  const char* name;
  std::uint64_t (*draw)(Rng&);
};

std::uint64_t draw_uniform(Rng& rng) { return rng.below(1'000'000); }
std::uint64_t draw_exponentialish(Rng& rng) {
  return static_cast<std::uint64_t>(-std::log(1.0 - rng.uniform()) * 50'000.0);
}
std::uint64_t draw_bimodal(Rng& rng) {
  return rng.chance(0.9) ? rng.below(10'000) : 1'000'000 + rng.below(100'000);
}
std::uint64_t draw_constant(Rng&) { return 77'777; }
std::uint64_t draw_heavy_tail(Rng& rng) {
  const double u = rng.uniform();
  return static_cast<std::uint64_t>(1000.0 / std::pow(1.0 - u, 1.5));
}

class HistogramDistro : public ::testing::TestWithParam<DistroCase> {};

TEST_P(HistogramDistro, MatchesExactOracle) {
  const DistroCase& c = GetParam();
  Histogram h;
  ExactSample exact;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = c.draw(rng);
    h.record(v);
    exact.record(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto approx = static_cast<double>(h.value_at_quantile(q));
    const auto truth = static_cast<double>(exact.value_at_quantile(q));
    // Allow bucket quantization (~1.6%) plus rank-vs-edge slack.
    EXPECT_LE(std::abs(approx - truth), truth * 0.05 + 2.0)
        << c.name << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, HistogramDistro,
    ::testing::Values(DistroCase{"uniform", draw_uniform},
                      DistroCase{"exponential", draw_exponentialish},
                      DistroCase{"bimodal", draw_bimodal},
                      DistroCase{"constant", draw_constant},
                      DistroCase{"heavy_tail", draw_heavy_tail}),
    [](const ::testing::TestParamInfo<DistroCase>& info) {
      return info.param.name;
    });

TEST(ExactSample, NearestRankDefinition) {
  ExactSample s;
  for (std::uint64_t v = 1; v <= 100; ++v) s.record(v);
  EXPECT_EQ(s.value_at_quantile(0.50), 50u);
  EXPECT_EQ(s.value_at_quantile(0.99), 99u);
  EXPECT_EQ(s.value_at_quantile(1.0), 100u);
  EXPECT_EQ(s.value_at_quantile(0.0), 1u);
}

TEST(ExactSample, EdgeContractMatchesHistogram) {
  // percentile.h's documented edge contract, pinned against the histogram's:
  // empty -> 0 for every q, single sample -> exactly that sample for every q.
  ExactSample empty;
  Histogram empty_h;
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(empty.value_at_quantile(q), 0u);
    EXPECT_EQ(empty.value_at_quantile(q), empty_h.value_at_quantile(q));
  }
  ExactSample one;
  Histogram one_h;
  one.record(98765);
  one_h.record(98765);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(one.value_at_quantile(q), 98765u);
    EXPECT_EQ(one.value_at_quantile(q), one_h.value_at_quantile(q));
  }
}

TEST(StreamingStats, Basics) {
  StreamingStats s;
  s.record(1);
  s.record(3);
  s.record(2);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(StreamingStats, MergeEquivalentToCombinedStream) {
  StreamingStats a, b, all;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100;
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.record(5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(TimeSeries, RecordsInOrder) {
  TimeSeries ts;
  ts.record(1, 10);
  ts.record(2, 20);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.points()[0].t, 1u);
  EXPECT_EQ(ts.points()[1].v, 20u);
}

TEST(TimeSeries, DownsampleKeepsSpikes) {
  TimeSeries ts;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ts.record(i, i == 500 ? 999999u : 10u);
  }
  TimeSeries down = ts.downsample_keep_max(50);
  EXPECT_LE(down.size(), 51u);
  bool found_spike = false;
  for (const auto& p : down.points()) found_spike |= p.v == 999999u;
  EXPECT_TRUE(found_spike);
}

TEST(TimeSeries, MaxInWindow) {
  TimeSeries ts;
  ts.record(10, 5);
  ts.record(20, 50);
  ts.record(30, 7);
  EXPECT_EQ(ts.max_in(0, 15), 5u);
  EXPECT_EQ(ts.max_in(0, 25), 50u);
  EXPECT_EQ(ts.max_in(25, 40), 7u);
  EXPECT_EQ(ts.max_in(40, 50), 0u);
}

TEST(Table, AlignedOutputContainsHeadersAndCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(1.234, 2), "1.23");
  EXPECT_EQ(Table::fmt_ns_as_us(1500, 1), "1.5");
  EXPECT_EQ(Table::fmt_ops(2.5e6), "2.5e+06");
}

}  // namespace
}  // namespace asl
