// Reorderable lock tests (Algorithm 1): standby semantics, window bounds,
// reordering behaviour, starvation freedom, blocking variant.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "locks/mcs.h"
#include "locks/ticket.h"
#include "platform/time.h"
#include "reorder/blocking_reorderable.h"
#include "reorder/reorderable.h"

namespace asl {
namespace {

template <typename L>
class ReorderableTypes : public ::testing::Test {
 public:
  ReorderableLock<L> lock;
};
using Substrates = ::testing::Types<McsLock, TicketLock>;
TYPED_TEST_SUITE(ReorderableTypes, Substrates);

TYPED_TEST(ReorderableTypes, ImmediateLockUnlock) {
  this->lock.lock_immediately();
  EXPECT_FALSE(this->lock.is_free());
  this->lock.unlock();
  EXPECT_TRUE(this->lock.is_free());
}

TYPED_TEST(ReorderableTypes, ReorderOnFreeLockAcquiresFast) {
  const Nanos t0 = now_ns();
  this->lock.lock_reorder(kMaxReorderWindow);
  const Nanos elapsed = now_ns() - t0;
  EXPECT_FALSE(this->lock.is_free());
  // Free lock: Algorithm 1 line 7 short-circuits; no window wait at all.
  EXPECT_LT(elapsed, 5 * kNanosPerMilli);
  this->lock.unlock();
}

TYPED_TEST(ReorderableTypes, ZeroWindowDegeneratesToFifo) {
  // Held lock + zero window: the caller enqueues immediately (LibASL-0 is
  // "the same as the MCS lock").
  this->lock.lock_immediately();
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    this->lock.lock_reorder(0);
    acquired.store(true);
    this->lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired.load());
  this->lock.unlock();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TYPED_TEST(ReorderableTypes, StandbyWaitsOutTheWindow) {
  // Lock held the whole time: a reorder acquisition with window W must not
  // enqueue before ~W has elapsed (it stands by), and must eventually get
  // the lock after release.
  this->lock.lock_immediately();
  const Nanos window = 80 * kNanosPerMilli;
  std::atomic<Nanos> acquired_at{0};
  const Nanos t0 = now_ns();
  std::thread t([&] {
    this->lock.lock_reorder(window);
    acquired_at.store(now_ns());
    this->lock.unlock();
  });
  // Hold past the window so the standby must expire and enqueue.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  this->lock.unlock();
  t.join();
  EXPECT_GE(acquired_at.load() - t0, window);
}

TYPED_TEST(ReorderableTypes, ImmediateOvertakesStandby) {
  // The core reordering property: while a standby competitor waits, a later
  // lock_immediately caller acquires first.
  this->lock.lock_immediately();
  std::vector<int> order;
  std::mutex order_mutex;
  std::atomic<bool> standby_started{false};
  std::thread standby([&] {
    standby_started.store(true);
    this->lock.lock_reorder(kMaxReorderWindow);
    std::lock_guard<std::mutex> g(order_mutex);
    order.push_back(1);  // standby (little core)
    this->lock.unlock();
  });
  while (!standby_started.load()) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread immediate([&] {
    this->lock.lock_immediately();  // arrives later than the standby
    {
      std::lock_guard<std::mutex> g(order_mutex);
      order.push_back(0);  // big core
    }
    this->lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  this->lock.unlock();
  immediate.join();
  standby.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0) << "lock_immediately did not overtake the standby";
  EXPECT_EQ(order[1], 1);
}

TYPED_TEST(ReorderableTypes, WindowIsClampedToMax) {
  // A ridiculous window must still make progress within the starvation
  // bound (kMaxReorderWindow = 100ms), proving the clamp.
  this->lock.lock_immediately();
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    this->lock.lock_reorder(~0ULL);  // "infinite" request
    acquired.store(true);
    this->lock.unlock();
  });
  // Keep the lock held; after the max window the standby must enqueue, and
  // the moment we release it must acquire.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  this->lock.unlock();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TYPED_TEST(ReorderableTypes, TryLockPassesThrough) {
  EXPECT_TRUE(this->lock.try_lock());
  std::atomic<int> r{-1};
  std::thread([&] { r = this->lock.try_lock() ? 1 : 0; }).join();
  EXPECT_EQ(r.load(), 0);
  this->lock.unlock();
}

TYPED_TEST(ReorderableTypes, MutualExclusionMixedModes) {
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t % 2 == 0) {
          this->lock.lock_immediately();
        } else {
          this->lock.lock_reorder(10 * kNanosPerMicro);
        }
        counter = counter + 1;
        this->lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(BlockingReorderable, BasicLockUnlock) {
  BlockingReorderableLock<> lock;
  lock.lock_immediately();
  EXPECT_FALSE(lock.is_free());
  lock.unlock();
  EXPECT_TRUE(lock.is_free());
}

TEST(BlockingReorderable, ReorderSleepsThroughWindow) {
  BlockingReorderableLock<> lock;
  lock.lock_immediately();
  const Nanos window = 40 * kNanosPerMilli;
  std::atomic<Nanos> acquired_at{0};
  const Nanos t0 = now_ns();
  std::thread t([&] {
    lock.lock_reorder(window);
    acquired_at.store(now_ns());
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  lock.unlock();
  t.join();
  EXPECT_GE(acquired_at.load() - t0, window);
}

TEST(BlockingReorderable, ClaimsFreedLockBeforeExpiry) {
  BlockingReorderableLock<> lock;
  lock.lock_immediately();
  std::atomic<Nanos> acquired_at{0};
  const Nanos t0 = now_ns();
  std::thread t([&] {
    lock.lock_reorder(kMaxReorderWindow);
    acquired_at.store(now_ns());
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lock.unlock();  // free long before the 100ms window expires
  t.join();
  // The sleeping standby polls with backoff; it must claim the lock well
  // before the full window would have expired.
  EXPECT_LT(acquired_at.load() - t0, 90 * kNanosPerMilli);
}

TEST(BlockingReorderable, MutualExclusion) {
  BlockingReorderableLock<> lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if (t % 2 == 0) {
          lock.lock_immediately();
        } else {
          lock.lock_reorder(5 * kNanosPerMicro);
        }
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8000u);
}

TEST(Reorderable, SubstrateAccessor) {
  ReorderableLock<McsLock> lock;
  EXPECT_TRUE(lock.substrate().is_free());
}

}  // namespace
}  // namespace asl
