// Real-thread harness tests: worker roles, fixed-duration runs, latency
// split accounting, workload helpers.
#include <gtest/gtest.h>

#include "stats/latency_split.h"
#include "harness/runner.h"
#include "workload/cs_workload.h"

namespace asl {
namespace {

TEST(LatencySplit, RoutesByCore) {
  LatencySplit split;
  split.record(CoreType::kBig, 100);
  split.record(CoreType::kLittle, 2000);
  EXPECT_EQ(split.overall().count(), 2u);
  EXPECT_EQ(split.big().count(), 1u);
  EXPECT_EQ(split.little().count(), 1u);
  EXPECT_LT(split.p99_big(), split.p99_little());
}

TEST(LatencySplit, MergeAccumulates) {
  LatencySplit a, b;
  a.record(CoreType::kBig, 10);
  b.record(CoreType::kBig, 20);
  b.record(CoreType::kLittle, 30);
  a.merge(b);
  EXPECT_EQ(a.overall().count(), 3u);
  EXPECT_EQ(a.big().count(), 2u);
  EXPECT_EQ(a.little().count(), 1u);
}

TEST(M1Layout, FourBigThenLittle) {
  auto roles = m1_layout(8);
  ASSERT_EQ(roles.size(), 8u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(roles[i].type, CoreType::kBig) << i;
  }
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(roles[i].type, CoreType::kLittle) << i;
    EXPECT_GT(roles[i].speed.cs_scale, 1.0);
  }
}

TEST(M1Layout, FewThreadsAllBig) {
  auto roles = m1_layout(3);
  ASSERT_EQ(roles.size(), 3u);
  for (const auto& r : roles) EXPECT_EQ(r.type, CoreType::kBig);
}

TEST(SharedRegion, RmwTouchesRequestedLines) {
  SharedRegion region(8);
  region.rmw(0, 4, 3);  // lines 0..3, three times
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(region.line_value(i), 3u);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(region.line_value(i), 0u);
}

TEST(SharedRegion, RmwWrapsAround) {
  SharedRegion region(4);
  region.rmw(3, 2, 1);  // lines 3 and 0
  EXPECT_EQ(region.line_value(3), 1u);
  EXPECT_EQ(region.line_value(0), 1u);
}

TEST(SpeedFactors, ScalesWork) {
  SpeedFactors little = SpeedFactors::little(3.5, 1.8);
  EXPECT_EQ(little.scale_cs(100), 350u);
  EXPECT_EQ(little.scale_ncs(100), 180u);
  SpeedFactors big = SpeedFactors::big();
  EXPECT_EQ(big.scale_cs(100), 100u);
}

TEST(Runner, RunsForApproxDuration) {
  auto roles = m1_layout(2);
  const Nanos duration = 50 * kNanosPerMilli;
  RunStats stats = run_fixed_duration(
      roles, duration, [](const WorkerCtx&) -> WorkerBody {
        return [](WorkerCtx& ctx) {
          spin_nops(1000);
          ctx.ops += 1;
        };
      });
  EXPECT_GE(stats.elapsed, duration);
  EXPECT_LT(stats.elapsed, duration * 10);  // generous: CI jitter
  EXPECT_GT(stats.total_ops, 0u);
  EXPECT_GT(stats.throughput_ops_per_sec(), 0.0);
}

TEST(Runner, WorkersSeeTheirDeclaredCoreType) {
  auto roles = m1_layout(4, /*num_big=*/2);
  std::atomic<int> big_seen{0};
  std::atomic<int> little_seen{0};
  run_fixed_duration(roles, 10 * kNanosPerMilli,
                     [&](const WorkerCtx& ctx) -> WorkerBody {
                       if (is_big_core()) {
                         big_seen.fetch_add(1);
                       } else {
                         little_seen.fetch_add(1);
                       }
                       (void)ctx;
                       return [](WorkerCtx& c) {
                         spin_nops(100);
                         c.ops += 1;
                       };
                     });
  EXPECT_EQ(big_seen.load(), 2);
  EXPECT_EQ(little_seen.load(), 2);
}

TEST(Runner, LatencyRecordsMergeAcrossWorkers) {
  auto roles = m1_layout(2, 1);
  RunStats stats = run_fixed_duration(
      roles, 20 * kNanosPerMilli, [](const WorkerCtx&) -> WorkerBody {
        return [](WorkerCtx& ctx) {
          const Nanos t0 = now_ns();
          spin_nops(500);
          ctx.record_latency(now_ns() - t0);
          ctx.ops += 1;
        };
      });
  EXPECT_GT(stats.latency.overall().count(), 0u);
  EXPECT_GT(stats.latency.big().count(), 0u);
  EXPECT_GT(stats.latency.little().count(), 0u);
}

}  // namespace
}  // namespace asl
