// Property-based suites (TEST_P sweeps) over the core invariants:
//  * mutual exclusion for every (lock kind x thread count) combination;
//  * AIMD controller convergence and SLO-tracking for percentile x SLO grids;
//  * simulator conservation laws across lock kinds and thread mixes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "asl/libasl.h"
#include "asl/window_controller.h"
#include "harness/experiment.h"
#include "locks/any_lock.h"
#include "locks/clh.h"
#include "locks/cohort.h"
#include "locks/mcs.h"
#include "locks/pthread_lock.h"
#include "locks/shfl_pb.h"
#include "locks/stp_mcs.h"
#include "locks/tas.h"
#include "locks/tas_backoff.h"
#include "locks/ticket.h"
#include "platform/rng.h"
#include "sim/sim_runner.h"

namespace asl {
namespace {

// ------------------------------------------------ mutual exclusion sweep

AnyLock make_lock(const std::string& name) {
  if (name == "tas") return AnyLock::make<TasLock>();
  if (name == "tas_backoff") return AnyLock::make<TasBackoffLock>();
  if (name == "ticket") return AnyLock::make<TicketLock>();
  if (name == "mcs") return AnyLock::make<McsLock>();
  if (name == "clh") return AnyLock::make<ClhLock>();
  if (name == "pthread") return AnyLock::make<PthreadLock>();
  if (name == "stp_mcs") return AnyLock::make<StpMcsLock>();
  if (name == "shfl_pb") return AnyLock::make<ShflPbLock>();
  if (name == "cohort") return AnyLock::make<CohortLock<2>>();
  if (name == "reorder_mcs") return AnyLock::make<ReorderableLock<McsLock>>();
  if (name == "asl_mcs") return AnyLock::make<AslMutex<McsLock>>();
  ADD_FAILURE() << "unknown lock " << name;
  return {};
}

using ExclusionParam = std::tuple<std::string, int>;  // (lock, threads)

class ExclusionSweep : public ::testing::TestWithParam<ExclusionParam> {};

TEST_P(ExclusionSweep, CounterNeverTorn) {
  const auto& [name, nthreads] = GetParam();
  AnyLock lock = make_lock(name);
  const int iters = 6000 / nthreads;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedCoreType scoped(t % 2 == 0 ? CoreType::kBig : CoreType::kLittle);
      for (int i = 0; i < iters; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(nthreads) * iters);
}

INSTANTIATE_TEST_SUITE_P(
    AllLocks, ExclusionSweep,
    ::testing::Combine(
        ::testing::Values("tas", "tas_backoff", "ticket", "mcs", "clh",
                          "pthread", "stp_mcs", "shfl_pb", "cohort",
                          "reorder_mcs", "asl_mcs"),
        ::testing::Values(2, 3, 6)),
    [](const ::testing::TestParamInfo<ExclusionParam>& info) {
      return std::get<0>(info.param) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------- AIMD controller grid

using AimdParam = std::tuple<std::uint32_t, std::uint64_t>;  // (PCT, SLO)

class AimdGrid : public ::testing::TestWithParam<AimdParam> {};

// Property: for a latency function monotone in the window (latency =
// base + window), the controller settles into a band where the achieved
// latency straddles the SLO, for every percentile and SLO scale.
TEST_P(AimdGrid, SettlesIntoSloBand) {
  const auto& [pct, slo] = GetParam();
  WindowController::Config cfg;
  cfg.percentile = pct;
  cfg.initial_window = slo;  // high start (see experiment.h rationale)
  cfg.initial_unit = std::max<std::uint64_t>(slo / 64, 16);
  WindowController ctrl(cfg);
  const std::uint64_t base = slo / 3;  // achievable SLO
  // Drive to steady state.
  for (int i = 0; i < 3000; ++i) {
    ctrl.on_epoch_end(base + ctrl.window(), slo);
  }
  // In steady state the window oscillates in (0.4..1.2]x of the headroom.
  const std::uint64_t headroom = slo - base;
  std::uint64_t max_seen = 0, min_seen = ~0ULL;
  for (int i = 0; i < 500; ++i) {
    ctrl.on_epoch_end(base + ctrl.window(), slo);
    max_seen = std::max(max_seen, ctrl.window());
    min_seen = std::min(min_seen, ctrl.window());
  }
  EXPECT_LE(max_seen, headroom * 12 / 10) << "window overshoots the SLO";
  EXPECT_GE(max_seen, headroom * 4 / 10) << "window leaves headroom unused";
  EXPECT_GE(min_seen, headroom / 4) << "multiplicative decrease too deep";
}

// Property: violation frequency in steady state is approximately
// (100-PCT)/100 — the percentile-targeting design (footnote 4).
TEST_P(AimdGrid, ViolationRateMatchesPercentile) {
  const auto& [pct, slo] = GetParam();
  WindowController::Config cfg;
  cfg.percentile = pct;
  cfg.initial_window = slo / 2;
  cfg.initial_unit = std::max<std::uint64_t>(slo / 64, 16);
  WindowController ctrl(cfg);
  const std::uint64_t base = slo / 3;
  for (int i = 0; i < 2000; ++i) {
    ctrl.on_epoch_end(base + ctrl.window(), slo);
  }
  int violations = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t latency = base + ctrl.window();
    if (latency > slo) ++violations;
    ctrl.on_epoch_end(latency, slo);
  }
  const double rate = static_cast<double>(violations) / kN;
  const double target = (100.0 - pct) / 100.0;
  EXPECT_NEAR(rate, target, target * 0.75 + 0.004)
      << "PCT=" << pct << " slo=" << slo;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AimdGrid,
    ::testing::Combine(::testing::Values(90u, 95u, 99u),
                       ::testing::Values(50'000ULL,      // 50 us
                                         1'000'000ULL,   // 1 ms
                                         100'000'000ULL  // 100 ms
                                         )),
    [](const ::testing::TestParamInfo<AimdParam>& info) {
      return "pct" + std::to_string(std::get<0>(info.param)) + "_slo" +
             std::to_string(std::get<1>(info.param) / 1000) + "us";
    });

// ------------------------------------- randomized AIMD controller invariants

// Drive controllers through 10k randomized feedback steps (latencies from
// one tenth of to ten times the SLO, SLOs across three decades) and check
// the hard invariants after every single step:
//  * the window never drops below min_window (multiplicative decrease is
//    floored) and never exceeds max_window (the SLO-derived cap the config
//    seeds);
//  * under the fixed_unit ablation, every additive-increase step grows the
//    window by exactly the constant unit (or clips at the cap), and the
//    unit itself never changes.
TEST(WindowControllerProperty, RandomizedAimdInvariants) {
  Rng rng(0xA1D);
  for (int variant = 0; variant < 8; ++variant) {
    const bool fixed_unit = (variant % 2) == 1;
    const std::uint64_t slo =
        (std::uint64_t{50} << (variant / 2 * 4)) * 1000;  // 50us .. 200ms-ish
    WindowController::Config cfg;
    cfg.percentile = static_cast<std::uint32_t>(rng.range(50, 99));
    cfg.min_window = rng.range(16, 256);
    cfg.max_window = slo;  // the SLO-derived cap (seed_controller semantics)
    cfg.initial_window = slo;
    cfg.initial_unit = slo / 64 > 16 ? slo / 64 : 16;
    cfg.fixed_unit = fixed_unit;
    WindowController ctrl(cfg);
    const std::uint64_t constant_unit = ctrl.unit();

    for (int i = 0; i < 10'000; ++i) {
      const std::uint64_t before = ctrl.window();
      const std::uint64_t latency = rng.range(slo / 10, slo * 10);
      ctrl.on_epoch_end(latency, slo);
      const std::uint64_t after = ctrl.window();

      ASSERT_GE(after, cfg.min_window) << "variant " << variant << " step " << i;
      ASSERT_LE(after, cfg.max_window) << "variant " << variant << " step " << i;
      if (fixed_unit) {
        ASSERT_EQ(ctrl.unit(), constant_unit)
            << "fixed_unit must pin the growth unit";
        if (latency <= slo) {
          const std::uint64_t expected =
              std::min(before + constant_unit, cfg.max_window);
          ASSERT_EQ(after, expected)
              << "growth steps must be exactly the constant unit";
        }
      } else if (latency > slo) {
        // Re-derived unit stays on the (100-PCT)% of the shrunken window,
        // floored — never zero, so growth cannot stall.
        ASSERT_GE(ctrl.unit(), cfg.min_unit);
      }
    }
  }
}

// ------------------------------------------------- simulator conservation

using SimParam = std::tuple<sim::LockKind, std::uint32_t>;  // (lock, littles)

class SimConservation : public ::testing::TestWithParam<SimParam> {};

// Properties that must hold for every lock model and thread mix:
//  * cs_total == cs_big + cs_little;
//  * identical seeds give identical results;
//  * latency percentiles are monotone (p50 <= p99 <= max).
TEST_P(SimConservation, CountsAndDeterminism) {
  const auto& [kind, littles] = GetParam();
  sim::SimConfig cfg;
  cfg.lock = kind;
  cfg.big_threads = 2;
  cfg.little_threads = littles;
  cfg.warmup = 2 * sim::kMilli;
  cfg.measure = 30 * sim::kMilli;
  auto gen = sim::single_cs_workload(400, 300);
  sim::SimResult a = sim::run_sim(cfg, gen);
  sim::SimResult b = sim::run_sim(cfg, gen);
  EXPECT_EQ(a.cs_total, a.cs_big + a.cs_little);
  EXPECT_GT(a.cs_total, 0u);
  EXPECT_EQ(a.cs_total, b.cs_total);
  EXPECT_EQ(a.latency.p99_overall(), b.latency.p99_overall());
  EXPECT_LE(a.latency.overall().p50(), a.latency.overall().p99());
  EXPECT_LE(a.latency.overall().p99(), a.latency.overall().max());
  if (littles == 0) {
    EXPECT_EQ(a.cs_little, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SimConservation,
    ::testing::Combine(::testing::Values(sim::LockKind::kMcs,
                                         sim::LockKind::kTicket,
                                         sim::LockKind::kTas,
                                         sim::LockKind::kPthread,
                                         sim::LockKind::kStpMcs,
                                         sim::LockKind::kShflPb,
                                         sim::LockKind::kReorderable),
                       ::testing::Values(0u, 2u)),
    [](const ::testing::TestParamInfo<SimParam>& info) {
      std::string name = sim::to_string(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_l" + std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------- SLO tracking across workloads

class SloTracking : public ::testing::TestWithParam<std::uint64_t> {};

// For every achievable SLO, the little-core P99 must land in [SLO/2, 1.3*SLO]
// on the canonical Bench-1 workload (tracking from both sides: not violated,
// not overly conservative).
TEST_P(SloTracking, Bench1LittleP99InBand) {
  const std::uint64_t slo_us = GetParam();
  sim::SimConfig cfg =
      sim::scale_durations(sim::bench1_asl_config(slo_us * sim::kMicro), 0.4);
  sim::SimResult r = sim::run_sim(cfg, sim::bench1_workload());
  EXPECT_LE(r.latency.p99_little(), slo_us * sim::kMicro * 13 / 10);
  EXPECT_GE(r.latency.p99_little(), slo_us * sim::kMicro / 2);
}

INSTANTIATE_TEST_SUITE_P(Slos, SloTracking,
                         ::testing::Values(30u, 45u, 60u, 75u, 90u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "slo" + std::to_string(i.param) + "us";
                         });

}  // namespace
}  // namespace asl
