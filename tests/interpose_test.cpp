// pthread interposition shim tests. This binary links libasl_pthread ahead
// of libpthread, so pthread_mutex_lock here resolves to the LibASL shim —
// the Section 3.3 deployment, in-process.
#include <gtest/gtest.h>
#include <pthread.h>

#include <atomic>
#include <thread>
#include <vector>

#include "asl/interpose.h"
#include "platform/topology.h"

namespace {

TEST(Interpose, RedirectsPthreadMutexLock) {
  const std::uint64_t before = asl_interpose_redirect_count();
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  pthread_mutex_lock(&mutex);
  pthread_mutex_unlock(&mutex);
  EXPECT_GT(asl_interpose_redirect_count(), before);
}

TEST(Interpose, TrylockSemantics) {
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  EXPECT_EQ(pthread_mutex_trylock(&mutex), 0);
  std::atomic<int> second{-1};
  std::thread([&] { second = pthread_mutex_trylock(&mutex); }).join();
  EXPECT_EQ(second.load(), 16);  // EBUSY
  EXPECT_EQ(pthread_mutex_unlock(&mutex), 0);
  EXPECT_EQ(pthread_mutex_trylock(&mutex), 0);
  pthread_mutex_unlock(&mutex);
}

TEST(Interpose, MutualExclusionThroughShim) {
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        pthread_mutex_lock(&mutex);
        counter = counter + 1;
        pthread_mutex_unlock(&mutex);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 20000u);
}

TEST(Interpose, DistinctMutexesGetDistinctShadows) {
  pthread_mutex_t a = PTHREAD_MUTEX_INITIALIZER;
  pthread_mutex_t b = PTHREAD_MUTEX_INITIALIZER;
  pthread_mutex_lock(&a);
  // If a and b shared a shadow, this would deadlock.
  pthread_mutex_lock(&b);
  pthread_mutex_unlock(&b);
  pthread_mutex_unlock(&a);
  SUCCEED();
}

TEST(Interpose, EpochApiExported) {
  asl::ScopedCoreType little(asl::CoreType::kLittle);
  EXPECT_EQ(asl_epoch_start(1), 0);
  EXPECT_EQ(asl_epoch_end(1, 1'000'000), 0);
  EXPECT_EQ(asl_epoch_start(-1), -1);
}

TEST(Interpose, WorksAcrossCoreTypes) {
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      asl::ScopedCoreType scoped(t < 2 ? asl::CoreType::kBig
                                       : asl::CoreType::kLittle);
      asl_epoch_start(2);
      for (int i = 0; i < 2000; ++i) {
        pthread_mutex_lock(&mutex);
        counter = counter + 1;
        pthread_mutex_unlock(&mutex);
      }
      asl_epoch_end(2, 50'000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 8000u);
}

}  // namespace
