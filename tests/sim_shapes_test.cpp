// Paper-shape property tests: the qualitative results of Section 2 and 4
// must hold on the simulated AMP. These are the invariants the figure
// benches print; failing here means the reproduction lost the paper's story.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "db/engine.h"
#include "harness/capacity_probe.h"
#include "harness/experiment.h"
#include "server/sim_kv_service.h"
#include "sim/sim_runner.h"
#include "workload/open_loop.h"

namespace asl::sim {
namespace {

// Shorter windows keep the whole suite fast; shapes are robust to this.
SimConfig fast(SimConfig cfg) { return scale_durations(cfg, 0.4); }

// ---------------------------------------------------------------- Figure 1
TEST(Shapes, McsThroughputCollapsesOnLittleCores) {
  // "over 50% degradation from 4 big cores to all cores" (Section 2.2).
  auto gen = collapse_workload(4, 150);
  SimResult four = run_sim(
      fast(collapse_config(4, LockKind::kMcs, TasAffinity::kSymmetric)), gen);
  SimResult eight = run_sim(
      fast(collapse_config(8, LockKind::kMcs, TasAffinity::kSymmetric)), gen);
  EXPECT_LT(eight.cs_throughput(), four.cs_throughput() * 0.55)
      << "FIFO throughput must collapse when little cores join";
}

TEST(Shapes, TasLittleAffinityThroughputBelowMcs) {
  // Figure 1: TAS with little-core affinity is ~35% worse than MCS at 8
  // threads.
  auto gen = collapse_workload(4, 150);
  SimResult mcs = run_sim(
      fast(collapse_config(8, LockKind::kMcs, TasAffinity::kSymmetric)), gen);
  SimResult tas = run_sim(
      fast(collapse_config(8, LockKind::kTas, TasAffinity::kLittleCores)),
      gen);
  EXPECT_LT(tas.cs_throughput(), mcs.cs_throughput() * 0.9);
}

TEST(Shapes, TasLatencyCollapsesRelativeToMcs) {
  // Figure 1b: TAS tail latency is a multiple of MCS's (6.2x there).
  auto gen = collapse_workload(4, 150);
  SimResult mcs = run_sim(
      fast(collapse_config(8, LockKind::kMcs, TasAffinity::kSymmetric)), gen);
  SimResult tas = run_sim(
      fast(collapse_config(8, LockKind::kTas, TasAffinity::kLittleCores)),
      gen);
  EXPECT_GT(tas.latency.p99_overall(), mcs.latency.p99_overall() * 2);
}

// ---------------------------------------------------------------- Figure 4
TEST(Shapes, TasBigAffinityBeatsMcsThroughputButNotLatency) {
  // Figure 4: big-core-affinity TAS has higher throughput (+32% there) but
  // still a latency collapse.
  auto gen = collapse_workload(64, 1500);
  SimResult mcs = run_sim(
      fast(collapse_config(8, LockKind::kMcs, TasAffinity::kSymmetric)), gen);
  SimResult tas = run_sim(
      fast(collapse_config(8, LockKind::kTas, TasAffinity::kBigCores)), gen);
  EXPECT_GT(tas.cs_throughput(), mcs.cs_throughput() * 1.1);
  EXPECT_GT(tas.latency.p99_overall(), mcs.latency.p99_overall() * 2);
}

// ---------------------------------------------------------------- Figure 5
TEST(Shapes, ProportionTradesLatencyForThroughput) {
  // Larger big:little proportion -> more throughput, longer little-core
  // tail latency (the static trade-off LibASL replaces).
  SimConfig base = fast(bench1_config(LockKind::kShflPb));
  base.pb_proportion = 1;
  SimResult low = run_sim(base, bench1_workload());
  base.pb_proportion = 20;
  SimResult high = run_sim(base, bench1_workload());
  EXPECT_GT(high.cs_throughput(), low.cs_throughput() * 1.05);
  EXPECT_GT(high.latency.p99_little(), low.latency.p99_little() * 1.5);
}

// ---------------------------------------------------------------- Figure 8a
TEST(Shapes, AslZeroSloFallsBackToFifo) {
  // LibASL-0: "the SLO is impossible to achieve (falls back to FIFO)" —
  // within ~15% of MCS throughput.
  SimResult mcs = run_sim(fast(bench1_config(LockKind::kMcs)),
                          bench1_workload());
  SimResult asl0 = run_sim(fast(bench1_asl_config(0)), bench1_workload());
  EXPECT_NEAR(asl0.cs_throughput() / mcs.cs_throughput(), 1.0, 0.15);
}

TEST(Shapes, AslThroughputGrowsWithSlo) {
  SimResult s25 = run_sim(fast(bench1_asl_config(25 * kMicro)),
                          bench1_workload());
  SimResult s50 = run_sim(fast(bench1_asl_config(50 * kMicro)),
                          bench1_workload());
  SimResult smax = run_sim(fast(bench1_asl_config(0, /*use_slo=*/false)),
                           bench1_workload());
  EXPECT_GE(s50.cs_throughput(), s25.cs_throughput() * 0.98);
  EXPECT_GE(smax.cs_throughput(), s50.cs_throughput() * 0.98);
}

TEST(Shapes, AslMaxBeatsMcsSubstantially) {
  // LibASL-MAX vs MCS: the paper reports 1.7x on Bench-1.
  SimResult mcs = run_sim(fast(bench1_config(LockKind::kMcs)),
                          bench1_workload());
  SimResult smax = run_sim(fast(bench1_asl_config(0, /*use_slo=*/false)),
                           bench1_workload());
  EXPECT_GT(smax.cs_throughput(), mcs.cs_throughput() * 1.3);
}

TEST(Shapes, AslLittleP99TracksSlo) {
  // Figure 8b: "the tail latency of little cores sticks straightly to the
  // Y=X line". Check the little-core P99 lands within [0.5, 1.3]x SLO for
  // achievable SLOs.
  for (Time slo : {40 * kMicro, 60 * kMicro, 90 * kMicro}) {
    SimResult r = run_sim(fast(bench1_asl_config(slo)), bench1_workload());
    EXPECT_LE(r.latency.p99_little(), slo * 13 / 10)
        << "SLO " << slo << " violated";
    EXPECT_GE(r.latency.p99_little(), slo / 2)
        << "SLO " << slo << " left throughput on the table";
  }
}

TEST(Shapes, AslBigLatencyShorterThanLittle) {
  SimResult r = run_sim(fast(bench1_asl_config(60 * kMicro)),
                        bench1_workload());
  EXPECT_LT(r.latency.p99_big(), r.latency.p99_little());
}

// ---------------------------------------------------------------- Figure 8e
TEST(Shapes, AslMaxThroughputDoesNotDropWithLittleThreads) {
  // Figure 8e: "The throughput of LibASL-MAX does not drop at all" when
  // scaling from 4 big to 4+4.
  auto gen = collapse_workload(64, 1500);
  SimConfig big4 = fast(collapse_config(4, LockKind::kReorderable,
                                        TasAffinity::kSymmetric));
  big4.policy = Policy::kAsl;
  big4.use_slo = false;
  SimConfig all8 = fast(collapse_config(8, LockKind::kReorderable,
                                        TasAffinity::kSymmetric));
  all8.policy = Policy::kAsl;
  all8.use_slo = false;
  SimResult r4 = run_sim(big4, gen);
  SimResult r8 = run_sim(all8, gen);
  EXPECT_GE(r8.cs_throughput(), r4.cs_throughput() * 0.93);
}

// ---------------------------------------------------------------- Figure 8g
TEST(Shapes, LittleCoresHelpAtLowContention) {
  // At low contention LibASL(+little cores) beats big-cores-only (the paper
  // measures +68%).
  auto gen = contention_workload(5);  // 10^5 NOPs between CSes
  SimConfig only_big = fast(collapse_config(4, LockKind::kMcs,
                                            TasAffinity::kSymmetric));
  SimConfig asl = fast(collapse_config(8, LockKind::kReorderable,
                                       TasAffinity::kSymmetric));
  asl.policy = Policy::kAsl;
  asl.use_slo = false;
  SimResult rb = run_sim(only_big, gen);
  SimResult ra = run_sim(asl, gen);
  EXPECT_GT(ra.cs_throughput(), rb.cs_throughput() * 1.3);
}

TEST(Shapes, AslMatchesBigOnlyAtHighContention) {
  // At extreme contention LibASL parks the little cores and matches MCS-4.
  auto gen = contention_workload(0);
  SimConfig only_big = fast(collapse_config(4, LockKind::kMcs,
                                            TasAffinity::kSymmetric));
  SimConfig asl = fast(collapse_config(8, LockKind::kReorderable,
                                       TasAffinity::kSymmetric));
  asl.policy = Policy::kAsl;
  asl.use_slo = false;
  SimResult rb = run_sim(only_big, gen);
  SimResult ra = run_sim(asl, gen);
  EXPECT_GT(ra.cs_throughput(), rb.cs_throughput() * 0.8);
}

// ---------------------------------------------------------------- Figure 8h
TEST(Shapes, OversubscribedFifoParkingIsPathological) {
  // Spin-then-park MCS pays a wakeup on every handover; the pthread-like
  // barging lock avoids most of them (paper: STP-MCS 96% worse).
  SimConfig stp = fast(bench1_config(LockKind::kStpMcs));
  stp.machine.threads_per_core = 2;
  stp.big_threads = 8;
  stp.little_threads = 8;
  SimConfig pth = stp;
  pth.lock = LockKind::kPthread;
  SimResult rs = run_sim(stp, bench1_workload());
  SimResult rp = run_sim(pth, bench1_workload());
  // The paper measures STP-MCS at 4% of pthread on M1; our model reproduces
  // the direction (every handover pays a serial wakeup vs pthread's frequent
  // cheap barges) at a milder magnitude.
  EXPECT_LT(rs.cs_throughput(), rp.cs_throughput() * 0.7);
}

TEST(Shapes, BlockingAslBeatsPthreadWhenOversubscribed) {
  // Figure 8h: blocking LibASL outperforms pthread_mutex_lock (up to 80%).
  SimConfig pth = fast(bench1_config(LockKind::kPthread));
  pth.machine.threads_per_core = 2;
  pth.big_threads = 8;
  pth.little_threads = 8;
  SimConfig asl = pth;
  asl.lock = LockKind::kBlockingReorderable;
  asl.policy = Policy::kAsl;
  asl.use_slo = false;
  SimResult rp = run_sim(pth, bench1_workload());
  SimResult ra = run_sim(asl, bench1_workload());
  EXPECT_GT(ra.cs_throughput(), rp.cs_throughput() * 1.1);
}

// ----------------------------------------------------------------- DB shapes
TEST(Shapes, UpscaledbTasBigAffinityStory) {
  // Section 4.2: in upscaledb TAS (big-affinity) has much higher throughput
  // than MCS but much longer tail latency; LibASL-MAX beats TAS.
  DbWorkload w = make_db_workload(DbKind::kUpscaleDb);
  SimResult mcs = run_sim(fast(db_config(w, LockKind::kMcs)), w.gen);
  SimResult tas = run_sim(fast(db_config(w, LockKind::kTas)), w.gen);
  SimResult asl = run_sim(fast(db_asl_config(w, 0, /*use_slo=*/false)), w.gen);
  EXPECT_GT(tas.epoch_throughput(), mcs.epoch_throughput() * 1.2);
  EXPECT_GT(tas.latency.p99_overall(), mcs.latency.p99_overall() * 15 / 10);
  EXPECT_GT(asl.epoch_throughput(), tas.epoch_throughput() * 0.95);
}

TEST(Shapes, KyotoAslKeepsSloWhileBeatingMcs) {
  DbWorkload w = make_db_workload(DbKind::kKyoto);
  SimResult mcs = run_sim(fast(db_config(w, LockKind::kMcs)), w.gen);
  SimResult asl = run_sim(fast(db_asl_config(w, w.cdf_slo)), w.gen);
  EXPECT_GT(asl.epoch_throughput(), mcs.epoch_throughput());
  EXPECT_LE(asl.latency.p99_little(), w.cdf_slo * 13 / 10);
}

}  // namespace
}  // namespace asl::sim

// --------------------------------------------------- twin queueing shapes
// The simulated twin of the KV service (DESIGN.md §5) runs in virtual time,
// so classic open-loop queueing shapes — latency growing with offered load,
// rejections appearing only past saturation, zipfian hot shards — are exact,
// assertable facts here, where the real service can only be accounted.
namespace asl::server {
namespace {

// The shared heavy-cost profile (scenarios.h): saturation a few times the
// nominal rate, so the shape ladder stays at a few thousand virtual events
// per run. Shared with kv_batch_sweep and the batch+shed golden, so these
// assertions, the bench table and the pinned CSV describe one profile.
KvScenario shape_scenario(const char* name, double rate_scale) {
  return make_overloaded_kv_scenario(name, rate_scale);
}

std::uint64_t mean_latency_ns(const SimServiceReport& report) {
  std::uint64_t sum = 0, n = 0;
  for (const ClassReport& c : report.service.classes) {
    sum += static_cast<std::uint64_t>(c.total.overall().mean() *
                                      static_cast<double>(c.completed));
    n += c.completed;
  }
  return n == 0 ? 0 : sum / n;
}

TEST(TwinShapes, MeanLatencyMonotoneInOfferedLoad) {
  // Open-loop queueing 101: with service capacity fixed, mean end-to-end
  // latency must not decrease as offered load grows. The ladder spans idle
  // (1x) to past saturation (16x); everything is virtual time, so this is
  // an exact regression, not a statistical one.
  std::uint64_t prev = 0;
  for (const double scale : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const SimServiceReport r =
        run_sim_kv(shape_scenario("kv_uniform_steady", scale));
    ASSERT_GT(r.total_completed(), 0u) << "scale " << scale;
    const std::uint64_t mean = mean_latency_ns(r);
    EXPECT_GE(mean, prev) << "mean latency dipped at offered scale " << scale;
    prev = mean;
  }
}

TEST(TwinShapes, RejectionsOnlyPastSaturation) {
  // Below saturation the bounded queues never fill: exactly zero rejections
  // (in virtual time "~0" is 0). Past saturation the excess arrival mass
  // must surface as rejections — backpressure, not silent queue growth —
  // while the drain invariant (completed == accepted) keeps holding.
  for (const double scale : {1.0, 2.0, 4.0}) {
    const SimServiceReport r =
        run_sim_kv(shape_scenario("kv_uniform_steady", scale));
    EXPECT_EQ(r.total_rejected(), 0u) << "below saturation, scale " << scale;
    EXPECT_EQ(r.total_completed(), r.total_accepted());
  }
  const SimServiceReport over =
      run_sim_kv(shape_scenario("kv_uniform_steady", 32.0));
  EXPECT_GT(over.total_rejected(), 0u) << "past saturation";
  EXPECT_EQ(over.total_completed(), over.total_accepted());
}

TEST(TwinShapes, ZeroCapacityConfigClampsLikeTheRealQueue) {
  // BoundedQueue clamps capacity to 1; the twin must admit under the same
  // bound, not reject everything on a degenerate config.
  KvScenario sc = shape_scenario("kv_uniform_steady", 1.0);
  sc.horizon = 5 * kNanosPerMilli;
  sc.service.queue_capacity = 0;
  const SimServiceReport r = run_sim_kv(sc);
  EXPECT_GT(r.total_completed(), 0u);
  EXPECT_EQ(r.total_completed(), r.total_accepted());
  for (const SimShardStats& s : r.shards) {
    EXPECT_LE(s.max_depth, 1u);
  }
}

// ------------------------------------------- batching + class-aware shedding
// DESIGN.md §6: the batch drain amortizes one lock handoff over up to
// batch_k requests, and the admission policy sheds the loose-SLO class
// first under backpressure. Virtual time makes both claims exact.

TEST(TwinShapes, ThroughputMonotoneNonDecreasingInBatchK) {
  // At fixed offered load (8x nominal, past saturation) a larger batch_k
  // must never complete less of the offered trace within the same arrival
  // window: one handoff per batch strictly reduces per-request lock
  // overhead, so service rate — and with it admitted-and-completed work —
  // is non-decreasing in k. Checked with shedding off and on; the horizon
  // is fixed, so monotone completions are monotone throughput.
  for (const bool shed : {false, true}) {
    std::uint64_t prev = 0;
    for (const std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
      KvScenario sc = shape_scenario("kv_batch_shed", 8.0);
      sc.service.batch_k = k;
      if (!shed) sc.service.classes[1].admission = AdmissionPolicy{};
      const SimServiceReport r = run_sim_kv(sc);
      EXPECT_EQ(r.total_completed(), r.total_accepted());
      EXPECT_GE(r.total_completed(), prev)
          << "batch_k " << k << " shed " << shed;
      prev = r.total_completed();
    }
  }
}

// Traffic where the tight class alone is sub-saturated but the mix is past
// saturation: gets at 2x their nominal rate, puts at 10x. Without
// shedding the shared queue backlog violates the tight SLO; with the put
// class shedding at a low watermark, gets keep the headroom.
KvScenario shed_contrast_scenario(bool shed) {
  KvScenario sc = shape_scenario("kv_batch_shed", 1.0);
  // Isolate admission control: batch_k = 1, so capacity is the unbatched
  // service's and the contrast below is purely the shed policy's doing.
  sc.service.batch_k = 1;
  sc.load[0].arrivals = sc.load[0].arrivals.with_rate_scale(2.0);
  sc.load[1].arrivals = sc.load[1].arrivals.with_rate_scale(10.0);
  sc.service.classes[1].admission =
      shed ? AdmissionPolicy{1, 0.05} : AdmissionPolicy{};
  return sc;
}

TEST(TwinShapes, LooseClassShedsFirstPastSaturation) {
  const SimServiceReport with_shed = run_sim_kv(shed_contrast_scenario(true));
  const SimServiceReport baseline = run_sim_kv(shed_contrast_scenario(false));
  const ClassReport& tight = with_shed.service.classes[0];
  const ClassReport& loose = with_shed.service.classes[1];
  const ClassReport& tight_base = baseline.service.classes[0];

  // Past saturation the loose class absorbs the backpressure: its sheds
  // are strictly positive and its rejection count dominates the tight
  // class's.
  EXPECT_GT(loose.shed, 0u);
  EXPECT_GT(loose.rejected, tight.rejected);
  // The point of shedding: the tight class's p99 stays within its SLO at
  // an offered load where the class-blind baseline violates it.
  EXPECT_LE(tight.total.overall().p99(), tight.slo_ns)
      << "tight class must hold its SLO when the loose class sheds";
  EXPECT_GT(tight_base.total.overall().p99(), tight_base.slo_ns)
      << "the unshedded baseline must violate at this load, or the "
         "contrast is vacuous";
  // Sheds are deliberate rejections, never phantom requests: conservation
  // and the drain invariant hold with shedding active.
  EXPECT_LE(loose.shed, loose.rejected);
  EXPECT_EQ(with_shed.total_completed(), with_shed.total_accepted());
  EXPECT_EQ(with_shed.offered,
            with_shed.total_accepted() + with_shed.total_rejected());
}

TEST(TwinShapes, NoShedsBelowSaturation) {
  // At the nominal rate the watermark is never reached: the shed scenario
  // behaves exactly like its protected counterpart — zero sheds, zero
  // rejections.
  const SimServiceReport r =
      run_sim_kv(shape_scenario("kv_batch_shed", 1.0));
  EXPECT_EQ(r.service.total_shed(), 0u);
  EXPECT_EQ(r.total_rejected(), 0u);
  EXPECT_EQ(r.total_completed(), r.total_accepted());
}

// ---------------------------------------------------- engine cost classes
// DESIGN.md §7: the twin prices each op by the engine's per-op CostProfile,
// so engine identity — not just offered load — shapes capacity.

TEST(TwinShapes, AllScenariosRunOnEveryEngineWithInvariantsIntact) {
  // The acceptance bar of the engine subsystem: every registered scenario
  // runs unmodified on every registered engine, only
  // KvServiceConfig::engine differing, with the conservation laws exact.
  for (const std::string& engine : db::kv_engine_names()) {
    for (const std::string& name : kv_scenario_names()) {
      KvScenario sc = make_kv_scenario(name, engine);
      sc.horizon = 50 * kNanosPerMilli;  // a slice is enough for invariants
      const SimServiceReport r = run_sim_kv(sc);
      ASSERT_GT(r.total_completed(), 0u) << engine << "/" << name;
      EXPECT_EQ(r.offered, r.total_accepted() + r.total_rejected())
          << engine << "/" << name;
      EXPECT_EQ(r.total_completed(), r.total_accepted())
          << engine << "/" << name;
      for (const SimShardStats& s : r.shards) {
        EXPECT_EQ(s.completed, s.accepted) << engine << "/" << name;
      }
    }
  }
}

TEST(TwinShapes, LockRoutesSplitByEngineProfileFlag) {
  // The twin's model of the lock-free read route (DESIGN.md §8), mirrored
  // from the real-path counters: on an engine whose profile claims
  // get_lock_free (mvcc) no get ever enters the shard lock's critical
  // section — zero get-route acquisitions, zero in-CS gets — while on a
  // locked engine (hash) no get ever takes the lock-free route. Both
  // engines publish puts under the lock. Deterministic, so exact.
  for (const std::string& engine : {std::string("mvcc"), std::string("hash")}) {
    KvScenario sc = make_kv_scenario("kv_uniform_steady", engine);
    sc.horizon = 50 * kNanosPerMilli;
    const SimServiceReport r = run_sim_kv(sc);
    const LockRouteStats& routes = r.lock_routes;
    ASSERT_GT(r.total_completed(), 0u) << engine;
    EXPECT_GT(routes.put_route_acquires, 0u)
        << engine << ": puts always publish under the shard lock";
    if (engine == "mvcc") {
      EXPECT_EQ(routes.get_route_acquires, 0u)
          << "mvcc gets must never acquire the shard lock in the twin";
      EXPECT_EQ(routes.cs_gets, 0u);
      EXPECT_GT(routes.lockfree_gets, 0u);
    } else {
      EXPECT_EQ(routes.lockfree_gets, 0u)
          << "hash has no lock-free read path in the twin";
      EXPECT_GT(routes.cs_gets, 0u);
      EXPECT_GT(routes.get_route_acquires, 0u);
    }
    // Route totals tie back to completions: every completed get took
    // exactly one of the two routes (class 0 is the get stream by the
    // scenarios.cpp convention).
    EXPECT_EQ(routes.cs_gets + routes.lockfree_gets,
              r.service.classes.at(0).completed)
        << engine;
  }
}

// Offered load with the standard key mix but the put share scaled: class 0
// is the get stream, class 1 the put stream (scenarios.cpp convention).
KvScenario lsm_mix_scenario(double get_scale, double put_scale) {
  KvScenario sc = shape_scenario("kv_uniform_steady", 1.0);
  sc.service.engine = "lsm";
  sc.horizon = 10 * kNanosPerMilli;
  scale_class_rates(sc.load, 0, get_scale);
  scale_class_rates(sc.load, 1, put_scale);
  return sc;
}

TEST(TwinShapes, LsmPutHeavyCapacityBelowGetHeavyCapacity) {
  // The LSM put-amplification satellite: at equal offered rates, the
  // put-heavy mix must saturate earlier than the get-heavy mix on an LSM
  // shard — puts carry the memtable append + amortized compaction bill
  // under the meta lock, gets only a snapshot. Both a direct equal-load
  // comparison and the probe's capacity must agree, deterministically.
  const KvScenario get_heavy = lsm_mix_scenario(1.0, 0.25);
  const KvScenario put_heavy = lsm_mix_scenario(1.0 / 6, 3.0);

  // Equal offered load, well past the put-heavy mix's saturation: the
  // put-heavy mix completes less of it within the same horizon.
  const double kOverload = 8.0;
  auto completed_at = [&](const KvScenario& base) {
    KvScenario sc = base;
    scale_load_rates(sc.load,
                     kOverload * 14'000.0 / nominal_rate_per_sec(sc.load));
    const SimServiceReport r = run_sim_kv(sc);
    EXPECT_EQ(r.total_completed(), r.total_accepted());
    return r.total_completed();
  };
  EXPECT_LT(completed_at(put_heavy), completed_at(get_heavy));

  // And as found capacity: max offered rate of each whole mix that still
  // meets every class SLO.
  auto capacity_of = [](const KvScenario& base) {
    bench::CapacityProbeConfig cfg;
    cfg.start_rate = nominal_rate_per_sec(base.load);
    cfg.growth = 2.0;
    cfg.tolerance = 0.1;
    cfg.max_trials = 20;
    const double nominal = cfg.start_rate;
    return bench::find_capacity(cfg, [&base, nominal](double rate) {
      KvScenario sc = base;
      scale_load_rates(sc.load, rate / nominal);
      return report_meets_slos(run_sim_kv(sc).service);
    });
  };
  const bench::CapacityResult get_cap = capacity_of(get_heavy);
  const bench::CapacityResult put_cap = capacity_of(put_heavy);
  ASSERT_TRUE(get_cap.feasible && get_cap.bracketed);
  ASSERT_TRUE(put_cap.feasible && put_cap.bracketed);
  EXPECT_LT(put_cap.max_rate, get_cap.max_rate)
      << "put amplification must cost LSM capacity";
}

TEST(TwinShapes, ZipfHotShardSkewVisibleInDepthStats) {
  // Zipfian popularity concentrates the hottest keys' shards: at the same
  // offered rate, the busiest shard's time-integrated queue depth must stand
  // farther above the shard mean than under uniform keys, and the deepest
  // backlog must be deeper.
  const double scale = 4.0;  // high utilization, still below saturation
  const SimServiceReport uni =
      run_sim_kv(shape_scenario("kv_uniform_steady", scale));
  const SimServiceReport zipf =
      run_sim_kv(shape_scenario("kv_zipf_steady", scale));
  ASSERT_EQ(uni.shards.size(), zipf.shards.size());

  const auto skew = [](const SimServiceReport& r) {
    std::uint64_t max_integral = 0, sum = 0;
    for (const SimShardStats& s : r.shards) {
      max_integral = std::max(max_integral, s.depth_integral);
      sum += s.depth_integral;
    }
    const double mean =
        static_cast<double>(sum) / static_cast<double>(r.shards.size());
    return mean == 0 ? 0.0 : static_cast<double>(max_integral) / mean;
  };
  EXPECT_GT(skew(zipf), skew(uni))
      << "hot-shard skew must show in depth integrals";

  const auto max_depth = [](const SimServiceReport& r) {
    std::uint64_t d = 0;
    for (const SimShardStats& s : r.shards) d = std::max(d, s.max_depth);
    return d;
  };
  EXPECT_GT(max_depth(zipf), max_depth(uni))
      << "the hottest zipf shard must queue deeper";
}

}  // namespace
}  // namespace asl::server
