// Tests for second-round extensions: the asymmetry-aware reader-writer lock,
// LsmKv range scans and MiniSql UPDATE/DELETE.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "db/lsmkv.h"
#include "db/minisql.h"
#include "locks/rw_lock.h"
#include "platform/rng.h"

namespace asl {
namespace {

// ------------------------------------------------------------------ RwLock

TEST(RwLock, ReadersShareWritersExclude) {
  RwLock<> lock;
  lock.lock_shared();
  EXPECT_TRUE(lock.try_lock_shared());  // second reader coexists
  lock.unlock_shared();
  std::atomic<int> writer_got{-1};
  std::thread([&] { writer_got = lock.try_lock() ? 1 : 0; }).join();
  EXPECT_EQ(writer_got.load(), 0);  // reader blocks writer
  lock.unlock_shared();
  EXPECT_TRUE(lock.is_free());
}

TEST(RwLock, WriterExcludesReaders) {
  RwLock<> lock;
  lock.lock();
  std::atomic<int> reader_got{-1};
  std::thread([&] { reader_got = lock.try_lock_shared() ? 1 : 0; }).join();
  EXPECT_EQ(reader_got.load(), 0);
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  lock.unlock_shared();
}

TEST(RwLock, WriterPreferenceDrainsReaders) {
  RwLock<> lock;
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_done{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        lock.lock_shared();
        lock.unlock_shared();
      }
    });
  }
  std::thread writer([&] {
    lock.lock();  // must not starve despite churning readers
    writer_done.store(true);
    lock.unlock();
  });
  writer.join();
  EXPECT_TRUE(writer_done.load());
  stop.store(true);
  for (auto& t : readers) t.join();
}

TEST(RwLock, SharedWriteInvariant) {
  // Writers mutate, readers verify consistency of a two-word invariant that
  // only holds when no writer is mid-update.
  RwLock<> lock;
  std::int64_t a = 0, b = 0;  // invariant: a == -b outside writer sections
  std::atomic<std::uint64_t> violations{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&] {  // readers
      while (!stop.load()) {
        SharedGuard<RwLock<>> guard(lock);
        if (a != -b) violations.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 2; ++i) {
    threads.emplace_back([&, i] {  // writers
      ScopedCoreType scoped(i == 0 ? CoreType::kBig : CoreType::kLittle);
      for (int n = 0; n < 4000; ++n) {
        lock.lock();
        a += 1;
        b -= 1;
        lock.unlock();
      }
    });
  }
  // Writers finish; then stop the readers.
  threads[2].join();
  threads[3].join();
  stop.store(true);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(a, 8000);
  EXPECT_EQ(b, -8000);
}

TEST(RwLock, ReaderCountVisible) {
  RwLock<> lock;
  EXPECT_EQ(lock.reader_count(), 0u);
  lock.lock_shared();
  EXPECT_EQ(lock.reader_count(), 1u);
  lock.lock_shared();
  EXPECT_EQ(lock.reader_count(), 2u);
  lock.unlock_shared();
  lock.unlock_shared();
  EXPECT_EQ(lock.reader_count(), 0u);
}

// -------------------------------------------------------------- LsmKv range

TEST(LsmKvRange, OrderedAndNewestWins) {
  db::LsmKv::Options opt;
  opt.memtable_limit = 8;  // force several runs
  db::LsmKv kv(opt);
  for (std::uint64_t i = 0; i < 100; ++i) kv.put(i, "v1");
  for (std::uint64_t i = 20; i < 40; ++i) kv.put(i, "v2");  // overwrite
  auto out = kv.range(10, 50);
  ASSERT_EQ(out.size(), 41u);
  std::uint64_t prev = 9;
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, prev + 1);
    prev = k;
    if (k >= 20 && k < 40) {
      EXPECT_EQ(v, "v2") << k;
    } else {
      EXPECT_EQ(v, "v1") << k;
    }
  }
}

TEST(LsmKvRange, TombstonesSuppressed) {
  db::LsmKv::Options opt;
  opt.memtable_limit = 4;
  db::LsmKv kv(opt);
  for (std::uint64_t i = 0; i < 20; ++i) kv.put(i, "v");
  kv.erase(5);
  kv.erase(7);
  auto out = kv.range(0, 19);
  EXPECT_EQ(out.size(), 18u);
  for (const auto& [k, v] : out) {
    EXPECT_NE(k, 5u);
    EXPECT_NE(k, 7u);
  }
}

TEST(LsmKvRange, SnapshotStability) {
  db::LsmKv kv;
  kv.put(1, "a");
  db::LsmKv::Snapshot snap = kv.snapshot();
  kv.put(2, "b");
  kv.erase(1);
  auto old_view = snap.range(0, 10);
  ASSERT_EQ(old_view.size(), 1u);
  EXPECT_EQ(old_view[0].second, "a");
  auto new_view = kv.range(0, 10);
  ASSERT_EQ(new_view.size(), 1u);
  EXPECT_EQ(new_view[0].first, 2u);
}

TEST(LsmKvRange, EmptyRange) {
  db::LsmKv kv;
  kv.put(100, "x");
  EXPECT_TRUE(kv.range(0, 50).empty());
  EXPECT_EQ(kv.range(100, 100).size(), 1u);
}

// ------------------------------------------------------ MiniSql update/delete

TEST(MiniSqlUpdate, UpdateChangesRow) {
  db::MiniSql db;
  db.create_table("t");
  db.insert("t", {1, 10, "old"});
  EXPECT_TRUE(db.update("t", 1, 99, "new"));
  auto row = db.select_point("t", 1);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->score, 99);
  EXPECT_EQ(row->payload, "new");
}

TEST(MiniSqlUpdate, DeleteTombstones) {
  db::MiniSql db;
  db.create_table("t");
  for (std::int64_t i = 0; i < 10; ++i) db.insert("t", {i, 0, "x"});
  EXPECT_TRUE(db.erase("t", 4));
  EXPECT_FALSE(db.select_point("t", 4).has_value());
  EXPECT_EQ(db.table_rows("t"), 9u);
  EXPECT_EQ(db.full_scan("t").size(), 9u);
  auto range = db.select_range("t", 0, 9, 0);
  EXPECT_EQ(range.size(), 9u);
}

TEST(MiniSqlUpdate, DeletedIdCanBeReinserted) {
  db::MiniSql db;
  db.create_table("t");
  db.insert("t", {1, 1, "first"});
  db.erase("t", 1);
  db.insert("t", {1, 2, "second"});
  auto row = db.select_point("t", 1);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->payload, "second");
  EXPECT_EQ(db.table_rows("t"), 1u);
}

TEST(MiniSqlUpdate, UpdateInsideTxnIsAtomic) {
  db::MiniSql db;
  db.create_table("t");
  db.insert("t", {1, 10, "a"});
  db.insert("t", {2, 20, "b"});
  {
    db::MiniSql::Txn txn = db.begin();
    ASSERT_TRUE(txn.update("t", 1, 11, "a2"));
    ASSERT_TRUE(txn.erase("t", 2));
    // Before commit, reads (other txns) see old state.
    EXPECT_EQ(db.select_point("t", 1)->score, 10);
    EXPECT_TRUE(db.select_point("t", 2).has_value());
    ASSERT_TRUE(txn.commit());
  }
  EXPECT_EQ(db.select_point("t", 1)->score, 11);
  EXPECT_FALSE(db.select_point("t", 2).has_value());
}

TEST(MiniSqlUpdate, RollbackDiscardsUpdatesAndDeletes) {
  db::MiniSql db;
  db.create_table("t");
  db.insert("t", {1, 10, "keep"});
  {
    db::MiniSql::Txn txn = db.begin();
    txn.update("t", 1, 99, "no");
    txn.erase("t", 1);
    txn.rollback();
  }
  auto row = db.select_point("t", 1);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->score, 10);
  EXPECT_EQ(row->payload, "keep");
}

TEST(MiniSqlUpdate, SecondWriterStillBusy) {
  db::MiniSql db;
  db.create_table("t");
  db.insert("t", {1, 0, "x"});
  db::MiniSql::Txn w1 = db.begin();
  ASSERT_TRUE(w1.update("t", 1, 5, "w1"));
  db::MiniSql::Txn w2 = db.begin();
  EXPECT_FALSE(w2.update("t", 1, 6, "w2"));  // SQLITE_BUSY
  EXPECT_FALSE(w2.erase("t", 1));
  w2.rollback();
  EXPECT_TRUE(w1.commit());
  EXPECT_EQ(db.select_point("t", 1)->payload, "w1");
}

}  // namespace
}  // namespace asl
