// Platform substrate tests: cache-line geometry, clocks, RNG, thread ids,
// topology oracle, backoff.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "platform/cacheline.h"
#include "platform/raw_spinlock.h"
#include "platform/rng.h"
#include "platform/spin.h"
#include "platform/thread_registry.h"
#include "platform/time.h"
#include "platform/topology.h"

namespace asl {
namespace {

TEST(Cacheline, PaddedTypesOccupyFullLines) {
  EXPECT_EQ(sizeof(CachePadded<char>), kCacheLine);
  EXPECT_EQ(sizeof(CachePadded<std::uint64_t>), kCacheLine);
  EXPECT_EQ(alignof(CachePadded<int>), kCacheLine);
  EXPECT_EQ(sizeof(SharedLine), kCacheLine);
}

TEST(Cacheline, PaddedArrayElementsDoNotShareLines) {
  CachePadded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kCacheLine);
  }
}

TEST(Cacheline, PaddedValueAccessors) {
  CachePadded<int> p(41);
  EXPECT_EQ(*p, 41);
  *p += 1;
  EXPECT_EQ(p.value, 42);
}

TEST(Time, MonotonicClock) {
  const Nanos a = now_ns();
  const Nanos b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Time, SleepAdvancesClock) {
  const Nanos a = now_ns();
  sleep_ns(2 * kNanosPerMilli);
  const Nanos b = now_ns();
  EXPECT_GE(b - a, 2 * kNanosPerMilli);
}

TEST(Time, SpinUntilReachesDeadline) {
  const Nanos deadline = now_ns() + 200 * kNanosPerMicro;
  const Nanos reached = spin_until(deadline);
  EXPECT_GE(reached, deadline);
}

TEST(Time, SpinNopsScalesRoughlyLinearly) {
  // Not a timing assertion (CI noise); just confirms the loop executes.
  spin_nops(0);
  spin_nops(1000);
  SUCCEED();
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

TEST(ThreadRegistry, IdIsStableWithinThread) {
  const std::uint32_t a = thread_id();
  const std::uint32_t b = thread_id();
  EXPECT_EQ(a, b);
}

TEST(ThreadRegistry, IdsAreDistinctAcrossLiveThreads) {
  constexpr int kThreads = 8;
  std::vector<std::uint32_t> ids(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ids[i] = thread_id();
      arrived.fetch_add(1);
      while (!release.load()) {
      }
    });
  }
  while (arrived.load() != kThreads) {
  }
  release.store(true);
  for (auto& t : threads) t.join();
  std::set<std::uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadRegistry, IdsAreRecycledAfterThreadExit) {
  std::uint32_t first = 0;
  std::thread([&] { first = thread_id(); }).join();
  std::uint32_t second = 0;
  std::thread([&] { second = thread_id(); }).join();
  EXPECT_EQ(first, second);  // freed id is reused
}

TEST(ThreadRegistry, IdsBelowMax) {
  EXPECT_LT(thread_id(), kMaxThreads);
}

TEST(Topology, DefaultIsAllBig) {
  Topology::instance().configure({});
  EXPECT_EQ(Topology::instance().core_type(0), CoreType::kBig);
  EXPECT_TRUE(is_big_core());
}

TEST(Topology, BandedConfiguration) {
  Topology::instance().configure_banded(4, 4);
  EXPECT_EQ(Topology::instance().num_big(), 4u);
  EXPECT_EQ(Topology::instance().num_little(), 4u);
  EXPECT_EQ(Topology::instance().num_cores(), 8u);
  EXPECT_EQ(Topology::instance().core_type(0), CoreType::kBig);
  EXPECT_EQ(Topology::instance().core_type(3), CoreType::kBig);
  EXPECT_EQ(Topology::instance().core_type(4), CoreType::kLittle);
  EXPECT_EQ(Topology::instance().core_type(7), CoreType::kLittle);
  Topology::instance().configure({});
}

TEST(Topology, PerThreadOverrideWins) {
  Topology::instance().configure({});  // all big
  {
    ScopedCoreType scoped(CoreType::kLittle);
    EXPECT_FALSE(is_big_core());
  }
  EXPECT_TRUE(is_big_core());
}

TEST(Topology, OverrideIsPerThread) {
  ScopedCoreType scoped(CoreType::kLittle);
  bool other_thread_big = false;
  std::thread([&] { other_thread_big = is_big_core(); }).join();
  EXPECT_TRUE(other_thread_big);
  EXPECT_FALSE(is_big_core());
}

TEST(Topology, OutOfRangeCpuDefaultsBig) {
  Topology::instance().configure_banded(2, 2);
  EXPECT_EQ(Topology::instance().core_type(99), CoreType::kBig);
  Topology::instance().configure({});
}

TEST(Topology, DescribeMentionsCounts) {
  Topology::instance().configure_banded(4, 4);
  const std::string desc = Topology::instance().describe();
  EXPECT_NE(desc.find("4 big"), std::string::npos);
  EXPECT_NE(desc.find("4 little"), std::string::npos);
  Topology::instance().configure({});
}

TEST(Backoff, GrowsExponentiallyAndSaturates) {
  Backoff b(2, 16);
  EXPECT_EQ(b.current(), 2u);
  b.pause();
  EXPECT_EQ(b.current(), 4u);
  b.pause();
  b.pause();
  EXPECT_EQ(b.current(), 16u);
  b.pause();
  EXPECT_EQ(b.current(), 16u);  // saturated
}

TEST(Backoff, ResetRestoresInitial) {
  Backoff b(1, 64);
  b.pause();
  b.pause();
  b.reset(1);
  EXPECT_EQ(b.current(), 1u);
}

TEST(RawSpinLock, MutualExclusionUnderContention) {
  RawSpinLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RawSpinLock, TryLockSemantics) {
  RawSpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace asl
