// Simulator unit tests: engine ordering/determinism, lock models, runner
// accounting.
#include <gtest/gtest.h>

#include <vector>

#include "platform/rng.h"
#include "sim/core_model.h"
#include "sim/db_model.h"
#include "sim/engine.h"
#include "sim/sim_lock.h"
#include "sim/sim_runner.h"

namespace asl::sim {
namespace {

TEST(Engine, ExecutesInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.executed(), 3u);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(10, [&] { order.push_back(1); });
  eng.at(10, [&] { order.push_back(2); });
  eng.at(10, [&] { order.push_back(3); });
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine eng;
  Time seen = 0;
  eng.at(100, [&] { seen = eng.now(); });
  eng.run_all();
  EXPECT_EQ(seen, 100u);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  int fired = 0;
  eng.at(10, [&] {
    eng.after(5, [&] { fired = 1; });
  });
  eng.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 15u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.at(10, [&] { ++fired; });
  eng.at(100, [&] { ++fired; });
  eng.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 50u);
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(Engine, PastTimesClampToNow) {
  Engine eng;
  std::vector<int> order;
  eng.at(50, [&] {
    order.push_back(1);
    eng.at(10, [&] { order.push_back(2); });  // in the past: runs "now"
  });
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), 50u);
}

class SimLockTest : public ::testing::Test {
 protected:
  Engine eng;
  MachineParams mp;
  Rng rng{7};
  Core big_core{0, CoreType::kBig, 1};
  Core little_core{4, CoreType::kLittle, 1};

  SimThread make_thread(std::uint32_t id, Core* core) {
    SimThread t;
    t.id = id;
    t.core = core;
    return t;
  }
};

TEST_F(SimLockTest, FifoGrantsInArrivalOrder) {
  auto lock = make_sim_lock(LockKind::kMcs, &eng, &mp, &rng);
  SimThread a = make_thread(0, &big_core);
  SimThread b = make_thread(1, &big_core);
  SimThread c = make_thread(2, &little_core);
  std::vector<int> order;
  lock->acquire(&a, AcquireMode::kImmediate, 0, [&] { order.push_back(0); });
  eng.run_all();  // a holds
  lock->acquire(&b, AcquireMode::kImmediate, 0, [&] { order.push_back(1); });
  lock->acquire(&c, AcquireMode::kImmediate, 0, [&] { order.push_back(2); });
  lock->release(&a);
  eng.run_all();
  lock->release(&b);
  eng.run_all();
  lock->release(&c);
  eng.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(lock->is_free());
}

TEST_F(SimLockTest, TicketHandoverCostExceedsMcs) {
  // Same arrival pattern; ticket's grant must land later than MCS's due to
  // the per-waiter broadcast cost.
  auto run_one = [&](LockKind kind) {
    Engine local;
    Rng r(7);
    auto lock = make_sim_lock(kind, &local, &mp, &r);
    SimThread a = make_thread(0, &big_core);
    SimThread b = make_thread(1, &big_core);
    SimThread c = make_thread(2, &big_core);
    Time granted_b = 0;
    lock->acquire(&a, AcquireMode::kImmediate, 0, [] {});
    local.run_all();
    lock->acquire(&b, AcquireMode::kImmediate, 0,
                  [&] { granted_b = local.now(); });
    lock->acquire(&c, AcquireMode::kImmediate, 0, [] {});
    lock->release(&a);
    local.run_all();
    return granted_b;
  };
  EXPECT_GT(run_one(LockKind::kTicket), run_one(LockKind::kMcs));
}

TEST_F(SimLockTest, TasBigAffinityFavorsBigCores) {
  mp.tas_affinity = TasAffinity::kBigCores;
  mp.tas_affinity_weight = 8.0;
  auto lock = make_sim_lock(LockKind::kTas, &eng, &mp, &rng);
  SimThread holder = make_thread(9, &big_core);
  SimThread big = make_thread(0, &big_core);
  SimThread little = make_thread(1, &little_core);
  int big_wins = 0;
  constexpr int kRounds = 400;
  for (int i = 0; i < kRounds; ++i) {
    bool big_won = false;
    lock->acquire(&holder, AcquireMode::kImmediate, 0, [] {});
    eng.run_all();
    lock->acquire(&big, AcquireMode::kImmediate, 0,
                  [&] { big_won = true; });
    lock->acquire(&little, AcquireMode::kImmediate, 0,
                  [&] { big_won = false; });
    lock->release(&holder);
    eng.run_all();
    // Winner holds; loser still spins. Release winner, then the loser gets
    // it; release again to drain.
    big_wins += big_won ? 1 : 0;
    lock->release(big_won ? &big : &little);
    eng.run_all();
    lock->release(big_won ? &little : &big);
    eng.run_all();
  }
  // Weight 8: expect ~8/9 of contended wins for the big core.
  EXPECT_GT(big_wins, kRounds * 7 / 10);
}

TEST_F(SimLockTest, TasSymmetricIsFairish) {
  mp.tas_affinity = TasAffinity::kSymmetric;
  auto lock = make_sim_lock(LockKind::kTas, &eng, &mp, &rng);
  SimThread holder = make_thread(9, &big_core);
  SimThread big = make_thread(0, &big_core);
  SimThread little = make_thread(1, &little_core);
  int big_wins = 0;
  constexpr int kRounds = 600;
  for (int i = 0; i < kRounds; ++i) {
    bool big_won = false;
    lock->acquire(&holder, AcquireMode::kImmediate, 0, [] {});
    eng.run_all();
    lock->acquire(&big, AcquireMode::kImmediate, 0, [&] { big_won = true; });
    lock->acquire(&little, AcquireMode::kImmediate, 0,
                  [&] { big_won = false; });
    lock->release(&holder);
    eng.run_all();
    big_wins += big_won ? 1 : 0;
    lock->release(big_won ? &big : &little);
    eng.run_all();
    lock->release(big_won ? &little : &big);
    eng.run_all();
  }
  EXPECT_GT(big_wins, kRounds * 35 / 100);
  EXPECT_LT(big_wins, kRounds * 65 / 100);
}

TEST_F(SimLockTest, ReorderableImmediateOvertakesStandby) {
  auto lock = make_sim_lock(LockKind::kReorderable, &eng, &mp, &rng);
  SimThread holder = make_thread(0, &big_core);
  SimThread standby = make_thread(1, &little_core);
  SimThread imm = make_thread(2, &big_core);
  std::vector<int> order;
  lock->acquire(&holder, AcquireMode::kImmediate, 0, [] {});
  eng.run_all();
  lock->acquire(&standby, AcquireMode::kReorder, 50 * kMilli,
                [&] { order.push_back(1); });
  lock->acquire(&imm, AcquireMode::kImmediate, 0, [&] { order.push_back(0); });
  lock->release(&holder);
  eng.run_all();  // immediate gets it; standby still waiting
  lock->release(&imm);
  eng.run_all();  // queue empty -> standby claims on next poll
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  lock->release(&standby);
  eng.run_all();
  EXPECT_TRUE(lock->is_free());
}

TEST_F(SimLockTest, ReorderableWindowExpiryEnqueues) {
  auto lock = make_sim_lock(LockKind::kReorderable, &eng, &mp, &rng);
  SimThread holder = make_thread(0, &big_core);
  SimThread standby = make_thread(1, &little_core);
  Time granted_at = 0;
  lock->acquire(&holder, AcquireMode::kImmediate, 0, [] {});
  eng.run_all();
  const Time window = 2 * kMilli;
  lock->acquire(&standby, AcquireMode::kReorder, window,
                [&] { granted_at = eng.now(); });
  // Hold far beyond the window; the standby must enqueue at expiry and be
  // granted on release.
  eng.run_until(5 * kMilli);
  lock->release(&holder);
  eng.run_all();
  EXPECT_GE(granted_at, window);
  EXPECT_GT(granted_at, 0u);
}

TEST_F(SimLockTest, PthreadWakeupCostOnHandover) {
  auto lock = make_sim_lock(LockKind::kPthread, &eng, &mp, &rng);
  SimThread a = make_thread(0, &big_core);
  SimThread b = make_thread(1, &big_core);
  Time granted_b = 0;
  lock->acquire(&a, AcquireMode::kImmediate, 0, [] {});
  eng.run_all();
  lock->acquire(&b, AcquireMode::kImmediate, 0, [&] { granted_b = eng.now(); });
  EXPECT_EQ(big_core.runnable, 0u);  // b parked (started at 1, decremented)
  const Time released_at = eng.now();
  lock->release(&a);
  eng.run_all();
  EXPECT_GE(granted_b - released_at, mp.wakeup_latency);
  EXPECT_EQ(big_core.runnable, 1u);  // b woke
}

TEST_F(SimLockTest, StpParksAfterSpinBudgetAndPaysWakeup) {
  auto lock = make_sim_lock(LockKind::kStpMcs, &eng, &mp, &rng);
  SimThread a = make_thread(0, &big_core);
  SimThread b = make_thread(1, &big_core);
  Time granted_b = 0;
  lock->acquire(&a, AcquireMode::kImmediate, 0, [] {});
  eng.run_all();
  lock->acquire(&b, AcquireMode::kImmediate, 0, [&] { granted_b = eng.now(); });
  eng.run_until(eng.now() + 100 * kMicro);  // exceed the spin budget: parks
  EXPECT_EQ(big_core.runnable, 0u);
  const Time released_at = eng.now();
  lock->release(&a);
  eng.run_all();
  EXPECT_GE(granted_b - released_at, mp.wakeup_latency);
}

TEST_F(SimLockTest, ShflPbRotation) {
  auto lock = make_sim_lock(LockKind::kShflPb, &eng, &mp, &rng,
                            /*pb_proportion=*/2);
  SimThread holder = make_thread(0, &big_core);
  SimThread b1 = make_thread(1, &big_core);
  SimThread b2 = make_thread(2, &big_core);
  SimThread b3 = make_thread(3, &big_core);
  SimThread l1 = make_thread(4, &little_core);
  std::vector<int> order;
  lock->acquire(&holder, AcquireMode::kImmediate, 0, [] {});
  eng.run_all();
  lock->acquire(&l1, AcquireMode::kImmediate, 0, [&] { order.push_back(100); });
  lock->acquire(&b1, AcquireMode::kImmediate, 0, [&] { order.push_back(1); });
  lock->acquire(&b2, AcquireMode::kImmediate, 0, [&] { order.push_back(2); });
  lock->acquire(&b3, AcquireMode::kImmediate, 0, [&] { order.push_back(3); });
  SimThread* held[] = {&holder, &b1, &b2, &l1, &b3};
  for (SimThread* t : held) {
    lock->release(t);
    eng.run_all();
  }
  // Proportion 2: two bigs, then the little, then remaining big.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 100, 3}));
}

TEST(SimRunner, DeterministicForSameSeed) {
  SimConfig cfg;
  cfg.warmup = 1 * kMilli;
  cfg.measure = 20 * kMilli;
  cfg.lock = LockKind::kTas;
  auto gen = single_cs_workload(100, 200);
  SimResult a = run_sim(cfg, gen);
  SimResult b = run_sim(cfg, gen);
  EXPECT_EQ(a.cs_total, b.cs_total);
  EXPECT_EQ(a.latency.p99_overall(), b.latency.p99_overall());
}

TEST(SimRunner, SeedChangesTasOutcome) {
  SimConfig cfg;
  cfg.warmup = 1 * kMilli;
  cfg.measure = 20 * kMilli;
  cfg.lock = LockKind::kTas;
  auto gen = single_cs_workload(100, 200);
  SimResult a = run_sim(cfg, gen);
  cfg.seed = 1234;
  SimResult b = run_sim(cfg, gen);
  EXPECT_NE(a.cs_total, b.cs_total);  // randomized TAS winners
}

TEST(SimRunner, ThroughputAccountingConsistent) {
  SimConfig cfg;
  cfg.warmup = 0;
  cfg.measure = 50 * kMilli;
  cfg.big_threads = 2;
  cfg.little_threads = 2;
  auto gen = single_cs_workload(100, 200);
  SimResult r = run_sim(cfg, gen);
  EXPECT_EQ(r.cs_total, r.cs_big + r.cs_little);
  EXPECT_GT(r.cs_total, 0u);
  EXPECT_GT(r.cs_throughput(), 0.0);
  // Single-section epochs: epoch count equals CS count.
  EXPECT_EQ(r.epochs, r.cs_total);
}

TEST(SimRunner, LittleCoresExecuteSlower) {
  // One big thread alone vs one little thread alone: the big thread must
  // complete ~cs_slowdown x more critical sections.
  SimConfig big_only;
  big_only.big_threads = 1;
  big_only.little_threads = 0;
  big_only.warmup = 0;
  big_only.measure = 20 * kMilli;
  SimConfig little_only = big_only;
  little_only.big_threads = 0;
  little_only.little_threads = 1;
  auto gen = single_cs_workload(1000, 0);
  SimResult rb = run_sim(big_only, gen);
  SimResult rl = run_sim(little_only, gen);
  const double ratio = rb.cs_throughput() / rl.cs_throughput();
  EXPECT_GT(ratio, big_only.machine.little_cs_slowdown * 0.7);
  EXPECT_LT(ratio, big_only.machine.little_cs_slowdown * 1.3);
}

TEST(SimRunner, RecordSeriesCapturesEpochs) {
  SimConfig cfg;
  cfg.warmup = 0;
  cfg.measure = 10 * kMilli;
  cfg.record_series = true;
  cfg.big_threads = 1;
  cfg.little_threads = 1;
  auto gen = single_cs_workload(500, 500);
  SimResult r = run_sim(cfg, gen);
  EXPECT_FALSE(r.big_series.empty());
  EXPECT_FALSE(r.little_series.empty());
}

TEST(DbModel, AllModelsProduceValidPlans) {
  for (DbKind kind : {DbKind::kKyoto, DbKind::kUpscaleDb, DbKind::kLmdb,
                      DbKind::kLevelDb, DbKind::kSqlite}) {
    DbWorkload w = make_db_workload(kind);
    EXPECT_NE(std::string(w.name), "");
    Rng rng(1);
    SimThread t;
    Core core{0, CoreType::kBig, 1};
    t.core = &core;
    for (std::uint64_t i = 0; i < 2000; ++i) {
      EpochPlan plan = w.gen(t, i, 0, rng);
      ASSERT_FALSE(plan.sections.empty());
      for (const Section& s : plan.sections) {
        ASSERT_LT(s.lock, w.num_locks) << w.name;
        ASSERT_GT(s.cs, 0u);
      }
    }
  }
}

TEST(DbModel, SqliteHasRareGiantEpochs) {
  DbWorkload w = make_db_workload(DbKind::kSqlite);
  Rng rng(1);
  SimThread t;
  Core core{0, CoreType::kBig, 1};
  t.core = &core;
  Time normal_max = 0, giant = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EpochPlan plan = w.gen(t, i, 0, rng);
    Time total = 0;
    for (const Section& s : plan.sections) total += s.cs;
    if (i % 1000 == 999) {
      giant = total;
    } else {
      normal_max = std::max(normal_max, total);
    }
  }
  EXPECT_GT(giant, normal_max * 5);
}

}  // namespace
}  // namespace asl::sim
