// Trace record/replay suite (DESIGN.md §10). Four anchors:
//  * serialization: write -> parse -> write is byte-stable, and the parser
//    is strict (version mismatch, truncation, totals/stream disagreement
//    and missing files are loud failures, never best-effort reads);
//  * determinism: over randomized service configs, replaying a recorded
//    trace through a fresh twin re-takes every decision and reproduces the
//    measured/shard tables byte-for-byte;
//  * the golden trace: tests/golden/kv_replay_steady.trace pins both the
//    recorder's output bytes and the replay result across commits
//    (regenerate after an intentional change: ASL_WRITE_GOLDEN=1);
//  * the A/B harness: two policies replayed on one recorded trace produce
//    a paired-difference table whose deltas have the expected sign.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/ab_compare.h"
#include "platform/rng.h"
#include "server/scenarios.h"
#include "server/sim_kv_service.h"
#include "workload/trace.h"

namespace asl {
namespace {

using server::RecordedTrace;
using server::SimReplayReport;
using server::SimServiceReport;
using server::SimTwinConfig;
using server::TraceAccounting;
using server::TraceDecision;

// The golden recording: the steady uniform scenario compressed to a 40 ms
// horizon (the sim_kv bench time-scale rule), small enough to check in,
// long enough to exercise batching on every shard.
server::KvScenario golden_scenario() {
  server::KvScenario sc = server::make_kv_scenario("kv_uniform_steady");
  const double scale = 0.1;
  sc.horizon = static_cast<Nanos>(static_cast<double>(sc.horizon) * scale);
  for (server::LoadSpec& spec : sc.load) {
    spec.arrivals = spec.arrivals.with_time_scale(scale);
  }
  return sc;
}

std::string measured_csv(const SimServiceReport& report) {
  std::ostringstream out;
  server::sim_kv_measured_table(report).print_csv(out);
  server::sim_kv_shard_table(report).print_csv(out);
  return out.str();
}

bool parse_string(const std::string& bytes, RecordedTrace* out,
                  std::string* error) {
  std::istringstream in(bytes);
  return server::parse_trace(in, out, error);
}

TEST(Trace, SerializationRoundTripsByteIdentically) {
  const RecordedTrace trace = server::record_sim_kv(golden_scenario());
  ASSERT_GT(trace.offered(), 0u);

  const std::string bytes = server::trace_to_string(trace);
  RecordedTrace parsed;
  std::string error;
  ASSERT_TRUE(parse_string(bytes, &parsed, &error)) << error;
  EXPECT_EQ(server::trace_to_string(parsed), bytes);
  EXPECT_EQ(parsed.offered(), trace.offered());
  EXPECT_EQ(parsed.meta.scenario, trace.meta.scenario);
  EXPECT_EQ(parsed.meta.twin_seed, trace.meta.twin_seed);
  EXPECT_EQ(parsed.meta.seeds.size(), trace.meta.seeds.size());

  // The recorded value sizes follow the service's value formatting rule.
  for (const server::TraceRecord& rec : trace.records) {
    EXPECT_EQ(rec.value_size,
              rec.is_put ? server::kv_value_size(rec.key) : 0u);
  }
}

TEST(Trace, ReplayIsExactAcrossRandomizedConfigs) {
  // Property: for any service config, replaying a twin recording under the
  // recorded config + twin seed re-takes every decision and reproduces the
  // measured and shard tables byte-for-byte. Configs are drawn from one
  // splitmix64 chain so a failure names a reproducible case.
  const char* const kEngines[] = {"hash", "btree", "mvcc", "lsm"};
  std::uint64_t state = 0xC0FFEE;
  for (int i = 0; i < 6; ++i) {
    const char* engine = kEngines[splitmix64(state) % 4];
    server::KvScenario sc =
        server::make_kv_scenario("kv_uniform_steady", engine);
    const double scale = 0.05;
    sc.horizon = static_cast<Nanos>(static_cast<double>(sc.horizon) * scale);
    for (server::LoadSpec& spec : sc.load) {
      spec.arrivals = spec.arrivals.with_time_scale(scale);
      spec.seed = splitmix64(state);
    }
    sc.service.num_shards = 1 + static_cast<std::uint32_t>(
                                    splitmix64(state) % 4);
    sc.service.batch_k = 1 + static_cast<std::uint32_t>(
                                 splitmix64(state) % 8);
    // Small queues + an occasional watermark make rejects and sheds show
    // up in the trace, so all three decisions are exercised.
    sc.service.queue_capacity = 16u << (splitmix64(state) % 3);
    if (splitmix64(state) % 2 == 0) {
      sc.service.classes[1].admission = server::AdmissionPolicy{1, 0.5};
    }
    SimTwinConfig twin;
    twin.seed = splitmix64(state);

    SimServiceReport recorded_report;
    const RecordedTrace trace =
        server::record_sim_kv(sc, twin, &recorded_report);
    ASSERT_GT(trace.offered(), 0u) << "case " << i;
    EXPECT_EQ(trace.offered(), recorded_report.offered) << "case " << i;

    const SimReplayReport rr =
        server::replay_sim_kv(trace, sc.service, twin);
    EXPECT_TRUE(rr.exact())
        << "case " << i << ": divergence " << rr.decision_divergence << "/"
        << rr.shard_divergence << " skipped " << rr.skipped;
    EXPECT_EQ(measured_csv(rr.report), measured_csv(recorded_report))
        << "case " << i;
    std::string why;
    EXPECT_TRUE(server::accounting_counts_match(
        trace.accounting, server::sim_trace_accounting(rr.report), &why))
        << "case " << i << ": " << why;
  }
}

TEST(Trace, GoldenReplayTraceMatchesCheckedInFile) {
  // Two pins in one file: freshly recording the golden scenario must
  // reproduce the checked-in bytes exactly (recorder format + offered
  // schedule + decisions), and replaying the *loaded* file must be exact.
  const std::string path =
      std::string(ASL_GOLDEN_DIR) + "/kv_replay_steady.trace";
  const server::KvScenario sc = golden_scenario();
  SimServiceReport recorded_report;
  const RecordedTrace fresh = server::record_sim_kv(sc, {}, &recorded_report);
  const std::string bytes = server::trace_to_string(fresh);

  if (std::getenv("ASL_WRITE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << bytes;
    GTEST_SKIP() << "golden trace regenerated";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden trace " << path
                  << " (regenerate with ASL_WRITE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), bytes)
      << "recording drifted from the checked-in trace; if the change is "
         "intentional, regenerate with ASL_WRITE_GOLDEN=1";

  RecordedTrace loaded;
  std::string error;
  ASSERT_TRUE(server::load_trace(path, &loaded, &error)) << error;
  SimTwinConfig twin;
  twin.seed = loaded.meta.twin_seed;
  const SimReplayReport rr = server::replay_sim_kv(loaded, sc.service, twin);
  EXPECT_TRUE(rr.exact());
  EXPECT_EQ(measured_csv(rr.report), measured_csv(recorded_report));
}

TEST(Trace, VersionMismatchIsRejectedLoudly) {
  const RecordedTrace trace = server::record_sim_kv(golden_scenario());
  std::string bytes = server::trace_to_string(trace);
  ASSERT_EQ(bytes.rfind("asltrace v1\n", 0), 0u);
  bytes.replace(0, std::string("asltrace v1").size(), "asltrace v99");

  RecordedTrace parsed;
  std::string error;
  EXPECT_FALSE(parse_string(bytes, &parsed, &error));
  EXPECT_NE(error.find("unsupported trace version v99"), std::string::npos)
      << error;
}

TEST(Trace, TruncatedTraceIsRejected) {
  const RecordedTrace trace = server::record_sim_kv(golden_scenario());
  const std::string bytes = server::trace_to_string(trace);
  RecordedTrace parsed;
  std::string error;

  // Missing `end` trailer — the classic lost-last-write truncation.
  const std::string no_trailer =
      bytes.substr(0, bytes.size() - std::string("end\n").size());
  EXPECT_FALSE(parse_string(no_trailer, &parsed, &error));
  EXPECT_NE(error.find("end"), std::string::npos) << error;

  // Cut mid-records.
  EXPECT_FALSE(parse_string(bytes.substr(0, bytes.size() / 2), &parsed,
                            &error));
}

TEST(Trace, TotalsStreamDisagreementIsRejected) {
  // A trace whose summary lines disagree with its own record stream is
  // corrupt (edited or mis-merged), not replayable.
  RecordedTrace trace = server::record_sim_kv(golden_scenario());
  trace.accounting.classes[0].accepted += 1;
  RecordedTrace parsed;
  std::string error;
  EXPECT_FALSE(parse_string(server::trace_to_string(trace), &parsed, &error));
  EXPECT_NE(error.find("totals do not match record stream"),
            std::string::npos)
      << error;
}

TEST(Trace, TraceSourceReportsMissingAndBadFiles) {
  server::TraceSource source;
  std::string error;
  EXPECT_FALSE(server::TraceSource::open("/nonexistent/asl.trace", &source,
                                         &error));
  EXPECT_FALSE(error.empty());

  // A valid trace opens and exposes the parsed stream.
  const RecordedTrace trace = server::record_sim_kv(golden_scenario());
  const std::string path = ::testing::TempDir() + "trace_test_roundtrip.trace";
  ASSERT_TRUE(server::save_trace(trace, path, &error)) << error;
  ASSERT_TRUE(server::TraceSource::open(path, &source, &error)) << error;
  EXPECT_EQ(source.offered(), trace.offered());
  EXPECT_EQ(server::trace_to_string(source.trace()),
            server::trace_to_string(trace));
  std::remove(path.c_str());
}

TEST(AbCompare, BatchEightBeatsBatchOneOnTheSameTrace) {
  // The harness smoke: one recorded overloaded trace, two batching
  // policies. The A arm (the recorded config) must replay exactly; the
  // batch-8 arm must complete strictly more of the identical offered
  // stream (the kv_batch_sweep monotonicity, now paired per-request).
  server::KvScenario sc = server::make_overloaded_kv_scenario(
      "kv_batch_shed", 8.0, 10 * kNanosPerMilli);
  sc.service.batch_k = 1;
  sc.service.classes[1].admission = server::AdmissionPolicy{};
  const RecordedTrace trace = server::record_sim_kv(sc);
  ASSERT_GT(trace.offered(), 0u);

  bench::AbPolicy batch1{"batch1", sc.service, {}};
  bench::AbPolicy batch8 = batch1;
  batch8.label = "batch8";
  batch8.service.batch_k = 8;
  const bench::AbComparison cmp = bench::ab_compare(trace, batch1, batch8);

  EXPECT_TRUE(cmp.a.exact());
  std::string why;
  EXPECT_TRUE(server::accounting_counts_match(
      trace.accounting, server::sim_trace_accounting(cmp.a.report), &why))
      << why;
  EXPECT_GT(cmp.b.report.total_completed(), cmp.a.report.total_completed());
  EXPECT_LT(cmp.b.report.total_rejected(), cmp.a.report.total_rejected());

  std::ostringstream csv;
  bench::ab_difference_table(cmp).print_csv(csv);
  EXPECT_NE(csv.str().find("TOTAL"), std::string::npos);
  EXPECT_NE(csv.str().find("batch1_completed"), std::string::npos);
}

}  // namespace
}  // namespace asl
