// Telemetry-layer unit tests (DESIGN.md §11): the lock-free metrics
// registry's fold fidelity, the time-series log's capacity contract, the
// sampler's lifecycle (exactly one final tick across every start/stop
// interleaving), the span tracer's 1-in-N gate and ring wraparound, and the
// Chrome trace-event JSON schema — checked by a real (minimal) JSON parser,
// not by substring eyeballing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/span_tracer.h"
#include "obs/timeseries_log.h"
#include "stats/histogram.h"

namespace asl::obs {
namespace {

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistry, CounterFoldSumsEverySlot) {
  MetricsRegistry reg(3);
  const MetricId c = reg.counter("reqs");
  reg.freeze();
  reg.add(c, 0, 5);
  reg.add(c, 1, 7);
  reg.add(c, 2, 11);
  reg.add(c, 0, 1);
  EXPECT_EQ(reg.fold(c), 24u);
}

TEST(MetricsRegistry, GaugeSetOverwritesPerSlot) {
  MetricsRegistry reg(2);
  const MetricId g = reg.gauge("depth");
  reg.freeze();
  reg.set(g, 0, 100);
  reg.set(g, 0, 3);  // overwrite, not accumulate
  reg.set(g, 1, 4);
  EXPECT_EQ(reg.fold(g), 7u);
}

TEST(MetricsRegistry, MetricsOfTheSameKindDoNotAlias) {
  MetricsRegistry reg(2);
  const MetricId a = reg.counter("a");
  const MetricId b = reg.counter("b");
  const MetricId h1 = reg.histogram("h1");
  const MetricId h2 = reg.histogram("h2");
  reg.freeze();
  reg.add(a, 0, 1);
  reg.add(b, 1, 10);
  reg.observe(h1, 0, 50);
  EXPECT_EQ(reg.fold(a), 1u);
  EXPECT_EQ(reg.fold(b), 10u);
  std::vector<std::uint64_t> buckets(Histogram::kNumBuckets);
  EXPECT_EQ(reg.fold_buckets(h1, buckets.data()), 1u);
  EXPECT_EQ(reg.fold_buckets(h2, buckets.data()), 0u);
}

TEST(MetricsRegistry, HistogramFoldMatchesSingleHistogramOracle) {
  MetricsRegistry reg(4);
  const MetricId h = reg.histogram("lat");
  reg.freeze();
  // The same observations recorded into one plain Histogram must land in
  // the same buckets the registry's per-slot cells fold into.
  Histogram oracle;
  std::vector<std::uint64_t> expected(Histogram::kNumBuckets, 0);
  std::uint64_t max_seen = 0;
  std::uint64_t v = 1;
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    for (int i = 0; i < 200; ++i) {
      reg.observe(h, slot, v);
      oracle.record(v);
      expected[Histogram::bucket_index(v)] += 1;
      max_seen = std::max(max_seen, v);
      v = v * 3 + slot + 1;
      if (v > 50'000'000) v = slot + 1;
    }
  }
  std::vector<std::uint64_t> folded(Histogram::kNumBuckets);
  const std::uint64_t total = reg.fold_buckets(h, folded.data());
  EXPECT_EQ(total, 800u);
  EXPECT_EQ(folded, expected);
  // value_at_quantile is the shared kernel clamped to the observed max
  // (stats/histogram.h) — folding slots and quantiling the sums must agree
  // with recording everything into one histogram.
  for (double q : {0.5, 0.99}) {
    EXPECT_EQ(std::min(Histogram::quantile_from_bucket_counts(folded.data(),
                                                              total, q),
                       max_seen),
              oracle.value_at_quantile(q));
  }
}

TEST(MetricsRegistry, ConcurrentWritersFoldExactly) {
  MetricsRegistry reg(4);
  const MetricId c = reg.counter("ops");
  reg.freeze();
  std::vector<std::thread> writers;
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    writers.emplace_back([&reg, c, slot] {
      for (int i = 0; i < 10'000; ++i) reg.add(c, slot, 1);
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(reg.fold(c), 40'000u);
}

// --------------------------------------------------------- timeseries log

TEST(TimeSeriesLog, AppendsAndRendersLongForm) {
  TimeSeriesLog log;
  const auto a = log.add_series("x.rate", 8);
  const auto b = log.add_series("y.depth", 8);
  EXPECT_TRUE(log.empty());
  log.append(a, 10, 1);
  log.append(a, 20, 2);
  log.append(b, 10, 5);
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(log.num_series(), 2u);
  ASSERT_NE(log.find("x.rate"), nullptr);
  EXPECT_EQ(log.find("x.rate")->size(), 2u);
  EXPECT_EQ(log.find("nope"), nullptr);

  std::ostringstream csv;
  log.table().print_csv(csv);
  EXPECT_NE(csv.str().find("series,t_ns,value"), std::string::npos);
  // Series-major, time-ascending: one row per point.
  EXPECT_EQ(log.table().rows(), 3u);
}

TEST(TimeSeriesLog, FullSeriesDropsAndCounts) {
  TimeSeriesLog log;
  const auto id = log.add_series("s", 3);
  for (std::uint64_t t = 0; t < 10; ++t) log.append(id, t, t);
  EXPECT_EQ(log.series(id).size(), 3u);  // capacity holds the first 3
  EXPECT_EQ(log.dropped(), 7u);
  // The surviving points are the oldest (append drops new, never rewrites
  // history — a truncated series is a prefix, not a sample).
  EXPECT_EQ(log.series(id).points().back().t, 2u);
}

// ----------------------------------------------------------------- sampler

TEST(Sampler, StopRunsExactlyOneFinalTick) {
  std::atomic<std::uint64_t> calls{0};
  Sampler s(1 * kNanosPerMilli, [&](std::uint64_t, Nanos) { calls += 1; });
  s.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  s.stop();
  const std::uint64_t after_stop = calls.load();
  EXPECT_GE(after_stop, 1u);
  EXPECT_EQ(s.ticks(), after_stop);
  s.stop();   // idempotent: no second final tick
  s.start();  // a no-op after stop()
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(calls.load(), after_stop);
}

TEST(Sampler, StopWithoutStartStillSamplesOnce) {
  std::atomic<std::uint64_t> calls{0};
  Sampler s(1 * kNanosPerMilli, [&](std::uint64_t, Nanos) { calls += 1; });
  s.stop();
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(s.ticks(), 1u);
}

TEST(Sampler, DestructorStops) {
  std::atomic<std::uint64_t> calls{0};
  {
    Sampler s(1 * kNanosPerMilli, [&](std::uint64_t, Nanos) { calls += 1; });
    s.start();
  }
  EXPECT_GE(calls.load(), 1u);
}

TEST(Sampler, PeriodicTicksAdvance) {
  std::atomic<std::uint64_t> calls{0};
  Sampler s(1 * kNanosPerMilli, [&](std::uint64_t, Nanos) { calls += 1; });
  s.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  s.stop();
  // Generous bound: shared runners may stall the thread, but 50 ms at a
  // 1 ms period must yield well more than the lone final tick.
  EXPECT_GE(calls.load(), 3u);
}

TEST(Sampler, ConcurrentStartsAndStopsCompose) {
  std::atomic<std::uint64_t> calls{0};
  Sampler s(1 * kNanosPerMilli, [&](std::uint64_t, Nanos) { calls += 1; });
  std::vector<std::thread> racers;
  for (int i = 0; i < 4; ++i) {
    racers.emplace_back([&s, i] {
      if (i % 2 == 0) {
        s.start();
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        s.stop();
      }
    });
  }
  for (std::thread& t : racers) t.join();
  s.stop();
  // Whatever the interleaving, the final tick fired exactly once and the
  // tick count is coherent with the callback count.
  EXPECT_GE(calls.load(), 1u);
  EXPECT_EQ(s.ticks(), calls.load());
}

// ------------------------------------------------------------- span tracer

TEST(SpanTracer, OneInNGatePerThread) {
  SpanTracer tracer(2, 16, /*sample_every=*/4);
  int sampled = 0;
  for (int i = 0; i < 8; ++i) sampled += tracer.sample(0) ? 1 : 0;
  EXPECT_EQ(sampled, 2);  // candidates 0 and 4
  // Thread 1's gate counts independently.
  EXPECT_TRUE(tracer.sample(1));
}

TEST(SpanTracer, DisabledTracerNeverSamples) {
  SpanTracer tracer(1, 16, /*sample_every=*/0);
  EXPECT_FALSE(tracer.enabled());
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(tracer.sample(0));
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(SpanTracer, RingWraparoundDropsOldestAndCounts) {
  SpanTracer tracer(1, /*ring_capacity=*/4, /*sample_every=*/1);
  for (Nanos t = 0; t < 6; ++t) {
    tracer.record(0, SpanPhase::kQueueWait, 100 + t, 10);
  }
  EXPECT_EQ(tracer.recorded(), 6u);
  EXPECT_EQ(tracer.dropped(), 2u);
  const std::vector<Span> spans = tracer.collect();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first among the survivors: the two oldest were overwritten.
  EXPECT_EQ(spans.front().start, 102);
  EXPECT_EQ(spans.back().start, 105);
}

// --------------------------------------------- Chrome trace JSON schema

// Minimal JSON value + recursive-descent parser — just enough to verify the
// trace-event schema structurally (and to fail on malformed JSON, which a
// substring check would wave through).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  // Parses one JSON document; ok() reports whether the whole input was
  // consumed without a syntax error.
  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    ok_ = ok_ && pos_ == text_.size();
    return v;
  }
  bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      pos_ += 1;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_ += 1;
      return true;
    }
    return false;
  }
  JsonValue value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail();
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }
  JsonValue fail() {
    ok_ = false;
    return JsonValue{};
  }
  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    if (!eat('{')) return fail();
    if (eat('}')) return v;
    do {
      JsonValue key = string_value();
      if (!ok_ || !eat(':')) return fail();
      v.object[key.string] = value();
      if (!ok_) return fail();
    } while (eat(','));
    if (!eat('}')) return fail();
    return v;
  }
  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    if (!eat('[')) return fail();
    if (eat(']')) return v;
    do {
      v.array.push_back(value());
      if (!ok_) return fail();
    } while (eat(','));
    if (!eat(']')) return fail();
    return v;
  }
  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    if (!eat('"')) return fail();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) pos_ += 1;
      v.string += text_[pos_];
      pos_ += 1;
    }
    if (pos_ >= text_.size()) return fail();
    pos_ += 1;  // closing quote
    return v;
  }
  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
      return v;
    }
    return fail();
  }
  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) return fail();
    pos_ += 4;
    return JsonValue{};
  }
  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_ += 1;
    }
    if (pos_ == start) return fail();
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

TEST(SpanTracer, ChromeTraceExportMatchesSchema) {
  SpanTracer tracer(2, 16, /*sample_every=*/1);
  const Nanos epoch = 1'000'000;
  tracer.record(0, SpanPhase::kQueueWait, epoch + 1'500, 2'500);
  tracer.record(0, SpanPhase::kCriticalSection, epoch + 4'000, 1'000);
  tracer.record(1, SpanPhase::kLockWait, epoch + 2'000, 500);
  tracer.record(1, SpanPhase::kPostSection, epoch + 9'000, 123);

  std::ostringstream os;
  tracer.write_chrome_trace(os, epoch);
  JsonParser parser(os.str());
  const JsonValue doc = parser.parse();
  ASSERT_TRUE(parser.ok()) << os.str();

  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  ASSERT_TRUE(doc.has("displayTimeUnit"));
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ns");
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events.array.size(), 4u);
  bool saw_tid1 = false;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_TRUE(e.has(key)) << "missing key " << key;
    }
    EXPECT_EQ(e.at("ph").string, "X");  // complete events only
    EXPECT_EQ(e.at("cat").string, "kv");
    EXPECT_EQ(e.at("pid").number, 1.0);
    EXPECT_GE(e.at("ts").number, 0.0);  // rebased to the epoch
    EXPECT_GT(e.at("dur").number, 0.0);
    saw_tid1 = saw_tid1 || e.at("tid").number == 1.0;
  }
  EXPECT_TRUE(saw_tid1);

  // Spot-check the rebasing + ns precision: 1500 ns past the epoch is
  // 1.5 us, exported with 3-decimal microsecond precision.
  bool saw_queue_wait = false;
  for (const JsonValue& e : events.array) {
    if (e.at("name").string == span_phase_name(SpanPhase::kQueueWait)) {
      saw_queue_wait = true;
      EXPECT_DOUBLE_EQ(e.at("ts").number, 1.5);
      EXPECT_DOUBLE_EQ(e.at("dur").number, 2.5);
    }
  }
  EXPECT_TRUE(saw_queue_wait);
}

}  // namespace
}  // namespace asl::obs
