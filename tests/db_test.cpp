// Mini database engine tests: CRUD, concurrency invariants, snapshot
// isolation, SQLite state-machine legality.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/btreekv.h"
#include "db/engine.h"
#include "db/hashkv.h"
#include "db/lsmkv.h"
#include "db/minisql.h"
#include "db/mvkv.h"
#include "platform/rng.h"

namespace asl::db {
namespace {

std::string key_of(std::uint64_t i) { return "key" + std::to_string(i); }
std::string val_of(std::uint64_t i) { return "val" + std::to_string(i); }

// --------------------------------------------------------------- HashKv
TEST(HashKv, PutGetRoundTrip) {
  HashKv kv(16);
  EXPECT_TRUE(kv.put("a", "1"));
  EXPECT_FALSE(kv.put("a", "2"));  // overwrite: not new
  EXPECT_EQ(kv.get("a").value_or(""), "2");
  EXPECT_FALSE(kv.get("missing").has_value());
}

TEST(HashKv, RemoveAndSize) {
  HashKv kv(8);
  for (std::uint64_t i = 0; i < 100; ++i) kv.put(key_of(i), val_of(i));
  EXPECT_EQ(kv.size(), 100u);
  EXPECT_TRUE(kv.remove(key_of(50)));
  EXPECT_FALSE(kv.remove(key_of(50)));
  EXPECT_EQ(kv.size(), 99u);
  EXPECT_FALSE(kv.get(key_of(50)).has_value());
}

TEST(HashKv, ForEachSeesEverything) {
  HashKv kv(4);
  for (std::uint64_t i = 0; i < 64; ++i) kv.put(key_of(i), val_of(i));
  std::set<std::string> seen;
  kv.for_each([&](const std::string& k, const std::string&) {
    seen.insert(k);
  });
  EXPECT_EQ(seen.size(), 64u);
}

TEST(HashKv, ConcurrentMixedOps) {
  HashKv kv(32);
  constexpr int kThreads = 4;
  constexpr int kOps = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t k = rng.below(256);
        switch (rng.below(3)) {
          case 0: kv.put(key_of(k), val_of(k)); break;
          case 1: kv.get(key_of(k)); break;
          default: kv.remove(key_of(k)); break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every surviving key must map to its own value (no torn writes).
  kv.for_each([&](const std::string& k, const std::string& v) {
    EXPECT_EQ("val" + k.substr(3), v);
  });
}

TEST(HashKv, ConcurrentForEachDoesNotDeadlock) {
  HashKv kv(8);
  for (std::uint64_t i = 0; i < 32; ++i) kv.put(key_of(i), val_of(i));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(5);
    while (!stop.load()) kv.put(key_of(rng.below(64)), "x");
  });
  for (int i = 0; i < 20; ++i) {
    std::size_t n = 0;
    kv.for_each([&](const std::string&, const std::string&) { ++n; });
    EXPECT_GE(n, 32u);
  }
  stop.store(true);
  writer.join();
}

// --------------------------------------------------------------- BtreeKv
TEST(BtreeKv, PutGetOverwrite) {
  BtreeKv kv;
  kv.put(10, "a");
  kv.put(10, "b");
  EXPECT_EQ(kv.get(10).value_or(""), "b");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(BtreeKv, OrderedInsertSplitsCorrectly) {
  BtreeKv kv;
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t i = 0; i < kN; ++i) kv.put(i, val_of(i));
  EXPECT_EQ(kv.size(), kN);
  EXPECT_GT(kv.height(), 1u);  // must have split
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(kv.get(i).value_or(""), val_of(i)) << i;
  }
}

TEST(BtreeKv, RandomInsertLookup) {
  BtreeKv kv;
  Rng rng(42);
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.below(1 << 20);
    keys.insert(k);
    kv.put(k, val_of(k));
  }
  EXPECT_EQ(kv.size(), keys.size());
  for (std::uint64_t k : keys) {
    ASSERT_TRUE(kv.get(k).has_value());
  }
  EXPECT_FALSE(kv.get(1 << 21).has_value());
}

TEST(BtreeKv, RangeScanOrderedAndComplete) {
  BtreeKv kv;
  for (std::uint64_t i = 0; i < 500; ++i) kv.put(i * 2, val_of(i));
  auto out = kv.range(100, 200);
  ASSERT_FALSE(out.empty());
  std::uint64_t prev = 0;
  for (const auto& [k, v] : out) {
    EXPECT_GE(k, 100u);
    EXPECT_LE(k, 200u);
    EXPECT_GT(k, prev);
    prev = k;
  }
  EXPECT_EQ(out.size(), 51u);  // 100,102,...,200
}

TEST(BtreeKv, EraseRemovesKey) {
  BtreeKv kv;
  for (std::uint64_t i = 0; i < 100; ++i) kv.put(i, val_of(i));
  EXPECT_TRUE(kv.erase(55));
  EXPECT_FALSE(kv.erase(55));
  EXPECT_FALSE(kv.get(55).has_value());
  EXPECT_EQ(kv.size(), 99u);
}

TEST(BtreeKv, CursorPoolRecycles) {
  BtreeKv kv;
  kv.put(1, "x");
  const std::size_t total_after_one = kv.pool_total();
  for (int i = 0; i < 100; ++i) kv.get(1);
  // Sequential ops reuse the same cursor; the pool must not grow.
  EXPECT_EQ(kv.pool_total(), total_after_one);
  EXPECT_EQ(kv.pool_free(), kv.pool_total());
}

TEST(BtreeKv, ConcurrentInsertsAllSurvive) {
  BtreeKv kv;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 1500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(t) * kPer + i;
        kv.put(k, val_of(k));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(kv.size(), kThreads * kPer);
  for (std::uint64_t k = 0; k < kThreads * kPer; ++k) {
    ASSERT_EQ(kv.get(k).value_or(""), val_of(k));
  }
}

// ----------------------------------------------------------------- MvKv
TEST(MvKv, PutGetErase) {
  MvKv kv;
  kv.put(1, "a");
  kv.put(2, "b");
  EXPECT_EQ(kv.get(1).value_or(""), "a");
  EXPECT_TRUE(kv.erase(1));
  EXPECT_FALSE(kv.erase(1));
  EXPECT_FALSE(kv.get(1).has_value());
  EXPECT_EQ(kv.size(), 1u);
}

TEST(MvKv, SnapshotIsolation) {
  MvKv kv;
  kv.put(1, "old");
  MvKv::Snapshot snap = kv.snapshot();
  kv.put(1, "new");
  kv.put(2, "added");
  // The snapshot must still see the old world.
  EXPECT_EQ(snap.get(1).value_or(""), "old");
  EXPECT_FALSE(snap.get(2).has_value());
  // Fresh reads see the new world.
  EXPECT_EQ(kv.get(1).value_or(""), "new");
}

TEST(MvKv, VersionAdvancesOnWrites) {
  MvKv kv;
  const std::uint64_t v0 = kv.version();
  kv.put(1, "a");
  EXPECT_EQ(kv.version(), v0 + 1);
  kv.erase(1);
  EXPECT_EQ(kv.version(), v0 + 2);
  kv.erase(1);  // no-op: version unchanged
  EXPECT_EQ(kv.version(), v0 + 2);
}

TEST(MvKv, RangeQuery) {
  MvKv kv;
  for (std::uint64_t i = 0; i < 100; ++i) kv.put(i * 3, val_of(i));
  auto out = kv.range(30, 60);
  std::uint64_t prev = 0;
  for (const auto& [k, v] : out) {
    EXPECT_GE(k, 30u);
    EXPECT_LE(k, 60u);
    EXPECT_GE(k, prev);
    prev = k;
  }
  EXPECT_EQ(out.size(), 11u);  // 30,33,...,60
}

TEST(MvKv, DeleteWithTwoChildren) {
  MvKv kv;
  // Build a shape where the root has two children, then delete the root key.
  kv.put(50, "root");
  kv.put(25, "l");
  kv.put(75, "r");
  kv.put(60, "rl");
  EXPECT_TRUE(kv.erase(50));
  EXPECT_FALSE(kv.get(50).has_value());
  for (std::uint64_t k : {25u, 75u, 60u}) {
    EXPECT_TRUE(kv.get(k).has_value()) << k;
  }
}

TEST(MvKv, ConcurrentReadersDuringWrites) {
  MvKv kv;
  for (std::uint64_t i = 0; i < 500; ++i) kv.put(i, val_of(i));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      Rng rng(7);
      while (!stop.load()) {
        MvKv::Snapshot snap = kv.snapshot();
        // Within one snapshot, a key read twice must agree.
        const std::uint64_t k = rng.below(500);
        auto a = snap.get(k);
        auto b = snap.get(k);
        if (a != b) read_errors.fetch_add(1);
      }
    });
  }
  for (std::uint64_t i = 0; i < 2000; ++i) {
    kv.put(i % 500, "updated" + std::to_string(i));
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(read_errors.load(), 0u);
}

// ----------------------------------------------------------------- LsmKv
TEST(LsmKv, PutGetNewestWins) {
  LsmKv kv;
  kv.put(1, "v1");
  kv.put(1, "v2");
  EXPECT_EQ(kv.get(1).value_or(""), "v2");
}

TEST(LsmKv, TombstoneHidesKey) {
  LsmKv kv;
  kv.put(1, "a");
  kv.erase(1);
  EXPECT_FALSE(kv.get(1).has_value());
  kv.put(1, "b");
  EXPECT_EQ(kv.get(1).value_or(""), "b");
}

TEST(LsmKv, RotationCreatesRuns) {
  LsmKv::Options opt;
  opt.memtable_limit = 16;
  LsmKv kv(opt);
  for (std::uint64_t i = 0; i < 100; ++i) kv.put(i, val_of(i));
  EXPECT_GT(kv.num_runs(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(kv.get(i).value_or(""), val_of(i)) << i;
  }
}

TEST(LsmKv, CompactionBoundsRunCount) {
  LsmKv::Options opt;
  opt.memtable_limit = 8;
  opt.max_runs = 3;
  LsmKv kv(opt);
  for (std::uint64_t i = 0; i < 500; ++i) kv.put(i % 64, val_of(i));
  EXPECT_LE(kv.num_runs(), 3u);
}

TEST(LsmKv, CompactAllPreservesData) {
  LsmKv::Options opt;
  opt.memtable_limit = 8;
  LsmKv kv(opt);
  for (std::uint64_t i = 0; i < 200; ++i) kv.put(i, val_of(i));
  kv.erase(13);
  kv.compact_all();
  EXPECT_EQ(kv.num_runs(), 1u);
  EXPECT_EQ(kv.memtable_entries(), 0u);
  EXPECT_FALSE(kv.get(13).has_value());
  EXPECT_EQ(kv.get(7).value_or(""), val_of(7));
}

TEST(LsmKv, SnapshotUnaffectedByLaterWrites) {
  LsmKv kv;
  kv.put(1, "old");
  LsmKv::Snapshot snap = kv.snapshot();
  kv.put(1, "new");
  EXPECT_EQ(snap.get(1).value_or(""), "old");
  EXPECT_EQ(kv.get(1).value_or(""), "new");
}

TEST(LsmKv, ConcurrentPutsAndGets) {
  LsmKv::Options opt;
  opt.memtable_limit = 64;
  LsmKv kv(opt);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 11);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t k = rng.below(128);
        if (rng.chance(0.5)) {
          kv.put(k, val_of(k));
        } else {
          auto v = kv.get(k);
          if (v.has_value()) {
            EXPECT_EQ(*v, val_of(k));
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

// ---------------------------------------------------- LsmKv under churn

// Built via append rather than operator+ chains: GCC 12's -O2 -Wrestrict
// false-positives on "literal" + std::to_string(...) temporaries.
std::string round_val(int round, std::uint64_t key) {
  std::string s = "r";
  s += std::to_string(round);
  s += ':';
  s += std::to_string(key);
  return s;
}

TEST(LsmKv, SnapshotConsistentAcrossRotationAndCompaction) {
  // The satellite edge case: a snapshot taken before heavy write churn must
  // keep seeing one consistent version while the engine rotates memtables
  // and compacts runs underneath it — interleaved gets against the live
  // store see the new world the whole time.
  LsmKv::Options opt;
  opt.memtable_limit = 8;  // rotate constantly
  opt.max_runs = 2;        // compact constantly
  LsmKv kv(opt);
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    kv.put(k, round_val(0, k));
  }
  const LsmKv::Snapshot snap = kv.snapshot();

  for (int round = 1; round <= 5; ++round) {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      kv.put(k, round_val(round, k));
      // Interleaved live get: always the newest version, mid-rotation or
      // mid-compaction alike.
      ASSERT_EQ(kv.get(k).value_or(""), round_val(round, k))
          << "round " << round << " key " << k;
      // Interleaved snapshot get: still round 0, every time.
      ASSERT_EQ(snap.get(k).value_or(""), round_val(0, k))
          << "round " << round << " key " << k;
    }
  }
  EXPECT_LE(kv.num_runs(), opt.max_runs) << "compaction must bound the runs";

  // A key erased after the snapshot stays visible in it.
  kv.erase(7);
  EXPECT_FALSE(kv.get(7).has_value());
  EXPECT_EQ(snap.get(7).value_or(""), round_val(0, 7));
}

TEST(LsmKv, ConcurrentSnapshotReadersSeeOneVersionPerKeyRead) {
  LsmKv::Options opt;
  opt.memtable_limit = 16;
  opt.max_runs = 3;
  LsmKv kv(opt);
  constexpr std::uint64_t kKeys = 128;
  for (std::uint64_t k = 0; k < kKeys; ++k) kv.put(k, "seed");
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistencies{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      Rng rng(17);
      while (!stop.load()) {
        const LsmKv::Snapshot snap = kv.snapshot();
        const std::uint64_t k = rng.below(kKeys);
        // Within one snapshot, a key read twice must agree even while the
        // writer below forces rotation + compaction.
        if (snap.get(k) != snap.get(k)) inconsistencies.fetch_add(1);
      }
    });
  }
  for (std::uint64_t i = 0; i < 4000; ++i) {
    std::string v = "w";
    v += std::to_string(i);
    kv.put(i % kKeys, v);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(inconsistencies.load(), 0u);
  EXPECT_LE(kv.num_runs(), opt.max_runs);
}

TEST(BtreeKv, OverwriteAfterSplitsKeepsOneVersion) {
  BtreeKv kv;
  constexpr std::uint64_t kN = 2000;  // deep enough to have split
  for (std::uint64_t i = 0; i < kN; ++i) kv.put(i, val_of(i));
  ASSERT_GT(kv.height(), 1u);
  for (std::uint64_t i = 0; i < kN; i += 3) kv.put(i, "new" + val_of(i));
  EXPECT_EQ(kv.size(), kN) << "overwrites must not grow the tree";
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(kv.get(i).value_or(""),
              i % 3 == 0 ? "new" + val_of(i) : val_of(i))
        << i;
  }
}

TEST(BtreeKv, EraseThenReinsertRoundTrips) {
  BtreeKv kv;
  for (std::uint64_t i = 0; i < 300; ++i) kv.put(i, val_of(i));
  for (std::uint64_t i = 0; i < 300; i += 2) EXPECT_TRUE(kv.erase(i));
  EXPECT_EQ(kv.size(), 150u);
  for (std::uint64_t i = 0; i < 300; i += 2) {
    EXPECT_FALSE(kv.get(i).has_value()) << i;
    EXPECT_FALSE(kv.erase(i)) << "double erase must report absence";
  }
  for (std::uint64_t i = 0; i < 300; i += 2) kv.put(i, "back" + val_of(i));
  EXPECT_EQ(kv.size(), 300u);
  EXPECT_EQ(kv.get(42).value_or(""), "back" + val_of(42));
  EXPECT_EQ(kv.get(43).value_or(""), val_of(43));
}

// ------------------------------------------------------ engine registry
TEST(KvEngineRegistry, RoundTripsEveryRegisteredName) {
  const std::vector<std::string> names = kv_engine_names();
  ASSERT_GE(names.size(), 3u);
  for (const std::string& name : names) {
    const std::unique_ptr<KvEngine> engine = make_kv_engine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->name(), name);
    EXPECT_FALSE(default_cost_profile(name).empty())
        << name << " must ship a calibrated default CostProfile";
  }
  // Sorted, as documented (the benches rely on the order being stable).
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
}

TEST(KvEngineRegistry, UnknownNameYieldsClearError) {
  EXPECT_EQ(make_kv_engine("rocksdb"), nullptr);
  EXPECT_TRUE(default_cost_profile("rocksdb").empty());
  const std::string msg = kv_engine_error("rocksdb");
  EXPECT_NE(msg.find("rocksdb"), std::string::npos)
      << "the error must name the offending engine";
  for (const std::string& name : kv_engine_names()) {
    EXPECT_NE(msg.find(name), std::string::npos)
        << "the error must list the registered engines: " << msg;
  }
}

TEST(KvEngineContract, PutGetEraseSizeAcrossEngines) {
  for (const std::string& name : kv_engine_names()) {
    const std::unique_ptr<KvEngine> engine = make_kv_engine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_FALSE(engine->get(1).has_value()) << name;
    engine->put(1, "a");
    engine->put(2, "b");
    engine->put(1, "a2");  // overwrite: newest wins, size unchanged
    EXPECT_EQ(engine->get(1).value_or(""), "a2") << name;
    EXPECT_EQ(engine->get(2).value_or(""), "b") << name;
    EXPECT_EQ(engine->size(), 2u) << name;
    EXPECT_TRUE(engine->erase(1)) << name;
    EXPECT_FALSE(engine->erase(1)) << name << ": double erase";
    EXPECT_FALSE(engine->get(1).has_value()) << name;
    EXPECT_EQ(engine->size(), 1u) << name;
  }
}

TEST(KvEngineContract, CostProfilesEncodeTheDocumentedShapes) {
  // The checked-in classes carry the engine stories the sweep relies on:
  // hash symmetric, btree moderately put-heavier, LSM strongly put-heavy
  // under the lock with its get work pushed off-lock.
  const CostProfile hash = default_cost_profile("hash");
  const CostProfile btree = default_cost_profile("btree");
  const CostProfile lsm = default_cost_profile("lsm");
  EXPECT_EQ(hash.get.cs_nops, hash.put.cs_nops);
  EXPECT_GT(btree.put.cs_nops, btree.get.cs_nops);
  EXPECT_GT(lsm.put.cs_nops, lsm.get.cs_nops * 4);
  EXPECT_GT(lsm.get.post_nops, lsm.get.cs_nops)
      << "LSM gets read off-lock against the snapshot";
  // scaled() preserves asymmetry (it is not a fold back to one number).
  const CostProfile heavy = lsm.scaled(100.0);
  EXPECT_EQ(heavy.put.cs_nops, lsm.put.cs_nops * 100);
  EXPECT_EQ(heavy.get.cs_nops, lsm.get.cs_nops * 100);
  EXPECT_TRUE(CostProfile{}.empty());
  EXPECT_FALSE(lsm.empty());
}

TEST(KvEngineContract, LockFreeGetCapabilityMatchesProfileFlag) {
  // The engine's runtime capability and the registry profile's routing flag
  // are two statements of one fact — KvService routes on the profile, the
  // engine must actually be safe for it. Pin them together for every
  // registered engine, and pin which engines claim the capability at all.
  for (const std::string& name : kv_engine_names()) {
    const std::unique_ptr<KvEngine> engine = make_kv_engine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->lock_free_gets(), default_cost_profile(name).get_lock_free)
        << name << ": capability and profile flag must agree";
    EXPECT_EQ(engine->lock_free_gets(), name == "mvcc")
        << name << ": only the MVCC engine serves gets without the shard lock";
  }
  // scaled() must not drop the routing flag (it scales costs, not semantics).
  EXPECT_TRUE(default_cost_profile("mvcc").scaled(100.0).get_lock_free);
  EXPECT_FALSE(default_cost_profile("hash").scaled(100.0).get_lock_free);
}

TEST(MvKv, ReclaimerFreesRetiredVersionsUnderChurn) {
  // The engine-level view of DESIGN.md §8: put churn with no live snapshot
  // must actually free superseded version nodes (not just retire them), and
  // the outstanding backlog must respect the reclaimer's bound.
  MvKv kv;
  for (std::uint64_t i = 0; i < 2000; ++i) kv.put(i % 64, val_of(i));
  EXPECT_GT(kv.reclaimer().freed_count(), 0u)
      << "churn must recycle version nodes";
  EXPECT_LE(kv.reclaimer().retired_backlog(),
            kv.reclaimer().backlog_bound() + kv.reclaimer().batch())
      << "backlog must stay within one in-flight batch of the bound";
}

// --------------------------------------------------------------- MiniSql
TEST(MiniSql, CreateTableOnce) {
  MiniSql db;
  EXPECT_TRUE(db.create_table("t"));
  EXPECT_FALSE(db.create_table("t"));
  EXPECT_TRUE(db.has_table("t"));
  EXPECT_FALSE(db.has_table("u"));
}

TEST(MiniSql, InsertAndPointSelect) {
  MiniSql db;
  db.create_table("t");
  EXPECT_TRUE(db.insert("t", {1, 10, "one"}));
  EXPECT_TRUE(db.insert("t", {2, 20, "two"}));
  auto row = db.select_point("t", 2);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->payload, "two");
  EXPECT_FALSE(db.select_point("t", 3).has_value());
}

TEST(MiniSql, RangeSelectWithFilter) {
  MiniSql db;
  db.create_table("t");
  for (std::int64_t i = 0; i < 100; ++i) {
    db.insert("t", {i, i % 10, "row"});
  }
  auto rows = db.select_range("t", 10, 50, 5);
  for (const auto& r : rows) {
    EXPECT_GE(r.id, 10);
    EXPECT_LE(r.id, 50);
    EXPECT_GE(r.score, 5);
  }
  // ids 10..50 inclusive with score (id%10) >= 5: 5..9 in each decade.
  EXPECT_EQ(rows.size(), 20u);
}

TEST(MiniSql, FullScanReturnsAllRows) {
  MiniSql db;
  db.create_table("t");
  for (std::int64_t i = 0; i < 77; ++i) db.insert("t", {i, 0, "x"});
  EXPECT_EQ(db.full_scan("t").size(), 77u);
  EXPECT_EQ(db.table_rows("t"), 77u);
}

TEST(MiniSql, DeferredTxnTakesLocksLazily) {
  MiniSql db;
  db.create_table("t");
  MiniSql::Txn txn = db.begin();
  EXPECT_EQ(txn.state(), MiniSql::LockState::kUnlocked);  // DEFERRED
  txn.select_point("t", 1);
  EXPECT_EQ(txn.state(), MiniSql::LockState::kShared);
  txn.insert("t", {1, 0, "x"});
  EXPECT_EQ(txn.state(), MiniSql::LockState::kReserved);
  EXPECT_TRUE(txn.commit());
  EXPECT_EQ(db.global_state(), MiniSql::LockState::kUnlocked);
}

TEST(MiniSql, SecondWriterGetsBusy) {
  MiniSql db;
  db.create_table("t");
  MiniSql::Txn w1 = db.begin();
  EXPECT_TRUE(w1.insert("t", {1, 0, "a"}));
  MiniSql::Txn w2 = db.begin();
  EXPECT_FALSE(w2.insert("t", {2, 0, "b"}));  // SQLITE_BUSY
  w2.rollback();
  EXPECT_TRUE(w1.commit());
  // After w1 commits, a new writer proceeds.
  EXPECT_TRUE(db.insert("t", {2, 0, "b"}));
  EXPECT_GT(db.busy_rejections(), 0u);
}

TEST(MiniSql, RollbackDiscardsWrites) {
  MiniSql db;
  db.create_table("t");
  {
    MiniSql::Txn txn = db.begin();
    txn.insert("t", {1, 0, "x"});
    txn.rollback();
  }
  EXPECT_EQ(db.table_rows("t"), 0u);
  EXPECT_EQ(db.global_state(), MiniSql::LockState::kUnlocked);
}

TEST(MiniSql, DestructorRollsBack) {
  MiniSql db;
  db.create_table("t");
  {
    MiniSql::Txn txn = db.begin();
    txn.insert("t", {1, 0, "x"});
    // no commit
  }
  EXPECT_EQ(db.table_rows("t"), 0u);
}

TEST(MiniSql, ReadersCoexistWithReservedWriter) {
  MiniSql db;
  db.create_table("t");
  db.insert("t", {1, 0, "x"});
  MiniSql::Txn writer = db.begin();
  EXPECT_TRUE(writer.insert("t", {2, 0, "y"}));  // RESERVED held
  // A concurrent reader may still take SHARED.
  MiniSql::Txn reader = db.begin();
  EXPECT_TRUE(reader.select_point("t", 1).has_value());
  reader.rollback();
  EXPECT_TRUE(writer.commit());
}

TEST(MiniSql, ConcurrentTransactionsSerializeCorrectly) {
  MiniSql db;
  db.create_table("t");
  constexpr int kThreads = 4;
  constexpr int kPer = 300;
  std::atomic<std::int64_t> next_id{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int done = 0;
      while (done < kPer) {
        MiniSql::Txn txn = db.begin();
        const std::int64_t id = next_id.fetch_add(1);
        if (txn.insert("t", {id, id % 7, "p"})) {
          ASSERT_TRUE(txn.commit());
          ++done;
        } else {
          txn.rollback();  // busy: retry with a fresh id (ids may be sparse)
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.table_rows("t"), static_cast<std::size_t>(kThreads) * kPer);
  EXPECT_EQ(db.commits(), static_cast<std::uint64_t>(kThreads) * kPer);
}

}  // namespace
}  // namespace asl::db
