// Runtime-layer tests: EpochRegistry registration/snapshot/reset semantics,
// the single DispatchPolicy implementation of Algorithm 3 (including parity
// between the real epoch feedback path and the simulator's), the
// WindowController min_window floor and the fixed_unit ablation switch, and
// the hardened nested-epoch bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "asl/epoch.h"
#include "asl/libasl.h"
#include "asl/runtime.h"
#include "asl/window_controller.h"
#include "platform/topology.h"
#include "sim/sim_runner.h"

namespace asl {
namespace {

// ---------------------------------------------------------- DispatchPolicy

TEST(DispatchPolicy, BigCoresEnqueueImmediately) {
  const LockPlan p = DispatchPolicy::plan(CoreType::kBig, 12345);
  EXPECT_TRUE(p.immediate);
}

TEST(DispatchPolicy, LittleCoresStandByForTheWindow) {
  const LockPlan p = DispatchPolicy::plan(CoreType::kLittle, 12345);
  EXPECT_FALSE(p.immediate);
  EXPECT_EQ(p.window_ns, 12345u);
}

TEST(DispatchPolicy, OnlyLittleCoresUpdateWindows) {
  EXPECT_FALSE(DispatchPolicy::updates_window(CoreType::kBig));
  EXPECT_TRUE(DispatchPolicy::updates_window(CoreType::kLittle));
}

TEST(DispatchPolicy, NoEpochWindowIsTheLooseMaximum) {
  EXPECT_EQ(DispatchPolicy::no_epoch_window(), kMaxReorderWindow);
}

// The policy drives any reorderable-shaped lock; record which entry point
// it picks.
struct RecordingReorderable {
  int immediate_calls = 0;
  std::vector<std::uint64_t> reorder_windows;
  void lock_immediately() { ++immediate_calls; }
  void lock_reorder(std::uint64_t w) { reorder_windows.push_back(w); }
};

TEST(DispatchPolicy, LockHelperRoutesByCoreType) {
  RecordingReorderable lk;
  DispatchPolicy::lock(lk, CoreType::kBig, 500);
  EXPECT_EQ(lk.immediate_calls, 1);
  EXPECT_TRUE(lk.reorder_windows.empty());
  DispatchPolicy::lock(lk, CoreType::kLittle, 500);
  EXPECT_EQ(lk.immediate_calls, 1);
  ASSERT_EQ(lk.reorder_windows.size(), 1u);
  EXPECT_EQ(lk.reorder_windows[0], 500u);
}

TEST(DispatchPolicy, BigCoresNeverEvaluateTheWindowSource) {
  RecordingReorderable lk;
  bool window_queried = false;
  auto window = [&window_queried] {
    window_queried = true;
    return std::uint64_t{500};
  };
  DispatchPolicy::lock(lk, CoreType::kBig, window);
  EXPECT_EQ(lk.immediate_calls, 1);
  EXPECT_FALSE(window_queried);  // the FIFO fast path skips epoch state
  DispatchPolicy::lock(lk, CoreType::kLittle, window);
  EXPECT_TRUE(window_queried);
  ASSERT_EQ(lk.reorder_windows.size(), 1u);
  EXPECT_EQ(lk.reorder_windows[0], 500u);
}

// Parity: the real library's epoch feedback (epoch_end_with_latency through
// the thread-local controller) and the simulator's feedback step
// (sim::asl_epoch_feedback through the same DispatchPolicy gate) must
// produce identical window sequences for the same latency trace.
TEST(DispatchPolicy, RealAndSimFeedbackProduceIdenticalWindowSequences) {
  WindowController::Config cfg;
  cfg.initial_window = 100'000;
  cfg.initial_unit = 1'000;
  cfg.percentile = 90;
  const std::uint64_t slo = 2'000;
  const std::vector<std::uint64_t> trace = {10,   20,  5'000, 30,   8'000,
                                            1,    1,   9'999, 500,  2'001,
                                            2'000, 100, 7,     4'000, 3};

  std::vector<std::uint64_t> real_windows;
  {
    ScopedCoreType little(CoreType::kLittle);
    reset_thread_epochs();
    set_epoch_controller_config(cfg);
    const int id = 42;
    for (const std::uint64_t latency : trace) {
      ASSERT_EQ(epoch_start(id), 0);
      ASSERT_EQ(epoch_end_with_latency(id, slo, latency), 0);
      real_windows.push_back(epoch_window(id));
    }
    set_epoch_controller_config(WindowController::Config{});
    reset_thread_epochs();
  }

  std::vector<std::uint64_t> sim_windows;
  {
    WindowController controller(cfg);
    for (const std::uint64_t latency : trace) {
      sim::asl_epoch_feedback(sim::Policy::kAsl, /*use_slo=*/true,
                              CoreType::kLittle, controller, latency, slo);
      sim_windows.push_back(controller.window());
    }
  }

  EXPECT_EQ(real_windows, sim_windows);
}

TEST(DispatchPolicy, BigCoreFeedbackIsSkippedOnBothPaths) {
  WindowController::Config cfg;
  cfg.initial_window = 100'000;

  ScopedCoreType big(CoreType::kBig);
  reset_thread_epochs();
  set_epoch_controller_config(cfg);
  const int id = 43;
  ASSERT_EQ(epoch_start(id), 0);
  ASSERT_EQ(epoch_end_with_latency(id, /*slo=*/1, /*latency=*/1'000'000), 0);
  EXPECT_EQ(epoch_window(id), 100'000u);  // real path: unchanged
  set_epoch_controller_config(WindowController::Config{});
  reset_thread_epochs();

  WindowController controller(cfg);
  sim::asl_epoch_feedback(sim::Policy::kAsl, true, CoreType::kBig, controller,
                          1'000'000, 1);
  EXPECT_EQ(controller.window(), 100'000u);  // sim path: unchanged
}

// -------------------------------------------------------- WindowController

TEST(WindowController, MinWindowFloorsMultiplicativeDecrease) {
  WindowController::Config cfg;
  cfg.initial_window = 1 << 20;
  cfg.min_window = 64;
  WindowController ctrl(cfg);
  for (int i = 0; i < 100; ++i) ctrl.on_epoch_end(/*latency=*/100, /*slo=*/1);
  EXPECT_EQ(ctrl.window(), 64u);
}

TEST(WindowController, InitialWindowClampedToFloor) {
  WindowController::Config cfg;
  cfg.initial_window = 10;
  cfg.min_window = 64;
  WindowController ctrl(cfg);
  EXPECT_EQ(ctrl.window(), 64u);
}

TEST(WindowController, FixedUnitIsNeverRederived) {
  WindowController::Config cfg;
  cfg.initial_window = 1 << 20;
  cfg.initial_unit = 100;
  cfg.fixed_unit = true;
  cfg.percentile = 99;
  WindowController ctrl(cfg);
  ctrl.on_epoch_end(/*latency=*/100, /*slo=*/1);  // violation halves window
  EXPECT_EQ(ctrl.window(), (1u << 20) / 2);
  EXPECT_EQ(ctrl.unit(), 100u);  // would be ~5242 if derived
  const std::uint64_t w = ctrl.window();
  ctrl.on_epoch_end(/*latency=*/1, /*slo=*/100);  // growth adds the unit
  EXPECT_EQ(ctrl.window(), w + 100);
}

// --------------------------------------------------- nested-epoch hardening

TEST(EpochNesting, EndingAnEpochNotOnTheStackFails) {
  reset_thread_epochs();
  ASSERT_EQ(epoch_start(1), 0);
  EXPECT_EQ(epoch_end(2, 100), -1);   // 2 was never started
  EXPECT_EQ(current_epoch_id(), 1);   // stack untouched
  EXPECT_EQ(epoch_end(1, 100), 0);
  EXPECT_EQ(current_epoch_id(), -1);
  EXPECT_EQ(epoch_end(1, 100), -1);   // already ended
  reset_thread_epochs();
}

TEST(EpochNesting, EndingAnOuterEpochUnwindsAbandonedInnerFrames) {
  ScopedCoreType little(CoreType::kLittle);
  reset_thread_epochs();
  set_epoch_controller_config(WindowController::Config{});
  ASSERT_EQ(epoch_start(1), 0);
  ASSERT_EQ(epoch_start(2), 0);
  ASSERT_EQ(epoch_start(3), 0);
  const std::uint64_t w3_before = epoch_window(3);
  // Ending 2 abandons 3 (no feedback for it) and restores 1.
  EXPECT_EQ(epoch_end_with_latency(2, /*slo=*/100, /*latency=*/100'000), 0);
  EXPECT_EQ(current_epoch_id(), 1);
  EXPECT_EQ(epoch_window(3), w3_before);        // abandoned: untouched
  EXPECT_LT(epoch_window(2), w3_before);        // ended with a violation
  EXPECT_EQ(epoch_end(1, 100), 0);
  EXPECT_EQ(current_epoch_id(), -1);
  reset_thread_epochs();
}

// ------------------------------------------------------------ EpochRegistry

TEST(EpochRegistry, SupportsHundredsOfDynamicallyRegisteredEpochs) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  std::vector<int> ids;
  for (int i = 0; i < 300; ++i) {
    EpochOptions opts;
    opts.default_slo_ns = 1'000 * static_cast<std::uint64_t>(i + 1);
    const int id = reg.register_epoch("request-class-" + std::to_string(i),
                                      opts);
    ASSERT_GE(id, 0);
    ids.push_back(id);
  }
  EXPECT_EQ(reg.registered_count(), 300u);
  // Ids are distinct and resolvable by name.
  std::vector<int> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(reg.find("request-class-123"), ids[123]);
  const EpochDescriptor desc = reg.describe(ids[123]);
  EXPECT_EQ(desc.id, ids[123]);
  EXPECT_EQ(desc.name, "request-class-123");
  EXPECT_EQ(desc.options.default_slo_ns, 124'000u);
  // Every registered epoch works end to end.
  reset_thread_epochs();
  ASSERT_EQ(epoch_start(ids[299]), 0);
  EXPECT_EQ(epoch_end(ids[299]), 0);
  reset_thread_epochs();
  reg.reset_registrations();
}

TEST(EpochRegistry, RegisterByNameIsIdempotentAndUpdatesOptions) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  const int id = reg.register_epoch("txn");
  EpochOptions opts;
  opts.default_slo_ns = 5'000;
  EXPECT_EQ(reg.register_epoch("txn", opts), id);
  EXPECT_EQ(reg.registered_count(), 1u);
  EXPECT_EQ(reg.default_slo(id), 5'000u);
  opts.default_slo_ns = 9'000;
  EXPECT_TRUE(reg.set_options(id, opts));
  EXPECT_EQ(reg.default_slo(id), 9'000u);
  reg.reset_registrations();
}

TEST(EpochRegistry, FixedIdRegistrationCoexistsWithAutoIds) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  EXPECT_EQ(reg.register_epoch_id(0, "static-zero"), 0);
  EXPECT_EQ(reg.register_epoch("auto"), 1);  // skips the taken id
  EXPECT_TRUE(reg.registered(0));
  EXPECT_TRUE(reg.registered(1));
  EXPECT_FALSE(reg.registered(2));
  EXPECT_EQ(reg.register_epoch_id(kMaxEpochId, "out-of-range"), -1);
  EXPECT_EQ(reg.register_epoch_id(-1, "negative"), -1);
  reg.reset_registrations();
}

TEST(EpochRegistry, DefaultSloDrivesTheEpochEndOverload) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  ScopedCoreType little(CoreType::kLittle);
  reset_thread_epochs();
  set_epoch_controller_config(WindowController::Config{});

  // Generous default SLO: the wall-clock latency of an empty epoch meets
  // it, so the window grows by one unit.
  EpochOptions opts;
  opts.default_slo_ns = 10ull * 1000 * 1000 * 1000;  // 10 s
  const int fed = reg.register_epoch("with-slo", opts);
  ASSERT_EQ(epoch_start(fed), 0);
  const std::uint64_t w0 = epoch_window(fed);
  ASSERT_EQ(epoch_end(fed), 0);
  EXPECT_GT(epoch_window(fed), w0);

  // No default SLO: the overload pops the epoch but runs no feedback.
  const int unfed = reg.register_epoch("no-slo");
  ASSERT_EQ(epoch_start(unfed), 0);
  const std::uint64_t w1 = epoch_window(unfed);
  ASSERT_EQ(epoch_end(unfed), 0);
  EXPECT_EQ(epoch_window(unfed), w1);

  reset_thread_epochs();
  reg.reset_registrations();
}

TEST(EpochRegistry, EpochScopeWithoutDefaultSloRunsNoFeedback) {
  // The single-argument EpochScope must go through the epoch_end(id)
  // overload: with no registered default SLO the epoch pops with no
  // feedback, instead of treating slo=0 as "always violated" and
  // collapsing the window.
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  ScopedCoreType little(CoreType::kLittle);
  reset_thread_epochs();
  set_epoch_controller_config(WindowController::Config{});
  const int id = reg.register_epoch("scoped-no-slo");
  const std::uint64_t w0 = epoch_window(id);
  { EpochScope scope(id); }
  EXPECT_EQ(epoch_window(id), w0);
  EXPECT_EQ(current_epoch_id(), -1);
  reset_thread_epochs();
  reg.reset_registrations();
}

TEST(EpochRegistry, PerEpochControllerConfigSeedsFreshThreads) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  EpochOptions opts;
  opts.controller.initial_window = 77'777;
  const int id = reg.register_epoch("seeded", opts);
  // A fresh thread (no thread-local override) picks up the registry config.
  std::uint64_t seen = 0;
  std::thread([&] { seen = epoch_window(id); }).join();
  EXPECT_EQ(seen, 77'777u);
  reg.reset_registrations();
}

TEST(EpochRegistry, SnapshotAggregatesLiveThreadState) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  EpochOptions opts;
  opts.default_slo_ns = 1'000'000;
  const int id = reg.register_epoch("snapshotted", opts);

  reset_thread_epochs();
  {
    ScopedCoreType little(CoreType::kLittle);
    ASSERT_EQ(epoch_start(id), 0);
    ASSERT_EQ(epoch_end_with_latency(id, 1'000'000, 10), 0);
  }

  std::atomic<bool> worker_ready{false};
  std::atomic<bool> release_worker{false};
  std::thread worker([&] {
    ScopedCoreType little(CoreType::kLittle);
    for (int i = 0; i < 3; ++i) {
      epoch_start(id);
      epoch_end_with_latency(id, 1'000'000, 10);
    }
    worker_ready.store(true);
    while (!release_worker.load()) std::this_thread::yield();
  });
  while (!worker_ready.load()) std::this_thread::yield();

  const std::vector<EpochSnapshot> snaps = reg.snapshot();
  release_worker.store(true);
  worker.join();

  const EpochSnapshot* snap = nullptr;
  for (const EpochSnapshot& s : snaps) {
    if (s.id == id) snap = &s;
  }
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->name, "snapshotted");
  EXPECT_EQ(snap->default_slo_ns, 1'000'000u);
  EXPECT_GE(snap->threads, 2u);      // this thread + the worker
  EXPECT_GE(snap->completions, 4u);  // 1 here + 3 in the worker
  EXPECT_GT(snap->window_min, 0u);
  EXPECT_GE(snap->window_max, snap->window_min);
  EXPECT_GE(snap->window_mean, static_cast<double>(snap->window_min));

  reset_thread_epochs();
  reg.reset_registrations();
}

TEST(EpochRegistry, CompletionsSurviveThreadExit) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  const int id = reg.register_epoch("churned");
  std::thread([&] {
    for (int i = 0; i < 5; ++i) {
      epoch_start(id);
      epoch_end(id, 1'000'000);
    }
  }).join();
  const std::vector<EpochSnapshot> snaps = reg.snapshot();
  const EpochSnapshot* snap = nullptr;
  for (const EpochSnapshot& s : snaps) {
    if (s.id == id) snap = &s;
  }
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->completions, 5u);  // folded in at thread exit
  EXPECT_EQ(snap->threads, 0u);      // no live state remains
  reg.reset_registrations();
}

TEST(EpochRegistry, UnregisteredButUsedEpochsAppearInSnapshots) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  reset_thread_epochs();
  ASSERT_EQ(epoch_start(7), 0);
  ASSERT_EQ(epoch_end(7, 1'000), 0);
  const std::vector<EpochSnapshot> snaps = reg.snapshot();
  const EpochSnapshot* snap = nullptr;
  for (const EpochSnapshot& s : snaps) {
    if (s.id == 7) snap = &s;
  }
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->name, "epoch-7");
  EXPECT_GE(snap->threads, 1u);
  reset_thread_epochs();
  reg.reset_registrations();
}

TEST(EpochRegistry, ResetRegistrationsClearsEverything) {
  EpochRegistry& reg = EpochRegistry::instance();
  reg.reset_registrations();
  reg.register_epoch("a");
  reg.register_epoch("b");
  EXPECT_EQ(reg.registered_count(), 2u);
  reg.reset_registrations();
  EXPECT_EQ(reg.registered_count(), 0u);
  EXPECT_EQ(reg.find("a"), -1);
}

// Bounds shared with the legacy API.
TEST(EpochRegistry, IdBoundsMatchTheEpochApi) {
  EXPECT_EQ(epoch_start(kMaxEpochId), -1);
  EXPECT_EQ(epoch_start(-1), -1);
  EXPECT_EQ(epoch_end(kMaxEpochId, 1), -1);
  EXPECT_EQ(kMaxEpochs, kMaxEpochId);
}

// 16 threads race register_epoch / epoch_start / epoch_end over a small,
// overlapping name pool (a server's worker pools registering their request
// classes concurrently). Afterwards:
//  * ids are dense — the N distinct names got exactly the ids 0..N-1, and
//    re-registration agreed on the id across all threads;
//  * no completion is lost — the cross-thread snapshot (retired-completion
//    folding, every stress thread has exited) sums to exactly the number of
//    successful epoch_end calls;
//  * nested-epoch unwinding is clean — each thread mixes matched nests with
//    deliberate out-of-order ends, and only ends that return 0 count.
TEST(EpochRegistry, ConcurrentRegistrationAndUseIsLinearizable) {
  EpochRegistry& reg = EpochRegistry::instance();
  reset_thread_epochs();  // main-thread state must not leak into the sums
  reg.reset_registrations();

  constexpr int kThreads = 16;
  constexpr int kNames = 24;
  constexpr int kIters = 400;
  std::atomic<std::uint64_t> expected_completions{0};
  std::array<std::array<int, kNames>, kThreads> seen_ids{};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ScopedCoreType scoped(t % 2 == 0 ? CoreType::kBig : CoreType::kLittle);
      std::uint64_t done = 0;
      for (int i = 0; i < kIters; ++i) {
        const int name_index = (t + i) % kNames;
        EpochOptions opts;
        opts.default_slo_ns = 10'000;
        const int id =
            reg.register_epoch("stress-" + std::to_string(name_index), opts);
        ASSERT_GE(id, 0);
        seen_ids[static_cast<std::size_t>(t)]
                [static_cast<std::size_t>(name_index)] = id;
        const int other = reg.register_epoch(
            "stress-" + std::to_string((name_index + 7) % kNames));
        ASSERT_GE(other, 0);
        ASSERT_EQ(epoch_start(id), 0);
        switch (i % 3) {
          case 0:  // plain matched end
            if (epoch_end(id) == 0) done += 1;
            break;
          case 1:  // matched nest, inner then outer
            ASSERT_EQ(epoch_start(other), 0);
            if (epoch_end(other) == 0) done += 1;
            if (epoch_end(id, 10'000) == 0) done += 1;
            break;
          case 2:  // mismatched: ending the outer unwinds the abandoned
                   // inner frame, which must not count as a completion
            ASSERT_EQ(epoch_start(other), 0);
            if (epoch_end(id) == 0) done += 1;
            EXPECT_EQ(current_epoch_id(), -1) << "unwind must empty the stack";
            break;
        }
      }
      expected_completions.fetch_add(done, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();

  // Dense ids: every name resolves, the id set is exactly {0..kNames-1},
  // and every thread saw the same name -> id mapping.
  std::set<int> ids;
  for (int n = 0; n < kNames; ++n) {
    const int id = reg.find("stress-" + std::to_string(n));
    ASSERT_GE(id, 0);
    ids.insert(id);
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(seen_ids[static_cast<std::size_t>(t)]
                        [static_cast<std::size_t>(n)],
                id)
          << "thread " << t << " disagrees on name " << n;
    }
  }
  EXPECT_EQ(reg.registered_count(), static_cast<std::size_t>(kNames));
  EXPECT_EQ(static_cast<int>(ids.size()), kNames);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), kNames - 1);

  // No lost completions: all stress threads exited, so the snapshot counts
  // come from the retired-completion fold.
  std::uint64_t total = 0;
  for (const EpochSnapshot& s : reg.snapshot()) {
    total += s.completions;
  }
  EXPECT_EQ(total, expected_completions.load());
  reg.reset_registrations();
}

}  // namespace
}  // namespace asl
