// EpochReclaimer tests: grace-period safety (a pinned reader blocks every
// free it could observe), epoch advancement, nesting, the bounded-backlog
// backpressure contract, and TSan-targeted stress of the whole MVCC stack —
// put churn retiring version nodes under concurrent pinned snapshot reads
// (DESIGN.md §8). The threaded suites are the CI TSan job's main customers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "asl/reclaim.h"
#include "db/mvkv.h"
#include "platform/rng.h"

namespace asl {
namespace {

// A retired payload whose deleter bumps a shared counter — lets tests see
// exactly when the domain actually frees, not just when it could.
struct Tracked {
  explicit Tracked(std::atomic<std::uint64_t>& freed) : freed_(&freed) {}
  ~Tracked() { freed_->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<std::uint64_t>* freed_;
};

// Force the domain through >= 2 epochs and sweep: with no pins held this
// must free everything retired before the call.
void drain(EpochReclaimer& domain) {
  for (int i = 0; i < 4; ++i) {
    domain.try_advance();
    domain.sweep();
  }
}

TEST(EpochReclaimer, RetireThenDrainFrees) {
  std::atomic<std::uint64_t> freed{0};
  EpochReclaimer domain;
  domain.retire(new Tracked(freed));
  // Freshly retired: the grace period cannot have passed yet.
  EXPECT_EQ(freed.load(), 0u);
  EXPECT_EQ(domain.retired_backlog(), 1u);
  drain(domain);
  EXPECT_EQ(freed.load(), 1u);
  EXPECT_EQ(domain.retired_backlog(), 0u);
  EXPECT_EQ(domain.freed_count(), 1u);
}

TEST(EpochReclaimer, PinnedReaderBlocksFree) {
  std::atomic<std::uint64_t> freed{0};
  EpochReclaimer domain;
  domain.pin();
  ASSERT_TRUE(domain.pinned());
  domain.retire(new Tracked(freed));
  // The pin announced the epoch the node was retired in: no amount of
  // advancing/sweeping may free it while the pin is held — the epoch is
  // stuck at most one step ahead of the announcement.
  drain(domain);
  EXPECT_EQ(freed.load(), 0u);
  EXPECT_EQ(domain.retired_backlog(), 1u);
  domain.unpin();
  EXPECT_FALSE(domain.pinned());
  drain(domain);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(EpochReclaimer, NestedPinsReleaseOnOutermostUnpin) {
  std::atomic<std::uint64_t> freed{0};
  EpochReclaimer domain;
  domain.pin();
  domain.pin();  // nested
  domain.retire(new Tracked(freed));
  domain.unpin();  // inner: still pinned
  EXPECT_TRUE(domain.pinned());
  drain(domain);
  EXPECT_EQ(freed.load(), 0u);
  domain.unpin();  // outermost: quiescent now
  drain(domain);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(EpochReclaimer, GuardIsMovableRaii) {
  std::atomic<std::uint64_t> freed{0};
  EpochReclaimer domain;
  {
    EpochReclaimer::Guard guard(domain);
    EXPECT_TRUE(guard.holds());
    EXPECT_TRUE(domain.pinned());
    EpochReclaimer::Guard moved(std::move(guard));
    EXPECT_FALSE(guard.holds());
    EXPECT_TRUE(moved.holds());
    // One pin total: the move must not double-pin or early-unpin.
    domain.retire(new Tracked(freed));
    drain(domain);
    EXPECT_EQ(freed.load(), 0u);
  }
  EXPECT_FALSE(domain.pinned());
  drain(domain);
  EXPECT_EQ(freed.load(), 1u);
}

TEST(EpochReclaimer, EpochAdvancesOnlyWhenAnnouncementsCatchUp) {
  EpochReclaimer domain;
  const std::uint64_t e0 = domain.epoch();
  EXPECT_TRUE(domain.try_advance());  // no pins: free to advance
  EXPECT_EQ(domain.epoch(), e0 + 1);
  domain.pin();  // announces e0 + 1
  EXPECT_TRUE(domain.try_advance());  // announcement is current: e0 + 2
  // Now the pin's announcement (e0 + 1) is stale: stuck until unpin.
  EXPECT_FALSE(domain.try_advance());
  EXPECT_EQ(domain.epoch(), e0 + 2);
  domain.unpin();
  EXPECT_TRUE(domain.try_advance());
}

TEST(EpochReclaimer, UnpinnedRetireLoopHoldsBacklogBound) {
  // The backpressure contract: a quiescent (unpinned) retiring thread is
  // pushed back under the bound at every batch boundary, so mid-batch it
  // can sit at most one in-flight batch over it — never more.
  EpochReclaimer domain(ReclaimConfig{/*batch=*/8});
  std::atomic<std::uint64_t> freed{0};
  for (int i = 0; i < 1000; ++i) {
    domain.retire(new Tracked(freed));
    ASSERT_LE(domain.retired_backlog(),
              domain.backlog_bound() + domain.batch())
        << "at " << i;
  }
  drain(domain);
  EXPECT_EQ(freed.load(), 1000u);
  EXPECT_EQ(domain.retired_backlog(), 0u);
}

TEST(EpochReclaimer, PinnedRetirerIsExemptFromBackpressure) {
  // A thread that retires while itself pinned must not self-deadlock trying
  // to push the backlog down (its own pin is what blocks the epoch). The
  // bound is allowed to be exceeded until it unpins.
  EpochReclaimer domain(ReclaimConfig{/*batch=*/4});
  std::atomic<std::uint64_t> freed{0};
  domain.pin();
  const std::uint64_t n = 4 * domain.backlog_bound();
  for (std::uint64_t i = 0; i < n; ++i) domain.retire(new Tracked(freed));
  EXPECT_GT(domain.retired_backlog(), domain.backlog_bound());
  EXPECT_EQ(freed.load(), 0u);
  domain.unpin();
  drain(domain);
  EXPECT_EQ(freed.load(), n);
}

TEST(EpochReclaimer, DestructorFreesOutstandingNodes) {
  std::atomic<std::uint64_t> freed{0};
  {
    EpochReclaimer domain;
    for (int i = 0; i < 37; ++i) domain.retire(new Tracked(freed));
    EXPECT_LT(freed.load(), 37u);  // some still in grace period
  }
  EXPECT_EQ(freed.load(), 37u) << "destructor must not leak retired nodes";
}

// ------------------------------------------------------- threaded stress
// The suites below are the TSan targets: real threads racing pin/retire.

TEST(EpochReclaimerStress, ChurnWithReadersFreesEverythingAndHoldsBound) {
  EpochReclaimer domain(ReclaimConfig{/*batch=*/16});
  std::atomic<std::uint64_t> freed{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bound_violations{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        EpochReclaimer::Guard guard(domain);
        // Simulated short read-side section, as a snapshot get would be.
        std::atomic_signal_fence(std::memory_order_seq_cst);
      }
    });
  }

  constexpr std::uint64_t kRetires = 20000;
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kRetires; ++i) {
      domain.retire(new Tracked(freed));
      // The writer is quiescent, so retire()'s batch-boundary backpressure
      // applies; mid-batch it may run one batch over the bound, and the
      // pressure loop is attempt-bounded, so allow the rare overshoot while
      // a reader sits pinned — but it must be rare, not the steady state.
      if (domain.retired_backlog() >
          domain.backlog_bound() + domain.batch()) {
        bound_violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  drain(domain);
  EXPECT_EQ(freed.load(), kRetires) << "no retired node may be lost";
  EXPECT_EQ(domain.retired_backlog(), 0u);
  EXPECT_EQ(domain.freed_count(), kRetires);
  EXPECT_LT(bound_violations.load(), kRetires / 10)
      << "backpressure must hold the bound in the common case";
}

TEST(EpochReclaimerStress, ConcurrentRetirersConvergeToZeroBacklog) {
  EpochReclaimer domain(ReclaimConfig{/*batch=*/8});
  std::atomic<std::uint64_t> freed{0};
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPer = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        domain.retire(new Tracked(freed));
      }
    });
  }
  for (auto& t : threads) t.join();
  drain(domain);
  EXPECT_EQ(freed.load(), kThreads * kPer);
  EXPECT_EQ(domain.retired_backlog(), 0u);
}

// --------------------------------------------------- MvKv on top of EBR
// The reclaimer's real customer: copy-on-write version trees retired on
// every publish, snapshot gets pinning the domain across the traversal.

TEST(MvKvReclaim, PinnedSnapshotStaysFrozenUnderChurn) {
  db::MvKv kv(ReclaimConfig{/*batch=*/16});
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    kv.put(k, "r0:" + std::to_string(k));
  }
  const db::MvKv::Snapshot snap = kv.snapshot();
  // Heavy churn: every put retires the path it copied. The pinned snapshot
  // must keep seeing round 0 for every key, every time.
  for (int round = 1; round <= 20; ++round) {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      kv.put(k, "r" + std::to_string(round) + ":" + std::to_string(k));
      ASSERT_EQ(snap.get(k).value_or(""), "r0:" + std::to_string(k))
          << "round " << round << " key " << k;
    }
  }
  // While the snapshot pins, retired versions pile up past the bound (the
  // writer's backpressure gives up rather than deadlocking against our own
  // thread's pin)...
  EXPECT_GT(kv.reclaimer().retired_backlog(), 0u);
}

TEST(MvKvReclaim, BacklogDrainsAfterSnapshotsDrop) {
  db::MvKv kv(ReclaimConfig{/*batch=*/8});
  {
    const db::MvKv::Snapshot snap = kv.snapshot();
    for (std::uint64_t i = 0; i < 500; ++i) kv.put(i % 32, "churn");
    (void)snap;
  }
  // Snapshot dropped: the next writes' batch sweeps must pull the backlog
  // back under the bound (plus at most one in-flight batch).
  for (std::uint64_t i = 0; i < 64; ++i) kv.put(i % 32, "after");
  EXPECT_LE(kv.reclaimer().retired_backlog(),
            kv.reclaimer().backlog_bound() + kv.reclaimer().batch());
  EXPECT_GT(kv.reclaimer().freed_count(), 0u);
}

TEST(MvKvReclaim, ReadYourWritesPerPublisher) {
  // A publisher's own snapshot taken after its put must contain the put —
  // publish stores the root before retiring, and snapshot pins before
  // loading the root, so the new version is always reachable to it.
  db::MvKv kv;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    kv.put(i % 100, "v" + std::to_string(i));
    const db::MvKv::Snapshot snap = kv.snapshot();
    ASSERT_EQ(snap.get(i % 100).value_or(""), "v" + std::to_string(i)) << i;
  }
}

TEST(MvKvReclaimStress, ChurnWithPinnedReadersNoLostOrTornVersions) {
  // The acceptance stress (TSan job): writers churn puts (retiring version
  // nodes) while readers hold pinned snapshots mid-traversal. Values encode
  // key + monotone round so a reader can detect torn or resurrected
  // versions; per key the visible round never decreases across snapshots
  // taken in order by the same reader.
  // Batch sized so the writer's backpressure loop (which yields while a
  // reader sits pinned) triggers on real pile-ups, not every put — on a
  // single-core CI host some reader is pinned almost every instant, and a
  // tiny batch turns every retire into a scheduling fight.
  db::MvKv kv(ReclaimConfig{/*batch=*/256});
  constexpr std::uint64_t kKeys = 128;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    kv.put(k, std::to_string(k) + ":0");
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 31);
      std::vector<std::uint64_t> last_round(kKeys, 0);
      while (!stop.load(std::memory_order_relaxed)) {
        const db::MvKv::Snapshot snap = kv.snapshot();
        for (int i = 0; i < 8; ++i) {
          const std::uint64_t k = rng.below(kKeys);
          const std::string v = snap.get(k).value_or("");
          // Well-formed "<key>:<round>" with the right key and a round
          // that never runs backwards for this reader.
          const std::size_t colon = v.find(':');
          if (colon == std::string::npos ||
              v.substr(0, colon) != std::to_string(k)) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const std::uint64_t round = std::stoull(v.substr(colon + 1));
          if (round < last_round[k]) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
          last_round[k] = round;
        }
      }
    });
  }
  std::thread writer([&] {
    for (std::uint64_t round = 1; round <= 40; ++round) {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        kv.put(k, std::to_string(k) + ":" + std::to_string(round));
      }
    }
  });
  writer.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0u);
  // All snapshots dropped: a final churn round plus drain leaves nothing
  // older than the bound (plus one in-flight batch) outstanding.
  for (std::uint64_t k = 0; k < kKeys; ++k) kv.put(k, "final");
  EXPECT_LE(kv.reclaimer().retired_backlog(),
            kv.reclaimer().backlog_bound() + kv.reclaimer().batch());
  EXPECT_GT(kv.reclaimer().freed_count(), 0u);
}

}  // namespace
}  // namespace asl
