// Baseline lock tests: typed mutual-exclusion/try_lock/is_free suites over
// every Lockable, FIFO-order verification for the queue locks, and the
// proportional lock's rotation property.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "locks/any_lock.h"
#include "locks/clh.h"
#include "locks/lock_concepts.h"
#include "locks/mcs.h"
#include "locks/pthread_lock.h"
#include "locks/shfl_pb.h"
#include "locks/stp_mcs.h"
#include "locks/tas.h"
#include "locks/tas_backoff.h"
#include "locks/ticket.h"
#include "platform/topology.h"

namespace asl {
namespace {

template <typename L>
class LockTypes : public ::testing::Test {
 public:
  L lock;
};

using AllLocks =
    ::testing::Types<TasLock, TasBackoffLock, TicketLock, McsLock, ClhLock,
                     PthreadLock, StpMcsLock, ShflPbLock>;
TYPED_TEST_SUITE(LockTypes, AllLocks);

TYPED_TEST(LockTypes, UncontendedLockUnlock) {
  this->lock.lock();
  this->lock.unlock();
  this->lock.lock();
  this->lock.unlock();
}

TYPED_TEST(LockTypes, IsFreeTracksState) {
  EXPECT_TRUE(this->lock.is_free());
  this->lock.lock();
  EXPECT_FALSE(this->lock.is_free());
  this->lock.unlock();
  EXPECT_TRUE(this->lock.is_free());
}

TYPED_TEST(LockTypes, TryLockOnFreeSucceeds) {
  EXPECT_TRUE(this->lock.try_lock());
  this->lock.unlock();
}

TYPED_TEST(LockTypes, TryLockOnHeldFails) {
  this->lock.lock();
  std::atomic<int> result{-1};
  // try_lock from another thread (same-thread retry is UB for some locks).
  std::thread([&] { result = this->lock.try_lock() ? 1 : 0; }).join();
  EXPECT_EQ(result.load(), 0);
  this->lock.unlock();
}

TYPED_TEST(LockTypes, MutualExclusionCounter) {
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        this->lock.lock();
        counter = counter + 1;  // intentionally non-atomic
        this->lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TYPED_TEST(LockTypes, NoOverlapWitness) {
  // A stronger exclusion witness: a flag that must never be observed set by
  // another holder.
  std::atomic<int> inside{0};
  std::atomic<int> violations{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        this->lock.lock();
        if (inside.fetch_add(1, std::memory_order_acq_rel) != 0) {
          violations.fetch_add(1);
        }
        inside.fetch_sub(1, std::memory_order_acq_rel);
        this->lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
}

TYPED_TEST(LockTypes, LockGuardCompatible) {
  {
    LockGuard<TypeParam> guard(this->lock);
    EXPECT_FALSE(this->lock.is_free());
  }
  EXPECT_TRUE(this->lock.is_free());
}

TYPED_TEST(LockTypes, ManySequentialAcquisitions) {
  for (int i = 0; i < 100000; ++i) {
    this->lock.lock();
    this->lock.unlock();
  }
  EXPECT_TRUE(this->lock.is_free());
}

// FIFO-order verification for the queue locks: with a token-passing
// protocol, the order in which threads enter lock() must equal the order
// they acquire it.
template <typename L>
class FifoLockTypes : public ::testing::Test {
 public:
  L lock;
};
using FifoLocks = ::testing::Types<TicketLock, McsLock, ClhLock, StpMcsLock>;
TYPED_TEST_SUITE(FifoLockTypes, FifoLocks);

TYPED_TEST(FifoLockTypes, TraitIsDeclared) {
  EXPECT_TRUE(is_fifo_lock_v<TypeParam>);
}

TYPED_TEST(FifoLockTypes, GrantsInArrivalOrder) {
  // The main thread holds the lock while waiters are released one at a time
  // with a generous settling delay, making arrival order deterministic; on
  // release, acquisition order must match arrival order.
  constexpr int kWaiters = 6;
  this->lock.lock();
  std::vector<int> grant_order;
  std::mutex order_mutex;
  std::atomic<bool> go[kWaiters] = {};
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i] {
      while (!go[i].load(std::memory_order_acquire)) {
      }
      this->lock.lock();
      {
        std::lock_guard<std::mutex> g(order_mutex);
        grant_order.push_back(i);
      }
      this->lock.unlock();
    });
  }
  for (int i = 0; i < kWaiters; ++i) {
    go[i].store(true, std::memory_order_release);
    // Generous gap so waiter i is enqueued before waiter i+1 starts.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  this->lock.unlock();
  for (auto& t : threads) t.join();
  ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(grant_order[static_cast<std::size_t>(i)], i)
        << "FIFO order violated";
  }
}

TEST(ShflPb, ProportionIsClamped) {
  ShflPbLock lock(0);
  EXPECT_EQ(lock.proportion(), 1u);
}

TEST(ShflPb, RotationServesLittleAfterNBigs) {
  // Single-threaded check of the policy bookkeeping via lock_as: enqueue
  // 3 bigs and 1 little while held, then release repeatedly and observe the
  // service order big,big,big,little for proportion=3.
  ShflPbLock lock(3);
  lock.lock_as(CoreType::kBig);  // holder

  std::vector<std::string> order;
  std::mutex order_mutex;
  std::atomic<bool> go[4] = {};
  std::vector<std::thread> threads;
  auto waiter = [&](CoreType type, const char* tag, int seq) {
    while (!go[seq].load(std::memory_order_acquire)) {
    }
    lock.lock_as(type);
    {
      std::lock_guard<std::mutex> g(order_mutex);
      order.push_back(tag);
    }
    lock.unlock();
  };
  // Little enqueues FIRST; proportional policy must still serve 3 bigs
  // before it (that is exactly the reorder the paper criticizes for its
  // latency cost).
  threads.emplace_back(waiter, CoreType::kLittle, "little", 0);
  threads.emplace_back(waiter, CoreType::kBig, "big1", 1);
  threads.emplace_back(waiter, CoreType::kBig, "big2", 2);
  threads.emplace_back(waiter, CoreType::kBig, "big3", 3);
  for (int i = 0; i < 4; ++i) {
    go[i].store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  lock.unlock();
  for (auto& t : threads) t.join();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "big1");
  EXPECT_EQ(order[1], "big2");
  EXPECT_EQ(order[2], "big3");
  EXPECT_EQ(order[3], "little");
}

TEST(ShflPb, LittleServedWhenNoBigWaiting) {
  ShflPbLock lock(10);
  lock.lock_as(CoreType::kBig);
  std::atomic<bool> got{false};
  std::thread t([&] {
    lock.lock_as(CoreType::kLittle);
    got.store(true);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.unlock();
  t.join();
  EXPECT_TRUE(got.load());
}

TEST(AnyLock, WrapsAnyLockable) {
  AnyLock any = AnyLock::make<McsLock>();
  EXPECT_TRUE(any.valid());
  EXPECT_TRUE(any.is_free());
  any.lock();
  EXPECT_FALSE(any.is_free());
  any.unlock();
  EXPECT_TRUE(any.try_lock());
  any.unlock();
}

TEST(AnyLock, MutualExclusionThroughErasure) {
  AnyLock any = AnyLock::make<TicketLock>();
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        any.lock();
        ++counter;
        any.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 20000u);
}

TEST(StpMcs, ParkedWaiterIsWoken) {
  StpMcsLock lock(/*spin_budget=*/1);  // park almost immediately
  lock.lock();
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    lock.lock();
    acquired.store(true);
    lock.unlock();
  });
  // Let the waiter enqueue, exhaust its tiny spin budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  lock.unlock();
  t.join();
  EXPECT_TRUE(acquired.load());
}

}  // namespace
}  // namespace asl
