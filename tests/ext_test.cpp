// Extension-feature tests: condition variables over LibASL mutexes (litl
// technique, Section 3.3) and the cohort-lock substrate (Section 3.4's
// NUMA-aware composition).
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "asl/condvar.h"
#include "asl/libasl.h"
#include "locks/cohort.h"
#include "platform/time.h"
#include "reorder/reorderable.h"

namespace asl {
namespace {

// ----------------------------------------------------------------- CondVar

TEST(CondVar, SignalWakesWaiter) {
  AslMutex<McsLock> mutex;
  CondVar cv;
  std::atomic<bool> ready{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    mutex.lock();
    ready.store(true);
    while (!woke.load()) {
      cv.wait(mutex);
      woke.store(true);
    }
    mutex.unlock();
  });
  while (!ready.load()) {
  }
  // Signal until the waiter confirms (closes startup races).
  while (!woke.load()) {
    cv.signal();
    sleep_ns(kNanosPerMilli);
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(CondVar, WaitReleasesAndReacquiresMutex) {
  AslMutex<McsLock> mutex;
  CondVar cv;
  std::atomic<int> stage{0};
  std::thread waiter([&] {
    mutex.lock();
    stage.store(1);
    cv.wait(mutex);
    // Mutex must be held again here.
    EXPECT_FALSE(mutex.is_free());
    stage.store(2);
    mutex.unlock();
  });
  while (stage.load() != 1) {
  }
  // The waiter is blocked in wait(): the mutex must be acquirable.
  bool acquired = false;
  for (int i = 0; i < 1000 && !acquired; ++i) {
    acquired = mutex.try_lock();
    sleep_ns(kNanosPerMilli);
  }
  ASSERT_TRUE(acquired) << "wait() did not release the mutex";
  mutex.unlock();
  while (stage.load() != 2) {
    cv.signal();
    sleep_ns(kNanosPerMilli);
  }
  waiter.join();
}

TEST(CondVar, TimedWaitTimesOut) {
  AslMutex<McsLock> mutex;
  CondVar cv;
  mutex.lock();
  const Nanos t0 = now_ns();
  const bool signalled = cv.wait_for(mutex, 20 * kNanosPerMilli);
  const Nanos elapsed = now_ns() - t0;
  EXPECT_FALSE(signalled);
  EXPECT_GE(elapsed, 15 * kNanosPerMilli);
  EXPECT_FALSE(mutex.is_free());  // reacquired after timeout
  mutex.unlock();
}

TEST(CondVar, ProducerConsumerQueue) {
  AslMutex<McsLock> mutex;
  CondVar cv;
  std::deque<int> queue;
  constexpr int kItems = 2000;
  std::int64_t consumed_sum = 0;

  std::thread consumer([&] {
    ScopedCoreType little(CoreType::kLittle);
    for (int i = 0; i < kItems; ++i) {
      mutex.lock();
      while (queue.empty()) {
        cv.wait(mutex);
      }
      consumed_sum += queue.front();
      queue.pop_front();
      mutex.unlock();
    }
  });
  std::thread producer([&] {
    ScopedCoreType big(CoreType::kBig);
    for (int i = 0; i < kItems; ++i) {
      mutex.lock();
      queue.push_back(i);
      mutex.unlock();
      cv.signal();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed_sum,
            static_cast<std::int64_t>(kItems) * (kItems - 1) / 2);
  EXPECT_TRUE(queue.empty());
}

TEST(CondVar, BroadcastWakesAllWaiters) {
  AslMutex<McsLock> mutex;
  CondVar cv;
  constexpr int kWaiters = 4;
  std::atomic<int> waiting{0};
  std::atomic<bool> go{false};
  std::atomic<int> woke{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&] {
      mutex.lock();
      waiting.fetch_add(1);
      while (!go.load()) {
        cv.wait(mutex);
      }
      woke.fetch_add(1);
      mutex.unlock();
    });
  }
  while (waiting.load() != kWaiters) {
  }
  sleep_ns(10 * kNanosPerMilli);  // let them reach cv.wait
  go.store(true);
  while (woke.load() != kWaiters) {
    cv.broadcast();
    sleep_ns(kNanosPerMilli);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

// -------------------------------------------------------------- CohortLock

TEST(CohortLock, SatisfiesLockable) {
  static_assert(Lockable<CohortLock<2>>);
  CohortLock<2> lock;
  EXPECT_TRUE(lock.is_free());
  lock.lock();
  EXPECT_FALSE(lock.is_free());
  lock.unlock();
  EXPECT_TRUE(lock.is_free());
}

TEST(CohortLock, TryLockSemantics) {
  CohortLock<2> lock;
  EXPECT_TRUE(lock.try_lock());
  std::atomic<int> other{-1};
  std::thread([&] { other = lock.try_lock() ? 1 : 0; }).join();
  EXPECT_EQ(other.load(), 0);
  lock.unlock();
  EXPECT_TRUE(lock.is_free());
}

TEST(CohortLock, MutualExclusionAcrossNodes) {
  CohortLock<2> lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 8000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CohortLock<2>::set_this_thread_node(static_cast<std::uint32_t>(t % 2));
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
      CohortLock<2>::clear_this_thread_node();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(CohortLock, BatchBudgetEventuallyRotatesNodes) {
  // Two threads on node 0 churn the lock; a thread on node 1 must still get
  // it (the batch budget bounds in-node passing).
  CohortLock<2, /*kBatch=*/8> lock;
  std::atomic<bool> stop{false};
  std::atomic<bool> node1_got_lock{false};
  std::vector<std::thread> churners;
  for (int t = 0; t < 2; ++t) {
    churners.emplace_back([&] {
      CohortLock<2, 8>::set_this_thread_node(0);
      while (!stop.load()) {
        lock.lock();
        lock.unlock();
      }
      CohortLock<2, 8>::clear_this_thread_node();
    });
  }
  std::thread other([&] {
    CohortLock<2, 8>::set_this_thread_node(1);
    lock.lock();
    node1_got_lock.store(true);
    lock.unlock();
    CohortLock<2, 8>::clear_this_thread_node();
  });
  other.join();
  stop.store(true);
  for (auto& t : churners) t.join();
  EXPECT_TRUE(node1_got_lock.load());
}

TEST(CohortLock, ComposesUnderReorderableLock) {
  // Section 3.4: reorderable layer over a NUMA-aware substrate.
  ReorderableLock<CohortLock<2>> lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        if (t % 2 == 0) {
          lock.lock_immediately();
        } else {
          lock.lock_reorder(5 * kNanosPerMicro);
        }
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 16000u);
}

TEST(CohortLock, ComposesUnderAslMutex) {
  AslMutex<CohortLock<2>> mutex;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      ScopedCoreType scoped(t < 2 ? CoreType::kBig : CoreType::kLittle);
      for (int i = 0; i < 4000; ++i) {
        mutex.lock();
        counter = counter + 1;
        mutex.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 16000u);
}

}  // namespace
}  // namespace asl
