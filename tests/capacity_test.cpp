// Capacity-probe property tests (DESIGN.md §5): the bisection search must
// converge, bracket the SLO boundary, and be a pure function of its inputs —
// first against synthetic oracles with a known threshold, then against the
// simulated twin, where "deterministic" means the found rate is the same
// number on every run.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/capacity_probe.h"
#include "server/sim_kv_service.h"
#include "workload/open_loop.h"

namespace asl::bench {
namespace {

bool same_trials(const CapacityResult& a, const CapacityResult& b) {
  if (a.trials.size() != b.trials.size()) return false;
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    if (a.trials[i].rate != b.trials[i].rate ||
        a.trials[i].ok != b.trials[i].ok) {
      return false;
    }
  }
  return a.feasible == b.feasible && a.bracketed == b.bracketed &&
         a.max_rate == b.max_rate && a.min_violating == b.min_violating;
}

// ------------------------------------------------------- synthetic oracles

TEST(CapacityProbe, ConvergesOnAnalyticThreshold) {
  const double threshold = 1234.5;
  CapacityProbeConfig cfg;
  cfg.start_rate = 100.0;
  cfg.growth = 2.0;
  cfg.tolerance = 0.05;
  const auto trial = [threshold](double r) { return r <= threshold; };

  const CapacityResult r = find_capacity(cfg, trial);
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.bracketed);
  EXPECT_LE(r.trials.size(), cfg.max_trials);
  // The bracket straddles the threshold and is tolerance-narrow.
  EXPECT_LE(r.max_rate, threshold);
  EXPECT_GT(r.min_violating, threshold);
  EXPECT_LE(r.min_violating, r.max_rate * (1.0 + cfg.tolerance) * 1.0001);
  // Every reported trial is consistent with the oracle.
  for (const CapacityTrial& t : r.trials) {
    EXPECT_EQ(t.ok, t.rate <= threshold);
  }
  // Pure function: the same inputs replay the same search.
  EXPECT_TRUE(same_trials(r, find_capacity(cfg, trial)));
}

TEST(CapacityProbe, InfeasibleStartReportsNoCapacity) {
  CapacityProbeConfig cfg;
  cfg.start_rate = 500.0;
  const CapacityResult r =
      find_capacity(cfg, [](double) { return false; });
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.bracketed);
  EXPECT_EQ(r.max_rate, 0.0);
  EXPECT_EQ(r.min_violating, cfg.start_rate);
  EXPECT_EQ(r.trials.size(), 1u);
}

TEST(CapacityProbe, CapsAtMaxRateWhenEverythingPasses) {
  CapacityProbeConfig cfg;
  cfg.start_rate = 100.0;
  cfg.max_rate = 5000.0;
  const CapacityResult r = find_capacity(cfg, [](double) { return true; });
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.bracketed) << "no violation was ever observed";
  EXPECT_EQ(r.max_rate, cfg.max_rate);
  EXPECT_EQ(r.min_violating, 0.0);
}

TEST(CapacityProbe, CapAtOrBelowStartNeverLowersThePassingFloor) {
  // A cap at or below the (passing) start rate leaves nothing to probe:
  // the result must keep the highest rate actually observed to pass, not
  // re-trial below it.
  CapacityProbeConfig cfg;
  cfg.start_rate = 1000.0;
  cfg.max_rate = 500.0;
  const CapacityResult r = find_capacity(cfg, [](double) { return true; });
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.bracketed);
  EXPECT_EQ(r.max_rate, cfg.start_rate);
  EXPECT_EQ(r.trials.size(), 1u);
}

TEST(CapacityProbe, TrialBudgetBoundsTheSearch) {
  CapacityProbeConfig cfg;
  cfg.start_rate = 1.0;
  cfg.tolerance = 1e-9;  // unreachably tight: the budget must stop it
  cfg.max_trials = 10;
  const CapacityResult r =
      find_capacity(cfg, [](double r2) { return r2 <= 10.0; });
  EXPECT_EQ(r.trials.size(), cfg.max_trials);
  EXPECT_TRUE(r.bracketed);
  EXPECT_LT(r.max_rate, r.min_violating);
}

// -------------------------------------------- per-class SLO criterion

server::ClassReport synthetic_class(const std::string& name, Nanos slo_ns,
                                    std::uint64_t accepted,
                                    std::uint64_t rejected,
                                    std::uint64_t shed, Nanos latency_ns) {
  server::ClassReport c;
  c.name = name;
  c.slo_ns = slo_ns;
  c.accepted = accepted;
  c.rejected = rejected;
  c.shed = shed;
  c.completed = accepted;
  for (std::uint64_t i = 0; i < accepted; ++i) {
    c.total.record(CoreType::kBig, latency_ns);
  }
  return c;
}

TEST(SloCriterion, ShedRejectionsDoNotFailTheCapacityCheck) {
  // Regression for the shedding interaction: a loose class whose
  // rejections are all deliberate sheds must not fail the report-level
  // check — otherwise probing the tight class's capacity with shedding on
  // is impossible (every trial would "fail" because the policy worked).
  server::ServiceReport report;
  report.classes.push_back(synthetic_class(
      "tight", 1 * kNanosPerMilli, 1000, 0, 0, 400 * kNanosPerMicro));
  report.classes.push_back(synthetic_class(
      "loose", 4 * kNanosPerMilli, 500, 500, 500, 900 * kNanosPerMicro));
  EXPECT_TRUE(server::class_meets_slo(report.classes[0]));
  EXPECT_TRUE(server::class_meets_slo(report.classes[1]))
      << "an all-shed rejection column is policy, not overload";
  EXPECT_TRUE(server::report_meets_slos(report));

  // The same rejection volume as *hard* (full-queue) rejections is
  // overload and must fail — sheds are the only exempt kind.
  report.classes[1].shed = 0;
  EXPECT_FALSE(server::class_meets_slo(report.classes[1]));
  EXPECT_FALSE(server::report_meets_slos(report));

  // Partially shed: only the hard remainder counts against the bound.
  report.classes[1].shed = 499;
  EXPECT_FALSE(server::class_meets_slo(report.classes[1]))
      << "1 hard rejection in 1000 offered exceeds a zero bound";
  EXPECT_TRUE(server::class_meets_slo(report.classes[1], 0.01));

  // And an SLO-violating p99 still fails regardless of shed bookkeeping.
  report.classes[1].shed = 500;
  server::ClassReport slow = synthetic_class(
      "loose-slow", 4 * kNanosPerMilli, 500, 500, 500, 9 * kNanosPerMilli);
  EXPECT_FALSE(server::class_meets_slo(slow));
}

TEST(SloCriterion, NoSloClassesPassVacuously) {
  server::ServiceReport report;
  report.classes.push_back(
      synthetic_class("untracked", 0, 10, 1000, 0, 9 * kNanosPerMilli));
  EXPECT_TRUE(server::report_meets_slos(report));
}

// ------------------------------------------------- per-class capacity

TEST(CapacityProbe, PerClassSearchFindsEachThreshold) {
  // Two synthetic classes with different saturation points: the per-class
  // sweep must bracket each independently, with the class index routed
  // through to the trial.
  const double thresholds[2] = {1500.0, 6000.0};
  CapacityProbeConfig cfg;
  cfg.start_rate = 500.0;
  cfg.growth = 2.0;
  cfg.tolerance = 0.05;
  const ClassCapacityTrialFn trial = [&thresholds](std::size_t c,
                                                   double rate) {
    return rate <= thresholds[c];
  };
  const std::vector<ClassCapacity> found =
      find_capacity_per_class(cfg, {"tight", "loose"}, trial);
  ASSERT_EQ(found.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(found[c].class_name, c == 0 ? "tight" : "loose");
    EXPECT_TRUE(found[c].result.feasible);
    EXPECT_TRUE(found[c].result.bracketed);
    EXPECT_LE(found[c].result.max_rate, thresholds[c]);
    EXPECT_GT(found[c].result.min_violating, thresholds[c]);
  }
  // Deterministic: same searches, same trials.
  const std::vector<ClassCapacity> again =
      find_capacity_per_class(cfg, {"tight", "loose"}, trial);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_TRUE(same_trials(found[c].result, again[c].result));
  }
  // And the summary table carries one row per class.
  EXPECT_EQ(class_capacity_table(found).rows(), 2u);
}

// -------------------------------------------- twin-vs-real cross-check

CapacityResult synthetic_capacity(double max_rate) {
  CapacityResult r;
  r.feasible = max_rate > 0;
  r.bracketed = r.feasible;
  r.max_rate = max_rate;
  r.min_violating = max_rate * 1.1;
  return r;
}

TEST(CapacityComparisonCheck, RatioBandAndTableCoverTheBenchPath) {
  // CTest smoke for the kv_capacity_real comparison path (ROADMAP
  // follow-up): the ratio math, the advisory band verdict and the summary
  // table — the same calls the bench makes after its two probes.
  const CapacityComparison close =
      compare_capacity(synthetic_capacity(9000), synthetic_capacity(10000));
  EXPECT_TRUE(close.both_feasible);
  EXPECT_TRUE(close.within_band);
  EXPECT_NEAR(close.ratio, 0.9, 1e-9);

  const CapacityComparison far =
      compare_capacity(synthetic_capacity(2000), synthetic_capacity(10000));
  EXPECT_TRUE(far.both_feasible);
  EXPECT_FALSE(far.within_band) << "a 5x gap must fall outside the 2x band";

  // Band edges are inclusive; a wider tolerance admits the same gap.
  EXPECT_TRUE(compare_capacity(synthetic_capacity(5000),
                               synthetic_capacity(10000))
                  .within_band);
  EXPECT_TRUE(compare_capacity(synthetic_capacity(2000),
                               synthetic_capacity(10000), 5.0)
                  .within_band);

  // An infeasible probe never claims a verdict.
  const CapacityComparison none =
      compare_capacity(synthetic_capacity(0), synthetic_capacity(10000));
  EXPECT_FALSE(none.both_feasible);
  EXPECT_FALSE(none.within_band);
  EXPECT_EQ(none.ratio, 0.0);

  // The table renders one row with integer cells (1000 = ratio 1.0).
  Table table = capacity_comparison_table(close);
  EXPECT_EQ(table.rows(), 1u);
  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_NE(csv.str().find("900"), std::string::npos);
}

// ------------------------------------------------------- probe on the twin

// A scaled-up per-op cost keeps saturation within a few growth steps so the
// whole search stays at a few thousand virtual events (cs 16 us on a big
// core, 64 us on a little one).
server::KvScenario twin_probe_scenario() {
  server::KvScenario sc = server::make_kv_scenario("kv_uniform_steady");
  sc.horizon = 5 * kNanosPerMilli;
  sc.service.queue_capacity = 64;
  sc.service.cost_scale = 100.0;  // hash default classes -> 40k/10k NOPs
  return sc;
}

CapacityTrialFn twin_trial(const server::KvScenario& base) {
  const double nominal = server::nominal_rate_per_sec(base.load);
  return [&base, nominal](double rate) {
    server::KvScenario sc = base;
    server::scale_load_rates(sc.load, rate / nominal);
    return server::report_meets_slos(server::run_sim_kv(sc).service);
  };
}

TEST(CapacityProbe, TwinProbeIsDeterministicAndBracketsTheSlo) {
  const server::KvScenario base = twin_probe_scenario();
  CapacityProbeConfig cfg;
  cfg.start_rate = server::nominal_rate_per_sec(base.load);
  cfg.growth = 2.0;
  cfg.tolerance = 0.1;
  cfg.max_trials = 20;

  const CapacityResult a = find_capacity(cfg, twin_trial(base));
  ASSERT_TRUE(a.feasible) << "nominal rate must meet the SLOs";
  ASSERT_TRUE(a.bracketed) << "saturation must be reachable";
  EXPECT_GT(a.max_rate, cfg.start_rate);

  // Same seed (the scenario's), same configuration -> the same rate, down
  // to the exact trial sequence.
  const CapacityResult b = find_capacity(cfg, twin_trial(base));
  EXPECT_TRUE(same_trials(a, b));

  // The found rate brackets the SLO: p99 meets it at max_rate, violates it
  // one tolerance step up — re-evaluated from scratch, not read back from
  // the probe's own bookkeeping.
  const CapacityTrialFn trial = twin_trial(base);
  EXPECT_TRUE(trial(a.max_rate));
  EXPECT_FALSE(trial(a.min_violating));
  EXPECT_LE(a.min_violating, a.max_rate * (1.0 + cfg.tolerance) * 1.0001);
}

}  // namespace
}  // namespace asl::bench
